// Package uei is the public API of the Uncertainty Estimation Index — a
// Go implementation of Ge & Chrysanthis, "On Supporting Scalable Active
// Learning-based Interactive Data Exploration with Uncertainty Estimation
// Index" (EDBT 2021).
//
// UEI lets active learning-based interactive data exploration run over
// datasets larger than main memory at interactive (sub-500 ms) iteration
// latency. The index partitions the data space into grid cells represented
// by symbolic index points; every iteration it re-scores only those points
// with the current classifier, loads only the most uncertain cell's tuples
// from a columnar inverted chunk store, and runs uncertainty sampling over
// a small resident set (a uniform sample plus that region).
//
// The package re-exports, as aliases, the library's stable surface from
// the internal packages:
//
//   - the index itself (Build / Open / Index),
//   - the exploration engine (NewSession / Session / providers / Labeler),
//   - query strategies (LeastConfidence, Margin, Entropy, Random, QBC,
//     ExpectedErrorReduction),
//   - classifiers (DWKNN, GaussianNB, Logistic, Committee),
//   - the data substrate (Dataset, GenerateSky, CSV I/O), and
//   - the evaluation oracle (Region, Oracle) for simulated users.
//
// A minimal end-to-end exploration (v2 API: context-first, functional
// options, worker pool sized to GOMAXPROCS by default):
//
//	ctx := context.Background()
//	ds, _ := uei.GenerateSky(uei.SkyConfig{N: 100_000, Seed: 1})
//	_ = uei.Build(ctx, "store", ds, uei.BuildOptions{})
//	idx, _ := uei.Open(ctx, "store", uei.Options{
//		MemoryBudgetBytes: ds.SizeBytes() / 100,
//		EnablePrefetch:    true,
//	}, uei.WithWorkers(8))
//	defer idx.Close()
//
//	provider, _ := uei.NewUEIProvider(idx)
//	sess, _ := uei.NewSession(uei.SessionConfig{
//		MaxLabels:        100,
//		EstimatorFactory: func() uei.Classifier { return uei.NewDWKNN(7, nil) },
//		Strategy:         uei.LeastConfidence{},
//	}, provider, myLabeler) // myLabeler implements uei.Labeler
//	res, _ := sess.Run(ctx) // cancel ctx to abort within one iteration
//
// Errors crossing this boundary wrap the exported sentinels (ErrClosed,
// ErrNotFitted, ErrBudgetExceeded, ErrNoCandidates), so errors.Is works
// without reaching into internal packages. The v1 entry points survive as
// deprecated *V1 shims.
//
// See the examples/ directory for runnable programs and cmd/uei-bench for
// the harness that regenerates the paper's tables and figures.
package uei
