// Quickstart: the minimal end-to-end UEI workflow.
//
//  1. Generate a synthetic SDSS-like dataset (the paper's workload shape).
//  2. Build the UEI index: columnar inverted chunks + grid of symbolic
//     index points (Algorithm 2, initialization phase).
//  3. Run an active-learning exploration with uncertainty sampling and a
//     DWKNN estimator against a simulated user (Algorithm 2, interactive
//     phase).
//  4. Print the model's accuracy, the index's I/O statistics, and the
//     end-of-run metrics snapshot collected by internal/obs.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"github.com/uei-db/uei/internal/al"
	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/ide"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/metrics"
	"github.com/uei-db/uei/internal/obs"
	"github.com/uei-db/uei/internal/oracle"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A 50k-tuple synthetic sky survey.
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 50_000, Seed: 42})
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %d tuples, schema %s\n", ds.Len(), ds.Schema())

	// 2. Build the on-disk index once, then open it with a memory budget
	// of roughly 2%% of the data.
	dir, err := os.MkdirTemp("", "uei-quickstart-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if err := core.Build(dir, ds, core.BuildOptions{TargetChunkBytes: 64 * 1024}); err != nil {
		return err
	}
	reg := obs.NewRegistry()
	ctx := context.Background()
	idx, err := core.Open(ctx, dir, core.Options{
		MemoryBudgetBytes: ds.SizeBytes() / 50,
		EnablePrefetch:    true,
		Seed:              42,
		Registry:          reg,
	})
	if err != nil {
		return err
	}
	defer idx.Close()
	fmt.Printf("index: %d symbolic points over %d cells, %d bytes on disk\n",
		idx.NumIndexPoints(), idx.Grid().NumCells(), idx.TotalBytes())

	// 3. The "user" wants a region holding ~0.4% of the data.
	region, err := oracle.FindRegion(ds, 0.004, 0.3, 7, 12)
	if err != nil {
		return err
	}
	user, err := oracle.New(ds, region)
	if err != nil {
		return err
	}
	fmt.Printf("target region: %d relevant tuples (%.2f%%)\n",
		user.RelevantCount(), region.Selectivity(ds)*100)

	provider, err := ide.NewUEIProvider(idx)
	if err != nil {
		return err
	}
	provider.RetrievalCutoff = 0.05

	bounds, err := ds.Bounds()
	if err != nil {
		return err
	}
	scales := bounds.Widths()
	sess, err := ide.NewSession(ide.Config{
		MaxLabels:        80,
		EstimatorFactory: func() learn.Classifier { return learn.NewDWKNN(7, scales) },
		Strategy:         al.LeastConfidence{},
		Seed:             42,
		SeedWithPositive: true,
		Registry:         reg,
	}, provider, ide.OracleLabeler{O: user})
	if err != nil {
		return err
	}
	res, err := sess.Run(ctx)
	if err != nil {
		return err
	}

	// 4. Score the retrieved set against the ground truth.
	var conf metrics.Confusion
	retrieved := make(map[uint32]bool, len(res.Positive))
	for _, id := range res.Positive {
		retrieved[id] = true
	}
	ds.Scan(func(id dataset.RowID, _ []float64) bool {
		conf.Observe(retrieved[uint32(id)], user.Relevant(id))
		return true
	})
	fmt.Printf("\nafter %d labels: retrieved %d tuples, F1 = %.3f (precision %.3f, recall %.3f)\n",
		res.LabelsUsed, len(res.Positive), conf.F1(), conf.Precision(), conf.Recall())
	ide.FMeasureGauge(reg).Set(conf.F1())

	st := idx.Stats()
	fmt.Printf("index activity: %d region swaps, %d bytes read, peak memory %d bytes (budget %d)\n",
		st.RegionSwaps, st.BytesRead, st.PeakMemory, idx.Budget().Capacity())

	// 5. End-of-run metrics: the phase-latency breakdown recorded by the
	// obs registry that core and ide instruments have been feeding.
	fmt.Printf("\n%s", obs.FormatSummary(reg))
	snap := reg.Snapshot()
	fmt.Printf("selected counters: chunk reads=%d (%d bytes), prefetch hits=%d, fmeasure=%.3f\n",
		snap.Counters["chunkstore_chunk_opens_total"],
		snap.Counters["chunkstore_read_bytes_total"],
		snap.Counters["uei_prefetch_hits_total"],
		snap.Gauges["ide_fmeasure"])
	return nil
}
