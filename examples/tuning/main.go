// Tuning: UEI's §3.2 knobs in action.
//
// Part 1 shows the prefetch / latency-threshold mechanism: with a shared
// I/O budget, region swaps stall the iteration when prefetching is off;
// with it on, loads hide behind earlier iterations (θ = ⌈τ/σ⌉ lead time)
// and tail latency drops.
//
// Part 2 shows the symbolic-index-point trade-off: more grid cells mean
// smaller, cheaper region loads but more points to score per iteration.
//
// Run with: go run ./examples/tuning
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/uei-db/uei/internal/al"
	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/ide"
	"github.com/uei-db/uei/internal/iothrottle"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/metrics"
	"github.com/uei-db/uei/internal/oracle"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 80_000, Seed: 21})
	if err != nil {
		return err
	}
	region, err := oracle.FindRegion(ds, 0.004, 0.3, 19, 12)
	if err != nil {
		return err
	}
	bounds, err := ds.Bounds()
	if err != nil {
		return err
	}
	scales := bounds.Widths()

	dir, err := os.MkdirTemp("", "uei-tuning-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if err := core.Build(dir, ds, core.BuildOptions{TargetChunkBytes: 64 * 1024}); err != nil {
		return err
	}

	ctx := context.Background()
	session := func(opts core.Options, limiter *iothrottle.Limiter) (*metrics.LatencyRecorder, core.Stats, error) {
		opts.Limiter = limiter
		idx, err := core.Open(ctx, dir, opts)
		if err != nil {
			return nil, core.Stats{}, err
		}
		defer idx.Close()
		provider, err := ide.NewUEIProvider(idx)
		if err != nil {
			return nil, core.Stats{}, err
		}
		user, err := oracle.New(ds, region)
		if err != nil {
			return nil, core.Stats{}, err
		}
		lat := metrics.NewLatencyRecorder()
		sess, err := ide.NewSession(ide.Config{
			MaxLabels:        40,
			EstimatorFactory: func() learn.Classifier { return learn.NewDWKNN(7, scales) },
			Strategy:         al.LeastConfidence{},
			Seed:             31,
			SeedWithPositive: true,
			OnIteration:      func(it ide.IterationInfo) { lat.Record(it.ResponseTime) },
			AfterPrepare:     func() { limiter.Reset() },
		}, provider, ide.OracleLabeler{O: user})
		if err != nil {
			return nil, core.Stats{}, err
		}
		if _, err := sess.Run(ctx); err != nil {
			return nil, core.Stats{}, err
		}
		return lat, idx.Stats(), nil
	}

	fmt.Println("Part 1: prefetching under a 1 MiB/s I/O budget (sigma = 500ms)")
	for _, prefetch := range []bool{false, true} {
		lat, st, err := session(core.Options{
			MemoryBudgetBytes: ds.SizeBytes() / 50,
			LatencyThreshold:  500 * time.Millisecond,
			EnablePrefetch:    prefetch,
			Seed:              31,
		}, iothrottle.New(1<<20))
		if err != nil {
			return err
		}
		fmt.Printf("  prefetch=%-5v  mean %-12s p95 %-12s swaps %d deferred %d prefetch-hits %d\n",
			prefetch, lat.Mean().Round(time.Microsecond), lat.Percentile(95).Round(time.Microsecond),
			st.RegionSwaps, st.SwapsDeferred, st.PrefetchHits)
	}

	fmt.Println("\nPart 2: symbolic index point budget (unthrottled)")
	for _, segments := range []int{3, 5, 7} {
		points := 1
		for i := 0; i < ds.Dims(); i++ {
			points *= segments
		}
		lat, st, err := session(core.Options{
			MemoryBudgetBytes: ds.SizeBytes() / 50,
			SegmentsPerDim:    segments,
			Seed:              31,
		}, nil)
		if err != nil {
			return err
		}
		fmt.Printf("  |P|=%-6d  mean %-12s bytes-read %-10d entries-visited %d\n",
			points, lat.Mean().Round(time.Microsecond), st.BytesRead, st.EntriesVisited)
	}
	return nil
}
