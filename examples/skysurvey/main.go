// Skysurvey: the paper's headline out-of-core scenario in miniature.
//
// Both schemes explore the same synthetic sky survey under the same
// memory budget (~1% of the data) and the same shared I/O bandwidth
// budget, mirroring §4's "40 GB on disk, 400 MB of RAM" setup:
//
//   - REQUEST-over-UEI streams only the chunks of the currently most
//     uncertain grid cell each iteration, and
//   - REQUEST-over-DBMS re-scans the whole heap file through a small
//     buffer pool each iteration (the MySQL baseline's cost profile).
//
// The example prints a miniature Figure 6 row: per-iteration response
// times and the resulting speedup.
//
// Run with: go run ./examples/skysurvey
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/uei-db/uei/internal/al"
	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/dbms"
	"github.com/uei-db/uei/internal/ide"
	"github.com/uei-db/uei/internal/iothrottle"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/metrics"
	"github.com/uei-db/uei/internal/oracle"
)

const (
	numTuples = 60_000
	maxLabels = 30
	// ioBandwidth models the scaled secondary-storage budget shared by
	// both schemes (see DESIGN.md §3 on why real page-cache speeds would
	// hide the out-of-core effect at example scale).
	ioBandwidth = 2 << 20 // 2 MiB/s
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: numTuples, Seed: 9})
	if err != nil {
		return err
	}
	region, err := oracle.FindRegion(ds, 0.004, 0.3, 11, 12)
	if err != nil {
		return err
	}
	bounds, err := ds.Bounds()
	if err != nil {
		return err
	}
	scales := bounds.Widths()

	workDir, err := os.MkdirTemp("", "uei-skysurvey-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(workDir)

	fmt.Printf("building stores for %d tuples...\n", ds.Len())
	storeDir := filepath.Join(workDir, "uei")
	if err := core.Build(storeDir, ds, core.BuildOptions{TargetChunkBytes: 128 * 1024}); err != nil {
		return err
	}
	tableDir := filepath.Join(workDir, "dbms")
	table0, err := dbms.CreateTable(tableDir, ds, 64, nil)
	if err != nil {
		return err
	}
	heapBytes := table0.SizeBytes()
	table0.Close()

	budget := heapBytes / 100 // 1% of the data, as in the paper
	if budget < 32*dbms.PageSize {
		budget = 32 * dbms.PageSize
	}
	limiter := iothrottle.New(ioBandwidth)
	fmt.Printf("memory budget: %d bytes (1%% of %d); shared I/O budget: %d B/s\n\n",
		budget, heapBytes, int64(ioBandwidth))

	run := func(name string, provider ide.Provider) (*metrics.LatencyRecorder, float64, error) {
		user, err := oracle.New(ds, region)
		if err != nil {
			return nil, 0, err
		}
		lat := metrics.NewLatencyRecorder()
		sess, err := ide.NewSession(ide.Config{
			MaxLabels:        maxLabels,
			EstimatorFactory: func() learn.Classifier { return learn.NewDWKNN(7, scales) },
			Strategy:         al.LeastConfidence{},
			Seed:             3,
			SeedWithPositive: true,
			OnIteration: func(it ide.IterationInfo) {
				lat.Record(it.ResponseTime)
			},
			AfterPrepare: func() { limiter.Reset() },
		}, provider, ide.OracleLabeler{O: user})
		if err != nil {
			return nil, 0, err
		}
		res, err := sess.Run(ctx)
		if err != nil {
			return nil, 0, err
		}
		// F1 of the retrieved set against ground truth.
		var conf metrics.Confusion
		got := make(map[uint32]bool, len(res.Positive))
		for _, id := range res.Positive {
			got[id] = true
		}
		ds.Scan(func(id dataset.RowID, _ []float64) bool {
			conf.Observe(got[uint32(id)], user.Relevant(id))
			return true
		})
		fmt.Printf("%-5s: %s, retrieval F1 %.3f\n", name, lat.Summary(), conf.F1())
		return lat, conf.F1(), nil
	}

	idx, err := core.Open(ctx, storeDir, core.Options{
		MemoryBudgetBytes: budget,
		EnablePrefetch:    true,
		Seed:              3,
		Limiter:           limiter,
	})
	if err != nil {
		return err
	}
	defer idx.Close()
	ueiProv, err := ide.NewUEIProvider(idx)
	if err != nil {
		return err
	}
	ueiProv.RetrievalCutoff = 0.05
	ueiLat, _, err := run("uei", ueiProv)
	if err != nil {
		return err
	}

	frames := int(budget / dbms.PageSize)
	table, err := dbms.OpenTable(tableDir, frames, limiter)
	if err != nil {
		return err
	}
	defer table.Close()
	dbmsProv, err := ide.NewDBMSProvider(table)
	if err != nil {
		return err
	}
	dbmsLat, _, err := run("dbms", dbmsProv)
	if err != nil {
		return err
	}

	speedup := float64(dbmsLat.Mean()) / float64(ueiLat.Mean())
	fmt.Printf("\nper-iteration speedup (dbms/uei): %.1fx\n", speedup)
	fmt.Printf("UEI iterations under 500ms: %.0f%%\n", ueiLat.FractionUnder(500_000_000)*100)
	return nil
}
