// Multiregion: exploring a disjunctive interest — two disjoint relevant
// regions — in one session. The paper's evaluation fixes one region
// (Table 1), but the IDE systems UEI serves support multiple; this example
// shows UEI discovering both regions, and how the most-uncertain-cell
// trajectory alternates between them as the model refines each boundary.
//
// Run with: go run ./examples/multiregion
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"github.com/uei-db/uei/internal/al"
	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/grid"
	"github.com/uei-db/uei/internal/ide"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/metrics"
	"github.com/uei-db/uei/internal/oracle"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 60_000, Seed: 33})
	if err != nil {
		return err
	}
	targets, err := oracle.FindMultiRegion(ds, 2, 0.008, 0.4, 41, 12)
	if err != nil {
		return err
	}
	user, err := oracle.NewMulti(ds, targets)
	if err != nil {
		return err
	}
	for i, r := range targets.Regions {
		fmt.Printf("region %d: %d tuples (%.2f%%) around %v\n",
			i, r.Cardinality(ds), r.Selectivity(ds)*100, shortPoint(r.Center))
	}
	fmt.Printf("union ground truth: %d tuples\n\n", user.RelevantCount())

	dir, err := os.MkdirTemp("", "uei-multiregion-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if err := core.Build(dir, ds, core.BuildOptions{TargetChunkBytes: 64 * 1024}); err != nil {
		return err
	}
	ctx := context.Background()
	idx, err := core.Open(ctx, dir, core.Options{
		MemoryBudgetBytes: ds.SizeBytes() / 40,
		// Two resident regions: the exploration ping-pongs between the two
		// interest areas, so caching both avoids thrashing (ablation A6).
		ResidentRegions: 2,
		Seed:            33,
	})
	if err != nil {
		return err
	}
	defer idx.Close()

	provider, err := ide.NewUEIProvider(idx)
	if err != nil {
		return err
	}
	provider.RetrievalCutoff = 0.05
	bounds, err := ds.Bounds()
	if err != nil {
		return err
	}
	scales := bounds.Widths()

	// Track which target each loaded region is closest to, to visualize the
	// alternation.
	visits := map[int]int{}
	sess, err := ide.NewSession(ide.Config{
		MaxLabels:        120,
		EstimatorFactory: func() learn.Classifier { return learn.NewDWKNN(7, scales) },
		Strategy:         al.LeastConfidence{},
		Seed:             33,
		SeedWithPositive: true,
		SeedCount:        len(targets.Regions),
		OnIteration: func(it ide.IterationInfo) {
			cell := idx.ResidentRegion()
			if cell < 0 {
				return
			}
			center, err := idx.Grid().Center(cellID(cell))
			if err != nil {
				return
			}
			best, bestD := -1, 0.0
			for i, r := range targets.Regions {
				if d := r.RelativeDistance(center); best < 0 || d < bestD {
					best, bestD = i, d
				}
			}
			visits[best]++
		},
	}, provider, ide.OracleLabeler{O: user})
	if err != nil {
		return err
	}
	res, err := sess.Run(ctx)
	if err != nil {
		return err
	}

	var conf metrics.Confusion
	got := make(map[uint32]bool, len(res.Positive))
	for _, id := range res.Positive {
		got[id] = true
	}
	ds.Scan(func(id dataset.RowID, _ []float64) bool {
		conf.Observe(got[uint32(id)], user.Relevant(id))
		return true
	})
	fmt.Printf("after %d labels: retrieved %d tuples, union F1 = %.3f\n",
		res.LabelsUsed, len(res.Positive), conf.F1())

	// Per-region recall: did the exploration find BOTH regions?
	for i, r := range targets.Regions {
		ids := ds.Select(r.Box())
		hit := 0
		for _, id := range ids {
			if got[uint32(id)] {
				hit++
			}
		}
		fmt.Printf("region %d recall: %d/%d (%.0f%%), resident-region visits nearest to it: %d\n",
			i, hit, len(ids), 100*float64(hit)/float64(max(1, len(ids))), visits[i])
	}
	st := idx.Stats()
	fmt.Printf("\nregion swaps %d (resident bound 2), bytes read %d\n", st.RegionSwaps, st.BytesRead)
	return nil
}

func cellID(c int) grid.CellID { return grid.CellID(c) }

func shortPoint(p []float64) []float64 {
	out := make([]float64, len(p))
	for i, v := range p {
		out[i] = float64(int(v*10)) / 10
	}
	return out
}
