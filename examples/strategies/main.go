// Strategies: compare active-learning query strategies on the same
// exploration task (§2.1 of the paper surveys them; Table 1 fixes
// uncertainty sampling for the evaluation).
//
// Each strategy explores the same target region with the same label budget
// over the UEI index; the example reports the accuracy each one reaches
// and the user effort needed to pass F1 = 0.6.
//
// Run with: go run ./examples/strategies
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"github.com/uei-db/uei/internal/al"
	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/ide"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/metrics"
	"github.com/uei-db/uei/internal/oracle"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 40_000, Seed: 5})
	if err != nil {
		return err
	}
	region, err := oracle.FindRegion(ds, 0.004, 0.3, 13, 12)
	if err != nil {
		return err
	}
	bounds, err := ds.Bounds()
	if err != nil {
		return err
	}
	scales := bounds.Widths()

	dir, err := os.MkdirTemp("", "uei-strategies-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if err := core.Build(dir, ds, core.BuildOptions{TargetChunkBytes: 64 * 1024}); err != nil {
		return err
	}

	dwknnFactory := func() learn.Classifier { return learn.NewDWKNN(7, scales) }
	committeeFactory := func() learn.Classifier {
		com, err := learn.NewCommittee(5, 17, func(int) learn.Classifier {
			return learn.NewDWKNN(7, scales)
		})
		if err != nil {
			panic(err)
		}
		return com
	}

	cases := []struct {
		name      string
		strategy  al.Scorer
		estimator func() learn.Classifier
	}{
		{"uncertainty (least confidence)", al.LeastConfidence{}, dwknnFactory},
		{"uncertainty (margin)", al.Margin{}, dwknnFactory},
		{"uncertainty (entropy)", al.Entropy{}, dwknnFactory},
		{"query-by-committee", al.QueryByCommittee{}, committeeFactory},
		{"random (passive)", al.NewRandom(23), dwknnFactory},
	}

	fmt.Printf("%-32s %10s %14s\n", "strategy", "final F1", "labels to 0.6")
	for _, c := range cases {
		finalF1, effort, err := explore(ds, dir, region, c.strategy, c.estimator)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		fmt.Printf("%-32s %10.3f %14s\n", c.name, finalF1, effort)
	}
	return nil
}

// explore runs one session and reports final accuracy and the labels
// needed to reach F1 = 0.6.
func explore(ds *dataset.Dataset, dir string, region oracle.Region, strategy al.Scorer, estimator func() learn.Classifier) (float64, string, error) {
	ctx := context.Background()
	idx, err := core.Open(ctx, dir, core.Options{
		MemoryBudgetBytes: ds.SizeBytes() / 40,
		Seed:              29,
	})
	if err != nil {
		return 0, "", err
	}
	defer idx.Close()
	provider, err := ide.NewUEIProvider(idx)
	if err != nil {
		return 0, "", err
	}

	user, err := oracle.New(ds, region)
	if err != nil {
		return 0, "", err
	}
	curve := &metrics.Series{Name: strategy.Name()}
	eval := func(model learn.Classifier) (float64, error) {
		var conf metrics.Confusion
		var evalErr error
		ds.Scan(func(id dataset.RowID, row []float64) bool {
			// Sampled evaluation: every 8th tuple keeps the demo fast.
			if id%8 != 0 {
				return true
			}
			cls, err := learn.Predict(model, row)
			if err != nil {
				evalErr = err
				return false
			}
			conf.Observe(cls == learn.ClassPositive, user.Relevant(id))
			return true
		})
		return conf.F1(), evalErr
	}

	var evalErr error
	sess, err := ide.NewSession(ide.Config{
		MaxLabels:        70,
		EstimatorFactory: estimator,
		Strategy:         strategy,
		Seed:             29,
		SeedWithPositive: true,
		OnIteration: func(it ide.IterationInfo) {
			if it.LabelsGiven%5 != 0 {
				return
			}
			f1, err := eval(it.Model)
			if err != nil {
				evalErr = err
				return
			}
			curve.Append(float64(it.LabelsGiven), f1)
		},
	}, provider, ide.OracleLabeler{O: user})
	if err != nil {
		return 0, "", err
	}
	res, err := sess.Run(ctx)
	if err != nil {
		return 0, "", err
	}
	if evalErr != nil {
		return 0, "", evalErr
	}
	final, err := eval(res.Model)
	if err != nil {
		return 0, "", err
	}
	effort := "n/a"
	if x, ok := curve.FirstXReaching(0.6); ok {
		effort = fmt.Sprintf("%.0f", x)
	}
	return final, effort, nil
}
