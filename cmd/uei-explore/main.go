// Command uei-explore runs a live interactive data exploration at the
// terminal: UEI proposes one tuple per iteration, the human answers y/n
// ("is this the kind of object you are looking for?"), and after the label
// budget is spent the engine retrieves everything the learned model
// considers relevant.
//
// Usage:
//
//	uei-explore -store ./store            # over an ingested store
//	uei-explore -gen 50000 -labels 30     # self-contained demo
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"github.com/uei-db/uei/internal/al"
	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/ide"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/obs"
	"github.com/uei-db/uei/internal/oracle"
	"github.com/uei-db/uei/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "uei-explore:", err)
		os.Exit(1)
	}
}

// humanLabeler asks the terminal user for each label.
type humanLabeler struct {
	in      *bufio.Reader
	columns []string
	count   int
}

// Label implements ide.Labeler.
func (h *humanLabeler) Label(id uint32, row []float64) oracle.Label {
	h.count++
	fmt.Printf("\n[%d] tuple #%d:\n", h.count, id)
	for i, c := range h.columns {
		fmt.Printf("      %-8s = %g\n", c, row[i])
	}
	for {
		fmt.Print("      relevant? [y/n/q]: ")
		line, err := h.in.ReadString('\n')
		if err != nil {
			fmt.Println("\n(input closed; treating as not relevant)")
			return oracle.Negative
		}
		switch strings.ToLower(strings.TrimSpace(line)) {
		case "y", "yes":
			return oracle.Positive
		case "n", "no":
			return oracle.Negative
		case "q", "quit":
			fmt.Println("(quit requested; remaining answers default to not relevant)")
			return oracle.Negative
		}
	}
}

// Count implements ide.Labeler.
func (h *humanLabeler) Count() int { return h.count }

// allRowIDs enumerates 0..n-1.
func allRowIDs(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(i)
	}
	return out
}

// mustSchema rebuilds a schema from stored column names; the store
// validated them at build time.
func mustSchema(columns []string) dataset.Schema {
	return dataset.MustSchema(columns...)
}

func run() error {
	var (
		storeDir = flag.String("store", "", "existing UEI store directory (from uei-ingest)")
		gen      = flag.Int("gen", 0, "generate a synthetic store of this many tuples first")
		seed     = flag.Int64("seed", 1, "seed for generation and sampling")
		labels   = flag.Int("labels", 25, "label budget (iterations)")
		budget   = flag.Int64("budget", 8<<20, "memory budget in bytes")
		maxShow  = flag.Int("show", 20, "max result tuples to print")
		auto     = flag.Bool("auto", false, "demo mode: a simulated user answers instead of you")
		savePath = flag.String("save", "", "write a session snapshot (labeled set) here at the end")
		loadPath = flag.String("resume", "", "resume from a session snapshot written by -save")
		tracePth = flag.String("trace", "", "write the run's hierarchical span trace as JSONL to this file (analyze with uei-trace)")
		metrAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :8080)")
		summary  = flag.Bool("summary", false, "print a phase-latency breakdown table at the end")
		cacheByt = flag.Int64("block-cache-bytes", 0, "shared decoded-chunk block cache budget in bytes (0 disables)")
		shards   = flag.Int("shards", 1, "store layout: 1 = legacy flat, >1 = sharded with exactly that many shards (with -gen, builds that many shards)")
		shardDl  = flag.Duration("shard-deadline", 0, "per-shard operation deadline; slow shards are skipped and the step degrades (0 disables)")
	)
	flag.Parse()

	if *shards < 1 {
		return fmt.Errorf("-shards %d must be at least 1", *shards)
	}
	if *shardDl < 0 {
		return fmt.Errorf("-shard-deadline %v must not be negative", *shardDl)
	}

	// Ctrl-C cancels the exploration cleanly: the session aborts within one
	// iteration, the prefetcher's in-flight load stops at its next chunk
	// boundary, and deferred cleanup still runs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if *tracePth != "" {
		tf, err := os.Create(*tracePth)
		if err != nil {
			return err
		}
		defer tf.Close()
		w := bufio.NewWriter(tf)
		defer w.Flush()
		tracer = obs.NewTracer(w)
	}
	if *metrAddr != "" {
		srv, err := server.ServeDebug(*metrAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("metrics on http://%s/metrics (also /debug/vars, /debug/pprof)\n", srv.Addr())
	}

	dir := *storeDir
	if dir == "" {
		if *gen <= 0 {
			return fmt.Errorf("either -store or -gen is required")
		}
		tmp, err := os.MkdirTemp("", "uei-explore-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		fmt.Printf("generating %d synthetic tuples and building a store in %s...\n", *gen, tmp)
		ds, err := dataset.GenerateSky(dataset.SkyConfig{N: *gen, Seed: *seed})
		if err != nil {
			return err
		}
		if err := core.Build(tmp, ds, core.BuildOptions{TargetChunkBytes: 64 * 1024, Shards: *shards}); err != nil {
			return err
		}
		dir = tmp
	}

	idx, err := core.Open(ctx, dir, core.Options{
		MemoryBudgetBytes: *budget,
		EnablePrefetch:    true,
		Seed:              *seed,
		Registry:          reg,
		Tracer:            tracer,
		BlockCacheBytes:   *cacheByt,
		Shards:            *shards,
		ShardDeadline:     *shardDl,
	})
	if err != nil {
		return err
	}
	defer idx.Close()
	if idx.Sharded() {
		fmt.Printf("sharded store: %d shards\n", idx.NumShards())
	}

	columns := idx.Columns()
	scales := idx.Bounds().Widths()

	provider, err := ide.NewUEIProvider(idx)
	if err != nil {
		return err
	}
	provider.RetrievalCutoff = 0.05

	var labeler ide.Labeler
	seedWithPositive := false
	if *auto {
		// Demo mode: rebuild the tuples from the store and synthesize a
		// medium target region; a simulated user answers the questions.
		rows, err := idx.FetchRows(ctx, allRowIDs(idx.RowCount()))
		if err != nil {
			return err
		}
		ds := dataset.New(mustSchema(columns), len(rows))
		for _, r := range rows {
			if _, err := ds.Append(r.Vals); err != nil {
				return err
			}
		}
		region, err := oracle.FindRegion(ds, 0.004, 0.4, *seed, 12)
		if err != nil {
			return err
		}
		user, err := oracle.New(ds, region)
		if err != nil {
			return err
		}
		fmt.Printf("auto mode: simulated user seeks a region holding %d tuples (%.2f%%)\n",
			user.RelevantCount(), region.Selectivity(ds)*100)
		labeler = ide.OracleLabeler{O: user}
		seedWithPositive = true
	} else {
		labeler = &humanLabeler{in: bufio.NewReader(os.Stdin), columns: columns}
	}

	cfg := ide.Config{
		MaxLabels:        *labels,
		EstimatorFactory: func() learn.Classifier { return learn.NewDWKNN(7, scales) },
		Strategy:         al.LeastConfidence{},
		Seed:             *seed,
		// A human cannot be asked for a guaranteed-positive example id, so
		// interactive sessions start with pure random acquisition; answer
		// "y" to at least one early tuple or the model cannot start
		// learning. Auto mode seeds from the simulated user.
		SeedWithPositive: seedWithPositive,
		Registry:         reg,
		Tracer:           tracer,
	}
	var sess *ide.Session
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			return err
		}
		snap, err := ide.ReadSnapshot(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("resuming from %s (%d labels already given)\n", *loadPath, len(snap.IDs))
		sess, err = ide.NewSessionFromSnapshot(cfg, provider, labeler, snap)
		if err != nil {
			return err
		}
	} else {
		var err error
		sess, err = ide.NewSession(cfg, provider, labeler)
		if err != nil {
			return err
		}
	}

	fmt.Printf("\nexploring %d tuples; you will label up to %d examples.\n", idx.RowCount(), *labels)
	fmt.Println("answer y if the shown tuple matches what you are looking for.")
	// With tracing on, the whole run becomes one hierarchical trace: an
	// "explore" root span with the engine's prepare/iteration/label/retrain
	// spans beneath it, so uei-trace breaks down an interactive run the same
	// way it does server steps.
	runCtx := ctx
	var root *obs.Span
	if tracer != nil {
		runCtx = obs.ContextWithTrace(ctx, tracer.NewTrace())
		runCtx, root = obs.StartSpan(runCtx, "explore")
	}
	res, err := sess.Run(runCtx)
	if root != nil {
		switch {
		case errors.Is(err, context.Canceled):
			root.SetOutcome("cancelled")
		case err != nil:
			root.SetOutcome("error")
		}
		root.End(nil)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Println("\nexploration interrupted; exiting cleanly.")
			return nil
		}
		return err
	}

	fmt.Printf("\nexploration finished: %d labels, %d iterations, %d tuples retrieved as relevant.\n",
		res.LabelsUsed, res.Iterations, len(res.Positive))
	show := len(res.Positive)
	if show > *maxShow {
		show = *maxShow
	}
	if show > 0 {
		fmt.Printf("first %d results:\n", show)
		rows, err := idx.FetchRows(ctx, res.Positive[:show])
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("  #%-8d %v\n", r.ID, r.Vals)
		}
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			return err
		}
		err = sess.Snapshot().Save(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("session snapshot written to %s\n", *savePath)
	}

	stats := idx.Stats()
	fmt.Printf("\nindex stats: %d region swaps, %d deferred, %d prefetch hits, %d bytes read, peak memory %d bytes\n",
		stats.RegionSwaps, stats.SwapsDeferred, stats.PrefetchHits, stats.BytesRead, stats.PeakMemory)
	if *summary {
		fmt.Printf("\n%s", obs.FormatSummary(reg))
	}
	if tracer != nil {
		if err := tracer.Err(); err != nil {
			return fmt.Errorf("trace write: %w", err)
		}
		fmt.Printf("trace written to %s; analyze with uei-trace\n", *tracePth)
	}
	return nil
}
