// Command uei-loadgen drives a running uei-serve with a closed-loop
// fleet of simulated users: each user explores named interest regions
// through the real session API with think time, mixed session lengths,
// and early abandonment, while honoring the server's admission control
// (429/503 + Retry-After). The run reports per-step latency percentiles,
// SLO compliance, backpressure counters, and a workflow digest that is
// identical across same-seed runs.
//
// Usage:
//
//	uei-loadgen -list
//	uei-loadgen -addr 127.0.0.1:8080 -profile static
//	uei-loadgen -profile zipfian-hotspot -users 500 -out summary.json
//	uei-loadgen -profile my-workload.json -join-trace steps.jsonl
//
// -profile names a builtin or a JSON profile file. The run waits on GET
// /readyz before starting, so boot ordering needs no sleeps.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/uei-db/uei/internal/loadgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "uei-loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "uei-serve address (host:port or full URL)")
		profileArg   = flag.String("profile", "static", "builtin profile name or path to a JSON profile file")
		users        = flag.Int("users", 0, "override the profile's fleet size")
		seed         = flag.Int64("seed", 0, "override the profile's seed")
		sessions     = flag.Int("sessions", 0, "override sessions per user")
		sloMs        = flag.Float64("slo-ms", 0, "override the per-step SLO budget in milliseconds")
		out          = flag.String("out", "", "write the machine-readable JSON summary to this file")
		joinTrace    = flag.String("join-trace", "", "join collected trace ids against this uei-serve -trace JSONL file")
		readyTimeout = flag.Duration("ready-timeout", 60*time.Second, "how long to wait for GET /readyz before giving up")
		list         = flag.Bool("list", false, "list builtin profiles and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range loadgen.BuiltinNames() {
			p, _ := loadgen.Builtin(name)
			fmt.Printf("%-24s users=%-4d %s\n", name, p.Users, p.Description)
		}
		return nil
	}

	p, err := resolveProfile(*profileArg)
	if err != nil {
		return err
	}
	if *users > 0 {
		p.Users = *users
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	if *sessions > 0 {
		p.SessionsPerUser = *sessions
	}
	if *sloMs > 0 {
		p.SLOMillis = *sloMs
	}

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	res, err := loadgen.Run(base, p, loadgen.Options{ReadyTimeout: *readyTimeout})
	if err != nil {
		return err
	}

	if *joinTrace != "" {
		join, err := loadgen.JoinTraceFile(*joinTrace, res.TraceIDs)
		if err != nil {
			return fmt.Errorf("join trace: %w", err)
		}
		res.Summary.TraceJoin = join
	}

	res.Summary.WriteHuman(os.Stdout)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		werr := res.Summary.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("write summary: %w", werr)
		}
	}

	if n := res.Summary.TotalErrors(); n > 0 {
		return fmt.Errorf("%d requests failed (see failed sessions above)", n)
	}
	return nil
}

// resolveProfile loads a JSON profile file when the argument names an
// existing file (or looks like a path), and a builtin otherwise.
func resolveProfile(arg string) (loadgen.Profile, error) {
	if _, err := os.Stat(arg); err == nil {
		return loadgen.Load(arg)
	}
	if strings.ContainsAny(arg, "/.") {
		return loadgen.Profile{}, fmt.Errorf("profile file %q not found", arg)
	}
	if p, ok := loadgen.Builtin(arg); ok {
		return p, nil
	}
	return loadgen.Profile{}, fmt.Errorf("unknown profile %q (builtins: %s)", arg, strings.Join(loadgen.BuiltinNames(), ", "))
}
