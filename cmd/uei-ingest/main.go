// Command uei-ingest builds a UEI index (columnar inverted chunk store +
// manifest) from a numeric CSV file, or from the built-in synthetic SDSS
// generator. It corresponds to UEI's once-per-dataset Index Initialization
// phase (Algorithm 2 lines 1-11).
//
// Usage:
//
//	uei-ingest -csv photoobj.csv -out ./store
//	uei-ingest -gen 1000000 -seed 7 -out ./store -chunk 481280
//	uei-ingest -inspect ./store
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/obs"
	"github.com/uei-db/uei/internal/shard"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "uei-ingest:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		csvPath  = flag.String("csv", "", "numeric CSV with a header row to ingest")
		gen      = flag.Int("gen", 0, "generate this many synthetic SDSS-like tuples instead of reading a CSV")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("out", "", "output store directory (must be empty or absent)")
		chunk    = flag.Int("chunk", chunkstore.DefaultTargetChunkBytes, "target chunk size in bytes (Table 1: 481280 = 470KB)")
		inspect  = flag.String("inspect", "", "print a summary of an existing store and exit")
		external = flag.Bool("external", false, "stream the CSV through the external-sort builder (bounded memory, for inputs larger than RAM)")
		spill    = flag.Int("spill", 1<<20, "external build: max (value,id) pairs buffered per dimension before spilling")
		shards   = flag.Int("shards", 1, "partition the store into this many shards (1 = flat legacy layout)")
		segments = flag.Int("segments", 0, "sharded build: grid segments per dimension cells are hashed over (0 = default 5)")
		traceFl  = flag.String("trace", "", "write a hierarchical span trace of the ingest as JSONL to this file (analyze with uei-trace)")
	)
	flag.Parse()

	if *shards < 1 {
		return fmt.Errorf("-shards %d must be at least 1", *shards)
	}
	if *inspect != "" {
		return inspectStore(*inspect)
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	// With -trace, the whole ingest is one hierarchical trace: an "ingest"
	// root span with read and build child spans, analyzable by uei-trace
	// exactly like a server step trace. Without it the span calls below are
	// measuring-only no-ops.
	ctx := context.Background()
	if *traceFl != "" {
		tf, err := os.Create(*traceFl)
		if err != nil {
			return fmt.Errorf("create trace file: %w", err)
		}
		defer tf.Close()
		bw := bufio.NewWriter(tf)
		defer bw.Flush()
		tracer := obs.NewTracer(bw)
		ctx = obs.ContextWithTrace(ctx, tracer.NewTrace())
		defer fmt.Printf("trace written to %s; analyze with uei-trace\n", *traceFl)
	}
	ctx, root := obs.StartSpan(ctx, "ingest")
	defer func() {
		if err != nil {
			root.SetOutcome("error")
		}
		root.End(nil)
	}()

	if *external {
		if *shards > 1 {
			return fmt.Errorf("-external does not support -shards > 1 (the sharded builder partitions in memory)")
		}
		if *csvPath == "" {
			return fmt.Errorf("-external requires -csv (streamed input)")
		}
		start := time.Now()
		fmt.Printf("streaming %s through the external-sort builder...\n", *csvPath)
		_, build := obs.StartSpan(ctx, "build")
		st, err := buildExternalFromCSV(*csvPath, *out, *chunk, *spill)
		if err != nil {
			build.SetOutcome("error")
			build.End(nil)
			return err
		}
		build.End(map[string]float64{"rows": float64(st.RowCount())})
		fmt.Printf("index built in %v (%d rows, bounded memory)\n", time.Since(start).Round(time.Millisecond), st.RowCount())
		return inspectStore(*out)
	}

	var ds *dataset.Dataset
	start := time.Now()
	_, read := obs.StartSpan(ctx, "read")
	switch {
	case *csvPath != "" && *gen > 0:
		read.End(nil)
		return fmt.Errorf("-csv and -gen are mutually exclusive")
	case *csvPath != "":
		fmt.Printf("reading %s...\n", *csvPath)
		ds, err = dataset.ReadCSVFile(*csvPath)
	case *gen > 0:
		fmt.Printf("generating %d synthetic SDSS-like tuples (seed %d)...\n", *gen, *seed)
		ds, err = dataset.GenerateSky(dataset.SkyConfig{N: *gen, Seed: *seed})
	default:
		read.End(nil)
		return fmt.Errorf("one of -csv or -gen is required")
	}
	if err != nil {
		read.SetOutcome("error")
		read.End(nil)
		return err
	}
	read.End(map[string]float64{"rows": float64(ds.Len())})
	fmt.Printf("dataset: %d tuples x %d attributes (%s), %d bytes raw, loaded in %v\n",
		ds.Len(), ds.Dims(), ds.Schema(), ds.SizeBytes(), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	_, build := obs.StartSpan(ctx, "build")
	if err := core.Build(*out, ds, core.BuildOptions{TargetChunkBytes: *chunk, Shards: *shards, SegmentsPerDim: *segments}); err != nil {
		build.SetOutcome("error")
		build.End(nil)
		return err
	}
	build.End(map[string]float64{"shards": float64(*shards)})
	if *shards > 1 {
		fmt.Printf("index built in %v (%d shards)\n", time.Since(start).Round(time.Millisecond), *shards)
	} else {
		fmt.Printf("index built in %v\n", time.Since(start).Round(time.Millisecond))
	}
	return inspectStore(*out)
}

// buildExternalFromCSV streams a headered numeric CSV row by row into the
// external-sort builder, never holding the dataset in memory.
func buildExternalFromCSV(path, out string, chunk, spill int) (*chunkstore.Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open %s: %w", path, err)
	}
	defer f.Close()
	cr := csv.NewReader(f)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read csv header: %w", err)
	}
	columns := append([]string(nil), header...)
	row := make([]float64, len(columns))
	line := 1
	iter := func() ([]float64, bool, error) {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil, false, nil
		}
		line++
		if err != nil {
			return nil, false, fmt.Errorf("csv line %d: %w", line, err)
		}
		if len(rec) != len(columns) {
			return nil, false, fmt.Errorf("csv line %d has %d fields, want %d", line, len(rec), len(columns))
		}
		for i, field := range rec {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, false, fmt.Errorf("csv line %d field %q: %w", line, columns[i], err)
			}
			row[i] = v
		}
		return row, true, nil
	}
	return chunkstore.BuildExternal(out, columns, iter, chunkstore.ExternalBuildOptions{
		TargetChunkBytes: chunk,
		MaxPairsInMemory: spill,
	})
}

func inspectStore(dir string) error {
	if shard.IsShardedDir(dir) {
		return inspectShardedStore(dir)
	}
	st, err := chunkstore.Open(dir, nil)
	if err != nil {
		return err
	}
	m := st.Manifest()
	fmt.Printf("store %s:\n", dir)
	fmt.Printf("  rows:          %d\n", st.RowCount())
	fmt.Printf("  dimensions:    %d (%v)\n", st.Dims(), m.Columns)
	fmt.Printf("  total bytes:   %d\n", st.TotalBytes())
	fmt.Printf("  chunk target:  %d bytes\n", m.TargetChunkBytes)
	for d, chunks := range m.Chunks {
		var bytes int64
		var refs int
		for _, c := range chunks {
			bytes += c.Bytes
			refs += c.RowRefs
		}
		fmt.Printf("  dim %d (%s): %d chunks, %d bytes, %d row refs, values [%g, %g]\n",
			d, m.Columns[d], len(chunks), bytes, refs, m.MinValues[d], m.MaxValues[d])
	}
	return nil
}

func inspectShardedStore(dir string) error {
	m, err := shard.LoadManifest(dir)
	if err != nil {
		return err
	}
	fmt.Printf("sharded store %s:\n", dir)
	fmt.Printf("  shards:        %d (%s)\n", m.Shards, m.Hash)
	fmt.Printf("  rows:          %d\n", m.RowCount)
	fmt.Printf("  dimensions:    %d (%v)\n", len(m.Columns), m.Columns)
	fmt.Printf("  grid:          %d segments per dim\n", m.SegmentsPerDim)
	fmt.Printf("  chunk target:  %d bytes\n", m.TargetChunkBytes)
	for s, n := range m.ShardRowCounts {
		fmt.Printf("  %s: %d rows\n", shard.ShardDirName(s), n)
	}
	return nil
}
