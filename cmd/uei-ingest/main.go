// Command uei-ingest builds a UEI index (columnar inverted chunk store +
// manifest) from a numeric CSV file, or from the built-in synthetic SDSS
// generator. It corresponds to UEI's once-per-dataset Index Initialization
// phase (Algorithm 2 lines 1-11).
//
// Usage:
//
//	uei-ingest -csv photoobj.csv -out ./store
//	uei-ingest -gen 1000000 -seed 7 -out ./store -chunk 481280
//	uei-ingest -inspect ./store
//	uei-ingest -gen 100000 -live -out ./live       # WAL-backed live store
//	uei-ingest -csv grows.csv -follow -out ./live  # tail new rows into it
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/obs"
	"github.com/uei-db/uei/internal/shard"
	"github.com/uei-db/uei/internal/stream"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "uei-ingest:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		csvPath  = flag.String("csv", "", "numeric CSV with a header row to ingest")
		gen      = flag.Int("gen", 0, "generate this many synthetic SDSS-like tuples instead of reading a CSV")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("out", "", "output store directory (must be empty or absent)")
		chunk    = flag.Int("chunk", chunkstore.DefaultTargetChunkBytes, "target chunk size in bytes (Table 1: 481280 = 470KB)")
		inspect  = flag.String("inspect", "", "print a summary of an existing store and exit")
		external = flag.Bool("external", false, "stream the CSV through the external-sort builder (bounded memory, for inputs larger than RAM)")
		spill    = flag.Int("spill", 1<<20, "external build: max (value,id) pairs buffered per dimension before spilling")
		shards   = flag.Int("shards", 1, "partition the store into this many shards (1 = flat legacy layout)")
		segments = flag.Int("segments", 0, "sharded build: grid segments per dimension cells are hashed over (0 = default 5)")
		traceFl  = flag.String("trace", "", "write a hierarchical span trace of the ingest as JSONL to this file (analyze with uei-trace)")
		live     = flag.Bool("live", false, "build the live (streaming) layout: a WAL-backed write store that accepts appends after the build (see -follow)")
		follow   = flag.Bool("follow", false, "tail -csv into an existing live store in -out: already-ingested rows are skipped, new lines are appended and flushed as they land; Ctrl-C stops")
	)
	flag.Parse()

	if *shards < 1 {
		return fmt.Errorf("-shards %d must be at least 1", *shards)
	}
	if *inspect != "" {
		return inspectStore(*inspect)
	}
	if *follow {
		if *csvPath == "" || *out == "" {
			return fmt.Errorf("-follow requires -csv and -out (an existing live store)")
		}
		return followCSV(*csvPath, *out)
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	if *live && *external {
		return fmt.Errorf("-live does not support -external (the live builder seeds from an in-memory dataset)")
	}

	// With -trace, the whole ingest is one hierarchical trace: an "ingest"
	// root span with read and build child spans, analyzable by uei-trace
	// exactly like a server step trace. Without it the span calls below are
	// measuring-only no-ops.
	ctx := context.Background()
	if *traceFl != "" {
		tf, err := os.Create(*traceFl)
		if err != nil {
			return fmt.Errorf("create trace file: %w", err)
		}
		defer tf.Close()
		bw := bufio.NewWriter(tf)
		defer bw.Flush()
		tracer := obs.NewTracer(bw)
		ctx = obs.ContextWithTrace(ctx, tracer.NewTrace())
		defer fmt.Printf("trace written to %s; analyze with uei-trace\n", *traceFl)
	}
	ctx, root := obs.StartSpan(ctx, "ingest")
	defer func() {
		if err != nil {
			root.SetOutcome("error")
		}
		root.End(nil)
	}()

	if *external {
		if *shards > 1 {
			return fmt.Errorf("-external does not support -shards > 1 (the sharded builder partitions in memory)")
		}
		if *csvPath == "" {
			return fmt.Errorf("-external requires -csv (streamed input)")
		}
		start := time.Now()
		fmt.Printf("streaming %s through the external-sort builder...\n", *csvPath)
		_, build := obs.StartSpan(ctx, "build")
		st, err := buildExternalFromCSV(*csvPath, *out, *chunk, *spill)
		if err != nil {
			build.SetOutcome("error")
			build.End(nil)
			return err
		}
		build.End(map[string]float64{"rows": float64(st.RowCount())})
		fmt.Printf("index built in %v (%d rows, bounded memory)\n", time.Since(start).Round(time.Millisecond), st.RowCount())
		return inspectStore(*out)
	}

	var ds *dataset.Dataset
	start := time.Now()
	_, read := obs.StartSpan(ctx, "read")
	switch {
	case *csvPath != "" && *gen > 0:
		read.End(nil)
		return fmt.Errorf("-csv and -gen are mutually exclusive")
	case *csvPath != "":
		fmt.Printf("reading %s...\n", *csvPath)
		ds, err = dataset.ReadCSVFile(*csvPath)
	case *gen > 0:
		fmt.Printf("generating %d synthetic SDSS-like tuples (seed %d)...\n", *gen, *seed)
		ds, err = dataset.GenerateSky(dataset.SkyConfig{N: *gen, Seed: *seed})
	default:
		read.End(nil)
		return fmt.Errorf("one of -csv or -gen is required")
	}
	if err != nil {
		read.SetOutcome("error")
		read.End(nil)
		return err
	}
	read.End(map[string]float64{"rows": float64(ds.Len())})
	fmt.Printf("dataset: %d tuples x %d attributes (%s), %d bytes raw, loaded in %v\n",
		ds.Len(), ds.Dims(), ds.Schema(), ds.SizeBytes(), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	_, build := obs.StartSpan(ctx, "build")
	if err := core.Build(*out, ds, core.BuildOptions{TargetChunkBytes: *chunk, Shards: *shards, SegmentsPerDim: *segments, LiveIngest: *live}); err != nil {
		build.SetOutcome("error")
		build.End(nil)
		return err
	}
	build.End(map[string]float64{"shards": float64(*shards)})
	if *live {
		fmt.Printf("live store built in %v (%d shards); append with -follow or POST /v1/append\n",
			time.Since(start).Round(time.Millisecond), *shards)
	} else if *shards > 1 {
		fmt.Printf("index built in %v (%d shards)\n", time.Since(start).Round(time.Millisecond), *shards)
	} else {
		fmt.Printf("index built in %v\n", time.Since(start).Round(time.Millisecond))
	}
	return inspectStore(*out)
}

// buildExternalFromCSV streams a headered numeric CSV row by row into the
// external-sort builder, never holding the dataset in memory.
func buildExternalFromCSV(path, out string, chunk, spill int) (*chunkstore.Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open %s: %w", path, err)
	}
	defer f.Close()
	cr := csv.NewReader(f)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read csv header: %w", err)
	}
	columns := append([]string(nil), header...)
	row := make([]float64, len(columns))
	line := 1
	iter := func() ([]float64, bool, error) {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil, false, nil
		}
		line++
		if err != nil {
			return nil, false, fmt.Errorf("csv line %d: %w", line, err)
		}
		if len(rec) != len(columns) {
			return nil, false, fmt.Errorf("csv line %d has %d fields, want %d", line, len(rec), len(columns))
		}
		for i, field := range rec {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, false, fmt.Errorf("csv line %d field %q: %w", line, columns[i], err)
			}
			row[i] = v
		}
		return row, true, nil
	}
	return chunkstore.BuildExternal(out, columns, iter, chunkstore.ExternalBuildOptions{
		TargetChunkBytes: chunk,
		MaxPairsInMemory: spill,
	})
}

// followCSV tails a headered numeric CSV into an existing live store:
// rows the store already holds are skipped, new complete lines are
// appended (WAL-fsynced) and flushed so they become visible to readers,
// and a torn trailing line is kept pending until its newline arrives.
func followCSV(path, dir string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	db, err := stream.Open(dir, stream.Options{})
	if err != nil {
		return err
	}
	defer db.Close()

	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open %s: %w", path, err)
	}
	defer f.Close()
	br := bufio.NewReader(f)

	header, err := readFullLine(br, "")
	if err != nil {
		return fmt.Errorf("read csv header: %w", err)
	}
	if header == "" {
		return fmt.Errorf("%s: empty csv header", path)
	}
	cols := strings.Split(strings.TrimRight(header, "\r"), ",")
	want := db.Columns()
	if len(cols) != len(want) {
		return fmt.Errorf("%s has %d columns, live store has %d (%v)", path, len(cols), len(want), want)
	}

	skip := db.TotalRows()
	fmt.Printf("following %s into %s (epoch %d, %d rows already ingested)...\n", path, dir, db.Epoch(), skip)
	appended := 0
	var pending string
	var batch [][]float64
	flushBatch := func() error {
		if len(batch) == 0 {
			return nil
		}
		if _, err := db.Append(batch); err != nil {
			return err
		}
		appended += len(batch)
		batch = batch[:0]
		// Flush eagerly so tailed rows commit an epoch readers can see
		// without waiting for the memtable size threshold.
		return db.Flush(ctx)
	}
	for {
		line, err := readFullLine(br, pending)
		switch {
		case err == errTornLine:
			// End of file, possibly mid-line: hold the fragment, drain the
			// batch, and poll for growth.
			pending = line
			if err := flushBatch(); err != nil {
				return err
			}
			select {
			case <-ctx.Done():
				fmt.Printf("\nstopped; %d rows appended (epoch %d, %d total rows)\n", appended, db.Epoch(), db.TotalRows())
				return nil
			case <-time.After(500 * time.Millisecond):
			}
			continue
		case err != nil:
			return err
		}
		pending = ""
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if skip > 0 {
			skip--
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != len(want) {
			return fmt.Errorf("csv row %q has %d fields, want %d", line, len(fields), len(want))
		}
		row := make([]float64, len(fields))
		for i, field := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
			if err != nil {
				return fmt.Errorf("csv field %q (%s): %w", field, want[i], err)
			}
			row[i] = v
		}
		batch = append(batch, row)
		if len(batch) >= 1024 {
			if err := flushBatch(); err != nil {
				return err
			}
		}
	}
}

// errTornLine marks a line still missing its newline at EOF.
var errTornLine = fmt.Errorf("torn line")

// readFullLine returns the next newline-terminated line (without the
// newline), prepending a fragment held from the previous poll. At EOF it
// returns the accumulated fragment with errTornLine.
func readFullLine(br *bufio.Reader, pending string) (string, error) {
	chunk, err := br.ReadString('\n')
	if err == io.EOF {
		return pending + chunk, errTornLine
	}
	if err != nil {
		return "", err
	}
	return pending + strings.TrimSuffix(chunk, "\n"), nil
}

func inspectStore(dir string) error {
	if stream.IsLiveDir(dir) {
		return inspectLiveStore(dir)
	}
	if shard.IsShardedDir(dir) {
		return inspectShardedStore(dir)
	}
	st, err := chunkstore.Open(dir, nil)
	if err != nil {
		return err
	}
	m := st.Manifest()
	fmt.Printf("store %s:\n", dir)
	fmt.Printf("  rows:          %d\n", st.RowCount())
	fmt.Printf("  dimensions:    %d (%v)\n", st.Dims(), m.Columns)
	fmt.Printf("  total bytes:   %d\n", st.TotalBytes())
	fmt.Printf("  chunk target:  %d bytes\n", m.TargetChunkBytes)
	for d, chunks := range m.Chunks {
		var bytes int64
		var refs int
		for _, c := range chunks {
			bytes += c.Bytes
			refs += c.RowRefs
		}
		fmt.Printf("  dim %d (%s): %d chunks, %d bytes, %d row refs, values [%g, %g]\n",
			d, m.Columns[d], len(chunks), bytes, refs, m.MinValues[d], m.MaxValues[d])
	}
	return nil
}

func inspectLiveStore(dir string) error {
	info, err := stream.Inspect(dir)
	if err != nil {
		return err
	}
	m := info.Manifest
	fmt.Printf("live store %s:\n", dir)
	fmt.Printf("  epoch:         %d\n", m.Epoch)
	fmt.Printf("  shards:        %d\n", m.Shards)
	fmt.Printf("  dimensions:    %d (%v)\n", len(m.Columns), m.Columns)
	fmt.Printf("  grid:          %d segments per dim\n", m.SegmentsPerDim)
	fmt.Printf("  chunk target:  %d bytes\n", m.TargetChunkBytes)
	fmt.Printf("  flushed rows:  %d\n", m.FlushedRows)
	fmt.Printf("  wal:           %d file(s), %d bytes, %d unflushed row(s)\n", info.WALFiles, info.WALBytes, info.WALRows)
	fmt.Printf("  high water:    row id %d (%d acknowledged rows)\n", info.HighWaterID, int(info.HighWaterID)+1)
	fmt.Printf("  segments:      %d\n", len(m.Segments))
	for _, seg := range m.Segments {
		fmt.Printf("    seg %d (shard %d): %d rows, %d bytes\n", seg.ID, seg.Shard, seg.Rows, seg.Bytes)
	}
	return nil
}

func inspectShardedStore(dir string) error {
	m, err := shard.LoadManifest(dir)
	if err != nil {
		return err
	}
	fmt.Printf("sharded store %s:\n", dir)
	fmt.Printf("  shards:        %d (%s)\n", m.Shards, m.Hash)
	fmt.Printf("  rows:          %d\n", m.RowCount)
	fmt.Printf("  dimensions:    %d (%v)\n", len(m.Columns), m.Columns)
	fmt.Printf("  grid:          %d segments per dim\n", m.SegmentsPerDim)
	fmt.Printf("  chunk target:  %d bytes\n", m.TargetChunkBytes)
	for s, n := range m.ShardRowCounts {
		fmt.Printf("  %s: %d rows\n", shard.ShardDirName(s), n)
	}
	return nil
}
