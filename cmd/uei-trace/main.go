// Command uei-trace analyzes a step trace written by uei-serve -trace (or
// any tracer emitting the hierarchical span JSONL): it rebuilds per-step
// span trees from parent references and prints the SLO compliance report,
// the aggregate per-phase budget attribution, the top-N slowest steps with
// their span trees, per-shard skew, and degradation-cause counts.
//
// Usage:
//
//	uei-trace steps.jsonl
//	uei-trace -top 5 -slo 250ms steps.jsonl
//	uei-trace -strict steps.jsonl   # exit 1 on orphaned spans / no steps
//
// With no file argument the trace is read from stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/uei-db/uei/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "uei-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		topN   = flag.Int("top", 3, "slowest steps to print with full span trees")
		slo    = flag.Duration("slo", 0, "per-step SLO budget for the compliance report (0 = the 500ms default)")
		strict = flag.Bool("strict", false, "fail when the trace has orphaned spans or no traced steps at all")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 1 {
		return fmt.Errorf("at most one trace file argument, got %d", flag.NArg())
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	events, err := obs.ReadTrace(in)
	if err != nil {
		return err
	}
	a := obs.Analyze(events)
	budget := *slo
	if budget <= 0 {
		budget = obs.DefaultSLOBudget
	}
	if err := a.WriteReport(os.Stdout, obs.ReportOptions{TopN: *topN, Budget: budget}); err != nil {
		return err
	}
	if *strict {
		if orphans := a.Orphans(); len(orphans) > 0 {
			return fmt.Errorf("strict: %d orphaned spans (first: %s)", len(orphans), orphans[0])
		}
		if len(a.Steps) == 0 {
			return fmt.Errorf("strict: no traced steps in input (%d legacy events)", a.LegacyEvents)
		}
		for _, st := range a.Steps {
			if st.Root == nil {
				return fmt.Errorf("strict: trace %s has no root span", st.TraceID)
			}
		}
	}
	return nil
}
