// Command uei-shardd serves the shards of one sharded UEI store over the
// HTTP/JSON shard protocol, as the data-plane worker behind a remote
// uei-serve (or any client of internal/shard/remote). Several workers can
// point at the same store directory (or byte-identical copies of it);
// the coordinator places shards — and their replicas — across the fleet
// by consistent hashing and fails over between workers, so killing one
// worker of a replicated fleet mid-session costs nothing but a failover.
//
// Usage:
//
//	uei-shardd -store ./store -addr :9101
//	uei-shardd -gen 100000 -gen-shards 4 -addr :9101   # demo store
//
// Quick check:
//
//	curl -s localhost:9101/healthz
//	curl -s localhost:9101/v1/meta | head -c 200
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/obs"
	"github.com/uei-db/uei/internal/shard"
	"github.com/uei-db/uei/internal/shard/remote"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "uei-shardd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		storeDir   = flag.String("store", "", "sharded UEI store directory (from uei-ingest -shards or core.Build)")
		gen        = flag.Int("gen", 0, "generate a synthetic sharded store of this many tuples first")
		genShards  = flag.Int("gen-shards", 2, "shard count for -gen")
		seed       = flag.Int64("seed", 1, "seed for -gen")
		addr       = flag.String("addr", ":9101", "listen address for the shard protocol")
		workers    = flag.Int("workers", 0, "per-shard read/score fan-out bound (0 = GOMAXPROCS)")
		cacheBytes = flag.Int64("block-cache-bytes", 0, "shared decoded-chunk block cache budget in bytes across the served shards (0 disables)")
		quiet      = flag.Bool("quiet", false, "suppress the per-request access log")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	dir := *storeDir
	if dir == "" {
		if *gen <= 0 {
			return fmt.Errorf("either -store or -gen is required")
		}
		if *genShards < 2 {
			return fmt.Errorf("-gen-shards %d must be at least 2 (workers serve the sharded layout)", *genShards)
		}
		tmp, err := os.MkdirTemp("", "uei-shardd-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		fmt.Printf("generating %d synthetic tuples into %d shards in %s...\n", *gen, *genShards, tmp)
		ds, err := dataset.GenerateSky(dataset.SkyConfig{N: *gen, Seed: *seed})
		if err != nil {
			return err
		}
		if err := core.Build(tmp, ds, core.BuildOptions{TargetChunkBytes: 64 * 1024, Shards: *genShards}); err != nil {
			return err
		}
		dir = tmp
	}

	idx, err := core.Open(ctx, dir, core.Options{
		// The worker never runs the exploration loop itself — sessions
		// live in uei-serve — so the budget is a placeholder ledger.
		MemoryBudgetBytes: 1 << 20,
		Workers:           *workers,
		BlockCacheBytes:   *cacheBytes,
		Registry:          obs.NewRegistry(),
	})
	if err != nil {
		return err
	}
	defer idx.Close()
	coord := idx.ShardCoordinator()
	if coord == nil {
		return fmt.Errorf("%s holds a flat store; uei-shardd serves the sharded layout: %w", dir, shard.ErrShardUnavailable)
	}

	man, err := shard.LoadManifest(dir)
	if err != nil {
		return err
	}
	logf := log.New(os.Stdout, "", log.LstdFlags).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	srv := &http.Server{Addr: *addr, Handler: remote.NewServer(coord, man, logf)}

	meta := coord.Meta()
	fmt.Printf("serving %d shards (%d tuples, %d dims) on http://%s/v1/shards/...\n",
		meta.Shards, meta.RowCount, meta.Dims(), *addr)

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Graceful drain: in-flight shard calls finish (the coordinator's
	// per-attempt deadline bounds them); new connections are refused.
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Println("drained.")
	return nil
}
