// Command uei-serve hosts concurrent interactive explorations over one
// shared UEI store as an HTTP/JSON service: each client session runs its
// own active-learning loop on a private view of the index, a global memory
// budget is arbitrated across sessions, and saturation surfaces as
// backpressure (429/503 + Retry-After) instead of failures.
//
// Usage:
//
//	uei-serve -store ./store -addr :8080
//	uei-serve -gen 100000 -addr :8080      # self-contained demo store
//
// Walkthrough (simulated user; see the README's Serving section for the
// interactive protocol):
//
//	curl -s -XPOST localhost:8080/v1/sessions \
//	  -d '{"max_labels":25,"oracle":{"selectivity":0.004}}'
//	curl -s -XPOST localhost:8080/v1/sessions/s000001/step
//	curl -s localhost:8080/v1/sessions/s000001/result
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/obs"
	"github.com/uei-db/uei/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "uei-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		storeDir    = flag.String("store", "", "existing UEI store directory (from uei-ingest)")
		gen         = flag.Int("gen", 0, "generate a synthetic store of this many tuples first")
		seed        = flag.Int64("seed", 1, "seed for generation and default session sampling")
		addr        = flag.String("addr", ":8080", "listen address for the session API (and /metrics, /debug)")
		budget      = flag.Int64("budget", 64<<20, "global memory budget in bytes, partitioned across sessions")
		minBudget   = flag.Int64("min-session-budget", 256<<10, "smallest viable per-session budget share in bytes")
		maxSessions = flag.Int("max-sessions", 16, "cap on live (non-evicted) sessions")
		queueDepth  = flag.Int("queue-depth", 2, "per-session bound on queued+running steps")
		stepConc    = flag.Int("step-concurrency", 0, "server-wide concurrent step cap (0 = GOMAXPROCS)")
		idle        = flag.Duration("idle-timeout", 5*time.Minute, "evict sessions idle this long (0 disables)")
		snapDir     = flag.String("snapshot-dir", "", "directory for evicted sessions' snapshots (default <store>/sessions)")
		maxLabels   = flag.Int("default-max-labels", 100, "label budget for sessions that do not specify one")
		prefetch    = flag.Bool("prefetch", false, "enable per-session background region prefetch (trades resume determinism for latency)")
		workers     = flag.Int("workers", 0, "shared worker pool size (0 = GOMAXPROCS)")
		cacheBytes  = flag.Int64("block-cache-bytes", 0, "shared decoded-chunk block cache budget in bytes, carved from -budget and yielded back under session pressure (0 disables)")
		shards      = flag.Int("shards", 1, "store layout: 1 = legacy flat, >1 = sharded with exactly that many shards (with -gen, builds that many shards)")
		shardDl     = flag.Duration("shard-deadline", 0, "per-shard operation deadline; slow shards are skipped and steps report degraded (0 disables)")
		traceFile   = flag.String("trace", "", "write one hierarchical step trace per request to this JSONL file (analyze with uei-trace)")
		sloBudget   = flag.Duration("slo", 0, "per-step interactivity budget for SLO accounting (0 = the 500ms default)")
		endpoints   = flag.String("shard-endpoints", "", "comma-separated uei-shardd worker URLs; serves the index remotely instead of opening -store")
		replication = flag.Int("replication", 1, "replicas per shard across the worker fleet (shards degrade only when all replicas fail)")
		hedge       = flag.Duration("hedge-delay", 0, "fire per-shard calls on a second replica after this delay, first reply wins (0 disables; needs -replication > 1)")
		live        = flag.Bool("live", false, "require the live (streaming) layout and enable POST /v1/append (with -gen, builds a live store)")
		followLive  = flag.Bool("follow-live", false, "sessions advance to newly flushed data at iteration boundaries (default: each session explores the epoch it opened)")
		flushEvery  = flag.Duration("flush-interval", 0, "live store: also flush the memtable on this period so trickle appends become visible (0 = size/demand only)")
	)
	flag.Parse()

	if *shards < 1 {
		return fmt.Errorf("-shards %d must be at least 1", *shards)
	}
	if *shardDl < 0 {
		return fmt.Errorf("-shard-deadline %v must not be negative", *shardDl)
	}
	eps := splitEndpoints(*endpoints)
	if len(eps) > 0 && *shards == 1 {
		// Remote serving is always sharded; let the fleet's manifest decide
		// unless a specific count was demanded.
		*shards = 0
	}

	// SIGINT/SIGTERM starts the graceful drain: the listener stops
	// accepting, in-flight steps finish, and live sessions are evicted to
	// snapshots so a restarted server resumes them transparently.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	dir := *storeDir
	if dir == "" && len(eps) == 0 {
		if *gen <= 0 {
			return fmt.Errorf("either -store, -gen, or -shard-endpoints is required")
		}
		tmp, err := os.MkdirTemp("", "uei-serve-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		fmt.Printf("generating %d synthetic tuples and building a store in %s...\n", *gen, tmp)
		ds, err := dataset.GenerateSky(dataset.SkyConfig{N: *gen, Seed: *seed})
		if err != nil {
			return err
		}
		if err := core.Build(tmp, ds, core.BuildOptions{TargetChunkBytes: 64 * 1024, Shards: *shards, LiveIngest: *live}); err != nil {
			return err
		}
		dir = tmp
	}

	var tracer *obs.Tracer
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return fmt.Errorf("create trace file: %w", err)
		}
		defer f.Close()
		// The tracer flushes per event through this buffer, so concurrent
		// sessions' spans survive a crash while writes stay batched.
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		tracer = obs.NewTracer(bw)
	}

	reg := obs.NewRegistry()
	m, err := server.NewManager(ctx, server.Config{
		StoreDir:              dir,
		TotalBudgetBytes:      *budget,
		MinSessionBudgetBytes: *minBudget,
		MaxSessions:           *maxSessions,
		MaxQueuedSteps:        *queueDepth,
		StepConcurrency:       *stepConc,
		IdleTimeout:           *idle,
		SnapshotDir:           *snapDir,
		DefaultMaxLabels:      *maxLabels,
		EnablePrefetch:        *prefetch,
		Workers:               *workers,
		Seed:                  *seed,
		Registry:              reg,
		BlockCacheBytes:       *cacheBytes,
		Shards:                *shards,
		ShardDeadline:         *shardDl,
		ShardEndpoints:        eps,
		Replication:           *replication,
		HedgeDelay:            *hedge,
		Tracer:                tracer,
		SLOBudget:             *sloBudget,
		LiveIngest:            *live,
		FollowLive:            *followLive,
		FlushInterval:         *flushEvery,
	})
	if err != nil {
		return err
	}

	if len(eps) > 0 {
		fmt.Printf("remote data plane: %d shards over %d workers (replication %d, hedge delay %v)\n",
			m.Index().NumShards(), len(eps), *replication, *hedge)
	} else if m.Index().Sharded() {
		fmt.Printf("sharded store: %d shards (per-shard deadline %v)\n", m.Index().NumShards(), *shardDl)
	}
	fmt.Printf("serving %d tuples on http://%s/v1/sessions (budget %d bytes, %d session slots)\n",
		m.Index().RowCount(), *addr, *budget, *maxSessions)
	if m.Index().Live() != nil {
		mode := "sessions pin their opening epoch"
		if *followLive {
			mode = "sessions follow new epochs"
		}
		fmt.Printf("live ingest on http://%s/v1/append (epoch %d; %s)\n", *addr, m.Index().LiveEpoch(), mode)
	}
	fmt.Printf("metrics on http://%s/metrics (also /debug/vars, /debug/pprof); Ctrl-C drains\n", *addr)
	if tracer != nil {
		fmt.Printf("tracing steps to %s (SLO budget %v); analyze with uei-trace\n", *traceFile, m.SLO().Budget())
	}
	err = server.Serve(ctx, *addr, m)
	if ctx.Err() != nil && err == nil {
		fmt.Println("drained; all live sessions snapshotted.")
	}
	return err
}

// splitEndpoints parses a comma-separated endpoint list, trimming blanks.
func splitEndpoints(s string) []string {
	var eps []string
	for _, ep := range strings.Split(s, ",") {
		if ep = strings.TrimSpace(ep); ep != "" {
			eps = append(eps, ep)
		}
	}
	return eps
}
