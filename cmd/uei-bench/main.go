// Command uei-bench regenerates the paper's evaluation: Table 1, the
// accuracy figures 3-5 (F-measure vs labeled examples, UEI vs the DBMS
// baseline, for small/medium/large target regions), the response-time
// figure 6, and the ablations of DESIGN.md.
//
// Quick mode (default) runs the scaled-down configuration in minutes;
// -full approaches the paper's data:memory ratio and takes much longer.
//
// Usage:
//
//	uei-bench                  # table 1 + figures 3-6, quick mode
//	uei-bench -full            # workstation-scale reproduction
//	uei-bench -fig6            # one figure only
//	uei-bench -ablate=all      # every ablation sweep
//	uei-bench -n 200000 -runs 5 -labels 200
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/uei-db/uei/internal/experiment"
	"github.com/uei-db/uei/internal/obs"
	"github.com/uei-db/uei/internal/oracle"
	"github.com/uei-db/uei/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "uei-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		full    = flag.Bool("full", false, "workstation-scale configuration (2M tuples, 1% memory, throttled I/O)")
		table1  = flag.Bool("table1", false, "print only Table 1")
		fig3    = flag.Bool("fig3", false, "run only Figure 3 (small region accuracy)")
		fig4    = flag.Bool("fig4", false, "run only Figure 4 (medium region accuracy)")
		fig5    = flag.Bool("fig5", false, "run only Figure 5 (large region accuracy)")
		fig6    = flag.Bool("fig6", false, "run only Figure 6 (response time; uses the classes already run or medium)")
		ablate  = flag.String("ablate", "", "ablation sweep: chunk|points|prefetch|strategy|gamma|regions|estimator|all")
		n       = flag.Int("n", 0, "override dataset cardinality")
		runs    = flag.Int("runs", 0, "override runs per result")
		labels  = flag.Int("labels", 0, "override label budget per run")
		seed    = flag.Int64("seed", 0, "override base seed")
		bw      = flag.Int64("iobw", -1, "override shared I/O bandwidth in bytes/sec (0 = unthrottled)")
		prefec  = flag.Bool("prefetch", false, "enable §3.2 background region prefetching")
		segs    = flag.Int("segments", 0, "override grid segments per dimension (|P| = segments^5)")
		workdir = flag.String("workdir", "", "directory for the built stores (default: temp)")
		csvDir  = flag.String("csv", "", "also export figure data as CSV into this directory")
		trace   = flag.String("trace", "", "write per-iteration phase spans as JSONL to this file (uei-trace reports them as legacy events)")
		metrA   = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :8080)")
		summary = flag.Bool("summary", false, "print a phase-latency breakdown table at the end")
		cacheB  = flag.Int64("block-cache-bytes", 0, "shared decoded-chunk block cache budget in bytes (0 disables, the paper's discipline)")
		shards  = flag.Int("shards", 1, "store layout: 1 = legacy flat (the paper's configuration), >1 = sharded scatter-gather with that many shards")
		repl    = flag.Int("replication", 1, "replicas per shard on the sharded layout (puts failover/hedging machinery on the measured path)")
		hedge   = flag.Duration("hedge-delay", 0, "fire per-shard calls on a second replica after this delay (0 disables; needs -replication > 1)")
		skern   = flag.String("score-kernel", "on", "symbolic-point scoring path: on = columnar kernels with exact incremental rescoring (bit-identical), off = legacy per-row ablation")
	)
	flag.Parse()

	if *skern != "on" && *skern != "off" {
		return fmt.Errorf("-score-kernel %q must be on or off", *skern)
	}
	if *shards < 1 {
		return fmt.Errorf("-shards %d must be at least 1", *shards)
	}
	if *repl < 1 {
		return fmt.Errorf("-replication %d must be at least 1", *repl)
	}
	if *hedge < 0 {
		return fmt.Errorf("-hedge-delay %v must not be negative", *hedge)
	}
	cfg := experiment.DefaultConfig()
	if *full {
		cfg = experiment.FullConfig()
	}
	reg := obs.NewRegistry()
	cfg.Obs = reg
	if *trace != "" {
		tf, err := os.Create(*trace)
		if err != nil {
			return err
		}
		defer tf.Close()
		w := bufio.NewWriter(tf)
		defer w.Flush()
		cfg.Trace = obs.NewTracer(w)
	}
	if *metrA != "" {
		srv, err := server.ServeDebug(*metrA, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("metrics on http://%s/metrics (also /debug/vars, /debug/pprof)\n", srv.Addr())
	}
	defer func() {
		if *summary {
			fmt.Printf("\n%s", obs.FormatSummary(reg))
		}
		if cfg.Trace == nil {
			return
		}
		if err := cfg.Trace.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "uei-bench: trace write:", err)
		} else {
			fmt.Printf("trace written to %s (flat phase stream; hierarchical step traces come from uei-serve -trace)\n", *trace)
		}
	}()
	if *n > 0 {
		cfg.N = *n
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *labels > 0 {
		cfg.MaxLabels = *labels
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *bw >= 0 {
		cfg.IOBandwidthBytesPerSec = *bw
	}
	if *prefec {
		cfg.EnablePrefetch = true
	}
	if *segs > 0 {
		cfg.SegmentsPerDim = *segs
	}
	if *cacheB > 0 {
		cfg.BlockCacheBytes = *cacheB
	}
	if *shards > 1 {
		cfg.Shards = *shards
	}
	if *repl > 1 {
		cfg.Replication = *repl
	}
	if *hedge > 0 {
		cfg.HedgeDelay = *hedge
	}
	if *skern == "off" {
		off := false
		cfg.ScoreKernel = &off
	}
	cfg.WorkDir = *workdir

	fmt.Println(experiment.Table1(cfg))
	if *table1 {
		return nil
	}

	start := time.Now()
	fmt.Printf("building environment (N=%d)...\n", cfg.N)
	env, err := experiment.Setup(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("environment ready in %v (budget %d bytes, %.2f%% of heap)\n\n",
		time.Since(start).Round(time.Millisecond), env.BudgetBytes(), cfg.MemoryBudgetFraction*100)

	if *ablate != "" {
		return runAblations(env, cfg, *ablate)
	}

	classes := pickClasses(*fig3, *fig4, *fig5, *fig6)
	var results []*experiment.ComparisonResult
	for _, class := range classes {
		fmt.Printf("running %s-region comparison (%d runs x 2 schemes x %d labels)...\n",
			class, cfg.Runs, cfg.MaxLabels)
		t0 := time.Now()
		res, err := experiment.RunComparison(env, class)
		if err != nil {
			return err
		}
		fmt.Printf("done in %v\n\n", time.Since(t0).Round(time.Millisecond))
		if !*fig6 {
			fmt.Println(experiment.FormatAccuracyFigure(res))
		}
		if *csvDir != "" {
			paths, err := experiment.ExportComparisonCSV(*csvDir, res)
			if err != nil {
				return err
			}
			fmt.Printf("exported %v\n\n", paths)
		}
		results = append(results, res)
	}
	fmt.Println(experiment.FormatResponseTimeFigure(results))
	fmt.Printf("mean response-time speedup across classes: %.1fx\n", experiment.SpeedupAcrossClasses(results))
	return nil
}

// pickClasses maps figure flags to region classes; no flags means all.
func pickClasses(f3, f4, f5, f6 bool) []oracle.SizeClass {
	if !f3 && !f4 && !f5 && !f6 {
		return []oracle.SizeClass{oracle.Small, oracle.Medium, oracle.Large}
	}
	var out []oracle.SizeClass
	if f3 {
		out = append(out, oracle.Small)
	}
	if f4 {
		out = append(out, oracle.Medium)
	}
	if f5 {
		out = append(out, oracle.Large)
	}
	if f6 && len(out) == 0 {
		out = []oracle.SizeClass{oracle.Small, oracle.Medium, oracle.Large}
	}
	return out
}

func runAblations(env *experiment.Env, cfg experiment.Config, which string) error {
	want := func(name string) bool { return which == name || which == "all" }
	if want("points") {
		pts, err := experiment.AblateIndexPoints(env, []int{3, 4, 5, 6, 7})
		if err != nil {
			return err
		}
		fmt.Println(experiment.FormatAblation("Ablation A2: symbolic index points (segments per dimension)", pts))
	}
	if want("gamma") {
		base := int(env.BudgetBytes() / 88 / 2)
		pts, err := experiment.AblateGamma(env, []int{base / 4, base / 2, base, base * 2})
		if err != nil {
			return err
		}
		fmt.Println(experiment.FormatAblation("Ablation A5: uniform sample size gamma", pts))
	}
	if want("prefetch") {
		pts, err := experiment.AblatePrefetch(env)
		if err != nil {
			return err
		}
		fmt.Println(experiment.FormatAblation("Ablation A3: prefetch & latency threshold", pts))
	}
	if want("strategy") {
		pts, err := experiment.AblateStrategy(env)
		if err != nil {
			return err
		}
		fmt.Println(experiment.FormatAblation("Ablation A4: query strategies", pts))
	}
	if want("estimator") {
		pts, err := experiment.AblateEstimator(env)
		if err != nil {
			return err
		}
		fmt.Println(experiment.FormatAblation("Ablation A7: uncertainty estimators", pts))
	}
	if want("regions") {
		pts, err := experiment.AblateResidentRegions(env, []int{1, 2, 4})
		if err != nil {
			return err
		}
		fmt.Println(experiment.FormatAblation("Ablation A6: resident region bound", pts))
	}
	if want("chunk") {
		sizes := []int{cfg.TargetChunkBytes / 4, cfg.TargetChunkBytes, cfg.TargetChunkBytes * 4}
		pts, err := experiment.AblateChunkSize(cfg, sizes)
		if err != nil {
			return err
		}
		fmt.Println(experiment.FormatAblation("Ablation A1: chunk size", pts))
	}
	if which != "all" && !oneOf(which, "points", "gamma", "prefetch", "strategy", "chunk", "regions", "estimator") {
		return fmt.Errorf("unknown ablation %q (chunk|points|prefetch|strategy|gamma|regions|estimator|all)", which)
	}
	return nil
}

func oneOf(s string, opts ...string) bool {
	for _, o := range opts {
		if s == o {
			return true
		}
	}
	return false
}
