package iothrottle

import (
	"sync"
	"testing"
	"time"
)

// fakeClock advances only when sleep is called, making throttle tests
// deterministic and instant.
type fakeClock struct {
	mu  sync.Mutex
	t   time.Time
	nap time.Duration
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) sleep(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	c.nap += d
}

func TestNilLimiterIsNoop(t *testing.T) {
	var l *Limiter
	l.Acquire(1 << 30) // must not panic or block
	if b, w := l.Stats(); b != 0 || w != 0 {
		t.Error("nil limiter stats should be zero")
	}
	l.Reset()
}

func TestNewPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

func TestBurstIsFree(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	l := NewWithClock(1000, clk.now, clk.sleep)
	l.Acquire(1000) // exactly one burst: no sleeping needed
	if clk.nap != 0 {
		t.Errorf("slept %v for an in-burst acquire", clk.nap)
	}
}

func TestSustainedRate(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	l := NewWithClock(1000, clk.now, clk.sleep) // 1000 B/s
	l.Acquire(1000)                             // drain burst
	l.Acquire(500)                              // should cost ~0.5 s
	if clk.nap < 400*time.Millisecond || clk.nap > 600*time.Millisecond {
		t.Errorf("slept %v, want ~500ms", clk.nap)
	}
}

func TestLargerThanBurstRequest(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	l := NewWithClock(100, clk.now, clk.sleep)
	done := make(chan struct{})
	go func() {
		l.Acquire(1000) // 10 bursts
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Acquire larger than burst deadlocked")
	}
	// 1000 bytes at 100 B/s with a free 100-byte burst: ~9 s of sleeping.
	if clk.nap < 8*time.Second || clk.nap > 10*time.Second {
		t.Errorf("slept %v, want ~9s of virtual time", clk.nap)
	}
}

func TestStatsAndReset(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	l := NewWithClock(1000, clk.now, clk.sleep)
	l.Acquire(1500)
	bytes, waited := l.Stats()
	if bytes != 1500 {
		t.Errorf("bytes = %d", bytes)
	}
	if waited == 0 {
		t.Error("expected some recorded wait")
	}
	l.Reset()
	if b, w := l.Stats(); b != 0 || w != 0 {
		t.Error("Reset did not clear stats")
	}
	// After reset the bucket is full again: a burst-sized acquire is free.
	before := clk.nap
	l.Acquire(1000)
	if clk.nap != before {
		t.Error("Reset did not refill the bucket")
	}
}

func TestAcquireZeroAndNegative(t *testing.T) {
	l := New(10)
	l.Acquire(0)
	l.Acquire(-5)
	if b, _ := l.Stats(); b != 0 {
		t.Errorf("non-positive acquires should not count, got %d", b)
	}
}

func TestConcurrentAcquires(t *testing.T) {
	// Real clock but high bandwidth: verifies no races or lost updates.
	l := New(1 << 30)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Acquire(1024)
			}
		}()
	}
	wg.Wait()
	if b, _ := l.Stats(); b != 8*100*1024 {
		t.Errorf("bytes = %d, want %d", b, 8*100*1024)
	}
}
