// Package iothrottle provides a token-bucket bandwidth limiter that both
// storage engines (the UEI chunk store and the DBMS heap file) share so the
// out-of-core experiments model secondary-storage bandwidth honestly at
// laptop scale. See DESIGN.md §3: at the paper's scale the 40 GB dataset
// streams from an NVMe SSD at ~3.4 GB/s; at our scaled-down size the OS page
// cache would hide that cost entirely, so we meter reads explicitly and
// identically for every scheme.
package iothrottle

import (
	"fmt"
	"sync"
	"time"
)

// Limiter meters read bandwidth with a token bucket. A nil *Limiter is a
// valid no-op limiter, so components can hold one unconditionally.
type Limiter struct {
	mu sync.Mutex
	// bytesPerSecond is the sustained budget.
	bytesPerSecond float64
	// burst is the bucket capacity in bytes.
	burst float64
	// tokens is the current bucket level.
	tokens float64
	// last is the previous refill time.
	last time.Time
	// now and sleep are injectable for tests.
	now   func() time.Time
	sleep func(time.Duration)

	totalBytes int64
	totalWait  time.Duration
}

// New returns a limiter with the given sustained bandwidth. Burst defaults
// to one second's budget. New panics if bytesPerSecond is not positive; use
// a nil *Limiter for "unlimited".
func New(bytesPerSecond int64) *Limiter {
	if bytesPerSecond <= 0 {
		panic(fmt.Sprintf("iothrottle: bandwidth must be positive, got %d", bytesPerSecond))
	}
	l := &Limiter{
		bytesPerSecond: float64(bytesPerSecond),
		burst:          float64(bytesPerSecond),
		tokens:         float64(bytesPerSecond),
		now:            time.Now,
		sleep:          time.Sleep,
	}
	l.last = l.now()
	return l
}

// NewWithClock is New with an injectable clock, for deterministic tests.
func NewWithClock(bytesPerSecond int64, now func() time.Time, sleep func(time.Duration)) *Limiter {
	l := New(bytesPerSecond)
	l.now = now
	l.sleep = sleep
	l.last = now()
	return l
}

// Acquire blocks until n bytes of budget are available and consumes them.
// Calling Acquire on a nil limiter returns immediately. Requests larger
// than the burst are served in burst-sized installments rather than
// deadlocking.
func (l *Limiter) Acquire(n int64) {
	if l == nil || n <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.totalBytes += n
	remaining := float64(n)
	for remaining > 0 {
		l.refillLocked()
		if l.tokens > 0 {
			take := l.tokens
			if take > remaining {
				take = remaining
			}
			l.tokens -= take
			remaining -= take
			continue
		}
		// Sleep long enough to earn the smaller of (remaining, burst).
		need := remaining
		if need > l.burst {
			need = l.burst
		}
		wait := time.Duration(need / l.bytesPerSecond * float64(time.Second))
		if wait <= 0 {
			wait = time.Microsecond
		}
		l.totalWait += wait
		l.sleep(wait)
	}
}

// Stats returns the total bytes metered and the total time spent waiting.
func (l *Limiter) Stats() (bytes int64, waited time.Duration) {
	if l == nil {
		return 0, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totalBytes, l.totalWait
}

// Reset refills the bucket and zeroes statistics; used between experiment
// phases so build-time I/O does not bill against exploration-time budgets.
func (l *Limiter) Reset() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tokens = l.burst
	l.last = l.now()
	l.totalBytes = 0
	l.totalWait = 0
}

func (l *Limiter) refillLocked() {
	now := l.now()
	elapsed := now.Sub(l.last).Seconds()
	if elapsed <= 0 {
		return
	}
	l.last = now
	l.tokens += elapsed * l.bytesPerSecond
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
}
