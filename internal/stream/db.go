// Package stream implements the live write path of the UEI: an LSM-style
// WAL-backed memtable absorbing appended rows, background flushes that
// fold frozen memtables into immutable chunk-store segments, a
// copy-on-write manifest whose monotonically increasing epochs replace the
// static commit point, and a compactor that merges small segments and
// retires superseded ones once no live snapshot pins them. Readers pin a
// snapshot epoch (MVCC at flush granularity): a pinned epoch's segment set
// is immutable, so a session over it is byte-identical to one over a
// static index built from exactly that epoch's rows, while appends land
// concurrently.
//
// Grid geometry is fixed at creation (bounds + segments per dimension), so
// cell identity, symbolic index points, and cell→shard ownership are
// epoch-invariant; what is recomputed per epoch is the cells' chunk
// mappings and statistics over the new segment set. Appends outside the
// pinned bounds are rejected — absorbing them would silently remap every
// cell mid-session.
package stream

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/grid"
	"github.com/uei-db/uei/internal/iothrottle"
	"github.com/uei-db/uei/internal/obs"
	"github.com/uei-db/uei/internal/shard"
	"github.com/uei-db/uei/internal/vec"
)

// ErrClosed reports use of a closed DB.
var ErrClosed = errors.New("stream: db closed")

// ErrOutOfBounds marks an appended row outside the grid bounds pinned at
// creation. Match with errors.Is.
var ErrOutOfBounds = errors.New("stream: row outside pinned grid bounds")

// DefaultMemtableBytes is the freeze threshold when Options.MemtableBytes
// is zero.
const DefaultMemtableBytes = 4 << 20

// DefaultCompactSegments is the per-shard segment count that triggers
// background compaction when Options.CompactSegments is zero.
const DefaultCompactSegments = 6

// defaultSegmentsPerDim mirrors core's grid default.
const defaultSegmentsPerDim = 5

// CreateOptions configures Create.
type CreateOptions struct {
	// Shards is the layout width: 1 (or 0) = flat, else [2, shard.MaxShards].
	Shards int
	// SegmentsPerDim fixes the grid (0 = the core default, 5).
	SegmentsPerDim int
	// TargetChunkBytes is the per-segment chunk size target (0 = the
	// chunkstore default).
	TargetChunkBytes int
}

// Options configures Open.
type Options struct {
	// Limiter meters every segment store's chunk reads (one shared
	// limiter — the segments model one storage device).
	Limiter *iothrottle.Limiter
	// Workers bounds each segment store's internal read fan-out.
	Workers int
	// BlockCache, when non-nil, is shared across all segment stores under
	// per-segment cache key prefixes.
	BlockCache *chunkstore.BlockCache
	// Registry receives the stream_* instruments (nil = private registry).
	Registry *obs.Registry
	// Tracer emits flush/compact spans (nil = no emission).
	Tracer *obs.Tracer
	// MemtableBytes freezes the active memtable once its decoded payload
	// reaches this size (0 = DefaultMemtableBytes).
	MemtableBytes int64
	// FlushInterval additionally freezes+flushes on a timer regardless of
	// size, so trickle appends become visible (0 disables the timer;
	// size-triggered and explicit flushes still run).
	FlushInterval time.Duration
	// CompactSegments triggers background compaction of a shard once it
	// holds at least this many segments (0 = DefaultCompactSegments).
	CompactSegments int
}

func (o Options) withDefaults() Options {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = DefaultMemtableBytes
	}
	if o.CompactSegments <= 0 {
		o.CompactSegments = DefaultCompactSegments
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	return o
}

// retiredSegment is a superseded segment awaiting epoch-based reclamation:
// its directory is deleted only once no live snapshot pins an epoch that
// can still read it (pinned epoch < retiredAt).
type retiredSegment struct {
	seg       *segment
	retiredAt uint64
}

// DB is an open live store. One process owns the write path (Append,
// flush, compaction); any number of goroutines may Acquire read
// snapshots concurrently.
type DB struct {
	dir  string
	opts Options

	// Fixed at creation (epoch-invariant).
	schema  dataset.Schema
	columns []string
	bounds  vec.Box
	grid    *grid.Grid
	shards  int
	segsPD  int
	target  int
	owners  []int // cell → owning shard; nil for flat layouts

	// flushMu serializes flush and compaction commits (mu is held only
	// for brief state swaps, never across segment builds).
	flushMu sync.Mutex

	mu       sync.Mutex
	man      *Manifest
	segs     map[int]*segment // open segments: current manifest's + retired-but-pinned
	mem      *memtable
	wal      *walWriter
	frozen   []frozenMem
	nextID   uint32
	nextSeq  int            // next WAL generation
	walMax   map[int]uint32 // wal seq → max row id it holds (only non-empty files)
	pins     map[uint64]int // epoch → live snapshot count
	retired  []retiredSegment
	closed   bool
	flushErr error // sticky background flush failure, surfaced on Append

	stop     chan struct{}
	flushC   chan struct{}
	compactC chan struct{}
	bg       sync.WaitGroup

	failpoint func(stage string) error

	tracer      *obs.Tracer
	mMemBytes   *obs.Gauge
	mEpoch      *obs.Gauge
	mSegments   *obs.Gauge
	mLiveEpochs *obs.Gauge
	mAppends    *obs.Counter
	mAppendRows *obs.Counter
	mFlushes    *obs.Counter
	mCompacts   *obs.Counter
	mRetired    *obs.Counter
	hFlush      *obs.Histogram
	hCompact    *obs.Histogram
	hFsync      *obs.Histogram
}

// Create materializes a new live store under dir (which must be empty or
// absent) from an initial dataset, committing manifest epoch 1. The
// dataset pins the grid bounds, so it must be non-empty and should cover
// the value range appends will arrive in.
func Create(dir string, ds *dataset.Dataset, opts CreateOptions) error {
	shards := opts.Shards
	if shards == 0 {
		shards = 1
	}
	if shards != 1 && (shards < 2 || shards > shard.MaxShards) {
		return fmt.Errorf("stream: shard count %d out of range", shards)
	}
	if ds.Len() == 0 {
		return fmt.Errorf("stream: refusing to create from an empty dataset (bounds would be undefined)")
	}
	segsPD := opts.SegmentsPerDim
	if segsPD == 0 {
		segsPD = defaultSegmentsPerDim
	}
	target := opts.TargetChunkBytes
	if target == 0 {
		target = chunkstore.DefaultTargetChunkBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("stream: create %s: %w", dir, err)
	}
	if entries, err := os.ReadDir(dir); err != nil {
		return fmt.Errorf("stream: inspect %s: %w", dir, err)
	} else if len(entries) > 0 {
		return fmt.Errorf("stream: directory %s is not empty", dir)
	}
	if err := os.MkdirAll(filepath.Join(dir, walDir), 0o755); err != nil {
		return fmt.Errorf("stream: create wal dir: %w", err)
	}
	bounds, err := ds.Bounds()
	if err != nil {
		return err
	}
	g, err := grid.New(bounds, segsPD)
	if err != nil {
		return err
	}
	man := &Manifest{
		FormatVersion:    manifestFormatVersion,
		Epoch:            1,
		Shards:           shards,
		SegmentsPerDim:   segsPD,
		Columns:          ds.Schema().Names(),
		MinValues:        append([]float64(nil), bounds.Min...),
		MaxValues:        append([]float64(nil), bounds.Max...),
		TargetChunkBytes: target,
		FlushedRows:      ds.Len(),
	}
	scratch := &DB{
		dir: dir, schema: ds.Schema(), columns: man.Columns,
		bounds: bounds, grid: g, shards: shards, segsPD: segsPD, target: target,
	}
	if shards > 1 {
		if scratch.owners, err = shard.CellOwners(g, shards); err != nil {
			return err
		}
	}
	// Partition the initial rows exactly like a flush would: one segment
	// per shard (flat = one segment total), zero-row shards get an
	// explicit empty segment so every shard has a uniform resting place.
	groups, err := scratch.partition(0, rowsOf(ds))
	if err != nil {
		return err
	}
	nextID := 1
	for s := 0; s < shards; s++ {
		meta, err := scratch.buildSegment(nextID, s, groups[s].ids, groups[s].rows)
		if err != nil {
			return err
		}
		man.Segments = append(man.Segments, meta)
		nextID++
	}
	man.NextSegmentID = nextID
	return commitManifest(dir, man)
}

// rowGroup is one shard's slice of a flush: aligned global ids and rows.
type rowGroup struct {
	ids  []uint32
	rows [][]float64
}

// partition splits rows (global ids firstID..firstID+n-1, in id order)
// into per-shard groups by the owner of each row's grid cell; with a flat
// layout everything lands in group 0. Id order is preserved, so each
// group's ids stay strictly ascending.
func (db *DB) partition(firstID uint32, rows [][]float64) ([]rowGroup, error) {
	n := db.shards
	groups := make([]rowGroup, n)
	for i, row := range rows {
		owner := 0
		if n > 1 {
			cell, err := db.grid.CellOf(row)
			if err != nil {
				return nil, fmt.Errorf("stream: row %d: %w", int(firstID)+i, err)
			}
			owner = db.owners[cell]
		}
		groups[owner].ids = append(groups[owner].ids, firstID+uint32(i))
		groups[owner].rows = append(groups[owner].rows, row)
	}
	return groups, nil
}

func rowsOf(ds *dataset.Dataset) [][]float64 {
	rows := make([][]float64, ds.Len())
	for i := range rows {
		rows[i] = ds.Row(dataset.RowID(i))
	}
	return rows
}

// Open opens a live store, recovering from any crash: stale manifests and
// orphan segment directories (a flush that died before its commit) are
// removed, and WAL records above the committed FlushedRows high-water mark
// replay into a fresh memtable — no acknowledged append is ever lost.
// Background flush and compaction goroutines start here and are joined by
// Close.
func Open(dir string, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	man, err := loadCurrentManifest(dir)
	if err != nil {
		return nil, err
	}
	bounds := vec.NewBox(man.MinValues, man.MaxValues)
	g, err := grid.New(bounds, man.SegmentsPerDim)
	if err != nil {
		return nil, err
	}
	schema, err := dataset.NewSchema(man.Columns...)
	if err != nil {
		return nil, err
	}
	db := &DB{
		dir:      dir,
		opts:     opts,
		schema:   schema,
		columns:  man.Columns,
		bounds:   bounds,
		grid:     g,
		shards:   man.Shards,
		segsPD:   man.SegmentsPerDim,
		target:   man.TargetChunkBytes,
		man:      man,
		segs:     make(map[int]*segment),
		pins:     make(map[uint64]int),
		walMax:   make(map[int]uint32),
		stop:     make(chan struct{}),
		flushC:   make(chan struct{}, 1),
		compactC: make(chan struct{}, 1),
		tracer:   opts.Tracer,
	}
	if man.Shards > 1 {
		if db.owners, err = shard.CellOwners(g, man.Shards); err != nil {
			return nil, err
		}
	}
	if err := db.removeOrphans(); err != nil {
		return nil, err
	}
	for _, meta := range man.Segments {
		seg, err := db.openSegment(meta)
		if err != nil {
			return nil, err
		}
		db.segs[meta.ID] = seg
	}
	if err := db.recoverWAL(); err != nil {
		return nil, err
	}
	db.instrument(opts.Registry)
	db.bg.Add(2)
	go db.flushLoop()
	go db.compactLoop()
	return db, nil
}

// removeOrphans deletes manifests other than CURRENT's and segment
// directories the current manifest does not reference — the debris of a
// crash between segment build and commit. No snapshot can pin them at
// open, so removal is always safe here.
func (db *DB) removeOrphans() error {
	live := make(map[string]bool, len(db.man.Segments))
	for _, s := range db.man.Segments {
		live[SegmentDirName(s.ID)] = true
	}
	entries, err := os.ReadDir(db.dir)
	if err != nil {
		return fmt.Errorf("stream: inspect %s: %w", db.dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "seg-") && e.IsDir() && !live[name]:
			if err := os.RemoveAll(filepath.Join(db.dir, name)); err != nil {
				return fmt.Errorf("stream: remove orphan %s: %w", name, err)
			}
		case strings.HasPrefix(name, "manifest-") && strings.HasSuffix(name, ".json") && name != ManifestFileName(db.man.Epoch):
			if err := os.Remove(filepath.Join(db.dir, name)); err != nil {
				return fmt.Errorf("stream: remove stale %s: %w", name, err)
			}
		}
	}
	return nil
}

// recoverWAL replays every log generation in order, keeps rows the
// manifest has not flushed, rebuilds the active memtable from them, and
// opens a fresh generation for new appends. Fully-covered old log files
// are deleted; partially-covered ones stay until the next flush commit
// retires them.
func (db *DB) recoverWAL() error {
	seqs, err := walSeqs(db.dir)
	if err != nil {
		return err
	}
	flushed := uint32(db.man.FlushedRows)
	db.nextID = flushed
	mem := &memtable{firstID: flushed}
	maxSeq := -1
	for _, seq := range seqs {
		path := filepath.Join(db.dir, walDir, WALFileName(seq))
		recs, err := readWALFile(path, len(db.columns))
		if err != nil {
			return fmt.Errorf("stream: wal %d: %w", seq, err)
		}
		var fileMax uint32
		fileRows := 0
		for _, rec := range recs {
			for i, row := range rec.rows {
				id := rec.firstID + uint32(i)
				if id < flushed {
					continue // already in a committed segment
				}
				if id != db.nextID {
					return fmt.Errorf("stream: wal %d: row id %d, expected %d (gap in the log)", seq, id, db.nextID)
				}
				mem.rows = append(mem.rows, row)
				mem.bytes += int64(8 * len(row))
				db.nextID = id + 1
			}
			fileMax = rec.firstID + uint32(len(rec.rows)) - 1
			fileRows += len(rec.rows)
		}
		if fileRows == 0 || fileMax < flushed {
			// Every record is covered by the committed manifest (or the
			// file is empty): the crash happened after commit but before
			// the flusher deleted it.
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("stream: remove covered wal %d: %w", seq, err)
			}
			continue
		}
		db.walMax[seq] = fileMax
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	db.mem = mem
	db.nextSeq = maxSeq + 1
	w, err := newWALWriter(db.dir, db.nextSeq)
	if err != nil {
		return err
	}
	db.wal = w
	db.nextSeq++
	// Recovered rows are durable in the old generations; the fresh writer
	// only takes new appends. Freeze the recovered memtable immediately if
	// it is non-empty so the next flush folds it in and retires the old
	// files.
	if mem.len() > 0 {
		db.frozen = append(db.frozen, frozenMem{mem: mem, walSeq: -1})
		db.mem = &memtable{firstID: db.nextID}
		db.signal(db.flushC)
	}
	return nil
}

func (db *DB) instrument(reg *obs.Registry) {
	db.mMemBytes = reg.Gauge("stream_memtable_bytes")
	db.mEpoch = reg.Gauge("stream_epoch")
	db.mSegments = reg.Gauge("stream_segments")
	db.mLiveEpochs = reg.Gauge("stream_live_epochs")
	db.mAppends = reg.Counter("stream_appends_total")
	db.mAppendRows = reg.Counter("stream_append_rows_total")
	db.mFlushes = reg.Counter("stream_flush_total")
	db.mCompacts = reg.Counter("stream_compact_total")
	db.mRetired = reg.Counter("stream_segments_retired_total")
	db.hFlush = reg.Histogram("stream_flush_seconds", obs.DefaultLatencyBuckets())
	db.hCompact = reg.Histogram("stream_compact_seconds", obs.DefaultLatencyBuckets())
	db.hFsync = reg.Histogram("stream_wal_fsync_seconds", obs.DefaultLatencyBuckets())
	db.mEpoch.SetInt(int64(db.man.Epoch))
	db.mSegments.SetInt(int64(len(db.man.Segments)))
}

// signal nudges a background loop without blocking (the channels carry
// one pending wake-up at most).
func (db *DB) signal(c chan struct{}) {
	select {
	case c <- struct{}{}:
	default:
	}
}

// Append validates rows against the pinned bounds, assigns them dense
// global ids, makes them durable (one fsynced WAL record), and admits
// them to the memtable. Rows become read-visible only once a flush
// commits them into a manifest epoch; the returned firstID names the
// batch's first row. Safe for concurrent use.
func (db *DB) Append(rows [][]float64) (firstID uint32, err error) {
	if len(rows) == 0 {
		return 0, fmt.Errorf("stream: empty append")
	}
	dims := len(db.columns)
	for i, row := range rows {
		if len(row) != dims {
			return 0, fmt.Errorf("stream: append row %d has %d values, store has %d dims", i, len(row), dims)
		}
		if _, err := db.grid.CellOf(row); err != nil {
			return 0, fmt.Errorf("stream: append row %d %v: %w", i, row, ErrOutOfBounds)
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	if db.flushErr != nil {
		// A failed background flush means durability bookkeeping is
		// wedged; refuse new writes rather than grow the WAL forever.
		return 0, fmt.Errorf("stream: append rejected after flush failure: %w", db.flushErr)
	}
	firstID = db.nextID
	start := time.Now()
	if err := db.wal.append(firstID, rows, dims); err != nil {
		return 0, err
	}
	db.hFsync.ObserveDuration(time.Since(start))
	db.walMax[db.wal.seq] = db.wal.maxID
	for _, row := range rows {
		db.mem.rows = append(db.mem.rows, append([]float64(nil), row...))
		db.mem.bytes += int64(8 * dims)
	}
	db.nextID += uint32(len(rows))
	db.mAppends.Inc()
	db.mAppendRows.Add(int64(len(rows)))
	db.mMemBytes.Set(float64(db.memBytesLocked()))
	if db.mem.bytes >= db.opts.MemtableBytes {
		db.signal(db.flushC)
	}
	return firstID, nil
}

func (db *DB) memBytesLocked() int64 {
	b := db.mem.bytes
	for _, f := range db.frozen {
		b += f.mem.bytes
	}
	return b
}

// freezeLocked rotates the active memtable and WAL generation. Caller
// holds mu.
func (db *DB) freezeLocked() error {
	if db.mem.len() == 0 {
		return nil
	}
	w, err := newWALWriter(db.dir, db.nextSeq)
	if err != nil {
		return err
	}
	old := db.wal
	db.frozen = append(db.frozen, frozenMem{mem: db.mem, walSeq: old.seq})
	db.mem = &memtable{firstID: db.nextID}
	db.wal = w
	db.nextSeq++
	return old.close()
}

// Flush freezes the active memtable (if non-empty) and folds every frozen
// memtable into new committed segments, advancing the manifest epoch once
// per memtable. It returns once everything appended before the call is
// read-visible. No-op when there is nothing to flush.
func (db *DB) Flush(ctx context.Context) error {
	db.flushMu.Lock()
	defer db.flushMu.Unlock()
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if err := db.freezeLocked(); err != nil {
		db.mu.Unlock()
		return err
	}
	db.mu.Unlock()
	return db.flushFrozen(ctx)
}

// flushFrozen drains the frozen queue. Caller holds flushMu.
func (db *DB) flushFrozen(ctx context.Context) error {
	for {
		db.mu.Lock()
		if len(db.frozen) == 0 {
			db.mu.Unlock()
			return nil
		}
		fm := db.frozen[0]
		man := db.man.clone()
		db.mu.Unlock()

		if err := db.flushOne(ctx, fm, man); err != nil {
			return err
		}
	}
}

// flushOne builds fm's segments, commits the next epoch, installs it, and
// retires fm's WAL generation(s). Caller holds flushMu.
func (db *DB) flushOne(ctx context.Context, fm frozenMem, man *Manifest) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	_, sp := db.tracer.Phase(ctx, obs.SpanFlush)
	start := time.Now()
	groups, err := db.partition(fm.mem.firstID, fm.mem.rows)
	if err != nil {
		sp.End(nil)
		return err
	}
	man.Epoch++
	for s := 0; s < db.shards; s++ {
		if len(groups[s].rows) == 0 {
			continue // flushes never write empty segments
		}
		meta, err := db.buildSegment(man.NextSegmentID, s, groups[s].ids, groups[s].rows)
		if err != nil {
			sp.End(nil)
			return err
		}
		man.Segments = append(man.Segments, meta)
		man.NextSegmentID++
	}
	man.FlushedRows += fm.mem.len()
	if fp := db.failpointFn(); fp != nil {
		if err := fp("flush-before-commit"); err != nil {
			sp.End(nil)
			return err
		}
	}
	if err := commitManifest(db.dir, man); err != nil {
		sp.End(nil)
		return err
	}
	// Open the new segments before installing the manifest so readers
	// never observe a manifest whose segments are not servable.
	newSegs := make([]*segment, 0, db.shards)
	for _, meta := range man.Segments {
		if meta.ID >= db.man.NextSegmentID {
			seg, err := db.openSegment(meta)
			if err != nil {
				return fmt.Errorf("stream: reopen flushed segment: %w", err)
			}
			newSegs = append(newSegs, seg)
		}
	}

	db.mu.Lock()
	for _, seg := range newSegs {
		db.segs[seg.meta.ID] = seg
	}
	db.man = man
	db.frozen = db.frozen[1:]
	db.mFlushes.Inc()
	db.mEpoch.SetInt(int64(man.Epoch))
	db.mSegments.SetInt(int64(len(man.Segments)))
	db.mMemBytes.Set(float64(db.memBytesLocked()))
	db.deleteCoveredWALsLocked()
	db.mu.Unlock()

	db.hFlush.ObserveDuration(time.Since(start))
	sp.End(map[string]float64{"rows": float64(fm.mem.len()), "epoch": float64(man.Epoch)})
	db.signal(db.compactC)
	return nil
}

// deleteCoveredWALsLocked removes log generations whose every row now
// rests in committed segments. Caller holds mu.
func (db *DB) deleteCoveredWALsLocked() {
	flushed := uint32(db.man.FlushedRows)
	for seq, maxID := range db.walMax {
		if seq == db.wal.seq || maxID >= flushed {
			continue
		}
		// Best effort: a leftover file is re-covered on the next open.
		if err := os.Remove(filepath.Join(db.dir, walDir, WALFileName(seq))); err == nil {
			delete(db.walMax, seq)
		}
	}
}

// Compact merges every shard's segments down to one and drops zero-row
// segments, committing one new epoch if anything changed. Superseded
// segments are retired, not deleted: reclamation waits until no live
// snapshot pins an epoch that reads them.
func (db *DB) Compact(ctx context.Context) error {
	return db.compact(ctx, 2)
}

// compact merges shards holding at least minSegs segments (or any zero-row
// segment). The background loop calls it with the configured threshold;
// Compact with 2 (full).
func (db *DB) compact(ctx context.Context, minSegs int) error {
	db.flushMu.Lock()
	defer db.flushMu.Unlock()
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	man := db.man.clone()
	byShard := make(map[int][]*segment)
	for _, meta := range man.Segments {
		byShard[meta.Shard] = append(byShard[meta.Shard], db.segs[meta.ID])
	}
	db.mu.Unlock()

	var compactShards []int
	for s, segs := range byShard {
		zero := false
		for _, seg := range segs {
			if seg.meta.Rows == 0 {
				zero = true
			}
		}
		if len(segs) >= minSegs || (zero && db.shards > 1) || (zero && len(segs) > 1) {
			compactShards = append(compactShards, s)
		}
	}
	sort.Ints(compactShards)
	if len(compactShards) == 0 {
		return nil
	}

	_, sp := db.tracer.Phase(ctx, obs.SpanCompact)
	start := time.Now()
	replaced := make(map[int]bool)
	var added []SegmentMeta
	for _, s := range compactShards {
		segs := byShard[s]
		if len(segs) == 1 && segs[0].meta.Rows > 0 {
			continue
		}
		var ids []uint32
		var rows [][]float64
		for _, seg := range segs {
			if seg.meta.Rows == 0 {
				replaced[seg.meta.ID] = true
				continue
			}
			all := make([]uint32, seg.meta.Rows)
			for i := range all {
				all[i] = uint32(i)
			}
			got, err := seg.part.Store.FetchRows(ctx, all)
			if err != nil {
				sp.End(nil)
				return fmt.Errorf("stream: compact segment %d: %w", seg.meta.ID, err)
			}
			for _, r := range got {
				ids = append(ids, seg.part.IDMap[r.ID])
				rows = append(rows, r.Vals)
			}
			replaced[seg.meta.ID] = true
		}
		if len(rows) > 0 {
			// Merge by global id: per-segment runs are ascending, so one
			// sort restores the global order a build-time shard would have.
			order := make([]int, len(ids))
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(a, b int) bool { return ids[order[a]] < ids[order[b]] })
			mids := make([]uint32, len(ids))
			mrows := make([][]float64, len(rows))
			for i, o := range order {
				mids[i] = ids[o]
				mrows[i] = rows[o]
			}
			meta, err := db.buildSegment(man.NextSegmentID, s, mids, mrows)
			if err != nil {
				sp.End(nil)
				return err
			}
			added = append(added, meta)
			man.NextSegmentID++
		} else if db.shards == 1 && len(segs) > 0 && allZero(segs) {
			// A flat store must keep at least one segment so the layout
			// stays openable and uniform; keep the first, retire the rest.
			keep := segs[0].meta.ID
			delete(replaced, keep)
		}
	}
	if len(replaced) == 0 && len(added) == 0 {
		sp.End(nil)
		return nil
	}
	man.Epoch++
	kept := man.Segments[:0:0]
	for _, meta := range man.Segments {
		if !replaced[meta.ID] {
			kept = append(kept, meta)
		}
	}
	man.Segments = append(kept, added...)
	if err := commitManifest(db.dir, man); err != nil {
		sp.End(nil)
		return err
	}
	newSegs := make([]*segment, 0, len(added))
	for _, meta := range added {
		seg, err := db.openSegment(meta)
		if err != nil {
			return fmt.Errorf("stream: reopen compacted segment: %w", err)
		}
		newSegs = append(newSegs, seg)
	}

	db.mu.Lock()
	for id := range replaced {
		if seg := db.segs[id]; seg != nil {
			db.retired = append(db.retired, retiredSegment{seg: seg, retiredAt: man.Epoch})
		}
	}
	for _, seg := range newSegs {
		db.segs[seg.meta.ID] = seg
	}
	db.man = man
	db.mCompacts.Inc()
	db.mEpoch.SetInt(int64(man.Epoch))
	db.mSegments.SetInt(int64(len(man.Segments)))
	db.sweepRetiredLocked()
	db.mu.Unlock()

	db.hCompact.ObserveDuration(time.Since(start))
	sp.End(map[string]float64{"replaced": float64(len(replaced)), "added": float64(len(added)), "epoch": float64(man.Epoch)})
	return nil
}

func allZero(segs []*segment) bool {
	for _, s := range segs {
		if s.meta.Rows > 0 {
			return false
		}
	}
	return true
}

// sweepRetiredLocked deletes retired segment directories no live snapshot
// can read: a snapshot pinned at epoch E reads segments retired at epochs
// strictly greater than E, so a retiree is reclaimable once every pinned
// epoch is >= its retirement epoch. Caller holds mu.
func (db *DB) sweepRetiredLocked() {
	minPinned := ^uint64(0)
	for e := range db.pins {
		if e < minPinned {
			minPinned = e
		}
	}
	kept := db.retired[:0]
	for _, r := range db.retired {
		if minPinned < r.retiredAt {
			kept = append(kept, r)
			continue
		}
		delete(db.segs, r.seg.meta.ID)
		os.RemoveAll(r.seg.dir)
		db.mRetired.Inc()
	}
	db.retired = kept
}

// flushLoop is the background flusher: size-triggered via Append's
// signal, optionally time-triggered via FlushInterval.
func (db *DB) flushLoop() {
	defer db.bg.Done()
	var tick *time.Ticker
	var tickC <-chan time.Time
	if db.opts.FlushInterval > 0 {
		tick = time.NewTicker(db.opts.FlushInterval)
		tickC = tick.C
		defer tick.Stop()
	}
	for {
		select {
		case <-db.stop:
			return
		case <-db.flushC:
		case <-tickC:
		}
		db.backgroundFlush()
	}
}

// backgroundFlush freezes when the active memtable crossed the threshold
// (or a timer fired with any pending rows) and drains the frozen queue.
// Failures are sticky: they park the write path rather than spin.
func (db *DB) backgroundFlush() {
	db.flushMu.Lock()
	defer db.flushMu.Unlock()
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return
	}
	if db.mem.bytes >= db.opts.MemtableBytes || (db.opts.FlushInterval > 0 && db.mem.len() > 0) {
		if err := db.freezeLocked(); err != nil {
			db.flushErr = err
			db.mu.Unlock()
			return
		}
	}
	db.mu.Unlock()
	if err := db.flushFrozen(context.Background()); err != nil {
		db.mu.Lock()
		db.flushErr = err
		db.mu.Unlock()
	}
}

// compactLoop runs threshold-triggered compaction after flush commits.
func (db *DB) compactLoop() {
	defer db.bg.Done()
	for {
		select {
		case <-db.stop:
			return
		case <-db.compactC:
		}
		// Threshold compaction; errors are reported through the next
		// explicit Compact (background compaction is advisory).
		_ = db.compact(context.Background(), db.opts.CompactSegments)
	}
}

// Acquire pins the current epoch and returns its immutable snapshot.
func (db *DB) Acquire() (*Snapshot, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	man := db.man
	segs := make([]*segment, len(man.Segments))
	for i, meta := range man.Segments {
		segs[i] = db.segs[meta.ID]
		if segs[i] == nil {
			return nil, fmt.Errorf("stream: segment %d of epoch %d not open", meta.ID, man.Epoch)
		}
	}
	db.pins[man.Epoch]++
	db.mLiveEpochs.SetInt(int64(len(db.pins)))
	return &Snapshot{db: db, man: man, segs: segs}, nil
}

// release unpins a snapshot's epoch and reclaims newly unreferenced
// retired segments.
func (db *DB) release(epoch uint64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if n := db.pins[epoch]; n > 1 {
		db.pins[epoch] = n - 1
	} else {
		delete(db.pins, epoch)
	}
	db.mLiveEpochs.SetInt(int64(len(db.pins)))
	if !db.closed {
		db.sweepRetiredLocked()
	}
}

// Epoch returns the current committed epoch.
func (db *DB) Epoch() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.man.Epoch
}

// TotalRows counts every acknowledged row: flushed (read-visible) plus
// memtable-resident (durable, awaiting flush).
func (db *DB) TotalRows() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return int(db.nextID)
}

// FlushedRows counts the read-visible rows of the current epoch.
func (db *DB) FlushedRows() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.man.FlushedRows
}

// Grid returns the fixed grid (epoch-invariant).
func (db *DB) Grid() *grid.Grid { return db.grid }

// Bounds returns the pinned value bounds.
func (db *DB) Bounds() vec.Box { return db.bounds }

// Columns returns the attribute names in dimension order.
func (db *DB) Columns() []string { return db.columns }

// Shards returns the layout width (1 = flat).
func (db *DB) Shards() int { return db.shards }

// SegmentsPerDim returns the fixed per-dimension grid resolution.
func (db *DB) SegmentsPerDim() int { return db.segsPD }

// SetFailpoint installs a hook invoked at named stages of the write path
// ("flush-before-commit"); returning an error aborts the operation there.
// Crash-injection seam for recovery tests; nil removes it.
func (db *DB) SetFailpoint(fp func(stage string) error) {
	db.mu.Lock()
	db.failpoint = fp
	db.mu.Unlock()
}

func (db *DB) failpointFn() func(stage string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.failpoint
}

// Close stops and joins the background flusher and compactor, closes the
// active WAL writer, and marks the DB closed. It does NOT flush: pending
// memtable rows stay durable in the WAL and replay on the next Open.
// Idempotent and safe against concurrent Append/Acquire.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	close(db.stop)
	db.mu.Unlock()
	db.bg.Wait()
	// The loops are joined: nothing touches the writer anymore.
	return db.wal.close()
}
