package stream

import (
	"os"
	"path/filepath"
)

// Info is an offline summary of a live layout, cheap enough for CLI
// inspection: it reads CURRENT, the manifest, and scans the WAL frames —
// no segment stores are opened.
type Info struct {
	Manifest *Manifest
	// WALFiles is the number of live log generations.
	WALFiles int
	// WALBytes is their combined size on disk.
	WALBytes int64
	// WALRows counts replayable rows above the flushed high-water mark —
	// durable appends awaiting flush.
	WALRows int
	// HighWaterID is the highest acknowledged row id (flushed or WAL);
	// total acknowledged rows = HighWaterID + 1.
	HighWaterID uint32
}

// Inspect summarizes the live layout under dir without opening it for
// writing (safe while another process owns the store, modulo a flush
// racing the WAL scan).
func Inspect(dir string) (*Info, error) {
	man, err := loadCurrentManifest(dir)
	if err != nil {
		return nil, err
	}
	info := &Info{Manifest: man}
	if man.FlushedRows > 0 {
		info.HighWaterID = uint32(man.FlushedRows) - 1
	}
	seqs, err := walSeqs(dir)
	if err != nil {
		return nil, err
	}
	flushed := uint32(man.FlushedRows)
	for _, seq := range seqs {
		path := filepath.Join(dir, walDir, WALFileName(seq))
		if st, err := os.Stat(path); err == nil {
			info.WALBytes += st.Size()
		}
		info.WALFiles++
		recs, err := readWALFile(path, len(man.Columns))
		if err != nil {
			return nil, err
		}
		for _, rec := range recs {
			for i := range rec.rows {
				id := rec.firstID + uint32(i)
				if id < flushed {
					continue
				}
				info.WALRows++
				if id > info.HighWaterID {
					info.HighWaterID = id
				}
			}
		}
	}
	return info, nil
}
