package stream

import (
	"context"
	"fmt"
	"sync/atomic"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/grid"
	"github.com/uei-db/uei/internal/shard"
	"github.com/uei-db/uei/internal/vec"
)

// Snapshot is one pinned epoch: an immutable view over the segment set the
// epoch's manifest committed. All reads answer from exactly those
// segments — concurrent appends, flushes, and compactions never change
// what a held snapshot sees — so a session over a snapshot is
// byte-identical to one over a static index built from the same rows.
// Release the snapshot when done; unreleased snapshots pin retired
// segments on disk forever.
type Snapshot struct {
	db       *DB
	man      *Manifest
	segs     []*segment
	released atomic.Bool
}

// Release unpins the snapshot's epoch, allowing segments it alone kept
// alive to be reclaimed. Idempotent.
func (s *Snapshot) Release() {
	if s.released.CompareAndSwap(false, true) {
		s.db.release(s.man.Epoch)
	}
}

// Epoch identifies the pinned manifest epoch.
func (s *Snapshot) Epoch() uint64 { return s.man.Epoch }

// Clone takes an additional pin on the same epoch, for a derived reader
// (a session view) whose lifetime is independent of s. The clone must be
// Released separately.
func (s *Snapshot) Clone() (*Snapshot, error) {
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	if s.db.closed {
		return nil, ErrClosed
	}
	if s.released.Load() {
		return nil, fmt.Errorf("stream: cloning a released snapshot")
	}
	s.db.pins[s.man.Epoch]++
	s.db.mLiveEpochs.SetInt(int64(len(s.db.pins)))
	return &Snapshot{db: s.db, man: s.man, segs: s.segs}, nil
}

// RowCount returns the read-visible row count (ids [0, RowCount) are
// resolvable through this snapshot).
func (s *Snapshot) RowCount() int { return s.man.FlushedRows }

// Columns returns the attribute names in dimension order.
func (s *Snapshot) Columns() []string { return s.db.columns }

// Dims returns the dimensionality.
func (s *Snapshot) Dims() int { return len(s.db.columns) }

// Bounds returns the grid bounds pinned at creation.
func (s *Snapshot) Bounds() vec.Box { return s.db.bounds }

// Grid returns the fixed grid shared by every epoch.
func (s *Snapshot) Grid() *grid.Grid { return s.db.grid }

// TotalBytes sums the on-disk chunk payload of the snapshot's segments.
func (s *Snapshot) TotalBytes() int64 {
	var total int64
	for _, seg := range s.segs {
		total += seg.part.Store.TotalBytes()
	}
	return total
}

// IOStats sums cumulative read counters across the snapshot's segments.
// Segments are shared between snapshots of overlapping epochs, so this is
// a store-level measure, not a per-snapshot one.
func (s *Snapshot) IOStats() (bytes int64, chunks int64) {
	for _, seg := range s.segs {
		b, c := seg.part.Store.IOStats()
		bytes += b
		chunks += c
	}
	return bytes, chunks
}

// ResetIOStats zeroes the read counters of the snapshot's segments.
func (s *Snapshot) ResetIOStats() {
	for _, seg := range s.segs {
		seg.part.Store.ResetIOStats()
	}
}

// parts returns the snapshot's segments as shard parts, id-ascending by
// construction of the manifest's segment order.
func (s *Snapshot) parts() []shard.Part {
	parts := make([]shard.Part, len(s.segs))
	for i, seg := range s.segs {
		parts[i] = seg.part
	}
	return parts
}

// FetchRows reconstructs the tuples with the given global row ids across
// the snapshot's segments, sorted by id with duplicates collapsed —
// the flat store's FetchRows contract.
func (s *Snapshot) FetchRows(ctx context.Context, ids []uint32) ([]chunkstore.MergedRow, error) {
	return shard.FetchPartsRows(ctx, s.parts(), ids)
}

// LoadCell reconstructs one grid cell's tuples under global ids, sorted
// ascending, plus the posting entries visited.
func (s *Snapshot) LoadCell(ctx context.Context, cell grid.CellID) ([]chunkstore.MergedRow, int, error) {
	box, err := s.db.grid.CellBox(cell)
	if err != nil {
		return nil, 0, err
	}
	return shard.MergePartsCell(ctx, s.parts(), box, cell)
}

// ScanMarked streams the segments' chunks over the marked per-dimension
// grid segments and returns the surviving rows sorted by global id — the
// retrieval scan of Algorithm 2 line 26, per snapshot.
func (s *Snapshot) ScanMarked(ctx context.Context, marked [][]bool) ([]shard.RetrievedRow, int, error) {
	return shard.ScanPartsMarked(ctx, s.db.grid, s.parts(), marked)
}

// CostEstimate sums the mapping I/O estimates for a cell across segments.
func (s *Snapshot) CostEstimate(cell grid.CellID) (bytes int64, entries int, err error) {
	for _, seg := range s.segs {
		b, e, err := seg.part.Mapping.CostEstimate(cell)
		if err != nil {
			return 0, 0, err
		}
		bytes += b
		entries += e
	}
	return bytes, entries, nil
}

// ShardManifest synthesizes the static sharded manifest equivalent of
// this epoch, for layouts created with Shards > 1: the same grid
// geometry, bounds, and hash contract a build-time shards.json would
// carry, with per-shard row counts summed over the epoch's segments.
func (s *Snapshot) ShardManifest() (*shard.Manifest, error) {
	if s.db.shards < 2 {
		return nil, fmt.Errorf("stream: flat layout has no shard manifest")
	}
	counts := make([]int, s.db.shards)
	for _, seg := range s.segs {
		counts[seg.meta.Shard] += seg.meta.Rows
	}
	return shard.NewManifest(s.db.shards, s.db.segsPD, s.db.columns,
		s.db.bounds.Min, s.db.bounds.Max, s.db.target, counts)
}

// Shards groups the snapshot's segments into per-shard multi-part shards
// for a local coordinator (shard s's parts in segment-id order, so rows
// within a shard merge back into global-id order exactly as a build-time
// partition would have laid them out).
func (s *Snapshot) Shards() ([]*shard.Shard, error) {
	if s.db.shards < 2 {
		return nil, fmt.Errorf("stream: flat layout has no shards")
	}
	shards := make([]*shard.Shard, s.db.shards)
	for i := range shards {
		shards[i] = &shard.Shard{ID: i}
	}
	for _, seg := range s.segs {
		sh := shards[seg.meta.Shard]
		sh.Parts = append(sh.Parts, seg.part)
	}
	return shards, nil
}
