package stream

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The write-ahead log makes appends durable before they are acknowledged:
// one file per memtable generation (rotated at freeze), each a sequence of
// CRC-framed records. A record is the unit of atomicity — either all its
// rows replay or none do — and records carry explicit row ids, so replay
// after a crash filters everything the committed manifest already covers
// (FlushedRows) without double-applying.
//
// Frame layout (little endian):
//
//	length  uint32  payload bytes
//	crc32   uint32  IEEE CRC of the payload
//	payload:
//	  firstID uint32  global id of the record's first row
//	  count   uint32  rows in the record
//	  dims    uint32
//	  vals    count × dims × float64
//
// A torn tail (short or CRC-failing frame) ends replay of that file; the
// fsync-per-append discipline guarantees every acknowledged record
// precedes any torn one.

// WALFileName returns the log file name of generation seq.
func WALFileName(seq int) string { return fmt.Sprintf("wal-%06d.log", seq) }

// walWriter appends records to one log file, fsyncing each append.
type walWriter struct {
	f   *os.File
	seq int
	// maxID is the highest row id written to this file (0 when empty —
	// disambiguated by rows > 0).
	maxID uint32
	rows  int
	buf   []byte
}

func newWALWriter(dir string, seq int) (*walWriter, error) {
	path := filepath.Join(dir, walDir, WALFileName(seq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("stream: create wal %d: %w", seq, err)
	}
	return &walWriter{f: f, seq: seq}, nil
}

// append writes and fsyncs one record covering rows with ids
// firstID..firstID+len(rows)-1.
func (w *walWriter) append(firstID uint32, rows [][]float64, dims int) error {
	payload := 4 + 4 + 4 + 8*len(rows)*dims
	w.buf = w.buf[:0]
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(payload))
	w.buf = append(w.buf, 0, 0, 0, 0) // crc placeholder
	w.buf = binary.LittleEndian.AppendUint32(w.buf, firstID)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(rows)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(dims))
	for _, row := range rows {
		for _, v := range row {
			w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
		}
	}
	binary.LittleEndian.PutUint32(w.buf[4:8], crc32.ChecksumIEEE(w.buf[8:]))
	if _, err := w.f.Write(w.buf); err != nil {
		return fmt.Errorf("stream: wal %d write: %w", w.seq, err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("stream: wal %d fsync: %w", w.seq, err)
	}
	w.maxID = firstID + uint32(len(rows)) - 1
	w.rows += len(rows)
	return nil
}

func (w *walWriter) close() error { return w.f.Close() }

// walRecord is one replayed record.
type walRecord struct {
	firstID uint32
	rows    [][]float64
}

// readWALFile replays one log file, stopping cleanly at a torn tail.
// It returns the records in append order.
func readWALFile(path string, dims int) ([]walRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("stream: read wal: %w", err)
	}
	var recs []walRecord
	for off := 0; off < len(data); {
		if off+8 > len(data) {
			break // torn frame header
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if off+8+n > len(data) {
			break // torn payload
		}
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != crc {
			break // torn or corrupt: nothing after it was acknowledged
		}
		if len(payload) < 12 {
			return nil, fmt.Errorf("stream: wal record at %d too short (%d bytes)", off, len(payload))
		}
		firstID := binary.LittleEndian.Uint32(payload)
		count := int(binary.LittleEndian.Uint32(payload[4:]))
		rdims := int(binary.LittleEndian.Uint32(payload[8:]))
		if rdims != dims {
			return nil, fmt.Errorf("stream: wal record has %d dims, store has %d", rdims, dims)
		}
		if len(payload) != 12+8*count*dims {
			return nil, fmt.Errorf("stream: wal record at %d: %d payload bytes for %d rows", off, len(payload), count)
		}
		rows := make([][]float64, count)
		p := 12
		for i := range rows {
			row := make([]float64, dims)
			for d := range row {
				row[d] = math.Float64frombits(binary.LittleEndian.Uint64(payload[p:]))
				p += 8
			}
			rows[i] = row
		}
		recs = append(recs, walRecord{firstID: firstID, rows: rows})
		off += 8 + n
	}
	return recs, nil
}

// walSeqs lists the log generations present under dir, ascending.
func walSeqs(dir string) ([]int, error) {
	entries, err := os.ReadDir(filepath.Join(dir, walDir))
	if err != nil {
		return nil, fmt.Errorf("stream: list wal: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		seq, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"))
		if err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	return seqs, nil
}
