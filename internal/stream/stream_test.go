package stream

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/grid"
	"github.com/uei-db/uei/internal/shard"
)

func testDataset(t *testing.T, n int, seed int64) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// bigMemtable keeps size-triggered background flushes out of deterministic
// tests; visibility changes only at explicit Flush/Compact calls.
func testOptions() Options {
	return Options{MemtableBytes: 1 << 30}
}

func mustCreate(t *testing.T, dir string, ds *dataset.Dataset, opts CreateOptions) {
	t.Helper()
	if err := Create(dir, ds, opts); err != nil {
		t.Fatal(err)
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *DB {
	t.Helper()
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// allRows fetches every visible row of a snapshot.
func allRows(t *testing.T, s *Snapshot) []chunkstore.MergedRow {
	t.Helper()
	ids := make([]uint32, s.RowCount())
	for i := range ids {
		ids[i] = uint32(i)
	}
	rows, err := s.FetchRows(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func checkRowsMatch(t *testing.T, rows []chunkstore.MergedRow, ds *dataset.Dataset, extra [][]float64) {
	t.Helper()
	want := ds.Len() + len(extra)
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for i, r := range rows {
		if r.ID != uint32(i) {
			t.Fatalf("row %d has id %d (results must be id-dense and sorted)", i, r.ID)
		}
		var ref []float64
		if i < ds.Len() {
			ref = ds.Row(dataset.RowID(i))
		} else {
			ref = extra[i-ds.Len()]
		}
		if !reflect.DeepEqual(r.Vals, ref) {
			t.Fatalf("row %d: got %v, want %v", i, r.Vals, ref)
		}
	}
}

func TestWALRoundTripAndTornTail(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, walDir), 0o755); err != nil {
		t.Fatal(err)
	}
	w, err := newWALWriter(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	batches := [][][]float64{
		{{1, 2}, {3, 4}},
		{{5, 6}},
		{{7, 8}, {9, 10}, {11, 12}},
	}
	first := uint32(0)
	for _, b := range batches {
		if err := w.append(first, b, 2); err != nil {
			t.Fatal(err)
		}
		first += uint32(len(b))
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, walDir, WALFileName(0))
	recs, err := readWALFile(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(batches) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(batches))
	}
	first = 0
	for i, rec := range recs {
		if rec.firstID != first {
			t.Fatalf("record %d starts at %d, want %d", i, rec.firstID, first)
		}
		if !reflect.DeepEqual(rec.rows, batches[i]) {
			t.Fatalf("record %d rows: got %v, want %v", i, rec.rows, batches[i])
		}
		first += uint32(len(rec.rows))
	}

	// Truncating anywhere inside the last frame loses exactly that frame:
	// replay stops cleanly at the torn tail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lastFrame := 8 + 12 + 8*3*2
	for _, cut := range []int{1, 7, 12, lastFrame - 1} {
		torn := filepath.Join(dir, walDir, WALFileName(9))
		if err := os.WriteFile(torn, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, err := readWALFile(torn, 2)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) != 2 {
			t.Fatalf("cut %d: replayed %d records, want 2", cut, len(recs))
		}
	}

	// A corrupt byte mid-frame (CRC mismatch) also ends replay there.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)-10] ^= 0xff
	bad := filepath.Join(dir, walDir, WALFileName(8))
	if err := os.WriteFile(bad, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err = readWALFile(bad, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("corrupt tail: replayed %d records, want 2", len(recs))
	}
}

func TestCreateOpenFlat(t *testing.T) {
	dir := t.TempDir()
	ds := testDataset(t, 500, 1)
	mustCreate(t, dir, ds, CreateOptions{})
	if !IsLiveDir(dir) {
		t.Fatal("created directory is not detected as live")
	}
	db := mustOpen(t, dir, testOptions())
	if db.Epoch() != 1 {
		t.Fatalf("fresh store at epoch %d, want 1", db.Epoch())
	}
	if db.TotalRows() != ds.Len() || db.FlushedRows() != ds.Len() {
		t.Fatalf("rows: total %d flushed %d, want %d", db.TotalRows(), db.FlushedRows(), ds.Len())
	}
	snap, err := db.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	checkRowsMatch(t, allRows(t, snap), ds, nil)
}

// TestSnapshotMatchesStaticStore pins the core parity contract at the
// storage layer: every read a snapshot answers (cell loads, row fetches,
// marked scans) is byte-identical to a flat chunk store built from the
// same rows.
func TestSnapshotMatchesStaticStore(t *testing.T) {
	liveDir, staticDir := t.TempDir(), t.TempDir()
	ds := testDataset(t, 800, 2)
	mustCreate(t, liveDir, ds, CreateOptions{})
	st, err := chunkstore.Build(staticDir, ds, chunkstore.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db := mustOpen(t, liveDir, testOptions())

	// Several flushes then a compaction, so the snapshot reads a merged
	// multi-part history rather than the pristine creation segment. The
	// appended rows reuse initial rows (shuffled order) so they stay
	// inside the pinned bounds.
	const nExtra = 200
	for i := 0; i < nExtra; i++ {
		if _, err := db.Append([][]float64{ds.Row(dataset.RowID((i * 37) % ds.Len()))}); err != nil {
			t.Fatal(err)
		}
		if (i+1)%50 == 0 {
			if err := db.Flush(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	combined := dataset.New(ds.Schema(), ds.Len()+nExtra)
	for i := 0; i < ds.Len(); i++ {
		combined.Append(ds.Row(dataset.RowID(i)))
	}
	for i := 0; i < nExtra; i++ {
		combined.Append(ds.Row(dataset.RowID((i * 37) % ds.Len())))
	}
	staticDir2 := t.TempDir()
	st2, err := chunkstore.Build(staticDir2, combined, chunkstore.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_ = st

	snap, err := db.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	if snap.RowCount() != combined.Len() {
		t.Fatalf("snapshot sees %d rows, want %d", snap.RowCount(), combined.Len())
	}
	g := db.Grid()
	ctx := context.Background()
	m2, err := grid.BuildMapping(g, st2)
	if err != nil {
		t.Fatal(err)
	}
	for cell := 0; cell < g.NumCells(); cell++ {
		box, err := g.CellBox(grid.CellID(cell))
		if err != nil {
			t.Fatal(err)
		}
		chunks, err := m2.Chunks(grid.CellID(cell))
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := st2.MergeChunks(ctx, box, chunks)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := snap.LoadCell(ctx, grid.CellID(cell))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("cell %d: snapshot load diverges from static store (%d vs %d rows)", cell, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID || !reflect.DeepEqual(got[i].Vals, want[i].Vals) {
				t.Fatalf("cell %d row %d: snapshot %v/%v, static %v/%v", cell, i, got[i].ID, got[i].Vals, want[i].ID, want[i].Vals)
			}
		}
	}
}

func TestAppendFlushVisibilityMVCC(t *testing.T) {
	dir := t.TempDir()
	ds := testDataset(t, 300, 4)
	mustCreate(t, dir, ds, CreateOptions{})
	db := mustOpen(t, dir, testOptions())

	old, err := db.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer old.Release()

	extra := [][]float64{ds.Row(0), ds.Row(1), ds.Row(2)}
	firstID, err := db.Append(extra)
	if err != nil {
		t.Fatal(err)
	}
	if firstID != uint32(ds.Len()) {
		t.Fatalf("append got first id %d, want %d", firstID, ds.Len())
	}
	// Durable but not visible: row counts split.
	if db.TotalRows() != ds.Len()+3 || db.FlushedRows() != ds.Len() {
		t.Fatalf("total %d flushed %d", db.TotalRows(), db.FlushedRows())
	}
	if old.RowCount() != ds.Len() {
		t.Fatalf("held snapshot sees %d rows before flush", old.RowCount())
	}
	if err := db.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if db.Epoch() != 2 {
		t.Fatalf("epoch %d after flush, want 2", db.Epoch())
	}
	// The held snapshot is immutable; a fresh one sees the flushed rows.
	if old.RowCount() != ds.Len() {
		t.Fatalf("held snapshot advanced to %d rows", old.RowCount())
	}
	checkRowsMatch(t, allRows(t, old), ds, nil)
	fresh, err := db.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Release()
	if fresh.Epoch() != 2 {
		t.Fatalf("fresh snapshot at epoch %d, want 2", fresh.Epoch())
	}
	checkRowsMatch(t, allRows(t, fresh), ds, extra)

	// Out-of-bounds appends are rejected: live grids never regrow.
	bad := make([]float64, len(db.Columns()))
	bad[0] = db.Bounds().Max[0] + 1
	if _, err := db.Append([][]float64{bad}); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("out-of-bounds append: got %v, want ErrOutOfBounds", err)
	}
}

func TestCompactionReclaimsUnpinnedSegments(t *testing.T) {
	dir := t.TempDir()
	ds := testDataset(t, 200, 5)
	mustCreate(t, dir, ds, CreateOptions{})
	db := mustOpen(t, dir, testOptions())
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := db.Append([][]float64{ds.Row(dataset.RowID(i))}); err != nil {
			t.Fatal(err)
		}
		if err := db.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	pinned, err := db.Acquire() // pins the 5-segment epoch
	if err != nil {
		t.Fatal(err)
	}
	preDirs := segmentDirs(t, dir)
	if len(preDirs) != 5 {
		t.Fatalf("expected 5 segment dirs before compaction, got %d", len(preDirs))
	}
	if err := db.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	// The pinned snapshot holds the old segments on disk.
	if got := segmentDirs(t, dir); len(got) != 6 {
		t.Fatalf("expected 6 segment dirs while pinned (5 old + 1 merged), got %d", len(got))
	}
	checkRowsMatch(t, allRows(t, pinned), ds, [][]float64{ds.Row(0), ds.Row(1), ds.Row(2), ds.Row(3)})
	pinned.Release()
	if got := segmentDirs(t, dir); len(got) != 1 {
		t.Fatalf("expected 1 segment dir after release, got %d: %v", len(got), got)
	}
	snap, err := db.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	checkRowsMatch(t, allRows(t, snap), ds, [][]float64{ds.Row(0), ds.Row(1), ds.Row(2), ds.Row(3)})
}

func segmentDirs(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestCrashRecovery kills a flush between segment build and manifest
// commit, then reopens: the acked rows must replay from the WAL, the
// orphan segment directories must vanish, and a retried flush must land
// every row exactly once.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	ds := testDataset(t, 300, 6)
	mustCreate(t, dir, ds, CreateOptions{})
	db := mustOpen(t, dir, testOptions())
	ctx := context.Background()

	extra := [][]float64{ds.Row(5), ds.Row(6), ds.Row(7)}
	if _, err := db.Append(extra); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected crash")
	db.SetFailpoint(func(stage string) error {
		if stage == "flush-before-commit" {
			return boom
		}
		return nil
	})
	if err := db.Flush(ctx); !errors.Is(err, boom) {
		t.Fatalf("flush with failpoint: got %v, want injected crash", err)
	}
	// The aborted flush left built-but-uncommitted segment dirs behind.
	if got := segmentDirs(t, dir); len(got) < 2 {
		t.Fatalf("expected orphan segment dirs after aborted flush, got %v", got)
	}
	db.Close() // simulate process death (Close never flushes)

	db2 := mustOpen(t, dir, testOptions())
	if db2.Epoch() != 1 {
		t.Fatalf("reopened at epoch %d, want 1 (commit never happened)", db2.Epoch())
	}
	if got := segmentDirs(t, dir); len(got) != 1 {
		t.Fatalf("orphan segments survived reopen: %v", got)
	}
	if db2.TotalRows() != ds.Len()+3 {
		t.Fatalf("reopened with %d acked rows, want %d (WAL lost rows)", db2.TotalRows(), ds.Len()+3)
	}
	if err := db2.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	snap, err := db2.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	checkRowsMatch(t, allRows(t, snap), ds, extra)

	// Idempotent reopen: everything flushed, WAL drained.
	db2.Close()
	db3 := mustOpen(t, dir, testOptions())
	if db3.TotalRows() != ds.Len()+3 || db3.FlushedRows() != ds.Len()+3 {
		t.Fatalf("third open: total %d flushed %d, want both %d", db3.TotalRows(), db3.FlushedRows(), ds.Len()+3)
	}
}

// TestZeroRowSegments covers the BuildEmpty round trip through the
// manifest: a sharded creation where one shard owns no rows writes a
// zero-row segment that must load, never contribute phantom rows, and
// compact away.
func TestZeroRowSegments(t *testing.T) {
	dir := t.TempDir()
	// Every row at the same point: exactly one cell is populated, so with
	// S=2 one shard is guaranteed rowless.
	schema, err := dataset.NewSchema("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.New(schema, 64)
	for i := 0; i < 64; i++ {
		if _, err := ds.Append([]float64{float64(i % 7), float64(i % 5)}); err != nil {
			t.Fatal(err)
		}
	}
	mustCreate(t, dir, ds, CreateOptions{Shards: 2, SegmentsPerDim: 1})
	db := mustOpen(t, dir, testOptions())
	snap, err := db.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	shards, err := snap.Shards()
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 {
		t.Fatalf("got %d shards, want 2", len(shards))
	}
	var zero, full int
	for _, sh := range shards {
		if sh.RowCount() == 0 {
			zero++
			if len(sh.Parts) != 1 {
				t.Fatalf("rowless shard has %d parts, want 1 (the BuildEmpty segment)", len(sh.Parts))
			}
		} else {
			full++
		}
	}
	if zero != 1 || full != 1 {
		t.Fatalf("want one rowless and one full shard, got %d/%d", zero, full)
	}
	// No phantom rows in cell reconstruction or fetches.
	got, _, err := snap.LoadCell(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != ds.Len() {
		t.Fatalf("cell 0 reconstructs %d rows, want %d", len(got), ds.Len())
	}
	checkRowsMatch(t, allRows(t, snap), ds, nil)
	man, err := snap.ShardManifest()
	if err != nil {
		t.Fatal(err)
	}
	if man.RowCount != ds.Len() || man.Shards != 2 {
		t.Fatalf("synthesized manifest: rows %d shards %d", man.RowCount, man.Shards)
	}
	snap.Release()

	// Compaction drops the zero-row segment outright.
	if err := db.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap2, err := db.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer snap2.Release()
	if n := len(snap2.man.Segments); n != 1 {
		t.Fatalf("after compaction %d segments remain, want 1", n)
	}
	checkRowsMatch(t, allRows(t, snap2), ds, nil)
}

func TestShardedFlushRoutesByCellOwner(t *testing.T) {
	dir := t.TempDir()
	ds := testDataset(t, 400, 7)
	mustCreate(t, dir, ds, CreateOptions{Shards: 2})
	db := mustOpen(t, dir, testOptions())
	ctx := context.Background()
	const nExtra = 100
	for i := 0; i < nExtra; i++ {
		if _, err := db.Append([][]float64{ds.Row(dataset.RowID((i * 13) % ds.Len()))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	snap, err := db.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	shards, err := snap.Shards()
	if err != nil {
		t.Fatal(err)
	}
	// Every flushed row must sit in the shard that owns its grid cell —
	// the same assignment the coordinator routes reads by.
	owners, err := shard.CellOwners(db.Grid(), 2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for si, sh := range shards {
		for _, part := range sh.Parts {
			rows, err := shard.FetchPartsRows(ctx, []shard.Part{part}, part.IDMap)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows {
				cell, err := db.Grid().CellOf(r.Vals)
				if err != nil {
					t.Fatal(err)
				}
				if owners[cell] != si {
					t.Fatalf("row %d in shard %d but cell %d is owned by %d", r.ID, si, cell, owners[cell])
				}
				total++
			}
		}
	}
	if total != ds.Len()+nExtra {
		t.Fatalf("shards hold %d rows, want %d", total, ds.Len()+nExtra)
	}
}

func TestInspect(t *testing.T) {
	dir := t.TempDir()
	ds := testDataset(t, 150, 9)
	mustCreate(t, dir, ds, CreateOptions{})
	db := mustOpen(t, dir, testOptions())
	if _, err := db.Append([][]float64{ds.Row(0), ds.Row(1)}); err != nil {
		t.Fatal(err)
	}
	db.Close()
	info, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Manifest.Epoch != 1 {
		t.Fatalf("inspect epoch %d, want 1", info.Manifest.Epoch)
	}
	if info.WALRows != 2 {
		t.Fatalf("inspect sees %d WAL rows, want 2", info.WALRows)
	}
	if info.HighWaterID != uint32(ds.Len())+1 {
		t.Fatalf("high-water id %d, want %d", info.HighWaterID, ds.Len()+1)
	}
	if info.WALBytes == 0 || info.WALFiles == 0 {
		t.Fatal("inspect reports empty WAL despite pending rows")
	}
}

func TestCloseIdempotentAndConcurrent(t *testing.T) {
	dir := t.TempDir()
	ds := testDataset(t, 100, 10)
	mustCreate(t, dir, ds, CreateOptions{})
	db := mustOpen(t, dir, testOptions())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			if _, err := db.Append([][]float64{ds.Row(dataset.RowID(i % ds.Len()))}); err != nil {
				if errors.Is(err, ErrClosed) {
					return
				}
				panic(err)
			}
		}
	}()
	if _, err := db.Acquire(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	db.Close()
	<-done
	if _, err := db.Acquire(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Acquire after Close: got %v, want ErrClosed", err)
	}
}
