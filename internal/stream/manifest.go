package stream

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

const (
	// CurrentFile is the live layout's commit pointer: it names the
	// manifest file of the newest committed epoch and is replaced
	// atomically (tmp + rename) on every flush/compaction commit —
	// the role shards.json's presence plays for static sharded stores.
	CurrentFile = "CURRENT"
	// walDir holds the write-ahead log files.
	walDir = "wal"

	manifestFormatVersion = 1
)

// ManifestFileName returns the manifest file name of an epoch.
func ManifestFileName(epoch uint64) string { return fmt.Sprintf("manifest-%06d.json", epoch) }

// SegmentDirName returns the directory name of segment id.
func SegmentDirName(id int) string { return fmt.Sprintf("seg-%06d", id) }

// SegmentMeta describes one immutable flushed segment: a self-contained
// flat chunk store plus CRC'd idmap under SegmentDirName(ID).
type SegmentMeta struct {
	// ID is globally unique and never reused (monotonic NextSegmentID).
	ID int `json:"id"`
	// Shard is the owning shard in [0, Shards); always 0 for flat layouts.
	Shard int `json:"shard"`
	// Rows is the segment's row count (zero-row segments are legal: the
	// initial sharded build writes one per rowless shard).
	Rows int `json:"rows"`
	// Bytes is the on-disk chunk payload, for compaction ordering and
	// inspection.
	Bytes int64 `json:"bytes"`
}

// Manifest is one immutable epoch of the live store: the fixed grid
// geometry plus the exact segment set a snapshot of this epoch reads.
// Commits write a whole new manifest file and swing CURRENT — copy on
// write, so a pinned older epoch keeps reading its own file's segment set.
type Manifest struct {
	FormatVersion int `json:"format_version"`
	// Epoch increases by one per commit; snapshots pin it.
	Epoch uint64 `json:"epoch"`
	// Shards is S (1 = flat layout). Fixed at creation.
	Shards int `json:"shards"`
	// SegmentsPerDim fixes the grid; live layouts never regrow it, so
	// cell geometry and cell→shard ownership are epoch-invariant.
	SegmentsPerDim int      `json:"segments_per_dim"`
	Columns        []string `json:"columns"`
	// MinValues/MaxValues pin the grid bounds at creation. Appends
	// outside them are rejected — the price of epoch-invariant geometry.
	MinValues        []float64 `json:"min_values"`
	MaxValues        []float64 `json:"max_values"`
	TargetChunkBytes int       `json:"target_chunk_bytes"`
	// NextSegmentID is the next unused segment id.
	NextSegmentID int `json:"next_segment_id"`
	// FlushedRows is the read-visibility high-water mark: rows with
	// id < FlushedRows rest in segments; rows at or above it are durable
	// in the WAL but not yet visible to snapshots. WAL replay skips
	// records below it.
	FlushedRows int           `json:"flushed_rows"`
	Segments    []SegmentMeta `json:"segments"`
}

func (m *Manifest) validate() error {
	if m.FormatVersion != manifestFormatVersion {
		return fmt.Errorf("stream: manifest format %d, want %d", m.FormatVersion, manifestFormatVersion)
	}
	if m.Epoch == 0 {
		return fmt.Errorf("stream: manifest epoch 0 (epochs start at 1)")
	}
	if m.Shards < 1 {
		return fmt.Errorf("stream: manifest has %d shards", m.Shards)
	}
	if m.SegmentsPerDim < 1 {
		return fmt.Errorf("stream: manifest has %d segments per dimension", m.SegmentsPerDim)
	}
	dims := len(m.Columns)
	if dims == 0 {
		return fmt.Errorf("stream: manifest has no columns")
	}
	if len(m.MinValues) != dims || len(m.MaxValues) != dims {
		return fmt.Errorf("stream: manifest bounds disagree with %d columns", dims)
	}
	total := 0
	seen := make(map[int]bool, len(m.Segments))
	for _, s := range m.Segments {
		if s.Rows < 0 {
			return fmt.Errorf("stream: segment %d has negative row count", s.ID)
		}
		if s.Shard < 0 || s.Shard >= m.Shards {
			return fmt.Errorf("stream: segment %d claims shard %d of %d", s.ID, s.Shard, m.Shards)
		}
		if s.ID >= m.NextSegmentID {
			return fmt.Errorf("stream: segment id %d not below next id %d", s.ID, m.NextSegmentID)
		}
		if seen[s.ID] {
			return fmt.Errorf("stream: segment id %d appears twice", s.ID)
		}
		seen[s.ID] = true
		total += s.Rows
	}
	if total != m.FlushedRows {
		return fmt.Errorf("stream: segments hold %d rows, manifest says %d flushed", total, m.FlushedRows)
	}
	return nil
}

// clone deep-copies the manifest so a commit can mutate its working copy
// while pinned snapshots keep reading the old one.
func (m *Manifest) clone() *Manifest {
	c := *m
	c.Columns = append([]string(nil), m.Columns...)
	c.MinValues = append([]float64(nil), m.MinValues...)
	c.MaxValues = append([]float64(nil), m.MaxValues...)
	c.Segments = append([]SegmentMeta(nil), m.Segments...)
	return &c
}

// ReadManifest reads the current committed manifest without opening the
// store — for layout validation (shard count, grid resolution) before
// paying a full Open, and for offline inspection.
func ReadManifest(dir string) (*Manifest, error) {
	return loadCurrentManifest(dir)
}

// IsLiveDir reports whether dir carries the live (stream) layout.
func IsLiveDir(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, CurrentFile))
	return err == nil
}

// commitManifest durably writes the manifest for its epoch and swings
// CURRENT to it. The CURRENT rename is the commit point: a crash before
// it leaves the previous epoch current and the new manifest/segments as
// removable orphans.
func commitManifest(dir string, m *Manifest) error {
	if err := m.validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("stream: marshal manifest: %w", err)
	}
	name := ManifestFileName(m.Epoch)
	path := filepath.Join(dir, name)
	if err := writeFileSync(path, data); err != nil {
		return err
	}
	if err := writeFileSync(filepath.Join(dir, CurrentFile+".tmp"), []byte(name+"\n")); err != nil {
		return err
	}
	if err := os.Rename(filepath.Join(dir, CurrentFile+".tmp"), filepath.Join(dir, CurrentFile)); err != nil {
		return fmt.Errorf("stream: commit CURRENT: %w", err)
	}
	return nil
}

// writeFileSync writes data and fsyncs before closing, so the commit
// pointer never names a manifest the filesystem might lose.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("stream: create %s: %w", filepath.Base(path), err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("stream: write %s: %w", filepath.Base(path), err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("stream: sync %s: %w", filepath.Base(path), err)
	}
	return f.Close()
}

// loadCurrentManifest reads CURRENT and the manifest it names.
func loadCurrentManifest(dir string) (*Manifest, error) {
	cur, err := os.ReadFile(filepath.Join(dir, CurrentFile))
	if err != nil {
		return nil, fmt.Errorf("stream: read CURRENT: %w", err)
	}
	name := strings.TrimSpace(string(cur))
	if name == "" || strings.ContainsAny(name, "/\\") {
		return nil, fmt.Errorf("stream: CURRENT names %q", name)
	}
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return nil, fmt.Errorf("stream: read %s: %w", name, err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("stream: parse %s: %w", name, err)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	if ManifestFileName(m.Epoch) != name {
		return nil, fmt.Errorf("stream: %s records epoch %d", name, m.Epoch)
	}
	return &m, nil
}
