package stream

import (
	"fmt"
	"path/filepath"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/grid"
	"github.com/uei-db/uei/internal/shard"
)

// memtable is the in-memory ordered write store absorbing appends between
// flushes. Rows arrive in assigned-id order, so ids are contiguous and
// ascending by construction — the same invariant build-time idmaps carry.
type memtable struct {
	firstID uint32
	rows    [][]float64
	bytes   int64
}

func (m *memtable) len() int { return len(m.rows) }

// frozenMem pairs an immutable frozen memtable with the WAL generation
// that made it durable; flushing it retires that generation.
type frozenMem struct {
	mem    *memtable
	walSeq int
}

// segment is one open flushed segment: a flat chunk store, its mapping
// over the fixed grid, and the local→global idmap — exactly a shard.Part
// plus bookkeeping.
type segment struct {
	meta SegmentMeta
	dir  string
	part shard.Part
}

// buildSegment materializes rows (global ids `ids`, ascending) as segment
// id under db.dir and returns its meta. Zero rows build an explicit empty
// store so every segment directory is uniform.
func (db *DB) buildSegment(id int, shardID int, ids []uint32, rows [][]float64) (SegmentMeta, error) {
	sdir := filepath.Join(db.dir, SegmentDirName(id))
	var st *chunkstore.Store
	var err error
	if len(rows) == 0 {
		st, err = chunkstore.BuildEmpty(sdir, db.columns, db.bounds, db.target)
	} else {
		sub := dataset.New(db.schema, len(rows))
		for i, row := range rows {
			if _, aerr := sub.Append(row); aerr != nil {
				return SegmentMeta{}, fmt.Errorf("stream: segment %d row %d: %w", id, i, aerr)
			}
		}
		st, err = chunkstore.Build(sdir, sub, chunkstore.BuildOptions{TargetChunkBytes: db.target})
	}
	if err != nil {
		return SegmentMeta{}, err
	}
	if err := shard.SaveIDMap(sdir, ids); err != nil {
		return SegmentMeta{}, err
	}
	return SegmentMeta{ID: id, Shard: shardID, Rows: len(rows), Bytes: st.TotalBytes()}, nil
}

// openSegment opens a committed segment directory and installs the shared
// block cache under a per-segment key prefix (segment ids are globally
// unique and never reused, so retired ids cannot alias cached chunks).
func (db *DB) openSegment(meta SegmentMeta) (*segment, error) {
	sdir := filepath.Join(db.dir, SegmentDirName(meta.ID))
	st, err := chunkstore.Open(sdir, db.opts.Limiter)
	if err != nil {
		return nil, fmt.Errorf("stream: segment %d: %w", meta.ID, err)
	}
	if st.RowCount() != meta.Rows {
		return nil, fmt.Errorf("stream: segment %d holds %d rows, manifest says %d", meta.ID, st.RowCount(), meta.Rows)
	}
	if st.Dims() != len(db.columns) {
		return nil, fmt.Errorf("stream: segment %d has %d dims, manifest says %d", meta.ID, st.Dims(), len(db.columns))
	}
	st.SetWorkers(db.opts.Workers)
	if db.opts.BlockCache != nil {
		st.SetCacheKeyPrefix(SegmentDirName(meta.ID) + "/")
		st.SetBlockCache(db.opts.BlockCache)
	}
	mp, err := grid.BuildMapping(db.grid, st)
	if err != nil {
		return nil, fmt.Errorf("stream: segment %d: %w", meta.ID, err)
	}
	ids, err := shard.LoadIDMap(sdir)
	if err != nil {
		return nil, fmt.Errorf("stream: segment %d: %w", meta.ID, err)
	}
	if len(ids) != meta.Rows {
		return nil, fmt.Errorf("stream: segment %d idmap has %d entries, manifest says %d rows", meta.ID, len(ids), meta.Rows)
	}
	return &segment{
		meta: meta,
		dir:  sdir,
		part: shard.Part{Store: st, Mapping: mp, IDMap: ids},
	}, nil
}
