package loadgen

import (
	"bytes"
	"context"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/obs"
	"github.com/uei-db/uei/internal/server"
)

// startServer boots a real server.Manager over a small synthetic store
// and serves it on an httptest listener.
func startServer(t testing.TB, mut func(*server.Config)) *httptest.Server {
	t.Helper()
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 1200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := core.Build(dir, ds, core.BuildOptions{TargetChunkBytes: 4096}); err != nil {
		t.Fatal(err)
	}
	cfg := server.Config{
		StoreDir:              dir,
		TotalBudgetBytes:      8 << 20,
		MinSessionBudgetBytes: 32 << 10,
		MaxSessions:           16,
		Seed:                  5,
	}
	if mut != nil {
		mut(&cfg)
	}
	m, err := server.NewManager(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close(context.Background()) })
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// smokeProfile is a fast, deterministic profile for tests: no think
// time, no ramp, pinned sample size.
func smokeProfile(users int) Profile {
	p := Profile{
		Name:  "test-smoke",
		Seed:  11,
		Users: users,
		Regions: []Region{
			{Name: "dense", Oracle: server.OracleSpec{Selectivity: 0.05}},
			{Name: "mid", Oracle: server.OracleSpec{Selectivity: 0.03}},
		},
		RegionZipfS:     1.4,
		MinLabels:       4,
		MaxLabels:       8,
		SampleSize:      150,
		SessionsPerUser: 2,
		AbandonProb:     0.2,
	}
	return p
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	// Log-bucketed quantiles carry ~5% relative error.
	for _, c := range []struct {
		q    float64
		want time.Duration
	}{{0.50, 500 * time.Millisecond}, {0.95, 950 * time.Millisecond}, {0.99, 990 * time.Millisecond}} {
		got := h.Quantile(c.q)
		lo := time.Duration(float64(c.want) * 0.90)
		hi := time.Duration(float64(c.want) * 1.10)
		if got < lo || got > hi {
			t.Errorf("q%.2f = %v, want within 10%% of %v", c.q, got, c.want)
		}
	}
	if h.Quantile(1.0) != 1000*time.Millisecond {
		t.Errorf("p100 = %v, want the exact max", h.Quantile(1.0))
	}
	var other Hist
	other.Observe(5 * time.Second)
	h.Merge(&other)
	if h.Count() != 1001 || h.Max() != 5*time.Second {
		t.Errorf("after merge: count=%d max=%v", h.Count(), h.Max())
	}
}

func TestThinkSpecDeterministic(t *testing.T) {
	for _, dist := range []string{"constant", "exponential", "lognormal"} {
		spec := ThinkSpec{Dist: dist, MeanMs: 100, SigmaMs: 50}
		if err := spec.validate(); err != nil {
			t.Fatal(err)
		}
		draw := func() []time.Duration {
			rng := rand.New(rand.NewSource(7))
			out := make([]time.Duration, 20)
			for i := range out {
				out[i] = spec.Sample(rng)
			}
			return out
		}
		a, b := draw(), draw()
		var mean time.Duration
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: draw %d differs: %v vs %v", dist, i, a[i], b[i])
			}
			if a[i] < 0 {
				t.Fatalf("%s: negative think time %v", dist, a[i])
			}
			mean += a[i]
		}
		mean /= time.Duration(len(a))
		if mean <= 0 {
			t.Fatalf("%s: zero mean think time", dist)
		}
	}
	if err := (ThinkSpec{Dist: "weibull"}).validate(); err == nil {
		t.Fatal("unknown dist must be rejected")
	}
	if err := (ThinkSpec{Dist: "lognormal"}).validate(); err == nil {
		t.Fatal("lognormal without mean must be rejected")
	}
}

func TestProfileParse(t *testing.T) {
	raw := []byte(`{
		"name": "custom",
		"seed": 3,
		"users": 10,
		"ramp_up": "250ms",
		"write_interval": 50,
		"regions": [{"name": "a", "oracle": {"selectivity": 0.05}}],
		"max_labels": 6,
		"think": {"dist": "lognormal", "mean_ms": 100, "sigma_ms": 60}
	}`)
	p, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if time.Duration(p.RampUp) != 250*time.Millisecond {
		t.Errorf("ramp_up = %v", time.Duration(p.RampUp))
	}
	if time.Duration(p.WriteInterval) != 50*time.Millisecond {
		t.Errorf("numeric write_interval = %v, want 50ms", time.Duration(p.WriteInterval))
	}
	if p.MinLabels != 6 || p.SLOMillis != 500 || p.SessionsPerUser != 1 {
		t.Errorf("defaults not applied: %+v", p)
	}
	if p.Regions[0].Oracle.Seed == 0 {
		t.Error("unseeded region did not get a derived oracle seed")
	}
	if _, err := Parse([]byte(`{"name":"x","seed":1,"users":0,"max_labels":5,"regions":[{"name":"a","oracle":{}}]}`)); err == nil {
		t.Error("users=0 must be rejected")
	}
}

func TestBuiltinProfilesValid(t *testing.T) {
	names := BuiltinNames()
	if len(names) < 5 {
		t.Fatalf("builtin library has %d profiles, want >= 5", len(names))
	}
	for _, n := range names {
		p, ok := Builtin(n)
		if !ok {
			t.Fatalf("Builtin(%q) missing", n)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("builtin %q invalid: %v", n, err)
		}
		for i, r := range p.Regions {
			if r.Oracle.Seed == 0 {
				t.Errorf("builtin %q region %d has no oracle seed after defaults", n, i)
			}
		}
	}
}

// TestLoadgenSmoke drives a small fleet against a real manager and
// requires a clean run: zero errors, every planned session accounted
// for, latency and compliance populated.
func TestLoadgenSmoke(t *testing.T) {
	srv := startServer(t, nil)
	res, err := Run(srv.URL, smokeProfile(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.TotalErrors() != 0 {
		t.Fatalf("errors: %d (records: %+v)", s.TotalErrors(), failedRecords(res.Records))
	}
	if s.Sessions.Planned != 16 || s.Sessions.Completed+s.Sessions.Abandoned != 16 {
		t.Fatalf("sessions: %+v, want 16 planned, all completed or abandoned", s.Sessions)
	}
	if s.Steps.Count == 0 || s.Steps.P95Ms <= 0 {
		t.Fatalf("no step latency recorded: %+v", s.Steps)
	}
	if s.Steps.Compliance <= 0 || s.Steps.Compliance > 1 {
		t.Fatalf("compliance %v outside (0,1]", s.Steps.Compliance)
	}
	if len(s.Regions) < 2 {
		t.Fatalf("zipfian picker never chose a second region: %v", s.Regions)
	}
	var human bytes.Buffer
	s.WriteHuman(&human)
	for _, want := range []string{"loadgen profile=test-smoke", "slo budget_ms=500", "workflow digest="} {
		if !strings.Contains(human.String(), want) {
			t.Errorf("human report missing %q:\n%s", want, human.String())
		}
	}
}

func failedRecords(recs []SessionRecord) []SessionRecord {
	var out []SessionRecord
	for _, r := range recs {
		if r.Error != "" {
			out = append(out, r)
		}
	}
	return out
}

// TestSeededReproducibility is the acceptance check: two same-seed runs
// produce identical session workflows and label sequences.
func TestSeededReproducibility(t *testing.T) {
	srv := startServer(t, nil)
	run := func() *Result {
		res, err := Run(srv.URL, smokeProfile(6), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Summary.TotalErrors() != 0 {
			t.Fatalf("errors in run: %+v", failedRecords(res.Records))
		}
		return res
	}
	a, b := run(), run()
	if a.Summary.WorkflowDigest != b.Summary.WorkflowDigest {
		t.Fatalf("workflow digests differ: %s vs %s", a.Summary.WorkflowDigest, b.Summary.WorkflowDigest)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		ra, rb := a.Records[i], b.Records[i]
		if ra.Region != rb.Region || ra.MaxLabels != rb.MaxLabels || ra.AbandonAfter != rb.AbandonAfter {
			t.Fatalf("record %d workflow differs: %+v vs %+v", i, ra, rb)
		}
		if strings.Join(ra.Labels, ",") != strings.Join(rb.Labels, ",") {
			t.Fatalf("record %d label sequence differs:\n%v\n%v", i, ra.Labels, rb.Labels)
		}
	}
}

// TestBackoffHonorsRetryAfter hammers a 2-session server with 6 users
// and checks the admission-control contract: rejects are honored with
// scaled Retry-After waits, never counted as latency samples or SLO
// violations, and the fleet converges — every session completes.
func TestBackoffHonorsRetryAfter(t *testing.T) {
	srv := startServer(t, func(c *server.Config) {
		c.MaxSessions = 2
		c.MaxQueuedSteps = 1
	})
	const scale = 0.01 // Retry-After 2s -> 20ms real wait
	var mu sync.Mutex
	var waits []time.Duration
	sleep := func(d time.Duration) {
		mu.Lock()
		waits = append(waits, d)
		mu.Unlock()
		time.Sleep(d)
	}
	p := smokeProfile(6)
	p.AbandonProb = 0 // every session runs to done: convergence proof
	res, err := Run(srv.URL, p, Options{
		Sleep:      sleep,
		RetryScale: scale,
		MaxRetries: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	rejects := s.Backoff.Rejects429 + s.Backoff.Rejects503
	if rejects == 0 {
		t.Fatal("6 users against a 2-session cap produced no backpressure")
	}
	if s.TotalErrors() != 0 {
		t.Fatalf("backpressure surfaced as errors: %+v", failedRecords(res.Records))
	}
	if s.Sessions.Completed != s.Sessions.Planned {
		t.Fatalf("fleet did not converge: %+v", s.Sessions)
	}
	// Rejected requests are not latency samples: every recorded step
	// matches a successful step in some record.
	var okSteps int64
	for _, r := range res.Records {
		okSteps += int64(r.Steps)
	}
	if s.Steps.Count != okSteps {
		t.Fatalf("step latency count %d != successful steps %d (rejects leaked in)", s.Steps.Count, okSteps)
	}
	// The waits honored the server's Retry-After hint (1s or 2s scaled,
	// plus up to 50% jitter).
	minHint := time.Duration(float64(time.Second) * scale)
	var backoffWaits int
	mu.Lock()
	defer mu.Unlock()
	for _, w := range waits {
		if w >= minHint {
			backoffWaits++
		}
	}
	if backoffWaits == 0 {
		t.Fatalf("no sleep as long as a scaled Retry-After hint (%v) among %d sleeps", minHint, len(waits))
	}
	if s.Backoff.WaitMs <= 0 {
		t.Fatal("backoff wait time not accounted")
	}
}

// TestTraceJoin runs a traced fleet and joins the collected trace ids
// against the server's trace stream.
func TestTraceJoin(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(f)
	srv := startServer(t, func(c *server.Config) { c.Tracer = tracer })

	res, err := Run(srv.URL, smokeProfile(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TraceIDs) == 0 {
		t.Fatal("traced server returned no trace ids")
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	join, err := JoinTraceFile(path, res.TraceIDs)
	if err != nil {
		t.Fatal(err)
	}
	if join.Matched != len(res.TraceIDs) {
		t.Fatalf("matched %d of %d trace ids (missing %d)", join.Matched, len(res.TraceIDs), join.Missing)
	}
	if len(join.PhaseMs) == 0 || join.WallMs <= 0 {
		t.Fatalf("join has no phase attribution: %+v", join)
	}
	res.Summary.TraceJoin = join
	var human bytes.Buffer
	res.Summary.WriteHuman(&human)
	if !strings.Contains(human.String(), "trace_join matched=") {
		t.Errorf("human report missing trace join:\n%s", human.String())
	}
}
