package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/uei-db/uei/internal/server"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("250ms", "2s") and unmarshals from either that form or a bare number
// of milliseconds, so profiles stay hand-editable JSON.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("loadgen: bad duration %q: %v", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ms float64
	if err := json.Unmarshal(b, &ms); err != nil {
		return fmt.Errorf("loadgen: duration must be a string like \"250ms\" or a number of milliseconds: %s", b)
	}
	*d = Duration(ms * float64(time.Millisecond))
	return nil
}

// Region is a named interest region users can explore. Its OracleSpec
// must carry its own Seed so every session targeting this region shares
// one synthesized ground truth regardless of the session's private
// sampling seed.
type Region struct {
	// Name identifies the region in reports and workflow logs.
	Name string `json:"name"`
	// Oracle describes the target; selectivity-based specs are
	// schema-independent and work against any store.
	Oracle server.OracleSpec `json:"oracle"`
}

// Profile is a named, seeded, reproducible workload description — the
// unit the uei-loadgen CLI loads from JSON or picks from the builtin
// library.
type Profile struct {
	// Name identifies the profile in reports.
	Name string `json:"name"`
	// Description is a one-line summary for -list.
	Description string `json:"description,omitempty"`
	// Seed drives every random choice in the run: user workflows, think
	// times, region popularity, session seeds. Two runs with equal
	// profiles and seeds produce identical workflows and label
	// sequences.
	Seed int64 `json:"seed"`
	// Users is the fleet size.
	Users int `json:"users"`
	// SessionsPerUser is how many sessions each user runs back to back.
	// Zero selects 1.
	SessionsPerUser int `json:"sessions_per_user,omitempty"`
	// RampUp staggers user start times uniformly across this window so
	// the fleet does not arrive as one thundering herd. Zero starts
	// everyone at once.
	RampUp Duration `json:"ramp_up,omitempty"`

	// Regions is the library of named interest regions. Users pick one
	// per session; index order is popularity order under zipf.
	Regions []Region `json:"regions"`
	// RegionZipfS, when > 1, skews region popularity zipfian with this
	// exponent (region 0 hottest). Values <= 1 pick uniformly.
	RegionZipfS float64 `json:"region_zipf_s,omitempty"`

	// MinLabels and MaxLabels bound the per-session label budget; each
	// session draws uniformly from [MinLabels, MaxLabels], mixing short
	// and long explorations. MinLabels zero selects MaxLabels.
	MinLabels int `json:"min_labels,omitempty"`
	MaxLabels int `json:"max_labels"`
	// SampleSize pins the session view's γ. Pinning keeps workflows
	// deterministic: the server otherwise derives γ from its current
	// budget share, which varies with load. Zero lets the server choose.
	SampleSize int `json:"sample_size,omitempty"`
	// BatchSize is the retrain batch B (zero: server default).
	BatchSize int `json:"batch_size,omitempty"`
	// AbandonProb is the per-session probability the user walks away
	// early, finishing at a uniformly drawn fraction of the budget —
	// real explorers leave when they have seen enough.
	AbandonProb float64 `json:"abandon_prob,omitempty"`
	// Think is the between-step pause distribution.
	Think ThinkSpec `json:"think,omitempty"`

	// SLOMillis is the interactivity budget a step must meet. Zero
	// selects 500 (the paper's interactive threshold).
	SLOMillis float64 `json:"slo_millis,omitempty"`

	// Writers is the number of concurrent live-append writers running
	// alongside the fleet (requires a -live server). Zero disables.
	Writers int `json:"writers,omitempty"`
	// WriteBatch is rows per append call (zero: 64).
	WriteBatch int `json:"write_batch,omitempty"`
	// WriteInterval is the pause between append calls (zero: 100ms).
	WriteInterval Duration `json:"write_interval,omitempty"`
}

// withDefaults fills zero values.
func (p Profile) withDefaults() Profile {
	if p.SessionsPerUser == 0 {
		p.SessionsPerUser = 1
	}
	if p.MinLabels == 0 {
		p.MinLabels = p.MaxLabels
	}
	if p.SLOMillis == 0 {
		p.SLOMillis = 500
	}
	if p.WriteBatch == 0 {
		p.WriteBatch = 64
	}
	if p.WriteInterval == 0 {
		p.WriteInterval = Duration(100 * time.Millisecond)
	}
	// Unseeded regions get deterministic seeds derived from the profile
	// seed, so a hand-written profile stays reproducible without
	// spelling every seed out.
	for i := range p.Regions {
		if p.Regions[i].Oracle.Seed == 0 {
			p.Regions[i].Oracle.Seed = p.Seed*1000003 + int64(i) + 1
		}
	}
	return p
}

// Validate rejects malformed profiles with actionable messages.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("loadgen: profile needs a name")
	}
	if p.Users <= 0 {
		return fmt.Errorf("loadgen: profile %q needs users > 0", p.Name)
	}
	if p.SessionsPerUser < 0 {
		return fmt.Errorf("loadgen: profile %q: negative sessions_per_user", p.Name)
	}
	if len(p.Regions) == 0 {
		return fmt.Errorf("loadgen: profile %q needs at least one region", p.Name)
	}
	for i, r := range p.Regions {
		if r.Name == "" {
			return fmt.Errorf("loadgen: profile %q: region %d needs a name", p.Name, i)
		}
	}
	if p.MaxLabels <= 0 {
		return fmt.Errorf("loadgen: profile %q needs max_labels > 0", p.Name)
	}
	if p.MinLabels < 0 || (p.MinLabels > 0 && p.MinLabels > p.MaxLabels) {
		return fmt.Errorf("loadgen: profile %q: min_labels %d outside [0, max_labels=%d]", p.Name, p.MinLabels, p.MaxLabels)
	}
	if p.AbandonProb < 0 || p.AbandonProb > 1 {
		return fmt.Errorf("loadgen: profile %q: abandon_prob %g outside [0,1]", p.Name, p.AbandonProb)
	}
	if p.RegionZipfS < 0 {
		return fmt.Errorf("loadgen: profile %q: negative region_zipf_s", p.Name)
	}
	if p.Writers < 0 {
		return fmt.Errorf("loadgen: profile %q: negative writers", p.Name)
	}
	if err := p.Think.validate(); err != nil {
		return fmt.Errorf("profile %q: %w", p.Name, err)
	}
	return nil
}

// Load reads a profile from a JSON file, validates it, and applies
// defaults.
func Load(path string) (Profile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Profile{}, fmt.Errorf("loadgen: read profile: %w", err)
	}
	return Parse(b)
}

// Parse decodes, validates, and defaults a JSON profile.
func Parse(b []byte) (Profile, error) {
	var p Profile
	if err := json.Unmarshal(b, &p); err != nil {
		return Profile{}, fmt.Errorf("loadgen: parse profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p.withDefaults(), nil
}

// builtins is the starter profile library. Every profile is seeded and
// selectivity-based, so it runs against any store without knowing the
// schema.
var builtins = map[string]Profile{
	"static": {
		Name:        "static",
		Description: "steady fleet over fixed interest regions, lognormal think time",
		Seed:        1,
		Users:       100,
		RampUp:      Duration(2 * time.Second),
		Regions: []Region{
			{Name: "dense", Oracle: server.OracleSpec{Selectivity: 0.05}},
			{Name: "mid", Oracle: server.OracleSpec{Selectivity: 0.02}},
			{Name: "narrow", Oracle: server.OracleSpec{Selectivity: 0.01}},
		},
		MinLabels:  6,
		MaxLabels:  15,
		SampleSize: 200,
		Think:      ThinkSpec{Dist: "lognormal", MeanMs: 150, SigmaMs: 100},
	},
	"drifting-interest": {
		Name:        "drifting-interest",
		Description: "users whose target region moves as they label (concept drift)",
		Seed:        2,
		Users:       100,
		RampUp:      Duration(2 * time.Second),
		Regions: []Region{
			{Name: "drift-near", Oracle: server.OracleSpec{Selectivity: 0.05, Drift: &server.DriftSpec{OffsetFrac: 0.05}}},
			{Name: "drift-far", Oracle: server.OracleSpec{Selectivity: 0.03, Drift: &server.DriftSpec{OffsetFrac: 0.15}}},
		},
		MinLabels:   8,
		MaxLabels:   18,
		SampleSize:  200,
		AbandonProb: 0.1,
		Think:       ThinkSpec{Dist: "lognormal", MeanMs: 200, SigmaMs: 150},
	},
	"multi-region-nonconvex": {
		Name:        "multi-region-nonconvex",
		Description: "disjunctive and ring-shaped targets that break single-box convexity",
		Seed:        3,
		Users:       100,
		RampUp:      Duration(2 * time.Second),
		Regions: []Region{
			{Name: "two-islands", Oracle: server.OracleSpec{Selectivity: 0.05, Regions: 2}},
			{Name: "ring", Oracle: server.OracleSpec{Selectivity: 0.08, Ring: &server.RingSpec{InnerFrac: 0.5}}},
			{Name: "three-islands", Oracle: server.OracleSpec{Selectivity: 0.06, Regions: 3}},
		},
		MinLabels:  8,
		MaxLabels:  16,
		SampleSize: 200,
		Think:      ThinkSpec{Dist: "exponential", MeanMs: 150},
	},
	"zipfian-hotspot": {
		Name:        "zipfian-hotspot",
		Description: "zipfian popularity: most users pile onto one hot region",
		Seed:        4,
		Users:       150,
		RampUp:      Duration(2 * time.Second),
		Regions: []Region{
			{Name: "hot", Oracle: server.OracleSpec{Selectivity: 0.05}},
			{Name: "warm", Oracle: server.OracleSpec{Selectivity: 0.04}},
			{Name: "cool", Oracle: server.OracleSpec{Selectivity: 0.03}},
			{Name: "cold", Oracle: server.OracleSpec{Selectivity: 0.02}},
		},
		RegionZipfS: 1.5,
		MinLabels:   6,
		MaxLabels:   12,
		SampleSize:  200,
		AbandonProb: 0.15,
		Think:       ThinkSpec{Dist: "lognormal", MeanMs: 120, SigmaMs: 80},
	},
	"live-ingest": {
		Name:        "live-ingest",
		Description: "exploration under concurrent live appends (requires a -live server)",
		Seed:        5,
		Users:       80,
		RampUp:      Duration(2 * time.Second),
		Regions: []Region{
			{Name: "dense", Oracle: server.OracleSpec{Selectivity: 0.05}},
			{Name: "mid", Oracle: server.OracleSpec{Selectivity: 0.02}},
		},
		MinLabels:     6,
		MaxLabels:     14,
		SampleSize:    200,
		Think:         ThinkSpec{Dist: "lognormal", MeanMs: 150, SigmaMs: 100},
		Writers:       4,
		WriteBatch:    64,
		WriteInterval: Duration(100 * time.Millisecond),
	},
}

// Builtin returns a builtin profile by name (defaults applied).
func Builtin(name string) (Profile, bool) {
	p, ok := builtins[name]
	if !ok {
		return Profile{}, false
	}
	return p.withDefaults(), true
}

// BuiltinNames lists the builtin profiles in sorted order.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
