package loadgen

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"time"
)

// LatencyStats is one operation's latency profile in milliseconds.
type LatencyStats struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	// SLOOK counts calls within the SLO budget; Compliance is
	// SLOOK/Count (1 when no calls happened).
	SLOOK      int64   `json:"slo_ok"`
	Compliance float64 `json:"compliance"`
}

func latencyStats(o *opStats) LatencyStats {
	s := LatencyStats{
		Count:  o.hist.Count(),
		Errors: o.errors,
		MeanMs: Millis(o.hist.Mean()),
		P50Ms:  Millis(o.hist.Quantile(0.50)),
		P95Ms:  Millis(o.hist.Quantile(0.95)),
		P99Ms:  Millis(o.hist.Quantile(0.99)),
		MaxMs:  Millis(o.hist.Max()),
		SLOOK:  o.sloOK,
	}
	if s.Count > 0 {
		s.Compliance = float64(s.SLOOK) / float64(s.Count)
	} else {
		s.Compliance = 1
	}
	return s
}

// BackoffSummary is the backpressure ledger: how often the server said
// "not now" and how long the fleet waited as told. None of it counts
// against latency or SLO compliance.
type BackoffSummary struct {
	Rejects429 int64   `json:"rejects_429"`
	Rejects503 int64   `json:"rejects_503"`
	WaitMs     float64 `json:"wait_ms"`
	Exhausted  int64   `json:"exhausted"`
}

// ServerInfo records what the fleet was pointed at.
type ServerInfo struct {
	Rows   int `json:"rows"`
	Shards int `json:"shards,omitempty"`
}

// WriterStats summarizes the live-append side load.
type WriterStats struct {
	Appends   int64  `json:"appends,omitempty"`
	Rows      int64  `json:"rows,omitempty"`
	Errors    int64  `json:"errors,omitempty"`
	LastError string `json:"last_error,omitempty"`
}

// SessionCounts tallies session outcomes.
type SessionCounts struct {
	Planned   int `json:"planned"`
	Completed int `json:"completed"`
	Abandoned int `json:"abandoned"`
	Failed    int `json:"failed"`
	Degraded  int `json:"degraded_steps,omitempty"`
}

// Summary is a run's machine-readable report (-out writes it as JSON).
type Summary struct {
	Profile   string                  `json:"profile"`
	Seed      int64                   `json:"seed"`
	Users     int                     `json:"users"`
	WallSec   float64                 `json:"wall_sec"`
	Steps     LatencyStats            `json:"steps"`
	Phases    map[string]LatencyStats `json:"phases"`
	Create    LatencyStats            `json:"create"`
	ResultOp  LatencyStats            `json:"result"`
	Sessions  SessionCounts           `json:"sessions"`
	Regions   map[string]int          `json:"regions"`
	Backoff   BackoffSummary          `json:"backoff"`
	Writers   WriterStats             `json:"writers,omitempty"`
	Server    ServerInfo              `json:"server"`
	SLOMillis float64                 `json:"slo_millis"`
	// StepsPerSec is completed steps over wall time.
	StepsPerSec float64 `json:"steps_per_sec"`
	// WorkflowDigest is an FNV-64a hash of every session record (user,
	// region, budget, abandonment, label sequence — ids excluded). Equal
	// digests mean equal workflows: the reproducibility check.
	WorkflowDigest string `json:"workflow_digest"`
	// TraceJoin is the per-phase server-side attribution, present when
	// the run was joined against a trace file.
	TraceJoin *TraceJoin `json:"trace_join,omitempty"`
}

// summarize aggregates merged metrics into a Summary.
func summarize(p Profile, met *metrics, backoff *BackoffStats, records []SessionRecord, wall time.Duration) Summary {
	s := Summary{
		Profile:   p.Name,
		Seed:      p.Seed,
		Users:     p.Users,
		WallSec:   wall.Seconds(),
		Steps:     latencyStats(met.allSteps()),
		Phases:    map[string]LatencyStats{},
		Create:    latencyStats(&met.create),
		ResultOp:  latencyStats(&met.result),
		Regions:   map[string]int{},
		SLOMillis: p.SLOMillis,
		Backoff: BackoffSummary{
			Rejects429: backoff.Rejects429.Load(),
			Rejects503: backoff.Rejects503.Load(),
			WaitMs:     float64(backoff.WaitNanos.Load()) / float64(time.Millisecond),
			Exhausted:  backoff.Exhausted.Load(),
		},
	}
	for _, ph := range phaseOrder {
		if st := met.steps[ph]; st.hist.Count() > 0 || st.errors > 0 {
			s.Phases[ph] = latencyStats(st)
		}
	}
	for _, r := range records {
		s.Sessions.Planned++
		s.Regions[r.Region]++
		s.Sessions.Degraded += r.Degraded
		switch {
		case r.Error != "":
			s.Sessions.Failed++
		case r.Abandoned:
			s.Sessions.Abandoned++
		case r.Done:
			s.Sessions.Completed++
		}
	}
	if s.WallSec > 0 {
		s.StepsPerSec = float64(s.Steps.Count) / s.WallSec
	}
	s.WorkflowDigest = digest(records)
	return s
}

// digest hashes the workflow-relevant fields of every record. Session
// ids and latencies are excluded on purpose: they vary run to run while
// the workflow itself must not.
func digest(records []SessionRecord) string {
	h := fnv.New64a()
	for _, r := range records {
		fmt.Fprintf(h, "%d/%d %s budget=%d abandon=%d done=%v labels=%v\n",
			r.User, r.Session, r.Region, r.MaxLabels, r.AbandonAfter, r.Done, r.Labels)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TotalErrors sums every error axis: failed requests across operations
// plus writer failures.
func (s *Summary) TotalErrors() int64 {
	return s.Steps.Errors + s.Create.Errors + s.ResultOp.Errors + s.Writers.Errors
}

// WriteJSON writes the summary as indented JSON.
func (s *Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteHuman writes the operator-facing report. Lines are stable
// `key=value` pairs so CI gates can awk them.
func (s *Summary) WriteHuman(w io.Writer) {
	fmt.Fprintf(w, "loadgen profile=%s seed=%d users=%d wall_sec=%.1f rows=%d shards=%d\n",
		s.Profile, s.Seed, s.Users, s.WallSec, s.Server.Rows, s.Server.Shards)
	fmt.Fprintf(w, "sessions planned=%d completed=%d abandoned=%d failed=%d\n",
		s.Sessions.Planned, s.Sessions.Completed, s.Sessions.Abandoned, s.Sessions.Failed)
	fmt.Fprintf(w, "steps count=%d errors=%d steps_per_sec=%.1f degraded=%d\n",
		s.Steps.Count, s.Steps.Errors, s.StepsPerSec, s.Sessions.Degraded)
	fmt.Fprintf(w, "step_latency_ms mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f\n",
		s.Steps.MeanMs, s.Steps.P50Ms, s.Steps.P95Ms, s.Steps.P99Ms, s.Steps.MaxMs)
	for _, ph := range phaseOrder {
		st, ok := s.Phases[ph]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "phase name=%s count=%d p50=%.2f p95=%.2f p99=%.2f compliance=%.4f\n",
			ph, st.Count, st.P50Ms, st.P95Ms, st.P99Ms, st.Compliance)
	}
	fmt.Fprintf(w, "create count=%d errors=%d p95=%.2f\n", s.Create.Count, s.Create.Errors, s.Create.P95Ms)
	fmt.Fprintf(w, "slo budget_ms=%.0f ok=%d compliance=%.4f\n", s.SLOMillis, s.Steps.SLOOK, s.Steps.Compliance)
	fmt.Fprintf(w, "backoff rejects_429=%d rejects_503=%d wait_ms=%.0f exhausted=%d\n",
		s.Backoff.Rejects429, s.Backoff.Rejects503, s.Backoff.WaitMs, s.Backoff.Exhausted)
	if s.Writers.Appends > 0 || s.Writers.Errors > 0 {
		fmt.Fprintf(w, "writers appends=%d rows=%d errors=%d\n", s.Writers.Appends, s.Writers.Rows, s.Writers.Errors)
	}
	fmt.Fprintf(w, "workflow digest=%s\n", s.WorkflowDigest)
	if s.TraceJoin != nil {
		s.TraceJoin.writeHuman(w)
	}
}
