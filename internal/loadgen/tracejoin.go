package loadgen

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"github.com/uei-db/uei/internal/obs"
)

// TraceJoin is the server-side view of a run: the trace ids the clients
// collected from X-Uei-Trace-Id, joined against the server's trace JSONL
// and decomposed into budget-attribution phases. It answers "when p95
// blew the budget, which phase ate it" with the same machinery uei-trace
// uses.
type TraceJoin struct {
	// Matched counts client-collected trace ids found in the file;
	// Missing counts ids the file did not contain (trace written by a
	// different server, or rotated away).
	Matched int `json:"matched"`
	Missing int `json:"missing"`
	// Unmatched counts traces present in the file but not collected by
	// this run (other clients, warmup traffic).
	Unmatched int `json:"unmatched"`
	// PhaseMs sums each phase's duration across the matched steps.
	PhaseMs map[string]float64 `json:"phase_ms"`
	// WallMs sums the matched steps' wall time; CoverageMean is the
	// average fraction of wall time the phase decomposition explains.
	WallMs       float64 `json:"wall_ms"`
	CoverageMean float64 `json:"coverage_mean"`
}

// JoinTraceFile joins a run's collected trace ids against a server trace
// JSONL file.
func JoinTraceFile(path string, traceIDs []string) (*TraceJoin, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("loadgen: open trace: %w", err)
	}
	defer f.Close()
	events, err := obs.ReadTrace(f)
	if err != nil {
		return nil, err
	}
	return JoinTrace(obs.Analyze(events), traceIDs), nil
}

// JoinTrace joins collected trace ids against an analyzed trace stream.
func JoinTrace(a *obs.Analysis, traceIDs []string) *TraceJoin {
	want := make(map[string]bool, len(traceIDs))
	for _, id := range traceIDs {
		want[id] = true
	}
	j := &TraceJoin{PhaseMs: map[string]float64{}}
	var coverage float64
	for _, st := range a.Steps {
		if !want[st.TraceID] {
			j.Unmatched++
			continue
		}
		delete(want, st.TraceID)
		j.Matched++
		j.WallMs += float64(st.Wall()) / float64(time.Millisecond)
		coverage += st.Coverage()
		for ph, d := range st.Phases {
			j.PhaseMs[ph] += float64(d) / float64(time.Millisecond)
		}
	}
	j.Missing = len(want)
	if j.Matched > 0 {
		j.CoverageMean = coverage / float64(j.Matched)
	}
	return j
}

// writeHuman appends the join to a human report, phases sorted by cost.
func (j *TraceJoin) writeHuman(w io.Writer) {
	fmt.Fprintf(w, "trace_join matched=%d missing=%d unmatched=%d wall_ms=%.0f coverage=%.2f\n",
		j.Matched, j.Missing, j.Unmatched, j.WallMs, j.CoverageMean)
	type kv struct {
		name string
		ms   float64
	}
	phases := make([]kv, 0, len(j.PhaseMs))
	for ph, ms := range j.PhaseMs {
		phases = append(phases, kv{ph, ms})
	}
	sort.Slice(phases, func(a, b int) bool {
		if phases[a].ms != phases[b].ms {
			return phases[a].ms > phases[b].ms
		}
		return phases[a].name < phases[b].name
	})
	for _, p := range phases {
		share := 0.0
		if j.WallMs > 0 {
			share = p.ms / j.WallMs
		}
		fmt.Fprintf(w, "trace_phase name=%s total_ms=%.1f share=%.3f\n", p.name, p.ms, share)
	}
}
