package loadgen

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/uei-db/uei/internal/server"
)

// sessionPlan is one session's pre-drawn workflow choices. Drawing the
// whole plan from the user's workflow rng before any request is issued
// makes runs reproducible: timing, retries, and server latency cannot
// perturb which region a user explores or when it walks away.
type sessionPlan struct {
	region       int
	maxLabels    int
	abandonAfter int // successful steps before quitting; 0 = run to done
}

// SessionRecord is one session's observed workflow — the reproducibility
// unit. Two same-seed runs must produce identical records (modulo the
// server-assigned session id, which is excluded from the digest).
type SessionRecord struct {
	User         int      `json:"user"`
	Session      int      `json:"session"`
	Region       string   `json:"region"`
	MaxLabels    int      `json:"max_labels"`
	AbandonAfter int      `json:"abandon_after,omitempty"`
	Labels       []string `json:"labels"`
	Steps        int      `json:"steps"`
	Done         bool     `json:"done"`
	Abandoned    bool     `json:"abandoned"`
	Degraded     int      `json:"degraded,omitempty"`
	Positives    int      `json:"positives,omitempty"`
	Error        string   `json:"error,omitempty"`
}

// user is one simulated explorer: a private client, private rngs, and
// private metrics, merged by the runner afterwards.
type user struct {
	idx     int
	profile Profile
	client  *Client
	picker  *regionPicker
	// workflow draws plans; think draws pauses. Separate streams keep
	// the plan sequence independent of how many steps each session took.
	workflow *rand.Rand
	think    *rand.Rand
	sleep    func(time.Duration)
	met      *metrics
	phase    func() string
	traceIDs []string
	records  []SessionRecord
}

// newUser derives the user's deterministic rng streams from the profile
// seed and user index.
func newUser(p Profile, idx int, c *Client, met *metrics, phase func() string, sleep func(time.Duration)) *user {
	base := p.Seed + int64(idx)*1000003
	workflow := rand.New(rand.NewSource(base + 1))
	u := &user{
		idx:      idx,
		profile:  p,
		client:   c,
		workflow: workflow,
		think:    rand.New(rand.NewSource(base + 2)),
		sleep:    sleep,
		met:      met,
		phase:    phase,
	}
	u.picker = newRegionPicker(len(p.Regions), p.RegionZipfS, workflow)
	c.Jitter = rand.New(rand.NewSource(base + 3))
	return u
}

// plan draws the next session's workflow choices.
func (u *user) plan() sessionPlan {
	pl := sessionPlan{region: u.picker.pick()}
	p := u.profile
	pl.maxLabels = p.MinLabels
	if p.MaxLabels > p.MinLabels {
		pl.maxLabels += u.workflow.Intn(p.MaxLabels - p.MinLabels + 1)
	}
	if p.AbandonProb > 0 && u.workflow.Float64() < p.AbandonProb {
		pl.abandonAfter = 1 + u.workflow.Intn(pl.maxLabels)
	}
	return pl
}

// sessionSeed derives the server-side sampling seed for (user, session):
// unique per pair, stable across runs.
func (u *user) sessionSeed(sess int) int64 {
	return u.profile.Seed*1000003 + int64(u.idx)*10007 + int64(sess) + 1
}

// run executes every planned session back to back. Request errors are
// recorded, never fatal: a load generator's job is to keep the load on.
func (u *user) run() {
	for sess := 0; sess < u.profile.SessionsPerUser; sess++ {
		u.records = append(u.records, u.runSession(sess, u.plan()))
	}
}

// runSession drives one session: create, step/think until done (or the
// planned abandonment), fetch the result, delete.
func (u *user) runSession(sess int, pl sessionPlan) SessionRecord {
	p := u.profile
	region := p.Regions[pl.region]
	rec := SessionRecord{
		User:         u.idx,
		Session:      sess,
		Region:       region.Name,
		MaxLabels:    pl.maxLabels,
		AbandonAfter: pl.abandonAfter,
	}
	osp := region.Oracle
	spec := server.SessionSpec{
		Name:       fmt.Sprintf("loadgen-u%d-s%d", u.idx, sess),
		MaxLabels:  pl.maxLabels,
		Seed:       u.sessionSeed(sess),
		SampleSize: p.SampleSize,
		BatchSize:  p.BatchSize,
		Oracle:     &osp,
	}

	info, lat, err := u.client.CreateSession(spec)
	if err != nil {
		rec.Error = err.Error()
		u.met.create.fail()
		return rec
	}
	u.met.create.observe(lat, u.met.slo)

	for {
		resp, lat, err := u.client.Step(info.ID)
		if err != nil {
			rec.Error = err.Error()
			u.met.stepFail(u.phase())
			break
		}
		rec.Steps++
		u.met.step(u.phase(), lat)
		if resp.TraceID != "" {
			u.traceIDs = append(u.traceIDs, resp.TraceID)
		}
		if resp.Iteration != nil {
			rec.Labels = append(rec.Labels, resp.Iteration.Label)
			if resp.Iteration.Degraded {
				rec.Degraded++
			}
		}
		if resp.Done {
			rec.Done = true
			rec.Positives = resp.Positives
			break
		}
		if pl.abandonAfter > 0 && rec.Steps >= pl.abandonAfter {
			rec.Abandoned = true
			break
		}
		if d := p.Think.Sample(u.think); d > 0 {
			u.sleep(d)
		}
	}

	if rec.Done {
		if res, lat, err := u.client.Result(info.ID); err == nil {
			u.met.result.observe(lat, u.met.slo)
			rec.Positives = len(res.Positive)
		} else {
			rec.Error = err.Error()
			u.met.result.fail()
		}
	}
	if err := u.client.Delete(info.ID); err != nil && rec.Error == "" {
		rec.Error = err.Error()
	}
	return rec
}
