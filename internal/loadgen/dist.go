package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// ThinkSpec describes a user's think-time distribution — the pause
// between receiving a step's outcome and issuing the next request, the
// "closed loop" in closed-loop load generation.
type ThinkSpec struct {
	// Dist is "none", "constant", "exponential", or "lognormal".
	// Empty means "none" (stepping as fast as the server answers).
	Dist string `json:"dist,omitempty"`
	// MeanMs is the distribution mean in milliseconds.
	MeanMs float64 `json:"mean_ms,omitempty"`
	// SigmaMs shapes the lognormal: the standard deviation of the
	// underlying normal is ln(1 + SigmaMs/MeanMs), so larger values give
	// heavier tails. Ignored by the other distributions.
	SigmaMs float64 `json:"sigma_ms,omitempty"`
}

// validate rejects malformed think specs.
func (s ThinkSpec) validate() error {
	switch s.Dist {
	case "", "none":
		return nil
	case "constant", "exponential", "lognormal":
		if s.MeanMs <= 0 {
			return fmt.Errorf("loadgen: think dist %q needs mean_ms > 0", s.Dist)
		}
		if s.SigmaMs < 0 {
			return fmt.Errorf("loadgen: negative think sigma_ms %g", s.SigmaMs)
		}
		return nil
	default:
		return fmt.Errorf("loadgen: unknown think dist %q (want none, constant, exponential, or lognormal)", s.Dist)
	}
}

// Sample draws one think time. The draw consumes the rng
// deterministically, so seeded workflows replay identically.
func (s ThinkSpec) Sample(rng *rand.Rand) time.Duration {
	mean := s.MeanMs * float64(time.Millisecond)
	switch s.Dist {
	case "", "none":
		return 0
	case "constant":
		return time.Duration(mean)
	case "exponential":
		return time.Duration(rng.ExpFloat64() * mean)
	case "lognormal":
		// Parameterized so the distribution mean equals MeanMs: with
		// sigma = ln(1 + SigmaMs/MeanMs), mu = ln(mean) - sigma^2/2.
		sigma := math.Log(1 + s.SigmaMs/s.MeanMs)
		mu := math.Log(mean) - sigma*sigma/2
		return time.Duration(math.Exp(mu + sigma*rng.NormFloat64()))
	default:
		return 0
	}
}

// regionPicker draws region indices with zipfian popularity (exponent
// s > 1) or uniformly (s <= 1). rand.Zipf's rank 0 is the most popular,
// so region order in the profile is popularity order.
type regionPicker struct {
	n    int
	rng  *rand.Rand
	zipf *rand.Zipf
}

func newRegionPicker(n int, s float64, rng *rand.Rand) *regionPicker {
	p := &regionPicker{n: n, rng: rng}
	if s > 1 && n > 1 {
		p.zipf = rand.NewZipf(rng, s, 1, uint64(n-1))
	}
	return p
}

// pick returns the next region index, consuming the rng exactly once.
func (p *regionPicker) pick() int {
	if p.n <= 1 {
		return 0
	}
	if p.zipf != nil {
		return int(p.zipf.Uint64())
	}
	return p.rng.Intn(p.n)
}
