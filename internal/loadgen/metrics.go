package loadgen

import "time"

// Phase names for per-phase attribution. A step belongs to the phase the
// fleet was in when it completed: ramp_up while users are still being
// staggered in, steady once the whole fleet is active, ramp_down once
// more than 5% of the users have finished for good (a tolerance that
// keeps one early abandoner from ending the steady window).
const (
	PhaseRampUp   = "ramp_up"
	PhaseSteady   = "steady"
	PhaseRampDown = "ramp_down"
)

// phaseOrder fixes report ordering.
var phaseOrder = []string{PhaseRampUp, PhaseSteady, PhaseRampDown}

// opStats accumulates one operation type's latency histogram, SLO
// compliance, and error count. Not goroutine-safe: each user owns one
// set, merged by the runner.
type opStats struct {
	hist   Hist
	sloOK  int64
	errors int64
}

// observe records a successful call's latency against the SLO budget.
func (o *opStats) observe(lat time.Duration, slo time.Duration) {
	o.hist.Observe(lat)
	if lat <= slo {
		o.sloOK++
	}
}

// fail records a request that errored out (after backoff exhaustion or a
// hard failure). Failed requests have no latency sample and are never
// SLO-compliant — they are errors, tracked on their own axis.
func (o *opStats) fail() { o.errors++ }

// merge folds another opStats in.
func (o *opStats) merge(x *opStats) {
	o.hist.Merge(&x.hist)
	o.sloOK += x.sloOK
	o.errors += x.errors
}

// metrics is one user's (or the merged fleet's) measurement state.
type metrics struct {
	slo    time.Duration
	create opStats
	result opStats
	steps  map[string]*opStats
}

func newMetrics(slo time.Duration) *metrics {
	m := &metrics{slo: slo, steps: map[string]*opStats{}}
	for _, ph := range phaseOrder {
		m.steps[ph] = &opStats{}
	}
	return m
}

// step records a successful step's latency in its phase bucket.
func (m *metrics) step(phase string, lat time.Duration) {
	m.steps[phase].observe(lat, m.slo)
}

// stepFail records a failed step in its phase bucket.
func (m *metrics) stepFail(phase string) { m.steps[phase].fail() }

// merge folds another user's metrics in.
func (m *metrics) merge(x *metrics) {
	m.create.merge(&x.create)
	m.result.merge(&x.result)
	for ph, s := range x.steps {
		m.steps[ph].merge(s)
	}
}

// allSteps returns the phase-merged step stats.
func (m *metrics) allSteps() *opStats {
	var all opStats
	for _, ph := range phaseOrder {
		all.merge(m.steps[ph])
	}
	return &all
}
