package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/uei-db/uei/internal/server"
)

// BackoffStats counts the backpressure a client absorbed. Rejected
// requests are never latency samples or SLO violations — they are the
// server saying "not now", and a well-behaved client's only job is to
// wait as told. The counters are atomics so user goroutines share one
// struct.
type BackoffStats struct {
	// Rejects429 counts 429 Too Many Requests answers (per-session step
	// queue full).
	Rejects429 atomic.Int64
	// Rejects503 counts 503 Service Unavailable answers (admission
	// saturated, draining, or budget pressure).
	Rejects503 atomic.Int64
	// WaitNanos sums the time spent sleeping on Retry-After hints.
	WaitNanos atomic.Int64
	// Exhausted counts requests that ran out of retries and surfaced an
	// error to the workflow.
	Exhausted atomic.Int64
}

// Client is a loadgen-side handle on one uei-serve instance. It retries
// backpressure answers (429/503) honoring the server's Retry-After hint
// with multiplicative jitter, and records every successful call's
// latency — the latency of the attempt that succeeded, not of the
// backoff waits around it.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
	// MaxRetries bounds backoff retries per request (default 8).
	MaxRetries int
	// RetryScale multiplies Retry-After waits; tests compress time with
	// small values. Zero means 1.
	RetryScale float64
	// Sleep is the wait function, injectable for tests. nil: time.Sleep.
	Sleep func(time.Duration)
	// Jitter draws the backoff jitter factor in [1, 1.5); nil disables
	// jitter. It must be goroutine-private (each user owns a Client).
	Jitter *rand.Rand
	// Stats, when set, accumulates backoff counters (shared, atomic).
	Stats *BackoffStats
}

// retryAfterOf parses the Retry-After hint, defaulting to 1s.
func retryAfterOf(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 0 {
			return time.Duration(n) * time.Second
		}
	}
	return time.Second
}

// do issues one JSON request with backoff, decodes the answer into out
// (unless nil), and returns the HTTP status plus the successful
// attempt's latency.
func (c *Client) do(method, path string, in, out any) (int, time.Duration, error) {
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	sleep := c.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	scale := c.RetryScale
	if scale == 0 {
		scale = 1
	}
	retries := c.MaxRetries
	if retries == 0 {
		retries = 8
	}

	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return 0, 0, fmt.Errorf("loadgen: encode %s %s: %w", method, path, err)
		}
	}

	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(method, c.Base+path, bytes.NewReader(body))
		if err != nil {
			return 0, 0, fmt.Errorf("loadgen: %s %s: %w", method, path, err)
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		t0 := time.Now()
		resp, err := hc.Do(req)
		lat := time.Since(t0)
		if err != nil {
			return 0, 0, fmt.Errorf("loadgen: %s %s: %w", method, path, err)
		}
		respBody, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		if err != nil {
			return resp.StatusCode, 0, fmt.Errorf("loadgen: %s %s: read body: %w", method, path, err)
		}

		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			if c.Stats != nil {
				if resp.StatusCode == http.StatusTooManyRequests {
					c.Stats.Rejects429.Add(1)
				} else {
					c.Stats.Rejects503.Add(1)
				}
			}
			if attempt >= retries {
				if c.Stats != nil {
					c.Stats.Exhausted.Add(1)
				}
				return resp.StatusCode, 0, fmt.Errorf("loadgen: %s %s: %d after %d backoffs: %s",
					method, path, resp.StatusCode, attempt, errorText(respBody))
			}
			wait := time.Duration(float64(retryAfterOf(resp)) * scale)
			if c.Jitter != nil {
				wait = time.Duration(float64(wait) * (1 + 0.5*c.Jitter.Float64()))
			}
			if c.Stats != nil {
				c.Stats.WaitNanos.Add(int64(wait))
			}
			sleep(wait)
			continue
		}
		if resp.StatusCode >= 400 {
			return resp.StatusCode, lat, fmt.Errorf("loadgen: %s %s: %d: %s", method, path, resp.StatusCode, errorText(respBody))
		}
		if out != nil && len(respBody) > 0 {
			if err := json.Unmarshal(respBody, out); err != nil {
				return resp.StatusCode, lat, fmt.Errorf("loadgen: %s %s: decode: %w", method, path, err)
			}
		}
		return resp.StatusCode, lat, nil
	}
}

// errorText extracts the server's {"error": ...} message, falling back
// to the raw body.
func errorText(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	if len(body) > 200 {
		body = body[:200]
	}
	return string(bytes.TrimSpace(body))
}

// CreateSession creates an exploration session.
func (c *Client) CreateSession(spec server.SessionSpec) (server.SessionInfo, time.Duration, error) {
	var info server.SessionInfo
	_, lat, err := c.do(http.MethodPost, "/v1/sessions", spec, &info)
	return info, lat, err
}

// Step advances a session one interaction.
func (c *Client) Step(id string) (server.StepResponse, time.Duration, error) {
	var resp server.StepResponse
	_, lat, err := c.do(http.MethodPost, "/v1/sessions/"+id+"/step", server.StepRequest{}, &resp)
	return resp, lat, err
}

// Result fetches the session's retrieved result set.
func (c *Client) Result(id string) (server.ResultInfo, time.Duration, error) {
	var res server.ResultInfo
	_, lat, err := c.do(http.MethodGet, "/v1/sessions/"+id+"/result", nil, &res)
	return res, lat, err
}

// Delete removes a session.
func (c *Client) Delete(id string) error {
	_, _, err := c.do(http.MethodDelete, "/v1/sessions/"+id, nil, nil)
	return err
}

// Append ingests rows into a live store.
func (c *Client) Append(rows [][]float64) (server.AppendResponse, error) {
	var resp server.AppendResponse
	_, _, err := c.do(http.MethodPost, "/v1/append", server.AppendRequest{Rows: rows}, &resp)
	return resp, err
}

// Health fetches the liveness snapshot without retrying.
func (c *Client) Health() (server.HealthInfo, error) {
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Get(c.Base + "/healthz")
	if err != nil {
		return server.HealthInfo{}, err
	}
	defer resp.Body.Close()
	var info server.HealthInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return server.HealthInfo{}, fmt.Errorf("loadgen: decode healthz: %w", err)
	}
	return info, nil
}

// WaitReady polls GET /readyz until the server reports ready or the
// deadline passes — the supported alternative to sleeping after boot.
func (c *Client) WaitReady(timeout time.Duration) (server.HealthInfo, error) {
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	sleep := c.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	deadline := time.Now().Add(timeout)
	var lastErr error
	for {
		resp, err := hc.Get(c.Base + "/readyz")
		if err == nil {
			var info server.HealthInfo
			decErr := json.NewDecoder(resp.Body).Decode(&info)
			resp.Body.Close()
			if decErr == nil && resp.StatusCode == http.StatusOK {
				return info, nil
			}
			if decErr != nil {
				lastErr = decErr
			} else {
				lastErr = fmt.Errorf("readyz: %d (%s)", resp.StatusCode, info.Status)
			}
		} else {
			lastErr = err
		}
		if time.Now().After(deadline) {
			return server.HealthInfo{}, fmt.Errorf("loadgen: server not ready after %v: %v", timeout, lastErr)
		}
		sleep(50 * time.Millisecond)
	}
}
