package loadgen

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/uei-db/uei/internal/dataset"
)

// Options tunes a run without changing its workload semantics. Tests use
// the injection points to compress time.
type Options struct {
	// HTTP is the client used for every request (nil: a dedicated
	// client with a generous connection pool).
	HTTP *http.Client
	// Sleep replaces time.Sleep for think times, stagger delays, and
	// backoff waits. nil: time.Sleep.
	Sleep func(time.Duration)
	// RetryScale multiplies Retry-After waits (tests compress time).
	RetryScale float64
	// MaxRetries bounds backoff retries per request (0: client default).
	MaxRetries int
	// ReadyTimeout bounds the /readyz wait before the run (0: 60s).
	ReadyTimeout time.Duration
	// SkipReadyWait starts the fleet without polling /readyz.
	SkipReadyWait bool
}

// Result is everything a run produced: the aggregate summary plus the
// raw workflow records and trace ids for joining and debugging.
type Result struct {
	Summary  Summary
	Records  []SessionRecord
	TraceIDs []string
}

// Run executes the profile's fleet against the server at base and
// reports. It returns an error only for setup failures (unreachable or
// never-ready server, invalid profile); request errors during the run
// are counted in the summary instead — a load generator keeps the load
// on through failures.
func Run(base string, p Profile, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	sleep := opts.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	hc := opts.HTTP
	if hc == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = p.Users + p.Writers
		hc = &http.Client{Transport: tr, Timeout: 60 * time.Second}
	}

	probe := &Client{Base: base, HTTP: hc, Sleep: sleep}
	if !opts.SkipReadyWait {
		timeout := opts.ReadyTimeout
		if timeout == 0 {
			timeout = 60 * time.Second
		}
		if _, err := probe.WaitReady(timeout); err != nil {
			return nil, err
		}
	}
	health, err := probe.Health()
	if err != nil {
		return nil, fmt.Errorf("loadgen: server unreachable: %w", err)
	}

	slo := time.Duration(p.SLOMillis * float64(time.Millisecond))
	backoff := &BackoffStats{}
	var started, finished atomic.Int64
	drainAfter := int64(p.Users) / 20 // >5% finished ends the steady window
	phase := func() string {
		if started.Load() < int64(p.Users) {
			return PhaseRampUp
		}
		if finished.Load() > drainAfter {
			return PhaseRampDown
		}
		return PhaseSteady
	}

	users := make([]*user, p.Users)
	for i := range users {
		c := &Client{
			Base:       base,
			HTTP:       hc,
			Sleep:      sleep,
			RetryScale: opts.RetryScale,
			MaxRetries: opts.MaxRetries,
			Stats:      backoff,
		}
		users[i] = newUser(p, i, c, newMetrics(slo), phase, sleep)
	}

	t0 := time.Now()
	var wg sync.WaitGroup
	for i, u := range users {
		wg.Add(1)
		go func(i int, u *user) {
			defer wg.Done()
			if p.RampUp > 0 && p.Users > 1 {
				sleep(time.Duration(int64(p.RampUp) * int64(i) / int64(p.Users)))
			}
			started.Add(1)
			u.run()
			finished.Add(1)
		}(i, u)
	}

	// Writers append rows alongside the fleet until every user is done.
	// Rows are drawn from the interior of the server's reported domain
	// bounds (a 1% margin keeps them inside the live store's append
	// validation even at the edges), falling back to the sky domain when
	// the server predates the bounds report.
	lo, hi := health.BoundsMin, health.BoundsMax
	if len(lo) == 0 || len(hi) == 0 || len(lo) != len(hi) {
		box := dataset.SkyBounds()
		lo, hi = box.Min, box.Max
	}
	usersDone := make(chan struct{})
	var writerAppends, writerRows, writerErrors atomic.Int64
	var writerErrMu sync.Mutex
	var writerLastErr string
	var wwg sync.WaitGroup
	for w := 0; w < p.Writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			c := &Client{Base: base, HTTP: hc, Sleep: sleep, RetryScale: opts.RetryScale, MaxRetries: opts.MaxRetries, Stats: backoff}
			c.Jitter = rand.New(rand.NewSource(p.Seed + 900001 + int64(w)))
			rng := rand.New(rand.NewSource(p.Seed + 800001 + int64(w)))
			for {
				select {
				case <-usersDone:
					return
				default:
				}
				rows := make([][]float64, p.WriteBatch)
				for r := range rows {
					row := make([]float64, len(lo))
					for j := range row {
						span := hi[j] - lo[j]
						row[j] = lo[j] + (0.01+0.98*rng.Float64())*span
					}
					rows[r] = row
				}
				if _, err := c.Append(rows); err != nil {
					writerErrors.Add(1)
					writerErrMu.Lock()
					writerLastErr = err.Error()
					writerErrMu.Unlock()
				} else {
					writerAppends.Add(1)
					writerRows.Add(int64(len(rows)))
				}
				sleep(time.Duration(p.WriteInterval))
			}
		}(w)
	}

	wg.Wait()
	close(usersDone)
	wwg.Wait()
	wall := time.Since(t0)

	// Merge per-user state in user order so records and digests are
	// deterministic.
	met := newMetrics(slo)
	res := &Result{}
	for _, u := range users {
		met.merge(u.met)
		res.Records = append(res.Records, u.records...)
		res.TraceIDs = append(res.TraceIDs, u.traceIDs...)
	}
	res.Summary = summarize(p, met, backoff, res.Records, wall)
	res.Summary.Server = ServerInfo{
		Rows:   health.Rows,
		Shards: health.Shards,
	}
	res.Summary.Writers = WriterStats{
		Appends:   writerAppends.Load(),
		Rows:      writerRows.Load(),
		Errors:    writerErrors.Load(),
		LastError: writerLastErr,
	}
	return res, nil
}
