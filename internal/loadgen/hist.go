// Package loadgen is a closed-loop load generator for uei-serve: fleets
// of simulated users drive the real HTTP/JSON session API through
// realistic exploration workflows (think time, mixed session lengths,
// early abandonment, zipfian popularity over named interest regions,
// optional live-append writers) and report per-step latency percentiles,
// SLO compliance, and backpressure behavior. Profiles are named, seeded,
// and reproducible: two runs with the same profile and seed produce
// identical session workflows and label sequences.
package loadgen

import (
	"fmt"
	"math"
	"time"
)

// histMin and histGrowth define the HDR-style log-bucketed latency
// histogram: bucket i covers [histMin*growth^(i-1), histMin*growth^i),
// giving ~5% relative error per bucket from 10µs up. 600 buckets reach
// past five hours, far beyond any step latency worth distinguishing.
const (
	histMin     = 10 * time.Microsecond
	histGrowth  = 1.05
	histBuckets = 600
)

// invLogGrowth caches 1/ln(growth) for the bucket index computation.
var invLogGrowth = 1 / math.Log(histGrowth)

// Hist is a fixed-size log-bucketed latency histogram. It is not
// goroutine-safe; each user records into its own and the runner merges.
type Hist struct {
	counts [histBuckets + 2]int64 // [0]: <= histMin; [last]: overflow
	n      int64
	sum    time.Duration
	max    time.Duration
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	if d <= histMin {
		return 0
	}
	i := int(math.Log(float64(d)/float64(histMin))*invLogGrowth) + 1
	if i > histBuckets+1 {
		return histBuckets + 1
	}
	return i
}

// bucketValue returns the representative duration of a bucket (its
// geometric midpoint).
func bucketValue(i int) time.Duration {
	if i <= 0 {
		return histMin
	}
	return time.Duration(float64(histMin) * math.Pow(histGrowth, float64(i)-0.5))
}

// Observe records one latency sample.
func (h *Hist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)]++
	h.n++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Merge folds another histogram into this one.
func (h *Hist) Merge(o *Hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 { return h.n }

// Max returns the largest recorded sample exactly (not bucketed).
func (h *Hist) Max() time.Duration { return h.max }

// Mean returns the exact arithmetic mean of the recorded samples.
func (h *Hist) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Quantile returns the q-quantile (0 < q <= 1) by nearest rank over the
// buckets; the answer carries the bucket's ~5% relative error. The exact
// maximum is returned for the top rank so p100 is never an artifact of
// bucketing.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank >= h.n {
		return h.max
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketValue(i)
			if v > h.max {
				return h.max
			}
			return v
		}
	}
	return h.max
}

// AtOrBelow returns how many samples were <= d (bucket-granular: the
// boundary bucket counts fully when its representative value fits).
func (h *Hist) AtOrBelow(d time.Duration) int64 {
	var n int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if bucketValue(i) <= d {
			n += c
		}
	}
	return n
}

// Millis formats a duration as fractional milliseconds for reports.
func Millis(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// fmtMillis renders a duration as "12.34ms" with stable precision for
// awk-friendly report lines.
func fmtMillis(d time.Duration) string {
	return fmt.Sprintf("%.2f", Millis(d))
}
