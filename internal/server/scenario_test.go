package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/uei-db/uei/internal/ide"
)

// runScenario creates a session with the spec and steps it to completion,
// returning the result. Fails the test on any error.
func runScenario(t *testing.T, m *Manager, spec SessionSpec) ResultInfo {
	t.Helper()
	ctx := context.Background()
	info, err := m.Create(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 300; n++ {
		resp, err := m.Step(ctx, info.ID, StepRequest{})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Done {
			break
		}
	}
	res, err := m.Result(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(info.ID); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestOracleSpecScenarios exercises the scenario-building OracleSpec
// extensions end to end: multi-region, ring, and drifting targets each
// bootstrap, explore, and retrieve through the real session machinery.
func TestOracleSpecScenarios(t *testing.T) {
	dir, _ := buildStore(t, 1500)
	m := newTestManager(t, dir, nil)
	base := SessionSpec{MaxLabels: 12, SampleSize: 200, Seed: 7}

	cases := []struct {
		name string
		osp  OracleSpec
	}{
		{"multi_region", OracleSpec{Selectivity: 0.05, Regions: 2}},
		{"ring", OracleSpec{Selectivity: 0.08, Ring: &RingSpec{InnerFrac: 0.4}}},
		{"drift_offset", OracleSpec{Selectivity: 0.05, Drift: &DriftSpec{OffsetFrac: 0.05}}},
		{"drift_explicit", OracleSpec{Selectivity: 0.05, Drift: &DriftSpec{ToCenter: []float64{1024, 1024, 180, 0, 500}, OverLabels: 8}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec := base
			osp := c.osp
			spec.Oracle = &osp
			res := runScenario(t, m, spec)
			if res.LabelsUsed == 0 {
				t.Fatal("scenario session solicited no labels")
			}
		})
	}
}

// TestOracleSpecSharedSeed pins the named-region contract load profiles
// rely on: sessions with different session seeds but the same oracle seed
// share one synthesized region, while different oracle seeds synthesize
// different ones.
func TestOracleSpecSharedSeed(t *testing.T) {
	dir, _ := buildStore(t, 1500)
	m := newTestManager(t, dir, nil)
	ctx := context.Background()
	region := func(sessionSeed, oracleSeed int64) string {
		t.Helper()
		lab, _, err := m.oracleFor(ctx, SessionSpec{
			Seed:   sessionSeed,
			Oracle: &OracleSpec{Selectivity: 0.05, Seed: oracleSeed},
		})
		if err != nil {
			t.Fatal(err)
		}
		o := lab.(ide.OracleLabeler).O
		if o.RelevantCount() == 0 {
			t.Fatal("seeded region has no ground truth")
		}
		return fmt.Sprint(o.Region())
	}
	a := region(1, 42)
	b := region(2, 42)
	c := region(1, 43)
	if a != b {
		t.Fatalf("same oracle seed, different regions:\n%s\n%s", a, b)
	}
	if a == c {
		t.Fatalf("different oracle seeds synthesized identical region %s", a)
	}
}

// TestOracleSpecDeterministic: identical specs (session seed, sample size,
// oracle scenario) must reproduce identical explorations — the loadgen
// reproducibility contract, checked at the session layer.
func TestOracleSpecDeterministic(t *testing.T) {
	dir, _ := buildStore(t, 1500)
	m := newTestManager(t, dir, nil)
	spec := SessionSpec{
		MaxLabels:  10,
		SampleSize: 200,
		Seed:       11,
		Oracle:     &OracleSpec{Selectivity: 0.05, Drift: &DriftSpec{OffsetFrac: 0.05, OverLabels: 6}},
	}
	a := runScenario(t, m, spec)
	b := runScenario(t, m, spec)
	if fmt.Sprint(a.Positive) != fmt.Sprint(b.Positive) {
		t.Fatalf("same spec, different retrievals: %d rows vs %d", len(a.Positive), len(b.Positive))
	}
}

// TestOracleSpecValidation pins the 400-family rejections for malformed
// scenario specs.
func TestOracleSpecValidation(t *testing.T) {
	dir, _ := buildStore(t, 800)
	m := newTestManager(t, dir, nil)
	cases := []struct {
		name string
		osp  OracleSpec
	}{
		{"regions_without_selectivity", OracleSpec{Regions: 2}},
		{"regions_with_ring", OracleSpec{Selectivity: 0.05, Regions: 2, Ring: &RingSpec{}}},
		{"regions_with_drift", OracleSpec{Selectivity: 0.05, Regions: 2, Drift: &DriftSpec{OffsetFrac: 0.1}}},
		{"ring_and_drift", OracleSpec{Selectivity: 0.05, Ring: &RingSpec{}, Drift: &DriftSpec{OffsetFrac: 0.1}}},
		{"drift_without_destination", OracleSpec{Selectivity: 0.05, Drift: &DriftSpec{}}},
		{"ring_bad_fraction", OracleSpec{Selectivity: 0.05, Ring: &RingSpec{InnerFrac: 1.5}}},
		{"empty", OracleSpec{}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			osp := c.osp
			_, err := m.Create(context.Background(), SessionSpec{MaxLabels: 5, Oracle: &osp})
			if !errors.Is(err, errBadRequest) {
				t.Fatalf("want errBadRequest, got %v", err)
			}
		})
	}
}

// TestHealthEndpoints pins the liveness/readiness split: /healthz answers
// 200 with a HealthInfo body even while draining, /readyz flips to 503,
// and the body reports live-session count and snapshot state.
func TestHealthEndpoints(t *testing.T) {
	dir, _ := buildStore(t, 800)
	m := newTestManager(t, dir, nil)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	get := func(path string) (int, HealthInfo) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var info HealthInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatalf("%s: decode body: %v", path, err)
		}
		return resp.StatusCode, info
	}

	code, info := get("/healthz")
	if code != http.StatusOK || info.Status != "ok" || info.Draining {
		t.Fatalf("healthz = %d %+v, want 200 ok", code, info)
	}
	if info.Rows == 0 || info.MaxSessions == 0 {
		t.Fatalf("healthz body missing store state: %+v", info)
	}
	if code, info = get("/readyz"); code != http.StatusOK || info.Draining {
		t.Fatalf("readyz = %d %+v, want 200", code, info)
	}

	// A live session must show up in the admission counter.
	created, err := m.Create(context.Background(), SessionSpec{MaxLabels: 5, Oracle: &OracleSpec{Selectivity: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	if _, info = get("/healthz"); info.LiveSessions != 1 || info.Sessions != 1 {
		t.Fatalf("after create: live=%d sessions=%d, want 1/1", info.LiveSessions, info.Sessions)
	}
	if err := m.Delete(created.ID); err != nil {
		t.Fatal(err)
	}

	// Draining: liveness stays 200, readiness flips to 503.
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code, info = get("/healthz"); code != http.StatusOK || info.Status != "draining" || !info.Draining {
		t.Fatalf("healthz while draining = %d %+v, want 200 draining", code, info)
	}
	if code, _ = get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", code)
	}
}
