package server

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// BenchmarkConcurrentSessions measures step throughput while 1, 4, and 16
// sessions share the index, the memory budget, and the step semaphore. Each
// goroutine drives its own oracle-mode session; b.N steps are split across
// the fleet, so per-op time directly exposes arbitration and contention
// overhead as the session count grows. The "-cached" variants add the
// shared decoded-chunk block cache, so sessions=16 vs sessions=16-cached
// is the serving-layer measure of the cache's win; CI's benchmark smoke
// job compares exactly that pair.
func BenchmarkConcurrentSessions(b *testing.B) {
	dir, _ := buildStore(b, 4000)
	for _, sessions := range []int{1, 4, 16} {
		for _, cached := range []bool{false, true} {
			name := fmt.Sprintf("sessions=%d", sessions)
			if cached {
				name += "-cached"
			}
			cached := cached
			b.Run(name, func(b *testing.B) {
				m := newTestManager(b, dir, func(c *Config) {
					c.MaxSessions = sessions
					c.TotalBudgetBytes = int64(sessions) * (4 << 20)
					c.StepConcurrency = runtime.GOMAXPROCS(0)
					c.IdleTimeout = 0
					if cached {
						// Grow the pool by the cache share instead of carving
						// it out, so per-session budgets (and therefore
						// sample sizes and step work) match the uncached run.
						c.BlockCacheBytes = 8 << 20
						c.TotalBudgetBytes += c.BlockCacheBytes
					}
				})
				ctx := context.Background()
				ids := make([]string, sessions)
				for i := range ids {
					info, err := m.Create(ctx, SessionSpec{
						// Effectively unbounded for benchmark purposes: the
						// harness stops stepping at b.N, not at the budget.
						MaxLabels:  1 << 20,
						SampleSize: 300,
						Seed:       int64(100 + i),
						Oracle:     &OracleSpec{Selectivity: 0.05},
					})
					if err != nil {
						b.Fatal(err)
					}
					ids[i] = info.ID
				}

				b.ResetTimer()
				var wg sync.WaitGroup
				var mu sync.Mutex
				var firstErr error
				for i := 0; i < sessions; i++ {
					steps := b.N / sessions
					if i < b.N%sessions {
						steps++
					}
					wg.Add(1)
					go func(id string, steps int) {
						defer wg.Done()
						for s := 0; s < steps; s++ {
							// Retry queue-full: the benchmark goroutine is the
							// only client of its session, but the shared step
							// semaphore can still delay ticket release.
							for {
								_, err := m.Step(ctx, id, StepRequest{})
								if err == nil {
									break
								}
								if err == ErrQueueFull {
									time.Sleep(time.Millisecond)
									continue
								}
								mu.Lock()
								if firstErr == nil {
									firstErr = err
								}
								mu.Unlock()
								return
							}
						}
					}(ids[i], steps)
				}
				wg.Wait()
				b.StopTimer()
				if firstErr != nil {
					b.Fatal(firstErr)
				}
				if cached {
					s := m.Index().BlockCache().Stats()
					b.ReportMetric(s.HitRate()*100, "hit%")
				}
			})
		}
	}
}
