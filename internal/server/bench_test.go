package server

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// BenchmarkConcurrentSessions measures step throughput while 1, 4, and 16
// sessions share the index, the memory budget, and the step semaphore. Each
// goroutine drives its own oracle-mode session; b.N steps are split across
// the fleet, so per-op time directly exposes arbitration and contention
// overhead as the session count grows.
func BenchmarkConcurrentSessions(b *testing.B) {
	dir, _ := buildStore(b, 4000)
	for _, sessions := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			m := newTestManager(b, dir, func(c *Config) {
				c.MaxSessions = sessions
				c.TotalBudgetBytes = int64(sessions) * (4 << 20)
				c.StepConcurrency = runtime.GOMAXPROCS(0)
				c.IdleTimeout = 0
			})
			ctx := context.Background()
			ids := make([]string, sessions)
			for i := range ids {
				info, err := m.Create(ctx, SessionSpec{
					// Effectively unbounded for benchmark purposes: the
					// harness stops stepping at b.N, not at the budget.
					MaxLabels:  1 << 20,
					SampleSize: 300,
					Seed:       int64(100 + i),
					Oracle:     &OracleSpec{Selectivity: 0.05},
				})
				if err != nil {
					b.Fatal(err)
				}
				ids[i] = info.ID
			}

			b.ResetTimer()
			var wg sync.WaitGroup
			var mu sync.Mutex
			var firstErr error
			for i := 0; i < sessions; i++ {
				steps := b.N / sessions
				if i < b.N%sessions {
					steps++
				}
				wg.Add(1)
				go func(id string, steps int) {
					defer wg.Done()
					for s := 0; s < steps; s++ {
						// Retry queue-full: the benchmark goroutine is the
						// only client of its session, but the shared step
						// semaphore can still delay ticket release.
						for {
							_, err := m.Step(ctx, id, StepRequest{})
							if err == nil {
								break
							}
							if err == ErrQueueFull {
								time.Sleep(time.Millisecond)
								continue
							}
							mu.Lock()
							if firstErr == nil {
								firstErr = err
							}
							mu.Unlock()
							return
						}
					}
				}(ids[i], steps)
			}
			wg.Wait()
			b.StopTimer()
			if firstErr != nil {
				b.Fatal(firstErr)
			}
		})
	}
}
