// Package server is the multi-session exploration service: it hosts many
// concurrent active-learning sessions (the Algorithm 1 loop of internal/ide)
// over one shared Index, multiplexing the paper's single-user workload into
// the IDEBench-style many-users-one-dataset serving shape.
//
// The package owns four serving concerns the core engine deliberately does
// not have:
//
//   - Session lifecycle — create / step / result / delete, with per-session
//     state machines. Idle sessions are evicted to an ide.Snapshot on disk
//     and transparently resumed on their next request, so a session's
//     memory cost is only paid while it is actually exploring.
//   - Budget arbitration — one global memory budget (the paper's 400 MB
//     class constraint) is partitioned into equal shares across live
//     sessions by the Arbiter; shares are resized as sessions come and go,
//     and memcache.ErrBudgetExceeded becomes backpressure (503 +
//     Retry-After), never data loss.
//   - Admission control — a hard cap on live sessions, a bounded work queue
//     per session (429 when a client races itself), and a server-wide step
//     concurrency limit sized to the shared worker pool.
//   - Observability — step latency, queue depth, admission rejects, and
//     evictions on the same registry (and /metrics endpoint) the index and
//     engine already export to.
package server

import (
	"errors"
	"time"

	"github.com/uei-db/uei/internal/obs"
)

// Serving sentinels; the HTTP layer maps each to a distinct status code
// (see statusFor) and every error that crosses the package boundary wraps
// them, so errors.Is works for programmatic callers too.
var (
	// ErrSaturated is returned when the server cannot admit another live
	// session (session cap reached, or the budget arbiter cannot carve out
	// a viable share). Clients should back off and retry.
	ErrSaturated = errors.New("server: saturated; retry later")
	// ErrQueueFull is returned when a session's bounded work queue is full
	// — the client has more requests in flight than the queue admits.
	ErrQueueFull = errors.New("server: session queue full; retry later")
	// ErrUnknownSession is returned for operations on session ids that do
	// not exist (never created, or deleted).
	ErrUnknownSession = errors.New("server: unknown session")
	// ErrDraining is returned for new work arriving during graceful
	// shutdown.
	ErrDraining = errors.New("server: draining; not accepting new work")
)

// Config parameterizes a Manager.
type Config struct {
	// StoreDir is the chunk-store directory (from Build / uei-ingest).
	// Required unless the Manager is constructed over an existing Index.
	StoreDir string
	// TotalBudgetBytes is the global memory budget partitioned across live
	// sessions — the serving analogue of the paper's 400 MB constraint.
	// Required.
	TotalBudgetBytes int64
	// MinSessionBudgetBytes is the smallest share the arbiter will hand a
	// session; admission fails once equal shares would drop below it.
	// Zero selects 256 KiB.
	MinSessionBudgetBytes int64
	// BlockCacheBytes, when positive, installs a shared decoded-chunk
	// block cache on the index and registers it with the arbiter: the
	// cache's share is carved from TotalBudgetBytes ahead of the session
	// split, but shrinks (down to zero) whenever equal session shares
	// would otherwise fall below MinSessionBudgetBytes, so admission
	// capacity is unchanged. Zero disables the cache. Must leave room for
	// at least one minimum session share.
	BlockCacheBytes int64
	// MaxSessions caps live (non-evicted) sessions. Zero selects 16.
	MaxSessions int
	// MaxQueuedSteps bounds each session's work queue (queued + running).
	// Zero selects 2.
	MaxQueuedSteps int
	// StepConcurrency bounds steps executing at once across all sessions,
	// so a burst cannot oversubscribe the shared worker pool. Zero selects
	// the index's worker count.
	StepConcurrency int
	// IdleTimeout evicts sessions idle this long to a snapshot on disk.
	// Zero disables the janitor (sessions are still evicted on drain).
	IdleTimeout time.Duration
	// SnapshotDir holds evicted sessions' labeled sets. Zero value selects
	// a directory inside StoreDir.
	SnapshotDir string
	// EnablePrefetch turns on background region loading per session view.
	// Off by default: prefetch trades determinism for latency, and resumed
	// sessions replay identically only without it.
	EnablePrefetch bool
	// DefaultMaxLabels is the label budget for sessions that do not ask
	// for one. Zero selects 100.
	DefaultMaxLabels int
	// Workers sizes the shared index worker pool. Zero selects GOMAXPROCS.
	Workers int
	// SegmentsPerDim configures the shared index grid. Zero selects 5.
	SegmentsPerDim int
	// Shards selects the store layout the manager requires from StoreDir:
	// 0 auto-detects, 1 requires the flat layout, > 1 requires a sharded
	// layout with exactly that many shards (see core.Options.Shards).
	Shards int
	// ShardDeadline bounds every per-shard operation of a sharded store;
	// shards that miss it are skipped and steps report degraded=true
	// instead of failing. Zero disables the deadline. Ignored for flat
	// stores.
	ShardDeadline time.Duration
	// ShardEndpoints, when non-empty, serves the index through remote
	// uei-shardd workers instead of opening StoreDir locally; StoreDir
	// becomes optional (it is only used as the default snapshot-dir
	// parent, so set SnapshotDir when omitting it).
	ShardEndpoints []string
	// Replication is the per-shard replica count across the worker fleet;
	// a shard degrades only when all of its replicas fail. Zero and 1
	// both mean unreplicated. See core.Options.Replication.
	Replication int
	// HedgeDelay fires each per-shard operation on a second replica if
	// the first has not answered within the delay (requires Replication >
	// 1). Zero disables hedging.
	HedgeDelay time.Duration
	// LiveIngest requires StoreDir to hold the live (stream) layout and
	// enables the ingest API (POST /v1/append). Live layouts are
	// auto-detected either way; the flag pins the expectation the way
	// Shards pins the shard count.
	LiveIngest bool
	// FollowLive lets hosted sessions advance their pinned snapshot to the
	// newest committed epoch at iteration boundaries. Off by default:
	// sessions then explore exactly the epoch the server opened, and
	// evicted sessions resume deterministically.
	FollowLive bool
	// FlushInterval flushes the live memtable on a timer so trickle
	// appends become visible without waiting for the size threshold.
	// Zero flushes on size/demand only. Ignored for static layouts.
	FlushInterval time.Duration
	// Seed drives store generation helpers and default session seeds.
	Seed int64
	// Registry receives the server's metrics; nil creates a private one.
	Registry *obs.Registry
	// Tracer, when set, emits one hierarchical trace per step request:
	// a "step" root span (its id returned in the response and the
	// X-Uei-Trace-Id header), iteration phases beneath it, per-shard
	// fan-out spans, and chunk/cache read spans. Nil disables tracing.
	Tracer *obs.Tracer
	// SLOBudget is the per-step interactivity budget for the SLO
	// accountant (slo_violations_total, rolling step-latency
	// percentiles). Zero selects obs.DefaultSLOBudget (500 ms).
	SLOBudget time.Duration
}

// withDefaults validates and fills zero values.
func (c Config) withDefaults() (Config, error) {
	if c.TotalBudgetBytes <= 0 {
		return c, errors.New("server: TotalBudgetBytes must be positive")
	}
	if c.MinSessionBudgetBytes == 0 {
		c.MinSessionBudgetBytes = 256 << 10
	}
	if c.MinSessionBudgetBytes < 0 || c.MinSessionBudgetBytes > c.TotalBudgetBytes {
		return c, errors.New("server: MinSessionBudgetBytes must be in (0, TotalBudgetBytes]")
	}
	if c.BlockCacheBytes < 0 {
		return c, errors.New("server: BlockCacheBytes must not be negative")
	}
	if c.BlockCacheBytes > 0 && c.BlockCacheBytes > c.TotalBudgetBytes-c.MinSessionBudgetBytes {
		return c, errors.New("server: BlockCacheBytes must leave at least one minimum session share of TotalBudgetBytes")
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 16
	}
	if c.MaxSessions < 0 {
		return c, errors.New("server: MaxSessions must be positive")
	}
	if c.MaxQueuedSteps == 0 {
		c.MaxQueuedSteps = 2
	}
	if c.MaxQueuedSteps < 0 {
		return c, errors.New("server: MaxQueuedSteps must be positive")
	}
	if c.DefaultMaxLabels == 0 {
		c.DefaultMaxLabels = 100
	}
	if c.DefaultMaxLabels < 0 {
		return c, errors.New("server: DefaultMaxLabels must be positive")
	}
	if c.Shards < 0 {
		return c, errors.New("server: Shards must not be negative")
	}
	if c.ShardDeadline < 0 {
		return c, errors.New("server: ShardDeadline must not be negative")
	}
	if c.Replication < 0 {
		return c, errors.New("server: Replication must not be negative")
	}
	if c.HedgeDelay < 0 {
		return c, errors.New("server: HedgeDelay must not be negative")
	}
	if c.SLOBudget < 0 {
		return c, errors.New("server: SLOBudget must not be negative")
	}
	if c.FlushInterval < 0 {
		return c, errors.New("server: FlushInterval must not be negative")
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c, nil
}
