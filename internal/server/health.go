package server

import "net/http"

// HealthInfo is the body of GET /healthz and /readyz: a point-in-time
// snapshot of the serving state that load generators and CI use to wait
// for readiness instead of sleeping, and operators use to watch drains.
type HealthInfo struct {
	// Status is "ok" when the server accepts new work and "draining"
	// once Close has begun evicting sessions.
	Status string `json:"status"`
	// Draining mirrors Status for programmatic checks.
	Draining bool `json:"draining"`
	// LiveSessions is the number of sessions currently holding a live
	// slot (in memory, counted against MaxSessions). Evicted sessions
	// are excluded.
	LiveSessions int `json:"live_sessions"`
	// MaxSessions is the admission cap LiveSessions is bounded by.
	MaxSessions int `json:"max_sessions"`
	// Sessions is the total session count including evicted ones.
	Sessions int `json:"sessions"`
	// Epoch is the committed live-snapshot epoch, zero when the store
	// has no live write path.
	Epoch uint64 `json:"epoch,omitempty"`
	// Rows is the number of indexed tuples in the current snapshot.
	Rows int `json:"rows"`
	// Shards is the shard fan-out, zero for unsharded stores.
	Shards int `json:"shards,omitempty"`
	// BoundsMin and BoundsMax are the store's per-dimension domain
	// bounds. Writers (live append clients) must stay inside them.
	BoundsMin []float64 `json:"bounds_min,omitempty"`
	BoundsMax []float64 `json:"bounds_max,omitempty"`
}

// Health gathers a HealthInfo snapshot. Callers treat it as advisory:
// the counters can change the moment the locks are released.
func (m *Manager) Health() HealthInfo {
	info := HealthInfo{
		Status:      "ok",
		Draining:    m.draining.Load(),
		MaxSessions: m.cfg.MaxSessions,
		Rows:        m.idx.RowCount(),
	}
	if info.Draining {
		info.Status = "draining"
	}
	bounds := m.idx.Bounds()
	info.BoundsMin = bounds.Min
	info.BoundsMax = bounds.Max
	if m.idx.Sharded() {
		info.Shards = m.idx.NumShards()
	}
	if m.idx.Live() != nil {
		info.Epoch = m.idx.LiveEpoch()
	}
	m.liveMu.Lock()
	info.LiveSessions = m.live
	m.liveMu.Unlock()
	m.mu.Lock()
	info.Sessions = len(m.sessions)
	m.mu.Unlock()
	return info
}

// handleHealth is liveness: it answers 200 with a HealthInfo body for as
// long as the process can serve HTTP at all, including while draining.
// Probes that should stop routing traffic belong on /readyz.
func (m *Manager) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, m.Health())
}

// handleReady is readiness: 200 with a HealthInfo body while the server
// admits new sessions, 503 with the same body once draining begins so
// load balancers and load generators back off before hard errors start.
func (m *Manager) handleReady(w http.ResponseWriter, _ *http.Request) {
	info := m.Health()
	code := http.StatusOK
	if info.Draining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, info)
}
