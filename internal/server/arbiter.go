package server

import (
	"fmt"
	"sync"

	"github.com/uei-db/uei/internal/memcache"
	"github.com/uei-db/uei/internal/obs"
)

// Arbiter partitions one global memory budget across live sessions. Every
// live session holds an equal share (total / live); shares are recomputed
// when a session is admitted or released, and the change is pushed into
// each session's memcache.Budget with Resize. Shrinking a share below a
// session's current usage is deliberate: the budget refuses further
// reservations until the session's next region swap drains it (region
// installs truncate to fit), so rebalancing never evicts data mid-iteration
// — it converts memory pressure into backpressure.
//
// Admission fails (ErrSaturated) once equal shares would drop below the
// configured minimum: a session that cannot hold a useful sample plus a
// region slice would thrash, so it is cheaper to make the client wait.
//
// An attached block cache (AttachCache) participates in the same ledger:
// its target share is carved off the top before sessions split the rest,
// but sessions outrank it — whenever equal session shares would fall below
// the minimum, the cache share shrinks (down to zero) to keep admission
// capacity unchanged. Admission viability is therefore still total/(n+1)
// >= min: a full house squeezes the cache out entirely rather than
// rejecting a session the budget could carry.
//
// The Arbiter owns its own leaf mutex and calls only Budget.Resize (itself
// a leaf) while holding it, so it can be invoked from any manager or
// session context without lock-ordering concerns.
type Arbiter struct {
	mu      sync.Mutex
	total   int64
	min     int64
	grants  map[string]int64
	budgets map[string]*memcache.Budget

	cache       cacheResizer
	cacheTarget int64
	cacheShare  int64

	gShare *obs.Gauge
	gLive  *obs.Gauge
	gCache *obs.Gauge
}

// cacheResizer is the slice of blockcache.Cache the arbiter drives; an
// interface keeps server from depending on the cache's value type.
type cacheResizer interface {
	Resize(capacity int64) error
}

// NewArbiter builds an arbiter over a total byte budget with a minimum
// viable per-session share.
func NewArbiter(total, min int64, reg *obs.Registry) (*Arbiter, error) {
	if total <= 0 {
		return nil, fmt.Errorf("server: arbiter total budget %d must be positive", total)
	}
	if min <= 0 || min > total {
		return nil, fmt.Errorf("server: arbiter minimum share %d must be in (0, %d]", min, total)
	}
	a := &Arbiter{
		total:   total,
		min:     min,
		grants:  make(map[string]int64),
		budgets: make(map[string]*memcache.Budget),
		gShare:  reg.Gauge("uei_server_budget_share_bytes"),
		gLive:   reg.Gauge("uei_server_budget_sessions"),
		gCache:  reg.Gauge("uei_server_block_cache_share_bytes"),
	}
	a.gShare.SetInt(total)
	return a, nil
}

// AttachCache registers the shared block cache with its target share. The
// target must leave room for at least one minimum session share; the
// effective share at any moment may be smaller (sessions outrank the
// cache) and is pushed into the cache via Resize on every rebalance.
func (a *Arbiter) AttachCache(c cacheResizer, target int64) error {
	if c == nil {
		return fmt.Errorf("server: nil cache attached to arbiter")
	}
	if target <= 0 || target > a.total-a.min {
		return fmt.Errorf("server: cache target %d must be in (0, %d] to leave one viable session share",
			target, a.total-a.min)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cache = c
	a.cacheTarget = target
	a.rebalanceLocked()
	return nil
}

// CacheShare returns the cache's current effective share (0 when no cache
// is attached or sessions have squeezed it out).
func (a *Arbiter) CacheShare() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cacheShare
}

// Admit reserves an equal share for a new session and shrinks every other
// live session's share to make room. It fails with ErrSaturated when the
// resulting share would be below the viable minimum.
func (a *Arbiter) Admit(id string) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.grants[id]; ok {
		return 0, fmt.Errorf("server: session %s is already admitted", id)
	}
	if share := a.total / int64(len(a.grants)+1); share < a.min {
		return 0, fmt.Errorf("server: admitting session %s would shrink per-session budgets to %d bytes (min %d): %w",
			id, share, a.min, ErrSaturated)
	}
	a.grants[id] = 0 // placeholder; rebalance assigns the real share
	a.rebalanceLocked()
	return a.grants[id], nil
}

// Attach registers the session's budget so later rebalances reach it, and
// snaps it to the current grant.
func (a *Arbiter) Attach(id string, b *memcache.Budget) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	grant, ok := a.grants[id]
	if !ok {
		return fmt.Errorf("server: attach before admit for session %s", id)
	}
	a.budgets[id] = b
	return b.Resize(grant)
}

// Release returns the session's share to the pool and grows the remaining
// sessions' shares.
func (a *Arbiter) Release(id string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.grants[id]; !ok {
		return
	}
	delete(a.grants, id)
	delete(a.budgets, id)
	a.rebalanceLocked()
}

// Grant returns the session's current share (0 if not admitted).
func (a *Arbiter) Grant(id string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.grants[id]
}

// Sessions returns the number of admitted sessions.
func (a *Arbiter) Sessions() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.grants)
}

// rebalanceLocked recomputes the cache share and equal session shares, and
// pushes both into their budgets. The cache gets its target share off the
// top unless equal session shares would then fall below the minimum, in
// which case it is squeezed down to whatever the sessions leave (possibly
// zero — the cache's own Resize clamps that to an effectively-disabled one
// byte). Budget.Resize only fails on non-positive capacity, which the
// admission minimum rules out for session shares.
func (a *Arbiter) rebalanceLocked() {
	n := int64(len(a.grants))
	a.gLive.SetInt(n)
	cacheShare := int64(0)
	if a.cache != nil {
		cacheShare = a.cacheTarget
		if n > 0 && (a.total-cacheShare)/n < a.min {
			cacheShare = a.total - n*a.min
			if cacheShare < 0 {
				cacheShare = 0
			}
		}
	}
	if n == 0 {
		a.gShare.SetInt(a.total - cacheShare)
	} else {
		share := (a.total - cacheShare) / n
		for id := range a.grants {
			a.grants[id] = share
			if b := a.budgets[id]; b != nil {
				_ = b.Resize(share)
			}
		}
		a.gShare.SetInt(share)
	}
	if a.cache != nil && cacheShare != a.cacheShare {
		// Growing the session shares first and shrinking the cache second
		// (or vice versa) is safe: the cache's Resize evicts down to the
		// new capacity itself, and transient over-commitment only delays
		// reservations, never loses data.
		_ = a.cache.Resize(cacheShare)
	}
	a.cacheShare = cacheShare
	a.gCache.SetInt(cacheShare)
}
