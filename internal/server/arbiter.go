package server

import (
	"fmt"
	"sync"

	"github.com/uei-db/uei/internal/memcache"
	"github.com/uei-db/uei/internal/obs"
)

// Arbiter partitions one global memory budget across live sessions. Every
// live session holds an equal share (total / live); shares are recomputed
// when a session is admitted or released, and the change is pushed into
// each session's memcache.Budget with Resize. Shrinking a share below a
// session's current usage is deliberate: the budget refuses further
// reservations until the session's next region swap drains it (region
// installs truncate to fit), so rebalancing never evicts data mid-iteration
// — it converts memory pressure into backpressure.
//
// Admission fails (ErrSaturated) once equal shares would drop below the
// configured minimum: a session that cannot hold a useful sample plus a
// region slice would thrash, so it is cheaper to make the client wait.
//
// The Arbiter owns its own leaf mutex and calls only Budget.Resize (itself
// a leaf) while holding it, so it can be invoked from any manager or
// session context without lock-ordering concerns.
type Arbiter struct {
	mu      sync.Mutex
	total   int64
	min     int64
	grants  map[string]int64
	budgets map[string]*memcache.Budget

	gShare *obs.Gauge
	gLive  *obs.Gauge
}

// NewArbiter builds an arbiter over a total byte budget with a minimum
// viable per-session share.
func NewArbiter(total, min int64, reg *obs.Registry) (*Arbiter, error) {
	if total <= 0 {
		return nil, fmt.Errorf("server: arbiter total budget %d must be positive", total)
	}
	if min <= 0 || min > total {
		return nil, fmt.Errorf("server: arbiter minimum share %d must be in (0, %d]", min, total)
	}
	a := &Arbiter{
		total:   total,
		min:     min,
		grants:  make(map[string]int64),
		budgets: make(map[string]*memcache.Budget),
		gShare:  reg.Gauge("uei_server_budget_share_bytes"),
		gLive:   reg.Gauge("uei_server_budget_sessions"),
	}
	a.gShare.SetInt(total)
	return a, nil
}

// Admit reserves an equal share for a new session and shrinks every other
// live session's share to make room. It fails with ErrSaturated when the
// resulting share would be below the viable minimum.
func (a *Arbiter) Admit(id string) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.grants[id]; ok {
		return 0, fmt.Errorf("server: session %s is already admitted", id)
	}
	share := a.total / int64(len(a.grants)+1)
	if share < a.min {
		return 0, fmt.Errorf("server: admitting session %s would shrink per-session budgets to %d bytes (min %d): %w",
			id, share, a.min, ErrSaturated)
	}
	a.grants[id] = share
	a.rebalanceLocked()
	return share, nil
}

// Attach registers the session's budget so later rebalances reach it, and
// snaps it to the current grant.
func (a *Arbiter) Attach(id string, b *memcache.Budget) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	grant, ok := a.grants[id]
	if !ok {
		return fmt.Errorf("server: attach before admit for session %s", id)
	}
	a.budgets[id] = b
	return b.Resize(grant)
}

// Release returns the session's share to the pool and grows the remaining
// sessions' shares.
func (a *Arbiter) Release(id string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.grants[id]; !ok {
		return
	}
	delete(a.grants, id)
	delete(a.budgets, id)
	a.rebalanceLocked()
}

// Grant returns the session's current share (0 if not admitted).
func (a *Arbiter) Grant(id string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.grants[id]
}

// Sessions returns the number of admitted sessions.
func (a *Arbiter) Sessions() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.grants)
}

// rebalanceLocked recomputes equal shares and pushes them into every
// attached budget. Resize only fails on non-positive capacity, which the
// admission minimum rules out.
func (a *Arbiter) rebalanceLocked() {
	n := int64(len(a.grants))
	a.gLive.SetInt(n)
	if n == 0 {
		a.gShare.SetInt(a.total)
		return
	}
	share := a.total / n
	for id := range a.grants {
		a.grants[id] = share
		if b := a.budgets[id]; b != nil {
			_ = b.Resize(share)
		}
	}
	a.gShare.SetInt(share)
}
