package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/obs"
	"github.com/uei-db/uei/internal/shard"
)

// buildShardedStore builds a small sharded synthetic store.
func buildShardedStore(t testing.TB, n, shards int) string {
	t.Helper()
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: n, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := core.Build(dir, ds, core.BuildOptions{TargetChunkBytes: 4096, Shards: shards}); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestTracedDegradedShardedStep is the end-to-end trace acceptance test:
// a sharded manager with tracing on takes steps while one shard is forced
// to miss its deadline. The degraded step's trace must reconstruct with no
// orphans, contain the failing shard's span annotated with its id and
// "timeout" outcome, return its trace id in the step response, attribute
// the step wall time to phases, and feed the SLO accountant.
func TestTracedDegradedShardedStep(t *testing.T) {
	dir := buildShardedStore(t, 2000, 2)
	var buf bytes.Buffer
	tracer := obs.NewTracer(&buf)
	const deadline = 150 * time.Millisecond
	m := newTestManager(t, dir, func(c *Config) {
		c.Shards = 2
		c.ShardDeadline = deadline
		c.Tracer = tracer
		c.SLOBudget = time.Nanosecond // every completed step violates
	})

	// Shard 1 hangs its scoring pass until the per-shard deadline fires,
	// so every scoring fan-out degrades with a genuine timeout.
	m.Index().ShardCoordinator().SetFaultHook(func(ctx context.Context, s, _ int, op string) error {
		if s == 1 && op == shard.OpScore {
			<-ctx.Done()
			return ctx.Err()
		}
		return nil
	})

	ctx := context.Background()
	info, err := m.Create(ctx, SessionSpec{MaxLabels: 4, Oracle: &OracleSpec{Selectivity: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	var degraded StepResponse
	for i := 0; i < 12; i++ {
		resp, err := m.Step(ctx, info.ID, StepRequest{})
		if err != nil {
			t.Fatal(err)
		}
		if resp.TraceID == "" {
			t.Fatal("traced step response missing trace id")
		}
		if resp.Degraded && degraded.TraceID == "" {
			degraded = resp
		}
		if resp.Done {
			break
		}
	}
	if degraded.TraceID == "" {
		t.Fatal("no step degraded despite the hung shard")
	}

	events, err := obs.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	a := obs.Analyze(events)
	if orphans := a.Orphans(); len(orphans) != 0 {
		t.Fatalf("orphaned spans: %v", orphans)
	}
	var st *obs.StepTrace
	for _, s := range a.Steps {
		if s.TraceID == degraded.TraceID {
			st = s
		}
	}
	if st == nil {
		t.Fatalf("degraded trace %s not in stream (have %d traces)", degraded.TraceID, len(a.Steps))
	}
	if st.Root == nil || st.Root.Ev.Phase != "step" {
		t.Fatalf("root = %+v", st.Root)
	}
	if st.Root.Ev.Outcome != "degraded" {
		t.Errorf("root outcome = %q, want degraded", st.Root.Ev.Outcome)
	}

	// The failing shard's span must be present, annotated with its id,
	// deadline, and timeout outcome; the healthy shard must read ok.
	var timeoutSpans, okSpans int
	walk(st.Root, func(n *obs.SpanNode) {
		if n.Ev.Phase != "shard_"+shard.OpScore {
			return
		}
		switch n.Ev.Outcome {
		case "timeout":
			timeoutSpans++
			if n.Ev.Attrs["shard"] != 1 {
				t.Errorf("timeout span attrs = %v, want shard 1", n.Ev.Attrs)
			}
			if n.Ev.Attrs["deadline_ms"] != float64(deadline/time.Millisecond) {
				t.Errorf("timeout span deadline = %v, want %d", n.Ev.Attrs["deadline_ms"], deadline/time.Millisecond)
			}
			if d := time.Duration(n.Ev.DurNS); d < deadline {
				t.Errorf("timeout span duration %v shorter than the %v deadline", d, deadline)
			}
		case "ok":
			okSpans++
			if n.Ev.Attrs["shard"] != 0 {
				t.Errorf("ok span attrs = %v, want shard 0", n.Ev.Attrs)
			}
		default:
			t.Errorf("unexpected shard span outcome %q", n.Ev.Outcome)
		}
	})
	if timeoutSpans == 0 || okSpans == 0 {
		t.Errorf("shard spans: %d timeout, %d ok; want both present", timeoutSpans, okSpans)
	}

	// Budget attribution: with the 150ms shard timeout dominating the
	// step, the phase decomposition must account for the root wall time
	// within the acceptance bound.
	if cov := st.Coverage(); math.Abs(cov-1) > 0.05 {
		t.Errorf("phase coverage = %.3f (phases %v of wall %v), want within 5%%",
			cov, st.PhaseSum(), st.Wall())
	}

	// The SLO accountant saw the steps, and the 1ns budget makes each a
	// violation with its phases attributed.
	if m.SLO().Steps() == 0 || m.SLO().Violations() == 0 {
		t.Errorf("SLO steps=%d violations=%d, want both positive", m.SLO().Steps(), m.SLO().Violations())
	}
	if v := m.Registry().Gauge(`slo_violation_phase_seconds{phase="score"}`).Value(); v <= 0 {
		t.Errorf("score attribution gauge = %v, want positive", v)
	}
	if c := m.Registry().Counter(`shard_degraded_cause_total{cause="deadline"}`).Value(); c == 0 {
		t.Error("deadline-miss cause counter did not increment")
	}
	if c := m.Registry().Counter(`shard_skip_total{shard="1"}`).Value(); c == 0 {
		t.Error("per-shard skip counter did not increment")
	}
}

// walk visits a span subtree depth-first.
func walk(n *obs.SpanNode, fn func(*obs.SpanNode)) {
	fn(n)
	for _, c := range n.Children {
		walk(c, fn)
	}
}

// TestStepTraceIDHeader checks the HTTP surface: a traced step's response
// carries the trace id in both the JSON body and the X-Uei-Trace-Id
// header, and an untraced manager emits neither.
func TestStepTraceIDHeader(t *testing.T) {
	dir, _ := buildStore(t, 600)
	var buf bytes.Buffer
	m := newTestManager(t, dir, func(c *Config) { c.Tracer = obs.NewTracer(&buf) })
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/sessions", "application/json",
		bytes.NewReader([]byte(`{"max_labels":3,"oracle":{"selectivity":0.05}}`)))
	if err != nil {
		t.Fatal(err)
	}
	var info SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	stepResp, err := http.Post(srv.URL+"/v1/sessions/"+info.ID+"/step", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stepResp.Body.Close()
	var step StepResponse
	if err := json.NewDecoder(stepResp.Body).Decode(&step); err != nil {
		t.Fatal(err)
	}
	if step.TraceID == "" {
		t.Fatal("traced step body missing trace_id")
	}
	if got := stepResp.Header.Get("X-Uei-Trace-Id"); got != step.TraceID {
		t.Errorf("X-Uei-Trace-Id = %q, body trace_id = %q", got, step.TraceID)
	}
}

// TestUntracedStepNoTraceID pins the disabled path: no tracer, no trace
// ids anywhere, and stepping still works.
func TestUntracedStepNoTraceID(t *testing.T) {
	dir, _ := buildStore(t, 600)
	m := newTestManager(t, dir, nil)
	info, err := m.Create(context.Background(), SessionSpec{MaxLabels: 3, Oracle: &OracleSpec{Selectivity: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := m.Step(context.Background(), info.ID, StepRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != "" {
		t.Errorf("untraced step returned trace id %q", resp.TraceID)
	}
}
