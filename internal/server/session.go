package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/uei-db/uei/internal/al"
	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/ide"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/oracle"
)

// SessionSpec is the client-supplied description of an exploration session
// (the POST /v1/sessions request body).
type SessionSpec struct {
	// Name is an optional client label; it has no semantics server-side.
	Name string `json:"name,omitempty"`
	// MaxLabels is the session's total label budget, counted across
	// evictions and resumes. Zero selects the server default.
	MaxLabels int `json:"max_labels,omitempty"`
	// BatchSize is the retrain batch B. Zero selects 1.
	BatchSize int `json:"batch_size,omitempty"`
	// Seed drives the session's uniform sample and bootstrap draws. With a
	// fixed Seed (and SampleSize) a session resumes deterministically: the
	// rebuilt view draws the same sample, so an evicted session proposes
	// exactly what an uninterrupted one would have.
	Seed int64 `json:"seed,omitempty"`
	// SampleSize is the view's γ. Zero derives it from the granted budget
	// share, which varies with server load — pin it when deterministic
	// eviction/resume matters.
	SampleSize int `json:"sample_size,omitempty"`
	// Oracle, when set, makes this a simulated session: the server labels
	// every proposal itself from the described ground-truth region, and
	// each step returns a completed iteration. When nil the session is
	// interactive: each step returns a proposal and the client answers it
	// by posting {"label": "positive"|"negative"} on its next step.
	Oracle *OracleSpec `json:"oracle,omitempty"`
}

// OracleSpec describes a simulated user's target, either explicitly
// (center + half-widths) or by selectivity (the server synthesizes a region
// holding approximately that fraction of the dataset). The scenario
// modifiers below reshape the base target: Regions splits it into k
// disjoint components, Ring carves a hole out of it (non-convex), and
// Drift moves it mid-session as labels accumulate.
type OracleSpec struct {
	Center []float64 `json:"center,omitempty"`
	Widths []float64 `json:"widths,omitempty"`
	// Selectivity is the target fraction of relevant tuples (e.g. 0.004);
	// used when Center/Widths are absent.
	Selectivity float64 `json:"selectivity,omitempty"`
	// Tolerance is the relative cardinality slack for region synthesis.
	// Zero selects 0.5.
	Tolerance float64 `json:"tolerance,omitempty"`
	// Seed drives region synthesis. Zero falls back to the session seed;
	// set it when several sessions should share one named interest region
	// regardless of their private sampling seeds (zipfian popularity over
	// named regions needs exactly this).
	Seed int64 `json:"seed,omitempty"`
	// Regions, when > 1, synthesizes that many disjoint component regions
	// whose combined selectivity approximates Selectivity (requires
	// Selectivity; incompatible with Center/Widths, Ring, and Drift).
	Regions int `json:"regions,omitempty"`
	// Ring makes the target non-convex: the base region minus a
	// concentric hole of InnerFrac times its half-widths.
	Ring *RingSpec `json:"ring,omitempty"`
	// Drift moves the target while the user labels.
	Drift *DriftSpec `json:"drift,omitempty"`
}

// RingSpec carves a concentric hole out of the base region.
type RingSpec struct {
	// InnerFrac is the hole's half-widths as a fraction of the base
	// region's, in (0,1). Zero selects 0.5.
	InnerFrac float64 `json:"inner_frac,omitempty"`
}

// DriftSpec moves the target region linearly from its base placement to a
// destination over the first OverLabels solicited labels.
type DriftSpec struct {
	// ToCenter is the destination center. When absent, the destination is
	// the base center offset by OffsetFrac of the domain width per
	// dimension (clamped to the domain).
	ToCenter []float64 `json:"to_center,omitempty"`
	// ToWidths is the destination half-widths (defaults to the base
	// region's).
	ToWidths []float64 `json:"to_widths,omitempty"`
	// OffsetFrac shifts every dimension by this fraction of its domain
	// width when ToCenter is absent.
	OffsetFrac float64 `json:"offset_frac,omitempty"`
	// OverLabels is how many solicited labels the drift takes to
	// complete. Zero selects the session's label budget.
	OverLabels int `json:"over_labels,omitempty"`
}

// hostedState names a hosted session's lifecycle states.
type hostedState int

const (
	// stateLive: the session holds a budget share, an index view, and a
	// running engine.
	stateLive hostedState = iota
	// stateEvicted: the labeled set is snapshotted on disk and all memory
	// (budget share, view, engine) is released; the next step resumes it.
	stateEvicted
	// stateClosed: deleted; the id answers 404 if re-used.
	stateClosed
)

func (s hostedState) String() string {
	switch s {
	case stateLive:
		return "live"
	case stateEvicted:
		return "evicted"
	default:
		return "closed"
	}
}

// hosted is one server-side session. Its mutex serializes all engine access
// (ide.Session and core.Index views are single-goroutine); tickets is the
// bounded admission queue for steps — a full channel means the client has
// more requests in flight than the server will queue.
type hosted struct {
	id      string
	spec    SessionSpec
	created time.Time

	tickets chan struct{}

	mu       sync.Mutex
	state    hostedState
	view     *core.Index
	sess     *ide.Session
	external *ide.ExternalLabeler // nil in oracle mode
	lastUsed time.Time
	done     bool
	result   *ide.Result
	// labelsBase / itersBase carry effort accounting across evictions: the
	// resumed engine counts from zero, so totals add the snapshot's size
	// and the pre-eviction iteration count.
	labelsBase int
	itersBase  int
	snapPath   string // non-empty once an eviction snapshot exists
	steps      int
	stepTime   time.Duration
}

// labelsUsedLocked is the session's total label effort. A live engine's
// labeled set already includes the replayed snapshot, so its size is the
// total; evicted sessions report the snapshot size.
func (h *hosted) labelsUsedLocked() int {
	if h.sess != nil {
		return h.sess.LabeledCount()
	}
	return h.labelsBase
}

// iterationsLocked is the session's total selection iterations.
func (h *hosted) iterationsLocked() int {
	if h.sess != nil {
		return h.itersBase + h.sess.Iterations()
	}
	return h.itersBase
}

// materializeLocked builds the session's live machinery — index view,
// provider, labeler, engine — from its spec, resuming from the eviction
// snapshot when one exists. The caller holds h.mu and has already admitted
// the session with the arbiter (grant is its byte share).
func (m *Manager) materializeLocked(ctx context.Context, h *hosted, grant int64) error {
	view, err := m.idx.NewView(core.ViewOptions{
		MemoryBudgetBytes: grant,
		SampleSize:        h.spec.SampleSize,
		Seed:              h.spec.Seed,
		EnablePrefetch:    m.cfg.EnablePrefetch,
	})
	if err != nil {
		return fmt.Errorf("server: session %s view: %w", h.id, err)
	}
	if err := m.arb.Attach(h.id, view.Budget()); err != nil {
		view.Close()
		return err
	}
	provider, err := ide.NewUEIProvider(view)
	if err != nil {
		view.Close()
		return err
	}

	var labeler ide.Labeler
	var external *ide.ExternalLabeler
	seedWithPositive := false
	seedCount := 0
	if h.spec.Oracle != nil {
		user, seeds, err := m.oracleFor(ctx, h.spec)
		if err != nil {
			view.Close()
			return err
		}
		labeler = user
		seedCount = seeds
		seedWithPositive = true
	} else {
		external = &ide.ExternalLabeler{}
		labeler = external
	}

	var snap *ide.Snapshot
	if h.snapPath != "" {
		f, err := os.Open(h.snapPath)
		if err != nil {
			view.Close()
			return fmt.Errorf("server: session %s snapshot: %w", h.id, err)
		}
		s, err := ide.ReadSnapshot(f)
		f.Close()
		if err != nil {
			view.Close()
			return fmt.Errorf("server: session %s snapshot: %w", h.id, err)
		}
		snap = &s
	}

	// The resumed engine's labeler counts from zero, so its budget is what
	// remains of the session's total after the snapshotted effort.
	remaining := h.spec.MaxLabels
	if snap != nil {
		remaining -= len(snap.IDs)
		if remaining < 1 {
			remaining = 1 // spent budgets surface as ErrExplorationDone, not config errors
		}
	}
	cfg := ide.Config{
		MaxLabels:        remaining,
		BatchSize:        h.spec.BatchSize,
		EstimatorFactory: func() learn.Classifier { return learn.NewDWKNN(7, m.scales) },
		Strategy:         al.LeastConfidence{},
		Seed:             h.spec.Seed,
		SeedWithPositive: seedWithPositive,
		SeedCount:        seedCount,
		Registry:         m.cfg.Registry,
	}
	var sess *ide.Session
	if snap != nil {
		sess, err = ide.NewSessionFromSnapshot(cfg, provider, labeler, *snap)
		h.labelsBase = len(snap.IDs)
	} else {
		sess, err = ide.NewSession(cfg, provider, labeler)
		h.labelsBase = 0
	}
	if err != nil {
		view.Close()
		return err
	}
	h.view = view
	h.sess = sess
	h.external = external
	h.state = stateLive
	return nil
}

// evictLocked releases everything the session holds in memory — budget
// share, view, engine — after persisting its labeled set, leaving a
// stateEvicted shell that the next step transparently resumes. The caller
// holds h.mu. Sessions whose labeled set is still empty evict without a
// snapshot (there is nothing to persist; resume just starts over). An
// outstanding proposal is dropped: the resumed engine re-derives the same
// proposal from the same labeled set and sample.
func (m *Manager) evictLocked(h *hosted) error {
	if h.state != stateLive {
		return nil
	}
	if h.sess.LabeledCount() > 0 {
		path := filepath.Join(m.cfg.SnapshotDir, h.id+".snapshot")
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("server: evict %s: %w", h.id, err)
		}
		err = h.sess.Snapshot().Save(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("server: evict %s: %w", h.id, err)
		}
		h.snapPath = path
		h.labelsBase = h.sess.LabeledCount()
	}
	h.itersBase += h.sess.Iterations()
	h.view.Close()
	h.view = nil
	h.sess = nil
	h.external = nil
	h.state = stateEvicted
	m.arb.Release(h.id)
	m.releaseLive()
	m.cEvicted.Inc()
	return nil
}

// oracleFor builds a simulated user for the spec's target scenario, lazily
// reconstructing the dataset from the chunk store the first time any
// oracle-mode session needs it. It returns the labeler and the bootstrap
// seed count (one positive per disjoint target component).
func (m *Manager) oracleFor(ctx context.Context, spec SessionSpec) (ide.Labeler, int, error) {
	ds, err := m.dataset(ctx)
	if err != nil {
		return nil, 0, err
	}
	osp := spec.Oracle
	tol := osp.Tolerance
	if tol == 0 {
		tol = 0.5
	}
	seed := osp.Seed
	if seed == 0 {
		seed = spec.Seed
	}
	if osp.Regions > 1 {
		if osp.Ring != nil || osp.Drift != nil || len(osp.Center) > 0 || len(osp.Widths) > 0 {
			return nil, 0, fmt.Errorf("oracle regions > 1 requires a bare selectivity spec: %w", errBadRequest)
		}
		if osp.Selectivity <= 0 {
			return nil, 0, fmt.Errorf("oracle regions > 1 needs a selectivity: %w", errBadRequest)
		}
		mr, err := oracle.FindMultiRegion(ds, osp.Regions, osp.Selectivity, tol, seed, 12)
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", err, errBadRequest)
		}
		user, err := oracle.NewMulti(ds, mr)
		if err != nil {
			return nil, 0, err
		}
		return ide.OracleLabeler{O: user}, osp.Regions, nil
	}

	var region oracle.Region
	switch {
	case len(osp.Center) > 0 || len(osp.Widths) > 0:
		region, err = oracle.NewRegion(osp.Center, osp.Widths)
	case osp.Selectivity > 0:
		region, err = oracle.FindRegion(ds, osp.Selectivity, tol, seed, 12)
	default:
		return nil, 0, fmt.Errorf("oracle spec needs center+widths or a selectivity: %w", errBadRequest)
	}
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", err, errBadRequest)
	}

	switch {
	case osp.Ring != nil && osp.Drift != nil:
		return nil, 0, fmt.Errorf("oracle ring and drift cannot be combined: %w", errBadRequest)
	case osp.Ring != nil:
		frac := osp.Ring.InnerFrac
		if frac == 0 {
			frac = 0.5
		}
		ring, err := oracle.ConcentricRing(region, frac)
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", err, errBadRequest)
		}
		user, err := oracle.NewShape(ds, ring)
		if err != nil {
			return nil, 0, err
		}
		return ide.OracleLabeler{O: user}, 0, nil
	case osp.Drift != nil:
		drift, err := m.driftFor(region, osp.Drift, spec)
		if err != nil {
			return nil, 0, err
		}
		user, err := oracle.NewDrifting(ds, drift)
		if err != nil {
			return nil, 0, err
		}
		return ide.DriftingOracleLabeler{O: user}, 0, nil
	}
	user, err := oracle.New(ds, region)
	if err != nil {
		return nil, 0, err
	}
	return ide.OracleLabeler{O: user}, 0, nil
}

// driftFor resolves a DriftSpec against the base region and the store's
// domain bounds.
func (m *Manager) driftFor(base oracle.Region, dsp *DriftSpec, spec SessionSpec) (oracle.Drift, error) {
	over := dsp.OverLabels
	if over == 0 {
		over = spec.MaxLabels
	}
	toWidths := dsp.ToWidths
	if len(toWidths) == 0 {
		toWidths = base.Widths
	}
	toCenter := dsp.ToCenter
	if len(toCenter) == 0 {
		if dsp.OffsetFrac == 0 {
			return oracle.Drift{}, fmt.Errorf("oracle drift needs to_center or offset_frac: %w", errBadRequest)
		}
		bounds := m.idx.Bounds()
		widths := bounds.Widths()
		toCenter = make([]float64, len(base.Center))
		for i := range toCenter {
			toCenter[i] = base.Center[i] + dsp.OffsetFrac*widths[i]
			if toCenter[i] > bounds.Max[i] {
				toCenter[i] = bounds.Max[i]
			}
			if toCenter[i] < bounds.Min[i] {
				toCenter[i] = bounds.Min[i]
			}
		}
	}
	to, err := oracle.NewRegion(toCenter, toWidths)
	if err != nil {
		return oracle.Drift{}, fmt.Errorf("%s: %w", err, errBadRequest)
	}
	drift, err := oracle.NewDrift(base, to, over)
	if err != nil {
		return oracle.Drift{}, fmt.Errorf("%s: %w", err, errBadRequest)
	}
	return drift, nil
}
