package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"github.com/uei-db/uei/internal/obs"
)

// DebugRoutes mounts the shared observability endpoints on mux:
//
//	/metrics     Prometheus text format
//	/debug/vars  expvar-style JSON snapshot
//	/debug/pprof net/http/pprof profiles
//
// uei-serve mounts them next to the session API; uei-explore and uei-bench
// serve them standalone via ServeDebug. Keeping the wiring here means every
// binary exposes the same surface.
func DebugRoutes(mux *http.ServeMux, reg *obs.Registry) {
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("GET /debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// DebugServer is a standalone metrics/debug endpoint with graceful
// shutdown.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the bound address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the server down gracefully: the listener stops accepting and
// in-flight scrapes finish (bounded at a few seconds), so a Ctrl-C during a
// Prometheus scrape does not truncate the exposition.
func (d *DebugServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	return d.srv.Shutdown(ctx)
}

// ServeDebug starts a standalone HTTP endpoint on addr with the
// DebugRoutes surface. It returns once the listener is bound; serving
// continues in the background until Close.
func ServeDebug(addr string, reg *obs.Registry) (*DebugServer, error) {
	mux := http.NewServeMux()
	DebugRoutes(mux, reg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{srv: srv, ln: ln}, nil
}
