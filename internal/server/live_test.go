package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/dataset"
)

// buildLiveStore builds a small live (streaming) store.
func buildLiveStore(t testing.TB, n int) (string, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: n, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := core.Build(dir, ds, core.BuildOptions{TargetChunkBytes: 4096, LiveIngest: true}); err != nil {
		t.Fatal(err)
	}
	return dir, ds
}

// rowsJSON encodes an AppendRequest from dataset rows.
func rowsJSON(t *testing.T, ds *dataset.Dataset, ids ...int) string {
	t.Helper()
	var req AppendRequest
	for _, id := range ids {
		req.Rows = append(req.Rows, ds.CopyRow(dataset.RowID(id%ds.Len())))
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestHTTPLiveAppend drives the ingest endpoint end to end: appends are
// acknowledged with ids and the committed epoch, out-of-bounds rows are
// rejected with 422, exploring sessions keep stepping while appends land
// concurrently, and the endpoint 400s on a static store.
func TestHTTPLiveAppend(t *testing.T) {
	dir, ds := buildLiveStore(t, 1500)
	m := newTestManager(t, dir, func(c *Config) { c.LiveIngest = true })
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	client := srv.Client()

	var ack AppendResponse
	if status := postJSON(t, client, srv.URL+"/v1/append", rowsJSON(t, ds, 0, 1, 2), &ack); status != http.StatusOK {
		t.Fatalf("append status %d", status)
	}
	if ack.FirstID != uint32(ds.Len()) || ack.Count != 3 || ack.TotalRows != ds.Len()+3 || ack.Epoch == 0 {
		t.Fatalf("append ack = %+v", ack)
	}

	var ejson errorJSON
	if status := postJSON(t, client, srv.URL+"/v1/append", `{"rows":[[1e18,1e18,1e18,1e18,1e18]]}`, &ejson); status != http.StatusUnprocessableEntity {
		t.Fatalf("out-of-bounds append status %d (%s)", status, ejson.Error)
	}
	if status := postJSON(t, client, srv.URL+"/v1/append", `{"rows":[]}`, &ejson); status != http.StatusBadRequest {
		t.Fatalf("empty append status %d", status)
	}

	// Sessions explore the pinned epoch while an appender hammers ingest.
	var info SessionInfo
	if status := postJSON(t, client, srv.URL+"/v1/sessions",
		`{"max_labels":8,"oracle":{"selectivity":0.02}}`, &info); status != http.StatusCreated {
		t.Fatalf("create status %d", status)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var r AppendResponse
			if status := postJSON(t, client, srv.URL+"/v1/append", rowsJSON(t, ds, i*13), &r); status != http.StatusOK {
				t.Errorf("concurrent append status %d", status)
				return
			}
		}
	}()
	for i := 0; i < 8; i++ {
		var step StepResponse
		if status := postJSON(t, client, srv.URL+"/v1/sessions/"+info.ID+"/step", `{}`, &step); status != http.StatusOK {
			t.Fatalf("step %d status %d", i, status)
		}
		if step.Done {
			break
		}
	}
	close(stop)
	wg.Wait()

	// Pinned MVCC: the serving index never saw the appended rows.
	if got := m.Index().RowCount(); got != ds.Len() {
		t.Errorf("serving RowCount = %d, want pinned %d", got, ds.Len())
	}
}

// TestHTTPAppendStaticStore pins the 400 on non-live layouts.
func TestHTTPAppendStaticStore(t *testing.T) {
	dir, ds := buildStore(t, 400)
	m := newTestManager(t, dir, nil)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	var ejson errorJSON
	status := postJSON(t, srv.Client(), srv.URL+"/v1/append", rowsJSON(t, ds, 0), &ejson)
	if status != http.StatusBadRequest {
		t.Fatalf("append on static store: status %d (%s), want 400", status, ejson.Error)
	}
}

// TestLiveConfigMismatch: LiveIngest on a static store fails Manager
// construction with the layout sentinel.
func TestLiveConfigMismatch(t *testing.T) {
	dir, _ := buildStore(t, 300)
	cfg := Config{
		StoreDir:         dir,
		TotalBudgetBytes: 4 << 20,
		LiveIngest:       true,
	}
	if _, err := NewManager(context.Background(), cfg); !errors.Is(err, chunkstore.ErrLayoutMismatch) {
		t.Fatalf("NewManager with LiveIngest over a static store: err = %v, want ErrLayoutMismatch", err)
	}
}
