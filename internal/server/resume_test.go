package server

import (
	"context"
	"os"
	"testing"
	"time"
)

// runSteps drives an oracle-mode session n steps (or to completion),
// returning the selected tuple id of every completed iteration.
func runSteps(t *testing.T, m *Manager, id string, n int) (ids []uint32, done bool) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		resp, err := m.Step(ctx, id, StepRequest{})
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if resp.Iteration != nil {
			ids = append(ids, resp.Iteration.SelectedID)
		}
		if resp.Done {
			return ids, true
		}
	}
	return ids, false
}

// TestEvictResumeParity: a session evicted mid-exploration and resumed from
// its snapshot selects exactly the tuples an uninterrupted session selects,
// and retrieves the same final result. The spec pins seed and sample size
// (so the rebuilt view draws the same sample) and both managers grant the
// same budget share; prefetch is off, which is the server default.
func TestEvictResumeParity(t *testing.T) {
	dir, _ := buildStore(t, 2500)
	spec := SessionSpec{
		MaxLabels:  25,
		SampleSize: 200,
		Seed:       13,
		Oracle:     &OracleSpec{Selectivity: 0.02},
	}
	ctx := context.Background()

	// Uninterrupted reference run.
	mRef := newTestManager(t, dir, func(c *Config) { c.SnapshotDir = t.TempDir() })
	ref, err := mRef.Create(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	refIDs, refDone := runSteps(t, mRef, ref.ID, 100)
	if !refDone {
		t.Fatal("reference session never finished")
	}
	refRes, err := mRef.Result(ctx, ref.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: step 8 times, force-evict, then continue.
	m := newTestManager(t, dir, func(c *Config) { c.SnapshotDir = t.TempDir() })
	info, err := m.Create(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	gotIDs, done := runSteps(t, m, info.ID, 8)
	if done {
		t.Fatal("session finished before the eviction point")
	}
	h, err := m.lookup(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	err = m.evictLocked(h)
	state, snapPath := h.state, h.snapPath
	h.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if state != stateEvicted || snapPath == "" {
		t.Fatalf("after evict: state %v snapshot %q", state, snapPath)
	}
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("snapshot file: %v", err)
	}
	if n := m.arb.Sessions(); n != 0 {
		t.Fatalf("evicted session still holds a budget grant (%d admitted)", n)
	}

	// The next step transparently resumes and the exploration completes.
	tailIDs, done := runSteps(t, m, info.ID, 100)
	if !done {
		t.Fatal("resumed session never finished")
	}
	gotIDs = append(gotIDs, tailIDs...)

	snap := m.Registry().Snapshot()
	if snap.Counters["uei_server_evictions_total"] != 1 || snap.Counters["uei_server_resumes_total"] != 1 {
		t.Errorf("evictions=%d resumes=%d, want 1/1",
			snap.Counters["uei_server_evictions_total"], snap.Counters["uei_server_resumes_total"])
	}

	if len(gotIDs) != len(refIDs) {
		t.Fatalf("interrupted run selected %d tuples, reference %d", len(gotIDs), len(refIDs))
	}
	for i := range refIDs {
		if gotIDs[i] != refIDs[i] {
			t.Fatalf("selection %d diverged after resume: got %d, reference %d", i, gotIDs[i], refIDs[i])
		}
	}
	res, err := m.Result(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positive) != len(refRes.Positive) {
		t.Fatalf("retrieved %d positives, reference %d", len(res.Positive), len(refRes.Positive))
	}
	for i := range res.Positive {
		if res.Positive[i] != refRes.Positive[i] {
			t.Fatalf("positive %d diverged: got %d, reference %d", i, res.Positive[i], refRes.Positive[i])
		}
	}
	if res.LabelsUsed != refRes.LabelsUsed || res.Iterations != refRes.Iterations {
		t.Errorf("effort diverged: labels %d/%d iterations %d/%d",
			res.LabelsUsed, refRes.LabelsUsed, res.Iterations, refRes.Iterations)
	}
}

// TestIdleEviction: the janitor evicts an idle session on its own and the
// session answers its next request as if nothing happened.
func TestIdleEviction(t *testing.T) {
	dir, _ := buildStore(t, 1200)
	m := newTestManager(t, dir, func(c *Config) { c.IdleTimeout = 30 * time.Millisecond })
	ctx := context.Background()
	info, err := m.Create(ctx, SessionSpec{MaxLabels: 20, Oracle: &OracleSpec{Selectivity: 0.03}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(ctx, info.ID, StepRequest{}); err != nil {
		t.Fatal(err)
	}
	// Wait for the janitor to evict the idle session.
	deadline := 200
	for i := 0; ; i++ {
		got, err := m.Get(info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == "evicted" {
			break
		}
		if i >= deadline {
			t.Fatal("janitor never evicted the idle session")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Next step resumes transparently.
	resp, err := m.Step(ctx, info.ID, StepRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Iteration == nil && !resp.Done {
		t.Fatalf("resumed step returned nothing: %+v", resp)
	}
	if got, _ := m.Get(info.ID); got.State != "live" {
		t.Fatalf("session state after resume = %s, want live", got.State)
	}
}
