package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/ide"
	"github.com/uei-db/uei/internal/obs"
	"github.com/uei-db/uei/internal/oracle"
)

// Manager hosts concurrent exploration sessions over one shared Index. It
// owns admission control (session cap, per-session queues, server-wide step
// concurrency), the budget arbiter, idle eviction, and graceful drain; the
// HTTP layer in http.go is a thin JSON shell over its methods.
//
// Lock ordering: m.mu (session map) and liveMu (admission counter) are
// leaves held only for map/counter access, never across engine work or
// while a hosted session's mutex is held. A hosted session's h.mu is held
// for the duration of one step (the engine is single-goroutine); the
// arbiter's mutex is a leaf acquired under h.mu during materialize/evict.
type Manager struct {
	cfg Config
	idx *core.Index
	arb *Arbiter
	// scales are the per-dimension distance scales for the DWKNN estimator,
	// fixed by the dataset's bounds.
	scales []float64

	stepSem chan struct{}

	mu       sync.Mutex
	sessions map[string]*hosted
	idSeq    uint64

	liveMu sync.Mutex
	live   int

	queued atomic.Int64

	draining atomic.Bool

	janitorStop chan struct{}
	janitorDone chan struct{}

	// Oracle-mode sessions need ground truth over the full dataset, which
	// is reconstructed from the chunk store at most once.
	dsOnce sync.Once
	ds     *dataset.Dataset
	dsErr  error

	gLive      *obs.Gauge
	gQueued    *obs.Gauge
	cSteps     *obs.Counter
	cAppends   *obs.Counter
	cEvicted   *obs.Counter
	cResumed   *obs.Counter
	cAdmitRej  *obs.Counter
	cQueueRej  *obs.Counter
	hStep      *obs.Histogram
	hIteration *obs.Histogram

	// tracer mints one trace per step request (nil disables tracing);
	// slo accounts every successful step against the interactivity
	// budget.
	tracer *obs.Tracer
	slo    *obs.SLO
}

// NewManager opens the shared index from cfg.StoreDir and prepares the
// serving machinery. Close releases everything.
func NewManager(ctx context.Context, cfg Config) (*Manager, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if cfg.StoreDir == "" && len(cfg.ShardEndpoints) == 0 {
		return nil, fmt.Errorf("server: Config.StoreDir is required (or ShardEndpoints for remote serving)")
	}
	// The parent index never explores itself — sessions run on views — so
	// its own budget is only a placeholder ledger and its prefetcher stays
	// off.
	idx, err := core.Open(ctx, cfg.StoreDir, core.Options{
		MemoryBudgetBytes: cfg.TotalBudgetBytes,
		SegmentsPerDim:    cfg.SegmentsPerDim,
		Seed:              cfg.Seed,
		Workers:           cfg.Workers,
		Registry:          cfg.Registry,
		BlockCacheBytes:   cfg.BlockCacheBytes,
		Shards:            cfg.Shards,
		ShardDeadline:     cfg.ShardDeadline,
		ShardEndpoints:    cfg.ShardEndpoints,
		Replication:       cfg.Replication,
		HedgeDelay:        cfg.HedgeDelay,
		LiveIngest:        cfg.LiveIngest,
		FollowLive:        cfg.FollowLive,
		FlushInterval:     cfg.FlushInterval,
	})
	if err != nil {
		return nil, err
	}
	m, err := newManagerWithIndex(cfg, idx)
	if err != nil {
		idx.Close()
		return nil, err
	}
	return m, nil
}

// newManagerWithIndex wires a manager over an already-opened parent index
// (which it then owns and closes).
func newManagerWithIndex(cfg Config, idx *core.Index) (*Manager, error) {
	if cfg.SnapshotDir == "" {
		if cfg.StoreDir != "" {
			cfg.SnapshotDir = filepath.Join(cfg.StoreDir, "sessions")
		} else {
			// Remote data plane with no local store directory: evicted
			// sessions still need a home on this machine.
			cfg.SnapshotDir = filepath.Join(os.TempDir(), "uei-sessions")
		}
	}
	if err := os.MkdirAll(cfg.SnapshotDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: snapshot dir: %w", err)
	}
	if cfg.StepConcurrency == 0 {
		cfg.StepConcurrency = runtime.GOMAXPROCS(0)
	}
	if cfg.StepConcurrency < 0 {
		return nil, fmt.Errorf("server: StepConcurrency must be positive")
	}
	arb, err := NewArbiter(cfg.TotalBudgetBytes, cfg.MinSessionBudgetBytes, cfg.Registry)
	if err != nil {
		return nil, err
	}
	// A cache installed on the index joins the arbiter's ledger so its
	// share flexes with session load instead of double-counting memory.
	if bc := idx.BlockCache(); bc != nil && cfg.BlockCacheBytes > 0 {
		if err := arb.AttachCache(bc, cfg.BlockCacheBytes); err != nil {
			return nil, err
		}
	}
	reg := cfg.Registry
	m := &Manager{
		cfg:         cfg,
		idx:         idx,
		arb:         arb,
		scales:      idx.Bounds().Widths(),
		stepSem:     make(chan struct{}, cfg.StepConcurrency),
		sessions:    make(map[string]*hosted),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
		gLive:       reg.Gauge("uei_server_sessions_live"),
		gQueued:     reg.Gauge("uei_server_queue_depth"),
		cSteps:      reg.Counter("uei_server_steps_total"),
		cAppends:    reg.Counter("uei_server_appends_total"),
		cEvicted:    reg.Counter("uei_server_evictions_total"),
		cResumed:    reg.Counter("uei_server_resumes_total"),
		cAdmitRej:   reg.Counter("uei_server_admission_rejects_total"),
		cQueueRej:   reg.Counter("uei_server_queue_rejects_total"),
		hStep:       reg.Histogram("uei_server_step_seconds", nil),
		hIteration:  reg.Histogram(obs.IterationHistName, nil),
		tracer:      cfg.Tracer,
		slo:         obs.NewSLO(reg, cfg.SLOBudget, 0),
	}
	if cfg.IdleTimeout > 0 {
		go m.janitor()
	} else {
		close(m.janitorDone)
	}
	return m, nil
}

// Registry returns the metrics registry everything is wired to.
func (m *Manager) Registry() *obs.Registry { return m.cfg.Registry }

// SLO returns the manager's step-latency accountant.
func (m *Manager) SLO() *obs.SLO { return m.slo }

// Index exposes the shared parent index (for stats; do not explore on it).
func (m *Manager) Index() *core.Index { return m.idx }

// SessionInfo is the externally visible state of a hosted session.
type SessionInfo struct {
	ID          string  `json:"id"`
	Name        string  `json:"name,omitempty"`
	State       string  `json:"state"`
	Done        bool    `json:"done"`
	LabelsUsed  int     `json:"labels_used"`
	MaxLabels   int     `json:"max_labels"`
	Iterations  int     `json:"iterations"`
	BudgetBytes int64   `json:"budget_bytes"`
	Steps       int     `json:"steps"`
	MeanStepMs  float64 `json:"mean_step_ms"`
	PendingID   *uint32 `json:"pending_id,omitempty"`
}

// infoLocked snapshots a session's info; the caller holds h.mu.
func (m *Manager) infoLocked(h *hosted) SessionInfo {
	info := SessionInfo{
		ID:          h.id,
		Name:        h.spec.Name,
		State:       h.state.String(),
		Done:        h.done,
		LabelsUsed:  h.labelsUsedLocked(),
		MaxLabels:   h.spec.MaxLabels,
		Iterations:  h.iterationsLocked(),
		BudgetBytes: m.arb.Grant(h.id),
		Steps:       h.steps,
	}
	if h.steps > 0 {
		info.MeanStepMs = h.stepTime.Seconds() * 1e3 / float64(h.steps)
	}
	if h.sess != nil {
		if p := h.sess.Pending(); p != nil {
			id := p.ID
			info.PendingID = &id
		}
	}
	return info
}

// reserveLive admits one more live session under the cap.
func (m *Manager) reserveLive() error {
	m.liveMu.Lock()
	defer m.liveMu.Unlock()
	if m.live >= m.cfg.MaxSessions {
		return fmt.Errorf("server: %d live sessions (cap %d): %w", m.live, m.cfg.MaxSessions, ErrSaturated)
	}
	m.live++
	m.gLive.SetInt(int64(m.live))
	return nil
}

// releaseLive returns a live slot (on evict or delete).
func (m *Manager) releaseLive() {
	m.liveMu.Lock()
	defer m.liveMu.Unlock()
	m.live--
	m.gLive.SetInt(int64(m.live))
}

// Create admits and materializes a new session. It fails with ErrSaturated
// (HTTP 503) when the session cap is reached or the arbiter cannot carve
// out a viable budget share.
func (m *Manager) Create(ctx context.Context, spec SessionSpec) (SessionInfo, error) {
	if m.draining.Load() {
		return SessionInfo{}, ErrDraining
	}
	if spec.MaxLabels == 0 {
		spec.MaxLabels = m.cfg.DefaultMaxLabels
	}
	if spec.MaxLabels < 0 {
		return SessionInfo{}, fmt.Errorf("max_labels must be positive: %w", errBadRequest)
	}
	if spec.BatchSize < 0 || spec.SampleSize < 0 {
		return SessionInfo{}, fmt.Errorf("batch_size and sample_size must not be negative: %w", errBadRequest)
	}

	id := fmt.Sprintf("s%06d", atomic.AddUint64(&m.idSeq, 1))
	if err := m.reserveLive(); err != nil {
		m.cAdmitRej.Inc()
		return SessionInfo{}, err
	}
	grant, err := m.arb.Admit(id)
	if err != nil {
		m.releaseLive()
		m.cAdmitRej.Inc()
		return SessionInfo{}, err
	}
	h := &hosted{
		id:       id,
		spec:     spec,
		created:  time.Now(),
		lastUsed: time.Now(),
		tickets:  make(chan struct{}, m.cfg.MaxQueuedSteps),
	}
	// The session is not published yet, so holding h.mu here is purely for
	// the materialize contract.
	h.mu.Lock()
	err = m.materializeLocked(ctx, h, grant)
	h.mu.Unlock()
	if err != nil {
		m.arb.Release(id)
		m.releaseLive()
		return SessionInfo{}, err
	}
	m.mu.Lock()
	m.sessions[id] = h
	m.mu.Unlock()
	h.mu.Lock()
	info := m.infoLocked(h)
	h.mu.Unlock()
	return info, nil
}

// lookup finds a session by id.
func (m *Manager) lookup(id string) (*hosted, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.sessions[id]
	if !ok {
		return nil, fmt.Errorf("session %q: %w", id, ErrUnknownSession)
	}
	return h, nil
}

// Get returns a session's info.
func (m *Manager) Get(id string) (SessionInfo, error) {
	h, err := m.lookup(id)
	if err != nil {
		return SessionInfo{}, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state == stateClosed {
		return SessionInfo{}, fmt.Errorf("session %q: %w", id, ErrUnknownSession)
	}
	return m.infoLocked(h), nil
}

// List returns every session's info, ordered by id.
func (m *Manager) List() []SessionInfo {
	m.mu.Lock()
	hs := make([]*hosted, 0, len(m.sessions))
	for _, h := range m.sessions {
		hs = append(hs, h)
	}
	m.mu.Unlock()
	sort.Slice(hs, func(i, j int) bool { return hs[i].id < hs[j].id })
	out := make([]SessionInfo, 0, len(hs))
	for _, h := range hs {
		h.mu.Lock()
		if h.state != stateClosed {
			out = append(out, m.infoLocked(h))
		}
		h.mu.Unlock()
	}
	return out
}

// StepRequest carries the optional label answering the session's
// outstanding proposal.
type StepRequest struct {
	// Label answers the outstanding proposal of an interactive session:
	// "positive" or "negative".
	Label string `json:"label,omitempty"`
}

// StepResponse is one step's outcome: a proposal awaiting the client's
// label (interactive sessions), a completed iteration (oracle sessions), or
// the done marker with the final result summary.
type StepResponse struct {
	ID         string         `json:"id"`
	Done       bool           `json:"done"`
	Proposal   *ProposalJSON  `json:"proposal,omitempty"`
	Iteration  *IterationJSON `json:"iteration,omitempty"`
	LabelsUsed int            `json:"labels_used"`
	Iterations int            `json:"iterations"`
	// Positives is the final result cardinality, set when Done.
	Positives int `json:"positives,omitempty"`
	// Degraded marks steps a sharded index completed with one or more
	// shards skipped (deadline missed or failed); the selection is still
	// valid but was made over the healthy shards only.
	Degraded bool `json:"degraded,omitempty"`
	// TraceID identifies this step's trace in the server's trace stream
	// (set only when the server runs with tracing enabled; also returned
	// as the X-Uei-Trace-Id response header).
	TraceID string `json:"trace_id,omitempty"`
}

// ProposalJSON is a label solicitation on the wire.
type ProposalJSON struct {
	ID        uint32    `json:"id"`
	Row       []float64 `json:"row"`
	Score     float64   `json:"score"`
	Pool      int       `json:"pool"`
	Bootstrap bool      `json:"bootstrap"`
	Iteration int       `json:"iteration"`
	Degraded  bool      `json:"degraded,omitempty"`
}

// IterationJSON is a completed iteration on the wire.
type IterationJSON struct {
	Iteration  int     `json:"iteration"`
	SelectedID uint32  `json:"selected_id"`
	Label      string  `json:"label"`
	Score      float64 `json:"score"`
	Pool       int     `json:"pool"`
	Millis     float64 `json:"millis"`
	Retrained  bool    `json:"retrained"`
	Degraded   bool    `json:"degraded,omitempty"`
}

// Step advances a session by one interaction. The admission path is: a
// per-session queue ticket (ErrQueueFull when the client has too many
// requests in flight), then a server-wide concurrency slot (bounded wait,
// honoring ctx), then the session mutex. Evicted sessions are transparently
// resumed, which re-enters admission (ErrSaturated when the server has no
// room to bring the session back yet).
func (m *Manager) Step(ctx context.Context, id string, req StepRequest) (StepResponse, error) {
	if m.draining.Load() {
		return StepResponse{}, ErrDraining
	}
	h, err := m.lookup(id)
	if err != nil {
		return StepResponse{}, err
	}
	select {
	case h.tickets <- struct{}{}:
		m.gQueued.SetInt(m.queued.Add(1))
	default:
		m.cQueueRej.Inc()
		return StepResponse{}, fmt.Errorf("session %q has %d steps in flight: %w", id, cap(h.tickets), ErrQueueFull)
	}
	defer func() {
		<-h.tickets
		m.gQueued.SetInt(m.queued.Add(-1))
	}()
	select {
	case m.stepSem <- struct{}{}:
	case <-ctx.Done():
		return StepResponse{}, ctx.Err()
	}
	defer func() { <-m.stepSem }()

	// One trace per step request: the root "step" span covers the session
	// lock wait, a possible snapshot resume, and the engine interaction,
	// so every child span below — iteration phases, shard fan-outs, chunk
	// reads — links back to this request. With tracing disabled the trace
	// is nil and the span only measures.
	tr := m.tracer.NewTrace()
	ctx = obs.ContextWithTrace(ctx, tr)
	sctx, root := obs.StartSpan(ctx, "step")
	resp, err := m.lockedStep(sctx, h, req)
	switch {
	case err != nil:
		root.SetOutcome("error")
	case resp.Degraded:
		root.SetOutcome("degraded")
	default:
		root.SetOutcome("ok")
	}
	d := root.End(nil)
	if err == nil {
		m.slo.ObserveStep(d, tr.PhaseTotals())
		resp.TraceID = tr.ID()
	}
	return resp, err
}

// lockedStep is the session-mutex section of Step: closed/evicted state
// checks, transparent resume, the engine interaction, and per-step
// metrics. The root "step" span must end on every exit path, so the
// section lives in its own function.
func (m *Manager) lockedStep(ctx context.Context, h *hosted, req StepRequest) (StepResponse, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state == stateClosed {
		return StepResponse{}, fmt.Errorf("session %q: %w", h.id, ErrUnknownSession)
	}
	if h.state == stateEvicted && !h.done {
		if err := m.resumeLocked(ctx, h); err != nil {
			return StepResponse{}, err
		}
	}
	h.lastUsed = time.Now()
	start := time.Now()
	resp, err := m.stepLocked(ctx, h, req)
	if err == nil {
		d := time.Since(start)
		h.steps++
		h.stepTime += d
		h.lastUsed = time.Now()
		m.cSteps.Inc()
		m.hStep.ObserveDuration(d)
	}
	return resp, err
}

// resumeLocked brings an evicted session back: re-admission (live slot +
// budget share) and re-materialization from its snapshot.
func (m *Manager) resumeLocked(ctx context.Context, h *hosted) error {
	if err := m.reserveLive(); err != nil {
		m.cAdmitRej.Inc()
		return err
	}
	grant, err := m.arb.Admit(h.id)
	if err != nil {
		m.releaseLive()
		m.cAdmitRej.Inc()
		return err
	}
	if err := m.materializeLocked(ctx, h, grant); err != nil {
		m.arb.Release(h.id)
		m.releaseLive()
		return err
	}
	m.cResumed.Inc()
	return nil
}

// stepLocked runs one interaction against a live session's engine.
func (m *Manager) stepLocked(ctx context.Context, h *hosted, req StepRequest) (StepResponse, error) {
	if h.done {
		return m.doneResponseLocked(h), nil
	}
	sess := h.sess
	if req.Label != "" {
		if h.external == nil {
			return StepResponse{}, fmt.Errorf("session %q labels itself (oracle mode): %w", h.id, errBadRequest)
		}
		label, err := parseLabel(req.Label)
		if err != nil {
			return StepResponse{}, err
		}
		// A resume dropped the proposal the client is answering; the engine
		// re-derives it deterministically from the same labeled set and
		// sample before the label is applied.
		if sess.Pending() == nil {
			if _, err := sess.Propose(ctx); err != nil {
				return m.proposeErrorLocked(ctx, h, err)
			}
		}
		if _, err := sess.Feed(ctx, label); err != nil {
			return StepResponse{}, err
		}
	}
	for {
		p, err := sess.Propose(ctx)
		if err != nil {
			return m.proposeErrorLocked(ctx, h, err)
		}
		if h.external != nil {
			return StepResponse{
				ID: h.id,
				Proposal: &ProposalJSON{
					ID: p.ID, Row: p.Row, Score: p.Score, Pool: p.Pool,
					Bootstrap: p.Bootstrap, Iteration: p.Iteration,
					Degraded: p.Degraded,
				},
				LabelsUsed: h.labelsUsedLocked(),
				Iterations: h.iterationsLocked(),
				Degraded:   p.Degraded,
			}, nil
		}
		// Oracle mode: the simulated user answers immediately; one selection
		// iteration per step (bootstrap resolutions return nil info and the
		// loop continues until a real iteration lands).
		info, err := sess.Resolve(ctx)
		if err != nil {
			return StepResponse{}, err
		}
		if info == nil {
			continue
		}
		return StepResponse{
			ID: h.id,
			Iteration: &IterationJSON{
				Iteration:  h.itersBase + info.Iteration,
				SelectedID: info.SelectedID,
				Label:      labelString(info.Label),
				Score:      info.Score,
				Pool:       info.PoolSize,
				Millis:     info.ResponseTime.Seconds() * 1e3,
				Retrained:  info.Retrained,
				Degraded:   info.Degraded,
			},
			LabelsUsed: h.labelsUsedLocked(),
			Iterations: h.iterationsLocked(),
			Degraded:   info.Degraded,
		}, nil
	}
}

// proposeErrorLocked handles a Propose failure: ErrExplorationDone runs
// result retrieval once, caches it, and returns the terminal response; any
// other error passes through.
func (m *Manager) proposeErrorLocked(ctx context.Context, h *hosted, err error) (StepResponse, error) {
	if !errorsIsDone(err) {
		return StepResponse{}, err
	}
	res, ferr := h.sess.Finish(ctx)
	if ferr != nil {
		return StepResponse{}, ferr
	}
	h.done = true
	h.result = res
	return m.doneResponseLocked(h), nil
}

// doneResponseLocked summarizes a finished session.
func (m *Manager) doneResponseLocked(h *hosted) StepResponse {
	resp := StepResponse{
		ID:         h.id,
		Done:       true,
		LabelsUsed: h.labelsUsedLocked(),
		Iterations: h.iterationsLocked(),
	}
	if h.result != nil {
		resp.Positives = len(h.result.Positive)
	}
	return resp
}

// AppendRequest carries rows to ingest into a live store.
type AppendRequest struct {
	Rows [][]float64 `json:"rows"`
}

// AppendResponse acknowledges durably staged rows. The rows are
// WAL-fsynced when the response is written; they become read-visible to
// sessions at the next committed epoch (never to a running iteration).
type AppendResponse struct {
	// FirstID is the global row id assigned to the first appended row;
	// the batch occupies [FirstID, FirstID+Count).
	FirstID uint32 `json:"first_id"`
	Count   int    `json:"count"`
	// TotalRows counts every durably appended row (flushed or not).
	TotalRows int `json:"total_rows"`
	// Epoch is the currently committed manifest epoch.
	Epoch uint64 `json:"epoch"`
}

// Append durably stages rows in the live write store. It shares the
// server-wide step-concurrency semaphore with Step, so an ingest burst
// cannot oversubscribe the worker pool under exploring sessions, and is
// rejected while draining (in-flight appends finish before the store
// closes, because HTTP shutdown completes before Manager.Close runs).
func (m *Manager) Append(ctx context.Context, req AppendRequest) (AppendResponse, error) {
	if m.draining.Load() {
		return AppendResponse{}, ErrDraining
	}
	if len(req.Rows) == 0 {
		return AppendResponse{}, fmt.Errorf("append requires at least one row: %w", errBadRequest)
	}
	live := m.idx.Live()
	if live == nil {
		return AppendResponse{}, fmt.Errorf("store is not a live-ingest layout: %w", core.ErrNotLive)
	}
	select {
	case m.stepSem <- struct{}{}:
	case <-ctx.Done():
		return AppendResponse{}, ctx.Err()
	}
	defer func() { <-m.stepSem }()
	first, err := m.idx.Append(ctx, req.Rows)
	if err != nil {
		return AppendResponse{}, err
	}
	m.cAppends.Inc()
	return AppendResponse{
		FirstID:   first,
		Count:     len(req.Rows),
		TotalRows: live.TotalRows(),
		Epoch:     live.Epoch(),
	}, nil
}

// ResultInfo is the final (or current) retrieval outcome.
type ResultInfo struct {
	ID         string   `json:"id"`
	Done       bool     `json:"done"`
	LabelsUsed int      `json:"labels_used"`
	Iterations int      `json:"iterations"`
	Positive   []uint32 `json:"positive"`
}

// Result returns the session's retrieved result set. Finished sessions
// serve the cached final result (even while evicted); live unfinished
// sessions run retrieval with the current model, which requires at least
// one model fit (learn.ErrNotFitted otherwise) and no outstanding proposal.
func (m *Manager) Result(ctx context.Context, id string) (ResultInfo, error) {
	h, err := m.lookup(id)
	if err != nil {
		return ResultInfo{}, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state == stateClosed {
		return ResultInfo{}, fmt.Errorf("session %q: %w", id, ErrUnknownSession)
	}
	if h.done && h.result != nil {
		return ResultInfo{
			ID: h.id, Done: true,
			LabelsUsed: h.labelsUsedLocked(),
			Iterations: h.iterationsLocked(),
			Positive:   h.result.Positive,
		}, nil
	}
	if h.state == stateEvicted {
		if err := m.resumeLocked(ctx, h); err != nil {
			return ResultInfo{}, err
		}
	}
	h.lastUsed = time.Now()
	if p := h.sess.Pending(); p != nil {
		return ResultInfo{}, fmt.Errorf("session %q has an unresolved proposal for tuple %d: %w", id, p.ID, errBadRequest)
	}
	res, err := h.sess.Finish(ctx)
	if err != nil {
		return ResultInfo{}, err
	}
	return ResultInfo{
		ID: h.id, Done: h.done,
		LabelsUsed: h.labelsUsedLocked(),
		Iterations: h.iterationsLocked(),
		Positive:   res.Positive,
	}, nil
}

// Delete closes a session and removes its snapshot.
func (m *Manager) Delete(id string) error {
	h, err := m.lookup(id)
	if err != nil {
		return err
	}
	h.mu.Lock()
	if h.state == stateClosed {
		h.mu.Unlock()
		return fmt.Errorf("session %q: %w", id, ErrUnknownSession)
	}
	if h.state == stateLive {
		h.view.Close()
		h.view = nil
		h.sess = nil
		h.external = nil
		m.arb.Release(h.id)
		m.releaseLive()
	}
	snap := h.snapPath
	h.snapPath = ""
	h.state = stateClosed
	h.mu.Unlock()
	if snap != "" {
		_ = os.Remove(snap)
	}
	m.mu.Lock()
	delete(m.sessions, id)
	m.mu.Unlock()
	return nil
}

// janitor evicts sessions idle past the configured timeout. Sessions in
// the middle of a step hold their mutex; TryLock skips them — by
// definition they are not idle.
func (m *Manager) janitor() {
	defer close(m.janitorDone)
	period := m.cfg.IdleTimeout / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case <-ticker.C:
		}
		m.mu.Lock()
		hs := make([]*hosted, 0, len(m.sessions))
		for _, h := range m.sessions {
			hs = append(hs, h)
		}
		m.mu.Unlock()
		for _, h := range hs {
			if !h.mu.TryLock() {
				continue
			}
			if h.state == stateLive && time.Since(h.lastUsed) >= m.cfg.IdleTimeout {
				_ = m.evictLocked(h)
			}
			h.mu.Unlock()
		}
	}
}

// Close drains the manager: new work is rejected (ErrDraining), in-flight
// steps finish (their session mutexes are awaited), every live session is
// evicted to its snapshot, and the shared index closes. The manager is
// unusable afterwards.
func (m *Manager) Close(ctx context.Context) error {
	if !m.draining.CompareAndSwap(false, true) {
		return nil
	}
	select {
	case <-m.janitorDone:
	default:
		close(m.janitorStop)
		<-m.janitorDone
	}
	m.mu.Lock()
	hs := make([]*hosted, 0, len(m.sessions))
	for _, h := range m.sessions {
		hs = append(hs, h)
	}
	m.mu.Unlock()
	var firstErr error
	for _, h := range hs {
		h.mu.Lock() // waits for the session's in-flight step
		if err := m.evictLocked(h); err != nil && firstErr == nil {
			firstErr = err
		}
		h.mu.Unlock()
		if err := ctx.Err(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	m.idx.Close()
	return firstErr
}

// dataset lazily reconstructs the full dataset from the chunk store (used
// only by oracle-mode sessions, which need ground truth).
func (m *Manager) dataset(ctx context.Context) (*dataset.Dataset, error) {
	m.dsOnce.Do(func() {
		ids := make([]uint32, m.idx.RowCount())
		for i := range ids {
			ids[i] = uint32(i)
		}
		rows, err := m.idx.FetchRows(ctx, ids)
		if err != nil {
			m.dsErr = fmt.Errorf("server: reconstruct dataset: %w", err)
			return
		}
		ds := dataset.New(dataset.MustSchema(m.idx.Columns()...), len(rows))
		for _, r := range rows {
			if _, err := ds.Append(r.Vals); err != nil {
				m.dsErr = fmt.Errorf("server: reconstruct dataset: %w", err)
				return
			}
		}
		m.ds = ds
	})
	return m.ds, m.dsErr
}

// parseLabel maps the wire label to the oracle's.
func parseLabel(s string) (oracle.Label, error) {
	switch s {
	case "positive":
		return oracle.Positive, nil
	case "negative":
		return oracle.Negative, nil
	default:
		return oracle.Negative, fmt.Errorf("label %q must be \"positive\" or \"negative\": %w", s, errBadRequest)
	}
}

// labelString is parseLabel's inverse.
func labelString(l oracle.Label) string {
	if l == oracle.Positive {
		return "positive"
	}
	return "negative"
}

// errorsIsDone reports the engine's exploration-complete sentinel.
func errorsIsDone(err error) bool { return errors.Is(err, ide.ErrExplorationDone) }
