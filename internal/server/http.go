package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/ide"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/memcache"
	"github.com/uei-db/uei/internal/stream"
)

// errBadRequest marks client mistakes (malformed specs, labels on oracle
// sessions, results requested mid-proposal); statusFor maps it to 400.
var errBadRequest = errors.New("server: invalid request")

// statusFor maps an error crossing the HTTP boundary to a status code and
// an optional Retry-After hint (seconds; 0 means none). Backpressure —
// saturation, full queues, budget pressure, cancellation — always carries a
// hint so well-behaved clients back off instead of hammering.
func statusFor(err error) (status, retryAfter int) {
	switch {
	case errors.Is(err, errBadRequest):
		return http.StatusBadRequest, 0
	case errors.Is(err, ErrUnknownSession):
		return http.StatusNotFound, 0
	case errors.Is(err, core.ErrNotLive):
		return http.StatusBadRequest, 0
	case errors.Is(err, stream.ErrOutOfBounds):
		return http.StatusUnprocessableEntity, 0
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, 1
	case errors.Is(err, ErrSaturated), errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, 2
	case errors.Is(err, memcache.ErrBudgetExceeded):
		return http.StatusServiceUnavailable, 1
	case errors.Is(err, core.ErrClosed):
		return http.StatusGone, 0
	case errors.Is(err, learn.ErrNotFitted):
		return http.StatusConflict, 0
	case errors.Is(err, ide.ErrNoCandidates):
		return http.StatusUnprocessableEntity, 0
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable, 1
	default:
		return http.StatusInternalServerError, 0
	}
}

// errorJSON is every error response's body.
type errorJSON struct {
	Error string `json:"error"`
}

// writeError emits the error with its mapped status and Retry-After.
func writeError(w http.ResponseWriter, err error) {
	status, retry := statusFor(err)
	if retry > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retry))
	}
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

// writeJSON emits a JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// maxBodyBytes bounds request bodies; specs and labels are tiny.
// Append batches get a larger allowance (maxAppendBodyBytes).
const (
	maxBodyBytes       = 1 << 20
	maxAppendBodyBytes = 16 << 20
)

// readJSON decodes the request body into v, tolerating an empty body (all
// request fields are optional).
func readJSON(r *http.Request, v any) error {
	return readJSONLimit(r, v, maxBodyBytes)
}

func readJSONLimit(r *http.Request, v any, limit int64) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, limit))
	if err != nil {
		return fmt.Errorf("read body: %v: %w", err, errBadRequest)
	}
	if len(body) == 0 {
		return nil
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("parse body: %v: %w", err, errBadRequest)
	}
	return nil
}

// Register mounts the session API on mux:
//
//	POST   /v1/sessions           create (body: SessionSpec)
//	GET    /v1/sessions           list
//	GET    /v1/sessions/{id}      session info
//	POST   /v1/sessions/{id}/step advance (body: StepRequest)
//	GET    /v1/sessions/{id}/result retrieved result set
//	DELETE /v1/sessions/{id}      delete
//	POST   /v1/append             ingest rows into a live store (body: AppendRequest)
//	GET    /healthz               liveness (always 200 with a HealthInfo body)
//	GET    /readyz                readiness (503 with HealthInfo while draining)
func (m *Manager) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/sessions", m.handleCreate)
	mux.HandleFunc("POST /v1/append", m.handleAppend)
	mux.HandleFunc("GET /v1/sessions", m.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", m.handleGet)
	mux.HandleFunc("POST /v1/sessions/{id}/step", m.handleStep)
	mux.HandleFunc("GET /v1/sessions/{id}/result", m.handleResult)
	mux.HandleFunc("DELETE /v1/sessions/{id}", m.handleDelete)
	mux.HandleFunc("GET /healthz", m.handleHealth)
	mux.HandleFunc("GET /readyz", m.handleReady)
}

// Handler returns a mux with just the session API (tests and embedders).
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	m.Register(mux)
	return mux
}

func (m *Manager) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec SessionSpec
	if err := readJSON(r, &spec); err != nil {
		writeError(w, err)
		return
	}
	info, err := m.Create(r.Context(), spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (m *Manager) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, m.List())
}

func (m *Manager) handleGet(w http.ResponseWriter, r *http.Request) {
	info, err := m.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (m *Manager) handleStep(w http.ResponseWriter, r *http.Request) {
	var req StepRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	resp, err := m.Step(r.Context(), r.PathValue("id"), req)
	if err != nil {
		writeError(w, err)
		return
	}
	if resp.TraceID != "" {
		w.Header().Set("X-Uei-Trace-Id", resp.TraceID)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (m *Manager) handleResult(w http.ResponseWriter, r *http.Request) {
	res, err := m.Result(r.Context(), r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (m *Manager) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := m.Delete(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (m *Manager) handleAppend(w http.ResponseWriter, r *http.Request) {
	var req AppendRequest
	if err := readJSONLimit(r, &req, maxAppendBodyBytes); err != nil {
		writeError(w, err)
		return
	}
	resp, err := m.Append(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// Serve runs the session API (plus the /metrics and /debug endpoints of
// DebugRoutes) on addr until ctx is canceled, then drains gracefully:
// the listener stops accepting, in-flight requests finish, every live
// session is evicted to its snapshot, and the shared index closes.
func Serve(ctx context.Context, addr string, m *Manager) error {
	mux := http.NewServeMux()
	m.Register(mux)
	DebugRoutes(mux, m.Registry())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	shutErr := srv.Shutdown(shutCtx)
	drainErr := m.Close(shutCtx)
	if drainErr != nil {
		return drainErr
	}
	return shutErr
}
