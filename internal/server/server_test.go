package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/ide"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/memcache"
	"github.com/uei-db/uei/internal/obs"
	"github.com/uei-db/uei/internal/oracle"
)

// buildStore builds a small synthetic store and returns its directory plus
// the generating dataset (for client-side ground truth).
func buildStore(t testing.TB, n int) (string, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: n, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := core.Build(dir, ds, core.BuildOptions{TargetChunkBytes: 4096}); err != nil {
		t.Fatal(err)
	}
	return dir, ds
}

// newTestManager opens a manager over the store with test-friendly
// defaults; mut customizes the config.
func newTestManager(t testing.TB, dir string, mut func(*Config)) *Manager {
	t.Helper()
	cfg := Config{
		StoreDir:              dir,
		TotalBudgetBytes:      4 << 20,
		MinSessionBudgetBytes: 32 << 10,
		MaxSessions:           8,
		Seed:                  5,
	}
	if mut != nil {
		mut(&cfg)
	}
	m, err := NewManager(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close(context.Background()) })
	return m
}

// TestArbiterShares: equal-share partitioning, rebalance on admit/release,
// saturation at the minimum share, and Resize propagation into budgets.
func TestArbiterShares(t *testing.T) {
	a, err := NewArbiter(1000, 200, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	g1, err := a.Admit("a")
	if err != nil || g1 != 1000 {
		t.Fatalf("first admit: grant %d err %v, want 1000", g1, err)
	}
	b1, err := memcache.NewBudget(g1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Attach("a", b1); err != nil {
		t.Fatal(err)
	}
	g2, err := a.Admit("b")
	if err != nil || g2 != 500 {
		t.Fatalf("second admit: grant %d err %v, want 500", g2, err)
	}
	// The first session's budget shrank with the rebalance.
	if got := b1.Capacity(); got != 500 {
		t.Fatalf("budget a capacity after rebalance = %d, want 500", got)
	}
	if _, err := a.Admit("b"); err == nil {
		t.Fatal("double admit should fail")
	}
	// 1000/5 = 200 is viable, 1000/6 = 166 is not.
	for _, id := range []string{"c", "d", "e"} {
		if _, err := a.Admit(id); err != nil {
			t.Fatalf("admit %s: %v", id, err)
		}
	}
	if _, err := a.Admit("f"); !errors.Is(err, ErrSaturated) {
		t.Fatalf("sixth admit: want ErrSaturated, got %v", err)
	}
	a.Release("b")
	if got := a.Grant("a"); got != 250 {
		t.Fatalf("grant after release = %d, want 250", got)
	}
	if got := b1.Capacity(); got != 250 {
		t.Fatalf("budget a capacity after release = %d, want 250", got)
	}
	a.Release("b") // releasing twice is a no-op
	if n := a.Sessions(); n != 4 {
		t.Fatalf("sessions = %d, want 4", n)
	}
}

// fakeCache records the capacities the arbiter pushes into it.
type fakeCache struct {
	mu   sync.Mutex
	caps []int64
}

func (f *fakeCache) Resize(capacity int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.caps = append(f.caps, capacity)
	return nil
}

func (f *fakeCache) last() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.caps) == 0 {
		return -1
	}
	return f.caps[len(f.caps)-1]
}

// TestArbiterCacheShare: the cache holds its target share while sessions
// fit above the minimum, yields progressively (down to zero) as admissions
// push equal shares toward the minimum, never changes admission capacity,
// and grows back when sessions release.
func TestArbiterCacheShare(t *testing.T) {
	a, err := NewArbiter(1000, 200, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	fc := &fakeCache{}
	if err := a.AttachCache(fc, 801); err == nil {
		t.Fatal("cache target leaving less than one minimum share should be rejected")
	}
	if err := a.AttachCache(fc, 300); err != nil {
		t.Fatal(err)
	}
	if got := a.CacheShare(); got != 300 || fc.last() != 300 {
		t.Fatalf("idle cache share = %d (resized to %d), want 300", got, fc.last())
	}

	wantGrants := []struct {
		id    string
		grant int64
		cache int64
	}{
		{"a", 700, 300}, // (1000-300)/1
		{"b", 350, 300}, // (1000-300)/2
		{"c", 233, 300}, // (1000-300)/3
		{"d", 200, 200}, // 175 < min: cache yields to 1000-4*200
		{"e", 200, 0},   // cache squeezed out entirely
	}
	for _, w := range wantGrants {
		g, err := a.Admit(w.id)
		if err != nil {
			t.Fatalf("admit %s: %v", w.id, err)
		}
		if g != w.grant {
			t.Fatalf("admit %s: grant %d, want %d", w.id, g, w.grant)
		}
		if got := a.CacheShare(); got != w.cache {
			t.Fatalf("after admit %s: cache share %d, want %d", w.id, got, w.cache)
		}
	}
	if fc.last() != 0 {
		t.Fatalf("cache last resized to %d, want 0", fc.last())
	}
	// Admission capacity is exactly what it would be with no cache: 1000/6
	// is below the minimum.
	if _, err := a.Admit("f"); !errors.Is(err, ErrSaturated) {
		t.Fatalf("sixth admit: want ErrSaturated, got %v", err)
	}
	// Releases hand memory back to the cache before growing per-session
	// shares past what the target allows.
	a.Release("e")
	if got := a.CacheShare(); got != 200 {
		t.Fatalf("cache share after one release = %d, want 200", got)
	}
	a.Release("d")
	if got, grant := a.CacheShare(), a.Grant("a"); got != 300 || grant != 233 {
		t.Fatalf("after two releases: cache %d grant %d, want 300/233", got, grant)
	}
}

// TestManagerBlockCacheParity runs the same seeded oracle exploration on a
// cache-enabled and a cacheless manager and requires identical results —
// the serving-layer form of the cache's byte-identical contract — then
// checks the cache actually absorbed reads and joined the arbiter ledger.
func TestManagerBlockCacheParity(t *testing.T) {
	dir, _ := buildStore(t, 1500)
	ctx := context.Background()
	spec := SessionSpec{
		MaxLabels:  15,
		SampleSize: 200,
		Seed:       7,
		Oracle:     &OracleSpec{Selectivity: 0.05},
	}
	run := func(m *Manager) ResultInfo {
		info, err := m.Create(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < 200; n++ {
			resp, err := m.Step(ctx, info.ID, StepRequest{})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Done {
				break
			}
		}
		res, err := m.Result(ctx, info.ID)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	plain := newTestManager(t, dir, func(c *Config) { c.SnapshotDir = t.TempDir() })
	cached := newTestManager(t, dir, func(c *Config) {
		c.SnapshotDir = t.TempDir()
		c.BlockCacheBytes = 1 << 20
	})
	bc := cached.Index().BlockCache()
	if bc == nil {
		t.Fatal("BlockCacheBytes set but no cache installed on the index")
	}
	if plain.Index().BlockCache() != nil {
		t.Fatal("cacheless manager grew a cache")
	}

	want := run(plain)
	got := run(cached)
	if len(want.Positive) == 0 {
		t.Fatal("reference exploration retrieved nothing")
	}
	if fmt.Sprint(want.Positive) != fmt.Sprint(got.Positive) {
		t.Fatalf("cached result differs: %d rows vs %d", len(got.Positive), len(want.Positive))
	}

	if s := bc.Stats(); s.Hits == 0 {
		t.Errorf("exploration produced no cache hits: %+v", s)
	}
	if share := cached.arb.CacheShare(); share <= 0 {
		t.Errorf("cache share = %d, want positive", share)
	}
	snap := cached.Registry().Snapshot()
	if g := snap.Gauges["uei_server_block_cache_share_bytes"]; g <= 0 {
		t.Errorf("uei_server_block_cache_share_bytes = %v, want positive", g)
	}
	if snap.Counters["blockcache_hits_total"] == 0 {
		t.Error("blockcache_hits_total not exported on the server registry")
	}
}

// TestStatusForMap pins the full error -> HTTP mapping, including the
// Retry-After backpressure hints, with every sentinel wrapped the way real
// call sites wrap them.
func TestStatusForMap(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		status int
		retry  int
	}{
		{"bad request", fmt.Errorf("spec: %w", errBadRequest), http.StatusBadRequest, 0},
		{"unknown session", fmt.Errorf("session %q: %w", "s1", ErrUnknownSession), http.StatusNotFound, 0},
		{"queue full", fmt.Errorf("busy: %w", ErrQueueFull), http.StatusTooManyRequests, 1},
		{"saturated", fmt.Errorf("cap: %w", ErrSaturated), http.StatusServiceUnavailable, 2},
		{"draining", ErrDraining, http.StatusServiceUnavailable, 2},
		{"budget", fmt.Errorf("region: %w", memcache.ErrBudgetExceeded), http.StatusServiceUnavailable, 1},
		{"closed", fmt.Errorf("index: %w", core.ErrClosed), http.StatusGone, 0},
		{"not fitted", fmt.Errorf("finish: %w", learn.ErrNotFitted), http.StatusConflict, 0},
		{"no candidates", fmt.Errorf("acquire: %w", ide.ErrNoCandidates), http.StatusUnprocessableEntity, 0},
		{"canceled", context.Canceled, http.StatusServiceUnavailable, 1},
		{"deadline", context.DeadlineExceeded, http.StatusServiceUnavailable, 1},
		{"unknown", errors.New("boom"), http.StatusInternalServerError, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, retry := statusFor(tc.err)
			if status != tc.status || retry != tc.retry {
				t.Fatalf("statusFor(%v) = (%d, %d), want (%d, %d)", tc.err, status, retry, tc.status, tc.retry)
			}
			rec := httptest.NewRecorder()
			writeError(rec, tc.err)
			if rec.Code != tc.status {
				t.Fatalf("writeError status = %d, want %d", rec.Code, tc.status)
			}
			if tc.retry > 0 && rec.Header().Get("Retry-After") == "" {
				t.Fatal("writeError dropped the Retry-After hint")
			}
			var body errorJSON
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error == "" {
				t.Fatalf("writeError body %q not an error JSON (%v)", rec.Body.String(), err)
			}
		})
	}
}

// postJSON posts a JSON body and decodes the response into out, returning
// the status code.
func postJSON(t *testing.T, client *http.Client, url string, body string, out any) int {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s: %v (body %q)", url, err, data)
		}
	}
	return resp.StatusCode
}

// getJSON fetches a URL and decodes the response.
func getJSON(t *testing.T, client *http.Client, url string, out any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s: %v (body %q)", url, err, data)
		}
	}
	return resp.StatusCode
}

// TestHTTPConcurrentSessions is the serving acceptance scenario: two
// concurrent oracle-mode sessions complete a 20-iteration exploration over
// one shared index via HTTP, a third session is refused with 503 +
// Retry-After while the server is at capacity and admitted after a delete
// frees a slot, and the step metrics land in the registry. Run with -race.
func TestHTTPConcurrentSessions(t *testing.T) {
	dir, _ := buildStore(t, 2500)
	m := newTestManager(t, dir, func(c *Config) { c.MaxSessions = 2 })
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	client := srv.Client()

	create := func() SessionInfo {
		var info SessionInfo
		status := postJSON(t, client, srv.URL+"/v1/sessions",
			`{"max_labels":22,"sample_size":200,"seed":11,"oracle":{"selectivity":0.02}}`, &info)
		if status != http.StatusCreated {
			t.Fatalf("create: status %d", status)
		}
		return info
	}
	s1, s2 := create(), create()

	// Capacity reached: the third session must be refused with 503 and a
	// Retry-After hint, not an error page and not a hang.
	resp, err := client.Post(srv.URL+"/v1/sessions", "application/json",
		bytes.NewReader([]byte(`{"oracle":{"selectivity":0.02}}`)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("third create: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("third create: missing Retry-After")
	}
	resp.Body.Close()

	// Both sessions explore concurrently to completion.
	var wg sync.WaitGroup
	iters := make([]int, 2)
	errs := make([]error, 2)
	for i, s := range []SessionInfo{s1, s2} {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			for n := 0; n < 200; n++ {
				var step StepResponse
				status := postJSON(t, client, srv.URL+"/v1/sessions/"+id+"/step", `{}`, &step)
				if status != http.StatusOK {
					errs[i] = fmt.Errorf("step %d: status %d", n, status)
					return
				}
				if step.Iteration != nil {
					iters[i] = step.Iteration.Iteration
				}
				if step.Done {
					return
				}
			}
			errs[i] = fmt.Errorf("session %s never finished", id)
		}(i, s.ID)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	for i, n := range iters {
		if n < 20 {
			t.Errorf("session %d ran %d iterations, want >= 20", i, n)
		}
	}

	// Results are served for both, and the latency metrics landed.
	for _, s := range []SessionInfo{s1, s2} {
		var res ResultInfo
		if status := getJSON(t, client, srv.URL+"/v1/sessions/"+s.ID+"/result", &res); status != http.StatusOK {
			t.Fatalf("result %s: status %d", s.ID, status)
		}
		if !res.Done || res.LabelsUsed != 22 {
			t.Errorf("result %s: done=%v labels=%d, want done with 22 labels", s.ID, res.Done, res.LabelsUsed)
		}
	}
	snap := m.Registry().Snapshot()
	if got := snap.Counters["uei_server_steps_total"]; got < 40 {
		t.Errorf("uei_server_steps_total = %d, want >= 40", got)
	}
	if got := snap.Counters["uei_server_admission_rejects_total"]; got < 1 {
		t.Errorf("uei_server_admission_rejects_total = %d, want >= 1", got)
	}
	if h, ok := snap.Histograms["uei_server_step_seconds"]; !ok || h.Count < 40 {
		t.Errorf("uei_server_step_seconds count = %v, want >= 40 observations", h.Count)
	}

	// Deleting a finished session frees its slot; the next create succeeds.
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/sessions/"+s1.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}
	if status := getJSON(t, client, srv.URL+"/v1/sessions/"+s1.ID, nil); status != http.StatusNotFound {
		t.Fatalf("get deleted session: status %d, want 404", status)
	}
	create()
}

// TestHTTPInteractiveSession drives a Feed-labeled session over HTTP: the
// client answers each proposal from its own ground truth, exactly as a UI
// would relay a human's judgments.
func TestHTTPInteractiveSession(t *testing.T) {
	dir, ds := buildStore(t, 1500)
	m := newTestManager(t, dir, nil)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	client := srv.Client()

	// Client-side ground truth over a broad region, so random bootstrap
	// finds both classes quickly.
	region, err := oracle.FindRegion(ds, 0.4, 0.5, 11, 12)
	if err != nil {
		t.Fatal(err)
	}
	user, err := oracle.New(ds, region)
	if err != nil {
		t.Fatal(err)
	}

	var info SessionInfo
	if status := postJSON(t, client, srv.URL+"/v1/sessions",
		`{"max_labels":12,"sample_size":150,"seed":11}`, &info); status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}

	var step StepResponse
	if status := postJSON(t, client, srv.URL+"/v1/sessions/"+info.ID+"/step", `{}`, &step); status != http.StatusOK {
		t.Fatalf("first step: status %d", status)
	}
	answered := 0
	for n := 0; n < 200 && !step.Done; n++ {
		if step.Proposal == nil {
			t.Fatalf("step returned neither proposal nor done: %+v", step)
		}
		label := "negative"
		if user.LabelID(dataset.RowID(step.Proposal.ID)) == oracle.Positive {
			label = "positive"
		}
		answered++
		body := fmt.Sprintf(`{"label":%q}`, label)
		if status := postJSON(t, client, srv.URL+"/v1/sessions/"+info.ID+"/step", body, &step); status != http.StatusOK {
			t.Fatalf("labeled step: status %d", status)
		}
	}
	if !step.Done {
		t.Fatal("session never finished")
	}
	if answered != 12 {
		t.Errorf("answered %d labels, want 12", answered)
	}
	var res ResultInfo
	if status := getJSON(t, client, srv.URL+"/v1/sessions/"+info.ID+"/result", &res); status != http.StatusOK {
		t.Fatalf("result: status %d", status)
	}
	if len(res.Positive) == 0 {
		t.Error("interactive session retrieved nothing")
	}
	// A label posted to an oracle-mode session is a client mistake (400).
	var o SessionInfo
	if status := postJSON(t, client, srv.URL+"/v1/sessions",
		`{"oracle":{"selectivity":0.02}}`, &o); status != http.StatusCreated {
		t.Fatalf("oracle create: status %d", status)
	}
	resp, err := client.Post(srv.URL+"/v1/sessions/"+o.ID+"/step", "application/json",
		bytes.NewReader([]byte(`{"label":"positive"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("label on oracle session: status %d, want 400", resp.StatusCode)
	}
}

// TestQueueFull: a session whose bounded queue is full refuses further
// steps with ErrQueueFull (HTTP 429) instead of queueing unboundedly.
func TestQueueFull(t *testing.T) {
	dir, _ := buildStore(t, 800)
	m := newTestManager(t, dir, func(c *Config) { c.MaxQueuedSteps = 1 })
	info, err := m.Create(context.Background(), SessionSpec{Oracle: &OracleSpec{Selectivity: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.lookup(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	h.tickets <- struct{}{} // a step is "in flight"
	_, err = m.Step(context.Background(), info.ID, StepRequest{})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if status, retry := statusFor(err); status != http.StatusTooManyRequests || retry == 0 {
		t.Fatalf("queue-full maps to (%d, %d), want (429, >0)", status, retry)
	}
	<-h.tickets
	if _, err := m.Step(context.Background(), info.ID, StepRequest{}); err != nil {
		t.Fatalf("step after queue drained: %v", err)
	}
	if got := m.Registry().Snapshot().Counters["uei_server_queue_rejects_total"]; got != 1 {
		t.Errorf("uei_server_queue_rejects_total = %d, want 1", got)
	}
}

// TestDrain: Close rejects new work, evicts live sessions to snapshots,
// and a second Close is a no-op.
func TestDrain(t *testing.T) {
	dir, _ := buildStore(t, 800)
	m := newTestManager(t, dir, nil)
	ctx := context.Background()
	info, err := m.Create(ctx, SessionSpec{MaxLabels: 15, Oracle: &OracleSpec{Selectivity: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Step(ctx, info.ID, StepRequest{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(ctx, SessionSpec{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("create while drained: want ErrDraining, got %v", err)
	}
	if _, err := m.Step(ctx, info.ID, StepRequest{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("step while drained: want ErrDraining, got %v", err)
	}
	h, err := m.lookup(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	state, snapPath := h.state, h.snapPath
	h.mu.Unlock()
	if state != stateEvicted || snapPath == "" {
		t.Fatalf("after drain: state %v snapshot %q, want evicted with a snapshot", state, snapPath)
	}
	if err := m.Close(ctx); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
