package dbms

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/uei-db/uei/internal/dataset"
)

func buildIndex(t *testing.T, n int, column string) (*BTree, *dataset.Dataset, string) {
	t.Helper()
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: n, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	bt, err := BuildIndex(dir, column, ds, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bt.Close() })
	return bt, ds, dir
}

func TestBuildIndexValidation(t *testing.T) {
	ds, _ := dataset.GenerateSky(dataset.SkyConfig{N: 10, Seed: 1})
	if _, err := BuildIndex(t.TempDir(), "nope", ds, 4, nil); err == nil {
		t.Error("unknown column should fail")
	}
	empty := dataset.New(dataset.MustSchema("x"), 0)
	if _, err := BuildIndex(t.TempDir(), "x", empty, 4, nil); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestBTreeFullRangeScanIsSorted(t *testing.T) {
	bt, ds, _ := buildIndex(t, 3000, "ra")
	dim := ds.Schema().ColumnIndex("ra")
	var keys []float64
	seen := map[uint32]bool{}
	err := bt.RangeScan(math.Inf(-1), math.Inf(1), func(key float64, id uint32) bool {
		keys = append(keys, key)
		if seen[id] {
			t.Fatalf("row %d visited twice", id)
		}
		seen[id] = true
		if ds.At(dataset.RowID(id), dim) != key {
			t.Fatalf("row %d key %g, dataset says %g", id, key, ds.At(dataset.RowID(id), dim))
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != ds.Len() {
		t.Fatalf("scanned %d entries, want %d", len(keys), ds.Len())
	}
	if !sort.Float64sAreSorted(keys) {
		t.Error("range scan keys not sorted")
	}
	if bt.Entries() != ds.Len() {
		t.Errorf("Entries = %d", bt.Entries())
	}
	if bt.Height() < 2 {
		t.Errorf("Height = %d; expected a multi-level tree for 3000 entries", bt.Height())
	}
	if bt.Column() != "ra" {
		t.Errorf("Column = %q", bt.Column())
	}
}

func TestBTreeRangeMatchesBruteForce(t *testing.T) {
	bt, ds, _ := buildIndex(t, 2000, "dec")
	dim := ds.Schema().ColumnIndex("dec")
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		a := -90 + rng.Float64()*180
		b := -90 + rng.Float64()*180
		lo, hi := math.Min(a, b), math.Max(a, b)
		want := map[uint32]bool{}
		ds.Scan(func(id dataset.RowID, row []float64) bool {
			if row[dim] >= lo && row[dim] <= hi {
				want[uint32(id)] = true
			}
			return true
		})
		got := map[uint32]bool{}
		err := bt.RangeScan(lo, hi, func(key float64, id uint32) bool {
			if key < lo || key > hi {
				t.Fatalf("key %g escaped [%g,%g]", key, lo, hi)
			}
			got[id] = true
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d ids, want %d", trial, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d: missing id %d", trial, id)
			}
		}
	}
}

func TestBTreeRangeScanEarlyStop(t *testing.T) {
	bt, _, _ := buildIndex(t, 1000, "rowc")
	n := 0
	err := bt.RangeScan(math.Inf(-1), math.Inf(1), func(float64, uint32) bool {
		n++
		return n < 7
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Errorf("visited %d", n)
	}
	if err := bt.RangeScan(2, 1, func(float64, uint32) bool { return true }); err == nil {
		t.Error("inverted range should fail")
	}
}

func TestBTreeLookupDuplicates(t *testing.T) {
	// "field" is integer-valued, so duplicates are plentiful.
	bt, ds, _ := buildIndex(t, 4000, "field")
	dim := ds.Schema().ColumnIndex("field")
	// Choose the key of row 0 and verify all duplicates come back.
	key := ds.At(0, dim)
	want := 0
	ds.Scan(func(_ dataset.RowID, row []float64) bool {
		if row[dim] == key {
			want++
		}
		return true
	})
	ids, err := bt.Lookup(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != want {
		t.Fatalf("Lookup(%g) = %d ids, want %d", key, len(ids), want)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Error("duplicate ids not ascending")
		}
	}
}

func TestBTreeEmptyRange(t *testing.T) {
	bt, _, _ := buildIndex(t, 500, "ra")
	n := 0
	if err := bt.RangeScan(1e9, 2e9, func(float64, uint32) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("beyond-domain range returned %d entries", n)
	}
}

func TestBTreeReopen(t *testing.T) {
	bt, ds, dir := buildIndex(t, 1500, "colc")
	bt.Close()
	re, err := OpenIndex(dir, "colc", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Entries() != ds.Len() {
		t.Errorf("Entries = %d", re.Entries())
	}
	n := 0
	if err := re.RangeScan(math.Inf(-1), math.Inf(1), func(float64, uint32) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != ds.Len() {
		t.Errorf("scan after reopen visited %d", n)
	}
	if _, err := OpenIndex(dir, "wrong", 4, nil); err == nil {
		t.Error("wrong column open should fail")
	}
}

func TestQuickBTreeRangeEquivalence(t *testing.T) {
	bt, ds, _ := buildIndex(t, 1200, "rowc")
	dim := ds.Schema().ColumnIndex("rowc")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.Float64() * 2048
		b := rng.Float64() * 2048
		lo, hi := math.Min(a, b), math.Max(a, b)
		want := 0
		ds.Scan(func(_ dataset.RowID, row []float64) bool {
			if row[dim] >= lo && row[dim] <= hi {
				want++
			}
			return true
		})
		got := 0
		if err := bt.RangeScan(lo, hi, func(float64, uint32) bool { got++; return true }); err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
