// Package dbms is a from-scratch single-table storage engine standing in
// for MySQL as the baseline of the paper's evaluation (§4): a page-based
// heap file behind an LRU buffer pool whose capacity is capped at the
// experiment's memory budget, plus a bulk-loaded on-disk B+ tree index for
// range retrieval. The active-learning baseline reads the entire table
// through the (tiny) buffer pool every iteration, which is exactly the
// exhaustive-scan cost profile the paper attributes to DBMS-backed IDE
// systems.
package dbms

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the fixed on-disk page size. 8 KiB mirrors common DBMS
// defaults (InnoDB uses 16 KiB; PostgreSQL 8 KiB).
const PageSize = 8192

// PageID addresses a page within a file.
type PageID uint32

// InvalidPageID marks "no page" (e.g. next-leaf of the last B+ tree leaf).
const InvalidPageID = PageID(0xFFFFFFFF)

// Slotted page layout:
//
//	header (8 bytes): slotCount uint16 | freeStart uint16 | freeEnd uint16 | flags uint16
//	records grow forward from freeStart
//	slot directory grows backward from the end: per slot, offset uint16 | length uint16
//
// A slot with length 0 is a dead (deleted) record.
const (
	pageHeaderSize = 8
	slotSize       = 4
)

// Page is an in-memory image of one slotted page. The zero-filled buffer is
// not a valid page; call initPage first.
type Page struct {
	buf [PageSize]byte
}

// initPage formats the buffer as an empty slotted page.
func (p *Page) initPage() {
	for i := range p.buf {
		p.buf[i] = 0
	}
	p.setSlotCount(0)
	p.setFreeStart(pageHeaderSize)
	p.setFreeEnd(PageSize)
}

func (p *Page) slotCount() int     { return int(binary.LittleEndian.Uint16(p.buf[0:2])) }
func (p *Page) setSlotCount(n int) { binary.LittleEndian.PutUint16(p.buf[0:2], uint16(n)) }
func (p *Page) freeStart() int     { return int(binary.LittleEndian.Uint16(p.buf[2:4])) }
func (p *Page) setFreeStart(n int) { binary.LittleEndian.PutUint16(p.buf[2:4], uint16(n)) }
func (p *Page) freeEnd() int       { return int(binary.LittleEndian.Uint16(p.buf[4:6])) }
func (p *Page) setFreeEnd(n int)   { binary.LittleEndian.PutUint16(p.buf[4:6], uint16(n)) }

// FreeSpace returns the bytes available for one more record and its slot.
func (p *Page) FreeSpace() int {
	free := p.freeEnd() - p.freeStart() - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// NumSlots returns the number of slots, including dead ones.
func (p *Page) NumSlots() int { return p.slotCount() }

// Insert appends a record, returning its slot number. It fails when the
// record (plus slot) does not fit.
func (p *Page) Insert(record []byte) (int, error) {
	if len(record) == 0 {
		return 0, fmt.Errorf("dbms: refusing to insert an empty record")
	}
	if len(record) > p.FreeSpace() {
		return 0, fmt.Errorf("dbms: record of %d bytes does not fit in %d free", len(record), p.FreeSpace())
	}
	off := p.freeStart()
	copy(p.buf[off:], record)
	slot := p.slotCount()
	slotOff := p.freeEnd() - slotSize
	binary.LittleEndian.PutUint16(p.buf[slotOff:], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[slotOff+2:], uint16(len(record)))
	p.setFreeStart(off + len(record))
	p.setFreeEnd(slotOff)
	p.setSlotCount(slot + 1)
	return slot, nil
}

// Record returns the bytes of a slot (aliasing the page buffer) or an error
// for invalid or dead slots.
func (p *Page) Record(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.slotCount() {
		return nil, fmt.Errorf("dbms: slot %d out of range [0,%d)", slot, p.slotCount())
	}
	slotOff := PageSize - (slot+1)*slotSize
	off := int(binary.LittleEndian.Uint16(p.buf[slotOff:]))
	length := int(binary.LittleEndian.Uint16(p.buf[slotOff+2:]))
	if length == 0 {
		return nil, fmt.Errorf("dbms: slot %d is dead", slot)
	}
	if off < pageHeaderSize || off+length > PageSize {
		return nil, fmt.Errorf("dbms: slot %d points outside the page (off %d len %d)", slot, off, length)
	}
	return p.buf[off : off+length], nil
}

// Delete marks a slot dead. The space is not reclaimed (heap files compact
// only on rebuild, like most real engines without VACUUM).
func (p *Page) Delete(slot int) error {
	if slot < 0 || slot >= p.slotCount() {
		return fmt.Errorf("dbms: slot %d out of range [0,%d)", slot, p.slotCount())
	}
	slotOff := PageSize - (slot+1)*slotSize
	binary.LittleEndian.PutUint16(p.buf[slotOff+2:], 0)
	return nil
}

// Bytes exposes the raw page image for I/O.
func (p *Page) Bytes() []byte { return p.buf[:] }
