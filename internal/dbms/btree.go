package dbms

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/iothrottle"
)

// B+ tree node layouts (raw pages, not slotted):
//
//	leaf:     type byte (1) | count uint16 | pad byte | next uint32 |
//	          count x { key float64, rowID uint32 }
//	internal: type byte (2) | count uint16 | pad byte | pad uint32 |
//	          count x key float64 | (count+1) x child uint32
//
// Keys within a leaf ascend (duplicates allowed); an internal node's key i
// is the smallest key reachable under child i+1. Trees are bulk-loaded
// once, read-only afterwards — the evaluation's tables are immutable, as is
// the chunk store.
const (
	nodeLeaf     = 1
	nodeInternal = 2

	nodeHeaderSize = 8
	leafEntrySize  = 12
	leafCapacity   = (PageSize - nodeHeaderSize) / leafEntrySize
	// internalCapacity solves 8 + 8c + 4(c+1) <= PageSize for c.
	internalCapacity = (PageSize - nodeHeaderSize - 4) / 12
)

// indexMetaFile names the sidecar for the index on a column.
func indexMetaFile(column string) string { return fmt.Sprintf("idx_%s.json", column) }

// indexDataFile names the page file for the index on a column.
func indexDataFile(column string) string { return fmt.Sprintf("idx_%s.btree", column) }

type indexMeta struct {
	FormatVersion int    `json:"format_version"`
	Column        string `json:"column"`
	Root          uint32 `json:"root"`
	Height        int    `json:"height"`
	Entries       int    `json:"entries"`
	FirstLeaf     uint32 `json:"first_leaf"`
}

// BTree is a read-only, bulk-loaded B+ tree over one attribute, mapping
// attribute values to row ids. It supports the range retrieval the DBMS
// scheme uses for result materialization — the one operation MySQL-backed
// IDE systems can index in advance, as opposed to uncertainty search, which
// the paper observes cannot be pre-indexed (§1).
type BTree struct {
	meta  indexMeta
	pager *Pager
	pool  *BufferPool
}

// BuildIndex bulk-loads a B+ tree over the named column of the dataset into
// dir and returns the opened index.
func BuildIndex(dir, column string, ds *dataset.Dataset, poolFrames int, limiter *iothrottle.Limiter) (*BTree, error) {
	dim := ds.Schema().ColumnIndex(column)
	if dim < 0 {
		return nil, fmt.Errorf("dbms: no column %q in schema %s", column, ds.Schema())
	}
	if ds.Len() == 0 {
		return nil, fmt.Errorf("dbms: refusing to index an empty dataset")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dbms: create %s: %w", dir, err)
	}

	type kv struct {
		key float64
		id  uint32
	}
	pairs := make([]kv, 0, ds.Len())
	ds.Scan(func(id dataset.RowID, row []float64) bool {
		pairs = append(pairs, kv{key: row[dim], id: uint32(id)})
		return true
	})
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].key != pairs[j].key {
			return pairs[i].key < pairs[j].key
		}
		return pairs[i].id < pairs[j].id
	})

	pager, err := CreatePager(filepath.Join(dir, indexDataFile(column)), limiter)
	if err != nil {
		return nil, err
	}
	// Bulk load writes pages strictly sequentially; a tiny pool suffices.
	pool, err := NewBufferPool(pager, 4)
	if err != nil {
		pager.Close()
		return nil, err
	}

	// Level 0: pack leaves.
	type childRef struct {
		page   PageID
		minKey float64
	}
	var level []childRef
	var prevLeaf PageID = InvalidPageID
	var firstLeaf PageID
	for start := 0; start < len(pairs); start += leafCapacity {
		end := start + leafCapacity
		if end > len(pairs) {
			end = len(pairs)
		}
		id, page, err := pool.NewPage()
		if err != nil {
			pager.Close()
			return nil, err
		}
		buf := page.Bytes()
		buf[0] = nodeLeaf
		binary.LittleEndian.PutUint16(buf[1:3], uint16(end-start))
		binary.LittleEndian.PutUint32(buf[4:8], uint32(InvalidPageID))
		for i, p := range pairs[start:end] {
			off := nodeHeaderSize + i*leafEntrySize
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(p.key))
			binary.LittleEndian.PutUint32(buf[off+8:], p.id)
		}
		if err := pool.Unpin(id, true); err != nil {
			pager.Close()
			return nil, err
		}
		if prevLeaf != InvalidPageID {
			if err := patchLeafNext(pool, prevLeaf, id); err != nil {
				pager.Close()
				return nil, err
			}
		} else {
			firstLeaf = id
		}
		prevLeaf = id
		level = append(level, childRef{page: id, minKey: pairs[start].key})
	}

	// Upper levels: pack internal nodes until one root remains.
	height := 1
	for len(level) > 1 {
		var next []childRef
		for start := 0; start < len(level); start += internalCapacity + 1 {
			end := start + internalCapacity + 1
			if end > len(level) {
				end = len(level)
			}
			group := level[start:end]
			id, page, err := pool.NewPage()
			if err != nil {
				pager.Close()
				return nil, err
			}
			buf := page.Bytes()
			buf[0] = nodeInternal
			nKeys := len(group) - 1
			binary.LittleEndian.PutUint16(buf[1:3], uint16(nKeys))
			keyBase := nodeHeaderSize
			childBase := keyBase + nKeys*8
			for i := 0; i < nKeys; i++ {
				binary.LittleEndian.PutUint64(buf[keyBase+i*8:], math.Float64bits(group[i+1].minKey))
			}
			for i, c := range group {
				binary.LittleEndian.PutUint32(buf[childBase+i*4:], uint32(c.page))
			}
			if err := pool.Unpin(id, true); err != nil {
				pager.Close()
				return nil, err
			}
			next = append(next, childRef{page: id, minKey: group[0].minKey})
		}
		level = next
		height++
	}

	if err := pool.FlushAll(); err != nil {
		pager.Close()
		return nil, err
	}
	meta := indexMeta{
		FormatVersion: tableFormatVersion,
		Column:        column,
		Root:          uint32(level[0].page),
		Height:        height,
		Entries:       len(pairs),
		FirstLeaf:     uint32(firstLeaf),
	}
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		pager.Close()
		return nil, fmt.Errorf("dbms: marshal index meta: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, indexMetaFile(column)), data, 0o644); err != nil {
		pager.Close()
		return nil, fmt.Errorf("dbms: write index meta: %w", err)
	}
	return &BTree{meta: meta, pager: pager, pool: pool}, nil
}

// patchLeafNext rewrites a finished leaf's next pointer to link the chain.
func patchLeafNext(pool *BufferPool, leaf, next PageID) error {
	page, err := pool.Fetch(leaf)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(page.Bytes()[4:8], uint32(next))
	return pool.Unpin(leaf, true)
}

// OpenIndex opens an existing index read-only.
func OpenIndex(dir, column string, poolFrames int, limiter *iothrottle.Limiter) (*BTree, error) {
	data, err := os.ReadFile(filepath.Join(dir, indexMetaFile(column)))
	if err != nil {
		return nil, fmt.Errorf("dbms: read index meta: %w", err)
	}
	var meta indexMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, fmt.Errorf("dbms: parse index meta: %w", err)
	}
	if meta.FormatVersion != tableFormatVersion || meta.Column != column {
		return nil, fmt.Errorf("dbms: index meta mismatch: %+v", meta)
	}
	pager, err := OpenPager(filepath.Join(dir, indexDataFile(column)), limiter)
	if err != nil {
		return nil, err
	}
	pool, err := NewBufferPool(pager, poolFrames)
	if err != nil {
		pager.Close()
		return nil, err
	}
	return &BTree{meta: meta, pager: pager, pool: pool}, nil
}

// Close releases the index file handle.
func (t *BTree) Close() error { return t.pager.Close() }

// Column returns the indexed attribute name.
func (t *BTree) Column() string { return t.meta.Column }

// Entries returns the number of indexed (key, rowID) pairs.
func (t *BTree) Entries() int { return t.meta.Entries }

// Height returns the number of levels, leaves included.
func (t *BTree) Height() int { return t.meta.Height }

// RangeScan visits every (key, rowID) with lo <= key <= hi in ascending key
// order (rowID ascending among duplicates), until fn returns false.
func (t *BTree) RangeScan(lo, hi float64, fn func(key float64, id uint32) bool) error {
	if lo > hi {
		return fmt.Errorf("dbms: inverted range [%g,%g]", lo, hi)
	}
	leaf, err := t.descendToLeaf(lo)
	if err != nil {
		return err
	}
	for leaf != InvalidPageID {
		page, err := t.pool.Fetch(leaf)
		if err != nil {
			return err
		}
		buf := page.Bytes()
		if buf[0] != nodeLeaf {
			t.pool.Unpin(leaf, false)
			return fmt.Errorf("dbms: page %d is not a leaf", leaf)
		}
		count := int(binary.LittleEndian.Uint16(buf[1:3]))
		next := PageID(binary.LittleEndian.Uint32(buf[4:8]))
		// Binary search the first entry with key >= lo.
		start := sort.Search(count, func(i int) bool {
			off := nodeHeaderSize + i*leafEntrySize
			return math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])) >= lo
		})
		done := false
		for i := start; i < count; i++ {
			off := nodeHeaderSize + i*leafEntrySize
			key := math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			if key > hi {
				done = true
				break
			}
			id := binary.LittleEndian.Uint32(buf[off+8:])
			if !fn(key, id) {
				done = true
				break
			}
		}
		if err := t.pool.Unpin(leaf, false); err != nil {
			return err
		}
		if done {
			return nil
		}
		leaf = next
	}
	return nil
}

// Lookup collects the row ids of every entry with exactly the given key.
func (t *BTree) Lookup(key float64) ([]uint32, error) {
	var out []uint32
	err := t.RangeScan(key, key, func(_ float64, id uint32) bool {
		out = append(out, id)
		return true
	})
	return out, err
}

// descendToLeaf walks from the root to the leftmost leaf that can contain
// keys >= lo.
func (t *BTree) descendToLeaf(lo float64) (PageID, error) {
	cur := PageID(t.meta.Root)
	for {
		page, err := t.pool.Fetch(cur)
		if err != nil {
			return 0, err
		}
		buf := page.Bytes()
		switch buf[0] {
		case nodeLeaf:
			t.pool.Unpin(cur, false)
			return cur, nil
		case nodeInternal:
			count := int(binary.LittleEndian.Uint16(buf[1:3]))
			keyBase := nodeHeaderSize
			childBase := keyBase + count*8
			// First key >= lo bounds the child from the right: child i
			// covers keys in [key[i-1], key[i]), and duplicates of key[i]
			// may sit under child i, so we descend left of an equal key.
			idx := sort.Search(count, func(i int) bool {
				return math.Float64frombits(binary.LittleEndian.Uint64(buf[keyBase+i*8:])) >= lo
			})
			child := PageID(binary.LittleEndian.Uint32(buf[childBase+idx*4:]))
			if err := t.pool.Unpin(cur, false); err != nil {
				return 0, err
			}
			cur = child
		default:
			t.pool.Unpin(cur, false)
			return 0, fmt.Errorf("dbms: page %d has unknown node type %d", cur, buf[0])
		}
	}
}
