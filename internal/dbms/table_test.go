package dbms

import (
	"context"
	"path/filepath"
	"testing"

	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/vec"
)

func makeTable(t *testing.T, n, frames int) (*Table, *dataset.Dataset, string) {
	t.Helper()
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: n, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	tb, err := CreateTable(dir, ds, frames, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tb.Close() })
	return tb, ds, dir
}

func TestCreateTableValidation(t *testing.T) {
	empty := dataset.New(dataset.MustSchema("x"), 0)
	if _, err := CreateTable(t.TempDir(), empty, 4, nil); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestTableScanMatchesDataset(t *testing.T) {
	tb, ds, _ := makeTable(t, 2500, 8)
	if tb.RowCount() != 2500 || tb.Dims() != 5 {
		t.Fatalf("rows=%d dims=%d", tb.RowCount(), tb.Dims())
	}
	next := uint32(0)
	err := tb.Scan(context.Background(), func(id uint32, row []float64) bool {
		if id != next {
			t.Fatalf("scan out of order: got %d, want %d", id, next)
		}
		if !vec.Equal(row, ds.Row(dataset.RowID(id))) {
			t.Fatalf("row %d differs", id)
		}
		next++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(next) != ds.Len() {
		t.Fatalf("scanned %d rows, want %d", next, ds.Len())
	}
}

func TestTableScanEarlyStop(t *testing.T) {
	tb, _, _ := makeTable(t, 1000, 4)
	n := 0
	err := tb.Scan(context.Background(), func(uint32, []float64) bool {
		n++
		return n < 10
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("visited %d rows", n)
	}
}

func TestTableOpenAndGet(t *testing.T) {
	_, ds, dir := makeTable(t, 1200, 8)
	tb, err := OpenTable(dir, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if tb.RowCount() != 1200 {
		t.Fatalf("RowCount = %d", tb.RowCount())
	}
	row := make([]float64, tb.Dims())
	for _, id := range []uint32{0, 1, 577, 1199} {
		if err := tb.Get(id, row); err != nil {
			t.Fatal(err)
		}
		if !vec.Equal(row, ds.Row(dataset.RowID(id))) {
			t.Fatalf("Get(%d) differs", id)
		}
	}
	if err := tb.Get(1200, row); err == nil {
		t.Error("out-of-range Get should fail")
	}
	if err := tb.Get(0, make([]float64, 2)); err == nil {
		t.Error("dims mismatch should fail")
	}
	if tb.SizeBytes() != int64(tb.Pages())*PageSize {
		t.Error("SizeBytes inconsistent")
	}
	if len(tb.Columns()) != 5 {
		t.Error("Columns wrong")
	}
}

func TestOpenTableErrors(t *testing.T) {
	if _, err := OpenTable(t.TempDir(), 4, nil); err == nil {
		t.Error("missing table should fail")
	}
}

func TestBufferPoolChurnOnScan(t *testing.T) {
	// A pool much smaller than the table must evict during a scan and
	// still produce correct results on a second scan.
	tb, ds, _ := makeTable(t, 3000, 2)
	if tb.Pages() <= 2 {
		t.Skip("table unexpectedly fits the pool")
	}
	for pass := 0; pass < 2; pass++ {
		count := 0
		err := tb.Scan(context.Background(), func(id uint32, row []float64) bool {
			if !vec.Equal(row, ds.Row(dataset.RowID(id))) {
				t.Fatalf("pass %d row %d differs", pass, id)
			}
			count++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if count != 3000 {
			t.Fatalf("pass %d scanned %d", pass, count)
		}
	}
	hits, misses, evictions := tb.Pool().Stats()
	if evictions == 0 {
		t.Error("expected evictions with a 2-frame pool")
	}
	if misses < int64(tb.Pages()) {
		t.Errorf("misses %d below page count %d", misses, tb.Pages())
	}
	_ = hits
	tb.Pool().ResetStats()
	if h, m, e := tb.Pool().Stats(); h != 0 || m != 0 || e != 0 {
		t.Error("ResetStats failed")
	}
}

func TestBufferPoolPinSemantics(t *testing.T) {
	tb, _, _ := makeTable(t, 500, 3)
	pool := tb.Pool()
	p0, err := pool.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	if p0 == nil {
		t.Fatal("nil page")
	}
	// Pin all frames; the next fetch must fail.
	if _, err := pool.Fetch(1); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Fetch(2); err != nil {
		t.Fatal(err)
	}
	if tb.Pages() > 3 {
		if _, err := pool.Fetch(3); err == nil {
			t.Error("fetch with all frames pinned should fail")
		}
	}
	if err := pool.Unpin(0, false); err != nil {
		t.Fatal(err)
	}
	if err := pool.Unpin(0, false); err == nil {
		t.Error("double unpin should fail")
	}
	if err := pool.Unpin(999, false); err == nil {
		t.Error("unpin of non-resident page should fail")
	}
	pool.Unpin(1, false)
	pool.Unpin(2, false)
	// Now a fourth page can come in, evicting page 0 (LRU).
	if tb.Pages() > 3 {
		if _, err := pool.Fetch(3); err != nil {
			t.Fatal(err)
		}
		pool.Unpin(3, false)
	}
}

func TestBufferPoolValidation(t *testing.T) {
	if _, err := NewBufferPool(nil, 4); err == nil {
		t.Error("nil pager should fail")
	}
	pager, err := CreatePager(filepath.Join(t.TempDir(), "x.heap"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pager.Close()
	if _, err := NewBufferPool(pager, 0); err == nil {
		t.Error("zero capacity should fail")
	}
}

func TestPagerValidation(t *testing.T) {
	dir := t.TempDir()
	pager, err := CreatePager(filepath.Join(dir, "t.heap"), nil)
	if err != nil {
		t.Fatal(err)
	}
	var p Page
	p.initPage()
	if err := pager.ReadPage(0, &p); err == nil {
		t.Error("read of unallocated page should fail")
	}
	id, err := pager.AllocatePage()
	if err != nil {
		t.Fatal(err)
	}
	if err := pager.WritePage(id, &p); err != nil {
		t.Fatal(err)
	}
	if err := pager.WritePage(id+1, &p); err == nil {
		t.Error("write past end should fail")
	}
	if err := pager.Sync(); err != nil {
		t.Fatal(err)
	}
	read, written := pager.Stats()
	if read != 0 || written != 1 {
		t.Errorf("stats = (%d, %d)", read, written)
	}
	pager.Close()

	ro, err := OpenPager(filepath.Join(dir, "t.heap"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if _, err := ro.AllocatePage(); err == nil {
		t.Error("allocate on read-only pager should fail")
	}
	if err := ro.WritePage(0, &p); err == nil {
		t.Error("write on read-only pager should fail")
	}
	if err := ro.ReadPage(0, &p); err != nil {
		t.Fatal(err)
	}
}
