package dbms

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPageInsertAndRecord(t *testing.T) {
	var p Page
	p.initPage()
	if p.NumSlots() != 0 {
		t.Fatalf("fresh page has %d slots", p.NumSlots())
	}
	s0, err := p.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := p.Insert([]byte("world!"))
	if err != nil {
		t.Fatal(err)
	}
	if s0 != 0 || s1 != 1 || p.NumSlots() != 2 {
		t.Fatalf("slots %d %d count %d", s0, s1, p.NumSlots())
	}
	r0, err := p.Record(0)
	if err != nil || !bytes.Equal(r0, []byte("hello")) {
		t.Errorf("Record(0) = %q, %v", r0, err)
	}
	r1, err := p.Record(1)
	if err != nil || !bytes.Equal(r1, []byte("world!")) {
		t.Errorf("Record(1) = %q, %v", r1, err)
	}
}

func TestPageInsertValidation(t *testing.T) {
	var p Page
	p.initPage()
	if _, err := p.Insert(nil); err == nil {
		t.Error("empty record should fail")
	}
	big := make([]byte, PageSize)
	if _, err := p.Insert(big); err == nil {
		t.Error("oversized record should fail")
	}
}

func TestPageFillsExactly(t *testing.T) {
	var p Page
	p.initPage()
	rec := make([]byte, 44) // same size as a 5-dim row record
	n := 0
	for {
		if _, err := p.Insert(rec); err != nil {
			break
		}
		n++
	}
	want := (PageSize - pageHeaderSize) / (44 + slotSize)
	if n != want {
		t.Errorf("page held %d records, want %d", n, want)
	}
	// After filling, every record must read back.
	for i := 0; i < n; i++ {
		if _, err := p.Record(i); err != nil {
			t.Fatalf("record %d unreadable: %v", i, err)
		}
	}
}

func TestPageDelete(t *testing.T) {
	var p Page
	p.initPage()
	p.Insert([]byte("a"))
	p.Insert([]byte("b"))
	if err := p.Delete(0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Record(0); err == nil {
		t.Error("dead slot should not read")
	}
	if r, err := p.Record(1); err != nil || !bytes.Equal(r, []byte("b")) {
		t.Error("live slot damaged by delete")
	}
	if err := p.Delete(5); err == nil {
		t.Error("deleting invalid slot should fail")
	}
	if _, err := p.Record(9); err == nil {
		t.Error("invalid slot should not read")
	}
}

func TestQuickPageRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var p Page
		p.initPage()
		var want [][]byte
		for {
			rec := make([]byte, 1+rng.Intn(200))
			rng.Read(rec)
			if _, err := p.Insert(rec); err != nil {
				break
			}
			want = append(want, rec)
			if len(want) > 500 {
				break
			}
		}
		if p.NumSlots() != len(want) {
			return false
		}
		for i, w := range want {
			got, err := p.Record(i)
			if err != nil || !bytes.Equal(got, w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRecordCodec(t *testing.T) {
	row := []float64{1.5, -2.25, 3e10}
	rec := make([]byte, recordSize(3))
	encodeRecord(rec, 42, row)
	got := make([]float64, 3)
	id, err := decodeRecord(rec, got)
	if err != nil {
		t.Fatal(err)
	}
	if id != 42 {
		t.Errorf("id = %d", id)
	}
	for i := range row {
		if got[i] != row[i] {
			t.Errorf("value %d = %g, want %g", i, got[i], row[i])
		}
	}
	if _, err := decodeRecord(rec[:5], got); err == nil {
		t.Error("short record should fail")
	}
}
