package dbms

import (
	"container/list"
	"fmt"
)

// BufferPool caches pages in a fixed number of frames with LRU replacement
// and pin counting. The experiments size it from the memory budget, so a
// full table scan over a table 100x the pool size churns every frame —
// the physical behaviour that makes the DBMS baseline slow out-of-core.
type BufferPool struct {
	pager  *Pager
	frames []frame
	// table maps a resident page to its frame index.
	table map[PageID]int
	// lru lists unpinned frame indexes, least recently used at the front.
	lru *list.List
	// lruElem[i] is frame i's element in lru, nil while pinned.
	lruElem []*list.Element

	hits, misses, evictions int64
}

type frame struct {
	page  Page
	id    PageID
	pins  int
	dirty bool
	used  bool
}

// NewBufferPool creates a pool of capacity frames over the pager.
func NewBufferPool(pager *Pager, capacity int) (*BufferPool, error) {
	if pager == nil {
		return nil, fmt.Errorf("dbms: nil pager")
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("dbms: buffer pool capacity %d must be positive", capacity)
	}
	return &BufferPool{
		pager:   pager,
		frames:  make([]frame, capacity),
		table:   make(map[PageID]int, capacity),
		lru:     list.New(),
		lruElem: make([]*list.Element, capacity),
	}, nil
}

// Capacity returns the number of frames.
func (bp *BufferPool) Capacity() int { return len(bp.frames) }

// Fetch pins the page and returns a pointer into the pool's frame. The
// caller must Unpin it. The returned *Page is invalidated by eviction after
// unpinning; do not retain it.
func (bp *BufferPool) Fetch(id PageID) (*Page, error) {
	if idx, ok := bp.table[id]; ok {
		f := &bp.frames[idx]
		f.pins++
		if bp.lruElem[idx] != nil {
			bp.lru.Remove(bp.lruElem[idx])
			bp.lruElem[idx] = nil
		}
		bp.hits++
		return &f.page, nil
	}
	bp.misses++
	idx, err := bp.victim()
	if err != nil {
		return nil, err
	}
	f := &bp.frames[idx]
	if f.used {
		if f.dirty {
			if err := bp.pager.WritePage(f.id, &f.page); err != nil {
				return nil, err
			}
		}
		delete(bp.table, f.id)
		bp.evictions++
	}
	if err := bp.pager.ReadPage(id, &f.page); err != nil {
		// Leave the frame unused so the pool stays consistent.
		f.used = false
		bp.lruElem[idx] = bp.lru.PushFront(idx)
		return nil, err
	}
	f.id = id
	f.pins = 1
	f.dirty = false
	f.used = true
	bp.table[id] = idx
	return &f.page, nil
}

// NewPage allocates a fresh page, pins it, and returns it zero-initialized
// as an empty slotted page.
func (bp *BufferPool) NewPage() (PageID, *Page, error) {
	id, err := bp.pager.AllocatePage()
	if err != nil {
		return 0, nil, err
	}
	idx, err := bp.victim()
	if err != nil {
		return 0, nil, err
	}
	f := &bp.frames[idx]
	if f.used {
		if f.dirty {
			if err := bp.pager.WritePage(f.id, &f.page); err != nil {
				return 0, nil, err
			}
		}
		delete(bp.table, f.id)
		bp.evictions++
	}
	f.page.initPage()
	f.id = id
	f.pins = 1
	f.dirty = true
	f.used = true
	bp.table[id] = idx
	return id, &f.page, nil
}

// victim returns a frame index to (re)use: an unused frame if any, else the
// least recently used unpinned frame, removed from the LRU list.
func (bp *BufferPool) victim() (int, error) {
	for i := range bp.frames {
		if !bp.frames[i].used {
			if bp.lruElem[i] != nil {
				bp.lru.Remove(bp.lruElem[i])
				bp.lruElem[i] = nil
			}
			return i, nil
		}
	}
	front := bp.lru.Front()
	if front == nil {
		return 0, fmt.Errorf("dbms: buffer pool exhausted: all %d frames pinned", len(bp.frames))
	}
	idx := front.Value.(int)
	bp.lru.Remove(front)
	bp.lruElem[idx] = nil
	return idx, nil
}

// Unpin releases one pin; dirty marks the page as modified so eviction
// writes it back. Unpinning to zero makes the frame evictable.
func (bp *BufferPool) Unpin(id PageID, dirty bool) error {
	idx, ok := bp.table[id]
	if !ok {
		return fmt.Errorf("dbms: unpin of non-resident page %d", id)
	}
	f := &bp.frames[idx]
	if f.pins <= 0 {
		return fmt.Errorf("dbms: unpin of unpinned page %d", id)
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
	if f.pins == 0 {
		bp.lruElem[idx] = bp.lru.PushBack(idx)
	}
	return nil
}

// FlushAll writes back every dirty resident page and syncs the file.
func (bp *BufferPool) FlushAll() error {
	for i := range bp.frames {
		f := &bp.frames[i]
		if f.used && f.dirty {
			if err := bp.pager.WritePage(f.id, &f.page); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return bp.pager.Sync()
}

// Stats returns hit/miss/eviction counters.
func (bp *BufferPool) Stats() (hits, misses, evictions int64) {
	return bp.hits, bp.misses, bp.evictions
}

// ResetStats zeroes the counters (between experiment phases).
func (bp *BufferPool) ResetStats() { bp.hits, bp.misses, bp.evictions = 0, 0, 0 }
