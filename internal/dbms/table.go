package dbms

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/iothrottle"
)

const (
	tableMetaFile = "table.json"
	tableDataFile = "data.heap"
)

// tableMeta is the table's persistent catalog entry.
type tableMeta struct {
	FormatVersion int      `json:"format_version"`
	Columns       []string `json:"columns"`
	RowCount      int      `json:"row_count"`
	Pages         int      `json:"pages"`
	RowsPerPage   int      `json:"rows_per_page"`
}

const tableFormatVersion = 1

// Table is a single heap-file table of fixed-width numeric rows, read
// through a buffer pool. Records are (rowID uint32, values [dims]float64);
// row ids are dense and assigned in insertion order, so point lookups are
// arithmetic rather than index-based — the B+ tree (btree.go) indexes
// attribute values, not row ids.
type Table struct {
	dir   string
	meta  tableMeta
	pager *Pager
	pool  *BufferPool
}

// recordSize returns the on-page record size for a dimensionality.
func recordSize(dims int) int { return 4 + 8*dims }

// rowsPerPage returns how many fixed-size records fit a slotted page.
func rowsPerPage(dims int) int {
	return (PageSize - pageHeaderSize) / (recordSize(dims) + slotSize)
}

// CreateTable bulk-loads the dataset into a new heap file in dir and
// returns the opened table. poolFrames sizes the buffer pool; the limiter
// meters reads (bulk-load writes are not billed: initialization is
// once-per-dataset, mirroring the chunk store's Build).
func CreateTable(dir string, ds *dataset.Dataset, poolFrames int, limiter *iothrottle.Limiter) (*Table, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("dbms: refusing to create a table from an empty dataset")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dbms: create %s: %w", dir, err)
	}
	pager, err := CreatePager(filepath.Join(dir, tableDataFile), limiter)
	if err != nil {
		return nil, err
	}
	pool, err := NewBufferPool(pager, poolFrames)
	if err != nil {
		pager.Close()
		return nil, err
	}

	dims := ds.Dims()
	record := make([]byte, recordSize(dims))
	var (
		curID   PageID
		curPage *Page
	)
	var loadErr error
	ds.Scan(func(id dataset.RowID, row []float64) bool {
		encodeRecord(record, uint32(id), row)
		if curPage != nil {
			if _, err := curPage.Insert(record); err == nil {
				return true
			}
			// Page full: release it and open a new one.
			if err := pool.Unpin(curID, true); err != nil {
				loadErr = err
				return false
			}
			curPage = nil
		}
		curID, curPage, loadErr = pool.NewPage()
		if loadErr != nil {
			return false
		}
		if _, err := curPage.Insert(record); err != nil {
			loadErr = err
			return false
		}
		return true
	})
	if loadErr == nil && curPage != nil {
		loadErr = pool.Unpin(curID, true)
	}
	if loadErr == nil {
		loadErr = pool.FlushAll()
	}
	if loadErr != nil {
		pager.Close()
		return nil, loadErr
	}

	meta := tableMeta{
		FormatVersion: tableFormatVersion,
		Columns:       ds.Schema().Names(),
		RowCount:      ds.Len(),
		Pages:         pager.NumPages(),
		RowsPerPage:   rowsPerPage(dims),
	}
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		pager.Close()
		return nil, fmt.Errorf("dbms: marshal table meta: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, tableMetaFile), data, 0o644); err != nil {
		pager.Close()
		return nil, fmt.Errorf("dbms: write table meta: %w", err)
	}
	return &Table{dir: dir, meta: meta, pager: pager, pool: pool}, nil
}

// OpenTable opens an existing table read-only with a fresh buffer pool of
// poolFrames frames.
func OpenTable(dir string, poolFrames int, limiter *iothrottle.Limiter) (*Table, error) {
	data, err := os.ReadFile(filepath.Join(dir, tableMetaFile))
	if err != nil {
		return nil, fmt.Errorf("dbms: read table meta: %w", err)
	}
	var meta tableMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, fmt.Errorf("dbms: parse table meta: %w", err)
	}
	if meta.FormatVersion != tableFormatVersion {
		return nil, fmt.Errorf("dbms: table format %d, want %d", meta.FormatVersion, tableFormatVersion)
	}
	if len(meta.Columns) == 0 || meta.RowCount < 0 || meta.RowsPerPage <= 0 {
		return nil, fmt.Errorf("dbms: invalid table meta %+v", meta)
	}
	pager, err := OpenPager(filepath.Join(dir, tableDataFile), limiter)
	if err != nil {
		return nil, err
	}
	if pager.NumPages() != meta.Pages {
		pager.Close()
		return nil, fmt.Errorf("dbms: heap has %d pages, catalog says %d", pager.NumPages(), meta.Pages)
	}
	pool, err := NewBufferPool(pager, poolFrames)
	if err != nil {
		pager.Close()
		return nil, err
	}
	return &Table{dir: dir, meta: meta, pager: pager, pool: pool}, nil
}

// Close releases the table's file handle.
func (t *Table) Close() error { return t.pager.Close() }

// Dims returns the number of attributes.
func (t *Table) Dims() int { return len(t.meta.Columns) }

// Columns returns the attribute names.
func (t *Table) Columns() []string { return t.meta.Columns }

// RowCount returns the number of rows.
func (t *Table) RowCount() int { return t.meta.RowCount }

// Pages returns the number of heap pages.
func (t *Table) Pages() int { return t.meta.Pages }

// SizeBytes returns the heap file size, the denominator for memory-budget
// ratios.
func (t *Table) SizeBytes() int64 { return int64(t.meta.Pages) * PageSize }

// Pool exposes the buffer pool for statistics.
func (t *Table) Pool() *BufferPool { return t.pool }

// Scan streams every row in id order through the buffer pool, calling fn
// until it returns false. The row slice is reused across calls; callers
// must copy it to retain it. This is the exhaustive per-iteration search of
// the DBMS baseline. A canceled ctx aborts the scan at the next page
// boundary.
func (t *Table) Scan(ctx context.Context, fn func(id uint32, row []float64) bool) error {
	dims := t.Dims()
	row := make([]float64, dims)
	for pid := PageID(0); int(pid) < t.meta.Pages; pid++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		page, err := t.pool.Fetch(pid)
		if err != nil {
			return err
		}
		stop := false
		for slot := 0; slot < page.NumSlots(); slot++ {
			rec, err := page.Record(slot)
			if err != nil {
				t.pool.Unpin(pid, false)
				return fmt.Errorf("dbms: page %d: %w", pid, err)
			}
			id, err := decodeRecord(rec, row)
			if err != nil {
				t.pool.Unpin(pid, false)
				return fmt.Errorf("dbms: page %d slot %d: %w", pid, slot, err)
			}
			if !fn(id, row) {
				stop = true
				break
			}
		}
		if err := t.pool.Unpin(pid, false); err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// Get fetches one row by id using the fixed-width layout's arithmetic
// addressing (page = id / rowsPerPage, slot = id % rowsPerPage).
func (t *Table) Get(id uint32, dst []float64) error {
	if int(id) >= t.meta.RowCount {
		return fmt.Errorf("dbms: row %d out of range [0,%d)", id, t.meta.RowCount)
	}
	if len(dst) != t.Dims() {
		return fmt.Errorf("dbms: dst has %d dims, table has %d", len(dst), t.Dims())
	}
	pid := PageID(int(id) / t.meta.RowsPerPage)
	slot := int(id) % t.meta.RowsPerPage
	page, err := t.pool.Fetch(pid)
	if err != nil {
		return err
	}
	defer t.pool.Unpin(pid, false)
	rec, err := page.Record(slot)
	if err != nil {
		return err
	}
	gotID, err := decodeRecord(rec, dst)
	if err != nil {
		return err
	}
	if gotID != id {
		return fmt.Errorf("dbms: row %d resolved to record %d; heap is inconsistent", id, gotID)
	}
	return nil
}

// encodeRecord serializes (id, row) into dst, which must be
// recordSize(len(row)) bytes.
func encodeRecord(dst []byte, id uint32, row []float64) {
	binary.LittleEndian.PutUint32(dst[0:4], id)
	for i, v := range row {
		binary.LittleEndian.PutUint64(dst[4+8*i:], math.Float64bits(v))
	}
}

// decodeRecord parses a record into row (whose length fixes the expected
// dimensionality) and returns the row id.
func decodeRecord(rec []byte, row []float64) (uint32, error) {
	if len(rec) != recordSize(len(row)) {
		return 0, fmt.Errorf("dbms: record is %d bytes, want %d", len(rec), recordSize(len(row)))
	}
	id := binary.LittleEndian.Uint32(rec[0:4])
	for i := range row {
		row[i] = math.Float64frombits(binary.LittleEndian.Uint64(rec[4+8*i:]))
	}
	return id, nil
}
