package dbms

import (
	"fmt"
	"io"
	"os"

	"github.com/uei-db/uei/internal/iothrottle"
)

// Pager performs raw page I/O against one file, metering reads through the
// shared bandwidth limiter. It has no cache; BufferPool sits on top.
type Pager struct {
	f       *os.File
	pages   int
	limiter *iothrottle.Limiter
	// readOnly guards against writes after Open (stores are immutable once
	// built, like the chunk store).
	readOnly bool

	pagesRead    int64
	pagesWritten int64
}

// CreatePager creates a new, empty page file, truncating any existing one.
func CreatePager(path string, limiter *iothrottle.Limiter) (*Pager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dbms: create page file %s: %w", path, err)
	}
	return &Pager{f: f, limiter: limiter}, nil
}

// OpenPager opens an existing page file read-only.
func OpenPager(path string, limiter *iothrottle.Limiter) (*Pager, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dbms: open page file %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("dbms: stat page file %s: %w", path, err)
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("dbms: page file %s has size %d, not a multiple of %d", path, st.Size(), PageSize)
	}
	return &Pager{f: f, pages: int(st.Size() / PageSize), limiter: limiter, readOnly: true}, nil
}

// NumPages returns the number of pages in the file.
func (p *Pager) NumPages() int { return p.pages }

// AllocatePage appends a fresh page and returns its id. Only valid on
// writable pagers.
func (p *Pager) AllocatePage() (PageID, error) {
	if p.readOnly {
		return 0, fmt.Errorf("dbms: allocate on read-only pager")
	}
	id := PageID(p.pages)
	p.pages++
	return id, nil
}

// ReadPage fills dst with the page's on-disk image, billing the read.
func (p *Pager) ReadPage(id PageID, dst *Page) error {
	if int(id) >= p.pages {
		return fmt.Errorf("dbms: page %d out of range [0,%d)", id, p.pages)
	}
	p.limiter.Acquire(PageSize)
	n, err := p.f.ReadAt(dst.buf[:], int64(id)*PageSize)
	if err != nil && err != io.EOF {
		return fmt.Errorf("dbms: read page %d: %w", id, err)
	}
	if n != PageSize {
		return fmt.Errorf("dbms: short read of page %d: %d bytes", id, n)
	}
	p.pagesRead++
	return nil
}

// WritePage persists the page image. Only valid on writable pagers.
func (p *Pager) WritePage(id PageID, src *Page) error {
	if p.readOnly {
		return fmt.Errorf("dbms: write on read-only pager")
	}
	if int(id) >= p.pages {
		return fmt.Errorf("dbms: page %d out of range [0,%d)", id, p.pages)
	}
	if _, err := p.f.WriteAt(src.buf[:], int64(id)*PageSize); err != nil {
		return fmt.Errorf("dbms: write page %d: %w", id, err)
	}
	p.pagesWritten++
	return nil
}

// Sync flushes the file to stable storage.
func (p *Pager) Sync() error {
	if p.readOnly {
		return nil
	}
	if err := p.f.Sync(); err != nil {
		return fmt.Errorf("dbms: sync: %w", err)
	}
	return nil
}

// Close releases the file handle.
func (p *Pager) Close() error {
	if err := p.f.Close(); err != nil {
		return fmt.Errorf("dbms: close page file: %w", err)
	}
	return nil
}

// Stats returns cumulative page I/O counts.
func (p *Pager) Stats() (read, written int64) { return p.pagesRead, p.pagesWritten }
