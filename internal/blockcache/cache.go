// Package blockcache is a budget-accounted, concurrency-safe cache of
// decoded chunks. It sits between the chunk store's disk/CRC/decode path
// and every consumer (session views, the ordered read pipeline, the
// prefetcher) so that a hot chunk is read from secondary storage and
// decoded at most once no matter how many concurrent sessions want it —
// the multi-session analogue of the §3.1 observation that per-iteration
// latency is dominated by rebuilding cells from disk-resident chunks.
//
// Three mechanisms keep the hot path cheap:
//
//   - SIEVE eviction (a CLOCK variant): hits only flip a visited bit, so
//     there is no per-hit list surgery the way LRU requires; the eviction
//     hand sweeps from the oldest entry toward the newest, clearing
//     visited bits and removing the first unvisited entry it meets.
//   - Single-flight loads: concurrent misses for the same key share one
//     disk read. The first caller becomes the leader; the rest wait on its
//     result. A leader that fails with its own context's cancellation does
//     not poison the waiters — any waiter whose context is still live
//     retries the load itself.
//   - A memcache.Budget ledger: every resident value is reserved against a
//     byte budget, which the serving layer's arbiter can Resize alongside
//     session shares; shrinking evicts immediately, so the cache yields
//     memory to sessions under admission pressure and reclaims it later.
//
// Values are shared by reference between all callers: anything returned by
// GetOrLoad must be treated as immutable.
package blockcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/uei-db/uei/internal/memcache"
	"github.com/uei-db/uei/internal/obs"
)

// LoadFunc produces the value for a missing key plus its resident byte
// size (the amount reserved against the cache budget while it stays
// cached). It runs outside the cache lock.
type LoadFunc[V any] func(ctx context.Context) (V, int64, error)

// Cache is a SIEVE-evicting, single-flight, byte-budgeted cache. The zero
// value is not usable; construct with New.
type Cache[V any] struct {
	mu      sync.Mutex
	budget  *memcache.Budget
	entries map[string]*node[V]
	// head is the most recently inserted entry, tail the oldest; hand is
	// SIEVE's eviction cursor, sweeping tail -> head and wrapping.
	head, tail, hand *node[V]
	flights          map[string]*flight[V]

	// Cumulative activity counters (atomics, so Stats is lock-free and
	// callable from metrics endpoints while loads are in flight).
	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64

	// Observability instruments (nil until Instrument; nil-safe no-ops).
	mHits     *obs.Counter
	mMisses   *obs.Counter
	mEvict    *obs.Counter
	mCoalesce *obs.Counter
	gBytes    *obs.Gauge
	gChunks   *obs.Gauge
}

// node is one resident entry on the SIEVE list.
type node[V any] struct {
	key        string
	val        V
	size       int64
	visited    bool
	prev, next *node[V] // prev is toward head (newer), next toward tail (older)
}

// flight is one in-progress load other callers can wait on.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New builds a cache over the given byte-budget ledger. The ledger must be
// private to the cache: eviction assumes every reserved byte is one the
// cache itself can release.
func New[V any](budget *memcache.Budget) (*Cache[V], error) {
	if budget == nil {
		return nil, fmt.Errorf("blockcache: nil budget")
	}
	return &Cache[V]{
		budget:  budget,
		entries: make(map[string]*node[V]),
		flights: make(map[string]*flight[V]),
	}, nil
}

// Instrument registers the cache's metrics: blockcache_hits_total,
// blockcache_misses_total, blockcache_evictions_total,
// blockcache_coalesced_total (misses that shared another caller's
// in-flight read), and the residency gauges blockcache_resident_bytes and
// blockcache_resident_chunks.
func (c *Cache[V]) Instrument(reg *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mHits = reg.Counter("blockcache_hits_total")
	c.mMisses = reg.Counter("blockcache_misses_total")
	c.mEvict = reg.Counter("blockcache_evictions_total")
	c.mCoalesce = reg.Counter("blockcache_coalesced_total")
	c.gBytes = reg.Gauge("blockcache_resident_bytes")
	c.gChunks = reg.Gauge("blockcache_resident_chunks")
	c.gBytes.SetInt(c.budget.Used())
	c.gChunks.SetInt(int64(len(c.entries)))
}

// getStats records how one GetOrLoad was served, for span annotation.
type getStats struct {
	hit       bool
	coalesced bool
}

// GetOrLoad returns the cached value for key, or loads it with load. All
// concurrent callers missing on the same key share one load; a canceled
// ctx aborts the wait (and an owned load) with ctx.Err(). The returned
// value is shared with every other caller and must not be mutated.
//
// On a traced context the lookup is wrapped in a "bcache_get" span with
// outcome hit/miss/error (a coalesced miss carries the coalesced attr);
// the load callback then runs under that span, so the disk read it
// triggers nests beneath it in the trace.
func (c *Cache[V]) GetOrLoad(ctx context.Context, key string, load LoadFunc[V]) (V, error) {
	if obs.SpanFromContext(ctx) == nil {
		return c.getOrLoad(ctx, key, load, nil)
	}
	sctx, span := obs.StartSpan(ctx, "bcache_get")
	var st getStats
	v, err := c.getOrLoad(sctx, key, load, &st)
	switch {
	case err != nil:
		span.SetOutcome("error")
	case st.hit:
		span.SetOutcome("hit")
	default:
		span.SetOutcome("miss")
	}
	var attrs map[string]float64
	if st.coalesced {
		attrs = map[string]float64{"coalesced": 1}
	}
	span.End(attrs)
	return v, err
}

// getOrLoad is the untraced core of GetOrLoad. st, when non-nil, records
// how the call was served.
func (c *Cache[V]) getOrLoad(ctx context.Context, key string, load LoadFunc[V], st *getStats) (V, error) {
	var zero V
	for {
		c.mu.Lock()
		if n, ok := c.entries[key]; ok {
			n.visited = true
			v := n.val
			c.mu.Unlock()
			c.hits.Add(1)
			c.mHits.Inc()
			if st != nil {
				st.hit = true
			}
			return v, nil
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			c.coalesced.Add(1)
			c.mCoalesce.Inc()
			if st != nil {
				st.coalesced = true
			}
			select {
			case <-f.done:
			case <-ctx.Done():
				return zero, ctx.Err()
			}
			if f.err == nil {
				return f.val, nil
			}
			if err := ctx.Err(); err != nil {
				return zero, err
			}
			// The leader's failure may be private to its own context (it
			// was canceled while we were not); retry the load ourselves
			// rather than inheriting its cancellation.
			if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
				continue
			}
			return zero, f.err
		}
		f := &flight[V]{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()

		c.misses.Add(1)
		c.mMisses.Inc()
		v, size, err := load(ctx)
		f.val, f.err = v, err
		// Removing the flight and inserting the value happen under one
		// lock acquisition so no caller can slip between them and start a
		// duplicate load for a value that is about to be resident.
		c.mu.Lock()
		delete(c.flights, key)
		if err == nil {
			c.insertLocked(key, v, size)
		}
		c.mu.Unlock()
		close(f.done)
		if err != nil {
			return zero, err
		}
		return v, nil
	}
}

// insertLocked makes a loaded value resident, evicting until its byte size
// fits the budget. A value larger than the entire budget is simply not
// cached — the load already served the caller.
func (c *Cache[V]) insertLocked(key string, v V, size int64) {
	if _, ok := c.entries[key]; ok {
		return
	}
	if size < 0 {
		size = 0
	}
	for c.budget.Reserve(size) != nil {
		if !c.evictOneLocked() {
			return
		}
	}
	n := &node[V]{key: key, val: v, size: size}
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
	c.entries[key] = n
	c.publishResidencyLocked()
}

// evictOneLocked runs one step of the SIEVE hand: starting at the cursor
// (or the oldest entry), clear visited bits until an unvisited entry is
// found, and evict it. Returns false when the cache is empty.
func (c *Cache[V]) evictOneLocked() bool {
	if len(c.entries) == 0 {
		return false
	}
	n := c.hand
	if n == nil {
		n = c.tail
	}
	for n.visited {
		n.visited = false
		n = n.prev
		if n == nil {
			n = c.tail
		}
	}
	c.hand = n.prev // may be nil: the hand wraps to the tail next sweep
	c.removeLocked(n)
	c.evictions.Add(1)
	c.mEvict.Inc()
	return true
}

// removeLocked unlinks a node and returns its bytes to the budget.
func (c *Cache[V]) removeLocked(n *node[V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	if c.hand == n {
		c.hand = n.prev
	}
	delete(c.entries, n.key)
	c.budget.Release(n.size)
	c.publishResidencyLocked()
}

// publishResidencyLocked refreshes the residency gauges.
func (c *Cache[V]) publishResidencyLocked() {
	c.gBytes.SetInt(c.budget.Used())
	c.gChunks.SetInt(int64(len(c.entries)))
}

// Resize changes the cache's byte capacity in place and evicts immediately
// until residency fits — this is how the serving layer's arbiter grows and
// shrinks the cache's share alongside session budgets. Capacities below
// one byte clamp to one, which empties the cache and effectively disables
// it until the next grow.
func (c *Cache[V]) Resize(capacity int64) error {
	if capacity < 1 {
		capacity = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.budget.Resize(capacity); err != nil {
		return err
	}
	for c.budget.Available() < 0 {
		if !c.evictOneLocked() {
			break
		}
	}
	return nil
}

// Flush evicts every resident entry (in-flight loads are unaffected).
func (c *Cache[V]) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.evictOneLocked() {
	}
}

// Contains reports whether key is resident (without touching its visited
// bit; for tests and diagnostics).
func (c *Cache[V]) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Len returns the number of resident entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// ResidentBytes returns the bytes currently reserved by resident entries.
func (c *Cache[V]) ResidentBytes() int64 { return c.budget.Used() }

// Capacity returns the cache's current byte capacity.
func (c *Cache[V]) Capacity() int64 { return c.budget.Capacity() }

// Stats is a point-in-time summary of cache activity.
type Stats struct {
	Hits          int64
	Misses        int64
	Coalesced     int64
	Evictions     int64
	ResidentBytes int64
	ResidentLen   int
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the activity counters. Safe concurrent with loads.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Coalesced:     c.coalesced.Load(),
		Evictions:     c.evictions.Load(),
		ResidentBytes: c.budget.Used(),
		ResidentLen:   n,
	}
}
