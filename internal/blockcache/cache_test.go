package blockcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/uei-db/uei/internal/memcache"
	"github.com/uei-db/uei/internal/obs"
)

func newCache(t testing.TB, capacity int64) *Cache[string] {
	t.Helper()
	b, err := memcache.NewBudget(capacity)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New[string](b)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// constLoad returns a loader producing val with the given size and
// counting its invocations.
func constLoad(val string, size int64, calls *atomic.Int64) LoadFunc[string] {
	return func(context.Context) (string, int64, error) {
		if calls != nil {
			calls.Add(1)
		}
		return val, size, nil
	}
}

func TestHitMissAndSharing(t *testing.T) {
	c := newCache(t, 1000)
	ctx := context.Background()
	var calls atomic.Int64
	v, err := c.GetOrLoad(ctx, "a", constLoad("va", 10, &calls))
	if err != nil || v != "va" {
		t.Fatalf("GetOrLoad = %q, %v", v, err)
	}
	v, err = c.GetOrLoad(ctx, "a", constLoad("never", 10, &calls))
	if err != nil || v != "va" {
		t.Fatalf("second GetOrLoad = %q, %v", v, err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("loader ran %d times, want 1", got)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.ResidentBytes != 10 || s.ResidentLen != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if r := s.HitRate(); r != 0.5 {
		t.Fatalf("hit rate = %g, want 0.5", r)
	}
}

func TestSieveEvictionPrefersUnvisited(t *testing.T) {
	c := newCache(t, 30) // fits three 10-byte values
	ctx := context.Background()
	for _, k := range []string{"a", "b", "c"} {
		if _, err := c.GetOrLoad(ctx, k, constLoad("v"+k, 10, nil)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a and c: their visited bits protect them for one sweep.
	for _, k := range []string{"a", "c"} {
		if _, err := c.GetOrLoad(ctx, k, constLoad("x", 10, nil)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.GetOrLoad(ctx, "d", constLoad("vd", 10, nil)); err != nil {
		t.Fatal(err)
	}
	if c.Contains("b") {
		t.Fatal("b (unvisited) survived while visited entries were evictable")
	}
	for _, k := range []string{"a", "c", "d"} {
		if !c.Contains(k) {
			t.Fatalf("%s evicted, want resident", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
}

func TestOversizedValueNotCached(t *testing.T) {
	c := newCache(t, 50)
	ctx := context.Background()
	if _, err := c.GetOrLoad(ctx, "a", constLoad("va", 10, nil)); err != nil {
		t.Fatal(err)
	}
	v, err := c.GetOrLoad(ctx, "big", constLoad("huge", 500, nil))
	if err != nil || v != "huge" {
		t.Fatalf("oversized load = %q, %v", v, err)
	}
	if c.Contains("big") {
		t.Fatal("oversized value should not be resident")
	}
	if c.Len() != 0 {
		// The failed fit evicted everything while trying; that is the
		// documented cost of an oversized load.
		t.Fatalf("len = %d after oversized insert attempt", c.Len())
	}
}

func TestResizeShrinkEvicts(t *testing.T) {
	c := newCache(t, 100)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, err := c.GetOrLoad(ctx, k, constLoad(k, 20, nil)); err != nil {
			t.Fatal(err)
		}
	}
	if c.ResidentBytes() != 100 {
		t.Fatalf("resident = %d, want 100", c.ResidentBytes())
	}
	if err := c.Resize(40); err != nil {
		t.Fatal(err)
	}
	if got := c.ResidentBytes(); got > 40 {
		t.Fatalf("resident = %d after shrink to 40", got)
	}
	if got := c.Capacity(); got != 40 {
		t.Fatalf("capacity = %d, want 40", got)
	}
	// Growing back does not resurrect anything but accepts new entries.
	if err := c.Resize(100); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetOrLoad(ctx, "new", constLoad("new", 20, nil)); err != nil {
		t.Fatal(err)
	}
	if !c.Contains("new") {
		t.Fatal("new entry not resident after grow")
	}
}

func TestResizeBelowOneDisables(t *testing.T) {
	c := newCache(t, 100)
	ctx := context.Background()
	if _, err := c.GetOrLoad(ctx, "a", constLoad("va", 10, nil)); err != nil {
		t.Fatal(err)
	}
	if err := c.Resize(0); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d after resize to zero", c.Len())
	}
	if _, err := c.GetOrLoad(ctx, "b", constLoad("vb", 10, nil)); err != nil {
		t.Fatal(err)
	}
	if c.Contains("b") {
		t.Fatal("value cached while effectively disabled")
	}
}

func TestFlush(t *testing.T) {
	c := newCache(t, 100)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, err := c.GetOrLoad(ctx, k, constLoad(k, 10, nil)); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	if c.Len() != 0 || c.ResidentBytes() != 0 {
		t.Fatalf("len=%d resident=%d after flush", c.Len(), c.ResidentBytes())
	}
}

func TestLoadErrorNotCachedAndRetried(t *testing.T) {
	c := newCache(t, 100)
	ctx := context.Background()
	boom := errors.New("boom")
	_, err := c.GetOrLoad(ctx, "a", func(context.Context) (string, int64, error) {
		return "", 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Contains("a") {
		t.Fatal("failed load cached")
	}
	v, err := c.GetOrLoad(ctx, "a", constLoad("ok", 10, nil))
	if err != nil || v != "ok" {
		t.Fatalf("retry = %q, %v", v, err)
	}
}

func TestSingleFlightCoalesces(t *testing.T) {
	c := newCache(t, 1000)
	ctx := context.Background()
	const waiters = 64
	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once

	var wg sync.WaitGroup
	results := make([]string, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.GetOrLoad(ctx, "hot", func(context.Context) (string, int64, error) {
				calls.Add(1)
				once.Do(func() { close(started) })
				<-release
				return "shared", 8, nil
			})
			results[i], errs[i] = v, err
		}(i)
	}
	<-started
	close(release)
	wg.Wait()
	for i := range results {
		if errs[i] != nil || results[i] != "shared" {
			t.Fatalf("waiter %d: %q, %v", i, results[i], errs[i])
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("loader ran %d times, want 1", got)
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Fatalf("misses = %d, want 1", s.Misses)
	}
	// Every non-leader either joined the in-flight load (coalesced) or
	// arrived after it completed (hit); none may have loaded again.
	if s.Coalesced+s.Hits != waiters-1 {
		t.Fatalf("coalesced %d + hits %d != %d", s.Coalesced, s.Hits, waiters-1)
	}
}

func TestWaiterSurvivesLeaderCancellation(t *testing.T) {
	c := newCache(t, 1000)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	inLoad := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := c.GetOrLoad(leaderCtx, "k", func(ctx context.Context) (string, int64, error) {
			close(inLoad)
			<-ctx.Done()
			return "", 0, ctx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader err = %v, want canceled", err)
		}
	}()
	<-inLoad

	wg.Add(1)
	var waiterVal string
	var waiterErr error
	waiterJoined := make(chan struct{})
	go func() {
		defer wg.Done()
		// This loader only runs on the retry after the leader's
		// cancellation propagates.
		waiterVal, waiterErr = c.GetOrLoad(context.Background(), "k",
			func(context.Context) (string, int64, error) {
				return "recovered", 4, nil
			})
		close(waiterJoined)
	}()
	cancelLeader()
	<-waiterJoined
	wg.Wait()
	if waiterErr != nil || waiterVal != "recovered" {
		t.Fatalf("waiter = %q, %v; want recovered", waiterVal, waiterErr)
	}
}

func TestWaiterContextCancellation(t *testing.T) {
	c := newCache(t, 1000)
	inLoad := make(chan struct{})
	release := make(chan struct{})
	defer close(release)

	go func() {
		_, _ = c.GetOrLoad(context.Background(), "k", func(context.Context) (string, int64, error) {
			close(inLoad)
			<-release
			return "v", 1, nil
		})
	}()
	<-inLoad
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.GetOrLoad(ctx, "k", constLoad("x", 1, nil))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want canceled", err)
	}
}

func TestInstrumentedCounters(t *testing.T) {
	c := newCache(t, 100)
	reg := obs.NewRegistry()
	c.Instrument(reg)
	ctx := context.Background()
	if _, err := c.GetOrLoad(ctx, "a", constLoad("va", 10, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetOrLoad(ctx, "a", constLoad("va", 10, nil)); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if s.Counters["blockcache_hits_total"] != 1 || s.Counters["blockcache_misses_total"] != 1 {
		t.Fatalf("counters = %v", s.Counters)
	}
	if s.Gauges["blockcache_resident_bytes"] != 10 || s.Gauges["blockcache_resident_chunks"] != 1 {
		t.Fatalf("gauges = %v", s.Gauges)
	}
}

// TestConcurrentStress hammers a small cache from many goroutines with a
// key space larger than capacity, so hits, misses, coalesced waits,
// evictions, and resizes all interleave. Run with -race.
func TestConcurrentStress(t *testing.T) {
	c := newCache(t, 200) // fits ~5 of 16 keys
	ctx := context.Background()
	const (
		goroutines = 16
		iters      = 300
		keys       = 16
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%keys)
				v, err := c.GetOrLoad(ctx, k, constLoad("v-"+k, 40, nil))
				if err != nil {
					t.Errorf("GetOrLoad(%s): %v", k, err)
					return
				}
				if v != "v-"+k {
					t.Errorf("GetOrLoad(%s) = %q", k, v)
					return
				}
				if i%100 == 50 {
					_ = c.Resize(int64(100 + (g*i)%200))
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.ResidentBytes(); got > c.Capacity() {
		t.Fatalf("resident %d exceeds capacity %d", got, c.Capacity())
	}
}
