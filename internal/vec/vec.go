// Package vec provides small d-dimensional vector and box utilities used
// throughout the UEI codebase: points, axis-aligned boxes, and distance
// metrics. All operations treat vectors as dense []float64 of equal length;
// helpers panic on dimensionality mismatch because such a mismatch is always
// a programming error, never a data error.
package vec

import (
	"fmt"
	"math"
)

// Point is a position in d-dimensional space.
type Point = []float64

// Clone returns a copy of p that shares no storage with it.
func Clone(p Point) Point {
	out := make(Point, len(p))
	copy(out, p)
	return out
}

// Equal reports whether a and b have the same dimensionality and identical
// coordinates.
func Equal(a, b Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// L2 returns the Euclidean distance between a and b.
func L2(a, b Point) float64 {
	return math.Sqrt(SquaredL2(a, b))
}

// SquaredL2 returns the squared Euclidean distance between a and b. It is
// the preferred metric for nearest-neighbor ranking because it avoids the
// square root while preserving order.
func SquaredL2(a, b Point) float64 {
	checkDims(len(a), len(b))
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// L1 returns the Manhattan distance between a and b.
func L1(a, b Point) float64 {
	checkDims(len(a), len(b))
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Linf returns the Chebyshev (maximum-coordinate) distance between a and b.
func Linf(a, b Point) float64 {
	checkDims(len(a), len(b))
	var s float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > s {
			s = d
		}
	}
	return s
}

// Box is an axis-aligned d-dimensional box, inclusive on both ends:
// a point p is inside iff Min[i] <= p[i] <= Max[i] for every dimension i.
type Box struct {
	Min Point
	Max Point
}

// NewBox returns a box with copies of min and max. It panics if the two
// points disagree in dimensionality or if min exceeds max anywhere.
func NewBox(min, max Point) Box {
	checkDims(len(min), len(max))
	for i := range min {
		if min[i] > max[i] {
			panic(fmt.Sprintf("vec: inverted box on dimension %d: min %g > max %g", i, min[i], max[i]))
		}
	}
	return Box{Min: Clone(min), Max: Clone(max)}
}

// Dims returns the dimensionality of the box.
func (b Box) Dims() int { return len(b.Min) }

// Contains reports whether p lies inside b (inclusive bounds).
func (b Box) Contains(p Point) bool {
	checkDims(len(b.Min), len(p))
	for i := range p {
		if p[i] < b.Min[i] || p[i] > b.Max[i] {
			return false
		}
	}
	return true
}

// Center returns the midpoint of the box.
func (b Box) Center() Point {
	c := make(Point, len(b.Min))
	for i := range c {
		c[i] = b.Min[i] + (b.Max[i]-b.Min[i])/2
	}
	return c
}

// Widths returns the per-dimension extents of the box.
func (b Box) Widths() Point {
	w := make(Point, len(b.Min))
	for i := range w {
		w[i] = b.Max[i] - b.Min[i]
	}
	return w
}

// Volume returns the product of the box extents. A degenerate box has
// volume zero.
func (b Box) Volume() float64 {
	v := 1.0
	for i := range b.Min {
		v *= b.Max[i] - b.Min[i]
	}
	return v
}

// Intersects reports whether the two boxes overlap (touching counts).
func (b Box) Intersects(o Box) bool {
	checkDims(len(b.Min), len(o.Min))
	for i := range b.Min {
		if b.Max[i] < o.Min[i] || o.Max[i] < b.Min[i] {
			return false
		}
	}
	return true
}

// Clamp returns a copy of p with each coordinate clamped into the box.
func (b Box) Clamp(p Point) Point {
	checkDims(len(b.Min), len(p))
	out := make(Point, len(p))
	for i := range p {
		out[i] = math.Max(b.Min[i], math.Min(b.Max[i], p[i]))
	}
	return out
}

func checkDims(a, b int) {
	if a != b {
		panic(fmt.Sprintf("vec: dimensionality mismatch: %d vs %d", a, b))
	}
}
