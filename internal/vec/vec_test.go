package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCloneIndependence(t *testing.T) {
	p := Point{1, 2, 3}
	q := Clone(p)
	q[0] = 99
	if p[0] != 1 {
		t.Fatalf("Clone shares storage: p = %v", p)
	}
	if !Equal(p, Point{1, 2, 3}) {
		t.Fatalf("original mutated: %v", p)
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Point
		want bool
	}{
		{Point{1, 2}, Point{1, 2}, true},
		{Point{1, 2}, Point{1, 3}, false},
		{Point{1, 2}, Point{1, 2, 3}, false},
		{Point{}, Point{}, true},
	}
	for _, c := range cases {
		if got := Equal(c.a, c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDistances(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	if got := L2(a, b); got != 5 {
		t.Errorf("L2 = %g, want 5", got)
	}
	if got := SquaredL2(a, b); got != 25 {
		t.Errorf("SquaredL2 = %g, want 25", got)
	}
	if got := L1(a, b); got != 7 {
		t.Errorf("L1 = %g, want 7", got)
	}
	if got := Linf(a, b); got != 4 {
		t.Errorf("Linf = %g, want 4", got)
	}
}

func TestDistanceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	L2(Point{1}, Point{1, 2})
}

func TestBoxContains(t *testing.T) {
	b := NewBox(Point{0, 0}, Point{1, 2})
	if !b.Contains(Point{0, 0}) || !b.Contains(Point{1, 2}) {
		t.Error("box bounds should be inclusive")
	}
	if !b.Contains(Point{0.5, 1}) {
		t.Error("interior point should be contained")
	}
	if b.Contains(Point{1.0001, 1}) || b.Contains(Point{-0.0001, 1}) {
		t.Error("exterior point should not be contained")
	}
}

func TestBoxGeometry(t *testing.T) {
	b := NewBox(Point{0, 0}, Point{2, 4})
	if c := b.Center(); !Equal(c, Point{1, 2}) {
		t.Errorf("Center = %v", c)
	}
	if w := b.Widths(); !Equal(w, Point{2, 4}) {
		t.Errorf("Widths = %v", w)
	}
	if v := b.Volume(); v != 8 {
		t.Errorf("Volume = %g", v)
	}
	if b.Dims() != 2 {
		t.Errorf("Dims = %d", b.Dims())
	}
}

func TestBoxIntersects(t *testing.T) {
	a := NewBox(Point{0, 0}, Point{1, 1})
	cases := []struct {
		b    Box
		want bool
	}{
		{NewBox(Point{0.5, 0.5}, Point{2, 2}), true},
		{NewBox(Point{1, 1}, Point{2, 2}), true}, // touching corners count
		{NewBox(Point{1.5, 1.5}, Point{2, 2}), false},
		{NewBox(Point{-1, -1}, Point{2, 2}), true}, // containment counts
	}
	for i, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("case %d: Intersects not symmetric", i)
		}
	}
}

func TestBoxClamp(t *testing.T) {
	b := NewBox(Point{0, 0}, Point{1, 1})
	got := b.Clamp(Point{-5, 0.5})
	if !Equal(got, Point{0, 0.5}) {
		t.Errorf("Clamp = %v", got)
	}
	if !b.Contains(got) {
		t.Error("clamped point must lie inside the box")
	}
}

func TestInvertedBoxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inverted box")
		}
	}()
	NewBox(Point{1}, Point{0})
}

// randomPair builds two same-dimension points from the fuzzer's randomness.
func randomPair(r *rand.Rand) (Point, Point) {
	d := 1 + r.Intn(6)
	a := make(Point, d)
	b := make(Point, d)
	for i := 0; i < d; i++ {
		a[i] = r.NormFloat64() * 10
		b[i] = r.NormFloat64() * 10
	}
	return a, b
}

func TestQuickMetricProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	// Symmetry, non-negativity, identity and the L∞ ≤ L2 ≤ L1 chain.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomPair(r)
		l1, l2, linf := L1(a, b), L2(a, b), Linf(a, b)
		const eps = 1e-9
		if l1 < 0 || l2 < 0 || linf < 0 {
			return false
		}
		if math.Abs(L2(b, a)-l2) > eps || math.Abs(L1(b, a)-l1) > eps {
			return false
		}
		if L2(a, a) != 0 || Linf(a, a) != 0 {
			return false
		}
		return linf <= l2+eps && l2 <= l1+eps
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickBoxCenterContained(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomPair(r)
		min := make(Point, len(a))
		max := make(Point, len(a))
		for i := range a {
			min[i] = math.Min(a[i], b[i])
			max[i] = math.Max(a[i], b[i])
		}
		box := NewBox(min, max)
		return box.Contains(box.Center()) && box.Contains(box.Clamp(a)) && box.Contains(box.Clamp(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
