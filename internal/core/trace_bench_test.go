package core

import (
	"context"
	"io"
	"testing"

	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/obs"
)

// BenchmarkTracedStep measures the tracing overhead on the full sharded
// step, with the exact fixture of BenchmarkShardedStep/shards=4 so the two
// are directly comparable: trace=off is the nil-tracer untraced path (CI
// gates it against BenchmarkShardedStep to enforce "no measurable overhead
// when disabled"), trace=on emits a full step trace per iteration.
func BenchmarkTracedStep(b *testing.B) {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 4000, Seed: 21})
	if err != nil {
		b.Fatal(err)
	}
	bounds, err := ds.Bounds()
	if err != nil {
		b.Fatal(err)
	}
	model := learn.NewDWKNN(7, bounds.Widths())
	var X [][]float64
	var y []int
	for i := 0; i < 50; i++ {
		X = append(X, ds.CopyRow(dataset.RowID(i*(ds.Len()/50))))
		y = append(y, i%2)
	}
	if err := model.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, mode := range []string{"off", "on"} {
		b.Run("trace="+mode, func(b *testing.B) {
			dir := b.TempDir()
			if err := Build(dir, ds, BuildOptions{TargetChunkBytes: 16 * 1024, Shards: 4}); err != nil {
				b.Fatal(err)
			}
			opts := Options{MemoryBudgetBytes: 1 << 24, Workers: 4, Shards: 4}
			var tracer *obs.Tracer
			if mode == "on" {
				tracer = obs.NewTracer(io.Discard)
				opts.Tracer = tracer
			}
			idx, err := Open(ctx, dir, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer idx.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.InvalidateScores()
				sctx := ctx
				var root *obs.Span
				if tracer != nil {
					sctx = obs.ContextWithTrace(ctx, tracer.NewTrace())
					sctx, root = obs.StartSpan(sctx, "step")
				}
				if _, err := idx.EnsureRegion(sctx, model); err != nil {
					b.Fatal(err)
				}
				if root != nil {
					root.End(nil)
				}
			}
			if tracer != nil {
				if err := tracer.Err(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
