package core

import (
	"context"
	"sort"
	"testing"
	"time"

	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/memcache"
	"github.com/uei-db/uei/internal/oracle"
	"github.com/uei-db/uei/internal/vec"
)

// openTestIndex builds and opens a small index over sky data.
func openTestIndex(t *testing.T, n int, opts Options) (*Index, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: n, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Build(dir, ds, BuildOptions{TargetChunkBytes: 2048}); err != nil {
		t.Fatal(err)
	}
	if opts.MemoryBudgetBytes == 0 {
		opts.MemoryBudgetBytes = 1 << 20
	}
	idx, err := Open(context.Background(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(idx.Close)
	return idx, ds
}

// boundaryModel trains a DWKNN whose decision boundary crosses the data:
// positives inside a target region, negatives outside.
func boundaryModel(t *testing.T, ds *dataset.Dataset, region oracle.Region, nLabels int) learn.Classifier {
	t.Helper()
	bounds, err := ds.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	m := learn.NewDWKNN(5, bounds.Widths())
	var X [][]float64
	var y []int
	step := ds.Len() / nLabels
	if step < 1 {
		step = 1
	}
	for i := 0; i < ds.Len() && len(X) < nLabels; i += step {
		row := ds.CopyRow(dataset.RowID(i))
		X = append(X, row)
		if region.Contains(row) {
			y = append(y, learn.ClassPositive)
		} else {
			y = append(y, learn.ClassNegative)
		}
	}
	// Guarantee at least one positive: label the region center's nearest
	// tuple positive if none found.
	hasPos := false
	for _, label := range y {
		if label == learn.ClassPositive {
			hasPos = true
			break
		}
	}
	if !hasPos {
		ids := ds.Select(region.Box())
		if len(ids) == 0 {
			t.Fatal("region contains no tuples")
		}
		X = append(X, ds.CopyRow(ids[0]))
		y = append(y, learn.ClassPositive)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	return m
}

func testRegion(t *testing.T, ds *dataset.Dataset) oracle.Region {
	t.Helper()
	r, err := oracle.FindRegion(ds, 0.02, 0.5, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestOptionsValidation(t *testing.T) {
	ds, _ := dataset.GenerateSky(dataset.SkyConfig{N: 100, Seed: 1})
	dir := t.TempDir()
	if err := Build(dir, ds, BuildOptions{TargetChunkBytes: 2048}); err != nil {
		t.Fatal(err)
	}
	bad := []Options{
		{MemoryBudgetBytes: 0},
		{MemoryBudgetBytes: -5},
		{MemoryBudgetBytes: 100, SegmentsPerDim: -1},
		{MemoryBudgetBytes: 100, SampleSize: -1},
		{MemoryBudgetBytes: 100, LatencyThreshold: -time.Second},
	}
	for i, o := range bad {
		if _, err := Open(context.Background(), dir, o); err == nil {
			t.Errorf("case %d: expected error for %+v", i, o)
		}
	}
}

func TestOpenDefaults(t *testing.T) {
	idx, _ := openTestIndex(t, 400, Options{})
	// 5 dims x 5 segments: Table 1's 3125 symbolic index points.
	if idx.NumIndexPoints() != 3125 {
		t.Errorf("NumIndexPoints = %d, want 3125", idx.NumIndexPoints())
	}
	if idx.ResidentRegion() != memcache.NoRegion {
		t.Error("fresh index should have no resident region")
	}
	if idx.MeanCellBytes() <= 0 {
		t.Error("MeanCellBytes should be positive")
	}
}

func TestInitExplorationRespectsGamma(t *testing.T) {
	idx, _ := openTestIndex(t, 500, Options{SampleSize: 64, Seed: 5})
	if err := idx.InitExploration(context.Background()); err != nil {
		t.Fatal(err)
	}
	if idx.CandidateCount() != 64 {
		t.Errorf("cache holds %d tuples, want γ=64", idx.CandidateCount())
	}
	// Candidates stream sorted.
	var prev uint32
	first := true
	idx.Candidates(func(id uint32, row []float64) bool {
		if !first && id <= prev {
			t.Fatalf("candidates out of order: %d after %d", id, prev)
		}
		prev, first = id, false
		if len(row) != 5 {
			t.Fatalf("row has %d dims", len(row))
		}
		return true
	})
}

func TestInitExplorationDerivedGamma(t *testing.T) {
	budget := int64(200) * memcache.TupleBytes(5)
	idx, _ := openTestIndex(t, 5000, Options{MemoryBudgetBytes: budget, Seed: 2})
	if err := idx.InitExploration(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Derived γ is half the budget's tuple capacity.
	if got := idx.CandidateCount(); got != 100 {
		t.Errorf("derived γ cached %d tuples, want 100", got)
	}
}

func TestUpdateUncertaintyAndSelection(t *testing.T) {
	idx, ds := openTestIndex(t, 2000, Options{SampleSize: 100, Seed: 7})
	region := testRegion(t, ds)
	model := boundaryModel(t, ds, region, 200)
	if _, err := idx.MostUncertainCells(1); err == nil {
		t.Error("selection before UpdateUncertainty should fail")
	}
	if err := idx.UpdateUncertainty(context.Background(), model); err != nil {
		t.Fatal(err)
	}
	top, err := idx.MostUncertainCells(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatalf("top = %v", top)
	}
	// The top cell's uncertainty must be the global max.
	u0, err := idx.CellUncertainty(top[0])
	if err != nil {
		t.Fatal(err)
	}
	if u0 != idx.MaxUncertainty() {
		t.Errorf("top cell uncertainty %g, max %g", u0, idx.MaxUncertainty())
	}
	// Ordering is descending.
	for i := 1; i < len(top); i++ {
		ua, _ := idx.CellUncertainty(top[i-1])
		ub, _ := idx.CellUncertainty(top[i])
		if ua < ub {
			t.Errorf("top-k not descending at %d", i)
		}
	}
	// The most uncertain cell should lie near the decision boundary: its
	// center's distance to the region should be moderate, not extreme.
	center, err := idx.Grid().Center(top[0])
	if err != nil {
		t.Fatal(err)
	}
	if u0 > 0 {
		// With any informative model, a far-away random corner should be
		// less uncertain than the top cell.
		corner := vec.Clone(idx.Grid().Bounds().Min)
		uCorner, err := learn.Uncertainty(model, corner)
		if err != nil {
			t.Fatal(err)
		}
		if uCorner > u0 {
			t.Errorf("corner more uncertain (%g) than selected cell (%g) at %v", uCorner, u0, center)
		}
	}
	if _, err := idx.CellUncertainty(-1); err == nil {
		t.Error("bad cell id should fail")
	}
}

func TestEnsureRegionSyncSwap(t *testing.T) {
	idx, ds := openTestIndex(t, 2000, Options{SampleSize: 100, Seed: 9})
	if err := idx.InitExploration(context.Background()); err != nil {
		t.Fatal(err)
	}
	region := testRegion(t, ds)
	model := boundaryModel(t, ds, region, 150)
	cell, err := idx.EnsureRegion(context.Background(), model)
	if err != nil {
		t.Fatal(err)
	}
	if idx.ResidentRegion() != int(cell) {
		t.Errorf("resident %d, want %d", idx.ResidentRegion(), cell)
	}
	st := idx.Stats()
	if st.RegionSwaps != 1 {
		t.Errorf("RegionSwaps = %d", st.RegionSwaps)
	}
	if st.BytesRead == 0 {
		t.Error("no bytes read during region load")
	}
	// Loading the region added its tuples to the candidate pool; they must
	// actually lie in the cell's box.
	box, err := idx.Grid().CellBox(cell)
	if err != nil {
		t.Fatal(err)
	}
	regionRows := 0
	idx.Candidates(func(id uint32, row []float64) bool {
		if box.Contains(row) {
			regionRows++
		}
		return true
	})
	want := ds.CountIn(box)
	if regionRows < want/2 {
		t.Errorf("only %d candidates inside the loaded cell box; dataset has %d", regionRows, want)
	}
	// Same target again: no new swap.
	if _, err := idx.EnsureRegion(context.Background(), model); err != nil {
		t.Fatal(err)
	}
	if idx.Stats().RegionSwaps != 1 {
		t.Error("re-ensuring the same cell must not reload")
	}
}

func TestEnsureRegionSwapsWhenModelChanges(t *testing.T) {
	idx, ds := openTestIndex(t, 2000, Options{SampleSize: 50, Seed: 10})
	if err := idx.InitExploration(context.Background()); err != nil {
		t.Fatal(err)
	}
	region := testRegion(t, ds)
	m1 := boundaryModel(t, ds, region, 40)
	first, err := idx.EnsureRegion(context.Background(), m1)
	if err != nil {
		t.Fatal(err)
	}
	// A second, different model (trained on a different region) usually
	// shifts the most-uncertain cell; after InvalidateScores the index must
	// re-score and follow it.
	r2, err := oracle.FindRegion(ds, 0.05, 0.5, 99, 8)
	if err != nil {
		t.Fatal(err)
	}
	m2 := boundaryModel(t, ds, r2, 40)
	idx.InvalidateScores()
	second, err := idx.EnsureRegion(context.Background(), m2)
	if err != nil {
		t.Fatal(err)
	}
	if first != second && idx.Stats().RegionSwaps != 2 {
		t.Errorf("expected a second swap, stats = %+v", idx.Stats())
	}
	if idx.ResidentRegion() != int(second) {
		t.Error("resident region out of sync")
	}
}

func TestMarkLabeledEvicts(t *testing.T) {
	idx, _ := openTestIndex(t, 300, Options{SampleSize: 30, Seed: 11})
	if err := idx.InitExploration(context.Background()); err != nil {
		t.Fatal(err)
	}
	var victim uint32
	idx.Candidates(func(id uint32, row []float64) bool {
		victim = id
		return false
	})
	before := idx.CandidateCount()
	idx.MarkLabeled(victim)
	if idx.CandidateCount() != before-1 {
		t.Errorf("count %d, want %d", idx.CandidateCount(), before-1)
	}
	idx.Candidates(func(id uint32, row []float64) bool {
		if id == victim {
			t.Fatal("labeled tuple still among candidates")
		}
		return true
	})
}

func TestPrefetchPathEndToEnd(t *testing.T) {
	idx, ds := openTestIndex(t, 2000, Options{
		SampleSize:       80,
		Seed:             12,
		EnablePrefetch:   true,
		LatencyThreshold: time.Millisecond,
	})
	if err := idx.InitExploration(context.Background()); err != nil {
		t.Fatal(err)
	}
	region := testRegion(t, ds)
	model := boundaryModel(t, ds, region, 120)
	// First ensure: nothing resident, so it must block and install.
	cell, err := idx.EnsureRegion(context.Background(), model)
	if err != nil {
		t.Fatal(err)
	}
	if idx.ResidentRegion() != int(cell) {
		t.Fatal("first region not installed")
	}
	// Force a different target by retraining on another region; the swap
	// may defer for up to θ iterations but must eventually land.
	r2, err := oracle.FindRegion(ds, 0.05, 0.5, 77, 8)
	if err != nil {
		t.Fatal(err)
	}
	m2 := boundaryModel(t, ds, r2, 120)
	idx.InvalidateScores()
	if err := idx.UpdateUncertainty(context.Background(), m2); err != nil {
		t.Fatal(err)
	}
	top, _ := idx.MostUncertainCells(1)
	target := top[0]
	if int(target) == idx.ResidentRegion() {
		t.Skip("model change did not move the target cell")
	}
	for i := 0; i < 50; i++ {
		got, err := idx.EnsureRegion(context.Background(), m2)
		if err != nil {
			t.Fatal(err)
		}
		if got == target {
			if idx.ResidentRegion() != int(target) {
				t.Fatal("returned target but did not install it")
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("swap never completed under prefetch policy")
}

func TestResultRetrievalMatchesOracle(t *testing.T) {
	idx, ds := openTestIndex(t, 3000, Options{SampleSize: 100, Seed: 13})
	region := testRegion(t, ds)
	// A well-trained model should retrieve roughly the oracle set.
	model := boundaryModel(t, ds, region, 600)
	got, err := idx.ResultRetrieval(context.Background(), model, 0)
	if err != nil {
		t.Fatal(err)
	}
	// got must be sorted unique.
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Error("retrieval not sorted")
	}
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			t.Fatal("retrieval contains duplicates")
		}
	}
	want := ds.Select(region.Box())
	// Compare as sets; demand substantial overlap (the model is imperfect).
	wantSet := make(map[uint32]bool, len(want))
	for _, id := range want {
		wantSet[uint32(id)] = true
	}
	hit := 0
	for _, id := range got {
		if wantSet[id] {
			hit++
		}
	}
	if len(want) > 0 && float64(hit)/float64(len(want)) < 0.5 {
		t.Errorf("retrieval recall %.2f too low (%d/%d)", float64(hit)/float64(len(want)), hit, len(want))
	}
	// Pruned retrieval must be a subset of exact retrieval and much
	// cheaper (fewer cells loaded).
	idx.Store().ResetIOStats()
	pruned, err := idx.ResultRetrieval(context.Background(), model, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	prunedSet := make(map[uint32]bool, len(pruned))
	for _, id := range pruned {
		prunedSet[id] = true
	}
	gotSet := make(map[uint32]bool, len(got))
	for _, id := range got {
		gotSet[id] = true
	}
	for id := range prunedSet {
		if !gotSet[id] {
			t.Fatalf("pruned retrieval produced id %d absent from exact retrieval", id)
		}
	}
	if _, err := idx.ResultRetrieval(context.Background(), model, 0.7); err == nil {
		t.Error("cutoff >= 0.5 should fail")
	}
}

func TestStatsEntriesVisited(t *testing.T) {
	idx, ds := openTestIndex(t, 1500, Options{SampleSize: 40, Seed: 14})
	if err := idx.InitExploration(context.Background()); err != nil {
		t.Fatal(err)
	}
	region := testRegion(t, ds)
	model := boundaryModel(t, ds, region, 100)
	if _, err := idx.EnsureRegion(context.Background(), model); err != nil {
		t.Fatal(err)
	}
	st := idx.Stats()
	if st.EntriesVisited <= 0 {
		t.Error("EntriesVisited not counted")
	}
	if st.PeakMemory <= 0 {
		t.Error("PeakMemory not tracked")
	}
	// The paper's key claim: loading one cell visits far fewer entries
	// than the dataset holds across all dimensions (e <<< n).
	if st.EntriesVisited >= ds.Len()*ds.Dims() {
		t.Errorf("region load visited %d entries; full scan is %d", st.EntriesVisited, ds.Len()*ds.Dims())
	}
}

func TestBudgetEnforcedDuringExploration(t *testing.T) {
	// A budget of ~60 tuples with γ=40: the region install may truncate
	// but the ledger must never exceed capacity.
	budget := int64(60) * memcache.TupleBytes(5)
	idx, ds := openTestIndex(t, 2000, Options{MemoryBudgetBytes: budget, SampleSize: 40, Seed: 15})
	if err := idx.InitExploration(context.Background()); err != nil {
		t.Fatal(err)
	}
	region := testRegion(t, ds)
	model := boundaryModel(t, ds, region, 100)
	if _, err := idx.EnsureRegion(context.Background(), model); err != nil {
		t.Fatal(err)
	}
	if used := idx.Budget().Used(); used > budget {
		t.Errorf("budget exceeded: %d > %d", used, budget)
	}
	if peak := idx.Budget().Peak(); peak > budget {
		t.Errorf("peak exceeded budget: %d > %d", peak, budget)
	}
}
