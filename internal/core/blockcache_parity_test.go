package core

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestBlockCacheExplorationParity is the cache's byte-identical contract
// at the index level: the full per-iteration loop (score, select, swap)
// plus final result retrieval must produce the same cell sequence and the
// same result set with and without the cache, at 1, 4, and 8 workers. The
// label schedule runs twice so the second pass exercises the warm cache.
func TestBlockCacheExplorationParity(t *testing.T) {
	ctx := context.Background()

	type outcome struct {
		swaps  []int
		result []uint32
	}
	run := func(workers int, cacheBytes int64) outcome {
		idx, ds := openTestIndex(t, 1500, Options{
			Workers:         workers,
			Seed:            5,
			BlockCacheBytes: cacheBytes,
		})
		if err := idx.InitExploration(ctx); err != nil {
			t.Fatal(err)
		}
		region := testRegion(t, ds)
		var out outcome
		for round := 0; round < 2; round++ {
			for labels := 20; labels <= 60; labels += 10 {
				model := boundaryModel(t, ds, region, labels)
				if err := idx.UpdateUncertainty(ctx, model); err != nil {
					t.Fatal(err)
				}
				cell, err := idx.EnsureRegion(ctx, model)
				if err != nil {
					t.Fatal(err)
				}
				out.swaps = append(out.swaps, int(cell))
			}
		}
		model := boundaryModel(t, ds, region, 60)
		res, err := idx.ResultRetrieval(ctx, model, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		out.result = res
		if cacheBytes > 0 {
			if s := idx.Stats(); s.CacheHits == 0 {
				t.Fatalf("workers=%d: two exploration passes produced no cache hits: %+v", workers, s)
			}
		}
		return out
	}

	for _, workers := range []int{1, 4, 8} {
		plain := run(workers, 0)
		cached := run(workers, 8<<20)
		if !reflect.DeepEqual(plain.swaps, cached.swaps) {
			t.Fatalf("workers=%d: swap sequence differs with cache:\nplain  %v\ncached %v",
				workers, plain.swaps, cached.swaps)
		}
		if !reflect.DeepEqual(plain.result, cached.result) {
			t.Fatalf("workers=%d: result retrieval differs with cache (%d vs %d rows)",
				workers, len(plain.result), len(cached.result))
		}
	}
}

// TestBlockCacheConcurrentViewsParity shares one cached parent across
// concurrent session views all reconstructing the same cells, and checks
// every view sees exactly what an uncached index computes. Under -race
// this is also the shared-slice safety proof: views concurrently iterate
// the same cached entries.
func TestBlockCacheConcurrentViewsParity(t *testing.T) {
	ctx := context.Background()
	plain, _ := openTestIndex(t, 1500, Options{Workers: 4, Seed: 5})
	cached, _ := openTestIndex(t, 1500, Options{Workers: 4, Seed: 5, BlockCacheBytes: 8 << 20})

	cells := []int{0, 1, plain.Grid().NumCells() / 2, plain.Grid().NumCells() - 1}
	type cellData struct {
		ids  []uint32
		rows [][]float64
	}
	want := make(map[int]cellData, len(cells))
	for _, c := range cells {
		ids, rows, err := plain.loadCell(ctx, c)
		if err != nil {
			t.Fatal(err)
		}
		want[c] = cellData{ids: ids, rows: rows}
	}

	const views = 8
	var wg sync.WaitGroup
	errs := make(chan error, views*len(cells))
	for i := 0; i < views; i++ {
		v, err := cached.NewView(ViewOptions{MemoryBudgetBytes: 1 << 20, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		defer v.Close()
		wg.Add(1)
		go func(i int, v *Index) {
			defer wg.Done()
			for _, c := range cells {
				ids, rows, err := v.loadCell(ctx, c)
				if err != nil {
					errs <- fmt.Errorf("view %d cell %d: %v", i, c, err)
					return
				}
				if !reflect.DeepEqual(ids, want[c].ids) || !reflect.DeepEqual(rows, want[c].rows) {
					errs <- fmt.Errorf("view %d cell %d: cached reconstruction differs from uncached", i, c)
					return
				}
			}
		}(i, v)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	s := cached.BlockCache().Stats()
	if s.Hits == 0 {
		t.Errorf("8 views over %d cells produced no cache hits: %+v", len(cells), s)
	}
}
