package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/learn"
)

// viewFixture opens a parent index over a small generated store.
func viewFixture(t *testing.T) (*Index, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 1200, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Build(dir, ds, BuildOptions{TargetChunkBytes: 2048}); err != nil {
		t.Fatal(err)
	}
	idx, err := Open(context.Background(), dir, Options{MemoryBudgetBytes: 1 << 20, SampleSize: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(idx.Close)
	return idx, ds
}

// fitModel trains a tiny classifier on a handful of store rows.
func fitModel(t *testing.T, ds *dataset.Dataset) learn.Classifier {
	t.Helper()
	bounds, err := ds.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	m := learn.NewDWKNN(3, bounds.Widths())
	var x [][]float64
	var y []int
	ds.Scan(func(id dataset.RowID, row []float64) bool {
		x = append(x, append([]float64(nil), row...))
		if len(y) < 3 {
			y = append(y, learn.ClassPositive)
		} else {
			y = append(y, learn.ClassNegative)
		}
		return len(x) < 8
	})
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestConcurrentViews: several views explore the same parent index
// concurrently, each with its own sample, budget, and region residency.
// Run with -race to check the shared store/grid/mapping/pool really are
// read-only from the views' perspective.
func TestConcurrentViews(t *testing.T) {
	parent, ds := viewFixture(t)
	model := fitModel(t, ds)
	ctx := context.Background()

	const nViews = 4
	views := make([]*Index, nViews)
	for i := range views {
		v, err := parent.NewView(ViewOptions{
			MemoryBudgetBytes: 256 << 10,
			SampleSize:        100,
			Seed:              int64(100 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		views[i] = v
	}

	var wg sync.WaitGroup
	errs := make([]error, nViews)
	counts := make([]int, nViews)
	for i, v := range views {
		wg.Add(1)
		go func(i int, v *Index) {
			defer wg.Done()
			if err := v.InitExploration(ctx); err != nil {
				errs[i] = err
				return
			}
			for iter := 0; iter < 5; iter++ {
				v.InvalidateScores()
				if _, err := v.EnsureRegion(ctx, model); err != nil {
					errs[i] = err
					return
				}
			}
			counts[i] = v.CandidateCount()
		}(i, v)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("view %d: %v", i, err)
		}
	}
	for i, n := range counts {
		if n == 0 {
			t.Errorf("view %d holds no candidates", i)
		}
	}

	// Views are isolated: the parent has no resident sample or region.
	if n := parent.CandidateCount(); n != 0 {
		t.Errorf("parent gained %d candidates from its views", n)
	}

	// Closing one view leaves the others and the parent fully usable
	// (shared pool and store must survive).
	views[0].Close()
	if _, err := views[0].EnsureRegion(ctx, model); !errors.Is(err, ErrClosed) {
		t.Errorf("closed view: want ErrClosed, got %v", err)
	}
	views[1].InvalidateScores()
	if _, err := views[1].EnsureRegion(ctx, model); err != nil {
		t.Errorf("sibling view after close: %v", err)
	}
	if err := parent.UpdateUncertainty(ctx, model); err != nil {
		t.Errorf("parent after view close: %v", err)
	}
	for _, v := range views[1:] {
		v.Close()
	}
}

// TestViewBudgetIsolation: a view's region installs are truncated by its
// own budget slice, not the parent's.
func TestViewBudgetIsolation(t *testing.T) {
	parent, ds := viewFixture(t)
	model := fitModel(t, ds)
	ctx := context.Background()

	// A view with a budget so small the sample barely fits.
	v, err := parent.NewView(ViewOptions{MemoryBudgetBytes: 4096, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if err := v.InitExploration(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := v.EnsureRegion(ctx, model); err != nil {
		t.Fatal(err)
	}
	if used, cap := v.Budget().Used(), v.Budget().Capacity(); used > cap {
		t.Errorf("view over budget: %d used > %d capacity", used, cap)
	}
	if parentUsed := parent.Budget().Used(); parentUsed != 0 {
		t.Errorf("parent budget charged %d bytes by a view", parentUsed)
	}
}
