package core

import (
	"context"
	"fmt"
	"testing"

	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/learn"
)

// BenchmarkScorePhase measures the per-iteration hot path the tentpole
// parallelizes: re-scoring every symbolic index point with the current
// model (Algorithm 2's updateUncertainty). SegmentsPerDim = 10 over the
// 5-dimensional sky schema gives 100,000 symbolic points — the scale at
// which the sharded pool must beat the serial pass by ≥2× with 8 workers
// on a multi-core host. CI's benchmark smoke job compares the workers=1
// and workers=8 lines.
func BenchmarkScorePhase(b *testing.B) {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 4000, Seed: 21})
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	if err := Build(dir, ds, BuildOptions{TargetChunkBytes: 16 * 1024}); err != nil {
		b.Fatal(err)
	}

	// The Table 1 estimator: DWKNN over ~50 labels, domain-scaled.
	bounds, err := ds.Bounds()
	if err != nil {
		b.Fatal(err)
	}
	model := learn.NewDWKNN(7, bounds.Widths())
	var X [][]float64
	var y []int
	for i := 0; i < 50; i++ {
		row := ds.CopyRow(dataset.RowID(i * (ds.Len() / 50)))
		X = append(X, row)
		y = append(y, i%2) // alternate labels: a crossing boundary
	}
	if err := model.Fit(X, y); err != nil {
		b.Fatal(err)
	}

	ctx := context.Background()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			idx, err := Open(ctx, dir, Options{
				MemoryBudgetBytes: 1 << 24,
				SegmentsPerDim:    10, // 10^5 = 100k symbolic index points
				Workers:           workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer idx.Close()
			if n := idx.NumIndexPoints(); n < 64_000 {
				b.Fatalf("only %d symbolic points; benchmark needs >= 64k", n)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.InvalidateScores()
				if err := idx.UpdateUncertainty(ctx, model); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(idx.NumIndexPoints()), "points/op")
		})
	}
}
