package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/learn"
)

// BenchmarkScorePhase measures the per-iteration hot path: re-scoring
// every symbolic index point with the current model (Algorithm 2's
// updateUncertainty). SegmentsPerDim = 10 over the 5-dimensional sky
// schema gives 100,000 symbolic points. Three modes bracket the scoring
// stack: "legacy" is the per-row path (WithScoreKernel(false)), "kernel"
// the columnar block path forced to a full rescore every op by rotating
// between two unrelated models, and "incremental" the kernel path under
// the IDE's real refit pattern — one label appended per retrain, so the
// exact dirty rule skips almost every cell. CI's benchmark smoke job
// compares the mode=kernel workers=1 and workers=8 lines.
func BenchmarkScorePhase(b *testing.B) {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 4000, Seed: 21})
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	if err := Build(dir, ds, BuildOptions{TargetChunkBytes: 16 * 1024}); err != nil {
		b.Fatal(err)
	}

	// The Table 1 estimator: DWKNN over ~50 labels, domain-scaled.
	bounds, err := ds.Bounds()
	if err != nil {
		b.Fatal(err)
	}
	scales := bounds.Widths()
	fitOn := func(nLabels int) *learn.DWKNN {
		m := learn.NewDWKNN(7, scales)
		var X [][]float64
		var y []int
		for i := 0; i < nLabels; i++ {
			row := ds.CopyRow(dataset.RowID(i * (ds.Len() / nLabels)))
			X = append(X, row)
			y = append(y, i%2) // alternate labels: a crossing boundary
		}
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
		return m
	}
	// Full-rescore rotation: the two models sample different rows, so
	// neither is an append-only refit of the other and every op pays a
	// complete pass in every mode.
	full := []learn.Classifier{fitOn(50), fitOn(51)}

	// Incremental chain: a fresh model per retrain on a growing labeled
	// prefix, exactly what Session.refit produces. chain[0] is not an
	// append of chain[len-1], so each wrap-around is a full rescore.
	var X [][]float64
	var y []int
	for i := 0; i < 50+256; i++ {
		X = append(X, ds.CopyRow(dataset.RowID((i*131+17)%ds.Len())))
		y = append(y, i%2)
	}
	var chain []learn.Classifier
	for n := 50; n <= len(X); n++ {
		m := learn.NewDWKNN(7, scales)
		if err := m.Fit(append([][]float64(nil), X[:n]...), append([]int(nil), y[:n]...)); err != nil {
			b.Fatal(err)
		}
		chain = append(chain, m)
	}

	ctx := context.Background()
	for _, mode := range []string{"legacy", "kernel", "incremental"} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("mode=%s/workers=%d", mode, workers), func(b *testing.B) {
				opts := Options{
					MemoryBudgetBytes: 1 << 24,
					SegmentsPerDim:    10, // 10^5 = 100k symbolic index points
					Workers:           workers,
				}
				if mode == "legacy" {
					off := false
					opts.ScoreKernel = &off
				}
				idx, err := Open(ctx, dir, opts)
				if err != nil {
					b.Fatal(err)
				}
				defer idx.Close()
				if n := idx.NumIndexPoints(); n < 64_000 {
					b.Fatalf("only %d symbolic points; benchmark needs >= 64k", n)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var model learn.Classifier
					if mode == "incremental" {
						model = chain[i%len(chain)]
					} else {
						model = full[i%len(full)]
					}
					idx.InvalidateScores()
					if err := idx.UpdateUncertainty(ctx, model); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(idx.NumIndexPoints()), "points/op")
				if mode == "incremental" {
					skipped := idx.Registry().Counter("uei_score_skipped_cells_total").Value()
					scored := idx.Registry().Counter("uei_score_scored_cells_total").Value()
					if scored+skipped > 0 {
						b.ReportMetric(float64(skipped)/float64(scored+skipped)*100, "skip%")
					}
				}
			})
		}
	}
}

// BenchmarkCellReconstruction measures the other half of the hot path the
// block cache targets: rebuilding a cell's tuples from disk-resident
// chunks (loadCell = mapping lookup + chunk reads + hash merge), with 1,
// 4, and 16 concurrent session views hammering the same cells. Three cache
// modes bracket the design space: "off" is the paper's strict
// one-chunk-in-memory discipline, "cold" flushes the cache every pass (so
// every miss still pays decode but concurrent misses coalesce), "warm"
// lets the working set stay resident. CI's benchmark smoke job compares
// the off and warm lines.
func BenchmarkCellReconstruction(b *testing.B) {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 4000, Seed: 21})
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	if err := Build(dir, ds, BuildOptions{TargetChunkBytes: 16 * 1024}); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	for _, mode := range []string{"off", "cold", "warm"} {
		cacheBytes := int64(0)
		if mode != "off" {
			cacheBytes = 64 << 20
		}
		for _, sessions := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("cache=%s/sessions=%d", mode, sessions), func(b *testing.B) {
				idx, err := Open(ctx, dir, Options{
					MemoryBudgetBytes: 1 << 24,
					Workers:           4,
					BlockCacheBytes:   cacheBytes,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer idx.Close()
				views := make([]*Index, sessions)
				for i := range views {
					v, err := idx.NewView(ViewOptions{MemoryBudgetBytes: 1 << 22, Seed: int64(i)})
					if err != nil {
						b.Fatal(err)
					}
					defer v.Close()
					views[i] = v
				}
				cells := []int{0, idx.Grid().NumCells() / 3, idx.Grid().NumCells() / 2}

				b.ResetTimer()
				// Each op: every session reconstructs every probe cell once.
				for i := 0; i < b.N; i++ {
					if mode == "cold" {
						idx.BlockCache().Flush()
					}
					var wg sync.WaitGroup
					for _, v := range views {
						wg.Add(1)
						go func(v *Index) {
							defer wg.Done()
							for _, c := range cells {
								if _, _, err := v.loadCell(ctx, c); err != nil {
									b.Error(err)
									return
								}
							}
						}(v)
					}
					wg.Wait()
				}
				b.StopTimer()
				if cacheBytes > 0 {
					s := idx.BlockCache().Stats()
					b.ReportMetric(s.HitRate()*100, "hit%")
				}
			})
		}
	}
}
