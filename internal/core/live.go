package core

import (
	"context"
	"errors"
	"fmt"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/memcache"
	"github.com/uei-db/uei/internal/obs"
	"github.com/uei-db/uei/internal/pool"
	"github.com/uei-db/uei/internal/prefetch"
	"github.com/uei-db/uei/internal/shard"
	"github.com/uei-db/uei/internal/stream"
)

// ErrNotLive is returned by the write-path methods (Append, Flush,
// AdvanceSnapshot) of an index opened over a static layout.
var ErrNotLive = errors.New("core: index was not opened over a live-ingest layout")

// openLive opens a live (stream) layout: the index reads through a pinned
// snapshot epoch and exposes the write path (Append/Flush). Geometry is
// fixed by the layout, so SegmentsPerDim and Shards are validated against
// the manifest exactly like the static sharded open.
func openLive(ctx context.Context, dir string, opts Options) (*Index, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	man, err := stream.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	if opts.Shards == 1 && man.Shards > 1 {
		return nil, fmt.Errorf("core: %s holds a %d-shard live store but the flat layout was requested: %w", dir, man.Shards, chunkstore.ErrLayoutMismatch)
	}
	if opts.Shards > 1 && man.Shards != opts.Shards {
		return nil, fmt.Errorf("core: %s holds a %d-shard live store but %d shards were requested: %w", dir, man.Shards, opts.Shards, chunkstore.ErrLayoutMismatch)
	}
	if opts.SegmentsPerDim == 0 {
		opts.SegmentsPerDim = man.SegmentsPerDim
	} else if opts.SegmentsPerDim != man.SegmentsPerDim {
		return nil, fmt.Errorf("core: live store was created over %d segments per dimension; cannot open with %d (cell geometry is pinned)", man.SegmentsPerDim, opts.SegmentsPerDim)
	}
	opts, err = opts.withDefaults()
	if err != nil {
		return nil, err
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	opts.Registry = reg
	var bc *chunkstore.BlockCache
	if opts.BlockCacheBytes > 0 {
		cacheBudget, err := memcache.NewBudget(opts.BlockCacheBytes)
		if err != nil {
			return nil, err
		}
		bc, err = chunkstore.NewBlockCache(cacheBudget)
		if err != nil {
			return nil, err
		}
	}
	sdb, err := stream.Open(dir, stream.Options{
		Limiter:         opts.Limiter,
		Workers:         opts.Workers,
		BlockCache:      bc,
		Registry:        reg,
		Tracer:          opts.Tracer,
		MemtableBytes:   opts.MemtableBytes,
		FlushInterval:   opts.FlushInterval,
		CompactSegments: opts.CompactSegments,
	})
	if err != nil {
		return nil, err
	}
	snap, err := sdb.Acquire()
	if err != nil {
		sdb.Close()
		return nil, err
	}
	pl := pool.New(opts.Workers)
	var idx *Index
	if man.Shards > 1 {
		coord, err := buildLiveCoordinator(snap, opts, pl, bc)
		if err == nil {
			idx, err = newShardedIndex(opts, coord, pl, bc)
		}
		if err != nil {
			pl.Close()
			snap.Release()
			sdb.Close()
			return nil, err
		}
	} else {
		idx, err = newLiveFlatIndex(opts, snap, pl, bc, reg)
		if err != nil {
			pl.Close()
			snap.Release()
			sdb.Close()
			return nil, err
		}
	}
	idx.live = sdb
	idx.snap = snap
	idx.liveBC = bc
	return idx, nil
}

// newLiveFlatIndex wires a flat live index: no chunk store or mapping —
// every storage touch goes through the pinned snapshot's multi-part
// helpers instead.
func newLiveFlatIndex(opts Options, snap *stream.Snapshot, pl *pool.Pool, bc *chunkstore.BlockCache, reg *obs.Registry) (*Index, error) {
	g := snap.Grid()
	budget, err := memcache.NewBudget(opts.MemoryBudgetBytes)
	if err != nil {
		return nil, err
	}
	cache, err := memcache.NewCache(budget, snap.Dims())
	if err != nil {
		return nil, err
	}
	if err := cache.SetMaxRegions(opts.ResidentRegions); err != nil {
		return nil, err
	}
	if bc != nil {
		bc.Instrument(reg)
	}
	budget.Instrument(reg)
	pl.Instrument(reg)
	idx := &Index{
		opts:        opts,
		pool:        pl,
		grid:        g,
		budget:      budget,
		cache:       cache,
		centers:     g.Centers(),
		uncertainty: make([]float64, g.NumCells()),
		pendingCell: memcache.NoRegion,
		reg:         reg,
		tracer:      opts.Tracer,
		mSwaps:      reg.Counter("uei_region_swaps_total"),
		mDeferred:   reg.Counter("uei_swaps_deferred_total"),
		mPrefHits:   reg.Counter("uei_prefetch_hits_total"),
		mEntries:    reg.Counter("uei_entries_visited_total"),
		hScore:      reg.Histogram(obs.PhaseHistName(obs.PhaseScore), nil),
		hLoad:       reg.Histogram(obs.PhaseHistName(obs.PhaseLoad), nil),
		hSwap:       reg.Histogram(obs.PhaseHistName(obs.PhaseSwap), nil),
	}
	idx.initScoreKernel()
	if opts.EnablePrefetch {
		pf, err := prefetch.New(idx.loadCell)
		if err != nil {
			return nil, err
		}
		pf.Instrument(reg)
		idx.pf = pf
	}
	return idx, nil
}

// buildLiveCoordinator assembles a local scatter-gather coordinator over
// one snapshot epoch of a sharded live store: the synthesized manifest
// carries the same grid geometry and hash contract a build-time
// shards.json would, so routing, scoring, and retrieval behave exactly as
// over a static sharded layout of the same rows.
func buildLiveCoordinator(snap *stream.Snapshot, opts Options, pl *pool.Pool, bc *chunkstore.BlockCache) (*shard.Coordinator, error) {
	man, err := snap.ShardManifest()
	if err != nil {
		return nil, err
	}
	shards, err := snap.Shards()
	if err != nil {
		return nil, err
	}
	return shard.NewLocalCoordinator(man, shards, shard.OpenOptions{
		Limiter:    opts.Limiter,
		Workers:    opts.Workers,
		Pool:       pl,
		Deadline:   opts.ShardDeadline,
		BlockCache: bc,
		Replicas:   opts.Replication,
		HedgeDelay: opts.HedgeDelay,
	})
}

// Live returns the streaming write store backing this index, or nil for a
// static layout. It is the seam for ingest tooling (direct appends,
// explicit compaction, failpoints in tests).
func (x *Index) Live() *stream.DB { return x.live }

// LiveEpoch returns the snapshot epoch this index currently reads, or 0
// for a static layout. Views report the epoch pinned at their creation
// until they AdvanceSnapshot.
func (x *Index) LiveEpoch() uint64 {
	if x.snap == nil {
		return 0
	}
	return x.snap.Epoch()
}

// FollowsLive reports whether this index opts into advancing its snapshot
// at iteration boundaries (Options.FollowLive on a live layout).
func (x *Index) FollowsLive() bool { return x.live != nil && x.opts.FollowLive }

// Append validates and durably stages rows in the live write store. The
// rows are acknowledged once WAL-fsynced; they become read-visible to NEW
// snapshots after the next flush, and never to the currently pinned one —
// a running iteration's view cannot shift under it. Returns the first
// assigned global row id.
func (x *Index) Append(ctx context.Context, rows [][]float64) (uint32, error) {
	if x.closed.Load() {
		return 0, ErrClosed
	}
	if x.live == nil {
		return 0, ErrNotLive
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return x.live.Append(rows)
}

// Flush folds every pending appended row into committed segments,
// advancing the live epoch. Held snapshots are unaffected; call
// AdvanceSnapshot (or open with FollowLive) to observe the new epoch.
func (x *Index) Flush(ctx context.Context) error {
	if x.closed.Load() {
		return ErrClosed
	}
	if x.live == nil {
		return ErrNotLive
	}
	return x.live.Flush(ctx)
}

// AdvanceSnapshot re-pins this index (or view) to the newest committed
// epoch, if it moved. It must only be called at iteration boundaries: it
// invalidates symbolic-point scores and drops cached regions (their cell
// contents may have grown), while the uniform sample is kept — row ids
// and values are immutable under append-only ingest, so the sample stays
// a valid uniform draw of a prefix of the data. Reports whether the
// snapshot moved.
func (x *Index) AdvanceSnapshot() (bool, error) {
	if x.closed.Load() {
		return false, ErrClosed
	}
	if x.live == nil {
		return false, ErrNotLive
	}
	if x.live.Epoch() == x.snap.Epoch() {
		return false, nil
	}
	snap, err := x.live.Acquire()
	if err != nil {
		return false, err
	}
	if snap.Epoch() == x.snap.Epoch() {
		snap.Release()
		return false, nil
	}
	if x.coord != nil {
		coord, err := buildLiveCoordinator(snap, x.opts, x.pool, x.liveBC)
		if err != nil {
			snap.Release()
			return false, err
		}
		coord.Instrument(x.reg)
		x.coord = coord
	}
	old := x.snap
	x.snap = snap
	old.Release()
	// A prefetch launched under the old epoch could deliver a stale
	// region later; recreate the prefetcher so pending loads are
	// cancelled and forgotten.
	if x.pf != nil {
		x.pf.Close()
		pf, err := prefetch.New(x.loadCell)
		if err != nil {
			return true, err
		}
		pf.Instrument(x.reg)
		x.pf = pf
	}
	x.cache.DropRegion()
	x.scoresValid = false
	x.degradedShards = nil
	x.resetKernelState()
	x.pendingCell = memcache.NoRegion
	x.deferredFor = 0
	return true, nil
}
