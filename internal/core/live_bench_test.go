package core

import (
	"context"
	"sync"
	"testing"

	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/learn"
)

// BenchmarkLiveStep measures the full per-iteration step — re-score,
// top-k, cell load — across the three serving modes the live write path
// introduces: a static store, an idle live store (pinned snapshot, no
// ingest), and a live store under continuous appends with periodic
// flushes. The gap between static and live-idle is the cost of reading
// through snapshot parts; the gap to live-under-append is WAL/flush
// interference. CI records the three lines in bench/livestep.txt.
func BenchmarkLiveStep(b *testing.B) {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 4000, Seed: 21})
	if err != nil {
		b.Fatal(err)
	}
	bounds, err := ds.Bounds()
	if err != nil {
		b.Fatal(err)
	}
	model := learn.NewDWKNN(7, bounds.Widths())
	var X [][]float64
	var y []int
	for i := 0; i < 50; i++ {
		X = append(X, ds.CopyRow(dataset.RowID(i*(ds.Len()/50))))
		y = append(y, i%2)
	}
	if err := model.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	open := func(b *testing.B, live bool) *Index {
		b.Helper()
		dir := b.TempDir()
		if err := Build(dir, ds, BuildOptions{TargetChunkBytes: 16 * 1024, LiveIngest: live}); err != nil {
			b.Fatal(err)
		}
		idx, err := Open(ctx, dir, Options{MemoryBudgetBytes: 1 << 24, Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(idx.Close)
		return idx
	}
	step := func(b *testing.B, idx *Index) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			idx.InvalidateScores()
			if _, err := idx.EnsureRegion(ctx, model); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
	}

	b.Run("static", func(b *testing.B) { step(b, open(b, false)) })
	b.Run("live-idle", func(b *testing.B) { step(b, open(b, true)) })
	b.Run("live-under-append", func(b *testing.B) {
		idx := open(b, true)
		db := idx.Live()
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.Append([][]float64{ds.CopyRow(dataset.RowID((i * 37) % ds.Len()))}); err != nil {
					b.Error(err)
					return
				}
				if i%64 == 63 {
					if err := db.Flush(ctx); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}()
		step(b, idx)
		close(stop)
		wg.Wait()
	})
}
