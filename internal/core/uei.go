package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/grid"
	"github.com/uei-db/uei/internal/kernel"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/memcache"
	"github.com/uei-db/uei/internal/obs"
	"github.com/uei-db/uei/internal/pool"
	"github.com/uei-db/uei/internal/prefetch"
	"github.com/uei-db/uei/internal/shard"
	"github.com/uei-db/uei/internal/shard/remote"
	"github.com/uei-db/uei/internal/stream"
	"github.com/uei-db/uei/internal/vec"
)

// ErrClosed is returned by index operations after Close. It is re-exported
// by the facade so callers can errors.Is against it across the API
// boundary.
var ErrClosed = errors.New("uei: index is closed")

// BuildOptions configures the once-per-dataset index initialization phase
// (Algorithm 2 lines 1-11).
type BuildOptions struct {
	// TargetChunkBytes is the equal-size chunk target (Table 1: 470 KB).
	// Zero selects chunkstore.DefaultTargetChunkBytes.
	TargetChunkBytes int
	// Shards partitions the dataset into this many self-contained shard
	// stores by hashing grid-cell coordinates. 0 and 1 both produce the
	// exact legacy flat layout; values > 1 produce the sharded layout
	// (shards.json + shard-NNN/ directories).
	Shards int
	// SegmentsPerDim fixes the grid cells are hashed over when Shards > 1
	// (it must match the grid used at open; the sharded manifest records
	// it). Zero selects the Options default (5). Ignored by flat builds,
	// whose grid is chosen freely at Open — but pinned by live builds,
	// whose cell geometry must stay epoch-invariant.
	SegmentsPerDim int
	// LiveIngest builds the live (stream) layout instead of a static one:
	// a WAL-backed write store whose manifest epochs accept appends after
	// the build. The dataset's bounds pin the grid; later appends must
	// fall inside them.
	LiveIngest bool
}

// Build performs the Index Initialization phase: vertical decomposition,
// sorting, chunking, and manifest persistence. The grid itself is cheap and
// is rebuilt at Open from the manifest's bounds, so only storage work
// happens here. With Shards > 1 the dataset is hash-partitioned into
// self-contained per-shard stores instead.
func Build(dir string, ds *dataset.Dataset, opts BuildOptions) error {
	if opts.Shards < 0 {
		return fmt.Errorf("core: shard count %d must not be negative", opts.Shards)
	}
	if opts.LiveIngest {
		segsPD := opts.SegmentsPerDim
		if segsPD == 0 {
			segsPD = 5
		}
		return stream.Create(dir, ds, stream.CreateOptions{
			Shards:           opts.Shards,
			SegmentsPerDim:   segsPD,
			TargetChunkBytes: opts.TargetChunkBytes,
		})
	}
	if opts.Shards > 1 {
		return shard.Build(dir, ds, shard.BuildOptions{
			Shards:           opts.Shards,
			SegmentsPerDim:   opts.SegmentsPerDim,
			TargetChunkBytes: opts.TargetChunkBytes,
		})
	}
	_, err := chunkstore.Build(dir, ds, chunkstore.BuildOptions{
		TargetChunkBytes: opts.TargetChunkBytes,
	})
	return err
}

// Index is an opened Uncertainty Estimation Index.
type Index struct {
	opts    Options
	store   *chunkstore.Store
	grid    *grid.Grid
	mapping *grid.Mapping
	budget  *memcache.Budget
	cache   *memcache.Cache
	pf      *prefetch.Prefetcher
	// coord, when non-nil, is the sharded data plane: store and mapping
	// are nil and every storage touch goes through the coordinator's
	// scatter-gather instead. Views share the parent's coordinator.
	coord *shard.Coordinator
	// live, when non-nil, is the streaming write path (LSM store) and snap
	// the epoch this index currently reads. A flat live index has nil
	// store/mapping and reads through snap's multi-part helpers; a sharded
	// live index reads through coord, rebuilt per snapshot. Views borrow
	// live and pin their own clone of the parent's snapshot.
	live *stream.DB
	snap *stream.Snapshot
	// liveBC is the shared block cache of a live layout (store-less, so
	// the flat accessor can't reach it through the chunk store).
	liveBC *chunkstore.BlockCache
	// degradedShards lists the shards skipped by the latest scoring pass
	// (their uncertainty slots are stale); selection excludes their cells
	// until a later pass succeeds. Per-view state, like uncertainty.
	degradedShards []int
	// stepDegraded records whether the most recent EnsureRegion had to
	// skip shards or fall back from the winning cell. Surfaced to the IDE
	// engine per iteration.
	stepDegraded bool

	// centers is the symbolic index point set P, in cell-id order.
	centers []vec.Point
	// blk is the columnar packing of centers for the kernel scoring path
	// (Options.ScoreKernel). Packed once per Open and shared by views —
	// the symbolic point set is immutable, even under live ingest (cell
	// geometry is pinned at store creation).
	blk *kernel.Block
	// uncertainty[i] is the last computed uncertainty of centers[i].
	uncertainty []float64
	// scoresValid records whether uncertainty reflects the current model.
	scoresValid bool

	// Incremental-rescore state (per-view, like uncertainty). lastDW is
	// the DWKNN model the uncertainty vector was last fully scored with
	// and dk2 its per-center k-th-neighbor squared distances: when the
	// next model is the same DWKNN refit on an append-only extension of
	// the labeled set, a center's posterior can change only if a new
	// labeled point lands strictly inside its k-th-neighbor ball, so only
	// that dirty subset is rescored. lastComplete records that every
	// cell's score and d_k² slot is fresh (no degraded shards) — the
	// delta rule is sound only against a complete previous pass.
	lastDW       *learn.DWKNN
	dk2          []float64
	lastComplete bool
	// staleRetrains counts consecutive scoring passes reused under
	// Options.BoundedStaleness for models without an exact delta rule.
	staleRetrains int
	// lastSkipped is how many of the |P| cells the most recent
	// UpdateUncertainty pass skipped (exact delta or bounded staleness);
	// dirtyBuf is its reused dirty-cell scratch.
	lastSkipped int
	dirtyBuf    []int

	// deferredFor counts consecutive iterations the swap to pendingCell
	// has been deferred awaiting its prefetch.
	deferredFor int
	pendingCell int

	// pool shards symbolic-point scoring and top-k selection across
	// Options.Workers goroutines; with one worker everything runs inline.
	pool *pool.Pool
	// isView marks per-session views (NewView): the pool and store are
	// borrowed from the parent, so Close must not shut them down.
	isView bool
	// closed flips once; closeOnce makes Close idempotent and safe to call
	// concurrently with an in-flight prefetch load.
	closed    atomic.Bool
	closeOnce sync.Once

	// reg is never nil (Open substitutes a private registry); the
	// instruments below are atomic, so Stats() and a metrics endpoint can
	// read them while the loop and the prefetcher goroutine mutate them.
	reg       *obs.Registry
	tracer    *obs.Tracer
	mSwaps    *obs.Counter
	mDeferred *obs.Counter
	mPrefHits *obs.Counter
	mEntries  *obs.Counter
	// mCellsScored / mCellsSkipped split every scoring pass's |P| cells
	// into rescored and delta-skipped, across all views of the index.
	mCellsScored  *obs.Counter
	mCellsSkipped *obs.Counter
	hScore        *obs.Histogram
	hLoad         *obs.Histogram
	hSwap         *obs.Histogram
}

// initScoreKernel packs the columnar block over the symbolic points and
// wires the score-skip instruments. Every constructor calls it after the
// struct literal; views arrive with the parent's block already set and
// keep it.
func (x *Index) initScoreKernel() {
	if x.blk == nil {
		x.blk = kernel.Pack(x.centers)
	}
	x.mCellsScored = x.reg.Counter("uei_score_scored_cells_total")
	x.mCellsSkipped = x.reg.Counter("uei_score_skipped_cells_total")
}

// resetKernelState drops the incremental-rescore state so the next
// scoring pass runs in full. Called when the snapshot epoch moves (the
// conservative choice: the symbolic points cannot change, but a full
// pass on the new epoch keeps the invariants trivially true).
func (x *Index) resetKernelState() {
	x.lastDW = nil
	x.lastComplete = false
	x.staleRetrains = 0
}

// Open loads the index over a directory produced by Build, flat or
// sharded. Options.Shards pins the expected layout (0 auto-detects); a
// mismatch fails with chunkstore.ErrLayoutMismatch. I/O throttling and
// worker-pool sizing come from Options (Limiter, Workers).
func Open(ctx context.Context, dir string, opts Options) (*Index, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.Shards < 0 {
		return nil, fmt.Errorf("core: shard count %d must not be negative", opts.Shards)
	}
	if len(opts.ShardEndpoints) > 0 {
		return openRemote(ctx, opts)
	}
	if stream.IsLiveDir(dir) {
		return openLive(ctx, dir, opts)
	}
	if opts.LiveIngest {
		return nil, fmt.Errorf("core: %s does not hold a live-ingest layout: %w", dir, chunkstore.ErrLayoutMismatch)
	}
	sharded := shard.IsShardedDir(dir)
	if opts.Shards == 1 && sharded {
		return nil, fmt.Errorf("core: %s holds a sharded store but the flat layout was requested: %w", dir, chunkstore.ErrLayoutMismatch)
	}
	if opts.Shards > 1 && !sharded {
		return nil, fmt.Errorf("core: %s holds a flat store but %d shards were requested: %w", dir, opts.Shards, chunkstore.ErrLayoutMismatch)
	}
	if sharded {
		return openSharded(ctx, dir, opts)
	}
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	store, err := chunkstore.Open(dir, opts.Limiter)
	if err != nil {
		return nil, err
	}
	store.SetWorkers(opts.Workers)
	if opts.BlockCacheBytes > 0 {
		cacheBudget, err := memcache.NewBudget(opts.BlockCacheBytes)
		if err != nil {
			return nil, err
		}
		bc, err := chunkstore.NewBlockCache(cacheBudget)
		if err != nil {
			return nil, err
		}
		store.SetBlockCache(bc)
	}
	g, err := grid.New(store.Bounds(), opts.SegmentsPerDim)
	if err != nil {
		return nil, err
	}
	mapping, err := grid.BuildMapping(g, store)
	if err != nil {
		return nil, err
	}
	budget, err := memcache.NewBudget(opts.MemoryBudgetBytes)
	if err != nil {
		return nil, err
	}
	cache, err := memcache.NewCache(budget, store.Dims())
	if err != nil {
		return nil, err
	}
	if err := cache.SetMaxRegions(opts.ResidentRegions); err != nil {
		return nil, err
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	store.Instrument(reg)
	if bc := store.BlockCache(); bc != nil {
		bc.Instrument(reg)
	}
	budget.Instrument(reg)
	pl := pool.New(opts.Workers)
	pl.Instrument(reg)
	idx := &Index{
		opts:        opts,
		store:       store,
		pool:        pl,
		grid:        g,
		mapping:     mapping,
		budget:      budget,
		cache:       cache,
		centers:     g.Centers(),
		uncertainty: make([]float64, g.NumCells()),
		pendingCell: memcache.NoRegion,
		reg:         reg,
		tracer:      opts.Tracer,
		mSwaps:      reg.Counter("uei_region_swaps_total"),
		mDeferred:   reg.Counter("uei_swaps_deferred_total"),
		mPrefHits:   reg.Counter("uei_prefetch_hits_total"),
		mEntries:    reg.Counter("uei_entries_visited_total"),
		hScore:      reg.Histogram(obs.PhaseHistName(obs.PhaseScore), nil),
		hLoad:       reg.Histogram(obs.PhaseHistName(obs.PhaseLoad), nil),
		hSwap:       reg.Histogram(obs.PhaseHistName(obs.PhaseSwap), nil),
	}
	idx.initScoreKernel()
	if opts.EnablePrefetch {
		pf, err := prefetch.New(idx.loadCell)
		if err != nil {
			return nil, err
		}
		pf.Instrument(reg)
		idx.pf = pf
	}
	return idx, nil
}

// openSharded opens a sharded store through a coordinator. The grid is
// rebuilt from the shard manifest's global bounds and the segment count
// recorded at ingest — cell ownership is grid-dependent, so a different
// SegmentsPerDim cannot be honored and is rejected.
func openSharded(ctx context.Context, dir string, opts Options) (*Index, error) {
	man, err := shard.LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	if opts.Shards > 1 && man.Shards != opts.Shards {
		return nil, fmt.Errorf("core: %s has %d shards but %d were requested: %w", dir, man.Shards, opts.Shards, chunkstore.ErrLayoutMismatch)
	}
	if opts.SegmentsPerDim == 0 {
		opts.SegmentsPerDim = man.SegmentsPerDim
	} else if opts.SegmentsPerDim != man.SegmentsPerDim {
		return nil, fmt.Errorf("core: store was sharded over %d segments per dimension; cannot open with %d (cell ownership is grid-dependent)", man.SegmentsPerDim, opts.SegmentsPerDim)
	}
	opts, err = opts.withDefaults()
	if err != nil {
		return nil, err
	}
	var bc *chunkstore.BlockCache
	if opts.BlockCacheBytes > 0 {
		cacheBudget, err := memcache.NewBudget(opts.BlockCacheBytes)
		if err != nil {
			return nil, err
		}
		bc, err = chunkstore.NewBlockCache(cacheBudget)
		if err != nil {
			return nil, err
		}
	}
	pl := pool.New(opts.Workers)
	coord, err := shard.Open(ctx, dir, shard.OpenOptions{
		Limiter:    opts.Limiter,
		Workers:    opts.Workers,
		Pool:       pl,
		Deadline:   opts.ShardDeadline,
		BlockCache: bc,
		Replicas:   opts.Replication,
		HedgeDelay: opts.HedgeDelay,
	})
	if err != nil {
		pl.Close()
		return nil, err
	}
	return newShardedIndex(opts, coord, pl, bc)
}

// openRemote serves the index through uei-shardd workers: the fleet
// handshake fetches the store identity (so no local directory is needed),
// consistent hashing places each shard on Replication distinct workers,
// and every per-shard operation travels the HTTP transport with failover
// and optional hedging. Block caching happens worker-side, so
// BlockCacheBytes is ignored here.
func openRemote(ctx context.Context, opts Options) (*Index, error) {
	coord, err := remote.Connect(ctx, remote.ConnectOptions{
		Endpoints:   opts.ShardEndpoints,
		Replication: opts.Replication,
		Deadline:    opts.ShardDeadline,
		HedgeDelay:  opts.HedgeDelay,
	})
	if err != nil {
		return nil, err
	}
	meta := coord.Meta()
	if opts.Shards > 1 && meta.Shards != opts.Shards {
		return nil, fmt.Errorf("core: fleet serves %d shards but %d were requested: %w", meta.Shards, opts.Shards, chunkstore.ErrLayoutMismatch)
	}
	if opts.SegmentsPerDim == 0 {
		opts.SegmentsPerDim = meta.SegmentsPerDim
	} else if opts.SegmentsPerDim != meta.SegmentsPerDim {
		return nil, fmt.Errorf("core: store was sharded over %d segments per dimension; cannot open with %d (cell ownership is grid-dependent)", meta.SegmentsPerDim, opts.SegmentsPerDim)
	}
	opts, err = opts.withDefaults()
	if err != nil {
		return nil, err
	}
	pl := pool.New(opts.Workers)
	return newShardedIndex(opts, coord, pl, nil)
}

// newShardedIndex finishes an Open over any coordinator transport: memory
// budget, unlabeled cache, metrics wiring, optional prefetcher.
func newShardedIndex(opts Options, coord *shard.Coordinator, pl *pool.Pool, bc *chunkstore.BlockCache) (*Index, error) {
	meta := coord.Meta()
	g := meta.Grid
	budget, err := memcache.NewBudget(opts.MemoryBudgetBytes)
	if err != nil {
		pl.Close()
		return nil, err
	}
	cache, err := memcache.NewCache(budget, meta.Dims())
	if err != nil {
		pl.Close()
		return nil, err
	}
	if err := cache.SetMaxRegions(opts.ResidentRegions); err != nil {
		pl.Close()
		return nil, err
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	coord.Instrument(reg)
	if bc != nil {
		bc.Instrument(reg)
	}
	budget.Instrument(reg)
	pl.Instrument(reg)
	idx := &Index{
		opts:        opts,
		coord:       coord,
		pool:        pl,
		grid:        g,
		budget:      budget,
		cache:       cache,
		centers:     g.Centers(),
		uncertainty: make([]float64, g.NumCells()),
		pendingCell: memcache.NoRegion,
		reg:         reg,
		tracer:      opts.Tracer,
		mSwaps:      reg.Counter("uei_region_swaps_total"),
		mDeferred:   reg.Counter("uei_swaps_deferred_total"),
		mPrefHits:   reg.Counter("uei_prefetch_hits_total"),
		mEntries:    reg.Counter("uei_entries_visited_total"),
		hScore:      reg.Histogram(obs.PhaseHistName(obs.PhaseScore), nil),
		hLoad:       reg.Histogram(obs.PhaseHistName(obs.PhaseLoad), nil),
		hSwap:       reg.Histogram(obs.PhaseHistName(obs.PhaseSwap), nil),
	}
	idx.initScoreKernel()
	if opts.EnablePrefetch {
		pf, err := prefetch.New(idx.loadCell)
		if err != nil {
			return nil, err
		}
		pf.Instrument(reg)
		idx.pf = pf
	}
	return idx, nil
}

// Registry returns the index's metrics registry (the one passed in
// Options.Registry, or the private one Open created).
func (x *Index) Registry() *obs.Registry { return x.reg }

// Close cancels and joins every background goroutine the index owns —
// the prefetcher (canceling any in-flight load) and, on a live layout,
// the stream store's flusher and compactor — then shuts down the worker
// pool and releases the pinned snapshot. It is idempotent and safe to
// call while a prefetch load or background flush is running; subsequent
// index operations return ErrClosed. On a view (NewView) only the view's
// private state stops: the shared pool, store, and live write path stay
// up for the parent and its other views (a view still releases its own
// snapshot pin).
func (x *Index) Close() {
	x.closeOnce.Do(func() {
		x.closed.Store(true)
		if x.pf != nil {
			x.pf.Close()
		}
		if x.snap != nil {
			x.snap.Release()
		}
		if !x.isView {
			if x.live != nil {
				x.live.Close()
			}
			x.pool.Close()
		}
	})
}

// Grid returns the symbolic-point lattice.
func (x *Index) Grid() *grid.Grid { return x.grid }

// Store returns the underlying chunk store of a flat index, or nil for a
// sharded one (each shard has its own store; use the Index-level
// accessors — RowCount, Bounds, FetchRows, IOStats — which work for both
// layouts).
func (x *Index) Store() *chunkstore.Store { return x.store }

// ShardCoordinator returns the sharded data plane, or nil for a flat
// index. It is the seam for fault injection and shard inspection.
func (x *Index) ShardCoordinator() *shard.Coordinator { return x.coord }

// Sharded reports whether the index runs over the sharded layout.
func (x *Index) Sharded() bool { return x.coord != nil }

// NumShards returns S for a sharded index and 1 for a flat one.
func (x *Index) NumShards() int {
	if x.coord != nil {
		return x.coord.NumShards()
	}
	return 1
}

// BlockCache returns the shared decoded-chunk cache installed via
// Options.BlockCacheBytes, or nil when caching is disabled. Views share
// the parent's cache; in the sharded layout one cache backs every shard.
func (x *Index) BlockCache() *chunkstore.BlockCache {
	if x.coord != nil {
		return x.coord.BlockCache()
	}
	if x.snap != nil {
		return x.liveBC
	}
	return x.store.BlockCache()
}

// RowCount returns the number of tuples visible to this index: the store
// row count for static layouts (all shards), the pinned snapshot's
// flushed row count for live ones.
func (x *Index) RowCount() int {
	if x.coord != nil {
		return x.coord.Meta().RowCount
	}
	if x.snap != nil {
		return x.snap.RowCount()
	}
	return x.store.RowCount()
}

// Dims returns the dimensionality.
func (x *Index) Dims() int {
	if x.coord != nil {
		return x.coord.Meta().Dims()
	}
	if x.snap != nil {
		return x.snap.Dims()
	}
	return x.store.Dims()
}

// Columns returns the attribute names in dimension order (read-only).
func (x *Index) Columns() []string {
	if x.coord != nil {
		return x.coord.Meta().Columns
	}
	if x.snap != nil {
		return x.snap.Columns()
	}
	return x.store.Columns()
}

// Bounds returns the per-dimension value bounds recorded at build time
// (for live layouts, pinned at creation).
func (x *Index) Bounds() vec.Box {
	if x.coord != nil {
		return x.coord.Meta().Bounds
	}
	if x.snap != nil {
		return x.snap.Bounds()
	}
	return x.store.Bounds()
}

// TotalBytes returns the on-disk payload size of all chunks (all shards,
// or all segments of the pinned snapshot).
func (x *Index) TotalBytes() int64 {
	if x.coord != nil {
		return x.coord.Meta().TotalBytes
	}
	if x.snap != nil {
		return x.snap.TotalBytes()
	}
	return x.store.TotalBytes()
}

// IOStats returns cumulative bytes and chunk files read (summed across
// shards or snapshot segments).
func (x *Index) IOStats() (bytes int64, chunks int64) {
	if x.coord != nil {
		return x.coord.IOStats()
	}
	if x.snap != nil {
		return x.snap.IOStats()
	}
	return x.store.IOStats()
}

// ResetIOStats zeroes the I/O counters (between experiment phases).
func (x *Index) ResetIOStats() {
	if x.coord != nil {
		x.coord.ResetIOStats()
		return
	}
	if x.snap != nil {
		x.snap.ResetIOStats()
		return
	}
	x.store.ResetIOStats()
}

// FetchRows reconstructs the tuples with the given (global) row ids,
// routing to the owning shards in the sharded layout. Results are sorted
// by id with duplicates collapsed, either way.
func (x *Index) FetchRows(ctx context.Context, ids []uint32) ([]chunkstore.MergedRow, error) {
	if x.closed.Load() {
		return nil, ErrClosed
	}
	if x.coord != nil {
		return x.coord.FetchRows(ctx, ids)
	}
	if x.snap != nil {
		return x.snap.FetchRows(ctx, ids)
	}
	return x.store.FetchRows(ctx, ids)
}

// LastStepDegraded reports whether the most recent EnsureRegion (or
// scoring pass) had to skip shards or fall back from the winning cell.
// Always false for a flat index.
func (x *Index) LastStepDegraded() bool { return x.stepDegraded }

// DegradedShards returns the shards skipped by the latest scoring pass,
// ascending (nil when all shards are healthy or the index is flat).
func (x *Index) DegradedShards() []int {
	if len(x.degradedShards) == 0 {
		return nil
	}
	return append([]int(nil), x.degradedShards...)
}

// Budget returns the memory ledger.
func (x *Index) Budget() *memcache.Budget { return x.budget }

// NumIndexPoints returns |P|.
func (x *Index) NumIndexPoints() int { return len(x.centers) }

// sampleSize resolves γ.
func (x *Index) sampleSize() int {
	if x.opts.SampleSize > 0 {
		return x.opts.SampleSize
	}
	perTuple := memcache.TupleBytes(x.Dims())
	gamma := int(x.opts.MemoryBudgetBytes / (2 * perTuple))
	if gamma < 1 {
		gamma = 1
	}
	return gamma
}

// InitExploration fills the unlabeled cache U with the uniform sample γ
// (Algorithm 2 line 12). It costs one streaming pass over the store and is
// intended to run once per exploration session.
func (x *Index) InitExploration(ctx context.Context) error {
	if x.closed.Load() {
		return ErrClosed
	}
	gamma := x.sampleSize()
	ids, err := memcache.SampleIDs(x.RowCount(), gamma, x.opts.Seed)
	if err != nil {
		return err
	}
	rows, err := x.FetchRows(ctx, ids)
	if err != nil {
		return fmt.Errorf("core: sampling U: %w", err)
	}
	for _, r := range rows {
		if err := x.cache.AddSample(r.ID, r.Vals); err != nil {
			return fmt.Errorf("core: caching sample row %d: %w", r.ID, err)
		}
	}
	return nil
}

// UpdateUncertainty re-scores every symbolic index point against the
// current model (Algorithm 2 line 17, P <- updateUncertainty(P, M)).
// Scoring shards across the worker pool: each shard writes a disjoint
// contiguous slice of the uncertainty vector, so the result is
// byte-identical to the serial pass regardless of worker count.
//
// On a sharded index the pass scatters to every shard under the per-shard
// deadline; shards that miss it or fail keep stale scores and are
// recorded as degraded, excluding their cells from selection until a
// later pass succeeds.
func (x *Index) UpdateUncertainty(ctx context.Context, model learn.Classifier) error {
	if x.closed.Load() {
		return ErrClosed
	}
	if !x.opts.scoreKernelEnabled() {
		x.resetKernelState()
		return x.updateUncertaintyLegacy(ctx, model)
	}
	return x.updateUncertaintyKernel(ctx, model)
}

// updateUncertaintyLegacy is the pre-kernel scoring pass, preserved
// verbatim as the WithScoreKernel(false) escape hatch: per-row batch
// scoring over the center slice, sharded across the pool (flat) or the
// coordinator (sharded).
func (x *Index) updateUncertaintyLegacy(ctx context.Context, model learn.Classifier) error {
	x.lastSkipped = 0
	if x.coord != nil {
		degraded, err := x.coord.ScoreAll(ctx, model, x.uncertainty)
		if err != nil {
			return fmt.Errorf("core: scoring index points: %w", err)
		}
		x.degradedShards = degraded
		if len(degraded) > 0 {
			x.stepDegraded = true
		}
		x.mCellsScored.Add(int64(len(x.centers)))
		x.scoresValid = true
		return nil
	}
	err := x.pool.Do(ctx, len(x.centers), func(lo, hi int) error {
		return learn.UncertaintiesInto(ctx, model, x.centers[lo:hi], x.uncertainty[lo:hi])
	})
	if err != nil {
		return fmt.Errorf("core: scoring index points: %w", err)
	}
	x.mCellsScored.Add(int64(len(x.centers)))
	x.scoresValid = true
	return nil
}

// updateUncertaintyKernel is the columnar scoring pass. Three routes, all
// bit-identical on the cells they score:
//
//  1. Exact incremental (DWKNN refit on an append-only labeled set): the
//     retained d_k² bounds prove which cells' k-nearest-neighbor sets can
//     have changed; only that dirty subset is rescored.
//  2. Bounded staleness (opt-in, non-DWKNN models): reuse the previous
//     complete pass for N-1 consecutive retrains.
//  3. Full columnar pass over the packed block, capturing fresh d_k²
//     bounds when the model is a DWKNN.
func (x *Index) updateUncertaintyKernel(ctx context.Context, model learn.Classifier) error {
	n := len(x.centers)
	x.lastSkipped = 0
	dw, isDW := learn.AsDWKNN(model)

	// Route 1: exact delta skipping against the retained model.
	if isDW && x.lastComplete && x.lastDW != nil {
		if newRows, ok := dw.AppendDelta(x.lastDW); ok {
			return x.rescoreDirty(ctx, model, dw, newRows)
		}
	}

	// Route 2: bounded staleness for models without a delta rule.
	if !isDW && x.opts.BoundedStaleness > 1 && x.lastComplete {
		if x.staleRetrains < x.opts.BoundedStaleness-1 {
			x.staleRetrains++
			x.lastSkipped = n
			x.mCellsSkipped.Add(int64(n))
			x.scoresValid = true
			return nil
		}
		x.staleRetrains = 0
	}

	// Route 3: full columnar pass.
	if isDW {
		if cap(x.dk2) < n {
			x.dk2 = make([]float64, n)
		}
		x.dk2 = x.dk2[:n]
	}
	if x.coord != nil {
		pass := shard.ScorePass{Kernel: true}
		if isDW {
			pass.NeedDK = true
			pass.DK2 = x.dk2
		}
		degraded, err := x.coord.ScoreAllPass(ctx, model, x.uncertainty, pass)
		if err != nil {
			return fmt.Errorf("core: scoring index points: %w", err)
		}
		x.degradedShards = degraded
		if len(degraded) > 0 {
			x.stepDegraded = true
		}
		x.finishFullPass(dw, isDW && len(degraded) == 0, len(degraded) == 0, n)
		return nil
	}
	var err error
	if isDW {
		err = x.pool.Do(ctx, n, func(lo, hi int) error {
			return learn.BlockUncertaintiesDKInto(ctx, dw, x.blk, lo, hi, x.uncertainty[lo:hi], x.dk2[lo:hi])
		})
	} else {
		err = x.pool.Do(ctx, n, func(lo, hi int) error {
			return learn.BlockUncertaintiesInto(ctx, model, x.blk, lo, hi, x.uncertainty[lo:hi])
		})
	}
	if err != nil {
		return fmt.Errorf("core: scoring index points: %w", err)
	}
	x.finishFullPass(dw, isDW, true, n)
	return nil
}

// finishFullPass records the outcome of a complete columnar rescore:
// retain the DWKNN (with its fresh d_k² bounds) for the next delta pass
// when every cell was scored, otherwise drop the incremental state so the
// next pass runs in full.
func (x *Index) finishFullPass(dw *learn.DWKNN, retainDW, complete bool, n int) {
	if retainDW {
		x.lastDW = dw
	} else {
		x.lastDW = nil
	}
	x.lastComplete = complete
	x.staleRetrains = 0
	x.mCellsScored.Add(int64(n))
	x.scoresValid = true
}

// rescoreDirty is the exact incremental pass: the refit model equals the
// retained one plus newRows appended to the labeled set, so a center's
// k-nearest-neighbor set — and hence its posterior — can change only if
// some new point lies strictly inside the center's k-th-neighbor ball
// (ties lose to the incumbent on the (distance, index) total order).
// Clean cells keep bit-identical scores by construction; dirty cells are
// rescored through the same block kernels as a full pass.
func (x *Index) rescoreDirty(ctx context.Context, model learn.Classifier, dw *learn.DWKNN, newRows [][]float64) error {
	n := len(x.centers)
	if len(newRows) > 0 {
		var err error
		x.dirtyBuf, err = dw.DirtyCells(x.blk, newRows, x.dk2, x.dirtyBuf[:0])
		if err != nil {
			return fmt.Errorf("core: computing dirty cells: %w", err)
		}
	} else {
		x.dirtyBuf = x.dirtyBuf[:0]
	}
	dirty := x.dirtyBuf
	if len(dirty) == 0 {
		// The refit cannot have moved any center's neighbor set: every
		// score and d_k² bound carries over exactly.
		x.lastDW = dw
		x.lastSkipped = n
		x.mCellsSkipped.Add(int64(n))
		x.scoresValid = true
		return nil
	}
	if x.coord != nil {
		degraded, err := x.coord.ScoreAllPass(ctx, model, x.uncertainty, shard.ScorePass{
			Kernel: true,
			Dirty:  dirty,
			NeedDK: true,
			DK2:    x.dk2,
		})
		if err != nil {
			return fmt.Errorf("core: scoring index points: %w", err)
		}
		x.degradedShards = degraded
		if len(degraded) > 0 {
			// Some dirty cells kept stale scores and stale d_k² bounds:
			// selection already excludes them, and dropping the retained
			// model forces the next pass to rescore in full.
			x.stepDegraded = true
			x.lastDW = nil
			x.lastComplete = false
			x.scoresValid = true
			return nil
		}
	} else {
		scores := make([]float64, len(dirty))
		dks := make([]float64, len(dirty))
		maxShards := (len(dirty) + dirtyShardRows - 1) / dirtyShardRows
		err := x.pool.DoCapped(ctx, len(dirty), maxShards, func(lo, hi int) error {
			return learn.BlockUncertaintiesDKAt(ctx, dw, x.blk, dirty[lo:hi], scores[lo:hi], dks[lo:hi])
		})
		if err != nil {
			return fmt.Errorf("core: scoring index points: %w", err)
		}
		for i, cell := range dirty {
			x.uncertainty[cell] = scores[i]
			x.dk2[cell] = dks[i]
		}
	}
	x.lastDW = dw
	x.lastSkipped = n - len(dirty)
	x.mCellsScored.Add(int64(len(dirty)))
	x.mCellsSkipped.Add(int64(x.lastSkipped))
	x.scoresValid = true
	return nil
}

// dirtyShardRows is the minimum dirty-cell count per pool shard: small
// dirty sets stay on few goroutines (often one), since fan-out overhead
// would dwarf the work.
const dirtyShardRows = 2048

// MostUncertainCells returns the top-k cells by symbolic-point uncertainty,
// descending, with cell id as the deterministic tie-breaker. k is clamped
// to |P|. Selection shards across the worker pool: each shard reduces to
// its local top-k and the merged candidates are re-ranked with the same
// comparator, so the result equals the serial full sort's first k.
func (x *Index) MostUncertainCells(k int) ([]grid.CellID, error) {
	return x.mostUncertainCells(context.Background(), k)
}

// mostUncertainCells is MostUncertainCells with context propagation, so
// the selection work of a traced step attributes to its score span.
func (x *Index) mostUncertainCells(ctx context.Context, k int) ([]grid.CellID, error) {
	if !x.scoresValid {
		return nil, fmt.Errorf("core: UpdateUncertainty has not run for the current model: %w", learn.ErrNotFitted)
	}
	if x.coord != nil {
		// Scatter-gather selection: per-shard local top-k through the
		// backends, merged with the same comparator — exactly the global
		// top-k, minus the cells of shards whose scores are stale. A shard
		// failing the top-k call itself joins the degraded set until the
		// next successful scoring pass.
		cells, newlyDegraded, err := x.coord.MostUncertain(ctx, x.uncertainty, k, x.degradedShards)
		if err != nil {
			return nil, err
		}
		if len(newlyDegraded) > 0 {
			x.stepDegraded = true
			merged := append(append([]int(nil), x.degradedShards...), newlyDegraded...)
			sort.Ints(merged)
			n := 0
			for i, s := range merged {
				if i > 0 && s == merged[n-1] {
					continue
				}
				merged[n] = s
				n++
			}
			x.degradedShards = merged[:n]
		}
		return cells, nil
	}
	if k < 1 {
		k = 1
	}
	if k > len(x.uncertainty) {
		k = len(x.uncertainty)
	}
	less := func(a, b int) bool {
		ua, ub := x.uncertainty[a], x.uncertainty[b]
		if ua != ub {
			return ua > ub
		}
		return a < b
	}
	var mu sync.Mutex
	var candidates []int
	err := x.pool.Do(ctx, len(x.uncertainty), func(lo, hi int) error {
		local := make([]int, hi-lo)
		for i := range local {
			local[i] = lo + i
		}
		sort.Slice(local, func(a, b int) bool { return less(local[a], local[b]) })
		if len(local) > k {
			local = local[:k]
		}
		mu.Lock()
		candidates = append(candidates, local...)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(candidates, func(a, b int) bool { return less(candidates[a], candidates[b]) })
	out := make([]grid.CellID, k)
	for i := 0; i < k; i++ {
		out[i] = grid.CellID(candidates[i])
	}
	return out, nil
}

// CellUncertainty returns the last computed uncertainty of a cell.
func (x *Index) CellUncertainty(id grid.CellID) (float64, error) {
	if id < 0 || int(id) >= len(x.uncertainty) {
		return 0, fmt.Errorf("core: cell %d out of range [0,%d)", id, len(x.uncertainty))
	}
	return x.uncertainty[id], nil
}

// loadCell reconstructs one cell's tuples via the mapping method m and the
// chunk-store hash merge. It is the prefetcher's LoadFunc and the
// synchronous load path; ctx aborts it at the next chunk boundary. On a
// sharded index the cell loads from its owning shard (ids remapped to
// global); a failing or slow owner surfaces shard.ErrShardUnavailable,
// which EnsureRegion degrades on instead of failing the step.
func (x *Index) loadCell(ctx context.Context, cell int) ([]uint32, [][]float64, error) {
	if x.coord != nil {
		ids, vals, visited, err := x.coord.LoadCell(ctx, grid.CellID(cell))
		if err != nil {
			return nil, nil, fmt.Errorf("core: loading cell %d: %w", cell, err)
		}
		x.mEntries.Add(int64(visited))
		return ids, vals, nil
	}
	if x.snap != nil {
		rows, visited, err := x.snap.LoadCell(ctx, grid.CellID(cell))
		if err != nil {
			return nil, nil, fmt.Errorf("core: loading cell %d: %w", cell, err)
		}
		x.mEntries.Add(int64(visited))
		ids := make([]uint32, len(rows))
		vals := make([][]float64, len(rows))
		for i, r := range rows {
			ids[i] = r.ID
			vals[i] = r.Vals
		}
		return ids, vals, nil
	}
	box, err := x.grid.CellBox(grid.CellID(cell))
	if err != nil {
		return nil, nil, err
	}
	chunks, err := x.mapping.Chunks(grid.CellID(cell))
	if err != nil {
		return nil, nil, err
	}
	rows, visited, err := x.store.MergeChunks(ctx, box, chunks)
	if err != nil {
		return nil, nil, fmt.Errorf("core: loading cell %d: %w", cell, err)
	}
	// loadCell also runs on the prefetcher goroutine; the counter is
	// atomic, so this is safe concurrent with Stats().
	x.mEntries.Add(int64(visited))
	ids := make([]uint32, len(rows))
	vals := make([][]float64, len(rows))
	for i, r := range rows {
		ids[i] = r.ID
		vals[i] = r.Vals
	}
	return ids, vals, nil
}

// EnsureRegion makes the most uncertain cell's subspace resident
// (Algorithm 2 lines 18-20), applying the §3.2 swap-deferral policy when
// prefetching is enabled. It returns the resident cell after the call.
//
// The call is split into two observed phases: "score" covers symbolic
// index re-scoring and top-k selection, "load" covers everything needed to
// make the target resident (cache check, synchronous load, prefetch
// take/defer/await) except the cache install itself, which installRegion
// reports as the "swap" phase.
func (x *Index) EnsureRegion(ctx context.Context, model learn.Classifier) (grid.CellID, error) {
	if x.closed.Load() {
		return 0, ErrClosed
	}
	x.stepDegraded = false
	sctx, score := x.tracer.Phase(ctx, obs.PhaseScore)
	if !x.scoresValid {
		if err := x.UpdateUncertainty(sctx, model); err != nil {
			score.End(nil)
			return 0, err
		}
	}
	// Shards skipped by the (possibly earlier) scoring pass still degrade
	// this step: their cells are excluded from selection below.
	if len(x.degradedShards) > 0 {
		x.stepDegraded = true
	}
	top, err := x.mostUncertainCells(sctx, 2)
	if err != nil {
		score.End(nil)
		return 0, err
	}
	if len(top) == 0 {
		// Only possible when degraded shards own every cell with a live
		// score; the healthy shards have nothing to offer this iteration.
		score.End(nil)
		return 0, fmt.Errorf("core: no selectable cells (degraded shards %v): %w", x.degradedShards, shard.ErrShardUnavailable)
	}
	x.hScore.ObserveDuration(score.End(map[string]float64{
		"points":  float64(len(x.centers)),
		"cell":    float64(top[0]),
		"skipped": float64(x.lastSkipped),
	}))

	target := top[0]
	resident := x.cache.RegionCell()
	lctx, load := x.tracer.Phase(ctx, obs.PhaseLoad)
	bytes0, chunks0 := x.IOStats()
	// endLoad closes the load phase with the I/O delta it caused. Under
	// concurrent prefetching the delta can include background reads — it
	// attributes I/O to the iteration that waited on it.
	endLoad := func(outcome string) {
		bytes1, chunks1 := x.IOStats()
		x.hLoad.ObserveDuration(load.End(map[string]float64{
			"cell":          float64(target),
			"bytes_read":    float64(bytes1 - bytes0),
			"chunks_read":   float64(chunks1 - chunks0),
			"cached":        boolAttr(outcome == "cached"),
			"prefetch_hit":  boolAttr(outcome == "prefetch_hit"),
			"deferred":      boolAttr(outcome == "deferred"),
			"blocking_load": boolAttr(outcome == "load"),
			"degraded":      boolAttr(outcome == "degraded"),
		}))
	}
	// finishDegradedLoad resolves a load that failed because the target
	// cell's shard is unavailable: fall back to the runner-up cell, then
	// to the resident region, before giving up. ok=false propagates the
	// original error.
	finishDegradedLoad := func() (grid.CellID, bool, error) {
		x.stepDegraded = true
		if len(top) > 1 {
			if ids, rows, err := x.loadCell(lctx, int(top[1])); err == nil {
				target = top[1]
				endLoad("degraded")
				if err := x.installRegion(ctx, int(top[1]), ids, rows); err != nil {
					return 0, true, err
				}
				return top[1], true, nil
			}
		}
		if resident != memcache.NoRegion {
			endLoad("degraded")
			return grid.CellID(resident), true, nil
		}
		return 0, false, nil
	}
	degradable := func(err error) bool {
		return err != nil && x.coord != nil && errors.Is(err, shard.ErrShardUnavailable)
	}
	if x.cache.HasRegion(int(target)) {
		x.deferredFor = 0
		endLoad("cached")
		x.prefetchRunnerUp(top)
		return target, nil
	}

	if x.pf == nil {
		// Synchronous path: load and swap immediately.
		ids, rows, err := x.loadCell(lctx, int(target))
		if err != nil {
			if degradable(err) {
				if cell, ok, ferr := finishDegradedLoad(); ok {
					return cell, ferr
				}
			}
			load.End(nil)
			return 0, err
		}
		endLoad("load")
		if err := x.installRegion(ctx, int(target), ids, rows); err != nil {
			return 0, err
		}
		return target, nil
	}

	// Prefetching path. A completed background load wins instantly.
	if r, ok := x.pf.TryTake(int(target)); ok {
		if r.Err != nil {
			if degradable(r.Err) {
				if cell, ok, ferr := finishDegradedLoad(); ok {
					return cell, ferr
				}
			}
			load.End(nil)
			return 0, r.Err
		}
		x.mPrefHits.Inc()
		endLoad("prefetch_hit")
		if err := x.installRegion(ctx, int(target), r.IDs, r.Rows); err != nil {
			return 0, err
		}
		return target, nil
	}
	// Otherwise start (or continue) the background load and defer the swap
	// for up to θ iterations, keeping the current region useful meanwhile.
	theta := x.pf.Theta(x.opts.LatencyThreshold)
	if x.pendingCell != int(target) {
		x.pendingCell = int(target)
		x.deferredFor = 0
	}
	if x.deferredFor < theta && resident != memcache.NoRegion {
		if _, err := x.pf.Start(int(target)); err != nil {
			load.End(nil)
			return 0, err
		}
		x.deferredFor++
		x.mDeferred.Inc()
		endLoad("deferred")
		return grid.CellID(resident), nil
	}
	// Deferral budget exhausted (or nothing resident yet): block.
	r := x.pf.Await(lctx, int(target))
	if r.Err != nil {
		if degradable(r.Err) {
			if cell, ok, ferr := finishDegradedLoad(); ok {
				return cell, ferr
			}
		}
		load.End(nil)
		return 0, r.Err
	}
	endLoad("load")
	if err := x.installRegion(ctx, int(target), r.IDs, r.Rows); err != nil {
		return 0, err
	}
	x.prefetchRunnerUp(top)
	return target, nil
}

// boolAttr encodes a flag as a trace attribute.
func boolAttr(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// installRegion swaps a loaded region into the cache, tolerating budget
// truncation (a partial region still helps; the sample keeps global
// coverage). On a traced context the swap phase becomes a child span of
// the step, sibling to the load phase that produced the region.
func (x *Index) installRegion(ctx context.Context, cell int, ids []uint32, rows [][]float64) error {
	_, swap := x.tracer.Phase(ctx, obs.PhaseSwap)
	err := x.cache.SetRegion(cell, ids, rows)
	if err != nil && !isBudgetErr(err) {
		swap.End(nil)
		return err
	}
	x.mSwaps.Inc()
	x.deferredFor = 0
	x.pendingCell = memcache.NoRegion
	x.hSwap.ObserveDuration(swap.End(map[string]float64{
		"cell": float64(cell),
		"rows": float64(len(ids)),
	}))
	return nil
}

// prefetchRunnerUp warms the second most-uncertain cell in the background.
func (x *Index) prefetchRunnerUp(top []grid.CellID) {
	if x.pf == nil || len(top) < 2 {
		return
	}
	next := int(top[1])
	if x.cache.ContainsRegion(next) {
		return
	}
	// Best effort; a busy prefetcher just drops the hint.
	_, _ = x.pf.Start(next)
}

func isBudgetErr(err error) bool {
	return errors.Is(err, memcache.ErrBudgetExceeded)
}

// Candidates visits the resident unlabeled tuples (uniform sample plus
// loaded region) in ascending id order.
func (x *Index) Candidates(fn func(id uint32, row []float64) bool) {
	x.cache.EachSorted(fn)
}

// CandidateCount returns the number of resident unlabeled tuples.
func (x *Index) CandidateCount() int { return x.cache.Len() }

// MarkLabeled evicts a tuple after the user labeled it (U <- U - {x}).
func (x *Index) MarkLabeled(id uint32) { x.cache.Remove(id) }

// InvalidateScores marks the symbolic-point uncertainties stale; the IDE
// engine calls it after retraining the model.
func (x *Index) InvalidateScores() { x.scoresValid = false }

// ResidentRegion returns the cell id of the loaded region, or
// memcache.NoRegion.
func (x *Index) ResidentRegion() int { return x.cache.RegionCell() }

// Stats returns a snapshot of activity counters. All sources are atomic
// instruments, so it is safe to call concurrently with an in-flight
// iteration (e.g. from a metrics endpoint).
func (x *Index) Stats() Stats {
	s := Stats{
		RegionSwaps:    int(x.mSwaps.Value()),
		SwapsDeferred:  int(x.mDeferred.Value()),
		PrefetchHits:   int(x.mPrefHits.Value()),
		EntriesVisited: int(x.mEntries.Value()),
	}
	s.BytesRead, s.ChunksRead = x.IOStats()
	s.PeakMemory = x.budget.Peak()
	if bc := x.BlockCache(); bc != nil {
		cs := bc.Stats()
		s.CacheHits, s.CacheMisses = cs.Hits, cs.Misses
	}
	return s
}

// ResultRetrieval implements Algorithm 2 line 26 for the UEI scheme. It
// prunes the grid with the symbolic index points — cells whose center the
// model puts below minCellPosterior positive posterior cannot plausibly
// hold results — and reconstructs the survivors in a single streaming pass
// over the store: per dimension, only the chunks overlapping the union of
// the passing cells' segments are read, and each such chunk is read
// exactly once (unlike loading cells one by one, which re-reads shared
// chunk slabs per cell). Fully reconstructed rows are kept when the model
// classifies them positive. Setting minCellPosterior to 0 disables
// pruning and yields the exact answer set of the model.
func (x *Index) ResultRetrieval(ctx context.Context, model learn.Classifier, minCellPosterior float64) ([]uint32, error) {
	if x.closed.Load() {
		return nil, ErrClosed
	}
	if minCellPosterior < 0 || minCellPosterior >= 0.5 {
		return nil, fmt.Errorf("core: minCellPosterior %g outside [0, 0.5)", minCellPosterior)
	}
	dims := x.grid.Dims()
	segs := x.grid.Segments()

	// Score every cell center in one sharded batch pass; the posteriors are
	// reused for the final trim below.
	post := make([]float64, x.grid.NumCells())
	score := func(lo, hi int) error {
		return learn.PosteriorsInto(ctx, model, x.centers[lo:hi], post[lo:hi])
	}
	if x.opts.scoreKernelEnabled() {
		score = func(lo, hi int) error {
			return learn.BlockPosteriorsInto(ctx, model, x.blk, lo, hi, post[lo:hi])
		}
	}
	err := x.pool.Do(ctx, len(x.centers), score)
	if err != nil {
		return nil, err
	}

	// Mark passing cells and the per-dimension segments they touch.
	anyPassing := false
	markedSeg := make([][]bool, dims)
	for d := 0; d < dims; d++ {
		markedSeg[d] = make([]bool, segs[d])
	}
	for cell := 0; cell < x.grid.NumCells(); cell++ {
		if post[cell] < minCellPosterior {
			continue
		}
		anyPassing = true
		coords, err := x.grid.Coords(grid.CellID(cell))
		if err != nil {
			return nil, err
		}
		for d, c := range coords {
			markedSeg[d][c] = true
		}
	}
	if !anyPassing {
		return nil, nil
	}

	// Stream each dimension's relevant chunks once, accumulating partial
	// rows; a row materializes only if a marked segment hits it on every
	// dimension (a superset of the passing-cell union, trimmed below).
	// Sharded indexes run the same scan on every backend concurrently (each
	// shard is a self-contained store over its own rows) and merge the rows
	// under global ids. Retrieval is the final answer, so the scatter is
	// strict: a failing shard fails the call rather than silently dropping
	// its rows. Both paths share shard.ScanMarked, so the row set is
	// byte-identical across layouts and transports.
	var rows []shard.RetrievedRow
	var entries int
	if x.coord != nil {
		rows, entries, err = x.coord.Retrieve(ctx, markedSeg)
	} else if x.snap != nil {
		rows, entries, err = x.snap.ScanMarked(ctx, markedSeg)
	} else {
		rows, entries, err = shard.ScanMarked(ctx, x.grid, x.store, markedSeg)
	}
	if err != nil {
		return nil, err
	}
	x.mEntries.Add(int64(entries))

	// Final trim: exact passing-cell membership, then the classifier. rows
	// arrive sorted by global id, so out stays ascending.
	var out []uint32
	for _, r := range rows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cell, err := x.grid.CellOf(r.Vals)
		if err != nil {
			return nil, err
		}
		if post[cell] < minCellPosterior {
			continue
		}
		cls, err := learn.Predict(model, r.Vals)
		if err != nil {
			return nil, err
		}
		if cls == learn.ClassPositive {
			out = append(out, r.ID)
		}
	}
	return out, nil
}

// CellEstimate exposes the mapping's I/O cost estimate for a cell (for a
// sharded index, the estimate from the cell's owning shard).
func (x *Index) CellEstimate(id grid.CellID) (bytes int64, entries int, err error) {
	if x.coord != nil {
		return x.coord.CostEstimate(id)
	}
	if x.snap != nil {
		return x.snap.CostEstimate(id)
	}
	return x.mapping.CostEstimate(id)
}

// MeanCellBytes reports the average estimated load cost across all cells —
// a build-quality diagnostic surfaced by uei-ingest.
func (x *Index) MeanCellBytes() float64 {
	var total int64
	for c := 0; c < x.grid.NumCells(); c++ {
		b, _, err := x.CellEstimate(grid.CellID(c))
		if err != nil {
			continue
		}
		total += b
	}
	if x.grid.NumCells() == 0 {
		return 0
	}
	return float64(total) / float64(x.grid.NumCells())
}

// Uncertainties returns a copy of the symbolic-point uncertainty vector,
// aligned with cell ids; primarily for tests and diagnostics.
func (x *Index) Uncertainties() []float64 {
	out := make([]float64, len(x.uncertainty))
	copy(out, x.uncertainty)
	return out
}

// MaxUncertainty returns the current maximum symbolic-point uncertainty.
func (x *Index) MaxUncertainty() float64 {
	m := math.Inf(-1)
	for _, u := range x.uncertainty {
		if u > m {
			m = u
		}
	}
	return m
}
