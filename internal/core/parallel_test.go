package core

import (
	"context"
	"errors"
	"testing"
)

// TestParallelScoringParity is the tentpole determinism guarantee: the same
// store scored with 1, 4, and 8 workers must produce bit-identical
// uncertainty vectors and the identical most-uncertain cell ranking. Run
// under -race this also exercises the shard-disjointness of the pool writes.
func TestParallelScoringParity(t *testing.T) {
	ctx := context.Background()

	type snapshot struct {
		unc  []float64
		top  []int
		sync float64
	}
	score := func(workers int) snapshot {
		idx, ds := openTestIndex(t, 1200, Options{Workers: workers, Seed: 9})
		if err := idx.InitExploration(ctx); err != nil {
			t.Fatal(err)
		}
		model := boundaryModel(t, ds, testRegion(t, ds), 40)
		if err := idx.UpdateUncertainty(ctx, model); err != nil {
			t.Fatal(err)
		}
		unc := append([]float64(nil), idx.Uncertainties()...)
		cells, err := idx.MostUncertainCells(16)
		if err != nil {
			t.Fatal(err)
		}
		top := make([]int, len(cells))
		for i, c := range cells {
			top[i] = int(c)
		}
		return snapshot{unc: unc, top: top, sync: idx.MaxUncertainty()}
	}

	want := score(1)
	for _, w := range []int{4, 8} {
		got := score(w)
		if len(got.unc) != len(want.unc) {
			t.Fatalf("workers=%d: %d uncertainties, want %d", w, len(got.unc), len(want.unc))
		}
		for i := range want.unc {
			if got.unc[i] != want.unc[i] {
				t.Fatalf("workers=%d: uncertainty[%d] = %v, serial %v", w, i, got.unc[i], want.unc[i])
			}
		}
		if len(got.top) != len(want.top) {
			t.Fatalf("workers=%d: top-k size %d, want %d", w, len(got.top), len(want.top))
		}
		for i := range want.top {
			if got.top[i] != want.top[i] {
				t.Fatalf("workers=%d: top[%d] = cell %d, serial cell %d", w, i, got.top[i], want.top[i])
			}
		}
		if got.sync != want.sync {
			t.Fatalf("workers=%d: MaxUncertainty %v != %v", w, got.sync, want.sync)
		}
	}
}

// TestParallelExplorationParity runs the full per-iteration loop (score,
// select, swap) in serial and with 8 workers and requires the identical
// sequence of region swaps — byte-identical cell selections end to end.
func TestParallelExplorationParity(t *testing.T) {
	ctx := context.Background()

	run := func(workers int) []int {
		idx, ds := openTestIndex(t, 1500, Options{Workers: workers, Seed: 5})
		if err := idx.InitExploration(ctx); err != nil {
			t.Fatal(err)
		}
		region := testRegion(t, ds)
		var swaps []int
		for labels := 20; labels <= 60; labels += 10 {
			model := boundaryModel(t, ds, region, labels)
			if err := idx.UpdateUncertainty(ctx, model); err != nil {
				t.Fatal(err)
			}
			cell, err := idx.EnsureRegion(ctx, model)
			if err != nil {
				t.Fatal(err)
			}
			swaps = append(swaps, int(cell))
		}
		return swaps
	}

	serial := run(1)
	parallel := run(8)
	if len(serial) != len(parallel) {
		t.Fatalf("swap counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("iteration %d: serial swapped to cell %d, parallel to %d", i, serial[i], parallel[i])
		}
	}
}

// TestCloseIdempotent: Close twice (plus the t.Cleanup Close) must not
// panic, and operations after Close must fail with ErrClosed.
func TestCloseIdempotent(t *testing.T) {
	ctx := context.Background()
	idx, ds := openTestIndex(t, 500, Options{Workers: 4})
	if err := idx.InitExploration(ctx); err != nil {
		t.Fatal(err)
	}
	model := boundaryModel(t, ds, testRegion(t, ds), 30)
	if err := idx.UpdateUncertainty(ctx, model); err != nil {
		t.Fatal(err)
	}

	idx.Close()
	idx.Close()

	if err := idx.InitExploration(ctx); !errors.Is(err, ErrClosed) {
		t.Errorf("InitExploration after Close: want ErrClosed, got %v", err)
	}
	if err := idx.UpdateUncertainty(ctx, model); !errors.Is(err, ErrClosed) {
		t.Errorf("UpdateUncertainty after Close: want ErrClosed, got %v", err)
	}
	if _, err := idx.EnsureRegion(ctx, model); !errors.Is(err, ErrClosed) {
		t.Errorf("EnsureRegion after Close: want ErrClosed, got %v", err)
	}
}

// TestCloseMidPrefetch closes the index while the prefetcher may hold an
// in-flight background load; Close must block until the worker exits rather
// than leak it, and a double Close afterwards stays safe.
func TestCloseMidPrefetch(t *testing.T) {
	ctx := context.Background()
	idx, ds := openTestIndex(t, 2000, Options{
		Workers:        4,
		EnablePrefetch: true,
		Seed:           3,
	})
	if err := idx.InitExploration(ctx); err != nil {
		t.Fatal(err)
	}
	region := testRegion(t, ds)
	model := boundaryModel(t, ds, region, 40)
	if err := idx.UpdateUncertainty(ctx, model); err != nil {
		t.Fatal(err)
	}
	// EnsureRegion schedules a background prefetch of the runner-up cell;
	// Close immediately after races against that load.
	if _, err := idx.EnsureRegion(ctx, model); err != nil {
		t.Fatal(err)
	}
	idx.Close()
	idx.Close()
}

// TestUpdateUncertaintyCanceled: a canceled context aborts the scoring pass
// and surfaces context.Canceled.
func TestUpdateUncertaintyCanceled(t *testing.T) {
	idx, ds := openTestIndex(t, 800, Options{Workers: 4})
	if err := idx.InitExploration(context.Background()); err != nil {
		t.Fatal(err)
	}
	model := boundaryModel(t, ds, testRegion(t, ds), 30)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := idx.UpdateUncertainty(ctx, model); !errors.Is(err, context.Canceled) {
		t.Errorf("want context.Canceled, got %v", err)
	}
}
