package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/stream"
)

// buildLiveIndex builds a live store from ds and opens it.
func buildLiveIndex(t *testing.T, ds *dataset.Dataset, shards int, opts Options) *Index {
	t.Helper()
	dir := t.TempDir()
	if err := Build(dir, ds, BuildOptions{TargetChunkBytes: 2048, Shards: shards, LiveIngest: true}); err != nil {
		t.Fatal(err)
	}
	if opts.MemoryBudgetBytes == 0 {
		opts.MemoryBudgetBytes = 1 << 20
	}
	idx, err := Open(context.Background(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(idx.Close)
	return idx
}

// TestLiveLayoutPinning covers the Open contract around the live layout:
// LiveIngest on a static directory fails with ErrLayoutMismatch, live
// directories auto-detect, and the write path on a static index fails
// with ErrNotLive.
func TestLiveLayoutPinning(t *testing.T) {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 400, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	staticDir := t.TempDir()
	if err := Build(staticDir, ds, BuildOptions{TargetChunkBytes: 2048}); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(ctx, staticDir, Options{MemoryBudgetBytes: 1 << 20, LiveIngest: true}); !errors.Is(err, chunkstore.ErrLayoutMismatch) {
		t.Fatalf("LiveIngest on a static dir: err = %v, want ErrLayoutMismatch", err)
	}
	static, err := Open(ctx, staticDir, Options{MemoryBudgetBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer static.Close()
	if _, err := static.Append(ctx, [][]float64{ds.CopyRow(0)}); !errors.Is(err, ErrNotLive) {
		t.Errorf("Append on static index: err = %v, want ErrNotLive", err)
	}
	if err := static.Flush(ctx); !errors.Is(err, ErrNotLive) {
		t.Errorf("Flush on static index: err = %v, want ErrNotLive", err)
	}
	if _, err := static.AdvanceSnapshot(); !errors.Is(err, ErrNotLive) {
		t.Errorf("AdvanceSnapshot on static index: err = %v, want ErrNotLive", err)
	}
	if static.Live() != nil || static.LiveEpoch() != 0 || static.FollowsLive() {
		t.Error("static index reports live state")
	}

	// Auto-detect and the explicit flag both open a live dir; a sharded
	// live store cannot be opened as flat.
	liveDir := t.TempDir()
	if err := Build(liveDir, ds, BuildOptions{TargetChunkBytes: 2048, Shards: 2, LiveIngest: true}); err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{MemoryBudgetBytes: 1 << 20},
		{MemoryBudgetBytes: 1 << 20, LiveIngest: true, Shards: 2},
	} {
		idx, err := Open(ctx, liveDir, opts)
		if err != nil {
			t.Fatalf("open live dir with %+v: %v", opts, err)
		}
		if idx.Live() == nil || idx.LiveEpoch() == 0 {
			t.Error("live index reports no live state")
		}
		if !idx.Sharded() || idx.NumShards() != 2 {
			t.Errorf("Sharded=%v NumShards=%d, want sharded 2", idx.Sharded(), idx.NumShards())
		}
		idx.Close()
	}
	if _, err := Open(ctx, liveDir, Options{MemoryBudgetBytes: 1 << 20, Shards: 1}); !errors.Is(err, chunkstore.ErrLayoutMismatch) {
		t.Fatalf("sharded live dir opened as flat: err = %v, want ErrLayoutMismatch", err)
	}
	if _, err := Open(ctx, liveDir, Options{MemoryBudgetBytes: 1 << 20, Shards: 3}); !errors.Is(err, chunkstore.ErrLayoutMismatch) {
		t.Fatalf("shard-count mismatch: err = %v, want ErrLayoutMismatch", err)
	}
	if _, err := Open(ctx, liveDir, Options{MemoryBudgetBytes: 1 << 20, SegmentsPerDim: 7}); err == nil {
		t.Error("grid mismatch on a live store should fail Open (cell geometry is pinned)")
	}
}

// TestLiveSnapshotPinningAndAdvance checks MVCC at the index level: an
// opened index (and its views) reads a fixed epoch through appends and
// flushes, and AdvanceSnapshot — the explicit iteration-boundary hook —
// moves it to the newest committed epoch.
func TestLiveSnapshotPinningAndAdvance(t *testing.T) {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 800, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("S=%d", shards), func(t *testing.T) {
			idx := buildLiveIndex(t, ds, shards, Options{Workers: 2})
			epoch0, rows0 := idx.LiveEpoch(), idx.RowCount()
			if rows0 != ds.Len() {
				t.Fatalf("RowCount = %d, want %d", rows0, ds.Len())
			}

			view, err := idx.NewView(ViewOptions{MemoryBudgetBytes: 1 << 20, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			defer view.Close()
			if view.LiveEpoch() != epoch0 {
				t.Fatalf("view pinned epoch %d, parent %d", view.LiveEpoch(), epoch0)
			}

			// Durable but not visible: append + flush moves the committed
			// epoch, not any pinned snapshot.
			batch := [][]float64{ds.CopyRow(0), ds.CopyRow(1), ds.CopyRow(2)}
			if _, err := idx.Append(ctx, batch); err != nil {
				t.Fatal(err)
			}
			if err := idx.Flush(ctx); err != nil {
				t.Fatal(err)
			}
			if idx.RowCount() != rows0 || view.RowCount() != rows0 {
				t.Fatalf("pinned snapshots moved: idx %d, view %d, want %d", idx.RowCount(), view.RowCount(), rows0)
			}

			moved, err := idx.AdvanceSnapshot()
			if err != nil || !moved {
				t.Fatalf("AdvanceSnapshot = %v, %v; want moved", moved, err)
			}
			if idx.RowCount() != rows0+len(batch) {
				t.Fatalf("advanced RowCount = %d, want %d", idx.RowCount(), rows0+len(batch))
			}
			if view.RowCount() != rows0 || view.LiveEpoch() != epoch0 {
				t.Error("view advanced with its parent; views must pin their own epoch")
			}
			if moved, err := view.AdvanceSnapshot(); err != nil || !moved {
				t.Fatalf("view AdvanceSnapshot = %v, %v; want moved", moved, err)
			}
			if view.RowCount() != rows0+len(batch) {
				t.Fatalf("view advanced RowCount = %d, want %d", view.RowCount(), rows0+len(batch))
			}
			// Idempotent when nothing new committed.
			if moved, err := idx.AdvanceSnapshot(); err != nil || moved {
				t.Fatalf("second AdvanceSnapshot = %v, %v; want no move", moved, err)
			}

			// The advanced snapshot serves the appended rows.
			got, err := idx.FetchRows(ctx, []uint32{uint32(rows0)})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 1 || got[0].ID != uint32(rows0) {
				t.Fatalf("FetchRows(appended) = %+v", got)
			}
			for d, v := range got[0].Vals {
				if v != batch[0][d] {
					t.Fatalf("appended row dim %d = %v, want %v", d, v, batch[0][d])
				}
			}
		})
	}
}

// TestLiveCloseNoGoroutineLeak opens and closes a live index 100 times —
// with prefetch on, background flush/compaction loops running, and
// appends in flight — and checks the goroutine count returns to baseline.
// Close must also be idempotent.
func TestLiveCloseNoGoroutineLeak(t *testing.T) {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 300, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Build(dir, ds, BuildOptions{TargetChunkBytes: 2048, LiveIngest: true}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	before := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		idx, err := Open(ctx, dir, Options{
			MemoryBudgetBytes: 1 << 20,
			EnablePrefetch:    true,
			Workers:           2,
			// A tiny memtable and a fast timer keep the background flush
			// and compaction loops genuinely busy across the close.
			MemtableBytes: 1 << 10,
			FlushInterval: time.Millisecond,
		})
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		if _, err := idx.Append(ctx, [][]float64{ds.CopyRow(dataset.RowID(i % ds.Len()))}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		idx.Close()
		idx.Close() // idempotent
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after 100 open/close cycles", before, runtime.NumGoroutine())
}

// TestLiveStaticCommitPointUntouched pins the regression contract that
// static layouts are byte-identical to before the live write path existed:
// building a static store writes no live artifacts (no CURRENT, no WAL),
// and IsLiveDir stays false for both flat and sharded static layouts.
func TestLiveStaticCommitPointUntouched(t *testing.T) {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 300, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2} {
		dir := t.TempDir()
		if err := Build(dir, ds, BuildOptions{TargetChunkBytes: 2048, Shards: shards}); err != nil {
			t.Fatal(err)
		}
		if stream.IsLiveDir(dir) {
			t.Errorf("static build (shards=%d) produced a live layout", shards)
		}
	}
}
