package core

import (
	"context"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/shard"
	"github.com/uei-db/uei/internal/shard/remote"
)

// reportStepP99 reports the tail of the per-step latencies — the figure
// hedging exists to improve; the mean barely moves.
func reportStepP99(b *testing.B, durs []time.Duration) {
	if len(durs) == 0 {
		return
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := (len(sorted) * 99) / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	b.ReportMetric(float64(sorted[i].Nanoseconds()), "p99-ns/step")
}

// BenchmarkRemoteShardedStep measures the full per-iteration step —
// re-score, top-k, cell load — across transports: in-process sharded,
// remote over the wire protocol, and remote with an injected slow primary
// replica with hedging off versus on. CI records this in
// bench/remotestep.txt; the hedged slow-replica line's p99 must beat the
// unhedged one.
func BenchmarkRemoteShardedStep(b *testing.B) {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 4000, Seed: 21})
	if err != nil {
		b.Fatal(err)
	}
	bounds, err := ds.Bounds()
	if err != nil {
		b.Fatal(err)
	}
	model := learn.NewDWKNN(7, bounds.Widths())
	var X [][]float64
	var y []int
	for i := 0; i < 50; i++ {
		X = append(X, ds.CopyRow(dataset.RowID(i*(ds.Len()/50))))
		y = append(y, i%2)
	}
	if err := model.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	dir := b.TempDir()
	if err := Build(dir, ds, BuildOptions{TargetChunkBytes: 16 * 1024, Shards: 2}); err != nil {
		b.Fatal(err)
	}

	step := func(b *testing.B, idx *Index) {
		durs := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := time.Now()
			idx.InvalidateScores()
			if _, err := idx.EnsureRegion(ctx, model); err != nil {
				b.Fatal(err)
			}
			durs = append(durs, time.Since(start))
		}
		b.StopTimer()
		reportStepP99(b, durs)
	}

	b.Run("transport=local", func(b *testing.B) {
		idx, err := Open(ctx, dir, Options{MemoryBudgetBytes: 1 << 24, Workers: 4, Shards: 2})
		if err != nil {
			b.Fatal(err)
		}
		defer idx.Close()
		step(b, idx)
	})

	// One backing data plane behind two worker endpoints, as two uei-shardd
	// processes over copies of the store would serve it.
	backing, err := Open(ctx, dir, Options{MemoryBudgetBytes: 1 << 24, Workers: 4, Shards: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer backing.Close()
	man, err := shard.LoadManifest(dir)
	if err != nil {
		b.Fatal(err)
	}
	handler := remote.NewServer(backing.ShardCoordinator(), man, func(string, ...any) {})
	w1 := httptest.NewServer(handler)
	defer w1.Close()
	w2 := httptest.NewServer(handler)
	defer w2.Close()
	endpoints := []string{w1.URL, w2.URL}

	openRemoteIdx := func(b *testing.B, replication int, hedge time.Duration) *Index {
		idx, err := Open(ctx, "", Options{
			MemoryBudgetBytes: 1 << 24, Workers: 4,
			ShardEndpoints: endpoints, Replication: replication, HedgeDelay: hedge,
		})
		if err != nil {
			b.Fatal(err)
		}
		return idx
	}

	b.Run("transport=remote", func(b *testing.B) {
		idx := openRemoteIdx(b, 1, 0)
		defer idx.Close()
		step(b, idx)
	})

	// A primary replica that answers, but slowly — the grey-failure mode
	// hedging targets. The delay is injected client-side in the attempt
	// path, so cancellation (the hedged winner's loser-cancel) cuts it
	// short exactly like a slow network leg. The hedge delay must sit
	// above the healthy per-op service time (a premature hedge duplicates
	// CPU-heavy scoring work and makes things worse) and below the fault
	// delay, the same calibration an operator does against the op's p95.
	slowPrimary := func(ctx context.Context, _, replica int, _ string) error {
		if replica != 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(25 * time.Millisecond):
			return nil
		}
	}

	b.Run("transport=remote/slowreplica/hedge=off", func(b *testing.B) {
		idx := openRemoteIdx(b, 2, 0)
		defer idx.Close()
		idx.ShardCoordinator().SetFaultHook(slowPrimary)
		step(b, idx)
	})

	b.Run("transport=remote/slowreplica/hedge=8ms", func(b *testing.B) {
		idx := openRemoteIdx(b, 2, 8*time.Millisecond)
		defer idx.Close()
		idx.ShardCoordinator().SetFaultHook(slowPrimary)
		step(b, idx)
	})
}
