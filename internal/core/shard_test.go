package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/shard"
)

// openShardedPair builds a flat and a sharded store over the same dataset
// and opens both with identical options, for parity checks.
func openShardedPair(t *testing.T, n, shards int, opts Options) (flat, sharded *Index, ds *dataset.Dataset) {
	t.Helper()
	flat, ds = openTestIndex(t, n, opts)
	dir := t.TempDir()
	if err := Build(dir, ds, BuildOptions{TargetChunkBytes: 2048, Shards: shards}); err != nil {
		t.Fatal(err)
	}
	if opts.MemoryBudgetBytes == 0 {
		opts.MemoryBudgetBytes = 1 << 20
	}
	opts.Shards = shards
	sharded, err := Open(context.Background(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sharded.Close)
	return flat, sharded, ds
}

// TestShardedParity is the acceptance gate for the scatter-gather design:
// with every shard healthy, a sharded index must make byte-identical
// decisions to a flat index over the same dataset — same uncertainty
// vector, same top-k, same selected cell, same retrieval set.
func TestShardedParity(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("S=%d", shards), func(t *testing.T) {
			flat, sharded, ds := openShardedPair(t, 2500, shards, Options{Workers: 2})
			if !sharded.Sharded() || sharded.NumShards() != shards {
				t.Fatalf("sharded index reports Sharded=%v NumShards=%d", sharded.Sharded(), sharded.NumShards())
			}
			if flat.RowCount() != sharded.RowCount() || flat.Grid().NumCells() != sharded.Grid().NumCells() {
				t.Fatal("flat and sharded indexes disagree on shape")
			}
			model := boundaryModel(t, ds, testRegion(t, ds), 40)
			ctx := context.Background()

			if err := flat.UpdateUncertainty(ctx, model); err != nil {
				t.Fatal(err)
			}
			if err := sharded.UpdateUncertainty(ctx, model); err != nil {
				t.Fatal(err)
			}
			fu, su := flat.Uncertainties(), sharded.Uncertainties()
			for i := range fu {
				if fu[i] != su[i] {
					t.Fatalf("uncertainty[%d]: flat %v, sharded %v", i, fu[i], su[i])
				}
			}

			ftop, err := flat.MostUncertainCells(7)
			if err != nil {
				t.Fatal(err)
			}
			stop, err := sharded.MostUncertainCells(7)
			if err != nil {
				t.Fatal(err)
			}
			if len(ftop) != len(stop) {
				t.Fatalf("top-k length: flat %d, sharded %d", len(ftop), len(stop))
			}
			for i := range ftop {
				if ftop[i] != stop[i] {
					t.Fatalf("top-k[%d]: flat %d, sharded %d", i, ftop[i], stop[i])
				}
			}

			fc, err := flat.EnsureRegion(ctx, model)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := sharded.EnsureRegion(ctx, model)
			if err != nil {
				t.Fatal(err)
			}
			if fc != sc {
				t.Fatalf("EnsureRegion: flat picked cell %d, sharded %d", fc, sc)
			}
			if sharded.LastStepDegraded() {
				t.Error("healthy sharded step reported degraded")
			}

			fids, err := flat.FetchRows(ctx, []uint32{0, 3, 3, uint32(ds.Len() - 1)})
			if err != nil {
				t.Fatal(err)
			}
			sids, err := sharded.FetchRows(ctx, []uint32{0, 3, 3, uint32(ds.Len() - 1)})
			if err != nil {
				t.Fatal(err)
			}
			if len(fids) != len(sids) {
				t.Fatalf("FetchRows length: flat %d, sharded %d", len(fids), len(sids))
			}
			for i := range fids {
				if fids[i].ID != sids[i].ID {
					t.Fatalf("FetchRows[%d]: flat id %d, sharded id %d", i, fids[i].ID, sids[i].ID)
				}
			}

			fres, err := flat.ResultRetrieval(ctx, model, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			sres, err := sharded.ResultRetrieval(ctx, model, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			if len(fres) != len(sres) {
				t.Fatalf("retrieval size: flat %d, sharded %d", len(fres), len(sres))
			}
			for i := range fres {
				if fres[i] != sres[i] {
					t.Fatalf("retrieval[%d]: flat %d, sharded %d", i, fres[i], sres[i])
				}
			}
			if len(fres) == 0 {
				t.Fatal("retrieval returned nothing; parity check is vacuous")
			}
		})
	}
}

// TestShardedOpenLayoutMismatch pins the ErrLayoutMismatch contract: every
// way of opening a store with the wrong layout expectation fails with the
// errors.Is-able sentinel.
func TestShardedOpenLayoutMismatch(t *testing.T) {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 300, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	flatDir, shardedDir := t.TempDir(), t.TempDir()
	if err := Build(flatDir, ds, BuildOptions{TargetChunkBytes: 2048}); err != nil {
		t.Fatal(err)
	}
	if err := Build(shardedDir, ds, BuildOptions{TargetChunkBytes: 2048, Shards: 4}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cases := []struct {
		name   string
		dir    string
		shards int
	}{
		{"flat-dir-sharded-requested", flatDir, 4},
		{"sharded-dir-flat-requested", shardedDir, 1},
		{"shard-count-mismatch", shardedDir, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Open(ctx, tc.dir, Options{MemoryBudgetBytes: 1 << 20, Shards: tc.shards})
			if !errors.Is(err, chunkstore.ErrLayoutMismatch) {
				t.Fatalf("err = %v, want ErrLayoutMismatch", err)
			}
		})
	}
	// Auto-detect (Shards == 0) and the exact count both open fine.
	for _, n := range []int{0, 4} {
		idx, err := Open(ctx, shardedDir, Options{MemoryBudgetBytes: 1 << 20, Shards: n})
		if err != nil {
			t.Fatalf("Shards=%d: %v", n, err)
		}
		idx.Close()
	}
	// A different grid cannot be honored: cell ownership is grid-dependent.
	if _, err := Open(ctx, shardedDir, Options{MemoryBudgetBytes: 1 << 20, SegmentsPerDim: 7}); err == nil {
		t.Error("segment mismatch on a sharded store should fail Open")
	}
}

// TestShardedDegradedScoreStep forces one shard to fail its scoring pass
// and checks the step completes on the healthy subset: the response is
// flagged degraded, the metric increments, and the degraded shard's cells
// are never selected.
func TestShardedDegradedScoreStep(t *testing.T) {
	_, sharded, ds := openShardedPair(t, 2000, 4, Options{Workers: 2})
	model := boundaryModel(t, ds, testRegion(t, ds), 40)
	ctx := context.Background()
	coord := sharded.ShardCoordinator()

	coord.SetFaultHook(func(_ context.Context, s, _ int, op string) error {
		if s == 2 && op == shard.OpScore {
			return errors.New("injected shard fault")
		}
		return nil
	})
	before := sharded.Registry().Counter("shard_degraded_total").Value()
	cell, err := sharded.EnsureRegion(ctx, model)
	if err != nil {
		t.Fatalf("degraded step should complete, got %v", err)
	}
	if !sharded.LastStepDegraded() {
		t.Error("LastStepDegraded = false after a skipped shard")
	}
	if got := sharded.DegradedShards(); len(got) != 1 || got[0] != 2 {
		t.Errorf("DegradedShards = %v, want [2]", got)
	}
	if after := sharded.Registry().Counter("shard_degraded_total").Value(); after <= before {
		t.Errorf("shard_degraded_total did not increment: %d -> %d", before, after)
	}
	if owner, err := coord.OwnerOfCell(cell); err != nil || owner == 2 {
		t.Errorf("selected cell %d owned by degraded shard (owner %d, err %v)", cell, owner, err)
	}

	// Recovery: with the fault cleared the next step is clean again.
	coord.SetFaultHook(nil)
	sharded.InvalidateScores()
	if _, err := sharded.EnsureRegion(ctx, model); err != nil {
		t.Fatal(err)
	}
	if sharded.LastStepDegraded() {
		t.Error("step still degraded after recovery")
	}
	if got := sharded.DegradedShards(); got != nil {
		t.Errorf("DegradedShards = %v after recovery, want nil", got)
	}

	// Every shard failing is an error, not silent degradation. The model
	// must genuinely change (a refit on different labels, not an
	// append-only extension), otherwise the exact incremental rescorer
	// correctly skips the pass without contacting any shard.
	coord.SetFaultHook(func(_ context.Context, _, _ int, op string) error {
		if op == shard.OpScore {
			return errors.New("total outage")
		}
		return nil
	})
	sharded.InvalidateScores()
	model2 := boundaryModel(t, ds, testRegion(t, ds), 55)
	if _, err := sharded.EnsureRegion(ctx, model2); !errors.Is(err, shard.ErrShardUnavailable) {
		t.Errorf("all-shards-down err = %v, want ErrShardUnavailable", err)
	}
}

// TestShardedLoadFallback fails only the winning cell's load: the step
// must fall back to the runner-up cell instead of failing.
func TestShardedLoadFallback(t *testing.T) {
	_, sharded, ds := openShardedPair(t, 2000, 4, Options{Workers: 2})
	model := boundaryModel(t, ds, testRegion(t, ds), 40)
	ctx := context.Background()

	if err := sharded.UpdateUncertainty(ctx, model); err != nil {
		t.Fatal(err)
	}
	top, err := sharded.MostUncertainCells(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) < 2 {
		t.Fatalf("need two candidate cells, got %v", top)
	}
	var loads atomic.Int32
	sharded.ShardCoordinator().SetFaultHook(func(_ context.Context, _, _ int, op string) error {
		if op == shard.OpLoad && loads.Add(1) == 1 {
			return errors.New("winner's shard is down")
		}
		return nil
	})
	cell, err := sharded.EnsureRegion(ctx, model)
	if err != nil {
		t.Fatal(err)
	}
	if cell != top[1] {
		t.Fatalf("EnsureRegion = cell %d, want runner-up %d (winner was %d)", cell, top[1], top[0])
	}
	if !sharded.LastStepDegraded() {
		t.Error("runner-up fallback must mark the step degraded")
	}
}

// TestShardedCancellation checks caller cancellation is not confused with
// shard degradation and that the scatter leaves no goroutines behind.
func TestShardedCancellation(t *testing.T) {
	_, sharded, ds := openShardedPair(t, 1000, 4, Options{Workers: 2})
	model := boundaryModel(t, ds, testRegion(t, ds), 30)
	coord := sharded.ShardCoordinator()
	release := make(chan struct{})
	coord.SetFaultHook(func(ctx context.Context, s, _ int, op string) error {
		if op == shard.OpScore && s != 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-release:
				return nil
			}
		}
		return nil
	})
	before := runtime.NumGoroutine()
	counterBefore := sharded.Registry().Counter("shard_degraded_total").Value()
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(2 * time.Millisecond)
			cancel()
		}()
		sharded.InvalidateScores()
		err := sharded.UpdateUncertainty(ctx, model)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		cancel()
	}
	if got := sharded.Registry().Counter("shard_degraded_total").Value(); got != counterBefore {
		t.Errorf("cancellation counted as degradation: counter %d -> %d", counterBefore, got)
	}
	if sharded.LastStepDegraded() {
		t.Error("cancelled pass marked the step degraded")
	}
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// BenchmarkShardedStep measures the full per-iteration step — re-score,
// top-k, cell load — on flat and sharded layouts. CI runs the shards=4
// line as the sharding smoke benchmark.
func BenchmarkShardedStep(b *testing.B) {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 4000, Seed: 21})
	if err != nil {
		b.Fatal(err)
	}
	bounds, err := ds.Bounds()
	if err != nil {
		b.Fatal(err)
	}
	model := learn.NewDWKNN(7, bounds.Widths())
	var X [][]float64
	var y []int
	for i := 0; i < 50; i++ {
		X = append(X, ds.CopyRow(dataset.RowID(i*(ds.Len()/50))))
		y = append(y, i%2)
	}
	if err := model.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			dir := b.TempDir()
			if err := Build(dir, ds, BuildOptions{TargetChunkBytes: 16 * 1024, Shards: shards}); err != nil {
				b.Fatal(err)
			}
			idx, err := Open(ctx, dir, Options{MemoryBudgetBytes: 1 << 24, Workers: 4, Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			defer idx.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.InvalidateScores()
				if _, err := idx.EnsureRegion(ctx, model); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
