package core

import (
	"time"

	"github.com/uei-db/uei/internal/memcache"
	"github.com/uei-db/uei/internal/obs"
	"github.com/uei-db/uei/internal/prefetch"
)

// ViewOptions configures a per-session view of a shared Index. Zero values
// inherit the parent's setting where one exists; MemoryBudgetBytes is
// required (it is the view's slice of the global budget, granted by the
// serving layer's arbiter).
type ViewOptions struct {
	// MemoryBudgetBytes caps the view's resident unlabeled data. Required.
	MemoryBudgetBytes int64
	// SampleSize is the view's γ; zero derives it from the budget.
	SampleSize int
	// Seed drives the view's uniform sample (per-session, so concurrent
	// sessions explore distinct samples).
	Seed int64
	// EnablePrefetch turns on background region loading for this view.
	EnablePrefetch bool
	// ResidentRegions bounds the view's cached regions; zero selects 1.
	ResidentRegions int
	// LatencyThreshold is σ; zero inherits the parent's.
	LatencyThreshold time.Duration
	// Tracer, when non-nil, records this view's per-phase spans.
	Tracer *obs.Tracer
}

// NewView derives an independent exploration state over the parent's
// storage: the chunk store, grid, chunk mapping, symbolic index point set,
// worker pool, and metrics registry are shared (they are immutable or
// concurrency-safe), while the memory budget, unlabeled cache, uncertainty
// vector, and prefetcher are private to the view. This is what lets many
// concurrent sessions explore one index: each gets its own U, L-driven
// scores, and region residency, but storage is opened (and the pool's
// goroutines started) exactly once.
//
// Views are independent of each other but not of the parent's lifetime:
// close every view before closing the parent (a view's Close never touches
// the shared pool or store). Like the parent, a view is single-goroutine
// with respect to exploration calls.
func (x *Index) NewView(vo ViewOptions) (*Index, error) {
	if x.closed.Load() {
		return nil, ErrClosed
	}
	opts := x.opts
	opts.MemoryBudgetBytes = vo.MemoryBudgetBytes
	opts.SampleSize = vo.SampleSize
	opts.Seed = vo.Seed
	opts.EnablePrefetch = vo.EnablePrefetch
	opts.ResidentRegions = vo.ResidentRegions
	if opts.ResidentRegions == 0 {
		opts.ResidentRegions = 1
	}
	if vo.LatencyThreshold != 0 {
		opts.LatencyThreshold = vo.LatencyThreshold
	}
	opts.Tracer = vo.Tracer
	if _, err := opts.withDefaults(); err != nil {
		return nil, err
	}
	budget, err := memcache.NewBudget(opts.MemoryBudgetBytes)
	if err != nil {
		return nil, err
	}
	cache, err := memcache.NewCache(budget, x.Dims())
	if err != nil {
		return nil, err
	}
	if err := cache.SetMaxRegions(opts.ResidentRegions); err != nil {
		return nil, err
	}
	v := &Index{
		opts:    opts,
		store:   x.store,
		coord:   x.coord,
		grid:    x.grid,
		mapping: x.mapping,
		budget:  budget,
		cache:   cache,
		centers: x.centers,
		// The packed column block is immutable and shared like centers;
		// incremental-rescore state (lastDW, dk2) stays private and cold,
		// because it tracks the view's own uncertainty vector.
		blk: x.blk,
		// The registry's instruments are get-or-create by name, so every
		// view's swap/prefetch counters and phase histograms aggregate into
		// the same server-wide series.
		pool:        x.pool,
		isView:      true,
		uncertainty: make([]float64, x.grid.NumCells()),
		pendingCell: memcache.NoRegion,
		reg:         x.reg,
		tracer:      vo.Tracer,
		mSwaps:      x.reg.Counter("uei_region_swaps_total"),
		mDeferred:   x.reg.Counter("uei_swaps_deferred_total"),
		mPrefHits:   x.reg.Counter("uei_prefetch_hits_total"),
		mEntries:    x.reg.Counter("uei_entries_visited_total"),
		hScore:      x.reg.Histogram(obs.PhaseHistName(obs.PhaseScore), nil),
		hLoad:       x.reg.Histogram(obs.PhaseHistName(obs.PhaseLoad), nil),
		hSwap:       x.reg.Histogram(obs.PhaseHistName(obs.PhaseSwap), nil),
	}
	v.initScoreKernel()
	if x.live != nil {
		// Pin the PARENT's epoch, not the latest: the serving layer's
		// lazily-derived per-index state (oracle datasets, admission
		// bookkeeping) is sized to the parent's row count, so a view must
		// not silently see more rows than its parent. A view that wants
		// newer data calls AdvanceSnapshot (FollowLive does it per
		// iteration).
		snap, err := x.snap.Clone()
		if err != nil {
			return nil, err
		}
		v.live = x.live
		v.snap = snap
		v.liveBC = x.liveBC
	}
	if opts.EnablePrefetch {
		pf, err := prefetch.New(v.loadCell)
		if err != nil {
			return nil, err
		}
		pf.Instrument(x.reg)
		v.pf = pf
	}
	return v, nil
}

// IsView reports whether this Index is a per-session view of a shared
// parent (its Close leaves the shared pool and store running).
func (x *Index) IsView() bool { return x.isView }
