// Package core implements the Uncertainty Estimation Index itself — the
// paper's contribution (§3). An Index owns the five UEI components: the
// symbolic index point set P (grid cell centers), the mapping method
// m : p -> chunks, the in-memory unlabeled cache U with its byte budget,
// the labeled set L (held by the IDE engine), and the chunk-store dataset D
// on secondary storage. It drives the per-iteration cycle of Algorithm 2:
// re-score P with the current model, pick the most uncertain symbolic
// point, and swap its subspace into memory (optionally hiding the load
// behind the σ/θ prefetch policy of §3.2).
package core

import (
	"fmt"
	"runtime"
	"time"

	"github.com/uei-db/uei/internal/iothrottle"
	"github.com/uei-db/uei/internal/obs"
)

// DefaultLatencyThreshold is Table 1's 500 ms interactivity bound.
const DefaultLatencyThreshold = 500 * time.Millisecond

// Options configures an opened Index.
type Options struct {
	// SegmentsPerDim is the number of grid segments per dimension; the
	// symbolic index point count is SegmentsPerDim^dims (5 -> 3125 points
	// in 5-D, Table 1). Zero selects 5.
	SegmentsPerDim int
	// MemoryBudgetBytes caps the resident unlabeled data (uniform sample +
	// loaded region). The experiments set it to ~1% of the on-disk data.
	// Required.
	MemoryBudgetBytes int64
	// SampleSize is γ, the uniform-sample cardinality of Algorithm 2 line
	// 12. Zero derives it from the budget: half the budget's tuple
	// capacity, leaving the rest for the loaded region.
	SampleSize int
	// LatencyThreshold is σ (§3.2). Zero selects DefaultLatencyThreshold.
	LatencyThreshold time.Duration
	// EnablePrefetch turns on background region loading and swap deferral.
	EnablePrefetch bool
	// ResidentRegions bounds how many uncertain regions stay cached at
	// once. §3.2 fixes the paper's default at 1; deployments with spare
	// budget can raise it to avoid re-loading recently visited cells.
	// Zero selects 1.
	ResidentRegions int
	// Seed drives the uniform sample.
	Seed int64
	// Registry receives the index's runtime metrics (swap/prefetch
	// counters, phase latency histograms, chunk-store I/O, memory gauges).
	// Nil creates a private registry, so Stats() keeps counting either
	// way; pass a shared registry to export the metrics.
	Registry *obs.Registry
	// Tracer, when non-nil, records per-phase spans (score, load, swap)
	// of every exploration iteration.
	Tracer *obs.Tracer
	// Workers sizes the index's worker pool: symbolic-point scoring shards
	// across it and cell reconstruction fans chunk reads out up to this
	// bound. Zero selects runtime.GOMAXPROCS(0); 1 forces the fully serial
	// hot path.
	Workers int
	// Limiter, when non-nil, meters chunk-store read bandwidth. (It was a
	// positional parameter of Open before the v2 API.)
	Limiter *iothrottle.Limiter
	// BlockCacheBytes, when positive, installs a shared decoded-chunk
	// block cache of that byte budget on the store: hot chunks are read
	// from disk and CRC-checked/decoded at most once no matter how many
	// session views want them, with single-flight deduplication of
	// concurrent misses. Zero disables the cache (the paper's strict
	// one-chunk-in-memory discipline). Views share the parent's cache.
	// In the sharded layout one cache backs every shard store, with
	// per-shard key prefixes.
	BlockCacheBytes int64
	// Shards selects the store layout Open requires: 0 auto-detects from
	// the directory, 1 requires the legacy flat layout, and a value > 1
	// requires a sharded layout with exactly that many shards. A layout
	// (or shard-count) mismatch fails with chunkstore.ErrLayoutMismatch.
	Shards int
	// ShardDeadline bounds every per-shard operation of a sharded index;
	// shards that miss it are skipped for the iteration (the step degrades
	// instead of failing). Zero disables the deadline. Ignored by the flat
	// layout.
	ShardDeadline time.Duration
	// ShardEndpoints, when non-empty, serves the index through remote
	// uei-shardd workers instead of opening the store directory locally:
	// the fleet is handshaken, shards are placed on endpoints by
	// consistent hashing, and every per-shard operation goes over HTTP.
	// The directory argument of Open is ignored (may be empty). Results
	// are byte-identical to a local open of the same store.
	ShardEndpoints []string
	// Replication is the per-shard replica count. With remote endpoints,
	// each shard is placed on this many distinct workers and operations
	// fail over between them (a shard degrades only when all replicas
	// fail); it must not exceed the endpoint count. On a local sharded
	// open, replicas share the in-process backend, which still exercises
	// the hedging/failover machinery. Zero and 1 both mean unreplicated.
	Replication int
	// HedgeDelay, when positive and Replication > 1, fires each per-shard
	// operation on a second replica if the first has not answered within
	// the delay; the first reply wins and the loser is cancelled. Zero
	// disables hedging.
	HedgeDelay time.Duration
	// LiveIngest requires the directory to hold the live (stream) layout:
	// Open fails with chunkstore.ErrLayoutMismatch otherwise. Live layouts
	// are auto-detected either way; the flag only pins the expectation,
	// the way Shards pins the shard count. Append/Flush work on any index
	// opened over a live layout.
	LiveIngest bool
	// FollowLive lets an exploration session advance its pinned snapshot
	// to the newest committed epoch at iteration boundaries (the IDE
	// provider calls AdvanceSnapshot before each selection). Off by
	// default: a session then explores exactly the epoch it opened,
	// byte-identical to a static index over the same rows, no matter how
	// many appends land meanwhile.
	FollowLive bool
	// MemtableBytes is the live write store's freeze threshold (zero
	// selects the stream default). Ignored by static layouts.
	MemtableBytes int64
	// FlushInterval additionally flushes the live memtable on a timer so
	// trickle appends become visible; zero flushes on size/demand only.
	FlushInterval time.Duration
	// CompactSegments is the per-shard segment count that triggers
	// background compaction on a live layout (zero selects the stream
	// default).
	CompactSegments int
	// ScoreKernel routes symbolic-point scoring through the columnar
	// kernel path (contiguous column blocks packed at Open, batched
	// distance/dot-product kernels, and — for DWKNN models refit on
	// append-only labeled sets — exact incremental rescoring of only the
	// cells whose k-nearest-neighbor set can have changed). The kernel
	// path is bit-identical to the legacy per-row path; nil selects
	// enabled. Set to a false pointer to force the legacy path.
	ScoreKernel *bool
	// BoundedStaleness, when > 1, lets models without an exact
	// incremental rule (everything but DWKNN) reuse the previous
	// iteration's full score vector for N-1 consecutive retrains,
	// rescoring in full every Nth. This is an opt-in approximation — it
	// trades bounded score staleness for iteration latency — and is
	// ignored by the exact DWKNN delta path and by the legacy path.
	// Zero and 1 both mean every retrain rescores.
	BoundedStaleness int
}

// scoreKernelEnabled reports whether the columnar kernel path is on
// (nil defaults to enabled).
func (o Options) scoreKernelEnabled() bool {
	return o.ScoreKernel == nil || *o.ScoreKernel
}

// withDefaults validates and fills zero values.
func (o Options) withDefaults() (Options, error) {
	if o.SegmentsPerDim == 0 {
		o.SegmentsPerDim = 5
	}
	if o.SegmentsPerDim < 1 {
		return o, fmt.Errorf("core: segments per dim %d must be positive", o.SegmentsPerDim)
	}
	if o.MemoryBudgetBytes <= 0 {
		return o, fmt.Errorf("core: memory budget %d must be positive", o.MemoryBudgetBytes)
	}
	if o.SampleSize < 0 {
		return o, fmt.Errorf("core: negative sample size %d", o.SampleSize)
	}
	if o.LatencyThreshold == 0 {
		o.LatencyThreshold = DefaultLatencyThreshold
	}
	if o.LatencyThreshold < 0 {
		return o, fmt.Errorf("core: negative latency threshold %v", o.LatencyThreshold)
	}
	if o.ResidentRegions == 0 {
		o.ResidentRegions = 1
	}
	if o.ResidentRegions < 0 {
		return o, fmt.Errorf("core: resident regions %d must be positive", o.ResidentRegions)
	}
	if o.Workers < 0 {
		return o, fmt.Errorf("core: workers %d must not be negative", o.Workers)
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.BlockCacheBytes < 0 {
		return o, fmt.Errorf("core: block cache bytes %d must not be negative", o.BlockCacheBytes)
	}
	if o.Shards < 0 {
		return o, fmt.Errorf("core: shard count %d must not be negative", o.Shards)
	}
	if o.ShardDeadline < 0 {
		return o, fmt.Errorf("core: negative shard deadline %v", o.ShardDeadline)
	}
	if o.Replication < 0 {
		return o, fmt.Errorf("core: replication %d must not be negative", o.Replication)
	}
	if o.HedgeDelay < 0 {
		return o, fmt.Errorf("core: negative hedge delay %v", o.HedgeDelay)
	}
	if len(o.ShardEndpoints) > 0 && o.Replication > len(o.ShardEndpoints) {
		return o, fmt.Errorf("core: replication %d exceeds %d shard endpoints", o.Replication, len(o.ShardEndpoints))
	}
	if o.BoundedStaleness < 0 {
		return o, fmt.Errorf("core: bounded staleness %d must not be negative", o.BoundedStaleness)
	}
	return o, nil
}

// Stats reports an Index's activity since Open, for experiment reports.
// It is a value snapshot read from atomic instruments, so taking it is
// safe while the exploration loop and prefetcher are running.
type Stats struct {
	// RegionSwaps counts distinct region loads installed into the cache.
	RegionSwaps int
	// SwapsDeferred counts iterations where the most-uncertain cell
	// changed but the swap was deferred while a prefetch completed.
	SwapsDeferred int
	// PrefetchHits counts swaps satisfied by a completed background load.
	PrefetchHits int
	// EntriesVisited sums the posting entries streamed during region
	// merges — the e of the O(k·e) bound.
	EntriesVisited int
	// BytesRead and ChunksRead mirror the chunk store's I/O counters.
	BytesRead  int64
	ChunksRead int64
	// PeakMemory is the budget ledger's high-water mark.
	PeakMemory int64
	// CacheHits and CacheMisses mirror the shared block cache's lookup
	// counters (both zero when no cache is installed).
	CacheHits   int64
	CacheMisses int64
}
