package core

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"testing"

	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/shard"
	"github.com/uei-db/uei/internal/shard/remote"
)

// appendDWKNNSeq builds the IDE refit sequence: a fresh DWKNN per step,
// each fit on the previous step's labeled set plus `step` appended labels
// — exactly what Session.refit produces under append-only labeling, so
// the exact incremental rescorer fires on every step after the first.
func appendDWKNNSeq(t testing.TB, ds *dataset.Dataset, steps, base, step int) []learn.Classifier {
	t.Helper()
	bounds, err := ds.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	scales := bounds.Widths()
	var X [][]float64
	var y []int
	add := func(n int) {
		for i := 0; i < n; i++ {
			id := (len(X)*131 + 17) % ds.Len()
			row := ds.CopyRow(dataset.RowID(id))
			X = append(X, row)
			y = append(y, len(X)%2)
		}
	}
	add(base)
	var models []learn.Classifier
	for s := 0; s < steps; s++ {
		m := learn.NewDWKNN(5, scales)
		if err := m.Fit(append([][]float64(nil), X...), append([]int(nil), y...)); err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
		add(step)
	}
	return models
}

// scoreSeq drives one index through the model sequence, capturing the
// full uncertainty vector and the top-3 selection after every pass.
func scoreSeq(t testing.TB, idx *Index, models []learn.Classifier) (scores [][]float64, tops [][]int) {
	t.Helper()
	ctx := context.Background()
	for _, m := range models {
		idx.InvalidateScores()
		if err := idx.UpdateUncertainty(ctx, m); err != nil {
			t.Fatal(err)
		}
		scores = append(scores, append([]float64(nil), idx.Uncertainties()...))
		top, err := idx.MostUncertainCells(3)
		if err != nil {
			t.Fatal(err)
		}
		ti := make([]int, len(top))
		for i, c := range top {
			ti[i] = int(c)
		}
		tops = append(tops, ti)
	}
	return scores, tops
}

// requireBitIdentical fails on the first score whose float64 bits differ
// between the two runs, or any top-k divergence.
func requireBitIdentical(t *testing.T, wantS, gotS [][]float64, wantT, gotT [][]int) {
	t.Helper()
	if len(wantS) != len(gotS) {
		t.Fatalf("pass counts differ: %d vs %d", len(wantS), len(gotS))
	}
	for p := range wantS {
		if len(wantS[p]) != len(gotS[p]) {
			t.Fatalf("pass %d: score lengths differ", p)
		}
		for i := range wantS[p] {
			if math.Float64bits(wantS[p][i]) != math.Float64bits(gotS[p][i]) {
				t.Fatalf("pass %d cell %d: legacy %x kernel %x (%v vs %v)",
					p, i, math.Float64bits(wantS[p][i]), math.Float64bits(gotS[p][i]),
					wantS[p][i], gotS[p][i])
			}
		}
		if fmt.Sprint(wantT[p]) != fmt.Sprint(gotT[p]) {
			t.Fatalf("pass %d: top-k differ: %v vs %v", p, wantT[p], gotT[p])
		}
	}
}

func kernelOff() Options {
	off := false
	return Options{Workers: 2, MemoryBudgetBytes: 1 << 20, ScoreKernel: &off}
}

func kernelOn() Options {
	return Options{Workers: 2, MemoryBudgetBytes: 1 << 20}
}

// TestScoreKernelParityFlat: the kernel path (including the exact
// incremental passes fired by the append-only model sequence) must be
// byte-identical to the legacy per-row path on a flat store.
func TestScoreKernelParityFlat(t *testing.T) {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 1500, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Build(dir, ds, BuildOptions{TargetChunkBytes: 2048}); err != nil {
		t.Fatal(err)
	}
	models := appendDWKNNSeq(t, ds, 6, 20, 3)
	// A refit on shuffled labels (not an append) mid-sequence forces a
	// full rescore after incremental passes.
	models = append(models, appendDWKNNSeq(t, ds, 1, 37, 1)...)

	legacy, err := Open(context.Background(), dir, kernelOff())
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	kern, err := Open(context.Background(), dir, kernelOn())
	if err != nil {
		t.Fatal(err)
	}
	defer kern.Close()

	ls, lt := scoreSeq(t, legacy, models)
	ks, kt := scoreSeq(t, kern, models)
	requireBitIdentical(t, ls, ks, lt, kt)

	// The final result set must match too: retrieval re-scores cells and
	// rows through the posterior path under test.
	last := models[len(models)-1]
	wantIDs, err := legacy.ResultRetrieval(context.Background(), last, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	gotIDs, err := kern.ResultRetrieval(context.Background(), last, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(wantIDs) != fmt.Sprint(gotIDs) {
		t.Fatalf("result sets differ: legacy %d rows, kernel %d rows", len(wantIDs), len(gotIDs))
	}

	skipped := kern.Registry().Counter("uei_score_skipped_cells_total").Value()
	if skipped == 0 {
		t.Error("kernel index skipped no cells over an append-only refit sequence")
	}
	if v := legacy.Registry().Counter("uei_score_skipped_cells_total").Value(); v != 0 {
		t.Errorf("legacy index reports %d skipped cells", v)
	}
}

// TestScoreKernelParitySharded repeats the parity check over the S=2
// scatter-gather layout, where dirty subsets travel the per-shard
// Backend.ScoreAll spec.
func TestScoreKernelParitySharded(t *testing.T) {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 1500, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Build(dir, ds, BuildOptions{TargetChunkBytes: 2048, Shards: 2}); err != nil {
		t.Fatal(err)
	}
	models := appendDWKNNSeq(t, ds, 6, 20, 3)

	off := kernelOff()
	off.Shards = 2
	legacy, err := Open(context.Background(), dir, off)
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	on := kernelOn()
	on.Shards = 2
	kern, err := Open(context.Background(), dir, on)
	if err != nil {
		t.Fatal(err)
	}
	defer kern.Close()

	ls, lt := scoreSeq(t, legacy, models)
	ks, kt := scoreSeq(t, kern, models)
	requireBitIdentical(t, ls, ks, lt, kt)
	if kern.Registry().Counter("uei_score_skipped_cells_total").Value() == 0 {
		t.Error("sharded kernel index skipped no cells")
	}
}

// TestScoreKernelParityRemote runs the same sequence with the shards
// served over the wire protocol: dirty subsets and d_k² bounds must
// round-trip JSON without changing a bit.
func TestScoreKernelParityRemote(t *testing.T) {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 1200, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Build(dir, ds, BuildOptions{TargetChunkBytes: 2048, Shards: 2}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	backing, err := Open(ctx, dir, Options{MemoryBudgetBytes: 1 << 20, Workers: 2, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer backing.Close()
	man, err := shard.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewServer(remote.NewServer(backing.ShardCoordinator(), man, func(string, ...any) {}))
	defer w.Close()

	models := appendDWKNNSeq(t, ds, 5, 20, 3)
	local, err := Open(ctx, dir, Options{MemoryBudgetBytes: 1 << 20, Workers: 2, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	rem, err := Open(ctx, "", Options{
		MemoryBudgetBytes: 1 << 20, Workers: 2, ShardEndpoints: []string{w.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	ls, lt := scoreSeq(t, local, models)
	rs, rt := scoreSeq(t, rem, models)
	requireBitIdentical(t, ls, rs, lt, rt)
	if rem.Registry().Counter("uei_score_skipped_cells_total").Value() == 0 {
		t.Error("remote kernel index skipped no cells")
	}
}

// TestScoreKernelParityLiveIngest covers the epoch boundary: scores stay
// bit-identical across append + flush + AdvanceSnapshot, and the advance
// resets the incremental state (the pass after it is full, not a delta).
func TestScoreKernelParityLiveIngest(t *testing.T) {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 1000, Seed: 54})
	if err != nil {
		t.Fatal(err)
	}
	open := func(opts Options) *Index {
		dir := t.TempDir()
		if err := Build(dir, ds, BuildOptions{TargetChunkBytes: 2048, LiveIngest: true}); err != nil {
			t.Fatal(err)
		}
		if opts.MemoryBudgetBytes == 0 {
			opts.MemoryBudgetBytes = 1 << 20
		}
		idx, err := Open(context.Background(), dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(idx.Close)
		return idx
	}
	legacy := open(kernelOff())
	kern := open(kernelOn())

	models := appendDWKNNSeq(t, ds, 4, 20, 3)
	ctx := context.Background()
	drive := func(idx *Index) ([][]float64, [][]int) {
		s1, t1 := scoreSeq(t, idx, models[:2])
		rows := [][]float64{ds.CopyRow(0), ds.CopyRow(1)}
		if _, err := idx.Append(ctx, rows); err != nil {
			t.Fatal(err)
		}
		if err := idx.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		if moved, err := idx.AdvanceSnapshot(); err != nil || !moved {
			t.Fatalf("AdvanceSnapshot = %v, %v", moved, err)
		}
		s2, t2 := scoreSeq(t, idx, models[2:])
		return append(s1, s2...), append(t1, t2...)
	}
	ls, lt := drive(legacy)
	ks, kt := drive(kern)
	requireBitIdentical(t, ls, ks, lt, kt)
}

// TestScoreKernelExactSkipAll: rescoring with a byte-equal refit (zero
// new labels) must touch no cell and keep the vector bit-identical.
func TestScoreKernelExactSkipAll(t *testing.T) {
	idx, ds := openTestIndex(t, 1000, kernelOn())
	models := appendDWKNNSeq(t, ds, 1, 25, 0)
	ctx := context.Background()
	if err := idx.UpdateUncertainty(ctx, models[0]); err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), idx.Uncertainties()...)
	scored0 := idx.Registry().Counter("uei_score_scored_cells_total").Value()

	// Same training set, fresh model object: AppendDelta sees zero new
	// rows and the whole pass is skipped.
	same := appendDWKNNSeq(t, ds, 1, 25, 0)
	idx.InvalidateScores()
	if err := idx.UpdateUncertainty(ctx, same[0]); err != nil {
		t.Fatal(err)
	}
	if got := idx.Registry().Counter("uei_score_scored_cells_total").Value(); got != scored0 {
		t.Errorf("identical refit rescored %d cells", got-scored0)
	}
	if idx.Registry().Counter("uei_score_skipped_cells_total").Value() != int64(idx.NumIndexPoints()) {
		t.Error("identical refit did not skip every cell")
	}
	for i, u := range idx.Uncertainties() {
		if math.Float64bits(u) != math.Float64bits(before[i]) {
			t.Fatalf("cell %d changed on a no-op refit", i)
		}
	}
}

// TestBoundedStaleness: with the opt-in knob, non-DWKNN retrains reuse
// the previous complete pass N-1 times and rescore in full on the Nth.
func TestBoundedStaleness(t *testing.T) {
	opts := kernelOn()
	opts.BoundedStaleness = 3
	idx, ds := openTestIndex(t, 800, opts)
	ctx := context.Background()

	var X [][]float64
	var y []int
	for i := 0; i < 30; i++ {
		X = append(X, ds.CopyRow(dataset.RowID(i*(ds.Len()/30))))
		y = append(y, i%2)
	}
	fitLogistic := func(n int) learn.Classifier {
		m := learn.NewLogistic(7)
		if err := m.Fit(X[:n], y[:n]); err != nil {
			t.Fatal(err)
		}
		return m
	}

	if err := idx.UpdateUncertainty(ctx, fitLogistic(20)); err != nil {
		t.Fatal(err)
	}
	first := append([]float64(nil), idx.Uncertainties()...)

	// Retrains 2 and 3 are skipped wholesale despite a changed model.
	for pass := 0; pass < 2; pass++ {
		idx.InvalidateScores()
		if err := idx.UpdateUncertainty(ctx, fitLogistic(24+pass*2)); err != nil {
			t.Fatal(err)
		}
		for i, u := range idx.Uncertainties() {
			if math.Float64bits(u) != math.Float64bits(first[i]) {
				t.Fatalf("pass %d cell %d rescored under bounded staleness", pass, i)
			}
		}
	}
	// Retrain 4 is the Nth: a full rescore with the current model.
	idx.InvalidateScores()
	model4 := fitLogistic(30)
	if err := idx.UpdateUncertainty(ctx, model4); err != nil {
		t.Fatal(err)
	}
	fresh := make([]float64, idx.NumIndexPoints())
	if err := learn.UncertaintiesInto(ctx, model4, idx.centers, fresh); err != nil {
		t.Fatal(err)
	}
	for i, u := range idx.Uncertainties() {
		if math.Float64bits(u) != math.Float64bits(fresh[i]) {
			t.Fatalf("cell %d stale after the Nth retrain", i)
		}
	}
}

// TestScoreKernelViewIsolation: views share the packed block but keep
// private incremental state — interleaved scoring on two views must not
// cross-contaminate their uncertainty vectors.
func TestScoreKernelViewIsolation(t *testing.T) {
	idx, ds := openTestIndex(t, 1200, kernelOn())
	models := appendDWKNNSeq(t, ds, 3, 20, 4)
	other := appendDWKNNSeq(t, ds, 3, 31, 5)

	v1, err := idx.NewView(ViewOptions{MemoryBudgetBytes: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	v2, err := idx.NewView(ViewOptions{MemoryBudgetBytes: 1 << 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()

	ctx := context.Background()
	for i := range models {
		if err := v1.UpdateUncertainty(ctx, models[i]); err != nil {
			t.Fatal(err)
		}
		if err := v2.UpdateUncertainty(ctx, other[i]); err != nil {
			t.Fatal(err)
		}
	}
	wantV1 := make([]float64, idx.NumIndexPoints())
	if err := learn.UncertaintiesInto(ctx, models[len(models)-1], idx.centers, wantV1); err != nil {
		t.Fatal(err)
	}
	for i, u := range v1.Uncertainties() {
		if math.Float64bits(u) != math.Float64bits(wantV1[i]) {
			t.Fatalf("view 1 cell %d diverged from its own model sequence", i)
		}
	}
}
