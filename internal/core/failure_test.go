package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"github.com/uei-db/uei/internal/dataset"
)

// TestCorruptedChunkSurfacesDuringRegionLoad injects on-disk corruption
// after the index is opened and verifies the error reaches the caller
// rather than producing silent garbage.
func TestCorruptedChunkSurfacesDuringRegionLoad(t *testing.T) {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 800, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Build(dir, ds, BuildOptions{TargetChunkBytes: 1024}); err != nil {
		t.Fatal(err)
	}
	idx, err := Open(context.Background(), dir, Options{MemoryBudgetBytes: 1 << 20, SampleSize: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	// Corrupt every chunk file so whichever cell is loaded first fails.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".chk" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xAA
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	region := testRegion(t, ds)
	model := boundaryModel(t, ds, region, 60)
	if _, err := idx.EnsureRegion(context.Background(), model); err == nil {
		t.Fatal("region load over corrupted chunks should fail")
	}
}

// TestMissingChunkFileSurfaces deletes a chunk file between open and load.
func TestMissingChunkFileSurfaces(t *testing.T) {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 800, Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Build(dir, ds, BuildOptions{TargetChunkBytes: 1024}); err != nil {
		t.Fatal(err)
	}
	idx, err := Open(context.Background(), dir, Options{MemoryBudgetBytes: 1 << 20, SampleSize: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	removed := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".chk" {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				t.Fatal(err)
			}
			removed++
		}
	}
	if removed == 0 {
		t.Fatal("no chunk files found to remove")
	}
	if err := idx.InitExploration(context.Background()); err == nil {
		t.Fatal("sampling over missing chunks should fail")
	}
}

// TestBuildRefusesDirtyDirectory guards the immutable-store contract.
func TestBuildRefusesDirtyDirectory(t *testing.T) {
	ds, _ := dataset.GenerateSky(dataset.SkyConfig{N: 50, Seed: 1})
	dir := t.TempDir()
	if err := Build(dir, ds, BuildOptions{TargetChunkBytes: 1024}); err != nil {
		t.Fatal(err)
	}
	if err := Build(dir, ds, BuildOptions{TargetChunkBytes: 1024}); err == nil {
		t.Fatal("rebuild into a populated directory should fail")
	}
}

// TestOpenAfterRebuildRoundTrip exercises the full build→open→explore→
// reopen cycle on the same directory.
func TestOpenAfterRebuildRoundTrip(t *testing.T) {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 1200, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Build(dir, ds, BuildOptions{TargetChunkBytes: 2048}); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		idx, err := Open(context.Background(), dir, Options{MemoryBudgetBytes: 1 << 20, SampleSize: 50, Seed: int64(round)})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := idx.InitExploration(context.Background()); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		region := testRegion(t, ds)
		model := boundaryModel(t, ds, region, 80)
		if _, err := idx.EnsureRegion(context.Background(), model); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		idx.Close()
	}
}
