package grid

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/vec"
)

func unitBox(d int) vec.Box {
	min := make(vec.Point, d)
	max := make(vec.Point, d)
	for i := range max {
		max[i] = 1
	}
	return vec.NewBox(min, max)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(unitBox(2), 0); err == nil {
		t.Error("zero segments should fail")
	}
	if _, err := NewWithSegments(unitBox(2), []int{1}); err == nil {
		t.Error("segment arity mismatch should fail")
	}
	if _, err := NewWithSegments(unitBox(2), []int{2, -1}); err == nil {
		t.Error("negative segments should fail")
	}
	degenerate := vec.NewBox(vec.Point{0, 5}, vec.Point{1, 5})
	if _, err := NewWithSegments(degenerate, []int{2, 3}); err == nil {
		t.Error("multi-segment degenerate dimension should fail")
	}
	if _, err := NewWithSegments(degenerate, []int{2, 1}); err != nil {
		t.Errorf("single-segment degenerate dimension should work: %v", err)
	}
}

func TestPaperConfiguration(t *testing.T) {
	// 5 dims x 5 segments = 3125 symbolic index points (Table 1).
	g, err := New(unitBox(5), 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCells() != 3125 {
		t.Errorf("NumCells = %d, want 3125", g.NumCells())
	}
	if got := len(g.Centers()); got != 3125 {
		t.Errorf("Centers = %d points", got)
	}
}

func TestNewForPointBudget(t *testing.T) {
	g, err := NewForPointBudget(unitBox(5), 3125)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCells() != 3125 {
		t.Errorf("NumCells = %d, want 3125", g.NumCells())
	}
	// Budgets between perfect powers round down.
	g2, err := NewForPointBudget(unitBox(2), 10)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumCells() != 9 {
		t.Errorf("NumCells = %d, want 9", g2.NumCells())
	}
	if _, err := NewForPointBudget(unitBox(2), 0); err == nil {
		t.Error("zero budget should fail")
	}
}

func TestCoordsIDRoundTrip(t *testing.T) {
	g, err := NewWithSegments(unitBox(3), []int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCells() != 24 {
		t.Fatalf("NumCells = %d", g.NumCells())
	}
	for id := 0; id < g.NumCells(); id++ {
		coords, err := g.Coords(CellID(id))
		if err != nil {
			t.Fatal(err)
		}
		back, err := g.ID(coords)
		if err != nil {
			t.Fatal(err)
		}
		if back != CellID(id) {
			t.Fatalf("round trip %d -> %v -> %d", id, coords, back)
		}
	}
	if _, err := g.Coords(-1); err == nil {
		t.Error("negative id should fail")
	}
	if _, err := g.Coords(CellID(g.NumCells())); err == nil {
		t.Error("overflow id should fail")
	}
	if _, err := g.ID([]int{0, 0}); err == nil {
		t.Error("short coords should fail")
	}
	if _, err := g.ID([]int{0, 0, 4}); err == nil {
		t.Error("out-of-range coord should fail")
	}
}

func TestCellBoxesTileTheDomain(t *testing.T) {
	bounds := vec.NewBox(vec.Point{-2, 10}, vec.Point{2, 20})
	g, err := NewWithSegments(bounds, []int{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	var volume float64
	for id := 0; id < g.NumCells(); id++ {
		box, err := g.CellBox(CellID(id))
		if err != nil {
			t.Fatal(err)
		}
		volume += box.Volume()
		if !bounds.Intersects(box) {
			t.Fatalf("cell %d escapes the domain", id)
		}
	}
	if diff := volume - bounds.Volume(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("cell volumes sum to %g, domain is %g", volume, bounds.Volume())
	}
}

func TestCellOfAndCenters(t *testing.T) {
	g, err := New(unitBox(2), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Each cell contains its own center.
	for id := 0; id < g.NumCells(); id++ {
		c, err := g.Center(CellID(id))
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.CellOf(c)
		if err != nil {
			t.Fatal(err)
		}
		if got != CellID(id) {
			t.Fatalf("center of cell %d mapped to cell %d", id, got)
		}
	}
	// The domain max belongs to the last cell.
	id, err := g.CellOf(vec.Point{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if id != CellID(g.NumCells()-1) {
		t.Errorf("domain max in cell %d, want %d", id, g.NumCells()-1)
	}
	if _, err := g.CellOf(vec.Point{1.1, 0}); err == nil {
		t.Error("point outside domain should fail")
	}
	if _, err := g.CellOf(vec.Point{0.5}); err == nil {
		t.Error("dims mismatch should fail")
	}
}

func TestQuickCellOfConsistentWithCellBox(t *testing.T) {
	g, err := NewWithSegments(unitBox(3), []int{3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := vec.Point{rng.Float64(), rng.Float64(), rng.Float64()}
		id, err := g.CellOf(p)
		if err != nil {
			return false
		}
		box, err := g.CellBox(id)
		if err != nil {
			return false
		}
		return box.Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func buildStoreAndGrid(t *testing.T, n int, segments int) (*chunkstore.Store, *Grid, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: n, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	st, err := chunkstore.Build(t.TempDir(), ds, chunkstore.BuildOptions{TargetChunkBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(st.Bounds(), segments)
	if err != nil {
		t.Fatal(err)
	}
	return st, g, ds
}

func TestBuildMappingAndLoadCell(t *testing.T) {
	st, g, ds := buildStoreAndGrid(t, 1500, 3)
	m, err := BuildMapping(g, st)
	if err != nil {
		t.Fatal(err)
	}
	// For every cell: merging the cell's box returns exactly the tuples
	// the dataset brute-force places there, and every chunk the merge
	// could touch is within the mapping's chunk set.
	totalRows := 0
	for id := 0; id < g.NumCells(); id++ {
		box, err := g.CellBox(CellID(id))
		if err != nil {
			t.Fatal(err)
		}
		rows, _, err := st.MergeRegion(context.Background(), box)
		if err != nil {
			t.Fatal(err)
		}
		totalRows += len(rows)
		chunks, err := m.Chunks(CellID(id))
		if err != nil {
			t.Fatal(err)
		}
		// The mapping must cover each dimension's overlapping chunk run.
		for d := 0; d < g.Dims(); d++ {
			want, err := st.ChunksOverlapping(d, box.Min[d], box.Max[d])
			if err != nil {
				t.Fatal(err)
			}
			got := 0
			for _, c := range chunks {
				if c.Dim == d {
					got++
				}
			}
			if got != len(want) {
				t.Fatalf("cell %d dim %d: mapping has %d chunks, store says %d", id, d, got, len(want))
			}
		}
		bytes, entries, err := m.CostEstimate(CellID(id))
		if err != nil {
			t.Fatal(err)
		}
		if len(chunks) > 0 && (bytes <= 0 || entries <= 0) {
			t.Fatalf("cell %d: nonsense cost estimate (%d bytes, %d entries)", id, bytes, entries)
		}
	}
	// Cells tile the domain: boundary tuples belong to up to 2^d adjacent
	// cell boxes (closed boxes share faces), so the per-cell merge total is
	// at least the dataset size but may double-count boundaries.
	if totalRows < ds.Len() {
		t.Errorf("cells cover %d rows, dataset has %d", totalRows, ds.Len())
	}
}

func TestBuildMappingDimsMismatch(t *testing.T) {
	st, _, _ := buildStoreAndGrid(t, 200, 2)
	g2, err := New(unitBox(2), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildMapping(g2, st); err == nil {
		t.Error("dims mismatch should fail")
	}
}

func TestMappingChunksRange(t *testing.T) {
	st, g, _ := buildStoreAndGrid(t, 300, 2)
	m, err := BuildMapping(g, st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Chunks(-1); err == nil {
		t.Error("negative cell should fail")
	}
	if _, err := m.Chunks(CellID(g.NumCells())); err == nil {
		t.Error("overflow cell should fail")
	}
}
