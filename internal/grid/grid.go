// Package grid implements UEI's in-memory spatial index (§3.1, Figure 1):
// the data space is divided into equal-size d-dimensional subspaces
// ("cells"); each cell g_i is represented by a symbolic index point p_i at
// its center; and a mapping method m records, for each cell, the chunks of
// each dimension needed to reconstruct it from the chunk store.
package grid

import (
	"fmt"
	"math"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/vec"
)

// CellID identifies a grid cell in [0, NumCells()).
type CellID int

// Grid partitions an axis-aligned domain into an equal-width lattice.
type Grid struct {
	bounds   vec.Box
	segments []int     // segments per dimension
	widths   []float64 // cell width per dimension
	cells    int
}

// New creates a grid with the same number of segments in every dimension
// ("equilateral d-dimensional subspaces", Algorithm 2 line 7). With 5
// dimensions and 5 segments this yields the paper's 3125 symbolic index
// points.
func New(bounds vec.Box, segmentsPerDim int) (*Grid, error) {
	segs := make([]int, bounds.Dims())
	for i := range segs {
		segs[i] = segmentsPerDim
	}
	return NewWithSegments(bounds, segs)
}

// NewWithSegments creates a grid with per-dimension segment counts.
func NewWithSegments(bounds vec.Box, segments []int) (*Grid, error) {
	dims := bounds.Dims()
	if dims == 0 {
		return nil, fmt.Errorf("grid: zero-dimensional bounds")
	}
	if len(segments) != dims {
		return nil, fmt.Errorf("grid: %d segment counts for %d dimensions", len(segments), dims)
	}
	cells := 1
	widths := make([]float64, dims)
	for i, s := range segments {
		if s <= 0 {
			return nil, fmt.Errorf("grid: dimension %d has %d segments; need at least 1", i, s)
		}
		if cells > math.MaxInt32/s {
			return nil, fmt.Errorf("grid: cell count overflow (%d segments on dimension %d)", s, i)
		}
		cells *= s
		span := bounds.Max[i] - bounds.Min[i]
		if span <= 0 {
			// Degenerate dimension: a single zero-width slab still works;
			// every point maps to segment 0.
			if s != 1 {
				return nil, fmt.Errorf("grid: dimension %d is degenerate but has %d segments", i, s)
			}
			widths[i] = 1
			continue
		}
		widths[i] = span / float64(s)
	}
	return &Grid{
		bounds:   vec.NewBox(bounds.Min, bounds.Max),
		segments: segments,
		widths:   widths,
		cells:    cells,
	}, nil
}

// NewForPointBudget creates an equilateral grid whose total cell count is
// as close as possible to (without exceeding) approxPoints, the Table 1
// "Number of Symbolic Index Points" knob.
func NewForPointBudget(bounds vec.Box, approxPoints int) (*Grid, error) {
	if approxPoints < 1 {
		return nil, fmt.Errorf("grid: point budget %d must be at least 1", approxPoints)
	}
	d := float64(bounds.Dims())
	segs := int(math.Floor(math.Pow(float64(approxPoints), 1/d) + 1e-9))
	if segs < 1 {
		segs = 1
	}
	return New(bounds, segs)
}

// Dims returns the dimensionality.
func (g *Grid) Dims() int { return g.bounds.Dims() }

// NumCells returns the number of cells, which equals the number of symbolic
// index points |P|.
func (g *Grid) NumCells() int { return g.cells }

// Segments returns the per-dimension segment counts (read-only).
func (g *Grid) Segments() []int { return g.segments }

// Bounds returns the grid domain.
func (g *Grid) Bounds() vec.Box { return g.bounds }

// Coords decomposes a cell id into per-dimension segment indexes.
func (g *Grid) Coords(id CellID) ([]int, error) {
	if id < 0 || int(id) >= g.cells {
		return nil, fmt.Errorf("grid: cell %d out of range [0,%d)", id, g.cells)
	}
	coords := make([]int, g.Dims())
	v := int(id)
	for i := g.Dims() - 1; i >= 0; i-- {
		coords[i] = v % g.segments[i]
		v /= g.segments[i]
	}
	return coords, nil
}

// ID composes per-dimension segment indexes into a cell id (the inverse of
// Coords).
func (g *Grid) ID(coords []int) (CellID, error) {
	if len(coords) != g.Dims() {
		return 0, fmt.Errorf("grid: %d coords for %d dimensions", len(coords), g.Dims())
	}
	id := 0
	for i, c := range coords {
		if c < 0 || c >= g.segments[i] {
			return 0, fmt.Errorf("grid: coord %d = %d out of range [0,%d)", i, c, g.segments[i])
		}
		id = id*g.segments[i] + c
	}
	return CellID(id), nil
}

// CellBox returns the axis-aligned box of a cell. Boxes of adjacent cells
// share boundary faces; membership assignment (CellOf) resolves boundary
// points to the lower-indexed cell except at the domain maximum.
func (g *Grid) CellBox(id CellID) (vec.Box, error) {
	coords, err := g.Coords(id)
	if err != nil {
		return vec.Box{}, err
	}
	min := make(vec.Point, g.Dims())
	max := make(vec.Point, g.Dims())
	for i, c := range coords {
		min[i] = g.bounds.Min[i] + float64(c)*g.widths[i]
		if c == g.segments[i]-1 {
			// Snap the last cell to the exact domain edge so accumulated
			// floating-point drift cannot exclude boundary tuples.
			max[i] = g.bounds.Max[i]
		} else {
			max[i] = g.bounds.Min[i] + float64(c+1)*g.widths[i]
		}
	}
	return vec.NewBox(min, max), nil
}

// Center returns the symbolic index point of a cell: "the coordinates of
// the 'virtual' center point of g_i" (Algorithm 2 line 9).
func (g *Grid) Center(id CellID) (vec.Point, error) {
	box, err := g.CellBox(id)
	if err != nil {
		return nil, err
	}
	return box.Center(), nil
}

// CellOf returns the cell containing p. Points outside the domain are an
// error; points on an interior boundary map to the higher segment (standard
// half-open intervals), and the domain maximum maps to the last segment.
func (g *Grid) CellOf(p vec.Point) (CellID, error) {
	if len(p) != g.Dims() {
		return 0, fmt.Errorf("grid: point has %d dims, grid has %d", len(p), g.Dims())
	}
	coords := make([]int, g.Dims())
	for i, v := range p {
		if v < g.bounds.Min[i] || v > g.bounds.Max[i] {
			return 0, fmt.Errorf("grid: coordinate %d = %g outside domain [%g,%g]", i, v, g.bounds.Min[i], g.bounds.Max[i])
		}
		c := int((v - g.bounds.Min[i]) / g.widths[i])
		if c >= g.segments[i] {
			c = g.segments[i] - 1
		}
		coords[i] = c
	}
	return g.ID(coords)
}

// SegmentOf returns the segment index of value v on dimension dim, using
// the same boundary rules as CellOf.
func (g *Grid) SegmentOf(dim int, v float64) (int, error) {
	if dim < 0 || dim >= g.Dims() {
		return 0, fmt.Errorf("grid: dimension %d out of range [0,%d)", dim, g.Dims())
	}
	if v < g.bounds.Min[dim] || v > g.bounds.Max[dim] {
		return 0, fmt.Errorf("grid: value %g outside domain [%g,%g] on dimension %d", v, g.bounds.Min[dim], g.bounds.Max[dim], dim)
	}
	c := int((v - g.bounds.Min[dim]) / g.widths[dim])
	if c >= g.segments[dim] {
		c = g.segments[dim] - 1
	}
	return c, nil
}

// SegmentInterval returns the value interval [lo, hi] of a segment on a
// dimension (the last segment snaps to the domain edge, as CellBox does).
func (g *Grid) SegmentInterval(dim, seg int) (lo, hi float64, err error) {
	if dim < 0 || dim >= g.Dims() {
		return 0, 0, fmt.Errorf("grid: dimension %d out of range [0,%d)", dim, g.Dims())
	}
	if seg < 0 || seg >= g.segments[dim] {
		return 0, 0, fmt.Errorf("grid: segment %d out of range [0,%d) on dimension %d", seg, g.segments[dim], dim)
	}
	lo = g.bounds.Min[dim] + float64(seg)*g.widths[dim]
	if seg == g.segments[dim]-1 {
		hi = g.bounds.Max[dim]
	} else {
		hi = g.bounds.Min[dim] + float64(seg+1)*g.widths[dim]
	}
	return lo, hi, nil
}

// Centers materializes every symbolic index point, in cell-id order. This
// is the index set P of §3.1 (component 1).
func (g *Grid) Centers() []vec.Point {
	out := make([]vec.Point, g.cells)
	for id := 0; id < g.cells; id++ {
		c, err := g.Center(CellID(id))
		if err != nil {
			// Unreachable: ids are generated in range.
			panic(err)
		}
		out[id] = c
	}
	return out
}

// Mapping is the mapping method m : p -> C of §3.1 (component 2): for each
// cell it records the contiguous run of chunk sequence numbers per
// dimension whose value ranges overlap the cell. Runs are resolved against
// the store's manifest on demand, keeping the in-memory mapping compact
// (two ints per dimension per cell).
type Mapping struct {
	grid  *Grid
	store *chunkstore.Store
	// runs[cell][dim] = {first, last} chunk Seq, inclusive; first > last
	// encodes "no chunks" (possible when a cell covers empty value space).
	runs [][][2]int
}

// BuildMapping computes the cell-to-chunk mapping from the store manifest.
func BuildMapping(g *Grid, st *chunkstore.Store) (*Mapping, error) {
	if g.Dims() != st.Dims() {
		return nil, fmt.Errorf("grid: grid has %d dims, store has %d", g.Dims(), st.Dims())
	}
	runs := make([][][2]int, g.NumCells())
	for id := 0; id < g.NumCells(); id++ {
		box, err := g.CellBox(CellID(id))
		if err != nil {
			return nil, err
		}
		cellRuns := make([][2]int, g.Dims())
		for d := 0; d < g.Dims(); d++ {
			chunks, err := st.ChunksOverlapping(d, box.Min[d], box.Max[d])
			if err != nil {
				return nil, err
			}
			if len(chunks) == 0 {
				cellRuns[d] = [2]int{1, 0}
				continue
			}
			cellRuns[d] = [2]int{chunks[0].Seq, chunks[len(chunks)-1].Seq}
		}
		runs[id] = cellRuns
	}
	return &Mapping{grid: g, store: st, runs: runs}, nil
}

// Chunks returns the chunk metadata needed to reconstruct the cell, all
// dimensions concatenated.
func (m *Mapping) Chunks(id CellID) ([]chunkstore.ChunkMeta, error) {
	if id < 0 || int(id) >= len(m.runs) {
		return nil, fmt.Errorf("grid: cell %d out of range [0,%d)", id, len(m.runs))
	}
	var out []chunkstore.ChunkMeta
	manifest := m.store.Manifest()
	for d, run := range m.runs[id] {
		if run[0] > run[1] {
			continue
		}
		out = append(out, manifest.Chunks[d][run[0]:run[1]+1]...)
	}
	return out, nil
}

// CostEstimate returns the bytes and posting entries that loading the cell
// would read — the e term of the paper's O(k·e) bound — without any I/O.
func (m *Mapping) CostEstimate(id CellID) (bytes int64, entries int, err error) {
	chunks, err := m.Chunks(id)
	if err != nil {
		return 0, 0, err
	}
	for _, c := range chunks {
		bytes += c.Bytes
		entries += c.Entries
	}
	return bytes, entries, nil
}
