// Package metrics provides the measurement substrate for the experiments:
// the F-measure the paper uses as its accuracy metric (Table 1), a latency
// recorder with percentiles for the response-time figure, and labeled
// experiment series for the accuracy figures.
package metrics

import "fmt"

// Confusion is a binary confusion matrix.
type Confusion struct {
	TruePositive  int
	FalsePositive int
	TrueNegative  int
	FalseNegative int
}

// Add merges another confusion matrix into this one.
func (c *Confusion) Add(o Confusion) {
	c.TruePositive += o.TruePositive
	c.FalsePositive += o.FalsePositive
	c.TrueNegative += o.TrueNegative
	c.FalseNegative += o.FalseNegative
}

// Observe records one prediction/truth pair.
func (c *Confusion) Observe(predictedPositive, actuallyPositive bool) {
	switch {
	case predictedPositive && actuallyPositive:
		c.TruePositive++
	case predictedPositive && !actuallyPositive:
		c.FalsePositive++
	case !predictedPositive && actuallyPositive:
		c.FalseNegative++
	default:
		c.TrueNegative++
	}
}

// Total returns the number of observations.
func (c Confusion) Total() int {
	return c.TruePositive + c.FalsePositive + c.TrueNegative + c.FalseNegative
}

// Precision returns TP / (TP + FP), or 0 when nothing was predicted
// positive.
func (c Confusion) Precision() float64 {
	d := c.TruePositive + c.FalsePositive
	if d == 0 {
		return 0
	}
	return float64(c.TruePositive) / float64(d)
}

// Recall returns TP / (TP + FN), or 0 when nothing is actually positive.
func (c Confusion) Recall() float64 {
	d := c.TruePositive + c.FalseNegative
	if d == 0 {
		return 0
	}
	return float64(c.TruePositive) / float64(d)
}

// F1 returns the harmonic mean of precision and recall — the paper's
// "F-Measure (Accuracy)" performance measurement.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// FBeta returns the weighted F-measure with recall weighted beta times as
// much as precision.
func (c Confusion) FBeta(beta float64) float64 {
	if beta <= 0 {
		return 0
	}
	p, r := c.Precision(), c.Recall()
	b2 := beta * beta
	d := b2*p + r
	if d == 0 {
		return 0
	}
	return (1 + b2) * p * r / d
}

// Accuracy returns the fraction of correct predictions.
func (c Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.TruePositive+c.TrueNegative) / float64(t)
}

// String renders the matrix compactly for logs.
func (c Confusion) String() string {
	return fmt.Sprintf("tp=%d fp=%d tn=%d fn=%d f1=%.3f", c.TruePositive, c.FalsePositive, c.TrueNegative, c.FalseNegative, c.F1())
}
