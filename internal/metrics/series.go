package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// SeriesPoint is one (x, y) observation; for the accuracy figures x is the
// number of labeled examples and y is the F-measure.
type SeriesPoint struct {
	X float64
	Y float64
}

// Series is a named, ordered sequence of observations.
type Series struct {
	Name   string
	Points []SeriesPoint
}

// Append adds an observation.
func (s *Series) Append(x, y float64) {
	s.Points = append(s.Points, SeriesPoint{X: x, Y: y})
}

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.Points) }

// YAt returns the y value at the largest recorded x that does not exceed
// the query x (step interpolation), and false when x precedes all points.
func (s *Series) YAt(x float64) (float64, bool) {
	best := -1
	for i, p := range s.Points {
		if p.X <= x {
			best = i
		} else {
			break
		}
	}
	if best < 0 {
		return 0, false
	}
	return s.Points[best].Y, true
}

// FirstXReaching returns the smallest x whose y meets or exceeds the
// threshold, and false if the series never reaches it. For accuracy curves
// this answers "how many labels until F1 >= t", the user-effort comparison
// made in the paper's Figures 3-5 discussion.
func (s *Series) FirstXReaching(threshold float64) (float64, bool) {
	for _, p := range s.Points {
		if p.Y >= threshold {
			return p.X, true
		}
	}
	return 0, false
}

// MaxY returns the largest y observed, or 0 for an empty series.
func (s *Series) MaxY() float64 {
	var m float64
	for _, p := range s.Points {
		if p.Y > m {
			m = p.Y
		}
	}
	return m
}

// MeanSeries averages several runs of the same experiment pointwise by x.
// Each distinct x across the runs becomes one output point whose y is the
// mean of all runs' step-interpolated values at that x; runs that have no
// value yet at some x are excluded from that x's mean. This is how "averages
// of 10 complete runs" (§4.1) are computed for the accuracy curves.
func MeanSeries(name string, runs []*Series) *Series {
	xsSet := map[float64]bool{}
	for _, r := range runs {
		for _, p := range r.Points {
			xsSet[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	out := &Series{Name: name}
	for _, x := range xs {
		var sum float64
		n := 0
		for _, r := range runs {
			if y, ok := r.YAt(x); ok {
				sum += y
				n++
			}
		}
		if n > 0 {
			out.Append(x, sum/float64(n))
		}
	}
	return out
}

// FormatTable renders several series as an aligned text table with one row
// per x value present in any series (step-interpolated elsewhere). It is the
// textual equivalent of the paper's figures.
func FormatTable(xLabel, yFormat string, series ...*Series) string {
	if yFormat == "" {
		yFormat = "%.3f"
	}
	xsSet := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			xsSet[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, " %16s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%-12g", x)
		for _, s := range series {
			if y, ok := s.YAt(x); ok {
				fmt.Fprintf(&b, " %16s", fmt.Sprintf(yFormat, y))
			} else {
				fmt.Fprintf(&b, " %16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
