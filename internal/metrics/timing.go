package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// LatencyRecorder accumulates per-iteration response times and answers
// summary queries (mean, percentiles, max). It backs Figure 6.
type LatencyRecorder struct {
	samples []time.Duration
	sorted  bool
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder { return &LatencyRecorder{} }

// Record adds one sample. Negative durations are clamped to zero.
func (r *LatencyRecorder) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	r.samples = append(r.samples, d)
	r.sorted = false
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int { return len(r.samples) }

// Mean returns the average sample, or 0 when empty.
func (r *LatencyRecorder) Mean() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range r.samples {
		sum += s
	}
	return sum / time.Duration(len(r.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank method. Out-of-domain input is tolerated rather than
// punished: an empty recorder, NaN, or a non-positive p returns 0, and p
// above 100 clamps to the maximum.
func (r *LatencyRecorder) Percentile(p float64) time.Duration {
	if len(r.samples) == 0 || math.IsNaN(p) || p <= 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	r.ensureSorted()
	rank := int(math.Ceil(p / 100 * float64(len(r.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(r.samples) {
		rank = len(r.samples)
	}
	return r.samples[rank-1]
}

// LatencySnapshot is a one-call summary of a recorder, so report code
// doesn't re-sort per statistic or drift in which percentiles it quotes.
type LatencySnapshot struct {
	Count int
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Snapshot computes count, mean, p50/p95/p99 and max in one pass over the
// (sorted-once) samples.
func (r *LatencyRecorder) Snapshot() LatencySnapshot {
	return LatencySnapshot{
		Count: r.Count(),
		Mean:  r.Mean(),
		P50:   r.Percentile(50),
		P95:   r.Percentile(95),
		P99:   r.Percentile(99),
		Max:   r.Max(),
	}
}

// Max returns the largest sample, or 0 when empty.
func (r *LatencyRecorder) Max() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	r.ensureSorted()
	return r.samples[len(r.samples)-1]
}

// Min returns the smallest sample, or 0 when empty.
func (r *LatencyRecorder) Min() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	r.ensureSorted()
	return r.samples[0]
}

// Samples returns a copy of the recorded samples in insertion-independent
// (sorted) order, for merging recorders across runs.
func (r *LatencyRecorder) Samples() []time.Duration {
	r.ensureSorted()
	out := make([]time.Duration, len(r.samples))
	copy(out, r.samples)
	return out
}

// FractionUnder returns the fraction of samples strictly below the
// threshold — used for "how many iterations met the 500 ms interactivity
// bound".
func (r *LatencyRecorder) FractionUnder(threshold time.Duration) float64 {
	if len(r.samples) == 0 {
		return 0
	}
	n := 0
	for _, s := range r.samples {
		if s < threshold {
			n++
		}
	}
	return float64(n) / float64(len(r.samples))
}

// Summary renders the recorder for reports.
func (r *LatencyRecorder) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v max=%v",
		r.Count(), r.Mean().Round(time.Microsecond),
		r.Percentile(50).Round(time.Microsecond),
		r.Percentile(95).Round(time.Microsecond),
		r.Max().Round(time.Microsecond))
}

func (r *LatencyRecorder) ensureSorted() {
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
}
