package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestConfusionCounts(t *testing.T) {
	var c Confusion
	c.Observe(true, true)   // tp
	c.Observe(true, false)  // fp
	c.Observe(false, true)  // fn
	c.Observe(false, false) // tn
	c.Observe(true, true)   // tp
	if c.TruePositive != 2 || c.FalsePositive != 1 || c.FalseNegative != 1 || c.TrueNegative != 1 {
		t.Fatalf("counts: %+v", c)
	}
	if c.Total() != 5 {
		t.Errorf("Total = %d", c.Total())
	}
	if got, want := c.Precision(), 2.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Precision = %g", got)
	}
	if got, want := c.Recall(), 2.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Recall = %g", got)
	}
	if got, want := c.F1(), 2.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("F1 = %g", got)
	}
	if got, want := c.Accuracy(), 0.6; math.Abs(got-want) > 1e-12 {
		t.Errorf("Accuracy = %g", got)
	}
	if !strings.Contains(c.String(), "tp=2") {
		t.Errorf("String = %q", c.String())
	}
}

func TestConfusionEdgeCases(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Error("empty confusion should report zeros, not NaN")
	}
	c.Observe(false, false)
	if c.F1() != 0 {
		t.Error("all-negative F1 should be 0")
	}
}

func TestConfusionAdd(t *testing.T) {
	a := Confusion{TruePositive: 1, FalsePositive: 2, TrueNegative: 3, FalseNegative: 4}
	b := Confusion{TruePositive: 10, FalsePositive: 20, TrueNegative: 30, FalseNegative: 40}
	a.Add(b)
	if a.TruePositive != 11 || a.FalseNegative != 44 {
		t.Errorf("Add wrong: %+v", a)
	}
}

func TestFBeta(t *testing.T) {
	c := Confusion{TruePositive: 8, FalsePositive: 2, FalseNegative: 4}
	if got := c.FBeta(1); math.Abs(got-c.F1()) > 1e-12 {
		t.Errorf("FBeta(1) = %g, F1 = %g", got, c.F1())
	}
	if c.FBeta(0) != 0 || c.FBeta(-1) != 0 {
		t.Error("non-positive beta should yield 0")
	}
	// beta=2 weights recall higher; here recall < precision so F2 < F1.
	if c.FBeta(2) >= c.F1() {
		t.Errorf("F2 = %g should be below F1 = %g when recall lags", c.FBeta(2), c.F1())
	}
}

func TestQuickF1Bounds(t *testing.T) {
	f := func(tp, fp, tn, fn uint8) bool {
		c := Confusion{int(tp), int(fp), int(tn), int(fn)}
		f1 := c.F1()
		p, r := c.Precision(), c.Recall()
		if f1 < 0 || f1 > 1 || math.IsNaN(f1) {
			return false
		}
		// F1 lies between min and max of precision and recall.
		lo, hi := math.Min(p, r), math.Max(p, r)
		return f1 >= lo-1e-12 && f1 <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLatencyRecorder(t *testing.T) {
	r := NewLatencyRecorder()
	if r.Mean() != 0 || r.Percentile(50) != 0 || r.Max() != 0 || r.Min() != 0 {
		t.Error("empty recorder should report zeros")
	}
	for _, ms := range []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		r.Record(time.Duration(ms) * time.Millisecond)
	}
	if r.Count() != 10 {
		t.Errorf("Count = %d", r.Count())
	}
	if got := r.Mean(); got != 55*time.Millisecond {
		t.Errorf("Mean = %v", got)
	}
	if got := r.Percentile(50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := r.Percentile(90); got != 90*time.Millisecond {
		t.Errorf("p90 = %v", got)
	}
	if got := r.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	if got := r.Max(); got != 100*time.Millisecond {
		t.Errorf("Max = %v", got)
	}
	if got := r.Min(); got != 10*time.Millisecond {
		t.Errorf("Min = %v", got)
	}
	if got := r.FractionUnder(55 * time.Millisecond); got != 0.5 {
		t.Errorf("FractionUnder = %g", got)
	}
	if !strings.Contains(r.Summary(), "n=10") {
		t.Errorf("Summary = %q", r.Summary())
	}
	r.Record(-time.Second)
	if r.Min() != 0 {
		t.Error("negative samples should clamp to zero")
	}
}

func TestLatencyPercentileToleratesBadInput(t *testing.T) {
	r := NewLatencyRecorder()
	for _, ms := range []int{10, 20, 30} {
		r.Record(time.Duration(ms) * time.Millisecond)
	}
	for _, p := range []float64{math.NaN(), -5, 0} {
		if got := r.Percentile(p); got != 0 {
			t.Errorf("Percentile(%v) = %v, want 0", p, got)
		}
	}
	if got := r.Percentile(1e9); got != 30*time.Millisecond {
		t.Errorf("Percentile(1e9) = %v, want clamp to max", got)
	}
	empty := NewLatencyRecorder()
	if got := empty.Percentile(math.NaN()); got != 0 {
		t.Errorf("empty Percentile(NaN) = %v", got)
	}
}

func TestLatencySnapshot(t *testing.T) {
	r := NewLatencyRecorder()
	if s := r.Snapshot(); s.Count != 0 || s.Mean != 0 || s.Max != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
	for _, ms := range []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		r.Record(time.Duration(ms) * time.Millisecond)
	}
	s := r.Snapshot()
	if s.Count != 10 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.Mean != 55*time.Millisecond {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.P50 != 50*time.Millisecond {
		t.Errorf("P50 = %v", s.P50)
	}
	if s.P95 != 100*time.Millisecond {
		t.Errorf("P95 = %v", s.P95)
	}
	if s.P99 != 100*time.Millisecond {
		t.Errorf("P99 = %v", s.P99)
	}
	if s.Max != 100*time.Millisecond {
		t.Errorf("Max = %v", s.Max)
	}
	// The one-call snapshot must agree with the individual accessors.
	if s.P50 != r.Percentile(50) || s.P95 != r.Percentile(95) || s.Max != r.Max() {
		t.Error("snapshot disagrees with accessors")
	}
}

func TestLatencyRecordAfterQuery(t *testing.T) {
	r := NewLatencyRecorder()
	r.Record(30 * time.Millisecond)
	_ = r.Max()
	r.Record(10 * time.Millisecond) // must re-sort
	if r.Min() != 10*time.Millisecond {
		t.Error("recorder stale after post-query record")
	}
}

func TestSeriesBasics(t *testing.T) {
	s := &Series{Name: "uei"}
	s.Append(10, 0.5)
	s.Append(20, 0.8)
	s.Append(30, 0.9)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if y, ok := s.YAt(25); !ok || y != 0.8 {
		t.Errorf("YAt(25) = %g, %v", y, ok)
	}
	if _, ok := s.YAt(5); ok {
		t.Error("YAt before first point should report false")
	}
	if x, ok := s.FirstXReaching(0.8); !ok || x != 20 {
		t.Errorf("FirstXReaching = %g, %v", x, ok)
	}
	if _, ok := s.FirstXReaching(0.99); ok {
		t.Error("unreachable threshold should report false")
	}
	if s.MaxY() != 0.9 {
		t.Errorf("MaxY = %g", s.MaxY())
	}
}

func TestMeanSeries(t *testing.T) {
	a := &Series{Name: "r1"}
	a.Append(10, 0.4)
	a.Append(20, 0.8)
	b := &Series{Name: "r2"}
	b.Append(10, 0.6)
	b.Append(20, 1.0)
	m := MeanSeries("mean", []*Series{a, b})
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	if y, _ := m.YAt(10); math.Abs(y-0.5) > 1e-12 {
		t.Errorf("mean at 10 = %g", y)
	}
	if y, _ := m.YAt(20); math.Abs(y-0.9) > 1e-12 {
		t.Errorf("mean at 20 = %g", y)
	}
}

func TestMeanSeriesRaggedRuns(t *testing.T) {
	a := &Series{Name: "r1"}
	a.Append(10, 0.4)
	b := &Series{Name: "r2"}
	b.Append(10, 0.6)
	b.Append(20, 1.0)
	m := MeanSeries("mean", []*Series{a, b})
	// At x=20 run a step-interpolates to 0.4, so the mean is 0.7.
	if y, _ := m.YAt(20); math.Abs(y-0.7) > 1e-12 {
		t.Errorf("mean at 20 = %g", y)
	}
}

func TestFormatTable(t *testing.T) {
	a := &Series{Name: "uei"}
	a.Append(1, 0.5)
	b := &Series{Name: "mysql"}
	b.Append(2, 0.25)
	out := FormatTable("labels", "%.2f", a, b)
	if !strings.Contains(out, "uei") || !strings.Contains(out, "mysql") {
		t.Errorf("missing headers:\n%s", out)
	}
	if !strings.Contains(out, "0.50") || !strings.Contains(out, "0.25") {
		t.Errorf("missing values:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("missing placeholder for absent value:\n%s", out)
	}
}

func TestQuickMeanSeriesBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		runs := make([]*Series, 1+rng.Intn(5))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range runs {
			runs[i] = &Series{Name: "r"}
			n := 1 + rng.Intn(10)
			x := 0.0
			for j := 0; j < n; j++ {
				x += 1 + rng.Float64()*5
				y := rng.Float64()
				if y < lo {
					lo = y
				}
				if y > hi {
					hi = y
				}
				runs[i].Append(x, y)
			}
		}
		m := MeanSeries("m", runs)
		for _, p := range m.Points {
			if p.Y < lo-1e-12 || p.Y > hi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
