package al

import (
	"fmt"

	"github.com/uei-db/uei/internal/learn"
)

// ExpectedErrorReduction implements the expected-error-reduction query
// strategy (references [22] and, for regression, [5]): a candidate's score
// is the expected decrease in the model's total uncertainty over a fixed
// evaluation sample if the candidate were labeled and the model retrained.
//
// For each candidate x and each hypothetical label y' ∈ {0,1}, a fresh
// classifier is trained on L ∪ {(x, y')} and its summed least-confidence
// uncertainty over the evaluation sample is computed; the two sums are
// weighted by the current model's p(y'|x). The score is the negated
// expected future uncertainty, so argmax selection picks the candidate that
// most reduces it.
//
// The strategy is O(|eval| · retrain) per candidate — the cost the paper
// cites as the reason uncertainty sampling is preferred — so it is intended
// for the strategy ablation over small candidate pools only.
type ExpectedErrorReduction struct {
	// Factory builds the throwaway classifiers used for lookahead.
	Factory func() learn.Classifier
	// Eval is the fixed unlabeled sample over which future uncertainty is
	// measured.
	Eval [][]float64

	labeledX [][]float64
	labeledY []int
}

// NewExpectedErrorReduction constructs the strategy.
func NewExpectedErrorReduction(factory func() learn.Classifier, eval [][]float64) (*ExpectedErrorReduction, error) {
	if factory == nil {
		return nil, fmt.Errorf("al: expected-error-reduction needs a classifier factory")
	}
	if len(eval) == 0 {
		return nil, fmt.Errorf("al: expected-error-reduction needs a non-empty evaluation sample")
	}
	return &ExpectedErrorReduction{Factory: factory, Eval: eval}, nil
}

// Name implements Scorer.
func (*ExpectedErrorReduction) Name() string { return "expected-error-reduction" }

// SetLabeled implements LabeledAware; the engine calls it after retraining.
func (e *ExpectedErrorReduction) SetLabeled(X [][]float64, y []int) error {
	if len(X) != len(y) {
		return fmt.Errorf("al: labeled set size mismatch: %d vs %d", len(X), len(y))
	}
	e.labeledX = X
	e.labeledY = y
	return nil
}

// Score implements Scorer.
func (e *ExpectedErrorReduction) Score(m learn.Classifier, x []float64) (float64, error) {
	if len(e.labeledX) == 0 {
		return 0, fmt.Errorf("al: expected-error-reduction requires SetLabeled before scoring")
	}
	p, err := m.PosteriorPositive(x)
	if err != nil {
		return 0, err
	}
	var expected float64
	for _, hyp := range []struct {
		label  int
		weight float64
	}{
		{learn.ClassNegative, 1 - p},
		{learn.ClassPositive, p},
	} {
		if hyp.weight == 0 {
			continue
		}
		future, err := e.futureUncertainty(x, hyp.label)
		if err != nil {
			return 0, err
		}
		expected += hyp.weight * future
	}
	return -expected, nil
}

// futureUncertainty trains a lookahead model with the hypothetical label and
// sums its least-confidence uncertainty over the evaluation sample.
func (e *ExpectedErrorReduction) futureUncertainty(x []float64, label int) (float64, error) {
	X := make([][]float64, 0, len(e.labeledX)+1)
	y := make([]int, 0, len(e.labeledY)+1)
	X = append(X, e.labeledX...)
	y = append(y, e.labeledY...)
	X = append(X, x)
	y = append(y, label)

	c := e.Factory()
	if err := c.Fit(X, y); err != nil {
		return 0, fmt.Errorf("al: lookahead fit: %w", err)
	}
	var sum float64
	for _, u := range e.Eval {
		v, err := learn.Uncertainty(c, u)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum, nil
}
