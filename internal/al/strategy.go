// Package al implements active-learning query strategies (§2.1 of the
// paper): uncertainty sampling in its least-confidence, margin, and entropy
// variants, random sampling, query-by-committee (Seung et al. 1992), and an
// expected-error-reduction strategy (Zhang et al. 2017). The IDE engine
// selects, each iteration, the unlabeled candidate with the highest strategy
// score (Eq. 2: x* = argmax_x u(x)).
package al

import (
	"fmt"
	"math"

	"github.com/uei-db/uei/internal/learn"
)

// Scorer scores a single unlabeled candidate; higher means more informative.
// Scoring one candidate at a time lets the engine stream candidates from
// disk (the full-scan baseline) without materializing the pool.
type Scorer interface {
	// Name identifies the strategy in reports and logs.
	Name() string
	// Score returns the informativeness of x under the current model.
	Score(m learn.Classifier, x []float64) (float64, error)
}

// LabeledAware is implemented by strategies that need the current labeled
// set (e.g. expected error reduction). The engine calls SetLabeled after
// every retraining.
type LabeledAware interface {
	SetLabeled(X [][]float64, y []int) error
}

// Candidate pairs an opaque id with a feature vector during selection.
type Candidate struct {
	ID uint64
	X  []float64
}

// Selection reports the winner of an argmax pass.
type Selection struct {
	Candidate Candidate
	Score     float64
	// Scanned is the number of candidates examined.
	Scanned int
}

// SelectArgmax streams candidates from next (which returns false when the
// pool is exhausted) and returns the highest-scoring one. Ties keep the
// earliest candidate so selection is deterministic for a deterministic
// stream. It returns an error when the pool is empty.
func SelectArgmax(s Scorer, m learn.Classifier, next func() (Candidate, bool)) (Selection, error) {
	best := Selection{Score: math.Inf(-1)}
	for {
		c, ok := next()
		if !ok {
			break
		}
		score, err := s.Score(m, c.X)
		if err != nil {
			return Selection{}, fmt.Errorf("al: scoring candidate %d: %w", c.ID, err)
		}
		best.Scanned++
		if score > best.Score {
			best.Score = score
			best.Candidate = c
		}
	}
	if best.Scanned == 0 {
		return Selection{}, fmt.Errorf("al: empty candidate pool")
	}
	return best, nil
}

// SelectFromSlice is SelectArgmax over an in-memory pool.
func SelectFromSlice(s Scorer, m learn.Classifier, pool []Candidate) (Selection, error) {
	i := 0
	return SelectArgmax(s, m, func() (Candidate, bool) {
		if i >= len(pool) {
			return Candidate{}, false
		}
		c := pool[i]
		i++
		return c, true
	})
}
