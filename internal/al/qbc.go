package al

import (
	"fmt"

	"github.com/uei-db/uei/internal/learn"
)

// QueryByCommittee scores candidates by the disagreement among the members
// of a bootstrap committee (reference [21]). The model passed to Score must
// be a *learn.Committee; the IDE engine arranges this by constructing the
// session with a committee estimator when this strategy is chosen.
type QueryByCommittee struct {
	// SoftVote, when set, scores by the entropy of the mean posterior
	// instead of the hard vote-disagreement fraction, giving a smoother
	// ranking for small committees.
	SoftVote bool
}

// Name implements Scorer.
func (q QueryByCommittee) Name() string {
	if q.SoftVote {
		return "qbc-soft"
	}
	return "qbc"
}

// Score implements Scorer.
func (q QueryByCommittee) Score(m learn.Classifier, x []float64) (float64, error) {
	com, ok := m.(*learn.Committee)
	if !ok {
		return 0, fmt.Errorf("al: query-by-committee requires a committee model, got %T", m)
	}
	if q.SoftVote {
		p, err := com.PosteriorPositive(x)
		if err != nil {
			return 0, err
		}
		return binaryEntropy(p), nil
	}
	return com.VoteDisagreement(x)
}
