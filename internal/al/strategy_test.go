package al

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/uei-db/uei/internal/learn"
)

// fitKNN returns a DWKNN trained on a 1-D set with negatives at 0 and
// positives at 1, putting the decision boundary at 0.5.
func fitKNN(t *testing.T) *learn.DWKNN {
	t.Helper()
	c := learn.NewDWKNN(2, []float64{1})
	X := [][]float64{{0}, {0.1}, {0.9}, {1}}
	y := []int{0, 0, 1, 1}
	if err := c.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLeastConfidencePrefersBoundary(t *testing.T) {
	m := fitKNN(t)
	s := LeastConfidence{}
	boundary, err := s.Score(m, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	far, err := s.Score(m, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if boundary <= far {
		t.Errorf("boundary score %g should exceed far score %g", boundary, far)
	}
	if s.Name() != "least-confidence" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestMarginAndEntropyAgreeWithLC(t *testing.T) {
	// For binary models, all three uncertainty variants must agree on the
	// ranking of candidates.
	m := fitKNN(t)
	xs := [][]float64{{0}, {0.3}, {0.5}, {0.8}, {1}}
	score := func(s Scorer) []float64 {
		out := make([]float64, len(xs))
		for i, x := range xs {
			v, err := s.Score(m, x)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = v
		}
		return out
	}
	lc := score(LeastConfidence{})
	mg := score(Margin{})
	en := score(Entropy{})
	for i := range xs {
		for j := range xs {
			if (lc[i] < lc[j]) != (mg[i] < mg[j]) && lc[i] != lc[j] {
				t.Errorf("margin ranking disagrees with LC at %d,%d", i, j)
			}
			if (lc[i] < lc[j]) != (en[i] < en[j]) && lc[i] != lc[j] {
				t.Errorf("entropy ranking disagrees with LC at %d,%d", i, j)
			}
		}
	}
	if (Margin{}).Name() != "margin" || (Entropy{}).Name() != "entropy" {
		t.Error("names wrong")
	}
}

func TestSelectArgmaxPicksBoundaryCandidate(t *testing.T) {
	m := fitKNN(t)
	pool := []Candidate{
		{ID: 1, X: []float64{0}},
		{ID: 2, X: []float64{0.5}},
		{ID: 3, X: []float64{1}},
	}
	sel, err := SelectFromSlice(LeastConfidence{}, m, pool)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Candidate.ID != 2 {
		t.Errorf("selected %d, want 2", sel.Candidate.ID)
	}
	if sel.Scanned != 3 {
		t.Errorf("scanned %d, want 3", sel.Scanned)
	}
}

func TestSelectArgmaxEmptyPool(t *testing.T) {
	m := fitKNN(t)
	if _, err := SelectFromSlice(LeastConfidence{}, m, nil); err == nil {
		t.Error("empty pool should fail")
	}
}

func TestSelectArgmaxDeterministicTies(t *testing.T) {
	m := fitKNN(t)
	pool := []Candidate{
		{ID: 7, X: []float64{0.5}},
		{ID: 8, X: []float64{0.5}},
	}
	for trial := 0; trial < 5; trial++ {
		sel, err := SelectFromSlice(LeastConfidence{}, m, pool)
		if err != nil {
			t.Fatal(err)
		}
		if sel.Candidate.ID != 7 {
			t.Fatalf("tie must keep the first candidate, got %d", sel.Candidate.ID)
		}
	}
}

func TestRandomIsUniformish(t *testing.T) {
	m := fitKNN(t)
	r := NewRandom(3)
	counts := map[uint64]int{}
	pool := []Candidate{
		{ID: 0, X: []float64{0}},
		{ID: 1, X: []float64{0.5}},
		{ID: 2, X: []float64{1}},
	}
	for i := 0; i < 900; i++ {
		sel, err := SelectFromSlice(r, m, pool)
		if err != nil {
			t.Fatal(err)
		}
		counts[sel.Candidate.ID]++
	}
	for id, n := range counts {
		if n < 200 || n > 400 {
			t.Errorf("candidate %d selected %d/900 times; not uniform", id, n)
		}
	}
	if r.Name() != "random" {
		t.Error("name wrong")
	}
}

func TestQBCRequiresCommittee(t *testing.T) {
	m := fitKNN(t)
	if _, err := (QueryByCommittee{}).Score(m, []float64{0}); err == nil {
		t.Error("QBC with a non-committee model should fail")
	}
}

func TestQBCScoresDisagreement(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var X [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		v := rng.Float64()
		X = append(X, []float64{v})
		if v > 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	com, err := learn.NewCommittee(7, 5, func(i int) learn.Classifier {
		return learn.NewDWKNN(3, []float64{1})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := com.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	hard := QueryByCommittee{}
	soft := QueryByCommittee{SoftVote: true}
	for _, s := range []Scorer{hard, soft} {
		db, err := s.Score(com, []float64{0.5})
		if err != nil {
			t.Fatal(err)
		}
		df, err := s.Score(com, []float64{0.05})
		if err != nil {
			t.Fatal(err)
		}
		if db < df {
			t.Errorf("%s: boundary disagreement %g below far disagreement %g", s.Name(), db, df)
		}
	}
	if hard.Name() != "qbc" || soft.Name() != "qbc-soft" {
		t.Error("names wrong")
	}
}

func TestEERValidation(t *testing.T) {
	if _, err := NewExpectedErrorReduction(nil, [][]float64{{0}}); err == nil {
		t.Error("nil factory should fail")
	}
	if _, err := NewExpectedErrorReduction(func() learn.Classifier { return learn.NewGaussianNB() }, nil); err == nil {
		t.Error("empty eval should fail")
	}
	e, err := NewExpectedErrorReduction(func() learn.Classifier { return learn.NewDWKNN(3, []float64{1}) }, [][]float64{{0.2}, {0.8}})
	if err != nil {
		t.Fatal(err)
	}
	m := fitKNN(t)
	if _, err := e.Score(m, []float64{0.5}); err == nil {
		t.Error("scoring before SetLabeled should fail")
	}
	if err := e.SetLabeled([][]float64{{0}}, []int{0, 1}); err == nil {
		t.Error("mismatched SetLabeled should fail")
	}
}

func TestEERPrefersInformativeCandidate(t *testing.T) {
	// Labeled: negatives at 0, 0.1; positives at 0.9, 1. A candidate at the
	// boundary (0.5) reduces future uncertainty more than a redundant
	// candidate at 0.01.
	labeledX := [][]float64{{0}, {0.1}, {0.9}, {1}}
	labeledY := []int{0, 0, 1, 1}
	eval := [][]float64{{0.2}, {0.4}, {0.5}, {0.6}, {0.8}}
	e, err := NewExpectedErrorReduction(func() learn.Classifier {
		return learn.NewDWKNN(3, []float64{1})
	}, eval)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetLabeled(labeledX, labeledY); err != nil {
		t.Fatal(err)
	}
	m := fitKNN(t)
	sBoundary, err := e.Score(m, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	sRedundant, err := e.Score(m, []float64{0.01})
	if err != nil {
		t.Fatal(err)
	}
	if sBoundary <= sRedundant {
		t.Errorf("boundary score %g should beat redundant score %g", sBoundary, sRedundant)
	}
	if e.Name() != "expected-error-reduction" {
		t.Error("name wrong")
	}
}

func TestQuickScoresFinite(t *testing.T) {
	m := fitKNN(t)
	scorers := []Scorer{LeastConfidence{}, Margin{}, Entropy{}, NewRandom(1)}
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true // skip degenerate inputs
		}
		for _, s := range scorers {
			got, err := s.Score(m, []float64{v})
			if err != nil || math.IsNaN(got) || math.IsInf(got, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
