package al

import (
	"context"
	"math"

	"github.com/uei-db/uei/internal/kernel"
	"github.com/uei-db/uei/internal/learn"
)

// BatchScorer is a Scorer with a vectorized path over an in-memory
// candidate matrix. The engine uses it when the pool is resident (the UEI
// scheme keeps it in the cache anyway) to score all candidates with one
// batched, parallel posterior sweep instead of one model call per row.
// BatchScore must produce exactly the scores Score would, slot for slot.
type BatchScorer interface {
	Scorer
	// BatchScore fills out[i] with Score(m, X[i]) using up to workers
	// goroutines; ctx cancels mid-sweep.
	BatchScore(ctx context.Context, m learn.Classifier, X [][]float64, out []float64, workers int) error
}

// blockSweepMin is the candidate count above which the batch sweep packs
// the matrix into a column block for the kernel scoring path: below it
// the pack copy would rival the model work it saves.
const blockSweepMin = 256

// batchPosteriors runs the shared posterior sweep behind the uncertainty
// variants' BatchScore implementations. Models with a columnar path score
// through a packed block (bit-identical to the row path); everything else
// takes the row sweep.
func batchPosteriors(ctx context.Context, m learn.Classifier, X [][]float64, out []float64, workers int) error {
	if _, ok := learn.AsBlockClassifier(m); ok && len(X) >= blockSweepMin {
		return learn.BlockPosteriors(ctx, m, kernel.Pack(X), out, workers)
	}
	return learn.Posteriors(ctx, m, X, out, workers)
}

// LeastConfidence is Eq. (1) of the paper, u(x) = 1 - p(ŷ|x): the
// uncertainty-sampling variant UEI is built around. For a binary model the
// score equals min(p, 1-p) and is maximized at p = 0.5.
type LeastConfidence struct{}

// Name implements Scorer.
func (LeastConfidence) Name() string { return "least-confidence" }

// Score implements Scorer.
func (LeastConfidence) Score(m learn.Classifier, x []float64) (float64, error) {
	return learn.Uncertainty(m, x)
}

// BatchScore implements BatchScorer.
func (LeastConfidence) BatchScore(ctx context.Context, m learn.Classifier, X [][]float64, out []float64, workers int) error {
	if err := batchPosteriors(ctx, m, X, out, workers); err != nil {
		return err
	}
	for i, p := range out {
		if p > 0.5 {
			out[i] = 1 - p
		}
	}
	return nil
}

// Margin scores by the (negated) margin between the two class posteriors:
// 1 - |p(+|x) - p(-|x)|. For binary classifiers it ranks candidates exactly
// like least confidence but on a different scale; it is provided for parity
// with the uncertainty-sampling literature surveyed in [20].
type Margin struct{}

// Name implements Scorer.
func (Margin) Name() string { return "margin" }

// Score implements Scorer.
func (Margin) Score(m learn.Classifier, x []float64) (float64, error) {
	p, err := m.PosteriorPositive(x)
	if err != nil {
		return 0, err
	}
	return 1 - math.Abs(2*p-1), nil
}

// BatchScore implements BatchScorer.
func (Margin) BatchScore(ctx context.Context, m learn.Classifier, X [][]float64, out []float64, workers int) error {
	if err := batchPosteriors(ctx, m, X, out, workers); err != nil {
		return err
	}
	for i, p := range out {
		out[i] = 1 - math.Abs(2*p-1)
	}
	return nil
}

// Entropy scores by the Shannon entropy of the posterior distribution,
// H(p) = -p log p - (1-p) log (1-p), in nats.
type Entropy struct{}

// Name implements Scorer.
func (Entropy) Name() string { return "entropy" }

// Score implements Scorer.
func (Entropy) Score(m learn.Classifier, x []float64) (float64, error) {
	p, err := m.PosteriorPositive(x)
	if err != nil {
		return 0, err
	}
	return binaryEntropy(p), nil
}

// BatchScore implements BatchScorer.
func (Entropy) BatchScore(ctx context.Context, m learn.Classifier, X [][]float64, out []float64, workers int) error {
	if err := batchPosteriors(ctx, m, X, out, workers); err != nil {
		return err
	}
	for i, p := range out {
		out[i] = binaryEntropy(p)
	}
	return nil
}

func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log(p) - (1-p)*math.Log(1-p)
}
