package al

import (
	"math/rand"

	"github.com/uei-db/uei/internal/learn"
)

// Random assigns every candidate an independent uniform score, making the
// argmax a uniform draw from the pool. It is the passive-learning baseline
// against which the informed strategies are ablated.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a Random strategy seeded for reproducibility.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Scorer.
func (*Random) Name() string { return "random" }

// Score implements Scorer. The model is ignored by design.
func (r *Random) Score(_ learn.Classifier, _ []float64) (float64, error) {
	return r.rng.Float64(), nil
}
