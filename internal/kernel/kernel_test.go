package kernel

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randPoints(rng *rand.Rand, n, dims int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dims)
		for d := range p {
			p[d] = rng.NormFloat64() * 10
		}
		pts[i] = p
	}
	return pts
}

func TestPackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 8, 9, 100} {
		pts := randPoints(rng, n, 3)
		b := Pack(pts)
		if b.N != n || (n > 0 && b.Dims != 3) {
			t.Fatalf("n=%d: got N=%d Dims=%d", n, b.N, b.Dims)
		}
		if b.Stride%blockAlign != 0 || b.Stride < n {
			t.Fatalf("n=%d: bad stride %d", n, b.Stride)
		}
		row := make([]float64, 3)
		for i, p := range pts {
			got := b.Row(i, row)
			for d := range p {
				if math.Float64bits(got[d]) != math.Float64bits(p[d]) {
					t.Fatalf("row %d dim %d: got %v want %v", i, d, got[d], p[d])
				}
				if math.Float64bits(b.Col(d)[i]) != math.Float64bits(p[d]) {
					t.Fatalf("col %d row %d mismatch", d, i)
				}
			}
		}
	}
}

// Each strip kernel must perform bit-identical arithmetic to its scalar
// reference loop.
func TestKernelsBitParity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 37 // odd: exercises the unroll tail
	col := make([]float64, n)
	for i := range col {
		col[i] = rng.NormFloat64() * 5
	}

	t.Run("ScaleInto", func(t *testing.T) {
		scale := 0.37
		dst := make([]float64, n)
		ScaleInto(dst, col, scale)
		for i := range col {
			if math.Float64bits(dst[i]) != math.Float64bits(col[i]/scale) {
				t.Fatalf("i=%d", i)
			}
		}
	})
	t.Run("AddSquaredDiff", func(t *testing.T) {
		v := 1.234567
		dst := make([]float64, n)
		want := make([]float64, n)
		for i := range dst {
			dst[i] = col[i] * 0.1
			want[i] = dst[i]
		}
		AddSquaredDiff(dst, col, v)
		for i := range want {
			d := v - col[i]
			want[i] += d * d
			if math.Float64bits(dst[i]) != math.Float64bits(want[i]) {
				t.Fatalf("i=%d", i)
			}
		}
	})
	t.Run("AxpyStandardized", func(t *testing.T) {
		w, mean, std := -0.7, 2.5, 1.3
		dst := make([]float64, n)
		want := make([]float64, n)
		AxpyStandardized(dst, col, w, mean, std)
		for i := range want {
			want[i] += w * (col[i] - mean) / std
			if math.Float64bits(dst[i]) != math.Float64bits(want[i]) {
				t.Fatalf("i=%d", i)
			}
		}
	})
	t.Run("AddGaussianLL", func(t *testing.T) {
		variance := 0.81
		mean := -1.5
		logTerm := -0.5 * math.Log(2*math.Pi*variance)
		twoVar := 2 * variance
		dst := make([]float64, n)
		want := make([]float64, n)
		AddGaussianLL(dst, col, mean, logTerm, twoVar)
		for i := range want {
			d := col[i] - mean
			want[i] += -0.5*math.Log(2*math.Pi*variance) - d*d/(2*variance)
			if math.Float64bits(dst[i]) != math.Float64bits(want[i]) {
				t.Fatalf("i=%d", i)
			}
		}
	})
}

// SelectKMin must return exactly the prefix a full sort by (value, index)
// would — including under heavy ties (the all-equidistant case).
func TestSelectKMinMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		rows := 1 + rng.Intn(60)
		k := 1 + rng.Intn(rows+3) // sometimes k > rows
		stride := 1 + rng.Intn(4)
		offset := rng.Intn(stride)
		d2 := make([]float64, offset+rows*stride+3)
		for i := range d2 {
			// Small integer values force many exact ties.
			d2[i] = float64(rng.Intn(5))
		}
		ref := make([]Neighbor, rows)
		for r := 0; r < rows; r++ {
			ref[r] = Neighbor{Idx: r, D2: d2[offset+r*stride]}
		}
		sort.SliceStable(ref, func(i, j int) bool {
			if ref[i].D2 != ref[j].D2 {
				return ref[i].D2 < ref[j].D2
			}
			return ref[i].Idx < ref[j].Idx
		})
		kk := k
		if kk > rows {
			kk = rows
		}
		got := SelectKMin(d2, offset, stride, rows, k, make([]Neighbor, 0, kk))
		if len(got) != kk {
			t.Fatalf("trial %d: got %d want %d", trial, len(got), kk)
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("trial %d: pos %d got %+v want %+v", trial, i, got[i], ref[i])
			}
		}
	}
}
