// Package kernel holds the columnar scoring primitives: a packed
// structure-of-arrays block of float64 points plus allocation-free batched
// float kernels over its columns. The package is a leaf — it knows nothing
// about classifiers, grids, or shards — so every layer of the scoring
// stack (learn models, the flat index, per-shard backends) can share one
// layout.
//
// Bit-parity contract: every kernel in this package performs exactly the
// float64 operations the corresponding scalar row loop performs, per
// element, in the same order — columnar layout changes which point the CPU
// visits next, never the expression tree evaluated for a given point. The
// learn package's parity tests assert this with math.Float64bits.
package kernel

// blockAlign is the column stride alignment in float64 words. 8 words =
// 64 bytes = one cache line, so every column starts cache-line aligned
// relative to the backing array and unrolled strips never split a line.
const blockAlign = 8

// Block is an immutable columnar copy of n points in dims dimensions:
// column d occupies Data[d*Stride : d*Stride+N]. It is packed once (at
// index open, view creation, or backend construction) and shared read-only
// by every scoring goroutine; under live ingest the grid geometry — and
// therefore the block — is epoch-invariant until the layout itself is
// rebuilt.
type Block struct {
	// N is the number of points.
	N int
	// Dims is the dimensionality.
	Dims int
	// Stride is the column stride in float64 words: N rounded up to a
	// multiple of blockAlign. The padding words at each column tail are
	// zero and never read.
	Stride int
	// Data is the flat backing array, len Dims*Stride.
	Data []float64
}

// Pack copies points (row layout, all rows of length dims) into a new
// columnar block. An empty point set yields a block with N == 0.
func Pack(points [][]float64) *Block {
	n := len(points)
	dims := 0
	if n > 0 {
		dims = len(points[0])
	}
	stride := (n + blockAlign - 1) / blockAlign * blockAlign
	b := &Block{N: n, Dims: dims, Stride: stride, Data: make([]float64, dims*stride)}
	for d := 0; d < dims; d++ {
		col := b.Data[d*stride : d*stride+n]
		for i, p := range points {
			col[i] = p[d]
		}
	}
	return b
}

// Col returns column d, length N.
func (b *Block) Col(d int) []float64 {
	return b.Data[d*b.Stride : d*b.Stride+b.N]
}

// Row reconstructs point i into out (len >= Dims) and returns out[:Dims].
// It is the row-order escape hatch for classifiers without a block path.
func (b *Block) Row(i int, out []float64) []float64 {
	out = out[:b.Dims]
	for d := range out {
		out[d] = b.Data[d*b.Stride+i]
	}
	return out
}
