package kernel

// The batched kernels below are plain strided float64 loops, unrolled by 4
// where each element's update is independent (unrolling then only reorders
// WHICH element is touched next, never the operations applied to one
// element — the bit-parity contract). None of them allocate; callers own
// and reuse every destination and scratch slice.

// ScaleInto writes dst[i] = src[i] / scale. Division — not a precomputed
// reciprocal multiply — because the scalar scoring paths divide, and
// x/s and x*(1/s) differ in the last ulp for general s.
func ScaleInto(dst, src []float64, scale float64) {
	_ = dst[len(src)-1]
	i := 0
	for ; i+4 <= len(src); i += 4 {
		dst[i] = src[i] / scale
		dst[i+1] = src[i+1] / scale
		dst[i+2] = src[i+2] / scale
		dst[i+3] = src[i+3] / scale
	}
	for ; i < len(src); i++ {
		dst[i] = src[i] / scale
	}
}

// AddSquaredDiff accumulates dst[i] += (v - q[i])² — one dimension's
// contribution to a scaled-L2 distance strip, v being the training row's
// coordinate and q the pre-scaled query column.
func AddSquaredDiff(dst, q []float64, v float64) {
	_ = dst[len(q)-1]
	i := 0
	for ; i+4 <= len(q); i += 4 {
		d0 := v - q[i]
		d1 := v - q[i+1]
		d2 := v - q[i+2]
		d3 := v - q[i+3]
		dst[i] += d0 * d0
		dst[i+1] += d1 * d1
		dst[i+2] += d2 * d2
		dst[i+3] += d3 * d3
	}
	for ; i < len(q); i++ {
		d := v - q[i]
		dst[i] += d * d
	}
}

// AxpyStandardized accumulates dst[i] += w * (col[i] - mean) / std — one
// dimension of a standardized logistic dot-product. The multiply-then-
// divide order matches the scalar path exactly.
func AxpyStandardized(dst, col []float64, w, mean, std float64) {
	_ = dst[len(col)-1]
	i := 0
	for ; i+4 <= len(col); i += 4 {
		dst[i] += w * (col[i] - mean) / std
		dst[i+1] += w * (col[i+1] - mean) / std
		dst[i+2] += w * (col[i+2] - mean) / std
		dst[i+3] += w * (col[i+3] - mean) / std
	}
	for ; i < len(col); i++ {
		dst[i] += w * (col[i] - mean) / std
	}
}

// AddGaussianLL accumulates dst[i] += logTerm - d*d/twoVar with
// d = col[i] - mean — one dimension of a Gaussian log-likelihood, where
// the caller precomputed logTerm = -0.5*log(2π·var) and twoVar = 2·var
// (both pure functions of the variance, so precomputing them changes no
// bits; the per-element expression is the scalar path's verbatim).
func AddGaussianLL(dst, col []float64, mean, logTerm, twoVar float64) {
	_ = dst[len(col)-1]
	i := 0
	for ; i+4 <= len(col); i += 4 {
		d0 := col[i] - mean
		d1 := col[i+1] - mean
		d2 := col[i+2] - mean
		d3 := col[i+3] - mean
		dst[i] += logTerm - d0*d0/twoVar
		dst[i+1] += logTerm - d1*d1/twoVar
		dst[i+2] += logTerm - d2*d2/twoVar
		dst[i+3] += logTerm - d3*d3/twoVar
	}
	for ; i < len(col); i++ {
		d := col[i] - mean
		dst[i] += logTerm - d*d/twoVar
	}
}

// Neighbor is one candidate in a k-smallest selection: a value (squared
// distance) and the index it came from. Ordering is (D2, Idx) ascending —
// a strict total order, so partial selection returns exactly the prefix a
// full stable sort would.
type Neighbor struct {
	Idx int
	D2  float64
}

// Less reports whether (d2, idx) orders strictly before n.
func (n Neighbor) Less(d2 float64, idx int) bool {
	return d2 < n.D2 || (d2 == n.D2 && idx < n.Idx)
}

// SelectKMin scans d2[offset+r*stride] for r in [0, rows) and returns the
// k smallest (value, r) pairs ascending, built by bounded insertion into
// out[:0] (cap(out) must be >= min(k, rows); the returned slice aliases
// out). Because r ascends during the scan, value ties resolve to the
// smaller index with no extra bookkeeping: an equal later candidate never
// displaces an earlier one.
func SelectKMin(d2 []float64, offset, stride, rows, k int, out []Neighbor) []Neighbor {
	out = out[:0]
	for r := 0; r < rows; r++ {
		v := d2[offset+r*stride]
		if len(out) == k {
			if !out[k-1].Less(v, r) {
				continue
			}
			out = out[:k-1]
		}
		// Insert (v, r) keeping out ascending: shift entries the candidate
		// sorts before.
		j := len(out)
		out = append(out, Neighbor{})
		for j > 0 && out[j-1].Less(v, r) {
			out[j] = out[j-1]
			j--
		}
		out[j] = Neighbor{Idx: r, D2: v}
	}
	return out
}
