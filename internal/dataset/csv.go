package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WriteCSV writes the dataset with a header row of column names.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(d.Schema().Names()); err != nil {
		return fmt.Errorf("dataset: write csv header: %w", err)
	}
	rec := make([]string, d.Dims())
	var scanErr error
	d.Scan(func(id RowID, row []float64) bool {
		for i, v := range row {
			rec[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			scanErr = fmt.Errorf("dataset: write csv row %d: %w", id, err)
			return false
		}
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a dataset written by WriteCSV (or any numeric CSV with a
// header). Every field must parse as a float64.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv header: %w", err)
	}
	schema, err := NewSchema(append([]string(nil), header...)...)
	if err != nil {
		return nil, err
	}
	ds := New(schema, 0)
	row := make([]float64, schema.Dims())
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read csv line %d: %w", line, err)
		}
		if len(rec) != schema.Dims() {
			return nil, fmt.Errorf("dataset: csv line %d has %d fields, want %d", line, len(rec), schema.Dims())
		}
		for i, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv line %d field %q: %w", line, schema.Columns[i].Name, err)
			}
			row[i] = v
		}
		if _, err := ds.Append(row); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// WriteCSVFile writes the dataset to path, creating or truncating it.
func WriteCSVFile(path string, d *Dataset) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("dataset: close %s: %w", path, cerr)
		}
	}()
	return WriteCSV(f, d)
}

// ReadCSVFile reads a dataset from path.
func ReadCSVFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadCSV(f)
}
