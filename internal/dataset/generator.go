package dataset

import (
	"fmt"
	"math/rand"

	"github.com/uei-db/uei/internal/vec"
)

// SkyConfig controls the synthetic SDSS-like generator. The generator is the
// substitution documented in DESIGN.md §3 for the paper's 40 GB PhotoObjAll
// extract: it reproduces the five-attribute numeric schema and the clustered
// density structure that makes small high-density target regions exist, at a
// configurable scale.
type SkyConfig struct {
	// N is the number of tuples to generate.
	N int
	// Seed makes generation deterministic; runs with equal seeds produce
	// byte-identical datasets.
	Seed int64
	// Clusters is the number of Gaussian density clusters scattered through
	// the space. Zero selects the default of 12.
	Clusters int
	// ClusterFraction is the fraction of tuples drawn from clusters rather
	// than the uniform background. Zero selects the default of 0.35.
	ClusterFraction float64
	// ZipfS, when > 1, skews cluster popularity with a zipfian law of
	// exponent s: cluster k receives mass proportional to 1/(k+1)^s, so a
	// handful of clusters hold most of the clustered tuples — the hotspot
	// density structure skewed real-world workloads explore. Zero (and
	// values <= 1, which the zipf law does not define) keeps the uniform
	// cluster choice, byte-identical to prior releases for equal seeds.
	ZipfS float64
}

// skyRanges are the natural domains of the PhotoObjAll attributes used in
// the paper: pixel coordinates rowc/colc, sky coordinates ra/dec, and the
// integer-valued field number.
var skyRanges = [5][2]float64{
	{0, 2048}, // rowc
	{0, 2048}, // colc
	{0, 360},  // ra
	{-90, 90}, // dec
	{0, 1000}, // field
}

// GenerateSky produces a synthetic SDSS-like dataset. Roughly
// ClusterFraction of the tuples come from Gaussian clusters (making dense
// interesting regions) and the rest from a uniform background (making sparse
// space the explorer must rule out).
func GenerateSky(cfg SkyConfig) (*Dataset, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("dataset: GenerateSky needs N > 0, got %d", cfg.N)
	}
	clusters := cfg.Clusters
	if clusters == 0 {
		clusters = 12
	}
	if clusters < 0 {
		return nil, fmt.Errorf("dataset: negative cluster count %d", clusters)
	}
	frac := cfg.ClusterFraction
	if frac == 0 {
		frac = 0.35
	}
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("dataset: cluster fraction %g outside [0,1]", frac)
	}
	if cfg.ZipfS < 0 {
		return nil, fmt.Errorf("dataset: negative zipf exponent %g", cfg.ZipfS)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	// The zipf draw uses its own deterministic source so enabling skew
	// does not perturb the center/scale/background draws of the shared
	// rng: a skewed dataset differs from its uniform twin only in which
	// cluster each clustered tuple lands in.
	var zipf *rand.Zipf
	if cfg.ZipfS > 1 && clusters > 0 {
		zipf = rand.NewZipf(rand.New(rand.NewSource(cfg.Seed+1)), cfg.ZipfS, 1, uint64(clusters-1))
		if zipf == nil {
			return nil, fmt.Errorf("dataset: invalid zipf exponent %g", cfg.ZipfS)
		}
	}
	schema := SkySchema()
	k := schema.Dims()

	// Cluster centers and scales, drawn once.
	centers := make([][]float64, clusters)
	scales := make([][]float64, clusters)
	for c := range centers {
		centers[c] = make([]float64, k)
		scales[c] = make([]float64, k)
		for j := 0; j < k; j++ {
			lo, hi := skyRanges[j][0], skyRanges[j][1]
			span := hi - lo
			centers[c][j] = lo + rng.Float64()*span
			// Cluster std between 1% and 4% of the dimension span keeps
			// clusters compact enough that 0.1% regions are meaningful.
			scales[c][j] = span * (0.01 + 0.03*rng.Float64())
		}
	}

	ds := New(schema, cfg.N)
	row := make([]float64, k)
	for i := 0; i < cfg.N; i++ {
		if clusters > 0 && rng.Float64() < frac {
			c := rng.Intn(clusters)
			if zipf != nil {
				c = int(zipf.Uint64())
			}
			for j := 0; j < k; j++ {
				lo, hi := skyRanges[j][0], skyRanges[j][1]
				v := centers[c][j] + rng.NormFloat64()*scales[c][j]
				row[j] = clampf(v, lo, hi)
			}
		} else {
			for j := 0; j < k; j++ {
				lo, hi := skyRanges[j][0], skyRanges[j][1]
				row[j] = lo + rng.Float64()*(hi-lo)
			}
		}
		// "field" behaves like an integer attribute in SDSS.
		row[k-1] = float64(int(row[k-1]))
		if _, err := ds.Append(row); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// GenerateUniform produces n tuples uniformly distributed in the given box.
// It is used by tests and micro-benchmarks that want structure-free data.
func GenerateUniform(schema Schema, box vec.Box, n int, seed int64) (*Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: GenerateUniform needs n > 0, got %d", n)
	}
	if schema.Dims() != box.Dims() {
		return nil, fmt.Errorf("dataset: schema has %d dims, box has %d", schema.Dims(), box.Dims())
	}
	rng := rand.New(rand.NewSource(seed))
	ds := New(schema, n)
	row := make([]float64, schema.Dims())
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = box.Min[j] + rng.Float64()*(box.Max[j]-box.Min[j])
		}
		if _, err := ds.Append(row); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// SkyBounds returns the full domain box of the sky schema. Datasets produced
// by GenerateSky always lie inside it.
func SkyBounds() vec.Box {
	min := make([]float64, len(skyRanges))
	max := make([]float64, len(skyRanges))
	for i, r := range skyRanges {
		min[i], max[i] = r[0], r[1]
	}
	return vec.NewBox(min, max)
}

func clampf(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
