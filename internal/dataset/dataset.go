package dataset

import (
	"fmt"

	"github.com/uei-db/uei/internal/vec"
)

// RowID identifies a tuple within a Dataset. IDs are dense: 0..Len()-1.
type RowID uint32

// Dataset is an immutable-after-construction, row-major numeric table held
// in memory. It is the ground-truth substrate from which the on-disk stores
// (chunk store, DBMS heap file) are built and against which oracles and
// accuracy metrics are evaluated.
type Dataset struct {
	schema Schema
	vals   []float64 // row-major, len = n * dims
	n      int
}

// New creates an empty dataset with capacity hint n.
func New(schema Schema, capacityHint int) *Dataset {
	if capacityHint < 0 {
		capacityHint = 0
	}
	return &Dataset{
		schema: schema,
		vals:   make([]float64, 0, capacityHint*schema.Dims()),
	}
}

// Schema returns the dataset schema.
func (d *Dataset) Schema() Schema { return d.schema }

// Dims returns the number of attributes per tuple.
func (d *Dataset) Dims() int { return d.schema.Dims() }

// Len returns the number of tuples.
func (d *Dataset) Len() int { return d.n }

// Append adds one tuple. The row is copied.
func (d *Dataset) Append(row []float64) (RowID, error) {
	if len(row) != d.Dims() {
		return 0, fmt.Errorf("dataset: row has %d values, schema has %d columns", len(row), d.Dims())
	}
	d.vals = append(d.vals, row...)
	id := RowID(d.n)
	d.n++
	return id, nil
}

// Row returns a read-only view of tuple id. The returned slice aliases the
// dataset's storage and must not be modified or retained across appends.
func (d *Dataset) Row(id RowID) []float64 {
	i := int(id)
	if i < 0 || i >= d.n {
		panic(fmt.Sprintf("dataset: row %d out of range [0,%d)", i, d.n))
	}
	k := d.Dims()
	return d.vals[i*k : (i+1)*k : (i+1)*k]
}

// CopyRow returns an owned copy of tuple id.
func (d *Dataset) CopyRow(id RowID) []float64 {
	return vec.Clone(d.Row(id))
}

// At returns the value of attribute dim for tuple id.
func (d *Dataset) At(id RowID, dim int) float64 {
	if dim < 0 || dim >= d.Dims() {
		panic(fmt.Sprintf("dataset: dim %d out of range [0,%d)", dim, d.Dims()))
	}
	return d.Row(id)[dim]
}

// Bounds returns the tight axis-aligned bounding box of all tuples. It
// returns an error when the dataset is empty, since an empty set has no
// bounds.
func (d *Dataset) Bounds() (vec.Box, error) {
	if d.n == 0 {
		return vec.Box{}, fmt.Errorf("dataset: bounds of empty dataset")
	}
	k := d.Dims()
	min := vec.Clone(d.vals[:k])
	max := vec.Clone(d.vals[:k])
	for i := 1; i < d.n; i++ {
		row := d.vals[i*k : (i+1)*k]
		for j, v := range row {
			if v < min[j] {
				min[j] = v
			}
			if v > max[j] {
				max[j] = v
			}
		}
	}
	return vec.NewBox(min, max), nil
}

// Scan calls fn for every tuple in id order, stopping early if fn returns
// false. The row slice passed to fn aliases internal storage.
func (d *Dataset) Scan(fn func(id RowID, row []float64) bool) {
	k := d.Dims()
	for i := 0; i < d.n; i++ {
		if !fn(RowID(i), d.vals[i*k:(i+1)*k]) {
			return
		}
	}
}

// Select returns the IDs of all tuples inside the box.
func (d *Dataset) Select(box vec.Box) []RowID {
	var out []RowID
	d.Scan(func(id RowID, row []float64) bool {
		if box.Contains(row) {
			out = append(out, id)
		}
		return true
	})
	return out
}

// CountIn returns the number of tuples inside the box.
func (d *Dataset) CountIn(box vec.Box) int {
	n := 0
	d.Scan(func(_ RowID, row []float64) bool {
		if box.Contains(row) {
			n++
		}
		return true
	})
	return n
}

// SizeBytes returns the raw payload size of the dataset (8 bytes per value),
// the quantity used to express memory budgets as a fraction of data size.
func (d *Dataset) SizeBytes() int64 {
	return int64(d.n) * int64(d.Dims()) * 8
}
