// Package dataset provides the tabular data substrate for UEI experiments:
// a numeric schema, an in-memory column-aware table, CSV import/export, and
// a deterministic synthetic generator that stands in for the Sloan Digital
// Sky Survey (SDSS) extract used in the paper's evaluation.
package dataset

import (
	"fmt"
	"strings"
)

// Column describes a single numeric attribute.
type Column struct {
	// Name is the attribute name, e.g. "rowc" or "ra".
	Name string
}

// Schema is an ordered set of numeric attributes. Every tuple in a Dataset
// carries exactly one float64 per column.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from column names. Names must be unique and
// non-empty.
func NewSchema(names ...string) (Schema, error) {
	if len(names) == 0 {
		return Schema{}, fmt.Errorf("dataset: schema needs at least one column")
	}
	seen := make(map[string]bool, len(names))
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		if n == "" {
			return Schema{}, fmt.Errorf("dataset: empty column name")
		}
		if seen[n] {
			return Schema{}, fmt.Errorf("dataset: duplicate column %q", n)
		}
		seen[n] = true
		cols = append(cols, Column{Name: n})
	}
	return Schema{Columns: cols}, nil
}

// MustSchema is NewSchema that panics on error; intended for literals in
// tests and examples.
func MustSchema(names ...string) Schema {
	s, err := NewSchema(names...)
	if err != nil {
		panic(err)
	}
	return s
}

// Dims returns the number of columns.
func (s Schema) Dims() int { return len(s.Columns) }

// ColumnIndex returns the position of the named column, or -1 if absent.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// Equal reports whether two schemas have identical columns in identical
// order.
func (s Schema) Equal(o Schema) bool {
	if len(s.Columns) != len(o.Columns) {
		return false
	}
	for i := range s.Columns {
		if s.Columns[i] != o.Columns[i] {
			return false
		}
	}
	return true
}

// String renders the schema as a comma-separated column list.
func (s Schema) String() string {
	return strings.Join(s.Names(), ",")
}

// SkySchema returns the five-attribute schema of the paper's SDSS
// PhotoObjAll extract: rowc, colc, ra, dec, field (§4.1).
func SkySchema() Schema {
	return MustSchema("rowc", "colc", "ra", "dec", "field")
}
