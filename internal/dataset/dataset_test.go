package dataset

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"github.com/uei-db/uei/internal/vec"
)

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema should fail")
	}
	if _, err := NewSchema("a", "a"); err == nil {
		t.Error("duplicate column should fail")
	}
	if _, err := NewSchema("a", ""); err == nil {
		t.Error("empty name should fail")
	}
	s, err := NewSchema("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if s.Dims() != 2 || s.ColumnIndex("y") != 1 || s.ColumnIndex("z") != -1 {
		t.Errorf("schema accessors wrong: %+v", s)
	}
	if s.String() != "x,y" {
		t.Errorf("String = %q", s.String())
	}
}

func TestSchemaEqual(t *testing.T) {
	a := MustSchema("x", "y")
	b := MustSchema("x", "y")
	c := MustSchema("y", "x")
	if !a.Equal(b) || a.Equal(c) || a.Equal(MustSchema("x")) {
		t.Error("schema equality broken")
	}
}

func TestSkySchema(t *testing.T) {
	s := SkySchema()
	want := []string{"rowc", "colc", "ra", "dec", "field"}
	got := s.Names()
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("column %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAppendAndAccess(t *testing.T) {
	ds := New(MustSchema("a", "b"), 4)
	id0, err := ds.Append([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	id1, _ := ds.Append([]float64{3, 4})
	if id0 != 0 || id1 != 1 || ds.Len() != 2 {
		t.Fatalf("ids %d %d len %d", id0, id1, ds.Len())
	}
	if ds.At(1, 0) != 3 || ds.At(0, 1) != 2 {
		t.Error("At wrong")
	}
	if _, err := ds.Append([]float64{1}); err == nil {
		t.Error("short row should fail")
	}
	r := ds.CopyRow(0)
	r[0] = 99
	if ds.At(0, 0) != 1 {
		t.Error("CopyRow must not alias")
	}
}

func TestBoundsAndSelect(t *testing.T) {
	ds := New(MustSchema("a", "b"), 0)
	if _, err := ds.Bounds(); err == nil {
		t.Error("empty bounds should fail")
	}
	pts := [][]float64{{0, 5}, {2, 1}, {1, 3}}
	for _, p := range pts {
		ds.Append(p)
	}
	b, err := ds.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(b.Min, []float64{0, 1}) || !vec.Equal(b.Max, []float64{2, 5}) {
		t.Errorf("bounds = %+v", b)
	}
	box := vec.NewBox([]float64{0.5, 0}, []float64{2, 3.5})
	ids := ds.Select(box)
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Errorf("Select = %v", ids)
	}
	if ds.CountIn(box) != 2 {
		t.Error("CountIn disagrees with Select")
	}
}

func TestScanEarlyStop(t *testing.T) {
	ds := New(MustSchema("a"), 0)
	for i := 0; i < 10; i++ {
		ds.Append([]float64{float64(i)})
	}
	n := 0
	ds.Scan(func(id RowID, row []float64) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("scan visited %d rows, want 3", n)
	}
}

func TestGenerateSkyDeterminism(t *testing.T) {
	a, err := GenerateSky(SkyConfig{N: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSky(SkyConfig{N: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 500 {
		t.Fatalf("len %d", a.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if !vec.Equal(a.Row(RowID(i)), b.Row(RowID(i))) {
			t.Fatalf("row %d differs between equal seeds", i)
		}
	}
	c, err := GenerateSky(SkyConfig{N: 500, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.Len() && same; i++ {
		same = vec.Equal(a.Row(RowID(i)), c.Row(RowID(i)))
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestGenerateSkyInBounds(t *testing.T) {
	ds, err := GenerateSky(SkyConfig{N: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	domain := SkyBounds()
	ds.Scan(func(id RowID, row []float64) bool {
		if !domain.Contains(row) {
			t.Fatalf("row %d = %v outside domain", id, row)
		}
		return true
	})
	// field must be integer-valued
	ds.Scan(func(id RowID, row []float64) bool {
		f := row[4]
		if f != float64(int(f)) {
			t.Fatalf("field not integral: %g", f)
		}
		return true
	})
}

func TestGenerateSkyValidation(t *testing.T) {
	if _, err := GenerateSky(SkyConfig{N: 0}); err == nil {
		t.Error("N=0 should fail")
	}
	if _, err := GenerateSky(SkyConfig{N: 10, ClusterFraction: 2}); err == nil {
		t.Error("fraction>1 should fail")
	}
	if _, err := GenerateSky(SkyConfig{N: 10, Clusters: -1}); err == nil {
		t.Error("negative clusters should fail")
	}
}

func TestGenerateSkyHasClusterStructure(t *testing.T) {
	// With clustering on, some small boxes should be far denser than the
	// uniform expectation. Probe boxes centered on actual data points.
	ds, err := GenerateSky(SkyConfig{N: 20000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	domain := SkyBounds()
	widths := domain.Widths()
	best := 0
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		center := ds.Row(RowID(rng.Intn(ds.Len())))
		min := make([]float64, 5)
		max := make([]float64, 5)
		for j := 0; j < 5; j++ {
			half := widths[j] * 0.05
			min[j] = center[j] - half
			max[j] = center[j] + half
		}
		n := ds.CountIn(vec.NewBox(min, max))
		if n > best {
			best = n
		}
	}
	// Uniform expectation for a 0.1^5 volume box is 20000*1e-5 = 0.2 tuples.
	if best < 20 {
		t.Errorf("densest probed box holds %d tuples; expected clustering to exceed 20", best)
	}
}

func TestGenerateUniform(t *testing.T) {
	box := vec.NewBox([]float64{-1, 0}, []float64{1, 10})
	ds, err := GenerateUniform(MustSchema("x", "y"), box, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	ds.Scan(func(id RowID, row []float64) bool {
		if !box.Contains(row) {
			t.Fatalf("row %v escaped box", row)
		}
		return true
	})
	if _, err := GenerateUniform(MustSchema("x"), box, 10, 0); err == nil {
		t.Error("dims mismatch should fail")
	}
	if _, err := GenerateUniform(MustSchema("x", "y"), box, 0, 0); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds, err := GenerateSky(SkyConfig{N: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Schema().Equal(ds.Schema()) {
		t.Fatalf("schema mismatch: %v vs %v", back.Schema(), ds.Schema())
	}
	if back.Len() != ds.Len() {
		t.Fatalf("len %d vs %d", back.Len(), ds.Len())
	}
	for i := 0; i < ds.Len(); i++ {
		if !vec.Equal(back.Row(RowID(i)), ds.Row(RowID(i))) {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sky.csv")
	ds, _ := GenerateSky(SkyConfig{N: 50, Seed: 1})
	if err := WriteCSVFile(path, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 50 {
		t.Fatalf("len %d", back.Len())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                    // no header
		"a,b\n1\n",            // short row
		"a,b\n1,notanumber\n", // bad float
		"a,a\n1,2\n",          // duplicate header
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error for %q", i, in)
		}
	}
}

func TestQuickCSVRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		ds := New(MustSchema("p", "q", "r"), n)
		row := make([]float64, 3)
		for i := 0; i < n; i++ {
			for j := range row {
				row[j] = r.NormFloat64() * 1e6
			}
			ds.Append(row)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, ds); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil || back.Len() != n {
			return false
		}
		for i := 0; i < n; i++ {
			if !vec.Equal(back.Row(RowID(i)), ds.Row(RowID(i))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSizeBytes(t *testing.T) {
	ds := New(MustSchema("a", "b", "c"), 0)
	ds.Append([]float64{1, 2, 3})
	ds.Append([]float64{4, 5, 6})
	if got := ds.SizeBytes(); got != 48 {
		t.Errorf("SizeBytes = %d, want 48", got)
	}
}

func TestGenerateSkyZipf(t *testing.T) {
	base, err := GenerateSky(SkyConfig{N: 5000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	skew, err := GenerateSky(SkyConfig{N: 5000, Seed: 7, ZipfS: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	again, err := GenerateSky(SkyConfig{N: 5000, Seed: 7, ZipfS: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	if base.Len() != skew.Len() || skew.Len() != again.Len() {
		t.Fatalf("lengths differ: %d %d %d", base.Len(), skew.Len(), again.Len())
	}
	// Deterministic under a seed: the skewed generator reproduces itself.
	differsFromBase := false
	for i := 0; i < skew.Len(); i++ {
		a, b := skew.Row(RowID(i)), again.Row(RowID(i))
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("row %d dim %d: %g vs %g across identical seeds", i, j, a[j], b[j])
			}
		}
		c := base.Row(RowID(i))
		for j := range a {
			if a[j] != c[j] {
				differsFromBase = true
			}
		}
	}
	if !differsFromBase {
		t.Fatal("zipf skew produced a dataset identical to the uniform one")
	}
	if _, err := GenerateSky(SkyConfig{N: 10, Seed: 1, ZipfS: -1}); err == nil {
		t.Fatal("negative zipf exponent must be rejected")
	}
}
