package experiment

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/dbms"
	"github.com/uei-db/uei/internal/iothrottle"
	"github.com/uei-db/uei/internal/learn"
)

// Env is a prepared experiment environment: the synthetic dataset and both
// on-disk stores, built once and shared across runs and figures.
type Env struct {
	Cfg     Config
	DS      *dataset.Dataset
	Limiter *iothrottle.Limiter

	storeDir string
	tableDir string
	// budgetBytes is the resolved memory budget.
	budgetBytes int64
	// estimatorScales normalizes DWKNN distances by the data domain.
	estimatorScales []float64
}

// Setup generates the dataset (the SDSS substitute) and builds the UEI
// chunk store and DBMS heap file + B+ tree. Build I/O is unthrottled —
// initialization is once per dataset in both schemes — and the limiter is
// reset afterwards so exploration starts with a full bucket.
func Setup(cfg Config) (*Env, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	workDir := cfg.WorkDir
	if workDir == "" {
		dir, err := os.MkdirTemp("", "uei-experiment-")
		if err != nil {
			return nil, fmt.Errorf("experiment: temp dir: %w", err)
		}
		workDir = dir
	}

	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: cfg.N, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	env := &Env{
		Cfg:      cfg,
		DS:       ds,
		storeDir: filepath.Join(workDir, "ueistore"),
		tableDir: filepath.Join(workDir, "dbms"),
	}
	if cfg.IOBandwidthBytesPerSec > 0 {
		env.Limiter = iothrottle.New(cfg.IOBandwidthBytesPerSec)
	}

	if err := core.Build(env.storeDir, ds, core.BuildOptions{
		TargetChunkBytes: cfg.TargetChunkBytes,
		Shards:           cfg.Shards,
		SegmentsPerDim:   cfg.SegmentsPerDim,
	}); err != nil {
		return nil, err
	}
	table, err := dbms.CreateTable(env.tableDir, ds, 64, nil)
	if err != nil {
		return nil, err
	}
	heapBytes := table.SizeBytes()
	if err := table.Close(); err != nil {
		return nil, err
	}
	// Index the first attribute, as a MySQL deployment would for its
	// result-retrieval range predicates.
	bt, err := dbms.BuildIndex(env.tableDir, ds.Schema().Columns[0].Name, ds, 16, nil)
	if err != nil {
		return nil, err
	}
	if err := bt.Close(); err != nil {
		return nil, err
	}

	env.budgetBytes = int64(float64(heapBytes) * cfg.MemoryBudgetFraction)
	if env.budgetBytes < 16*dbms.PageSize {
		env.budgetBytes = 16 * dbms.PageSize
	}
	bounds, err := ds.Bounds()
	if err != nil {
		return nil, err
	}
	env.estimatorScales = bounds.Widths()
	env.Limiter.Reset()
	return env, nil
}

// BudgetBytes returns the resolved per-scheme memory budget.
func (e *Env) BudgetBytes() int64 { return e.budgetBytes }

// StoreDir returns the chunk-store directory.
func (e *Env) StoreDir() string { return e.storeDir }

// TableDir returns the DBMS directory.
func (e *Env) TableDir() string { return e.tableDir }

// OpenIndex opens a fresh UEI index handle for one run. The experiment
// harness measures the paper's serial per-iteration costs, so the worker
// pool stays at one unless the config raises it.
func (e *Env) OpenIndex(ctx context.Context, runSeed int64) (*core.Index, error) {
	workers := e.Cfg.Workers
	if workers == 0 {
		workers = 1
	}
	return core.Open(ctx, e.storeDir, core.Options{
		SegmentsPerDim:    e.Cfg.SegmentsPerDim,
		MemoryBudgetBytes: e.budgetBytes,
		LatencyThreshold:  e.Cfg.LatencyThreshold,
		EnablePrefetch:    e.Cfg.EnablePrefetch,
		Seed:              runSeed,
		Registry:          e.Cfg.Obs,
		Tracer:            e.Cfg.Trace,
		Workers:           workers,
		Limiter:           e.Limiter,
		BlockCacheBytes:   e.Cfg.BlockCacheBytes,
		Shards:            e.Cfg.Shards,
		Replication:       e.Cfg.Replication,
		HedgeDelay:        e.Cfg.HedgeDelay,
		ScoreKernel:       e.Cfg.ScoreKernel,
	})
}

// OpenTable opens a fresh DBMS handle whose buffer pool consumes the same
// memory budget the UEI scheme gets.
func (e *Env) OpenTable() (*dbms.Table, error) {
	frames := int(e.budgetBytes / dbms.PageSize)
	if frames < 2 {
		frames = 2
	}
	return dbms.OpenTable(e.tableDir, frames, e.Limiter)
}

// EstimatorFactory builds the Table 1 uncertainty estimator: DWKNN with
// domain-scaled distances.
func (e *Env) EstimatorFactory() func() learn.Classifier {
	scales := e.estimatorScales
	return func() learn.Classifier { return learn.NewDWKNN(7, scales) }
}
