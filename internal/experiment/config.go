// Package experiment is the harness that regenerates every table and
// figure of the paper's evaluation (§4): Table 1 (parameters), Figures 3-5
// (F-measure vs labeled examples for small/medium/large target regions,
// UEI vs DBMS), Figure 6 (per-iteration response time), plus the ablations
// over UEI's tuning knobs listed in DESIGN.md.
package experiment

import (
	"fmt"
	"time"

	"github.com/uei-db/uei/internal/obs"
	"github.com/uei-db/uei/internal/oracle"
)

// Config scales the evaluation. DefaultConfig is the quick mode used by
// `go test -bench` and CI; FullConfig approaches the paper's data:memory
// ratio on a workstation.
type Config struct {
	// N is the dataset cardinality (the paper used 10M tuples / 40 GB).
	N int
	// Seed drives data generation, region synthesis, sampling, and every
	// seeded component; run r uses Seed+r.
	Seed int64
	// Runs is the number of complete runs averaged per result (Table 1:
	// 10).
	Runs int
	// MaxLabels is the per-run user-effort budget (x-axis extent of
	// Figures 3-5).
	MaxLabels int
	// BatchSize is B of Algorithm 1.
	BatchSize int
	// SegmentsPerDim controls the symbolic index point count
	// (SegmentsPerDim^5; Table 1's 3125 points = 5).
	SegmentsPerDim int
	// TargetChunkBytes is the chunk size (Table 1: 470 KB; quick mode uses
	// smaller chunks so multi-chunk paths are exercised at small N).
	TargetChunkBytes int
	// MemoryBudgetFraction sizes the memory budget as a fraction of the
	// on-disk data (paper: 400 MB of 40 GB ≈ 0.01).
	MemoryBudgetFraction float64
	// LatencyThreshold is σ (Table 1: 500 ms).
	LatencyThreshold time.Duration
	// EnablePrefetch turns on §3.2 background loading.
	EnablePrefetch bool
	// IOBandwidthBytesPerSec throttles both storage engines identically,
	// emulating the scaled secondary-storage bandwidth (see DESIGN.md §3).
	// Zero disables throttling.
	IOBandwidthBytesPerSec int64
	// EvalSize is the uniform evaluation-sample size used to estimate the
	// F-measure each checkpoint.
	EvalSize int
	// EvalEvery evaluates accuracy after every EvalEvery labels.
	EvalEvery int
	// RegionTolerance is the relative cardinality slack accepted when
	// synthesizing target regions.
	RegionTolerance float64
	// WorkDir hosts the built stores; empty means a temporary directory.
	WorkDir string
	// Obs, when non-nil, receives runtime metrics from every index and
	// session the harness opens (uei-bench's -metrics-addr endpoint
	// serves it). Runs accumulate into the same registry.
	Obs *obs.Registry
	// Trace, when non-nil, records per-iteration phase spans for every
	// run (uei-bench -trace).
	Trace *obs.Tracer
	// Workers sizes the index worker pool for every run. Zero keeps the
	// paper's serial per-iteration path (1 worker), so measured latencies
	// stay comparable to the published numbers; raise it to measure the
	// parallel hot path.
	Workers int
	// BlockCacheBytes, when positive, installs the shared decoded-chunk
	// block cache on every run's index. Zero keeps it off — the paper's
	// one-chunk-in-memory discipline — so published measurements stay
	// comparable; enable it to measure the cached hot path.
	BlockCacheBytes int64
	// Shards, when > 1, builds the UEI store in the sharded layout with
	// that many shards and runs every iteration as a scatter-gather. 0 and
	// 1 keep the flat layout (the paper's configuration).
	Shards int
	// Replication, when > 1, runs each shard with that many logical
	// replicas (in-process backends share storage) so the failover and
	// hedging machinery is on the measured path. 0 and 1 mean
	// unreplicated.
	Replication int
	// HedgeDelay fires per-shard calls on a second replica after this
	// delay (needs Replication > 1). Zero disables hedging.
	HedgeDelay time.Duration
	// ScoreKernel selects the symbolic-point scoring path: nil and true
	// use the columnar kernel path (bit-identical to the per-row path),
	// false forces the legacy path — the -score-kernel=off ablation.
	ScoreKernel *bool
}

// DefaultConfig returns the quick-mode configuration.
func DefaultConfig() Config {
	return Config{
		N:                    20_000,
		Seed:                 1,
		Runs:                 2,
		MaxLabels:            100,
		BatchSize:            1,
		SegmentsPerDim:       5,
		TargetChunkBytes:     16 * 1024,
		MemoryBudgetFraction: 0.02,
		LatencyThreshold:     500 * time.Millisecond,
		EnablePrefetch:       false,
		EvalSize:             2000,
		EvalEvery:            5,
		RegionTolerance:      0.35,
	}
}

// FullConfig returns the workstation-scale configuration: 2M tuples,
// 470 KB chunks, 1% memory budget, 10 runs, and an I/O budget that makes a
// full scan take on the order of the paper's 12 s exhaustive search.
func FullConfig() Config {
	c := DefaultConfig()
	c.N = 2_000_000
	c.Runs = 10
	c.MaxLabels = 300
	c.TargetChunkBytes = 470 * 1024
	c.MemoryBudgetFraction = 0.01
	c.IOBandwidthBytesPerSec = 64 << 20 // 64 MiB/s shared budget
	c.EvalSize = 10_000
	c.EvalEvery = 10
	c.EnablePrefetch = true
	return c
}

// validate rejects nonsensical configurations early.
func (c Config) validate() error {
	switch {
	case c.N <= 0:
		return fmt.Errorf("experiment: N = %d", c.N)
	case c.Runs <= 0:
		return fmt.Errorf("experiment: Runs = %d", c.Runs)
	case c.MaxLabels <= 1:
		return fmt.Errorf("experiment: MaxLabels = %d", c.MaxLabels)
	case c.MemoryBudgetFraction <= 0 || c.MemoryBudgetFraction > 1:
		return fmt.Errorf("experiment: MemoryBudgetFraction = %g", c.MemoryBudgetFraction)
	case c.EvalSize <= 0:
		return fmt.Errorf("experiment: EvalSize = %d", c.EvalSize)
	case c.EvalEvery <= 0:
		return fmt.Errorf("experiment: EvalEvery = %d", c.EvalEvery)
	case c.RegionTolerance <= 0:
		return fmt.Errorf("experiment: RegionTolerance = %g", c.RegionTolerance)
	case c.BlockCacheBytes < 0:
		return fmt.Errorf("experiment: BlockCacheBytes = %d", c.BlockCacheBytes)
	case c.Shards < 0:
		return fmt.Errorf("experiment: Shards = %d", c.Shards)
	case c.Replication < 0:
		return fmt.Errorf("experiment: Replication = %d", c.Replication)
	case c.HedgeDelay < 0:
		return fmt.Errorf("experiment: HedgeDelay = %v", c.HedgeDelay)
	}
	return nil
}

// Table1 renders the experiment parameters in the shape of the paper's
// Table 1.
func Table1(c Config) string {
	classes := []oracle.SizeClass{oracle.Small, oracle.Medium, oracle.Large}
	cards := ""
	for i, cls := range classes {
		f, _ := cls.Fraction()
		if i > 0 {
			cards += ", "
		}
		cards += fmt.Sprintf("%.1f%% (%s)", f*100, string(cls[0]-32)) // S, M, L
	}
	points := 1
	for i := 0; i < 5; i++ {
		points *= c.SegmentsPerDim
	}
	rows := [][2]string{
		{"Number of runs per result", fmt.Sprintf("%d", c.Runs)},
		{"Number of dimensions (D)", "5"},
		{"Number of relevant regions", "1"},
		{"Cardinality of relevant regions", cards},
		{"Uncertainty Estimator", "DWKNN [11]"},
		{"Label Type", "Binary"},
		{"Data Storage Engine", "UEI, DBMS (heap+bufferpool)"},
		{"Size of Individual Data Chunk", fmt.Sprintf("%dKB", c.TargetChunkBytes/1024)},
		{"Number of Symbolic Index Points", fmt.Sprintf("%d", points)},
		{"Latency Threshold", c.LatencyThreshold.String()},
		{"Performance Measurement", "F-Measure (Accuracy)"},
		{"Dataset cardinality", fmt.Sprintf("%d", c.N)},
		{"Memory budget", fmt.Sprintf("%.1f%% of data", c.MemoryBudgetFraction*100)},
	}
	out := "Table 1: PARAMETERS\n"
	for _, r := range rows {
		out += fmt.Sprintf("  %-34s %s\n", r[0], r[1])
	}
	return out
}
