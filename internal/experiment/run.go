package experiment

import (
	"context"
	"fmt"

	"github.com/uei-db/uei/internal/al"
	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/ide"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/memcache"
	"github.com/uei-db/uei/internal/metrics"
	"github.com/uei-db/uei/internal/oracle"
)

// Scheme names the two storage schemes under comparison.
type Scheme string

const (
	// SchemeUEI is REQUEST-over-UEI.
	SchemeUEI Scheme = "uei"
	// SchemeDBMS is REQUEST-over-the-DBMS-baseline (the paper's MySQL).
	SchemeDBMS Scheme = "dbms"
)

// SchemeResult aggregates one scheme's metrics across runs.
type SchemeResult struct {
	// Accuracy is the mean F-measure vs labeled-example curve.
	Accuracy *metrics.Series
	// Latency pools every iteration's response time across runs.
	Latency *metrics.LatencyRecorder
	// FinalF1 is the mean end-of-run accuracy.
	FinalF1 float64
	// BytesReadPerIteration is the mean exploration-phase I/O volume per
	// iteration (chunk bytes for UEI, heap-page reads for DBMS).
	BytesReadPerIteration float64
}

// ComparisonResult holds both schemes for one target-region class; it is
// the content of one accuracy figure plus that class's Figure 6 column.
type ComparisonResult struct {
	Class oracle.SizeClass
	UEI   SchemeResult
	DBMS  SchemeResult
}

// evaluator estimates the model's F-measure on a fixed uniform evaluation
// sample, the standard estimator for accuracy-vs-labels curves.
type evaluator struct {
	rows [][]float64
	rel  []bool
}

func newEvaluator(env *Env, orc *oracle.Oracle, seed int64) (*evaluator, error) {
	ids, err := memcache.SampleIDs(env.DS.Len(), env.Cfg.EvalSize, seed)
	if err != nil {
		return nil, err
	}
	ev := &evaluator{
		rows: make([][]float64, len(ids)),
		rel:  make([]bool, len(ids)),
	}
	for i, id := range ids {
		ev.rows[i] = env.DS.Row(dataset.RowID(id))
		ev.rel[i] = orc.Relevant(dataset.RowID(id))
	}
	return ev, nil
}

// f1 computes the current model's F-measure on the evaluation sample.
func (ev *evaluator) f1(model learn.Classifier) (float64, error) {
	var conf metrics.Confusion
	for i, row := range ev.rows {
		cls, err := learn.Predict(model, row)
		if err != nil {
			return 0, err
		}
		conf.Observe(cls == learn.ClassPositive, ev.rel[i])
	}
	return conf.F1(), nil
}

// runOptions tweak a single exploration run; the zero value follows Config.
type runOptions struct {
	// maxLabels overrides Config.MaxLabels when positive.
	maxLabels int
	// strategy overrides least-confidence when non-nil.
	strategy al.Scorer
	// estimator overrides the Table 1 DWKNN when non-nil.
	estimator func() learn.Classifier
	// sampleSize overrides the derived γ when positive (UEI only).
	sampleSize int
	// segmentsPerDim overrides Config.SegmentsPerDim when positive.
	segmentsPerDim int
	// prefetch overrides Config.EnablePrefetch when non-nil.
	prefetch *bool
	// residentRegions overrides the default single resident region when
	// positive (UEI only).
	residentRegions int
}

// runStats captures everything one exploration run produces.
type runStats struct {
	accuracy   *metrics.Series
	latency    *metrics.LatencyRecorder
	finalF1    float64
	iterations int
	bytesRead  int64
	// swaps / deferred are UEI-only.
	swaps    int
	deferred int
}

// runOne executes a single exploration run of one scheme.
func runOne(env *Env, region oracle.Region, scheme Scheme, runSeed int64, opt runOptions) (*runStats, error) {
	orc, err := oracle.New(env.DS, region)
	if err != nil {
		return nil, err
	}
	ev, err := newEvaluator(env, orc, runSeed+7919)
	if err != nil {
		return nil, err
	}

	var provider ide.Provider
	var ueiProvider *ide.UEIProvider
	switch scheme {
	case SchemeUEI:
		segments := env.Cfg.SegmentsPerDim
		if opt.segmentsPerDim > 0 {
			segments = opt.segmentsPerDim
		}
		prefetch := env.Cfg.EnablePrefetch
		if opt.prefetch != nil {
			prefetch = *opt.prefetch
		}
		idx, err := env.openIndexWith(runSeed, segments, opt.sampleSize, prefetch, opt.residentRegions)
		if err != nil {
			return nil, err
		}
		defer idx.Close()
		ueiProvider, err = ide.NewUEIProvider(idx)
		if err != nil {
			return nil, err
		}
		// Grid-pruned retrieval: skip cells whose symbolic point the model
		// puts below 5% positive posterior.
		ueiProvider.RetrievalCutoff = 0.05
		provider = ueiProvider
	case SchemeDBMS:
		table, err := env.OpenTable()
		if err != nil {
			return nil, err
		}
		defer table.Close()
		provider, err = ide.NewDBMSProvider(table)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("experiment: unknown scheme %q", scheme)
	}

	maxLabels := env.Cfg.MaxLabels
	if opt.maxLabels > 0 {
		maxLabels = opt.maxLabels
	}
	var strategy al.Scorer = al.LeastConfidence{}
	if opt.strategy != nil {
		strategy = opt.strategy
	}
	estimator := env.EstimatorFactory()
	if opt.estimator != nil {
		estimator = opt.estimator
	}

	stats := &runStats{
		accuracy: &metrics.Series{Name: string(scheme)},
		latency:  metrics.NewLatencyRecorder(),
	}
	var evalErr, hookErr error
	var startBytes, endBytes int64
	fGauge := ide.FMeasureGauge(env.Cfg.Obs)
	cfg := ide.Config{
		BatchSize:        env.Cfg.BatchSize,
		MaxLabels:        maxLabels,
		EstimatorFactory: estimator,
		Strategy:         strategy,
		Seed:             runSeed,
		SeedWithPositive: true,
		Registry:         env.Cfg.Obs,
		Tracer:           env.Cfg.Trace,
		OnIteration: func(it ide.IterationInfo) {
			stats.latency.Record(it.ResponseTime)
			stats.iterations = it.Iteration
			if it.LabelsGiven%env.Cfg.EvalEvery == 0 {
				f1, err := ev.f1(it.Model)
				if err != nil {
					evalErr = err
					return
				}
				stats.accuracy.Append(float64(it.LabelsGiven), f1)
				fGauge.Set(f1)
			}
		},
		// Exploration-phase I/O is what Figure 6 depends on: exclude
		// initialization (sampling U, initial labels) and final result
		// retrieval by snapshotting at the loop boundaries.
		AfterPrepare: func() {
			env.Limiter.Reset()
			b, err := env.bytesRead(scheme, provider)
			if err != nil {
				hookErr = err
				return
			}
			startBytes = b
		},
		BeforeRetrieve: func() {
			b, err := env.bytesRead(scheme, provider)
			if err != nil {
				hookErr = err
				return
			}
			endBytes = b
		},
	}
	sess, err := ide.NewSession(cfg, provider, ide.OracleLabeler{O: orc})
	if err != nil {
		return nil, err
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		return nil, err
	}
	if evalErr != nil {
		return nil, evalErr
	}
	if hookErr != nil {
		return nil, hookErr
	}
	stats.bytesRead = endBytes - startBytes

	final, err := ev.f1(res.Model)
	if err != nil {
		return nil, err
	}
	stats.finalF1 = final
	stats.accuracy.Append(float64(res.LabelsUsed), final)
	if ueiProvider != nil {
		st := ueiProvider.Index().Stats()
		stats.swaps = st.RegionSwaps
		stats.deferred = st.SwapsDeferred
	}
	return stats, nil
}

// bytesRead reads a scheme's cumulative exploration I/O counter.
func (e *Env) bytesRead(scheme Scheme, provider ide.Provider) (int64, error) {
	switch scheme {
	case SchemeUEI:
		b, _ := provider.(*ide.UEIProvider).Index().IOStats()
		return b, nil
	case SchemeDBMS:
		_, misses, _ := provider.(*ide.DBMSProvider).Table().Pool().Stats()
		return misses * int64(8192), nil
	}
	return 0, fmt.Errorf("experiment: unknown scheme %q", scheme)
}

// openIndexWith opens an index with per-run overrides.
func (e *Env) openIndexWith(runSeed int64, segments, sampleSize int, prefetch bool, residentRegions int) (*core.Index, error) {
	workers := e.Cfg.Workers
	if workers == 0 {
		workers = 1
	}
	return core.Open(context.Background(), e.storeDir, core.Options{
		SegmentsPerDim:    segments,
		MemoryBudgetBytes: e.budgetBytes,
		SampleSize:        sampleSize,
		LatencyThreshold:  e.Cfg.LatencyThreshold,
		EnablePrefetch:    prefetch,
		ResidentRegions:   residentRegions,
		Seed:              runSeed,
		Registry:          e.Cfg.Obs,
		Tracer:            e.Cfg.Trace,
		Workers:           workers,
		Limiter:           e.Limiter,
		Shards:            e.Cfg.Shards,
		Replication:       e.Cfg.Replication,
		HedgeDelay:        e.Cfg.HedgeDelay,
		ScoreKernel:       e.Cfg.ScoreKernel,
	})
}

// RunComparison runs both schemes for one region class, averaging across
// Config.Runs runs. It regenerates the content of Figure 3 (Small), 4
// (Medium), or 5 (Large), and contributes that class's Figure 6 column.
func RunComparison(env *Env, class oracle.SizeClass) (*ComparisonResult, error) {
	fraction, err := class.Fraction()
	if err != nil {
		return nil, err
	}
	out := &ComparisonResult{Class: class}
	var ueiRuns, dbmsRuns []*metrics.Series
	ueiLat, dbmsLat := metrics.NewLatencyRecorder(), metrics.NewLatencyRecorder()
	var ueiFinal, dbmsFinal, ueiBytes, dbmsBytes float64
	var ueiIters, dbmsIters int

	for r := 0; r < env.Cfg.Runs; r++ {
		runSeed := env.Cfg.Seed + int64(r)
		region, err := oracle.FindRegion(env.DS, fraction, env.Cfg.RegionTolerance, runSeed*1009+17, 16)
		if err != nil {
			return nil, fmt.Errorf("experiment: run %d (%s): %w", r, class, err)
		}
		for _, scheme := range []Scheme{SchemeUEI, SchemeDBMS} {
			st, err := runOne(env, region, scheme, runSeed, runOptions{})
			if err != nil {
				return nil, fmt.Errorf("experiment: run %d (%s/%s): %w", r, class, scheme, err)
			}
			switch scheme {
			case SchemeUEI:
				ueiRuns = append(ueiRuns, st.accuracy)
				mergeLatency(ueiLat, st.latency)
				ueiFinal += st.finalF1
				ueiBytes += float64(st.bytesRead)
				ueiIters += st.iterations
			case SchemeDBMS:
				dbmsRuns = append(dbmsRuns, st.accuracy)
				mergeLatency(dbmsLat, st.latency)
				dbmsFinal += st.finalF1
				dbmsBytes += float64(st.bytesRead)
				dbmsIters += st.iterations
			}
		}
	}
	runs := float64(env.Cfg.Runs)
	out.UEI = SchemeResult{
		Accuracy:              metrics.MeanSeries("UEI", ueiRuns),
		Latency:               ueiLat,
		FinalF1:               ueiFinal / runs,
		BytesReadPerIteration: safeDiv(ueiBytes, float64(ueiIters)),
	}
	out.DBMS = SchemeResult{
		Accuracy:              metrics.MeanSeries("DBMS", dbmsRuns),
		Latency:               dbmsLat,
		FinalF1:               dbmsFinal / runs,
		BytesReadPerIteration: safeDiv(dbmsBytes, float64(dbmsIters)),
	}
	return out, nil
}

// mergeLatency pools one run's samples into the class aggregate.
func mergeLatency(dst, src *metrics.LatencyRecorder) {
	for _, s := range src.Samples() {
		dst.Record(s)
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
