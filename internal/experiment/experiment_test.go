package experiment

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/uei-db/uei/internal/oracle"
)

// tinyConfig is a fast configuration for tests.
func tinyConfig() Config {
	c := DefaultConfig()
	c.N = 8000
	c.Runs = 1
	c.MaxLabels = 40
	c.EvalSize = 1500
	c.EvalEvery = 5
	c.TargetChunkBytes = 8 * 1024
	c.MemoryBudgetFraction = 0.05
	return c
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.Runs = 0 },
		func(c *Config) { c.MaxLabels = 1 },
		func(c *Config) { c.MemoryBudgetFraction = 0 },
		func(c *Config) { c.MemoryBudgetFraction = 2 },
		func(c *Config) { c.EvalSize = 0 },
		func(c *Config) { c.EvalEvery = 0 },
		func(c *Config) { c.RegionTolerance = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if err := DefaultConfig().validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := FullConfig().validate(); err != nil {
		t.Errorf("full config invalid: %v", err)
	}
}

func TestTable1(t *testing.T) {
	out := Table1(DefaultConfig())
	for _, want := range []string{"DWKNN", "Binary", "F-Measure", "3125", "500ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestSetupAndBudget(t *testing.T) {
	cfg := tinyConfig()
	cfg.WorkDir = t.TempDir()
	env, err := Setup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if env.DS.Len() != cfg.N {
		t.Errorf("dataset has %d tuples", env.DS.Len())
	}
	if env.BudgetBytes() <= 0 {
		t.Error("budget not resolved")
	}
	idx, err := env.OpenIndex(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	idx.Close()
	table, err := env.OpenTable()
	if err != nil {
		t.Fatal(err)
	}
	if table.RowCount() != cfg.N {
		t.Errorf("table has %d rows", table.RowCount())
	}
	table.Close()
}

func TestRunComparisonMediumRegion(t *testing.T) {
	cfg := tinyConfig()
	cfg.WorkDir = t.TempDir()
	env, err := Setup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunComparison(env, oracle.Medium)
	if err != nil {
		t.Fatal(err)
	}
	if res.UEI.Accuracy.Len() == 0 || res.DBMS.Accuracy.Len() == 0 {
		t.Fatal("empty accuracy series")
	}
	if res.UEI.Latency.Count() == 0 || res.DBMS.Latency.Count() == 0 {
		t.Fatal("no latency samples")
	}
	// Both schemes should learn something with 40 labels on a 0.4% region.
	if res.UEI.FinalF1 <= 0 {
		t.Errorf("UEI final F1 = %g", res.UEI.FinalF1)
	}
	if res.DBMS.FinalF1 <= 0 {
		t.Errorf("DBMS final F1 = %g", res.DBMS.FinalF1)
	}
	// The structural claim behind Figure 6: UEI reads far fewer bytes per
	// iteration than the full-scan baseline.
	if res.UEI.BytesReadPerIteration*2 > res.DBMS.BytesReadPerIteration {
		t.Errorf("UEI bytes/iter %.0f not well below DBMS %.0f",
			res.UEI.BytesReadPerIteration, res.DBMS.BytesReadPerIteration)
	}
	// Rendering should not panic and should carry both scheme names.
	fig := FormatAccuracyFigure(res)
	if !strings.Contains(fig, "UEI") || !strings.Contains(fig, "DBMS") {
		t.Errorf("figure rendering:\n%s", fig)
	}
	f6 := FormatResponseTimeFigure([]*ComparisonResult{res})
	if !strings.Contains(f6, "speedup") {
		t.Errorf("figure 6 rendering:\n%s", f6)
	}
	if SpeedupAcrossClasses([]*ComparisonResult{res}) <= 0 {
		t.Error("speedup not computed")
	}
}

func TestAblations(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxLabels = 25
	cfg.WorkDir = t.TempDir()
	env, err := Setup(cfg)
	if err != nil {
		t.Fatal(err)
	}

	points, err := AblateIndexPoints(env, []int{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].Setting == points[1].Setting {
		t.Errorf("index-point ablation: %+v", points)
	}

	gammas, err := AblateGamma(env, []int{50, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(gammas) != 2 {
		t.Errorf("gamma ablation: %+v", gammas)
	}

	pf, err := AblatePrefetch(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(pf) != 2 {
		t.Errorf("prefetch ablation: %+v", pf)
	}

	strat, err := AblateStrategy(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(strat) != 5 {
		t.Errorf("strategy ablation has %d rows", len(strat))
	}

	est, err := AblateEstimator(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != 4 {
		t.Errorf("estimator ablation has %d rows", len(est))
	}

	regions, err := AblateResidentRegions(env, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 2 {
		t.Errorf("resident-region ablation has %d rows", len(regions))
	}
	table := FormatAblation("A4: strategies", strat)
	if !strings.Contains(table, "random") || !strings.Contains(table, "qbc") {
		t.Errorf("ablation table:\n%s", table)
	}
}

func TestAblateChunkSize(t *testing.T) {
	cfg := tinyConfig()
	cfg.N = 5000
	cfg.MaxLabels = 20
	points, err := AblateChunkSize(cfg, []int{4 * 1024, 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("chunk ablation: %+v", points)
	}
	for _, p := range points {
		if p.BytesPerIteration < 0 || p.MeanLatency < 0 {
			t.Errorf("nonsense point %+v", p)
		}
	}
}

func TestThrottledComparisonShowsGap(t *testing.T) {
	if testing.Short() {
		t.Skip("throttled comparison is slow")
	}
	cfg := tinyConfig()
	cfg.MaxLabels = 10
	cfg.EvalEvery = 5
	// The bucket burst equals one second of budget; keep the budget small
	// enough that a full scan cannot hide inside the burst.
	cfg.IOBandwidthBytesPerSec = 256 << 10 // 256 KiB/s shared budget
	cfg.WorkDir = t.TempDir()
	env, err := Setup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunComparison(env, oracle.Medium)
	if err != nil {
		t.Fatal(err)
	}
	u, d := res.UEI.Latency.Mean(), res.DBMS.Latency.Mean()
	if u == 0 || d == 0 {
		t.Fatal("latencies not recorded")
	}
	if d < 2*u {
		t.Errorf("throttled DBMS (%v) should be well above UEI (%v)", d, u)
	}
	if d < 500*time.Millisecond {
		t.Errorf("DBMS mean %v suspiciously low for a >1s/iteration I/O budget", d)
	}
}
