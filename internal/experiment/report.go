package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"github.com/uei-db/uei/internal/metrics"
	"github.com/uei-db/uei/internal/oracle"
)

// WriteSeriesCSV writes several series as one CSV with an x column and one
// y column per series (step-interpolated where a series has no point),
// suitable for external plotting of the accuracy figures.
func WriteSeriesCSV(w io.Writer, xLabel string, series ...*metrics.Series) error {
	cw := csv.NewWriter(w)
	header := []string{xLabel}
	for _, s := range series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiment: write csv header: %w", err)
	}
	xs := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sortFloats(sorted)
	rec := make([]string, len(series)+1)
	for _, x := range sorted {
		rec[0] = strconv.FormatFloat(x, 'g', -1, 64)
		for i, s := range series {
			if y, ok := s.YAt(x); ok {
				rec[i+1] = strconv.FormatFloat(y, 'g', -1, 64)
			} else {
				rec[i+1] = ""
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiment: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ExportComparisonCSV writes one accuracy figure's curves and one
// response-time summary row into dir, named after the region class
// (fig<N>_accuracy.csv / fig6_<class>_latency.csv). It returns the written
// paths.
func ExportComparisonCSV(dir string, res *ComparisonResult) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiment: create %s: %w", dir, err)
	}
	accPath := filepath.Join(dir, fmt.Sprintf("fig%d_accuracy.csv", figureNumber(res.Class)))
	f, err := os.Create(accPath)
	if err != nil {
		return nil, fmt.Errorf("experiment: create %s: %w", accPath, err)
	}
	err = WriteSeriesCSV(f, "labels", res.UEI.Accuracy, res.DBMS.Accuracy)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}

	latPath := filepath.Join(dir, fmt.Sprintf("fig6_%s_latency.csv", res.Class))
	lf, err := os.Create(latPath)
	if err != nil {
		return nil, fmt.Errorf("experiment: create %s: %w", latPath, err)
	}
	cw := csv.NewWriter(lf)
	werr := cw.Write([]string{"scheme", "mean_ms", "p50_ms", "p95_ms", "max_ms", "frac_under_500ms", "bytes_per_iter"})
	for _, row := range []struct {
		name string
		r    SchemeResult
	}{{"uei", res.UEI}, {"dbms", res.DBMS}} {
		if werr != nil {
			break
		}
		lat := row.r.Latency.Snapshot()
		werr = cw.Write([]string{
			row.name,
			ms(lat.Mean),
			ms(lat.P50),
			ms(lat.P95),
			ms(lat.Max),
			strconv.FormatFloat(row.r.Latency.FractionUnder(500*time.Millisecond), 'f', 3, 64),
			strconv.FormatFloat(row.r.BytesReadPerIteration, 'f', 0, 64),
		})
	}
	cw.Flush()
	if werr == nil {
		werr = cw.Error()
	}
	if cerr := lf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return nil, fmt.Errorf("experiment: write %s: %w", latPath, werr)
	}
	return []string{accPath, latPath}, nil
}

func ms(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 3, 64)
}

func sortFloats(v []float64) { sort.Float64s(v) }

// FigureClassOrder is the canonical class order for multi-figure exports.
var FigureClassOrder = []oracle.SizeClass{oracle.Small, oracle.Medium, oracle.Large}
