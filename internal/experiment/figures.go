package experiment

import (
	"fmt"
	"strings"
	"time"

	"github.com/uei-db/uei/internal/metrics"
	"github.com/uei-db/uei/internal/oracle"
)

// figureNumber maps a region class to its accuracy-figure number in the
// paper.
func figureNumber(class oracle.SizeClass) int {
	switch class {
	case oracle.Small:
		return 3
	case oracle.Medium:
		return 4
	default:
		return 5
	}
}

// FormatAccuracyFigure renders one of Figures 3-5: the mean F-measure
// curve of both schemes against the number of labeled examples, plus the
// user-effort comparison the paper's §4.2 discussion makes (labels to
// reach 70% and 80% accuracy).
func FormatAccuracyFigure(res *ComparisonResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d: UEI Accuracy (%s Target Region, %s)\n",
		figureNumber(res.Class), strings.Title(string(res.Class)), cardinalityLabel(res.Class))
	b.WriteString(metrics.FormatTable("labels", "%.3f", res.UEI.Accuracy, res.DBMS.Accuracy))
	fmt.Fprintf(&b, "labels to reach F1>=0.70:  UEI %s, DBMS %s\n",
		labelsToReach(res.UEI.Accuracy, 0.70), labelsToReach(res.DBMS.Accuracy, 0.70))
	fmt.Fprintf(&b, "labels to reach F1>=0.80:  UEI %s, DBMS %s\n",
		labelsToReach(res.UEI.Accuracy, 0.80), labelsToReach(res.DBMS.Accuracy, 0.80))
	fmt.Fprintf(&b, "final F1:                  UEI %.3f, DBMS %.3f\n", res.UEI.FinalF1, res.DBMS.FinalF1)
	return b.String()
}

func cardinalityLabel(class oracle.SizeClass) string {
	f, err := class.Fraction()
	if err != nil {
		return "?"
	}
	return fmt.Sprintf("%.1f%% of dataset", f*100)
}

// FormatResponseTimeFigure renders Figure 6: mean per-iteration response
// time of both schemes across the three region classes, the resulting
// speedup, and the fraction of iterations meeting the 500 ms interactivity
// bound.
func FormatResponseTimeFigure(results []*ComparisonResult) string {
	var b strings.Builder
	b.WriteString("Figure 6: UEI Response Time (per exploration iteration)\n")
	fmt.Fprintf(&b, "  %-8s %14s %14s %9s %12s %12s %16s\n",
		"region", "UEI mean", "DBMS mean", "speedup", "UEI p95", "DBMS p95", "UEI <500ms frac")
	for _, r := range results {
		uei := r.UEI.Latency.Snapshot()
		dbms := r.DBMS.Latency.Snapshot()
		speedup := 0.0
		if uei.Mean > 0 {
			speedup = float64(dbms.Mean) / float64(uei.Mean)
		}
		fmt.Fprintf(&b, "  %-8s %14s %14s %8.1fx %12s %12s %16.2f\n",
			r.Class,
			uei.Mean.Round(time.Microsecond),
			dbms.Mean.Round(time.Microsecond),
			speedup,
			uei.P95.Round(time.Microsecond),
			dbms.P95.Round(time.Microsecond),
			r.UEI.Latency.FractionUnder(500*time.Millisecond))
	}
	b.WriteString("  (I/O volume per iteration)\n")
	for _, r := range results {
		ratio := 0.0
		if r.UEI.BytesReadPerIteration > 0 {
			ratio = r.DBMS.BytesReadPerIteration / r.UEI.BytesReadPerIteration
		}
		fmt.Fprintf(&b, "  %-8s UEI %.0f B/iter, DBMS %.0f B/iter (%.0fx)\n",
			r.Class, r.UEI.BytesReadPerIteration, r.DBMS.BytesReadPerIteration, ratio)
	}
	return b.String()
}

// SpeedupAcrossClasses returns the mean DBMS/UEI response-time ratio over
// the supplied results — the paper's headline "more than 50x" number.
func SpeedupAcrossClasses(results []*ComparisonResult) float64 {
	var sum float64
	n := 0
	for _, r := range results {
		u := r.UEI.Latency.Mean()
		d := r.DBMS.Latency.Mean()
		if u > 0 && d > 0 {
			sum += float64(d) / float64(u)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
