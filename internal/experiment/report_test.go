package experiment

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/uei-db/uei/internal/metrics"
	"github.com/uei-db/uei/internal/oracle"
)

func TestWriteSeriesCSV(t *testing.T) {
	a := &metrics.Series{Name: "UEI"}
	a.Append(5, 0.5)
	a.Append(10, 0.8)
	b := &metrics.Series{Name: "DBMS"}
	b.Append(10, 0.6)
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, "labels", a, b); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("got %d rows", len(records))
	}
	if records[0][0] != "labels" || records[0][1] != "UEI" || records[0][2] != "DBMS" {
		t.Errorf("header = %v", records[0])
	}
	// At x=5 the DBMS series has no value yet.
	if records[1][0] != "5" || records[1][1] != "0.5" || records[1][2] != "" {
		t.Errorf("row 1 = %v", records[1])
	}
	if records[2][0] != "10" || records[2][1] != "0.8" || records[2][2] != "0.6" {
		t.Errorf("row 2 = %v", records[2])
	}
}

func TestExportComparisonCSV(t *testing.T) {
	uei := SchemeResult{Accuracy: &metrics.Series{Name: "UEI"}, Latency: metrics.NewLatencyRecorder()}
	dbms := SchemeResult{Accuracy: &metrics.Series{Name: "DBMS"}, Latency: metrics.NewLatencyRecorder()}
	uei.Accuracy.Append(5, 0.4)
	dbms.Accuracy.Append(5, 0.3)
	uei.Latency.Record(10 * time.Millisecond)
	dbms.Latency.Record(500 * time.Millisecond)
	res := &ComparisonResult{Class: oracle.Medium, UEI: uei, DBMS: dbms}

	dir := t.TempDir()
	paths, err := ExportComparisonCSV(dir, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	acc, err := os.ReadFile(filepath.Join(dir, "fig4_accuracy.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(acc), "UEI") {
		t.Errorf("accuracy csv:\n%s", acc)
	}
	lat, err := os.ReadFile(filepath.Join(dir, "fig6_medium_latency.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(lat), "uei") || !strings.Contains(string(lat), "dbms") {
		t.Errorf("latency csv:\n%s", lat)
	}
	if !strings.Contains(string(lat), "10.000") {
		t.Errorf("latency csv missing mean:\n%s", lat)
	}
}

func TestFigureClassOrder(t *testing.T) {
	if len(FigureClassOrder) != 3 || FigureClassOrder[0] != oracle.Small || FigureClassOrder[2] != oracle.Large {
		t.Errorf("FigureClassOrder = %v", FigureClassOrder)
	}
}
