package experiment

import (
	"fmt"
	"time"

	"github.com/uei-db/uei/internal/al"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/metrics"
	"github.com/uei-db/uei/internal/oracle"
)

// AblationPoint is one setting's outcome in an ablation sweep.
type AblationPoint struct {
	// Setting names the knob value ("chunk=470KB", "segments=6", ...).
	Setting string
	// MeanLatency and P95Latency summarize per-iteration response time.
	MeanLatency time.Duration
	P95Latency  time.Duration
	// FinalF1 is the end-of-run accuracy.
	FinalF1 float64
	// BytesPerIteration is the mean exploration I/O per iteration.
	BytesPerIteration float64
	// Swaps and Deferred count UEI region swaps and deferred swaps.
	Swaps    int
	Deferred int
}

// ablationRegion synthesizes the medium target region ablations share.
func ablationRegion(env *Env) (oracle.Region, error) {
	fraction, err := oracle.Medium.Fraction()
	if err != nil {
		return oracle.Region{}, err
	}
	return oracle.FindRegion(env.DS, fraction, env.Cfg.RegionTolerance, env.Cfg.Seed*31+5, 16)
}

// ablateOne runs a single UEI exploration with overrides and summarizes it.
func ablateOne(env *Env, region oracle.Region, setting string, opt runOptions) (AblationPoint, error) {
	st, err := runOne(env, region, SchemeUEI, env.Cfg.Seed, opt)
	if err != nil {
		return AblationPoint{}, fmt.Errorf("experiment: ablation %q: %w", setting, err)
	}
	lat := st.latency.Snapshot()
	return AblationPoint{
		Setting:           setting,
		MeanLatency:       lat.Mean,
		P95Latency:        lat.P95,
		FinalF1:           st.finalF1,
		BytesPerIteration: safeDiv(float64(st.bytesRead), float64(st.iterations)),
		Swaps:             st.swaps,
		Deferred:          st.deferred,
	}, nil
}

// AblateIndexPoints sweeps the symbolic-index-point budget (Table 1's 3125
// = 5 segments/dim) — ablation A2 of DESIGN.md. More points localize
// uncertainty better (smaller, cheaper regions) at the cost of scoring more
// points per iteration.
func AblateIndexPoints(env *Env, segments []int) ([]AblationPoint, error) {
	region, err := ablationRegion(env)
	if err != nil {
		return nil, err
	}
	var out []AblationPoint
	for _, s := range segments {
		points := 1
		for i := 0; i < env.DS.Dims(); i++ {
			points *= s
		}
		p, err := ablateOne(env, region, fmt.Sprintf("segments=%d (|P|=%d)", s, points), runOptions{segmentsPerDim: s})
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// AblateGamma sweeps the uniform-sample size γ of Algorithm 2 line 12 —
// ablation A5. Larger γ improves early-stage coverage but consumes memory
// budget that region loads then cannot use.
func AblateGamma(env *Env, gammas []int) ([]AblationPoint, error) {
	region, err := ablationRegion(env)
	if err != nil {
		return nil, err
	}
	var out []AblationPoint
	for _, g := range gammas {
		p, err := ablateOne(env, region, fmt.Sprintf("gamma=%d", g), runOptions{sampleSize: g})
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// AblatePrefetch compares prefetching off vs on (§3.2) — ablation A3.
// Prefetching should cut tail latency (swaps hide behind iterations) at
// equal accuracy.
func AblatePrefetch(env *Env) ([]AblationPoint, error) {
	region, err := ablationRegion(env)
	if err != nil {
		return nil, err
	}
	var out []AblationPoint
	for _, enabled := range []bool{false, true} {
		e := enabled
		p, err := ablateOne(env, region, fmt.Sprintf("prefetch=%v", e), runOptions{prefetch: &e})
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// AblateStrategy compares query strategies (§2.1's survey) — ablation A4.
// Uncertainty-sampling variants should dominate random; QBC should land
// near uncertainty sampling at higher compute.
func AblateStrategy(env *Env) ([]AblationPoint, error) {
	region, err := ablationRegion(env)
	if err != nil {
		return nil, err
	}
	scales := env.estimatorScales
	committeeFactory := func() learn.Classifier {
		com, err := learn.NewCommittee(5, env.Cfg.Seed, func(i int) learn.Classifier {
			return learn.NewDWKNN(7, scales)
		})
		if err != nil {
			// NewCommittee only fails on invalid arity, which is fixed here.
			panic(err)
		}
		return com
	}
	cases := []struct {
		name      string
		strategy  al.Scorer
		estimator func() learn.Classifier
	}{
		{"uncertainty(lc)", al.LeastConfidence{}, nil},
		{"margin", al.Margin{}, nil},
		{"entropy", al.Entropy{}, nil},
		{"random", al.NewRandom(env.Cfg.Seed), nil},
		{"qbc", al.QueryByCommittee{}, committeeFactory},
	}
	var out []AblationPoint
	for _, c := range cases {
		p, err := ablateOne(env, region, c.name, runOptions{strategy: c.strategy, estimator: c.estimator})
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// AblateEstimator compares uncertainty estimators — ablation A7. The paper
// fixes DWKNN (Table 1) but notes UEI works "in conjunction with any
// probabilistic-based classifiers" (§3); this sweep validates that claim
// and shows why DWKNN fits the workload: a box-shaped relevant region is
// not linearly separable (logistic plateaus) and violates naive Bayes'
// unimodal-likelihood assumption.
func AblateEstimator(env *Env) ([]AblationPoint, error) {
	region, err := ablationRegion(env)
	if err != nil {
		return nil, err
	}
	scales := env.estimatorScales
	cases := []struct {
		name    string
		factory func() learn.Classifier
	}{
		{"dwknn(k=7)", func() learn.Classifier { return learn.NewDWKNN(7, scales) }},
		{"dwknn(k=3)", func() learn.Classifier { return learn.NewDWKNN(3, scales) }},
		{"gaussian-nb", func() learn.Classifier { return learn.NewGaussianNB() }},
		{"logistic", func() learn.Classifier { return learn.NewLogistic(env.Cfg.Seed) }},
	}
	var out []AblationPoint
	for _, c := range cases {
		p, err := ablateOne(env, region, c.name, runOptions{estimator: c.factory})
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// AblateResidentRegions sweeps the resident-region bound — ablation A6.
// §3.2 fixes the paper's default at one region; more resident regions
// trade memory-budget headroom for fewer re-loads when the most-uncertain
// cell oscillates between neighbors.
func AblateResidentRegions(env *Env, counts []int) ([]AblationPoint, error) {
	region, err := ablationRegion(env)
	if err != nil {
		return nil, err
	}
	var out []AblationPoint
	for _, n := range counts {
		p, err := ablateOne(env, region, fmt.Sprintf("regions=%d", n), runOptions{residentRegions: n})
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// AblateChunkSize sweeps the equal-size chunk target (Table 1's 470 KB) —
// ablation A1. Small chunks localize reads (fewer wasted bytes per region)
// but multiply files and per-chunk overheads; big chunks do the reverse.
// Each setting needs its own store build, so this ablation constructs
// fresh environments from cfg rather than sharing one.
func AblateChunkSize(cfg Config, sizes []int) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, size := range sizes {
		c := cfg
		c.TargetChunkBytes = size
		c.WorkDir = "" // isolated per-size temp dir
		env, err := Setup(c)
		if err != nil {
			return nil, fmt.Errorf("experiment: chunk ablation setup (%d): %w", size, err)
		}
		region, err := ablationRegion(env)
		if err != nil {
			return nil, err
		}
		p, err := ablateOne(env, region, fmt.Sprintf("chunk=%dKB", size/1024), runOptions{})
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// FormatAblation renders an ablation sweep as an aligned table.
func FormatAblation(title string, points []AblationPoint) string {
	out := title + "\n"
	out += fmt.Sprintf("  %-26s %12s %12s %8s %14s %6s %9s\n",
		"setting", "mean-lat", "p95-lat", "F1", "bytes/iter", "swaps", "deferred")
	for _, p := range points {
		out += fmt.Sprintf("  %-26s %12s %12s %8.3f %14.0f %6d %9d\n",
			p.Setting,
			p.MeanLatency.Round(time.Microsecond),
			p.P95Latency.Round(time.Microsecond),
			p.FinalF1,
			p.BytesPerIteration,
			p.Swaps,
			p.Deferred)
	}
	return out
}

// labelsToReach answers "how many labels until F1 >= t" for a mean curve.
func labelsToReach(s *metrics.Series, threshold float64) string {
	if x, ok := s.FirstXReaching(threshold); ok {
		return fmt.Sprintf("%.0f", x)
	}
	return "n/a"
}
