package shard

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/grid"
	"github.com/uei-db/uei/internal/iothrottle"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/obs"
	"github.com/uei-db/uei/internal/pool"
	"github.com/uei-db/uei/internal/vec"
)

// ErrShardUnavailable marks a shard that missed its deadline or failed an
// operation on every replica. Callers that can degrade (the per-iteration
// paths) treat it as "skip this shard for now"; strict paths surface it.
// Match with errors.Is.
var ErrShardUnavailable = errors.New("shard unavailable")

// Operation names passed to the fault hook and used in error messages and
// span names.
const (
	OpScore    = "score"
	OpTopK     = "topk"
	OpLoad     = "load"
	OpFetch    = "fetch"
	OpRetrieve = "retrieve"
)

// FaultHook intercepts every shard attempt before it runs — the test seam
// for forcing timeouts and failures, per replica. Hooks must honor ctx:
// the per-attempt deadline, caller cancellation, and hedged-loser
// cancellation reach a stuck attempt only through it.
type FaultHook func(ctx context.Context, shard, replica int, op string) error

// Part is one immutable data part of a shard: a private flat chunk store
// (local ids 0..n-1), the mapping of global grid cells to that store's
// chunks, and the strictly ascending local→global idmap — so local id
// order and global id order agree within a part.
type Part struct {
	Store   *chunkstore.Store
	Mapping *grid.Mapping
	IDMap   []uint32
}

// RowCount returns the part's row count.
func (p *Part) RowCount() int { return p.Store.RowCount() }

// Shard is one self-contained slice of the sharded store. Build-time
// layouts hold exactly one part per shard; live (stream) snapshots hold
// one part per flushed segment, and reads merge the parts by global id.
type Shard struct {
	// ID is the shard index in [0, S).
	ID int
	// Parts are the shard's immutable data parts. Rows are disjoint
	// across parts (every global row rests in exactly one part).
	Parts []Part
	// Cells lists the grid cells this shard owns, ascending.
	Cells []grid.CellID
}

// RowCount sums the parts' rows.
func (s *Shard) RowCount() int {
	n := 0
	for i := range s.Parts {
		n += s.Parts[i].RowCount()
	}
	return n
}

// OpenOptions configures Open.
type OpenOptions struct {
	// Limiter, when non-nil, meters chunk reads of every shard store
	// (one shared limiter — the shards model one storage device).
	Limiter *iothrottle.Limiter
	// Workers bounds each shard store's internal read fan-out.
	Workers int
	// Pool runs the CPU-side fan-out (scoring, top-k). Shards share the
	// caller's pool rather than owning threads; nil falls back to an
	// inline single-worker pool.
	Pool *pool.Pool
	// Deadline bounds every per-shard attempt; a shard whose replicas all
	// miss it is skipped for the iteration (degraded) on degradable
	// paths. Zero disables the deadline.
	Deadline time.Duration
	// BlockCache, when non-nil, is shared across all shard stores; each
	// store is installed with a distinct cache key prefix so identical
	// chunk file names in different shards cannot collide.
	BlockCache *chunkstore.BlockCache
	// Replicas is the per-shard replica count. In-process replicas share
	// one backend (the store is concurrency-safe), so values above 1 buy
	// hedging and failover semantics — useful under injected faults and
	// in tests — without extra memory. Zero and 1 both mean unreplicated.
	Replicas int
	// HedgeDelay, when positive and Replicas > 1, launches the operation
	// on a second replica after this delay if the first has not answered;
	// the first reply wins and the loser is cancelled. Zero disables
	// hedging (failover on error still applies).
	HedgeDelay time.Duration
}

// CoordinatorOptions configures NewCoordinator (the transport-agnostic
// constructor; Open wraps it for the local on-disk layout).
type CoordinatorOptions struct {
	// Deadline bounds every per-shard attempt (zero disables).
	Deadline time.Duration
	// HedgeDelay fires the hedged second attempt (zero disables hedging).
	HedgeDelay time.Duration
}

// Coordinator fans per-iteration work out to every shard and merges the
// answers. It speaks only the Backend interface, so shards may live
// in-process (Open) or behind remote workers (NewCoordinator with remote
// client backends). With all shards healthy its results are exactly those
// of a flat store over the same dataset; with some shards degraded it
// returns the healthy subset and reports which shards were skipped.
//
// Replication: each shard may have R backends. An operation runs on the
// primary first, fails over to the next replica on error, and — when a
// hedge delay is configured — races a second replica after the delay,
// taking the first reply and cancelling the loser. A shard degrades only
// when every replica fails (ErrReplicaExhausted joins the error chain).
//
// The coordinator is safe for concurrent use by multiple sessions once
// constructed; SetFaultHook, SetDeadline, and SetHedgeDelay may be called
// at any time.
type Coordinator struct {
	meta Meta
	// replicas[s] lists shard s's backends, primary first.
	replicas [][]Backend
	// statBackends holds each distinct backend once, for I/O accounting
	// (local replicas share one backend; remote replicas are distinct).
	statBackends []Backend
	// shards holds the in-process shards of a locally opened coordinator,
	// nil when the data plane is remote. Exposed for inspection and tests.
	shards []*Shard
	// ownerByCell[cell] is the owning shard of each grid cell.
	ownerByCell []int
	// ownedCells[s] lists shard s's cells ascending — the alignment
	// contract of Backend.ScoreAll/MostUncertain.
	ownedCells [][]grid.CellID
	// cellLocal[cell] is the cell's position within its owner's ownedCells
	// list — the global→owned-local index map dirty-set scoring routes
	// through.
	cellLocal []int
	cache     *chunkstore.BlockCache

	deadline   atomic.Int64 // nanoseconds; 0 = none
	hedgeDelay atomic.Int64 // nanoseconds; 0 = no hedging
	hook       atomic.Pointer[FaultHook]

	// mDegraded counts shard skips (shard_degraded_total); nil-safe. The
	// cause-split counters attribute each skip to a deadline miss vs a
	// shard error, and mSkip[i] counts skips of shard i specifically.
	// mHedged counts hedged second attempts, mFailover error-triggered
	// replica failovers.
	mDegraded         *obs.Counter
	mDegradedDeadline *obs.Counter
	mDegradedError    *obs.Counter
	mSkip             []*obs.Counter
	mHedged           *obs.Counter
	mFailover         *obs.Counter
}

// Open loads a sharded store built by Build and serves it through
// in-process backends. A flat store directory fails with
// chunkstore.ErrLayoutMismatch.
func Open(ctx context.Context, dir string, opts OpenOptions) (*Coordinator, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	man, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	g, err := grid.New(vec.NewBox(man.MinValues, man.MaxValues), man.SegmentsPerDim)
	if err != nil {
		return nil, err
	}
	shards := make([]*Shard, man.Shards)
	for s := 0; s < man.Shards; s++ {
		sdir := filepath.Join(dir, ShardDirName(s))
		st, err := chunkstore.Open(sdir, opts.Limiter)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		if st.RowCount() != man.ShardRowCounts[s] {
			return nil, fmt.Errorf("shard %d: store has %d rows, manifest says %d", s, st.RowCount(), man.ShardRowCounts[s])
		}
		if st.Dims() != len(man.Columns) {
			return nil, fmt.Errorf("shard %d: store has %d dims, manifest says %d", s, st.Dims(), len(man.Columns))
		}
		st.SetWorkers(opts.Workers)
		if opts.BlockCache != nil {
			st.SetCacheKeyPrefix(fmt.Sprintf("s%03d/", s))
			st.SetBlockCache(opts.BlockCache)
		}
		mp, err := grid.BuildMapping(g, st)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		ids, err := LoadIDMap(sdir)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		if len(ids) != st.RowCount() {
			return nil, fmt.Errorf("shard %d: idmap has %d entries, store has %d rows", s, len(ids), st.RowCount())
		}
		shards[s] = &Shard{ID: s, Parts: []Part{{Store: st, Mapping: mp, IDMap: ids}}}
	}
	return NewLocalCoordinator(man, shards, opts)
}

// NewLocalCoordinator assembles a coordinator over already-open in-process
// shards — the tail of Open, also the entry point for live (stream)
// snapshots, whose multi-part shards are opened and cached by the stream
// DB rather than loaded from a build-time directory. Shard IDs and owned
// cells are (re)assigned here from the manifest's grid.
func NewLocalCoordinator(man *Manifest, shards []*Shard, opts OpenOptions) (*Coordinator, error) {
	if err := man.validate(); err != nil {
		return nil, err
	}
	if len(shards) != man.Shards {
		return nil, fmt.Errorf("shard: %d shards for a %d-shard manifest", len(shards), man.Shards)
	}
	g, err := grid.New(vec.NewBox(man.MinValues, man.MaxValues), man.SegmentsPerDim)
	if err != nil {
		return nil, err
	}
	owners, err := CellOwners(g, man.Shards)
	if err != nil {
		return nil, err
	}
	p := opts.Pool
	if p == nil {
		p = pool.New(1)
	}
	centers := g.Centers()
	ownedCenters := make([][]vec.Point, man.Shards)
	for s := range shards {
		shards[s].ID = s
		shards[s].Cells = nil
	}
	for id, o := range owners {
		shards[o].Cells = append(shards[o].Cells, grid.CellID(id))
		ownedCenters[o] = append(ownedCenters[o], centers[id])
	}
	rep := opts.Replicas
	if rep < 1 {
		rep = 1
	}
	backends := make([][]Backend, man.Shards)
	for s, sh := range shards {
		lb := NewLocalBackend(sh, g, sh.Cells, ownedCenters[s], p)
		for i := 0; i < rep; i++ {
			// In-process replicas share the backend: the store is
			// concurrency-safe, and one I/O counter per shard keeps stats
			// exact under hedging.
			backends[s] = append(backends[s], lb)
		}
	}
	c, err := newCoordinator(man, g, owners, backends, CoordinatorOptions{
		Deadline:   opts.Deadline,
		HedgeDelay: opts.HedgeDelay,
	})
	if err != nil {
		return nil, err
	}
	c.shards = shards
	c.cache = opts.BlockCache
	return c, nil
}

// NewCoordinator assembles a coordinator over caller-provided backends —
// the remote-transport entry point. man must be the store's manifest
// (validated again here); replicas[s] lists shard s's backends, primary
// first, and must cover every shard.
func NewCoordinator(man *Manifest, replicas [][]Backend, opts CoordinatorOptions) (*Coordinator, error) {
	if man == nil {
		return nil, fmt.Errorf("shard: nil manifest")
	}
	g, err := grid.New(vec.NewBox(man.MinValues, man.MaxValues), man.SegmentsPerDim)
	if err != nil {
		return nil, err
	}
	owners, err := CellOwners(g, man.Shards)
	if err != nil {
		return nil, err
	}
	return newCoordinator(man, g, owners, replicas, opts)
}

// newCoordinator finishes construction over a prebuilt grid and ownership
// table.
func newCoordinator(man *Manifest, g *grid.Grid, owners []int, replicas [][]Backend, opts CoordinatorOptions) (*Coordinator, error) {
	if err := man.validate(); err != nil {
		return nil, err
	}
	if len(replicas) != man.Shards {
		return nil, fmt.Errorf("shard: %d backend groups for %d shards", len(replicas), man.Shards)
	}
	if opts.Deadline < 0 || opts.HedgeDelay < 0 {
		return nil, fmt.Errorf("shard: negative deadline (%v) or hedge delay (%v)", opts.Deadline, opts.HedgeDelay)
	}
	minRep := 0
	var stat []Backend
	for s, reps := range replicas {
		if len(reps) == 0 {
			return nil, fmt.Errorf("shard: shard %d has no backends", s)
		}
		if minRep == 0 || len(reps) < minRep {
			minRep = len(reps)
		}
		for _, b := range reps {
			if b == nil {
				return nil, fmt.Errorf("shard: shard %d has a nil backend", s)
			}
			dup := false
			for _, seen := range stat {
				if seen == b {
					dup = true
					break
				}
			}
			if !dup {
				stat = append(stat, b)
			}
		}
	}
	ownedCells := make([][]grid.CellID, man.Shards)
	cellLocal := make([]int, len(owners))
	for id, o := range owners {
		cellLocal[id] = len(ownedCells[o])
		ownedCells[o] = append(ownedCells[o], grid.CellID(id))
	}
	var totalBytes int64
	for _, b := range stat {
		totalBytes += b.Stats().TotalBytes
	}
	c := &Coordinator{
		replicas:     replicas,
		statBackends: stat,
		ownerByCell:  owners,
		ownedCells:   ownedCells,
		cellLocal:    cellLocal,
		meta: Meta{
			Grid:           g,
			Shards:         man.Shards,
			Replication:    minRep,
			SegmentsPerDim: man.SegmentsPerDim,
			Columns:        man.Columns,
			RowCount:       man.RowCount,
			Bounds:         vec.NewBox(man.MinValues, man.MaxValues),
			TotalBytes:     totalBytes,
		},
	}
	c.deadline.Store(int64(opts.Deadline))
	c.hedgeDelay.Store(int64(opts.HedgeDelay))
	return c, nil
}

// Meta returns the store's immutable identity in one value — grid, shard
// and replica counts, columns, bounds, row count, on-disk bytes.
func (c *Coordinator) Meta() Meta { return c.meta }

// NumShards returns S.
func (c *Coordinator) NumShards() int { return len(c.replicas) }

// Replication returns the minimum per-shard replica count.
func (c *Coordinator) Replication() int { return c.meta.Replication }

// Shards returns the in-process shard slice of a locally opened
// coordinator (read-only; exposed for inspection and tests), or nil when
// the data plane is remote.
func (c *Coordinator) Shards() []*Shard { return c.shards }

// Backends returns shard s's backends, primary first (read-only).
func (c *Coordinator) Backends(s int) []Backend { return c.replicas[s] }

// BlockCache returns the shared decoded-chunk cache of a locally opened
// coordinator, or nil (remote coordinators cache on the worker side).
func (c *Coordinator) BlockCache() *chunkstore.BlockCache { return c.cache }

// IOStats sums cumulative bytes and chunks read across all distinct
// backends: disk I/O for local shards, wire traffic for remote ones.
func (c *Coordinator) IOStats() (bytes int64, chunks int64) {
	for _, b := range c.statBackends {
		s := b.Stats()
		bytes += s.BytesRead
		chunks += s.ChunksRead
	}
	return bytes, chunks
}

// ResetIOStats zeroes every backend's I/O counters.
func (c *Coordinator) ResetIOStats() {
	for _, b := range c.statBackends {
		b.ResetIOStats()
	}
}

// OwnerOfCell returns the shard owning a cell. A cell id outside the grid
// means the caller's grid disagrees with the store's layout, so the error
// wraps chunkstore.ErrLayoutMismatch (match with errors.Is).
func (c *Coordinator) OwnerOfCell(cell grid.CellID) (int, error) {
	if cell < 0 || int(cell) >= len(c.ownerByCell) {
		return 0, fmt.Errorf("shard: cell %d outside grid [0,%d): %w", cell, len(c.ownerByCell), chunkstore.ErrLayoutMismatch)
	}
	return c.ownerByCell[cell], nil
}

// SetDeadline adjusts the per-shard attempt deadline (0 disables).
func (c *Coordinator) SetDeadline(d time.Duration) { c.deadline.Store(int64(d)) }

// SetHedgeDelay adjusts the hedged-request delay (0 disables hedging).
func (c *Coordinator) SetHedgeDelay(d time.Duration) { c.hedgeDelay.Store(int64(d)) }

// SetFaultHook installs (or, with nil, removes) the per-attempt fault
// hook. Test seam for degradation and hedging scenarios.
func (c *Coordinator) SetFaultHook(h FaultHook) {
	if h == nil {
		c.hook.Store(nil)
		return
	}
	c.hook.Store(&h)
}

// Instrument registers shard metrics — shard_degraded_total, its
// cause-split family shard_degraded_cause_total{cause=...}, the per-shard
// shard_skip_total{shard=i} set, hedging counters (shard_hedged_total,
// shard_failover_total), the uei_shards and uei_shard_replicas gauges —
// and, for a locally opened coordinator, each shard store's I/O
// instruments (shared by name, so chunkstore counters aggregate across
// shards exactly like the flat layout).
func (c *Coordinator) Instrument(reg *obs.Registry) {
	c.mDegraded = reg.Counter("shard_degraded_total")
	c.mDegradedDeadline = reg.Counter(`shard_degraded_cause_total{cause="deadline"}`)
	c.mDegradedError = reg.Counter(`shard_degraded_cause_total{cause="error"}`)
	c.mHedged = reg.Counter("shard_hedged_total")
	c.mFailover = reg.Counter("shard_failover_total")
	c.mSkip = make([]*obs.Counter, len(c.replicas))
	for i := range c.replicas {
		c.mSkip[i] = reg.Counter(fmt.Sprintf("shard_skip_total{shard=\"%d\"}", i))
	}
	reg.Gauge("uei_shards").SetInt(int64(len(c.replicas)))
	reg.Gauge("uei_shard_replicas").SetInt(int64(c.meta.Replication))
	for _, s := range c.shards {
		for i := range s.Parts {
			s.Parts[i].Store.Instrument(reg)
		}
	}
}

// recordDegraded counts one shard skip, attributing the cause (deadline
// miss vs shard error) and the shard identity. Nil-safe before
// Instrument.
func (c *Coordinator) recordDegraded(id int, err error) {
	c.mDegraded.Inc()
	if errors.Is(err, context.DeadlineExceeded) {
		c.mDegradedDeadline.Inc()
	} else {
		c.mDegradedError.Inc()
	}
	if id >= 0 && id < len(c.mSkip) {
		c.mSkip[id].Inc()
	}
}

// runAttempt applies the per-attempt deadline and fault hook around one
// backend call. On a traced context it wraps the call in a "shard_<op>"
// span annotated with the shard id, the replica, the deadline, and the
// outcome (ok / timeout / error / cancelled) — the per-shard fan-out
// level of a step trace, one span per replica attempt.
func runAttempt[T any](c *Coordinator, ctx context.Context, shardID, replica int, op string, b Backend, fn func(ctx context.Context, b Backend) (T, error)) (T, error) {
	var span *obs.Span
	sctx := ctx
	if obs.HasTrace(ctx) {
		sctx, span = obs.StartSpan(ctx, "shard_"+op)
	}
	d := time.Duration(c.deadline.Load())
	if d > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(sctx, d)
		defer cancel()
	}
	var v T
	var err error
	if h := c.hook.Load(); h != nil {
		err = (*h)(sctx, shardID, replica, op)
	}
	if err == nil {
		v, err = fn(sctx, b)
	}
	if span != nil {
		span.SetOutcome(shardOutcome(ctx, err))
		attrs := map[string]float64{"shard": float64(shardID), "replica": float64(replica)}
		if d > 0 {
			attrs["deadline_ms"] = float64(d) / float64(time.Millisecond)
		}
		span.End(attrs)
	}
	return v, err
}

// shardOutcome classifies a shard attempt result for span annotation.
// callerCtx is the context *outside* the per-attempt deadline: when it is
// cancelled the caller gave up (or a hedged sibling already won), which is
// not shard degradation.
func shardOutcome(callerCtx context.Context, err error) string {
	switch {
	case err == nil:
		return "ok"
	case callerCtx.Err() != nil:
		return "cancelled"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	default:
		return "error"
	}
}

// attemptResult carries one replica attempt's answer.
type attemptResult[T any] struct {
	v       T
	replica int
	err     error
}

// callShard runs one operation against shard shardID's replicas with
// failover and hedging: the primary goes first; an error fails over to
// the next replica immediately; with a hedge delay configured, a second
// replica is raced after the delay even without an error. The first
// success wins and the deferred cancel stops the losers — each attempt
// writes to a buffered channel, so losers terminate on their own (no
// goroutine leaks). The error return means every replica failed
// (ErrReplicaExhausted in the chain) or the caller's ctx ended.
func callShard[T any](c *Coordinator, ctx context.Context, shardID int, op string, fn func(ctx context.Context, b Backend) (T, error)) (T, error) {
	var zero T
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	reps := c.replicas[shardID]
	attemptCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	results := make(chan attemptResult[T], len(reps))
	launched := 0
	launch := func() {
		replica := launched
		launched++
		b := reps[replica]
		go func() {
			v, err := runAttempt(c, attemptCtx, shardID, replica, op, b, fn)
			results <- attemptResult[T]{v, replica, err}
		}()
	}
	launch()
	var hedgeC <-chan time.Time
	if hd := time.Duration(c.hedgeDelay.Load()); hd > 0 && len(reps) > 1 {
		t := time.NewTimer(hd)
		defer t.Stop()
		hedgeC = t.C
	}
	var errs []error
	finished := 0
	for {
		select {
		case <-hedgeC:
			hedgeC = nil
			if launched < len(reps) {
				c.mHedged.Inc()
				launch()
			}
		case r := <-results:
			if r.err == nil {
				return r.v, nil
			}
			finished++
			if ctx.Err() != nil {
				// The caller gave up; attempt failures racing the
				// cancellation are not replica failures.
				return zero, ctx.Err()
			}
			errs = append(errs, fmt.Errorf("replica %d: %w", r.replica, r.err))
			if launched < len(reps) {
				// Fail over immediately: an error is a stronger signal
				// than the hedge timer.
				c.mFailover.Inc()
				launch()
			} else if finished == launched {
				return zero, errors.Join(ErrReplicaExhausted, errors.Join(errs...))
			}
		}
	}
}

// scatterGather fans fn out to every shard — one callShard per shard, so
// each fan-out leg gets replication, failover, and hedging — and applies
// the successful results in the single gather goroutine (apply needs no
// locking). In degradable mode (strict=false) shards whose replicas all
// failed are recorded and skipped; in strict mode the first such shard
// aborts. Cancellation of ctx propagates to every in-flight attempt, and
// buffered channels at both levels guarantee goroutine termination even
// when scatterGather returns early.
func scatterGather[T any](c *Coordinator, ctx context.Context, op string, strict bool, fn func(ctx context.Context, shardID int, b Backend) (T, error), apply func(shardID int, v T)) (degraded []int, err error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	scatterCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	type shardAnswer struct {
		id  int
		v   T
		err error
	}
	results := make(chan shardAnswer, len(c.replicas))
	for id := range c.replicas {
		go func(id int) {
			v, err := callShard(c, scatterCtx, id, op, func(sctx context.Context, b Backend) (T, error) {
				return fn(sctx, id, b)
			})
			results <- shardAnswer{id, v, err}
		}(id)
	}
	for range c.replicas {
		r := <-results
		if r.err == nil {
			if apply != nil {
				apply(r.id, r.v)
			}
			continue
		}
		if ctx.Err() != nil {
			// The caller cancelled: that is not shard degradation. The
			// deferred cancelAll stops any stragglers.
			return nil, ctx.Err()
		}
		if strict {
			return nil, fmt.Errorf("shard %d %s: %w", r.id, op, errors.Join(ErrShardUnavailable, r.err))
		}
		c.recordDegraded(r.id, r.err)
		degraded = append(degraded, r.id)
	}
	sort.Ints(degraded)
	if len(degraded) == len(c.replicas) {
		return degraded, fmt.Errorf("shard: all %d shards unavailable for %s: %w", len(c.replicas), op, ErrShardUnavailable)
	}
	return degraded, nil
}

// scatter is the error-only form of scatterGather, kept as the test seam
// for the fan-out semantics.
func (c *Coordinator) scatter(ctx context.Context, op string, strict bool, fn func(ctx context.Context, b Backend) error) ([]int, error) {
	return scatterGather(c, ctx, op, strict, func(sctx context.Context, _ int, b Backend) (struct{}, error) {
		return struct{}{}, fn(sctx, b)
	}, nil)
}

// ScatterStrict runs fn on every shard concurrently (with per-shard
// replication and hedging) and fails on the first shard whose replicas
// are all unavailable.
func (c *Coordinator) ScatterStrict(ctx context.Context, op string, fn func(ctx context.Context, b Backend) error) error {
	_, err := c.scatter(ctx, op, true, fn)
	return err
}

// ScoreAll recomputes the uncertainty of every symbolic index point into
// unc (indexed by global cell id), scattering per-shard scoring across
// backends. Each shard's scores come back aligned with its owned-cell
// list and are published into unc only on success, so a shard that fails
// mid-pass leaves its slots untouched (fully stale, never torn) — and the
// values are byte-identical to a flat scoring pass. Shards whose replicas
// all missed the deadline or failed are skipped and returned as degraded,
// sorted ascending; callers must exclude their cells from selection until
// the next successful pass. An error is returned only when the caller's
// ctx is cancelled or every shard failed.
func (c *Coordinator) ScoreAll(ctx context.Context, model learn.Classifier, unc []float64) (degraded []int, err error) {
	return c.ScoreAllPass(ctx, model, unc, ScorePass{})
}

// ScorePass parameterizes a coordinator scoring pass: the kernel routing
// flag, the optional global dirty-cell subset, and the optional d_k²
// side-channel of the exact incremental rescorer.
type ScorePass struct {
	// Kernel routes every shard's scoring through the columnar block path
	// (bit-identical results; the flag exists for the escape hatch).
	Kernel bool
	// Dirty, when non-nil, lists the global cell ids to rescore, ascending.
	// Shards owning none of them are not contacted at all. Nil rescores
	// every cell.
	Dirty []int
	// NeedDK asks every shard for per-cell k-th-neighbor squared distances
	// (DWKNN + Kernel only); they are published into DK2, indexed by global
	// cell id, which must then be non-nil and NumCells long.
	NeedDK bool
	DK2    []float64
}

// ScoreAllPass is ScoreAll with an explicit pass spec — the incremental
// rescorer's entry point. Publication remains success-only and per shard:
// only slots of cells actually scored (all owned, or the shard's dirty
// subset) are written, so degraded shards leave stale-but-untorn scores
// exactly as before.
func (c *Coordinator) ScoreAllPass(ctx context.Context, model learn.Classifier, unc []float64, pass ScorePass) (degraded []int, err error) {
	if len(unc) != c.meta.Grid.NumCells() {
		return nil, fmt.Errorf("shard: uncertainty slice has %d slots, grid has %d cells", len(unc), c.meta.Grid.NumCells())
	}
	if pass.NeedDK && len(pass.DK2) != c.meta.Grid.NumCells() {
		return nil, fmt.Errorf("shard: dk² slice has %d slots, grid has %d cells", len(pass.DK2), c.meta.Grid.NumCells())
	}
	// Route the global dirty set to per-shard owned-local index lists.
	// Global ids ascend and cellLocal is monotone within a shard, so each
	// shard's list is ascending, as the Backend contract requires.
	var dirtyByShard [][]int
	if pass.Dirty != nil {
		dirtyByShard = make([][]int, len(c.replicas))
		for _, cell := range pass.Dirty {
			if cell < 0 || cell >= len(c.ownerByCell) {
				return nil, fmt.Errorf("shard: dirty cell %d out of %d grid cells", cell, len(c.ownerByCell))
			}
			o := c.ownerByCell[cell]
			dirtyByShard[o] = append(dirtyByShard[o], c.cellLocal[cell])
		}
	}
	// Wrap the model so remote backends serialize it once per pass, not
	// once per shard call (or hedged duplicate).
	model = &modelBlob{Classifier: model}
	return scatterGather(c, ctx, OpScore, false,
		func(sctx context.Context, id int, b Backend) (ScoreResult, error) {
			spec := ScoreSpec{NeedDK: pass.NeedDK, Kernel: pass.Kernel}
			want := len(c.ownedCells[id])
			if dirtyByShard != nil {
				spec.Dirty = dirtyByShard[id]
				want = len(spec.Dirty)
			}
			if want == 0 {
				// Nothing to score here: an empty shard, or no dirty cells
				// in it — the backend is not contacted.
				return ScoreResult{}, nil
			}
			res, err := b.ScoreAll(sctx, model, spec)
			if err != nil {
				return ScoreResult{}, err
			}
			if len(res.Scores) != want {
				return ScoreResult{}, fmt.Errorf("shard %d returned %d scores for %d requested cells", id, len(res.Scores), want)
			}
			if pass.NeedDK && len(res.DK2) != want {
				return ScoreResult{}, fmt.Errorf("shard %d returned %d dk² bounds for %d requested cells", id, len(res.DK2), want)
			}
			return res, nil
		},
		func(id int, res ScoreResult) {
			if dirtyByShard != nil {
				for i, li := range dirtyByShard[id] {
					cell := c.ownedCells[id][li]
					unc[cell] = res.Scores[i]
					if pass.NeedDK {
						pass.DK2[cell] = res.DK2[i]
					}
				}
				return
			}
			for i, cell := range c.ownedCells[id] {
				unc[cell] = res.Scores[i]
				if pass.NeedDK {
					pass.DK2[cell] = res.DK2[i]
				}
			}
		})
}

// lessUncertain is the selection order: higher uncertainty first, lower
// cell id breaking ties — identical to the flat index's comparator, so
// the merged global top-k matches a flat top-k exactly.
func lessUncertain(a, b CellScore) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Cell < b.Cell
}

// MostUncertain returns the k most uncertain cells, fanning per-shard
// top-k selection across backends and merging with the flat comparator.
// Shards listed in skip (the degraded set from the latest ScoreAll) are
// excluded entirely — their scores are stale and their backends are not
// contacted. Shards that fail the top-k call itself are skipped for this
// selection and returned in degraded. The result can be shorter than k
// when skipping leaves fewer candidates.
func (c *Coordinator) MostUncertain(ctx context.Context, unc []float64, k int, skip []int) (cells []grid.CellID, degraded []int, err error) {
	if len(unc) != c.meta.Grid.NumCells() {
		return nil, nil, fmt.Errorf("shard: uncertainty slice has %d slots, grid has %d cells", len(unc), c.meta.Grid.NumCells())
	}
	if k < 1 {
		k = 1
	}
	skipSet := make(map[int]bool, len(skip))
	for _, s := range skip {
		skipSet[s] = true
	}
	active := make([]int, 0, len(c.replicas))
	for id := range c.replicas {
		if !skipSet[id] {
			active = append(active, id)
		}
	}
	if len(active) == 0 {
		return nil, nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	scatterCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	type topkAnswer struct {
		id  int
		top []CellScore
		err error
	}
	results := make(chan topkAnswer, len(active))
	for _, id := range active {
		go func(id int) {
			top, err := callShard(c, scatterCtx, id, OpTopK, func(sctx context.Context, b Backend) ([]CellScore, error) {
				owned := c.ownedCells[id]
				if len(owned) == 0 {
					return nil, nil
				}
				// Per-shard local top-k: each shard's candidate list is
				// its k best owned cells, so the union provably contains
				// the global top-k.
				scores := make([]float64, len(owned))
				for i, cell := range owned {
					scores[i] = unc[cell]
				}
				return b.MostUncertain(sctx, scores, k)
			})
			results <- topkAnswer{id, top, err}
		}(id)
	}
	var merged []CellScore
	for range active {
		r := <-results
		if r.err == nil {
			merged = append(merged, r.top...)
			continue
		}
		if ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		c.recordDegraded(r.id, r.err)
		degraded = append(degraded, r.id)
	}
	sort.Ints(degraded)
	if len(degraded) == len(active) {
		return nil, degraded, fmt.Errorf("shard: all %d shards unavailable for %s: %w", len(active), OpTopK, ErrShardUnavailable)
	}
	sort.Slice(merged, func(i, j int) bool { return lessUncertain(merged[i], merged[j]) })
	if len(merged) > k {
		merged = merged[:k]
	}
	cells = make([]grid.CellID, len(merged))
	for i, m := range merged {
		cells[i] = m.Cell
	}
	return cells, degraded, nil
}

// topKOwned selects the k best of one shard's owned cells by insertion
// into a bounded slice (k is tiny on the hot path: the winner and a
// runner-up). scores is aligned with cells.
func topKOwned(cells []grid.CellID, scores []float64, k int) []CellScore {
	if k > len(cells) {
		k = len(cells)
	}
	if k < 1 {
		return nil
	}
	best := make([]CellScore, 0, k)
	for i, cell := range cells {
		cs := CellScore{Cell: cell, Score: scores[i]}
		if len(best) == k && !lessUncertain(cs, best[k-1]) {
			continue
		}
		j := len(best)
		if len(best) < k {
			best = append(best, cs)
		} else {
			j = k - 1
		}
		for j > 0 && lessUncertain(cs, best[j-1]) {
			best[j] = best[j-1]
			j--
		}
		best[j] = cs
	}
	return best
}

// LoadCell reconstructs a cell's tuples from its owning shard (first
// healthy replica), with row ids remapped to global. Rows come back
// sorted by global id (local and global order agree within a shard). A
// shard whose replicas all fail yields an ErrShardUnavailable-wrapped
// error and counts toward shard_degraded_total; callers degrade
// (runner-up cell, resident region) rather than failing the step.
func (c *Coordinator) LoadCell(ctx context.Context, cell grid.CellID) (ids []uint32, vals [][]float64, entriesVisited int, err error) {
	owner, err := c.OwnerOfCell(cell)
	if err != nil {
		return nil, nil, 0, err
	}
	type loaded struct {
		ids     []uint32
		vals    [][]float64
		entries int
	}
	r, err := callShard(c, ctx, owner, OpLoad, func(sctx context.Context, b Backend) (loaded, error) {
		ids, vals, entries, err := b.LoadCell(sctx, cell)
		return loaded{ids, vals, entries}, err
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, nil, 0, ctx.Err()
		}
		c.recordDegraded(owner, err)
		return nil, nil, 0, fmt.Errorf("shard %d %s: %w", owner, OpLoad, errors.Join(ErrShardUnavailable, err))
	}
	return r.ids, r.vals, r.entries, nil
}

// FetchRows reconstructs the tuples with the given global ids, scattering
// to every shard (each returns the subset it holds) and merging. It
// matches the flat store's FetchRows contract: duplicates are collapsed,
// the result is sorted by (global) id, and out-of-range ids are an error.
// Sampling must see every shard, so this path is strict — a shard whose
// replicas are all unavailable fails the call.
func (c *Coordinator) FetchRows(ctx context.Context, ids []uint32) ([]chunkstore.MergedRow, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	uniq := append([]uint32(nil), ids...)
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
	n := 0
	for i, id := range uniq {
		if i > 0 && id == uniq[n-1] {
			continue
		}
		uniq[n] = id
		n++
	}
	uniq = uniq[:n]
	if int(uniq[len(uniq)-1]) >= c.meta.RowCount {
		return nil, fmt.Errorf("shard: row %d out of range [0,%d)", uniq[len(uniq)-1], c.meta.RowCount)
	}
	perShard := make([][]chunkstore.MergedRow, len(c.replicas))
	_, err := scatterGather(c, ctx, OpFetch, true,
		func(sctx context.Context, id int, b Backend) ([]chunkstore.MergedRow, error) {
			return b.FetchRows(sctx, uniq)
		},
		func(id int, rows []chunkstore.MergedRow) {
			perShard[id] = rows
		})
	if err != nil {
		return nil, err
	}
	var out []chunkstore.MergedRow
	for _, rows := range perShard {
		out = append(out, rows...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	if len(out) != len(uniq) {
		return nil, fmt.Errorf("shard: fetched %d of %d requested rows; store is inconsistent", len(out), len(uniq))
	}
	return out, nil
}

// Retrieve runs the marked-segment scan on every shard and merges the
// fully reconstructed rows under global ids, ascending. Retrieval is the
// final answer, so the scatter is strict: a shard whose replicas are all
// unavailable fails the call rather than silently dropping its rows.
// entries sums the posting entries every shard visited.
func (c *Coordinator) Retrieve(ctx context.Context, marked [][]bool) (rows []RetrievedRow, entries int, err error) {
	type scanned struct {
		rows    []RetrievedRow
		entries int
	}
	_, err = scatterGather(c, ctx, OpRetrieve, true,
		func(sctx context.Context, id int, b Backend) (scanned, error) {
			r, n, err := b.Retrieve(sctx, marked)
			return scanned{r, n}, err
		},
		func(id int, s scanned) {
			rows = append(rows, s.rows...)
			entries += s.entries
		})
	if err != nil {
		return nil, 0, err
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	return rows, entries, nil
}

// intersectLocal returns the local ids (positions in idmap) of the global
// ids present in this shard, by merging the two sorted sequences.
func intersectLocal(globalIDs []uint32, idmap []uint32) []uint32 {
	var local []uint32
	li := 0
	for _, g := range globalIDs {
		for li < len(idmap) && idmap[li] < g {
			li++
		}
		if li == len(idmap) {
			break
		}
		if idmap[li] == g {
			local = append(local, uint32(li))
			li++
		}
	}
	return local
}

// CostEstimate returns the bytes and posting entries loading the cell
// would read from its owning shard (the flat Mapping.CostEstimate
// equivalent), trying replicas in order.
func (c *Coordinator) CostEstimate(cell grid.CellID) (bytes int64, entries int, err error) {
	owner, err := c.OwnerOfCell(cell)
	if err != nil {
		return 0, 0, err
	}
	var errs []error
	var prev Backend
	for _, b := range c.replicas[owner] {
		if b == prev {
			continue // in-process replicas share one backend
		}
		prev = b
		bytes, entries, err = b.CostEstimate(context.Background(), cell)
		if err == nil {
			return bytes, entries, nil
		}
		errs = append(errs, err)
	}
	return 0, 0, fmt.Errorf("shard %d estimate: %w", owner, errors.Join(ErrShardUnavailable, ErrReplicaExhausted, errors.Join(errs...)))
}
