package shard

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/grid"
	"github.com/uei-db/uei/internal/iothrottle"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/obs"
	"github.com/uei-db/uei/internal/pool"
	"github.com/uei-db/uei/internal/vec"
)

// ErrShardUnavailable marks a shard that missed its deadline or failed an
// operation. Callers that can degrade (the per-iteration paths) treat it
// as "skip this shard for now"; strict paths surface it. Match with
// errors.Is.
var ErrShardUnavailable = errors.New("shard unavailable")

// Operation names passed to the fault hook and used in error messages.
const (
	OpScore    = "score"
	OpLoad     = "load"
	OpFetch    = "fetch"
	OpRetrieve = "retrieve"
)

// FaultHook intercepts every shard operation before it runs — the test
// seam for forcing timeouts and failures. Hooks must honor ctx: the
// per-shard deadline and caller cancellation reach a stuck shard only
// through it.
type FaultHook func(ctx context.Context, shard int, op string) error

// Shard is one self-contained slice of the sharded store.
type Shard struct {
	// ID is the shard index in [0, S).
	ID int
	// Store is the shard's private flat chunk store over its rows
	// (local ids 0..n-1).
	Store *chunkstore.Store
	// Mapping resolves global grid cells to this store's chunks.
	Mapping *grid.Mapping
	// IDMap translates local row ids to global ones; strictly ascending,
	// so local id order and global id order agree.
	IDMap []uint32
	// Cells lists the grid cells this shard owns, ascending.
	Cells []grid.CellID
}

// OpenOptions configures Open.
type OpenOptions struct {
	// Limiter, when non-nil, meters chunk reads of every shard store
	// (one shared limiter — the shards model one storage device).
	Limiter *iothrottle.Limiter
	// Workers bounds each shard store's internal read fan-out.
	Workers int
	// Pool runs the CPU-side fan-out (scoring, top-k). Shards share the
	// caller's pool rather than owning threads; nil falls back to an
	// inline single-worker pool.
	Pool *pool.Pool
	// Deadline bounds every per-shard operation; a shard that misses it
	// is skipped for the iteration (degraded) on degradable paths. Zero
	// disables the deadline.
	Deadline time.Duration
	// BlockCache, when non-nil, is shared across all shard stores; each
	// store is installed with a distinct cache key prefix so identical
	// chunk file names in different shards cannot collide.
	BlockCache *chunkstore.BlockCache
}

// Coordinator fans per-iteration work out to every shard and merges the
// answers. With all shards healthy its results are exactly those of a
// flat store over the same dataset; with some shards degraded it returns
// the healthy subset and reports which shards were skipped.
//
// The coordinator is safe for concurrent use by multiple sessions once
// opened; SetFaultHook and SetDeadline may be called at any time.
type Coordinator struct {
	dir    string
	man    *Manifest
	grid   *grid.Grid
	shards []*Shard
	// ownerByCell[cell] is the owning shard of each grid cell.
	ownerByCell []int
	// ownedCenters[s] holds the symbolic index points of shard s's cells,
	// aligned with shards[s].Cells.
	ownedCenters [][]vec.Point
	pool         *pool.Pool
	cache        *chunkstore.BlockCache

	deadline atomic.Int64 // nanoseconds; 0 = none
	hook     atomic.Pointer[FaultHook]

	// mDegraded counts shard skips (shard_degraded_total); nil-safe. The
	// cause-split counters attribute each skip to a deadline miss vs a
	// shard error, and mSkip[i] counts skips of shard i specifically.
	mDegraded         *obs.Counter
	mDegradedDeadline *obs.Counter
	mDegradedError    *obs.Counter
	mSkip             []*obs.Counter
}

// Open loads a sharded store built by Build. A flat store directory fails
// with chunkstore.ErrLayoutMismatch.
func Open(ctx context.Context, dir string, opts OpenOptions) (*Coordinator, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	man, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	g, err := grid.New(vec.NewBox(man.MinValues, man.MaxValues), man.SegmentsPerDim)
	if err != nil {
		return nil, err
	}
	owners, err := cellOwners(g, man.Shards)
	if err != nil {
		return nil, err
	}
	p := opts.Pool
	if p == nil {
		p = pool.New(1)
	}
	c := &Coordinator{
		dir:          dir,
		man:          man,
		grid:         g,
		shards:       make([]*Shard, man.Shards),
		ownerByCell:  owners,
		ownedCenters: make([][]vec.Point, man.Shards),
		pool:         p,
		cache:        opts.BlockCache,
	}
	c.deadline.Store(int64(opts.Deadline))
	for s := 0; s < man.Shards; s++ {
		sdir := filepath.Join(dir, ShardDirName(s))
		st, err := chunkstore.Open(sdir, opts.Limiter)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		if st.RowCount() != man.ShardRowCounts[s] {
			return nil, fmt.Errorf("shard %d: store has %d rows, manifest says %d", s, st.RowCount(), man.ShardRowCounts[s])
		}
		if st.Dims() != len(man.Columns) {
			return nil, fmt.Errorf("shard %d: store has %d dims, manifest says %d", s, st.Dims(), len(man.Columns))
		}
		st.SetWorkers(opts.Workers)
		if opts.BlockCache != nil {
			st.SetCacheKeyPrefix(fmt.Sprintf("s%03d/", s))
			st.SetBlockCache(opts.BlockCache)
		}
		mp, err := grid.BuildMapping(g, st)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		ids, err := loadIDMap(sdir)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		if len(ids) != st.RowCount() {
			return nil, fmt.Errorf("shard %d: idmap has %d entries, store has %d rows", s, len(ids), st.RowCount())
		}
		c.shards[s] = &Shard{ID: s, Store: st, Mapping: mp, IDMap: ids}
	}
	centers := g.Centers()
	for id, o := range owners {
		c.shards[o].Cells = append(c.shards[o].Cells, grid.CellID(id))
		c.ownedCenters[o] = append(c.ownedCenters[o], centers[id])
	}
	return c, nil
}

// Grid returns the global grid (identical to the flat layout's grid over
// the same dataset).
func (c *Coordinator) Grid() *grid.Grid { return c.grid }

// NumShards returns S.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// Shards returns the shard slice (read-only; exposed for inspection and
// tests).
func (c *Coordinator) Shards() []*Shard { return c.shards }

// Manifest returns the top-level manifest (read-only).
func (c *Coordinator) Manifest() *Manifest { return c.man }

// Bounds returns the global per-dimension value bounds.
func (c *Coordinator) Bounds() vec.Box {
	return vec.NewBox(c.man.MinValues, c.man.MaxValues)
}

// RowCount returns the number of tuples across all shards.
func (c *Coordinator) RowCount() int { return c.man.RowCount }

// Columns returns the attribute names in dimension order (read-only).
func (c *Coordinator) Columns() []string { return c.man.Columns }

// Dims returns the dimensionality.
func (c *Coordinator) Dims() int { return len(c.man.Columns) }

// TotalBytes sums the on-disk payload of every shard.
func (c *Coordinator) TotalBytes() int64 {
	var n int64
	for _, s := range c.shards {
		n += s.Store.TotalBytes()
	}
	return n
}

// BlockCache returns the shared decoded-chunk cache, or nil.
func (c *Coordinator) BlockCache() *chunkstore.BlockCache { return c.cache }

// IOStats sums cumulative bytes and chunks read across shard stores.
func (c *Coordinator) IOStats() (bytes int64, chunks int64) {
	for _, s := range c.shards {
		b, ch := s.Store.IOStats()
		bytes += b
		chunks += ch
	}
	return bytes, chunks
}

// ResetIOStats zeroes every shard store's I/O counters.
func (c *Coordinator) ResetIOStats() {
	for _, s := range c.shards {
		s.Store.ResetIOStats()
	}
}

// OwnerOfCell returns the shard owning a cell.
func (c *Coordinator) OwnerOfCell(cell grid.CellID) (int, error) {
	if cell < 0 || int(cell) >= len(c.ownerByCell) {
		return 0, fmt.Errorf("shard: cell %d out of range [0,%d)", cell, len(c.ownerByCell))
	}
	return c.ownerByCell[cell], nil
}

// SetDeadline adjusts the per-shard operation deadline (0 disables).
func (c *Coordinator) SetDeadline(d time.Duration) { c.deadline.Store(int64(d)) }

// SetFaultHook installs (or, with nil, removes) the per-operation fault
// hook. Test seam for degradation scenarios.
func (c *Coordinator) SetFaultHook(h FaultHook) {
	if h == nil {
		c.hook.Store(nil)
		return
	}
	c.hook.Store(&h)
}

// Instrument registers shard metrics — shard_degraded_total, its
// cause-split family shard_degraded_cause_total{cause=...}, the per-shard
// shard_skip_total{shard=i} set, the uei_shards gauge — and each shard
// store's I/O instruments (shared by name, so chunkstore counters
// aggregate across shards exactly like the flat layout).
func (c *Coordinator) Instrument(reg *obs.Registry) {
	c.mDegraded = reg.Counter("shard_degraded_total")
	c.mDegradedDeadline = reg.Counter(`shard_degraded_cause_total{cause="deadline"}`)
	c.mDegradedError = reg.Counter(`shard_degraded_cause_total{cause="error"}`)
	c.mSkip = make([]*obs.Counter, len(c.shards))
	for i := range c.shards {
		c.mSkip[i] = reg.Counter(fmt.Sprintf("shard_skip_total{shard=\"%d\"}", i))
	}
	reg.Gauge("uei_shards").SetInt(int64(len(c.shards)))
	for _, s := range c.shards {
		s.Store.Instrument(reg)
	}
}

// recordDegraded counts one shard skip, attributing the cause (deadline
// miss vs shard error) and the shard identity. Nil-safe before
// Instrument.
func (c *Coordinator) recordDegraded(id int, err error) {
	c.mDegraded.Inc()
	if errors.Is(err, context.DeadlineExceeded) {
		c.mDegradedDeadline.Inc()
	} else {
		c.mDegradedError.Inc()
	}
	if id >= 0 && id < len(c.mSkip) {
		c.mSkip[id].Inc()
	}
}

type shardResult struct {
	id  int
	err error
}

// runShardOp applies the per-shard deadline and fault hook around one
// operation. On a traced context it wraps the operation in a
// "shard_<op>" span annotated with the shard id, the deadline, and the
// outcome (ok / timeout / error / cancelled) — the per-shard fan-out
// level of a step trace.
func (c *Coordinator) runShardOp(ctx context.Context, s *Shard, op string, fn func(ctx context.Context, s *Shard) error) error {
	var span *obs.Span
	sctx := ctx
	if obs.HasTrace(ctx) {
		sctx, span = obs.StartSpan(ctx, "shard_"+op)
	}
	d := time.Duration(c.deadline.Load())
	if d > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(sctx, d)
		defer cancel()
	}
	var err error
	if h := c.hook.Load(); h != nil {
		err = (*h)(sctx, s.ID, op)
	}
	if err == nil {
		err = fn(sctx, s)
	}
	if span != nil {
		span.SetOutcome(shardOutcome(ctx, err))
		attrs := map[string]float64{"shard": float64(s.ID)}
		if d > 0 {
			attrs["deadline_ms"] = float64(d) / float64(time.Millisecond)
		}
		span.End(attrs)
	}
	return err
}

// shardOutcome classifies a shard operation result for span annotation.
// callerCtx is the context *outside* the per-shard deadline: when it is
// cancelled the caller gave up, which is not shard degradation.
func shardOutcome(callerCtx context.Context, err error) string {
	switch {
	case err == nil:
		return "ok"
	case callerCtx.Err() != nil:
		return "cancelled"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	default:
		return "error"
	}
}

// scatter fans fn out to every shard, one goroutine per shard, each under
// the per-shard deadline, and gathers all results. In degradable mode
// (strict=false) failed shards are collected and skipped; in strict mode
// the first failure aborts. Cancellation of ctx propagates to every
// in-flight shard operation, and the buffered result channel guarantees
// the shard goroutines terminate (no leaks) even when scatter returns
// early on error.
func (c *Coordinator) scatter(ctx context.Context, op string, strict bool, fn func(ctx context.Context, s *Shard) error) (degraded []int, err error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	scatterCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	results := make(chan shardResult, len(c.shards))
	for _, s := range c.shards {
		go func(s *Shard) {
			results <- shardResult{s.ID, c.runShardOp(scatterCtx, s, op, fn)}
		}(s)
	}
	for range c.shards {
		r := <-results
		if r.err == nil {
			continue
		}
		if ctx.Err() != nil {
			// The caller cancelled: that is not shard degradation. The
			// deferred cancelAll stops any stragglers.
			return nil, ctx.Err()
		}
		if strict {
			return nil, fmt.Errorf("shard %d %s: %w", r.id, op, errors.Join(ErrShardUnavailable, r.err))
		}
		c.recordDegraded(r.id, r.err)
		degraded = append(degraded, r.id)
	}
	sort.Ints(degraded)
	if len(degraded) == len(c.shards) {
		return degraded, fmt.Errorf("shard: all %d shards unavailable for %s: %w", len(c.shards), op, ErrShardUnavailable)
	}
	return degraded, nil
}

// ScatterStrict runs fn on every shard concurrently and fails on the
// first shard error — the all-or-nothing fan-out behind result retrieval.
func (c *Coordinator) ScatterStrict(ctx context.Context, op string, fn func(ctx context.Context, s *Shard) error) error {
	_, err := c.scatter(ctx, op, true, fn)
	return err
}

// ScoreAll recomputes the uncertainty of every symbolic index point into
// unc (indexed by global cell id), scattering per-shard scoring through
// the worker pool. Each shard writes only the slots of the cells it owns,
// so shard work is disjoint and the values are byte-identical to a flat
// scoring pass. Shards that miss the deadline or fail are skipped — their
// slots keep stale values — and returned as degraded, sorted ascending;
// callers must exclude their cells from selection until the next
// successful pass. An error is returned only when the caller's ctx is
// cancelled or every shard failed.
func (c *Coordinator) ScoreAll(ctx context.Context, model learn.Classifier, unc []float64) (degraded []int, err error) {
	if len(unc) != c.grid.NumCells() {
		return nil, fmt.Errorf("shard: uncertainty slice has %d slots, grid has %d cells", len(unc), c.grid.NumCells())
	}
	return c.scatter(ctx, OpScore, false, func(sctx context.Context, s *Shard) error {
		centers := c.ownedCenters[s.ID]
		if len(centers) == 0 {
			return nil
		}
		// Score into a private buffer and publish only on success, so a
		// shard that fails mid-pass leaves unc untouched (fully stale,
		// never torn).
		buf := make([]float64, len(centers))
		if err := c.pool.Do(sctx, len(centers), func(lo, hi int) error {
			return learn.UncertaintiesInto(sctx, model, centers[lo:hi], buf[lo:hi])
		}); err != nil {
			return err
		}
		for i, cell := range s.Cells {
			unc[cell] = buf[i]
		}
		return nil
	})
}

// cellScore pairs a cell with its uncertainty during top-k merges.
type cellScore struct {
	cell  grid.CellID
	score float64
}

// lessUncertain is the selection order: higher uncertainty first, lower
// cell id breaking ties — identical to the flat index's comparator, so
// the merged global top-k matches a flat top-k exactly.
func lessUncertain(a, b cellScore) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.cell < b.cell
}

// MostUncertain returns the k most uncertain cells, fanning per-shard
// local top-k selection through the worker pool and merging. Shards
// listed in skip (the degraded set from the latest ScoreAll) are excluded
// entirely: their scores are stale. The result can be shorter than k when
// skipping leaves fewer candidates.
func (c *Coordinator) MostUncertain(ctx context.Context, unc []float64, k int, skip []int) ([]grid.CellID, error) {
	if len(unc) != c.grid.NumCells() {
		return nil, fmt.Errorf("shard: uncertainty slice has %d slots, grid has %d cells", len(unc), c.grid.NumCells())
	}
	if k < 1 {
		k = 1
	}
	skipSet := make(map[int]bool, len(skip))
	for _, s := range skip {
		skipSet[s] = true
	}
	// Per-shard local top-k: each shard's candidate list is its k best
	// owned cells, so the union provably contains the global top-k.
	local := make([][]cellScore, len(c.shards))
	err := c.pool.Do(ctx, len(c.shards), func(lo, hi int) error {
		for s := lo; s < hi; s++ {
			if skipSet[s] {
				continue
			}
			local[s] = topKCells(unc, c.shards[s].Cells, k)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var merged []cellScore
	for _, l := range local {
		merged = append(merged, l...)
	}
	sort.Slice(merged, func(i, j int) bool { return lessUncertain(merged[i], merged[j]) })
	if len(merged) > k {
		merged = merged[:k]
	}
	out := make([]grid.CellID, len(merged))
	for i, m := range merged {
		out[i] = m.cell
	}
	return out, nil
}

// topKCells selects the k best cells of one shard by insertion into a
// bounded slice (k is tiny on the hot path: the winner and a runner-up).
func topKCells(unc []float64, cells []grid.CellID, k int) []cellScore {
	if k > len(cells) {
		k = len(cells)
	}
	best := make([]cellScore, 0, k)
	for _, cell := range cells {
		cs := cellScore{cell: cell, score: unc[cell]}
		if len(best) == k && !lessUncertain(cs, best[k-1]) {
			continue
		}
		i := len(best)
		if len(best) < k {
			best = append(best, cs)
		} else {
			i = k - 1
		}
		for i > 0 && lessUncertain(cs, best[i-1]) {
			best[i] = best[i-1]
			i--
		}
		best[i] = cs
	}
	return best
}

// LoadCell reconstructs a cell's tuples from its owning shard, remapping
// row ids to global. Rows come back sorted by global id (local and global
// order agree within a shard). A failing or slow owner yields an
// ErrShardUnavailable-wrapped error and counts toward
// shard_degraded_total; callers degrade (runner-up cell, resident region)
// rather than failing the step.
func (c *Coordinator) LoadCell(ctx context.Context, cell grid.CellID) (ids []uint32, vals [][]float64, entriesVisited int, err error) {
	owner, err := c.OwnerOfCell(cell)
	if err != nil {
		return nil, nil, 0, err
	}
	s := c.shards[owner]
	var rows []chunkstore.MergedRow
	err = c.withShard(ctx, s, OpLoad, func(sctx context.Context) error {
		box, err := c.grid.CellBox(cell)
		if err != nil {
			return err
		}
		chunks, err := s.Mapping.Chunks(cell)
		if err != nil {
			return err
		}
		rows, entriesVisited, err = s.Store.MergeChunks(sctx, box, chunks)
		return err
	})
	if err != nil {
		return nil, nil, 0, err
	}
	ids = make([]uint32, len(rows))
	vals = make([][]float64, len(rows))
	for i, r := range rows {
		ids[i] = s.IDMap[r.ID]
		vals[i] = r.Vals
	}
	return ids, vals, entriesVisited, nil
}

// withShard runs one single-shard operation under the deadline and fault
// hook, translating failures (other than caller cancellation) into
// degradation-classified errors.
func (c *Coordinator) withShard(ctx context.Context, s *Shard, op string, fn func(ctx context.Context) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	err := c.runShardOp(ctx, s, op, func(sctx context.Context, _ *Shard) error {
		return fn(sctx)
	})
	if err == nil {
		return nil
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	c.recordDegraded(s.ID, err)
	return fmt.Errorf("shard %d %s: %w", s.ID, op, errors.Join(ErrShardUnavailable, err))
}

// FetchRows reconstructs the tuples with the given global ids, scattering
// to the shards that hold them and merging. It matches the flat store's
// FetchRows contract: duplicates are collapsed, the result is sorted by
// (global) id, and out-of-range ids are an error. Sampling must see every
// shard, so this path is strict — a failing shard fails the call.
func (c *Coordinator) FetchRows(ctx context.Context, ids []uint32) ([]chunkstore.MergedRow, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	uniq := append([]uint32(nil), ids...)
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
	n := 0
	for i, id := range uniq {
		if i > 0 && id == uniq[n-1] {
			continue
		}
		uniq[n] = id
		n++
	}
	uniq = uniq[:n]
	if int(uniq[len(uniq)-1]) >= c.man.RowCount {
		return nil, fmt.Errorf("shard: row %d out of range [0,%d)", uniq[len(uniq)-1], c.man.RowCount)
	}
	perShard := make([][]chunkstore.MergedRow, len(c.shards))
	err := c.ScatterStrict(ctx, OpFetch, func(sctx context.Context, s *Shard) error {
		local := intersectLocal(uniq, s.IDMap)
		if len(local) == 0 {
			return nil
		}
		rows, err := s.Store.FetchRows(sctx, local)
		if err != nil {
			return err
		}
		for i := range rows {
			rows[i].ID = s.IDMap[rows[i].ID]
		}
		perShard[s.ID] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []chunkstore.MergedRow
	for _, rows := range perShard {
		out = append(out, rows...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	if len(out) != len(uniq) {
		return nil, fmt.Errorf("shard: fetched %d of %d requested rows; store is inconsistent", len(out), len(uniq))
	}
	return out, nil
}

// intersectLocal returns the local ids (positions in idmap) of the global
// ids present in this shard, by merging the two sorted sequences.
func intersectLocal(globalIDs []uint32, idmap []uint32) []uint32 {
	var local []uint32
	li := 0
	for _, g := range globalIDs {
		for li < len(idmap) && idmap[li] < g {
			li++
		}
		if li == len(idmap) {
			break
		}
		if idmap[li] == g {
			local = append(local, uint32(li))
			li++
		}
	}
	return local
}

// CostEstimate returns the bytes and posting entries loading the cell
// would read from its owning shard (the flat Mapping.CostEstimate
// equivalent).
func (c *Coordinator) CostEstimate(cell grid.CellID) (bytes int64, entries int, err error) {
	owner, err := c.OwnerOfCell(cell)
	if err != nil {
		return 0, 0, err
	}
	return c.shards[owner].Mapping.CostEstimate(cell)
}
