package shard

import (
	"context"
	"fmt"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/grid"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/pool"
	"github.com/uei-db/uei/internal/vec"
)

// LocalBackend adapts one in-process *Shard to the Backend interface —
// the transport-free implementation whose behavior is byte-identical to
// the pre-interface coordinator. Replicated local coordinators reuse one
// LocalBackend per shard (the underlying store is concurrency-safe), so
// hedged duplicate calls race only on immutable state.
type LocalBackend struct {
	shard *Shard
	g     *grid.Grid
	// cells and centers list the shard's owned cells ascending and their
	// symbolic index points, aligned.
	cells   []grid.CellID
	centers []vec.Point
	// pool shards CPU-side scoring; shared with the caller.
	pool *pool.Pool
}

// NewLocalBackend wraps a shard for in-process serving. cells/centers must
// be the shard's owned cells ascending with their grid centers, and p the
// worker pool scoring fans out on (nil falls back to an inline pool).
func NewLocalBackend(s *Shard, g *grid.Grid, cells []grid.CellID, centers []vec.Point, p *pool.Pool) *LocalBackend {
	if p == nil {
		p = pool.New(1)
	}
	return &LocalBackend{shard: s, g: g, cells: cells, centers: centers, pool: p}
}

// Shard exposes the wrapped shard for inspection and tests.
func (b *LocalBackend) Shard() *Shard { return b.shard }

// ScoreAll implements Backend: model uncertainty over the owned symbolic
// index points, computed through the worker pool exactly like the flat
// scoring pass (chunked UncertaintiesInto — byte-identical results).
func (b *LocalBackend) ScoreAll(ctx context.Context, model learn.Classifier) ([]float64, error) {
	if len(b.centers) == 0 {
		return nil, nil
	}
	out := make([]float64, len(b.centers))
	err := b.pool.Do(ctx, len(b.centers), func(lo, hi int) error {
		return learn.UncertaintiesInto(ctx, model, b.centers[lo:hi], out[lo:hi])
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MostUncertain implements Backend: bounded insertion over the owned cells
// with the global comparator.
func (b *LocalBackend) MostUncertain(ctx context.Context, scores []float64, k int) ([]CellScore, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(scores) != len(b.cells) {
		return nil, fmt.Errorf("shard %d: %d scores for %d owned cells", b.shard.ID, len(scores), len(b.cells))
	}
	return topKOwned(b.cells, scores, k), nil
}

// LoadCell implements Backend: hash-merge the cell's chunks from the
// shard's store and remap row ids to global.
func (b *LocalBackend) LoadCell(ctx context.Context, cell grid.CellID) ([]uint32, [][]float64, int, error) {
	box, err := b.g.CellBox(cell)
	if err != nil {
		return nil, nil, 0, err
	}
	chunks, err := b.shard.Mapping.Chunks(cell)
	if err != nil {
		return nil, nil, 0, err
	}
	rows, entries, err := b.shard.Store.MergeChunks(ctx, box, chunks)
	if err != nil {
		return nil, nil, 0, err
	}
	ids := make([]uint32, len(rows))
	vals := make([][]float64, len(rows))
	for i, r := range rows {
		ids[i] = b.shard.IDMap[r.ID]
		vals[i] = r.Vals
	}
	return ids, vals, entries, nil
}

// FetchRows implements Backend: intersect the sorted global ids with the
// shard's idmap (merge join), fetch the local rows, and remap to global.
func (b *LocalBackend) FetchRows(ctx context.Context, ids []uint32) ([]chunkstore.MergedRow, error) {
	local := intersectLocal(ids, b.shard.IDMap)
	if len(local) == 0 {
		return nil, nil
	}
	rows, err := b.shard.Store.FetchRows(ctx, local)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].ID = b.shard.IDMap[rows[i].ID]
	}
	return rows, nil
}

// Retrieve implements Backend: the shared marked-segment scan over this
// shard's store, remapped to global ids.
func (b *LocalBackend) Retrieve(ctx context.Context, marked [][]bool) ([]RetrievedRow, int, error) {
	rows, entries, err := ScanMarked(ctx, b.g, b.shard.Store, marked)
	if err != nil {
		return nil, 0, err
	}
	for i := range rows {
		rows[i].ID = b.shard.IDMap[rows[i].ID]
	}
	return rows, entries, nil
}

// CostEstimate implements Backend via the shard's mapping.
func (b *LocalBackend) CostEstimate(ctx context.Context, cell grid.CellID) (int64, int, error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	return b.shard.Mapping.CostEstimate(cell)
}

// Stats implements Backend with the shard store's disk I/O counters.
func (b *LocalBackend) Stats() BackendStats {
	bytes, chunks := b.shard.Store.IOStats()
	return BackendStats{BytesRead: bytes, ChunksRead: chunks, TotalBytes: b.shard.Store.TotalBytes()}
}

// ResetIOStats implements Backend.
func (b *LocalBackend) ResetIOStats() { b.shard.Store.ResetIOStats() }
