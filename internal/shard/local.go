package shard

import (
	"context"
	"fmt"
	"sort"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/grid"
	"github.com/uei-db/uei/internal/kernel"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/pool"
	"github.com/uei-db/uei/internal/vec"
)

// LocalBackend adapts one in-process *Shard to the Backend interface —
// the transport-free implementation whose behavior is byte-identical to
// the pre-interface coordinator. Replicated local coordinators reuse one
// LocalBackend per shard (the underlying store is concurrency-safe), so
// hedged duplicate calls race only on immutable state.
//
// A shard holds one part for build-time layouts and several for live
// (stream) snapshots. Single-part calls take the exact pre-refactor code
// path; multi-part calls merge per-part results by global id, which
// yields the same row set a flat store over the union of the parts'
// rows would produce (chunk reconstruction is per-row value containment,
// and every part's idmap is strictly ascending).
type LocalBackend struct {
	shard *Shard
	g     *grid.Grid
	// cells and centers list the shard's owned cells ascending and their
	// symbolic index points, aligned.
	cells   []grid.CellID
	centers []vec.Point
	// blk is the columnar copy of centers, packed once at construction and
	// shared read-only by replicas and scoring goroutines.
	blk *kernel.Block
	// pool shards CPU-side scoring; shared with the caller.
	pool *pool.Pool
}

// NewLocalBackend wraps a shard for in-process serving. cells/centers must
// be the shard's owned cells ascending with their grid centers, and p the
// worker pool scoring fans out on (nil falls back to an inline pool).
func NewLocalBackend(s *Shard, g *grid.Grid, cells []grid.CellID, centers []vec.Point, p *pool.Pool) *LocalBackend {
	if p == nil {
		p = pool.New(1)
	}
	return &LocalBackend{shard: s, g: g, cells: cells, centers: centers, blk: kernel.Pack(centers), pool: p}
}

// Shard exposes the wrapped shard for inspection and tests.
func (b *LocalBackend) Shard() *Shard { return b.shard }

// ScoreAll implements Backend: model uncertainty over the owned symbolic
// index points, computed through the worker pool exactly like the flat
// scoring pass. The kernel flag selects the columnar block path, the
// legacy flag the row path (chunked UncertaintiesInto); both produce
// byte-identical scores. A non-nil spec.Dirty restricts work to that
// ascending owned-cell-local subset, and NeedDK additionally returns each
// scored point's k-th-neighbor squared distance (DWKNN + kernel only).
func (b *LocalBackend) ScoreAll(ctx context.Context, model learn.Classifier, spec ScoreSpec) (ScoreResult, error) {
	if len(b.centers) == 0 {
		return ScoreResult{}, nil
	}
	var dw *learn.DWKNN
	if spec.NeedDK {
		if !spec.Kernel {
			return ScoreResult{}, fmt.Errorf("shard %d: NeedDK requires the kernel path", b.shard.ID)
		}
		var ok bool
		if dw, ok = learn.AsDWKNN(model); !ok {
			return ScoreResult{}, fmt.Errorf("shard %d: NeedDK on a non-DWKNN model", b.shard.ID)
		}
	}
	if spec.Dirty != nil {
		n := len(spec.Dirty)
		res := ScoreResult{Scores: make([]float64, n)}
		if n == 0 {
			return res, nil
		}
		for _, i := range spec.Dirty {
			if i < 0 || i >= len(b.centers) {
				return ScoreResult{}, fmt.Errorf("shard %d: dirty index %d out of %d owned cells", b.shard.ID, i, len(b.centers))
			}
		}
		if spec.Kernel && dw != nil {
			res.DK2 = make([]float64, n)
			err := b.pool.DoCapped(ctx, n, scoreShardCap(n), func(lo, hi int) error {
				return learn.BlockUncertaintiesDKAt(ctx, dw, b.blk, spec.Dirty[lo:hi], res.Scores[lo:hi], res.DK2[lo:hi])
			})
			if err != nil {
				return ScoreResult{}, err
			}
			return res, nil
		}
		// Subset scoring without dk²: gather the dirty centers and run the
		// regular path over them (row or block — identical results).
		err := b.pool.DoCapped(ctx, n, scoreShardCap(n), func(lo, hi int) error {
			for k, i := range spec.Dirty[lo:hi] {
				if err := b.scoreRange(ctx, model, spec.Kernel, i, i+1, res.Scores[lo+k:lo+k+1]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return ScoreResult{}, err
		}
		return res, nil
	}
	res := ScoreResult{Scores: make([]float64, len(b.centers))}
	if spec.NeedDK {
		res.DK2 = make([]float64, len(b.centers))
	}
	err := b.pool.Do(ctx, len(b.centers), func(lo, hi int) error {
		if spec.NeedDK {
			return learn.BlockUncertaintiesDKInto(ctx, dw, b.blk, lo, hi, res.Scores[lo:hi], res.DK2[lo:hi])
		}
		return b.scoreRange(ctx, model, spec.Kernel, lo, hi, res.Scores[lo:hi])
	})
	if err != nil {
		return ScoreResult{}, err
	}
	return res, nil
}

// scoreRange scores owned centers [lo, hi) into out through the selected
// path.
func (b *LocalBackend) scoreRange(ctx context.Context, model learn.Classifier, kernelPath bool, lo, hi int, out []float64) error {
	if kernelPath {
		return learn.BlockUncertaintiesInto(ctx, model, b.blk, lo, hi, out)
	}
	return learn.UncertaintiesInto(ctx, model, b.centers[lo:hi], out)
}

// scoreShardCap bounds the worker fan-out of a dirty-subset pass so a
// handful of dirty cells does not pay goroutine handoff for nothing.
func scoreShardCap(n int) int {
	const minPerShard = 2048
	return (n + minPerShard - 1) / minPerShard
}

// MostUncertain implements Backend: bounded insertion over the owned cells
// with the global comparator.
func (b *LocalBackend) MostUncertain(ctx context.Context, scores []float64, k int) ([]CellScore, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(scores) != len(b.cells) {
		return nil, fmt.Errorf("shard %d: %d scores for %d owned cells", b.shard.ID, len(scores), len(b.cells))
	}
	return topKOwned(b.cells, scores, k), nil
}

// LoadCell implements Backend: hash-merge the cell's chunks from each
// part's store and remap row ids to global.
func (b *LocalBackend) LoadCell(ctx context.Context, cell grid.CellID) ([]uint32, [][]float64, int, error) {
	box, err := b.g.CellBox(cell)
	if err != nil {
		return nil, nil, 0, err
	}
	rows, entries, err := MergePartsCell(ctx, b.shard.Parts, box, cell)
	if err != nil {
		return nil, nil, 0, err
	}
	ids := make([]uint32, len(rows))
	vals := make([][]float64, len(rows))
	for i, r := range rows {
		ids[i] = r.ID
		vals[i] = r.Vals
	}
	return ids, vals, entries, nil
}

// FetchRows implements Backend: intersect the sorted global ids with each
// part's idmap (merge join), fetch the local rows, and remap to global.
func (b *LocalBackend) FetchRows(ctx context.Context, ids []uint32) ([]chunkstore.MergedRow, error) {
	return FetchPartsRows(ctx, b.shard.Parts, ids)
}

// Retrieve implements Backend: the shared marked-segment scan over each
// part's store, remapped to global ids and merged.
func (b *LocalBackend) Retrieve(ctx context.Context, marked [][]bool) ([]RetrievedRow, int, error) {
	return ScanPartsMarked(ctx, b.g, b.shard.Parts, marked)
}

// CostEstimate implements Backend by summing the parts' mappings.
func (b *LocalBackend) CostEstimate(ctx context.Context, cell grid.CellID) (int64, int, error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	var bytes int64
	var entries int
	for i := range b.shard.Parts {
		pb, pe, err := b.shard.Parts[i].Mapping.CostEstimate(cell)
		if err != nil {
			return 0, 0, err
		}
		bytes += pb
		entries += pe
	}
	return bytes, entries, nil
}

// Stats implements Backend with the part stores' disk I/O counters summed.
func (b *LocalBackend) Stats() BackendStats {
	var st BackendStats
	for i := range b.shard.Parts {
		bytes, chunks := b.shard.Parts[i].Store.IOStats()
		st.BytesRead += bytes
		st.ChunksRead += chunks
		st.TotalBytes += b.shard.Parts[i].Store.TotalBytes()
	}
	return st
}

// ResetIOStats implements Backend.
func (b *LocalBackend) ResetIOStats() {
	for i := range b.shard.Parts {
		b.shard.Parts[i].Store.ResetIOStats()
	}
}

// MergePartsCell reconstructs one grid cell across parts: each part
// hash-merges its own chunks, local ids remap through the part's idmap,
// and the per-part row sets (disjoint — every global row lives in exactly
// one part) concatenate into one id-sorted slice. With a single part this
// is exactly the flat MergeChunks path plus the remap.
func MergePartsCell(ctx context.Context, parts []Part, box vec.Box, cell grid.CellID) ([]chunkstore.MergedRow, int, error) {
	var out []chunkstore.MergedRow
	var entries int
	for i := range parts {
		p := &parts[i]
		chunks, err := p.Mapping.Chunks(cell)
		if err != nil {
			return nil, 0, err
		}
		rows, pe, err := p.Store.MergeChunks(ctx, box, chunks)
		if err != nil {
			return nil, 0, err
		}
		entries += pe
		for j := range rows {
			rows[j].ID = p.IDMap[rows[j].ID]
		}
		out = append(out, rows...)
	}
	if len(parts) > 1 {
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	}
	return out, entries, nil
}

// FetchPartsRows point-fetches sorted global ids across parts and returns
// the union sorted by global id.
func FetchPartsRows(ctx context.Context, parts []Part, ids []uint32) ([]chunkstore.MergedRow, error) {
	var out []chunkstore.MergedRow
	for i := range parts {
		p := &parts[i]
		local := intersectLocal(ids, p.IDMap)
		if len(local) == 0 {
			continue
		}
		rows, err := p.Store.FetchRows(ctx, local)
		if err != nil {
			return nil, err
		}
		for j := range rows {
			rows[j].ID = p.IDMap[rows[j].ID]
		}
		out = append(out, rows...)
	}
	if len(parts) > 1 {
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	}
	return out, nil
}

// ScanPartsMarked runs the shared marked-segment scan over each part's
// store and merges the remapped results by global id.
func ScanPartsMarked(ctx context.Context, g *grid.Grid, parts []Part, marked [][]bool) ([]RetrievedRow, int, error) {
	var out []RetrievedRow
	var entries int
	for i := range parts {
		p := &parts[i]
		rows, pe, err := ScanMarked(ctx, g, p.Store, marked)
		if err != nil {
			return nil, 0, err
		}
		entries += pe
		for j := range rows {
			rows[j].ID = p.IDMap[rows[j].ID]
		}
		out = append(out, rows...)
	}
	if len(parts) > 1 {
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	}
	return out, entries, nil
}
