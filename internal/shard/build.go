package shard

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/grid"
)

// defaultSegmentsPerDim mirrors core's grid default (the paper's 5
// segments per dimension); Build must hash cell coordinates over the same
// grid Open will rebuild.
const defaultSegmentsPerDim = 5

// BuildOptions configures Build.
type BuildOptions struct {
	// Shards is S, in [2, MaxShards]. (S = 1 is the flat layout; callers
	// route it to chunkstore.Build.)
	Shards int
	// SegmentsPerDim fixes the grid cells are hashed over. Zero selects
	// the core default (5).
	SegmentsPerDim int
	// TargetChunkBytes is the per-shard chunk size target. Zero selects
	// chunkstore.DefaultTargetChunkBytes.
	TargetChunkBytes int
}

// OwnerOf returns the shard owning the cell with the given per-dimension
// segment coordinates: FNV-1a over the little-endian coordinates, mod S.
// Ingest and open must agree on this function byte for byte — it is the
// only thing tying a row's resting place to the coordinator's routing.
func OwnerOf(coords []int, shards int) int {
	h := fnv.New32a()
	var b [4]byte
	for _, c := range coords {
		binary.LittleEndian.PutUint32(b[:], uint32(c))
		h.Write(b[:])
	}
	return int(h.Sum32() % uint32(shards))
}

// Build partitions the dataset into S self-contained shard stores under
// dir (which must be empty or absent), assigning each row to the shard
// that owns its grid cell, and commits the layout by writing the
// top-level shards.json last. Every shard directory is a complete flat
// chunk store (possibly zero-row) plus an idmap translating its dense
// local row ids back to global ones.
func Build(dir string, ds *dataset.Dataset, opts BuildOptions) error {
	if opts.Shards < 2 || opts.Shards > MaxShards {
		return fmt.Errorf("shard: shard count %d out of range [2,%d]", opts.Shards, MaxShards)
	}
	if ds.Len() == 0 {
		return fmt.Errorf("shard: refusing to build from an empty dataset")
	}
	segs := opts.SegmentsPerDim
	if segs == 0 {
		segs = defaultSegmentsPerDim
	}
	target := opts.TargetChunkBytes
	if target == 0 {
		target = chunkstore.DefaultTargetChunkBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: create %s: %w", dir, err)
	}
	if entries, err := os.ReadDir(dir); err != nil {
		return fmt.Errorf("shard: inspect %s: %w", dir, err)
	} else if len(entries) > 0 {
		return fmt.Errorf("shard: directory %s is not empty", dir)
	}

	bounds, err := ds.Bounds()
	if err != nil {
		return err
	}
	g, err := grid.New(bounds, segs)
	if err != nil {
		return err
	}

	// Partition rows by the owner of their cell. The scan runs in global
	// id order, so each shard's sub-dataset and idmap come out ascending.
	ownerByCell, err := CellOwners(g, opts.Shards)
	if err != nil {
		return err
	}
	subs := make([]*dataset.Dataset, opts.Shards)
	idmaps := make([][]uint32, opts.Shards)
	hint := ds.Len()/opts.Shards + 1
	for i := range subs {
		subs[i] = dataset.New(ds.Schema(), hint)
	}
	for i := 0; i < ds.Len(); i++ {
		row := ds.Row(dataset.RowID(i))
		cell, err := g.CellOf(row)
		if err != nil {
			return fmt.Errorf("shard: row %d: %w", i, err)
		}
		owner := ownerByCell[cell]
		if _, err := subs[owner].Append(row); err != nil {
			return fmt.Errorf("shard: row %d: %w", i, err)
		}
		idmaps[owner] = append(idmaps[owner], uint32(i))
	}

	m := &Manifest{
		FormatVersion:    manifestFormatVersion,
		Shards:           opts.Shards,
		SegmentsPerDim:   segs,
		Hash:             hashName,
		Columns:          ds.Schema().Names(),
		RowCount:         ds.Len(),
		MinValues:        append([]float64(nil), bounds.Min...),
		MaxValues:        append([]float64(nil), bounds.Max...),
		TargetChunkBytes: target,
		ShardRowCounts:   make([]int, opts.Shards),
	}
	for s := 0; s < opts.Shards; s++ {
		sdir := filepath.Join(dir, ShardDirName(s))
		if subs[s].Len() == 0 {
			// Hash partitioning can leave a shard with no rows (small
			// datasets, unlucky cell assignment). An explicit empty store
			// keeps every shard directory uniform.
			if _, err := chunkstore.BuildEmpty(sdir, m.Columns, bounds, target); err != nil {
				return err
			}
		} else {
			if _, err := chunkstore.Build(sdir, subs[s], chunkstore.BuildOptions{TargetChunkBytes: target}); err != nil {
				return err
			}
		}
		if err := SaveIDMap(sdir, idmaps[s]); err != nil {
			return err
		}
		m.ShardRowCounts[s] = subs[s].Len()
	}
	// The top-level manifest is the commit point: a crash before this
	// leaves a directory neither layout will open.
	return saveManifest(dir, m)
}

// CellOwners precomputes the owner shard of every cell of g. Exported for
// the stream subsystem, which partitions flushed memtables by the same
// assignment the coordinator routes by.
func CellOwners(g *grid.Grid, shards int) ([]int, error) {
	owners := make([]int, g.NumCells())
	for id := 0; id < g.NumCells(); id++ {
		coords, err := g.Coords(grid.CellID(id))
		if err != nil {
			return nil, err
		}
		owners[id] = OwnerOf(coords, shards)
	}
	return owners, nil
}
