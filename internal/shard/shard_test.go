package shard

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/grid"
	"github.com/uei-db/uei/internal/obs"
	"github.com/uei-db/uei/internal/pool"
)

func skyDataset(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: n, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func buildSharded(t *testing.T, ds *dataset.Dataset, shards int) string {
	t.Helper()
	dir := t.TempDir()
	if err := Build(dir, ds, BuildOptions{Shards: shards, TargetChunkBytes: 2048}); err != nil {
		t.Fatal(err)
	}
	return dir
}

func openCoordinator(t *testing.T, dir string, opts OpenOptions) *Coordinator {
	t.Helper()
	if opts.Pool == nil {
		p := pool.New(2)
		t.Cleanup(p.Close)
		opts.Pool = p
	}
	c, err := Open(context.Background(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.Instrument(obs.NewRegistry())
	return c
}

func TestBuildValidation(t *testing.T) {
	ds := skyDataset(t, 50)
	if err := Build(t.TempDir(), ds, BuildOptions{Shards: 1}); err == nil {
		t.Error("Shards=1 should be rejected (that is the flat layout)")
	}
	if err := Build(t.TempDir(), ds, BuildOptions{Shards: MaxShards + 1}); err == nil {
		t.Error("Shards above MaxShards should be rejected")
	}
	empty := dataset.New(ds.Schema(), 0)
	if err := Build(t.TempDir(), empty, BuildOptions{Shards: 2}); err == nil {
		t.Error("empty dataset should be rejected")
	}
}

func TestOwnerOfDeterministic(t *testing.T) {
	coords := []int{3, 1, 4, 1, 5}
	want := OwnerOf(coords, 8)
	for i := 0; i < 10; i++ {
		if got := OwnerOf(coords, 8); got != want {
			t.Fatalf("OwnerOf not deterministic: %d then %d", want, got)
		}
	}
	if want < 0 || want >= 8 {
		t.Fatalf("owner %d out of range", want)
	}
}

func TestBuildOpenRoundTrip(t *testing.T) {
	ds := skyDataset(t, 600)
	for _, shards := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("S=%d", shards), func(t *testing.T) {
			dir := buildSharded(t, ds, shards)
			c := openCoordinator(t, dir, OpenOptions{Workers: 2})
			if c.NumShards() != shards {
				t.Fatalf("NumShards = %d, want %d", c.NumShards(), shards)
			}
			if c.Meta().RowCount != ds.Len() {
				t.Fatalf("RowCount = %d, want %d", c.Meta().RowCount, ds.Len())
			}
			if c.Meta().Dims() != ds.Dims() {
				t.Fatalf("Dims = %d, want %d", c.Meta().Dims(), ds.Dims())
			}
			// Every row lands in exactly one shard, idmaps are ascending and
			// partition [0, n).
			seen := make([]bool, ds.Len())
			total := 0
			for _, s := range c.Shards() {
				prev := -1
				if len(s.Parts) != 1 {
					t.Fatalf("shard %d has %d parts, want 1 (build-time layout)", s.ID, len(s.Parts))
				}
				for _, id := range s.Parts[0].IDMap {
					if int(id) <= prev {
						t.Fatalf("shard %d idmap not ascending", s.ID)
					}
					prev = int(id)
					if seen[id] {
						t.Fatalf("row %d in two shards", id)
					}
					seen[id] = true
					total++
				}
			}
			if total != ds.Len() {
				t.Fatalf("shards hold %d rows, want %d", total, ds.Len())
			}
			// Cell ownership is disjoint and matches the hash.
			for _, s := range c.Shards() {
				for _, cell := range s.Cells {
					coords, err := c.Meta().Grid.Coords(cell)
					if err != nil {
						t.Fatal(err)
					}
					if OwnerOf(coords, shards) != s.ID {
						t.Fatalf("cell %d listed under shard %d but hashes elsewhere", cell, s.ID)
					}
				}
			}
		})
	}
}

func TestLayoutMismatchSentinels(t *testing.T) {
	ds := skyDataset(t, 80)

	// Flat store opened as sharded.
	flat := t.TempDir()
	if _, err := chunkstore.Build(flat, ds, chunkstore.BuildOptions{TargetChunkBytes: 2048}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(flat); !errors.Is(err, chunkstore.ErrLayoutMismatch) {
		t.Errorf("LoadManifest on flat dir: err = %v, want ErrLayoutMismatch", err)
	}

	// Sharded store opened as flat.
	shardedDir := buildSharded(t, ds, 2)
	if _, err := chunkstore.Open(shardedDir, nil); !errors.Is(err, chunkstore.ErrLayoutMismatch) {
		t.Errorf("chunkstore.Open on sharded dir: err = %v, want ErrLayoutMismatch", err)
	}

	// A directory with neither layout is a plain not-found, not a mismatch.
	if _, err := chunkstore.Open(t.TempDir(), nil); errors.Is(err, chunkstore.ErrLayoutMismatch) {
		t.Error("empty dir should not classify as layout mismatch")
	}
}

func TestEmptyShardsAreValid(t *testing.T) {
	// A tiny dataset over a 5-dim grid with many shards leaves some shards
	// rowless; every shard dir must still open as a complete store.
	ds := skyDataset(t, 12)
	dir := buildSharded(t, ds, 8)
	c := openCoordinator(t, dir, OpenOptions{})
	emptyShards := 0
	for _, s := range c.Shards() {
		if s.RowCount() == 0 {
			emptyShards++
		}
	}
	if emptyShards == 0 {
		t.Skip("hash spread every row; no empty shard to exercise")
	}
	// Scoring and fetching still work across the empty shards.
	ids := make([]uint32, ds.Len())
	for i := range ids {
		ids[i] = uint32(i)
	}
	rows, err := c.FetchRows(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != ds.Len() {
		t.Fatalf("fetched %d rows, want %d", len(rows), ds.Len())
	}
}

func TestFetchRowsMatchesFlat(t *testing.T) {
	ds := skyDataset(t, 300)
	flatDir := t.TempDir()
	flat, err := chunkstore.Build(flatDir, ds, chunkstore.BuildOptions{TargetChunkBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	c := openCoordinator(t, buildSharded(t, ds, 4), OpenOptions{Workers: 2})

	ids := []uint32{0, 7, 7, 123, 299, 4, 250}
	want, err := flat.FetchRows(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.FetchRows(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("row %d: id %d, want %d", i, got[i].ID, want[i].ID)
		}
		for d := range got[i].Vals {
			if got[i].Vals[d] != want[i].Vals[d] {
				t.Fatalf("row %d dim %d: %v, want %v", i, d, got[i].Vals[d], want[i].Vals[d])
			}
		}
	}
	// Out-of-range ids error like the flat store.
	if _, err := c.FetchRows(context.Background(), []uint32{uint32(ds.Len())}); err == nil {
		t.Error("out-of-range fetch should fail")
	}
}

func TestLoadCellMatchesFlat(t *testing.T) {
	ds := skyDataset(t, 500)
	flatDir := t.TempDir()
	flat, err := chunkstore.Build(flatDir, ds, chunkstore.BuildOptions{TargetChunkBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	c := openCoordinator(t, buildSharded(t, ds, 4), OpenOptions{Workers: 2})
	g := c.Meta().Grid
	fm, err := grid.BuildMapping(g, flat)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for cell := 0; cell < g.NumCells() && checked < 25; cell++ {
		id := grid.CellID(cell)
		box, err := g.CellBox(id)
		if err != nil {
			t.Fatal(err)
		}
		chunks, err := fm.Chunks(id)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := flat.MergeChunks(context.Background(), box, chunks)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 {
			continue
		}
		checked++
		ids, vals, _, err := c.LoadCell(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != len(want) {
			t.Fatalf("cell %d: %d rows, want %d", cell, len(ids), len(want))
		}
		for i := range ids {
			if ids[i] != want[i].ID {
				t.Fatalf("cell %d row %d: id %d, want %d", cell, i, ids[i], want[i].ID)
			}
			for d := range vals[i] {
				if vals[i][d] != want[i].Vals[d] {
					t.Fatalf("cell %d row %d dim %d differs", cell, i, d)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no non-empty cells checked")
	}
}

func TestScatterDegradesFailingShard(t *testing.T) {
	ds := skyDataset(t, 200)
	c := openCoordinator(t, buildSharded(t, ds, 4), OpenOptions{Workers: 2})
	reg := obs.NewRegistry()
	c.Instrument(reg)
	boom := errors.New("boom")
	c.SetFaultHook(func(_ context.Context, shard, _ int, _ string) error {
		if shard == 2 {
			return boom
		}
		return nil
	})
	degraded, err := c.scatter(context.Background(), OpScore, false, func(context.Context, Backend) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(degraded) != 1 || degraded[0] != 2 {
		t.Fatalf("degraded = %v, want [2]", degraded)
	}
	if got := reg.Counter("shard_degraded_total").Value(); got != 1 {
		t.Errorf("shard_degraded_total = %d, want 1", got)
	}
	// Strict mode surfaces the failure as ErrShardUnavailable.
	err = c.ScatterStrict(context.Background(), OpFetch, func(context.Context, Backend) error { return nil })
	if !errors.Is(err, ErrShardUnavailable) || !errors.Is(err, boom) {
		t.Errorf("strict err = %v, want ErrShardUnavailable wrapping boom", err)
	}
	// All shards failing is an error even in degradable mode.
	c.SetFaultHook(func(context.Context, int, int, string) error { return boom })
	if _, err := c.scatter(context.Background(), OpScore, false, func(context.Context, Backend) error { return nil }); !errors.Is(err, ErrShardUnavailable) {
		t.Errorf("all-failed err = %v, want ErrShardUnavailable", err)
	}
}

func TestShardDeadlineSkipsSlowShard(t *testing.T) {
	ds := skyDataset(t, 200)
	c := openCoordinator(t, buildSharded(t, ds, 2), OpenOptions{Workers: 2, Deadline: 20 * time.Millisecond})
	c.SetFaultHook(func(ctx context.Context, shard, _ int, _ string) error {
		if shard == 1 {
			<-ctx.Done() // stuck until the per-shard deadline fires
			return ctx.Err()
		}
		return nil
	})
	start := time.Now()
	degraded, err := c.scatter(context.Background(), OpScore, false, func(context.Context, Backend) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(degraded) != 1 || degraded[0] != 1 {
		t.Fatalf("degraded = %v, want [1]", degraded)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not bound the scatter: %v", elapsed)
	}
}

func TestScatterCancellationLeaksNoGoroutines(t *testing.T) {
	ds := skyDataset(t, 200)
	c := openCoordinator(t, buildSharded(t, ds, 4), OpenOptions{Workers: 2})
	release := make(chan struct{})
	c.SetFaultHook(func(ctx context.Context, shard, _ int, _ string) error {
		if shard != 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-release:
				return nil
			}
		}
		return nil
	})
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(2 * time.Millisecond)
			cancel()
		}()
		_, err := c.scatter(ctx, OpScore, false, func(context.Context, Backend) error { return nil })
		if err == nil {
			t.Fatal("cancelled scatter should fail")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled (cancellation must not classify as degradation)", err)
		}
		cancel()
	}
	close(release)
	// Shard goroutines write to a buffered channel, so they terminate on
	// their own; give them a moment and compare.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestScoreAllWritesOnlyOwnedCells(t *testing.T) {
	ds := skyDataset(t, 400)
	c := openCoordinator(t, buildSharded(t, ds, 4), OpenOptions{Workers: 2})
	unc := make([]float64, c.Meta().Grid.NumCells())
	for i := range unc {
		unc[i] = -99 // sentinel
	}
	model := constModel{}
	degraded, err := c.ScoreAll(context.Background(), model, unc)
	if err != nil {
		t.Fatal(err)
	}
	if len(degraded) != 0 {
		t.Fatalf("degraded = %v", degraded)
	}
	for cell, u := range unc {
		if u == -99 {
			t.Fatalf("cell %d never scored", cell)
		}
	}
	// With shard 3 failing, its cells keep the stale sentinel.
	c.SetFaultHook(func(_ context.Context, shard, _ int, _ string) error {
		if shard == 3 {
			return errors.New("down")
		}
		return nil
	})
	for i := range unc {
		unc[i] = -99
	}
	degraded, err = c.ScoreAll(context.Background(), model, unc)
	if err != nil {
		t.Fatal(err)
	}
	if len(degraded) != 1 || degraded[0] != 3 {
		t.Fatalf("degraded = %v, want [3]", degraded)
	}
	owned := make(map[grid.CellID]bool)
	for _, cell := range c.Shards()[3].Cells {
		owned[cell] = true
	}
	for cell, u := range unc {
		if owned[grid.CellID(cell)] != (u == -99) {
			t.Fatalf("cell %d: stale=%v owned-by-degraded=%v", cell, u == -99, owned[grid.CellID(cell)])
		}
	}
	// MostUncertain skips the degraded shard's cells entirely (and, with
	// the remaining shards healthy, degrades nothing further).
	top, newlyDegraded, err := c.MostUncertain(context.Background(), unc, 5, degraded)
	if err != nil {
		t.Fatal(err)
	}
	if len(newlyDegraded) != 0 {
		t.Fatalf("topk degraded = %v, want none", newlyDegraded)
	}
	for _, cell := range top {
		if owned[cell] {
			t.Fatalf("degraded shard's cell %d selected", cell)
		}
	}
}

func TestManifestValidation(t *testing.T) {
	ds := skyDataset(t, 100)
	dir := buildSharded(t, ds, 2)
	m, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Hash != hashName {
		t.Errorf("hash = %q, want %q", m.Hash, hashName)
	}
	sum := 0
	for _, n := range m.ShardRowCounts {
		sum += n
	}
	if sum != m.RowCount {
		t.Errorf("shard row counts sum to %d, want %d", sum, m.RowCount)
	}
	// Opening with a corrupted idmap fails loudly.
	bad := filepath.Join(dir, ShardDirName(0), idMapFile)
	orig, err := os.ReadFile(bad)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte(nil), orig...)
	corrupted[len(corrupted)-1] ^= 0xff
	if err := os.WriteFile(bad, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(context.Background(), dir, OpenOptions{}); err == nil {
		t.Error("corrupted idmap should fail Open")
	}
}

// constModel is a trivially fitted classifier whose posterior varies with
// the point — enough to exercise the scatter paths without a real fit.
type constModel struct{}

func (constModel) Fit([][]float64, []int) error { return nil }
func (constModel) Fitted() bool                 { return true }
func (constModel) PosteriorPositive(x []float64) (float64, error) {
	s := 0.0
	for _, v := range x {
		s += v
	}
	frac := s - float64(int64(s))
	if frac < 0 {
		frac = -frac
	}
	return 0.25 + frac/2, nil
}
