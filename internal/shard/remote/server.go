package remote

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/shard"
)

// maxRequestBytes bounds a request body. The largest legitimate payload
// is a fetch id list or a serialized committee; 64 MiB is far above both
// and merely stops a runaway client from exhausting the worker.
const maxRequestBytes = 64 << 20

// Server serves one opened sharded store over the wire protocol. It
// answers for every shard in the store's layout; placement (which shards
// a coordinator asks this worker for) is decided client-side, so workers
// over a shared store directory need no per-worker configuration.
type Server struct {
	coord *shard.Coordinator
	man   *shard.Manifest
	mux   *http.ServeMux
	logf  func(format string, args ...any)
}

// NewServer wraps an opened coordinator (shard.Open over the sharded
// directory). man is the store's top-level manifest, served verbatim in
// the fleet handshake (shard.LoadManifest of the same directory). logf
// receives one line per request; nil uses log.Printf.
func NewServer(coord *shard.Coordinator, man *shard.Manifest, logf func(format string, args ...any)) *Server {
	if logf == nil {
		logf = log.Printf
	}
	s := &Server{coord: coord, man: man, mux: http.NewServeMux(), logf: logf}
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /v1/meta", s.handleMeta)
	handleOp(s, "score", func(ctx context.Context, b shard.Backend, req ScoreRequest) (ScoreResponse, error) {
		model, err := learn.UnmarshalModel(req.Model)
		if err != nil {
			return ScoreResponse{}, badRequest(err)
		}
		spec := shard.ScoreSpec{Dirty: req.Dirty, NeedDK: req.NeedDK, Kernel: req.Kernel}
		res, err := b.ScoreAll(ctx, model, spec)
		return ScoreResponse{Scores: res.Scores, DK2: res.DK2}, err
	})
	handleOp(s, "topk", func(ctx context.Context, b shard.Backend, req TopKRequest) (TopKResponse, error) {
		top, err := b.MostUncertain(ctx, req.Scores, req.K)
		return TopKResponse{Top: top}, err
	})
	handleOp(s, "load", func(ctx context.Context, b shard.Backend, req LoadRequest) (LoadResponse, error) {
		ids, vals, entries, err := b.LoadCell(ctx, req.Cell)
		return LoadResponse{IDs: ids, Vals: vals, Entries: entries}, err
	})
	handleOp(s, "fetch", func(ctx context.Context, b shard.Backend, req FetchRequest) (FetchResponse, error) {
		rows, err := b.FetchRows(ctx, req.IDs)
		return FetchResponse{Rows: rows}, err
	})
	handleOp(s, "retrieve", func(ctx context.Context, b shard.Backend, req RetrieveRequest) (RetrieveResponse, error) {
		rows, entries, err := b.Retrieve(ctx, req.Marked)
		return RetrieveResponse{Rows: rows, Entries: entries}, err
	})
	handleOp(s, "estimate", func(ctx context.Context, b shard.Backend, req EstimateRequest) (EstimateResponse, error) {
		bytes, entries, err := b.CostEstimate(ctx, req.Cell)
		return EstimateResponse{Bytes: bytes, Entries: entries}, err
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Echo the caller's trace id so the response is correlatable even
	// through proxies that strip request context from logs.
	if tid := r.Header.Get(TraceHeader); tid != "" {
		w.Header().Set(TraceHeader, tid)
	}
	start := time.Now()
	lw := &loggingWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(lw, r)
	if r.URL.Path != "/healthz" {
		tid := r.Header.Get(TraceHeader)
		if tid == "" {
			tid = "-"
		}
		s.logf("%s %s status=%d bytes=%d dur=%s trace=%s", r.Method, r.URL.Path, lw.status, lw.bytes, time.Since(start).Round(time.Microsecond), tid)
	}
}

// handleMeta answers the fleet handshake: the manifest plus each shard's
// on-disk payload, which the client folds into Meta.TotalBytes.
func (s *Server) handleMeta(w http.ResponseWriter, _ *http.Request) {
	n := s.coord.NumShards()
	bytes := make([]int64, n)
	for i := 0; i < n; i++ {
		bytes[i] = s.coord.Backends(i)[0].Stats().TotalBytes
	}
	writeJSON(w, http.StatusOK, MetaResponse{Manifest: s.man, ShardBytes: bytes})
}

// handleOp registers one POST /v1/shards/{id}/<op> route: decode the
// request, run fn against the shard's primary in-process backend under
// the request context, encode the response. A package-level generic
// because methods cannot have type parameters.
func handleOp[Req, Resp any](s *Server, op string, fn func(ctx context.Context, b shard.Backend, req Req) (Resp, error)) {
	s.mux.HandleFunc("POST /v1/shards/{id}/"+op, func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil || id < 0 || id >= s.coord.NumShards() {
			writeJSON(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("shard %q not served (have %d shards)", r.PathValue("id"), s.coord.NumShards())})
			return
		}
		var req Req
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "decoding request: " + err.Error()})
			return
		}
		resp, err := fn(r.Context(), s.coord.Backends(id)[0], req)
		if err != nil {
			status := http.StatusInternalServerError
			var br *badRequestError
			switch {
			case errors.As(err, &br):
				status = http.StatusBadRequest
			case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
				// The client hung up (hedged loser, deadline): 499-style.
				status = statusClientClosedRequest
			}
			writeJSON(w, status, ErrorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
}

// statusClientClosedRequest mirrors nginx's 499: the caller cancelled, so
// no 5xx alarm should fire.
const statusClientClosedRequest = 499

// badRequestError marks a client-side input error (bad model blob, shape
// mismatch) so it maps to 400 rather than 500.
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

func badRequest(err error) error { return &badRequestError{err: err} }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// loggingWriter captures status and size for the access log.
type loggingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *loggingWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *loggingWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}
