// Package remote is the HTTP/JSON shard transport: a Client that
// implements shard.Backend against a uei-shardd worker, the worker-side
// Server, and Connect, which assembles a replicated shard.Coordinator
// over a worker fleet.
//
// The protocol is deliberately plain — JSON bodies over HTTP/1.1, one
// POST per shard operation — because the payloads are small (scores,
// cell ids, row subsets) and Go's encoding/json round-trips float64
// exactly (shortest round-trip representation), which is what keeps
// remote results byte-identical to local ones.
//
// Endpoints served by a worker:
//
//	GET  /healthz                   liveness ("ok")
//	GET  /v1/meta                   manifest + per-shard byte sizes
//	POST /v1/shards/{id}/score      model blob -> owned-cell scores
//	POST /v1/shards/{id}/topk       aligned scores -> per-shard top-k
//	POST /v1/shards/{id}/load       cell -> ids, values, entries visited
//	POST /v1/shards/{id}/fetch      global ids -> owned row subset
//	POST /v1/shards/{id}/retrieve   marked segments -> rows, entries
//	POST /v1/shards/{id}/estimate   cell -> bytes, entries
//
// Every request may carry an X-Uei-Trace-Id header; the worker echoes it
// on the response and stamps it into its access log, so a traced
// session's remote legs are correlatable across processes.
package remote

import (
	"encoding/json"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/grid"
	"github.com/uei-db/uei/internal/shard"
)

// TraceHeader carries the step trace id across the wire so uei-trace can
// line worker-side activity up with the session's shard_<op> spans.
const TraceHeader = "X-Uei-Trace-Id"

// MetaResponse is GET /v1/meta: the store identity every endpoint of a
// fleet must agree on, plus per-shard payload sizes for Meta.TotalBytes.
type MetaResponse struct {
	Manifest   *shard.Manifest `json:"manifest"`
	ShardBytes []int64         `json:"shard_bytes"`
}

// ScoreRequest carries the serialized model (learn.MarshalModel envelope)
// plus the pass spec: the optional ascending owned-cell-local dirty subset,
// the d_k² request flag, and the kernel-path routing flag. The spec fields
// are omitted when unset, so pre-kernel workers and clients interoperate on
// full passes unchanged.
type ScoreRequest struct {
	Model  json.RawMessage `json:"model"`
	Dirty  []int           `json:"dirty,omitempty"`
	NeedDK bool            `json:"need_dk,omitempty"`
	Kernel bool            `json:"kernel,omitempty"`
}

// ScoreResponse returns the scores aligned with the scored list — the
// shard's ascending owned-cell list, or the request's dirty subset — per
// the Backend.ScoreAll contract, plus the per-cell k-th-neighbor squared
// distances when requested (float64s round-trip JSON exactly, so remote
// incremental passes stay bit-identical to local ones).
type ScoreResponse struct {
	Scores []float64 `json:"scores"`
	DK2    []float64 `json:"dk2,omitempty"`
}

// TopKRequest carries the owned-cell-aligned scores back to the shard for
// local top-k selection.
type TopKRequest struct {
	Scores []float64 `json:"scores"`
	K      int       `json:"k"`
}

// TopKResponse returns the shard's best k owned cells, best first.
type TopKResponse struct {
	Top []shard.CellScore `json:"top"`
}

// LoadRequest names the cell to reconstruct.
type LoadRequest struct {
	Cell grid.CellID `json:"cell"`
}

// LoadResponse returns the cell's tuples under global row ids, ascending,
// plus the posting entries the merge visited.
type LoadResponse struct {
	IDs     []uint32    `json:"ids"`
	Vals    [][]float64 `json:"vals"`
	Entries int         `json:"entries"`
}

// FetchRequest carries sorted, deduplicated global row ids; the shard
// answers with the subset it holds.
type FetchRequest struct {
	IDs []uint32 `json:"ids"`
}

// FetchResponse returns the owned rows under global ids, ascending.
type FetchResponse struct {
	Rows []chunkstore.MergedRow `json:"rows"`
}

// RetrieveRequest carries the marked-segment flags, one slice per
// dimension.
type RetrieveRequest struct {
	Marked [][]bool `json:"marked"`
}

// RetrieveResponse returns the shard's fully reconstructed rows under
// global ids, ascending, and the posting entries visited.
type RetrieveResponse struct {
	Rows    []shard.RetrievedRow `json:"rows"`
	Entries int                  `json:"entries"`
}

// EstimateRequest names the cell to cost.
type EstimateRequest struct {
	Cell grid.CellID `json:"cell"`
}

// EstimateResponse returns the load cost of the cell on this shard.
type EstimateResponse struct {
	Bytes   int64 `json:"bytes"`
	Entries int   `json:"entries"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}
