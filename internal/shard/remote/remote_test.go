package remote_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/grid"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/obs"
	"github.com/uei-db/uei/internal/shard"
	"github.com/uei-db/uei/internal/shard/remote"
)

func quiet(string, ...any) {}

// worker opens a sharded store and serves it over httptest.
type worker struct {
	idx   *core.Index
	coord *shard.Coordinator
	srv   *httptest.Server
}

func buildStore(t testing.TB, n, shards int, seed int64) (string, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := core.Build(dir, ds, core.BuildOptions{TargetChunkBytes: 2048, Shards: shards}); err != nil {
		t.Fatal(err)
	}
	return dir, ds
}

func startWorker(t testing.TB, dir string, shards int) *worker {
	t.Helper()
	idx, err := core.Open(context.Background(), dir, core.Options{
		MemoryBudgetBytes: 1 << 20, Shards: shards, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(idx.Close)
	coord := idx.ShardCoordinator()
	if coord == nil {
		t.Fatal("store is not sharded")
	}
	man, err := shard.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(remote.NewServer(coord, man, quiet))
	t.Cleanup(srv.Close)
	return &worker{idx: idx, coord: coord, srv: srv}
}

func trainedModel(t testing.TB, ds *dataset.Dataset) learn.Classifier {
	t.Helper()
	bounds, err := ds.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	model := learn.NewDWKNN(5, bounds.Widths())
	var X [][]float64
	var y []int
	for i := 0; i < 20; i++ {
		X = append(X, ds.CopyRow(dataset.RowID(i*(ds.Len()/20))))
		y = append(y, i%2)
	}
	if err := model.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	return model
}

// ownedCellWithData finds a cell of shard s that actually holds tuples.
func ownedCellWithData(t *testing.T, c *shard.Coordinator, s int) grid.CellID {
	t.Helper()
	meta := c.Meta()
	for cell := 0; cell < meta.Grid.NumCells(); cell++ {
		owner, err := c.OwnerOfCell(grid.CellID(cell))
		if err != nil {
			t.Fatal(err)
		}
		if owner != s {
			continue
		}
		if _, entries, err := c.Backends(s)[0].CostEstimate(context.Background(), grid.CellID(cell)); err == nil && entries > 0 {
			return grid.CellID(cell)
		}
	}
	t.Fatalf("shard %d owns no populated cell", s)
	return 0
}

// TestRemoteBackendParity round-trips every Backend operation through the
// wire protocol and requires byte-identical answers to the in-process
// backend: the transport must be invisible.
func TestRemoteBackendParity(t *testing.T) {
	ctx := context.Background()
	dir, ds := buildStore(t, 600, 2, 11)
	w := startWorker(t, dir, 2)
	model := trainedModel(t, ds)

	client := remote.NewClient(w.srv.URL, nil)
	meta, err := client.Meta(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Manifest.Shards != 2 {
		t.Fatalf("meta reports %d shards", meta.Manifest.Shards)
	}

	cmeta := w.coord.Meta()
	for s := 0; s < 2; s++ {
		local := w.coord.Backends(s)[0]
		rem := remote.NewShardClient(client, s, meta.ShardBytes[s])

		lRes, err := local.ScoreAll(ctx, model, shard.ScoreSpec{})
		if err != nil {
			t.Fatal(err)
		}
		rRes, err := rem.ScoreAll(ctx, model, shard.ScoreSpec{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lRes, rRes) {
			t.Fatalf("shard %d: remote scores differ from local", s)
		}
		lScores, rScores := lRes.Scores, rRes.Scores

		lTop, err := local.MostUncertain(ctx, lScores, 3)
		if err != nil {
			t.Fatal(err)
		}
		rTop, err := rem.MostUncertain(ctx, rScores, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lTop, rTop) {
			t.Fatalf("shard %d: top-k differs: local %v remote %v", s, lTop, rTop)
		}

		cell := ownedCellWithData(t, w.coord, s)
		lIDs, lVals, lEntries, err := local.LoadCell(ctx, cell)
		if err != nil {
			t.Fatal(err)
		}
		rIDs, rVals, rEntries, err := rem.LoadCell(ctx, cell)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lIDs, rIDs) || !reflect.DeepEqual(lVals, rVals) || lEntries != rEntries {
			t.Fatalf("shard %d cell %d: remote load differs from local", s, cell)
		}

		ids := []uint32{0, 1, 2, 7, 100, 333, 599}
		lRows, err := local.FetchRows(ctx, ids)
		if err != nil {
			t.Fatal(err)
		}
		rRows, err := rem.FetchRows(ctx, ids)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lRows, rRows) {
			t.Fatalf("shard %d: remote fetch differs from local", s)
		}

		marked := make([][]bool, cmeta.Dims())
		for d := range marked {
			marked[d] = make([]bool, cmeta.SegmentsPerDim)
			for i := range marked[d] {
				marked[d][i] = i%2 == 0
			}
		}
		lRet, lRetEntries, err := local.Retrieve(ctx, marked)
		if err != nil {
			t.Fatal(err)
		}
		rRet, rRetEntries, err := rem.Retrieve(ctx, marked)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lRet, rRet) || lRetEntries != rRetEntries {
			t.Fatalf("shard %d: remote retrieve differs from local", s)
		}

		lBytes, lEnt, err := local.CostEstimate(ctx, cell)
		if err != nil {
			t.Fatal(err)
		}
		rBytes, rEnt, err := rem.CostEstimate(ctx, cell)
		if err != nil {
			t.Fatal(err)
		}
		if lBytes != rBytes || lEnt != rEnt {
			t.Fatalf("shard %d: remote estimate (%d, %d) differs from local (%d, %d)", s, rBytes, rEnt, lBytes, lEnt)
		}
	}
}

// TestTraceHeaderEcho: the worker echoes X-Uei-Trace-Id, and the client
// stamps it from a traced context.
func TestTraceHeaderEcho(t *testing.T) {
	dir, _ := buildStore(t, 300, 2, 5)
	w := startWorker(t, dir, 2)

	body := strings.NewReader(`{"cell":0}`)
	req, err := http.NewRequest(http.MethodPost, w.srv.URL+"/v1/shards/0/estimate", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(remote.TraceHeader, "trace-echo-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(remote.TraceHeader); got != "trace-echo-42" {
		t.Errorf("worker echoed trace id %q, want %q", got, "trace-echo-42")
	}

	// The client stamps the header from the context's trace.
	var seen string
	capture := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		seen = r.Header.Get(remote.TraceHeader)
		w.srv.Config.Handler.ServeHTTP(rw, r)
	}))
	defer capture.Close()
	tr := obs.NewTracer(io.Discard).NewTrace()
	ctx := obs.ContextWithTrace(context.Background(), tr)
	sc := remote.NewShardClient(remote.NewClient(capture.URL, nil), 0, 0)
	if _, _, err := sc.CostEstimate(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if seen == "" || seen != tr.ID() {
		t.Errorf("client sent trace id %q, context trace is %q", seen, tr.ID())
	}
}

// TestServerErrorMapping checks the status-code contract: unknown shard →
// 404, undecodable request → 400, and both carry a JSON error body.
func TestServerErrorMapping(t *testing.T) {
	dir, _ := buildStore(t, 300, 2, 5)
	w := startWorker(t, dir, 2)

	post := func(path, body string) (*http.Response, string) {
		resp, err := http.Post(w.srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(b)
	}

	resp, body := post("/v1/shards/99/estimate", `{"cell":0}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown shard: status %d, want 404", resp.StatusCode)
	}
	var e remote.ErrorResponse
	if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
		t.Errorf("unknown shard: body %q is not an error envelope", body)
	}

	resp, body = post("/v1/shards/0/topk", `{not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json: status %d, want 400", resp.StatusCode)
	}
	if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
		t.Errorf("bad json: body %q is not an error envelope", body)
	}

	resp, body = post("/v1/shards/0/score", `{"model":{"kind":"no-such-model","spec":{}}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad model: status %d, want 400 (got body %q)", resp.StatusCode, body)
	}
}

// TestConnectReplicatedParity: a replicated remote coordinator answers a
// scoring pass identically to the local one it proxies.
func TestConnectReplicatedParity(t *testing.T) {
	ctx := context.Background()
	dir, ds := buildStore(t, 600, 2, 11)
	w1 := startWorker(t, dir, 2)
	w2 := startWorker(t, dir, 2)
	model := trainedModel(t, ds)

	rcoord, err := remote.Connect(ctx, remote.ConnectOptions{
		Endpoints:   []string{w1.srv.URL, w2.srv.URL},
		Replication: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rcoord.NumShards() != 2 || rcoord.Replication() != 2 {
		t.Fatalf("remote coordinator: %d shards, replication %d", rcoord.NumShards(), rcoord.Replication())
	}

	want := make([]float64, w1.coord.Meta().Grid.NumCells())
	if _, err := w1.coord.ScoreAll(ctx, model, want); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, rcoord.Meta().Grid.NumCells())
	if degraded, err := rcoord.ScoreAll(ctx, model, got); err != nil || len(degraded) != 0 {
		t.Fatalf("remote ScoreAll: degraded %v, err %v", degraded, err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("remote replicated scoring differs from local")
	}
}

// TestConnectMetaMismatch: a fleet serving two different stores is
// rejected at handshake.
func TestConnectMetaMismatch(t *testing.T) {
	dirA, _ := buildStore(t, 400, 2, 1)
	dirB, _ := buildStore(t, 500, 2, 2)
	wA := startWorker(t, dirA, 2)
	wB := startWorker(t, dirB, 2)
	_, err := remote.Connect(context.Background(), remote.ConnectOptions{
		Endpoints: []string{wA.srv.URL, wB.srv.URL},
	})
	if err == nil || !strings.Contains(err.Error(), "disagree") {
		t.Fatalf("mismatched fleet: err = %v, want a disagree error", err)
	}
}

func TestConnectValidation(t *testing.T) {
	if _, err := remote.Connect(context.Background(), remote.ConnectOptions{}); err == nil {
		t.Error("no endpoints: want error")
	}
	dir, _ := buildStore(t, 300, 2, 5)
	w := startWorker(t, dir, 2)
	_, err := remote.Connect(context.Background(), remote.ConnectOptions{
		Endpoints:   []string{w.srv.URL},
		Replication: 2,
	})
	if err == nil {
		t.Error("replication 2 over 1 endpoint: want error")
	}
}

// TestKillWorkerFailover: with R=2, losing one worker mid-flight degrades
// nothing — the surviving replica answers identically; losing both
// exhausts the replicas.
func TestKillWorkerFailover(t *testing.T) {
	ctx := context.Background()
	dir, _ := buildStore(t, 600, 2, 11)
	w1 := startWorker(t, dir, 2)
	w2 := startWorker(t, dir, 2)

	rcoord, err := remote.Connect(ctx, remote.ConnectOptions{
		Endpoints:   []string{w1.srv.URL, w2.srv.URL},
		Replication: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := []uint32{0, 3, 9, 100, 599}
	want, err := rcoord.FetchRows(ctx, ids)
	if err != nil {
		t.Fatal(err)
	}

	w1.srv.CloseClientConnections()
	w1.srv.Close()
	got, err := rcoord.FetchRows(ctx, ids)
	if err != nil {
		t.Fatalf("fetch after killing one of two replicas: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("failover changed the result set")
	}

	w2.srv.CloseClientConnections()
	w2.srv.Close()
	_, err = rcoord.FetchRows(ctx, ids)
	if err == nil {
		t.Fatal("fetch with every worker dead should fail")
	}
	if !errors.Is(err, shard.ErrReplicaExhausted) || !errors.Is(err, shard.ErrShardUnavailable) {
		t.Fatalf("err = %v, want ErrReplicaExhausted and ErrShardUnavailable in the chain", err)
	}
}
