package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/grid"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/obs"
	"github.com/uei-db/uei/internal/shard"
)

// Client speaks the wire protocol to one worker endpoint. It is shared by
// every ShardClient pointed at that worker.
type Client struct {
	base string
	http *http.Client
}

// NewClient dials nothing — it just records the endpoint. An endpoint
// without a scheme gets "http://".
func NewClient(endpoint string, hc *http.Client) *Client {
	if hc == nil {
		// No client-wide timeout: the coordinator's per-attempt deadline
		// governs, and a blanket timeout would break long traced sessions.
		hc = &http.Client{}
	}
	return &Client{base: normalizeEndpoint(endpoint), http: hc}
}

// Endpoint returns the normalized base URL.
func (c *Client) Endpoint() string { return c.base }

func normalizeEndpoint(ep string) string {
	if !strings.Contains(ep, "://") {
		ep = "http://" + ep
	}
	return strings.TrimRight(ep, "/")
}

// Meta fetches the worker's store identity (GET /v1/meta).
func (c *Client) Meta(ctx context.Context) (MetaResponse, error) {
	var meta MetaResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/meta", nil)
	if err != nil {
		return meta, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return meta, fmt.Errorf("worker %s: %w", c.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return meta, fmt.Errorf("worker %s: meta: %s", c.base, readError(resp))
	}
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		return meta, fmt.Errorf("worker %s: decoding meta: %w", c.base, err)
	}
	if meta.Manifest == nil {
		return meta, fmt.Errorf("worker %s: meta has no manifest", c.base)
	}
	if len(meta.ShardBytes) != meta.Manifest.Shards {
		return meta, fmt.Errorf("worker %s: meta lists %d shard sizes for %d shards", c.base, len(meta.ShardBytes), meta.Manifest.Shards)
	}
	return meta, nil
}

// ShardClient is the remote shard.Backend: one shard on one worker. Its
// I/O counters meter wire traffic (response payload bytes, request
// count), the remote analogue of the local backend's disk counters.
type ShardClient struct {
	c          *Client
	shard      int
	totalBytes int64
	bytesRead  atomic.Int64
	requests   atomic.Int64
}

// NewShardClient binds a client to one shard. totalBytes is the shard's
// on-disk payload from the worker's meta response.
func NewShardClient(c *Client, shard int, totalBytes int64) *ShardClient {
	return &ShardClient{c: c, shard: shard, totalBytes: totalBytes}
}

// Endpoint returns the worker this backend talks to.
func (b *ShardClient) Endpoint() string { return b.c.base }

// ShardID returns the shard this backend serves.
func (b *ShardClient) ShardID() int { return b.shard }

// post runs one shard operation round trip. The caller's trace id rides
// the TraceHeader so worker logs correlate with the session's spans, and
// ctx cancellation (per-attempt deadline, hedged-loser cancel) aborts the
// request in flight.
func post[Req, Resp any](ctx context.Context, b *ShardClient, op string, reqBody Req) (Resp, error) {
	var out Resp
	payload, err := json.Marshal(reqBody)
	if err != nil {
		return out, fmt.Errorf("encoding %s request: %w", op, err)
	}
	url := fmt.Sprintf("%s/v1/shards/%d/%s", b.c.base, b.shard, op)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return out, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tid := obs.TraceFromContext(ctx).ID(); tid != "" {
		req.Header.Set(TraceHeader, tid)
	}
	b.requests.Add(1)
	resp, err := b.c.http.Do(req)
	if err != nil {
		// Surface the context's own error so deadline/cancellation
		// classification (shardOutcome, degradation cause split) keeps
		// working across the transport.
		if ctx.Err() != nil {
			return out, ctx.Err()
		}
		return out, fmt.Errorf("worker %s shard %d %s: %w", b.c.base, b.shard, op, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBytes))
	b.bytesRead.Add(int64(len(body)))
	if err != nil {
		if ctx.Err() != nil {
			return out, ctx.Err()
		}
		return out, fmt.Errorf("worker %s shard %d %s: reading response: %w", b.c.base, b.shard, op, err)
	}
	if resp.StatusCode != http.StatusOK {
		var e ErrorResponse
		msg := strings.TrimSpace(string(body))
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return out, fmt.Errorf("worker %s shard %d %s: %s: %s", b.c.base, b.shard, op, resp.Status, msg)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return out, fmt.Errorf("worker %s shard %d %s: decoding response: %w", b.c.base, b.shard, op, err)
	}
	return out, nil
}

// ScoreAll implements shard.Backend by shipping the serialized model and
// the pass spec; the worker scores server-side and returns the aligned
// scores (plus d_k² bounds when requested).
func (b *ShardClient) ScoreAll(ctx context.Context, model learn.Classifier, spec shard.ScoreSpec) (shard.ScoreResult, error) {
	var blob []byte
	var err error
	if mm, ok := model.(shard.ModelMarshaler); ok {
		blob, err = mm.MarshalModel()
	} else {
		blob, err = learn.MarshalModel(model)
	}
	if err != nil {
		return shard.ScoreResult{}, fmt.Errorf("serializing model: %w", err)
	}
	req := ScoreRequest{Model: blob, Dirty: spec.Dirty, NeedDK: spec.NeedDK, Kernel: spec.Kernel}
	resp, err := post[ScoreRequest, ScoreResponse](ctx, b, "score", req)
	if err != nil {
		return shard.ScoreResult{}, err
	}
	return shard.ScoreResult{Scores: resp.Scores, DK2: resp.DK2}, nil
}

// MostUncertain implements shard.Backend.
func (b *ShardClient) MostUncertain(ctx context.Context, scores []float64, k int) ([]shard.CellScore, error) {
	resp, err := post[TopKRequest, TopKResponse](ctx, b, "topk", TopKRequest{Scores: scores, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Top, nil
}

// LoadCell implements shard.Backend.
func (b *ShardClient) LoadCell(ctx context.Context, cell grid.CellID) ([]uint32, [][]float64, int, error) {
	resp, err := post[LoadRequest, LoadResponse](ctx, b, "load", LoadRequest{Cell: cell})
	if err != nil {
		return nil, nil, 0, err
	}
	if len(resp.IDs) != len(resp.Vals) {
		return nil, nil, 0, fmt.Errorf("worker %s shard %d load: %d ids but %d value rows", b.c.base, b.shard, len(resp.IDs), len(resp.Vals))
	}
	return resp.IDs, resp.Vals, resp.Entries, nil
}

// FetchRows implements shard.Backend.
func (b *ShardClient) FetchRows(ctx context.Context, ids []uint32) ([]chunkstore.MergedRow, error) {
	resp, err := post[FetchRequest, FetchResponse](ctx, b, "fetch", FetchRequest{IDs: ids})
	if err != nil {
		return nil, err
	}
	return resp.Rows, nil
}

// Retrieve implements shard.Backend.
func (b *ShardClient) Retrieve(ctx context.Context, marked [][]bool) ([]shard.RetrievedRow, int, error) {
	resp, err := post[RetrieveRequest, RetrieveResponse](ctx, b, "retrieve", RetrieveRequest{Marked: marked})
	if err != nil {
		return nil, 0, err
	}
	return resp.Rows, resp.Entries, nil
}

// CostEstimate implements shard.Backend.
func (b *ShardClient) CostEstimate(ctx context.Context, cell grid.CellID) (int64, int, error) {
	resp, err := post[EstimateRequest, EstimateResponse](ctx, b, "estimate", EstimateRequest{Cell: cell})
	if err != nil {
		return 0, 0, err
	}
	return resp.Bytes, resp.Entries, nil
}

// Stats implements shard.Backend with wire counters.
func (b *ShardClient) Stats() shard.BackendStats {
	return shard.BackendStats{
		BytesRead:  b.bytesRead.Load(),
		ChunksRead: b.requests.Load(),
		TotalBytes: b.totalBytes,
	}
}

// ResetIOStats implements shard.Backend.
func (b *ShardClient) ResetIOStats() {
	b.bytesRead.Store(0)
	b.requests.Store(0)
}

// ConnectOptions configures Connect.
type ConnectOptions struct {
	// Endpoints lists the worker base URLs (scheme optional). Order does
	// not affect placement — the consistent-hash ring is keyed by name.
	Endpoints []string
	// Replication is the per-shard replica count (distinct endpoints);
	// zero means 1.
	Replication int
	// Deadline bounds every per-shard attempt (zero disables).
	Deadline time.Duration
	// HedgeDelay fires the hedged second replica (zero disables hedging).
	HedgeDelay time.Duration
	// HTTPClient overrides the shared transport (nil uses a default
	// client with no blanket timeout).
	HTTPClient *http.Client
}

// Connect performs the fleet handshake and assembles a replicated
// coordinator over remote backends: fetch /v1/meta from every endpoint,
// require a single store identity across the fleet, place shards on
// endpoints by consistent hashing, and wire one ShardClient per (shard,
// endpoint) assignment.
func Connect(ctx context.Context, opts ConnectOptions) (*shard.Coordinator, error) {
	if len(opts.Endpoints) == 0 {
		return nil, fmt.Errorf("remote: no endpoints")
	}
	endpoints := make([]string, len(opts.Endpoints))
	for i, ep := range opts.Endpoints {
		endpoints[i] = normalizeEndpoint(ep)
	}
	clients := make([]*Client, len(endpoints))
	var ref MetaResponse
	var refJSON []byte
	for i, ep := range endpoints {
		clients[i] = NewClient(ep, opts.HTTPClient)
		meta, err := clients[i].Meta(ctx)
		if err != nil {
			return nil, err
		}
		mj, err := json.Marshal(meta)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			ref, refJSON = meta, mj
			continue
		}
		if !bytes.Equal(mj, refJSON) {
			return nil, fmt.Errorf("remote: workers disagree on the store: %s and %s serve different manifests", endpoints[0], ep)
		}
	}
	rep := opts.Replication
	if rep < 1 {
		rep = 1
	}
	placement, err := shard.PlaceReplicas(ref.Manifest.Shards, endpoints, rep)
	if err != nil {
		return nil, err
	}
	replicas := make([][]shard.Backend, ref.Manifest.Shards)
	for s, eps := range placement {
		for _, e := range eps {
			replicas[s] = append(replicas[s], NewShardClient(clients[e], s, ref.ShardBytes[s]))
		}
	}
	return shard.NewCoordinator(ref.Manifest, replicas, shard.CoordinatorOptions{
		Deadline:   opts.Deadline,
		HedgeDelay: opts.HedgeDelay,
	})
}

// readError extracts the error body of a non-2xx response.
func readError(resp *http.Response) string {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e ErrorResponse
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return resp.Status + ": " + e.Error
	}
	return resp.Status + ": " + strings.TrimSpace(string(body))
}
