package shard

import (
	"context"
	"errors"
	"sync"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/grid"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/vec"
)

// ErrReplicaExhausted marks a shard operation that failed on every replica.
// It always travels together with ErrShardUnavailable in the error chain,
// so existing degradation logic keeps working; match with errors.Is to
// distinguish "all copies down" from a single-copy miss.
var ErrReplicaExhausted = errors.New("all shard replicas failed")

// Backend is one transport-agnostic replica of one shard: the coordinator
// speaks only this interface, whether the shard's data lives in-process
// (LocalBackend) or behind a uei-shardd worker (remote.Client backends).
//
// All methods are pure request/response — they return fresh values and
// never mutate coordinator state — because the hedging layer may run the
// same call on two replicas concurrently and discard the loser. Results
// must be byte-identical across replicas of the same shard: every
// implementation derives cell ownership deterministically from the
// manifest's grid and the fnv1a-cell-coords hash, so "the shard's owned
// cells, ascending" means the same list on both sides of any transport.
type Backend interface {
	// ScoreAll evaluates the model's uncertainty on the symbolic index
	// points of the shard's owned cells per spec: all of them (spec.Dirty
	// nil) or an ascending subset of owned-cell-local indices (the
	// incremental dirty set). Scores come back aligned with the scored
	// list; see ScoreSpec/ScoreResult. An empty shard returns a zero
	// ScoreResult.
	ScoreAll(ctx context.Context, model learn.Classifier, spec ScoreSpec) (ScoreResult, error)
	// MostUncertain returns the shard's top-k owned cells by score, best
	// first, using the global comparator (higher score, then lower cell
	// id). scores is aligned with the owned-cell list, exactly as
	// ScoreAll returned it.
	MostUncertain(ctx context.Context, scores []float64, k int) ([]CellScore, error)
	// LoadCell reconstructs one owned cell's tuples. Returned ids are
	// global row ids, ascending; entries is the posting-entry count the
	// merge visited (the e of the O(k·e) bound).
	LoadCell(ctx context.Context, cell grid.CellID) (ids []uint32, vals [][]float64, entries int, err error)
	// FetchRows reconstructs the subset of the given global row ids that
	// this shard holds. ids must be sorted ascending and deduplicated;
	// results come back under global ids, ascending.
	FetchRows(ctx context.Context, ids []uint32) ([]chunkstore.MergedRow, error)
	// Retrieve streams the shard's chunks overlapping the marked segments
	// (one flag slice per dimension) and returns the rows hit on every
	// dimension, under global ids, ascending — the per-shard body of
	// result retrieval.
	Retrieve(ctx context.Context, marked [][]bool) (rows []RetrievedRow, entries int, err error)
	// CostEstimate returns the bytes and posting entries loading the cell
	// would read from this shard.
	CostEstimate(ctx context.Context, cell grid.CellID) (bytes int64, entries int, err error)
	// Stats snapshots the backend's I/O counters without touching the
	// network or disk: a local backend reports its store's disk counters,
	// a remote backend reports client-side wire traffic.
	Stats() BackendStats
	// ResetIOStats zeroes the cumulative counters behind Stats.
	ResetIOStats()
}

// ScoreSpec selects which of a shard's owned symbolic points a ScoreAll
// pass evaluates and how.
type ScoreSpec struct {
	// Dirty, when non-nil, restricts scoring to these owned-cell-local
	// indices (positions in the shard's ascending owned-cell list), which
	// must themselves be ascending. Nil scores every owned cell. Non-nil
	// and empty is valid and scores nothing (the coordinator skips such
	// shards entirely).
	Dirty []int
	// NeedDK asks for each scored point's k-th-neighbor squared distance
	// (DWKNN only; requires Kernel). It feeds the exact incremental
	// rescorer's dirty-cell rule.
	NeedDK bool
	// Kernel routes scoring through the columnar block kernels. Off takes
	// the legacy row path; results are bit-identical either way — the flag
	// exists so the escape hatch (core Options.ScoreKernel) reaches every
	// transport.
	Kernel bool
}

// ScoreResult is one shard's answer to ScoreAll: uncertainties aligned
// with the scored list (the owned-cell list, or spec.Dirty when set), plus
// the d_k² bounds when requested.
type ScoreResult struct {
	Scores []float64
	DK2    []float64
}

// ModelMarshaler is implemented by classifiers that carry their own
// serialized form. The coordinator wraps the model in a memoizing
// implementation before a scoring scatter, so a remote transport fanning
// one pass out to S shards (plus hedged duplicates) serializes the model
// exactly once.
type ModelMarshaler interface {
	MarshalModel() ([]byte, error)
}

// modelBlob memoizes learn.MarshalModel behind ModelMarshaler while
// delegating classification to the wrapped model (local backends score
// through it unchanged).
type modelBlob struct {
	learn.Classifier
	once sync.Once
	blob []byte
	err  error
}

func (m *modelBlob) MarshalModel() ([]byte, error) {
	m.once.Do(func() { m.blob, m.err = learn.MarshalModel(m.Classifier) })
	return m.blob, m.err
}

// UnwrapClassifier exposes the wrapped model so the learn package's block
// and incremental fast paths (AsBlockClassifier, AsDWKNN) see through the
// memoizer.
func (m *modelBlob) UnwrapClassifier() learn.Classifier { return m.Classifier }

// CellScore pairs a global grid cell with its uncertainty score in top-k
// merges across shards.
type CellScore struct {
	Cell  grid.CellID `json:"cell"`
	Score float64     `json:"score"`
}

// RetrievedRow is one fully reconstructed row of a marked-segment scan,
// under its global id.
type RetrievedRow struct {
	ID   uint32    `json:"id"`
	Vals []float64 `json:"vals"`
}

// BackendStats is a point-in-time snapshot of one backend's I/O activity.
type BackendStats struct {
	// BytesRead and ChunksRead count cumulative reads: disk payload for a
	// local backend, HTTP response payload and request count for a remote
	// one.
	BytesRead  int64
	ChunksRead int64
	// TotalBytes is the static on-disk payload of the shard.
	TotalBytes int64
}

// Meta bundles the immutable identity of an opened sharded store — the
// facts the old Grid/Manifest/Bounds/Columns/Dims/RowCount/TotalBytes
// accessor sprawl exposed one by one. It is a value: copy freely.
type Meta struct {
	// Grid is the global symbolic-point lattice (identical to the flat
	// layout's grid over the same dataset).
	Grid *grid.Grid
	// Shards is S, the shard count.
	Shards int
	// Replication is the minimum replica count across shards (1 without
	// replication).
	Replication int
	// SegmentsPerDim is the per-dimension segment count the cell→shard
	// hash was computed over.
	SegmentsPerDim int
	// Columns are the attribute names in dimension order (read-only).
	Columns []string
	// RowCount is the number of tuples across all shards.
	RowCount int
	// Bounds are the global per-dimension value bounds.
	Bounds vec.Box
	// TotalBytes sums the on-disk chunk payload of every shard.
	TotalBytes int64
}

// Dims returns the dimensionality.
func (m Meta) Dims() int { return len(m.Columns) }
