package shard

import (
	"context"
	"sort"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/grid"
)

// ScanMarked streams one store's chunks overlapping the marked segments
// (one flag slice per dimension of g), dimension by dimension, and returns
// the rows a marked segment hit on every dimension, keyed by the store's
// own row ids, ascending. It is the per-store body of result retrieval,
// shared by the flat index, the local shard backend, and the uei-shardd
// worker — all three layouts must scan identically for the result sets to
// be byte-identical. entries counts the posting entries visited.
func ScanMarked(ctx context.Context, g *grid.Grid, st *chunkstore.Store, markedSeg [][]bool) (rows []RetrievedRow, entries int, err error) {
	dims := g.Dims()
	type partial struct {
		vals []float64
		hits int
	}
	table := make(map[uint32]*partial)
	for d := 0; d < dims; d++ {
		chunkSet := make(map[int]chunkstore.ChunkMeta)
		for seg, marked := range markedSeg[d] {
			if !marked {
				continue
			}
			lo, hi, err := g.SegmentInterval(d, seg)
			if err != nil {
				return nil, 0, err
			}
			chunks, err := st.ChunksOverlapping(d, lo, hi)
			if err != nil {
				return nil, 0, err
			}
			for _, c := range chunks {
				chunkSet[c.Seq] = c
			}
		}
		order := make([]int, 0, len(chunkSet))
		for seq := range chunkSet {
			order = append(order, seq)
		}
		sort.Ints(order)
		metas := make([]chunkstore.ChunkMeta, len(order))
		for i, seq := range order {
			metas[i] = chunkSet[seq]
		}
		dd := d
		err := st.ReadChunksOrdered(ctx, metas, func(_ chunkstore.ChunkMeta, es []chunkstore.Entry) error {
			for _, e := range es {
				entries++
				seg, err := g.SegmentOf(dd, e.Value)
				if err != nil {
					return err
				}
				if !markedSeg[dd][seg] {
					continue
				}
				for _, id := range e.Rows {
					p := table[id]
					if p == nil {
						if dd > 0 {
							continue // already failed an earlier dimension
						}
						p = &partial{vals: make([]float64, dims)}
						table[id] = p
					}
					if p.hits != dd {
						continue
					}
					p.vals[dd] = e.Value
					p.hits++
				}
			}
			return nil
		})
		if err != nil {
			return nil, 0, err
		}
		for id, p := range table {
			if p.hits != d+1 {
				delete(table, id)
			}
		}
	}
	rows = make([]RetrievedRow, 0, len(table))
	for id, p := range table {
		rows = append(rows, RetrievedRow{ID: id, Vals: p.vals})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	return rows, entries, nil
}
