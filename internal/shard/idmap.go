package shard

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Each shard's chunk store numbers its rows densely 0..n-1 (chunkstore
// requires it), but every consumer of the sharded index — sampling,
// labeling, retrieval — speaks global row ids. The idmap file records the
// translation: idmap[local] = global. It is strictly ascending because
// Build scans the dataset in global id order, which also means a shard's
// local id order and global id order agree — merged rows stay sorted
// after remapping.
//
// File layout (little endian):
//
//	magic   [4]byte "UEIM"
//	version uint16  (currently 1)
//	count   uint32
//	ids     count × uint32
//	crc32   uint32  IEEE CRC of everything before it

const (
	idMapFile    = "idmap"
	idMapMagic   = "UEIM"
	idMapVersion = 1
)

// SaveIDMap writes dir's idmap file atomically (tmp + rename). Exported
// for the stream subsystem, whose flushed segments carry the same CRC'd
// local→global translation as build-time shards.
func SaveIDMap(dir string, ids []uint32) error {
	buf := make([]byte, 0, 4+2+4+4*len(ids)+4)
	buf = append(buf, idMapMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, idMapVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ids)))
	for _, id := range ids {
		buf = binary.LittleEndian.AppendUint32(buf, id)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	path := filepath.Join(dir, idMapFile)
	if err := os.WriteFile(path+".tmp", buf, 0o644); err != nil {
		return fmt.Errorf("shard: write idmap: %w", err)
	}
	if err := os.Rename(path+".tmp", path); err != nil {
		return fmt.Errorf("shard: commit idmap: %w", err)
	}
	return nil
}

// LoadIDMap reads and verifies dir's idmap file (CRC, magic, strict
// ascension).
func LoadIDMap(dir string) ([]uint32, error) {
	data, err := os.ReadFile(filepath.Join(dir, idMapFile))
	if err != nil {
		return nil, fmt.Errorf("shard: read idmap: %w", err)
	}
	if len(data) < 4+2+4+4 {
		return nil, fmt.Errorf("shard: idmap truncated: %d bytes", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("shard: idmap corrupted: crc %#x, want %#x", got, want)
	}
	if string(body[:4]) != idMapMagic {
		return nil, fmt.Errorf("shard: idmap bad magic %q", body[:4])
	}
	if v := binary.LittleEndian.Uint16(body[4:6]); v != idMapVersion {
		return nil, fmt.Errorf("shard: unsupported idmap version %d", v)
	}
	count := binary.LittleEndian.Uint32(body[6:10])
	if int(count)*4 != len(body)-10 {
		return nil, fmt.Errorf("shard: idmap count %d disagrees with %d payload bytes", count, len(body)-10)
	}
	ids := make([]uint32, count)
	for i := range ids {
		ids[i] = binary.LittleEndian.Uint32(body[10+4*i:])
		if i > 0 && ids[i] <= ids[i-1] {
			return nil, fmt.Errorf("shard: idmap not strictly ascending at %d", i)
		}
	}
	return ids, nil
}
