package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Consistent-hash shard placement: shards map onto worker endpoints
// through a ring of virtual nodes, so adding or removing one worker moves
// only the shards that hashed near it instead of reshuffling everything.
// Placement is a pure function of (shard count, endpoint names,
// replication), so every coordinator over the same fleet derives the same
// assignment without coordination.

// placementVnodes is the virtual-node count per endpoint. 64 keeps the
// assignment spread within a few percent of even for small fleets while
// the ring stays tiny (64·E entries).
const placementVnodes = 64

// ringEntry is one virtual node: an endpoint's hash position on the ring.
type ringEntry struct {
	hash     uint64
	endpoint int
}

// PlaceReplicas assigns every shard in [0, shards) to replication distinct
// endpoints by consistent hashing: shard s's replicas are the owners of
// the first replication distinct endpoints clockwise from hash("shard/s").
// The first assignment is the primary. Endpoint names must be unique.
func PlaceReplicas(shards int, endpoints []string, replication int) ([][]int, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: placement needs at least 1 shard, got %d", shards)
	}
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("shard: placement needs at least one endpoint")
	}
	if replication < 1 {
		return nil, fmt.Errorf("shard: replication %d must be at least 1", replication)
	}
	if replication > len(endpoints) {
		return nil, fmt.Errorf("shard: replication %d needs %d endpoints, have %d", replication, replication, len(endpoints))
	}
	seen := make(map[string]bool, len(endpoints))
	for _, ep := range endpoints {
		if seen[ep] {
			return nil, fmt.Errorf("shard: duplicate endpoint %q", ep)
		}
		seen[ep] = true
	}
	ring := make([]ringEntry, 0, len(endpoints)*placementVnodes)
	for e, ep := range endpoints {
		for v := 0; v < placementVnodes; v++ {
			ring = append(ring, ringEntry{hash: placementHash(fmt.Sprintf("ep/%s/%d", ep, v)), endpoint: e})
		}
	}
	sort.Slice(ring, func(i, j int) bool {
		if ring[i].hash != ring[j].hash {
			return ring[i].hash < ring[j].hash
		}
		// Ties (astronomically rare) break by endpoint index so the ring
		// order stays deterministic.
		return ring[i].endpoint < ring[j].endpoint
	})
	out := make([][]int, shards)
	for s := 0; s < shards; s++ {
		key := placementHash(fmt.Sprintf("shard/%d", s))
		start := sort.Search(len(ring), func(i int) bool { return ring[i].hash >= key })
		picked := make([]int, 0, replication)
		used := make(map[int]bool, replication)
		for i := 0; len(picked) < replication; i++ {
			e := ring[(start+i)%len(ring)].endpoint
			if used[e] {
				continue
			}
			used[e] = true
			picked = append(picked, e)
		}
		out[s] = picked
	}
	return out, nil
}

// placementHash is FNV-1a over the key — stable across processes and Go
// versions, unlike the runtime map hash — pushed through a 64-bit
// finalizer. Raw FNV-1a leaves near-sequential keys ("shard/0",
// "shard/1", ...) clustered in a narrow band of the space (the last
// input byte only diffuses through one multiply), which collapses the
// ring into per-endpoint runs and starves endpoints of primaries; the
// avalanche step spreads them uniformly.
func placementHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
