package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/uei-db/uei/internal/chunkstore"
	"github.com/uei-db/uei/internal/grid"
	"github.com/uei-db/uei/internal/learn"
)

// stubBackend is a scripted in-memory Backend for replication tests: it
// can answer instantly, fail, or block until its context is cancelled.
type stubBackend struct {
	scores []float64
	fail   error
	// delay holds the answer this long; cancellation wins the race.
	delay time.Duration
	// block holds the answer until cancellation.
	block bool

	calls     atomic.Int64
	cancelled chan struct{}
	once      sync.Once
}

func newStubBackend() *stubBackend {
	return &stubBackend{cancelled: make(chan struct{})}
}

func (s *stubBackend) wait(ctx context.Context) error {
	var delayC <-chan time.Time
	if !s.block {
		if s.delay == 0 {
			return nil
		}
		t := time.NewTimer(s.delay)
		defer t.Stop()
		delayC = t.C
	}
	select {
	case <-ctx.Done():
		s.once.Do(func() { close(s.cancelled) })
		return ctx.Err()
	case <-delayC:
		return nil
	}
}

func (s *stubBackend) ScoreAll(ctx context.Context, _ learn.Classifier, _ ScoreSpec) (ScoreResult, error) {
	s.calls.Add(1)
	if err := s.wait(ctx); err != nil {
		return ScoreResult{}, err
	}
	if s.fail != nil {
		return ScoreResult{}, s.fail
	}
	return ScoreResult{Scores: append([]float64(nil), s.scores...)}, nil
}

func (s *stubBackend) MostUncertain(_ context.Context, scores []float64, k int) ([]CellScore, error) {
	return nil, nil
}

func (s *stubBackend) LoadCell(ctx context.Context, _ grid.CellID) ([]uint32, [][]float64, int, error) {
	s.calls.Add(1)
	if err := s.wait(ctx); err != nil {
		return nil, nil, 0, err
	}
	if s.fail != nil {
		return nil, nil, 0, s.fail
	}
	return []uint32{1}, [][]float64{{0.5, 0.5}}, 1, nil
}

func (s *stubBackend) FetchRows(context.Context, []uint32) ([]chunkstore.MergedRow, error) {
	return nil, nil
}

func (s *stubBackend) Retrieve(context.Context, [][]bool) ([]RetrievedRow, int, error) {
	return nil, 0, nil
}

func (s *stubBackend) CostEstimate(context.Context, grid.CellID) (int64, int, error) {
	return 0, 0, nil
}

func (s *stubBackend) Stats() BackendStats { return BackendStats{} }
func (s *stubBackend) ResetIOStats()       {}

// stubManifest describes a tiny two-shard store whose grid exists only in
// memory; stub backends answer for the (nonexistent) data.
func stubManifest() *Manifest {
	return &Manifest{
		FormatVersion:  manifestFormatVersion,
		Shards:         2,
		SegmentsPerDim: 2,
		Hash:           hashName,
		Columns:        []string{"x", "y"},
		RowCount:       2,
		MinValues:      []float64{0, 0},
		MaxValues:      []float64{1, 1},
		ShardRowCounts: []int{1, 1},
	}
}

// stubCoordinator builds a coordinator over scripted backends and sizes
// each stub's score vector to its shard's owned-cell count.
func stubCoordinator(t *testing.T, replicas [][]Backend, opts CoordinatorOptions) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(stubManifest(), replicas, opts)
	if err != nil {
		t.Fatal(err)
	}
	for s, reps := range replicas {
		for _, b := range reps {
			if st, ok := b.(*stubBackend); ok && st.scores == nil {
				st.scores = make([]float64, len(c.ownedCells[s]))
				for i := range st.scores {
					st.scores[i] = float64(s) + float64(i)/10
				}
			}
		}
	}
	return c
}

func stubUnc(c *Coordinator) []float64 {
	return make([]float64, c.Meta().Grid.NumCells())
}

// TestFailoverOnReplicaError: a failing primary falls over to the healthy
// replica with no degradation recorded.
func TestFailoverOnReplicaError(t *testing.T) {
	bad := newStubBackend()
	bad.fail = errors.New("injected")
	good := newStubBackend()
	other := newStubBackend()
	c := stubCoordinator(t, [][]Backend{{bad, good}, {other}}, CoordinatorOptions{})
	unc := stubUnc(c)
	degraded, err := c.ScoreAll(context.Background(), nil, unc)
	if err != nil {
		t.Fatal(err)
	}
	if len(degraded) != 0 {
		t.Fatalf("degraded = %v; failover should mask a single-replica failure", degraded)
	}
	if bad.calls.Load() != 1 || good.calls.Load() != 1 {
		t.Errorf("calls: bad %d, good %d; want 1 and 1", bad.calls.Load(), good.calls.Load())
	}
	for i, cell := range c.ownedCells[0] {
		if unc[cell] != good.scores[i] {
			t.Fatalf("unc[%d] = %v, want the surviving replica's score %v", cell, unc[cell], good.scores[i])
		}
	}
}

// TestReplicaExhaustedErrorChain: when every replica fails, the error is
// errors.Is-able for both ErrShardUnavailable and ErrReplicaExhausted and
// names the shard.
func TestReplicaExhaustedErrorChain(t *testing.T) {
	injected := errors.New("injected")
	bad1, bad2 := newStubBackend(), newStubBackend()
	bad1.fail, bad2.fail = injected, injected
	other := newStubBackend()
	c := stubCoordinator(t, [][]Backend{{bad1, bad2}, {other}}, CoordinatorOptions{})

	// Degradable path: the shard is skipped, not fatal.
	degraded, err := c.ScoreAll(context.Background(), nil, stubUnc(c))
	if err != nil {
		t.Fatal(err)
	}
	if len(degraded) != 1 || degraded[0] != 0 {
		t.Fatalf("degraded = %v, want [0]", degraded)
	}

	// Owner-routed path: the full chain surfaces.
	var cell grid.CellID = c.ownedCells[0][0]
	_, _, _, err = c.LoadCell(context.Background(), cell)
	if err == nil {
		t.Fatal("LoadCell on a dead shard should fail")
	}
	for _, sentinel := range []error{ErrShardUnavailable, ErrReplicaExhausted, injected} {
		if !errors.Is(err, sentinel) {
			t.Errorf("errors.Is(%v, %v) = false", err, sentinel)
		}
	}
	if want := fmt.Sprintf("shard %d", 0); !contains(err.Error(), want) {
		t.Errorf("error %q does not name the shard", err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestHedgeDisabledNeverFansOut: without a hedge delay a healthy (if slow)
// primary is the only replica contacted.
func TestHedgeDisabledNeverFansOut(t *testing.T) {
	slow := newStubBackend()
	slow.delay = 10 * time.Millisecond
	spare := newStubBackend()
	other := newStubBackend()
	c := stubCoordinator(t, [][]Backend{{slow, spare}, {other}}, CoordinatorOptions{})
	if _, err := c.ScoreAll(context.Background(), nil, stubUnc(c)); err != nil {
		t.Fatal(err)
	}
	if n := spare.calls.Load(); n != 0 {
		t.Errorf("spare replica called %d times with hedging disabled", n)
	}
}

// TestHedgedCallWinsAndCancelsLoser: a hedged request fires the second
// replica after the delay, takes the first answer, and cancels the losing
// attempt's context instead of leaking its goroutine.
func TestHedgedCallWinsAndCancelsLoser(t *testing.T) {
	slow := newStubBackend()
	slow.block = true // never answers; only cancellation releases it
	fast := newStubBackend()
	other := newStubBackend()
	c := stubCoordinator(t, [][]Backend{{slow, fast}, {other}},
		CoordinatorOptions{HedgeDelay: 2 * time.Millisecond})
	unc := stubUnc(c)
	start := time.Now()
	degraded, err := c.ScoreAll(context.Background(), nil, unc)
	if err != nil {
		t.Fatal(err)
	}
	if len(degraded) != 0 {
		t.Fatalf("degraded = %v; the hedge should have masked the slow replica", degraded)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hedged call took %v; should not wait for the blocked primary", elapsed)
	}
	if fast.calls.Load() != 1 || slow.calls.Load() != 1 {
		t.Errorf("calls: slow %d, fast %d; want both attempted", slow.calls.Load(), fast.calls.Load())
	}
	for i, cell := range c.ownedCells[0] {
		if unc[cell] != fast.scores[i] {
			t.Fatalf("unc[%d] = %v, want the winner's score %v", cell, unc[cell], fast.scores[i])
		}
	}
	select {
	case <-slow.cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("losing replica's context was never cancelled")
	}
}

// TestHedgingLeaksNoGoroutines drives many hedged calls whose losers block
// until cancellation and checks the goroutine count returns to baseline.
func TestHedgingLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		slow := newStubBackend()
		slow.block = true
		fast := newStubBackend()
		other := newStubBackend()
		c := stubCoordinator(t, [][]Backend{{slow, fast}, {other}},
			CoordinatorOptions{HedgeDelay: time.Millisecond})
		if _, err := c.ScoreAll(context.Background(), nil, stubUnc(c)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
