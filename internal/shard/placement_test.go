package shard

import (
	"reflect"
	"testing"
)

func TestPlaceReplicasDeterministic(t *testing.T) {
	eps := []string{"10.0.0.1:9101", "10.0.0.2:9101", "10.0.0.3:9101"}
	a, err := PlaceReplicas(16, eps, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlaceReplicas(16, eps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("placement is not deterministic:\n%v\n%v", a, b)
	}
}

func TestPlaceReplicasDistinctEndpoints(t *testing.T) {
	eps := []string{"a", "b", "c", "d"}
	for _, r := range []int{1, 2, 3, 4} {
		got, err := PlaceReplicas(32, eps, r)
		if err != nil {
			t.Fatalf("replication %d: %v", r, err)
		}
		if len(got) != 32 {
			t.Fatalf("replication %d: %d assignments for 32 shards", r, len(got))
		}
		for s, reps := range got {
			if len(reps) != r {
				t.Fatalf("shard %d has %d replicas, want %d", s, len(reps), r)
			}
			seen := map[int]bool{}
			for _, e := range reps {
				if e < 0 || e >= len(eps) {
					t.Fatalf("shard %d placed on endpoint %d of %d", s, e, len(eps))
				}
				if seen[e] {
					t.Fatalf("shard %d placed twice on endpoint %d: %v", s, e, reps)
				}
				seen[e] = true
			}
		}
	}
}

// TestPlaceReplicasSpread: with many shards over a small fleet, every
// endpoint should own at least one primary — the vnode count exists
// precisely to keep the assignment near-even.
func TestPlaceReplicasSpread(t *testing.T) {
	eps := []string{"w0", "w1", "w2", "w3"}
	got, err := PlaceReplicas(64, eps, 1)
	if err != nil {
		t.Fatal(err)
	}
	primaries := make([]int, len(eps))
	for _, reps := range got {
		primaries[reps[0]]++
	}
	for e, n := range primaries {
		if n == 0 {
			t.Errorf("endpoint %s owns no primaries: %v", eps[e], primaries)
		}
	}
}

// TestPlaceReplicasStability is the consistent-hashing property: removing
// one endpoint must only move the shards that were placed on it.
func TestPlaceReplicasStability(t *testing.T) {
	before := []string{"w0", "w1", "w2", "w3"}
	after := []string{"w0", "w1", "w3"} // w2 removed
	a, err := PlaceReplicas(48, before, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlaceReplicas(48, after, 1)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for s := range a {
		was, now := before[a[s][0]], after[b[s][0]]
		if was == "w2" {
			continue // had to move
		}
		if was != now {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d shards moved despite their endpoint surviving", moved)
	}
}

func TestPlaceReplicasValidation(t *testing.T) {
	eps := []string{"a", "b"}
	cases := []struct {
		name   string
		shards int
		eps    []string
		r      int
	}{
		{"no shards", 0, eps, 1},
		{"no endpoints", 4, nil, 1},
		{"zero replication", 4, eps, 0},
		{"replication exceeds fleet", 4, eps, 3},
		{"duplicate endpoint", 4, []string{"a", "a"}, 1},
	}
	for _, tc := range cases {
		if _, err := PlaceReplicas(tc.shards, tc.eps, tc.r); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}
