// Package shard partitions a UEI store into S self-contained shards and
// coordinates per-iteration work across them as a scatter-gather: each
// shard owns the grid cells whose hashed coordinates map to it, holds a
// private chunk store over exactly the rows falling in those cells, and
// answers score/top-k/load requests for its slice. The coordinator merges
// per-shard answers into globally exact results while all shards are
// healthy, and degrades gracefully — skipping a slow or failing shard for
// the iteration — when they are not (ROADMAP: horizontal scaling past one
// store, in the spirit of partial adaptive indexing).
package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"github.com/uei-db/uei/internal/chunkstore"
)

// ManifestFile is the top-level manifest name of a sharded store
// directory. The constant lives in chunkstore so flat opens can detect the
// sharded layout without importing this package.
const ManifestFile = chunkstore.ShardManifestFile

// manifestFormatVersion is bumped on incompatible sharded-layout changes.
const manifestFormatVersion = 1

// hashName identifies the cell→shard assignment function recorded at
// build time; Open refuses manifests built with a different assignment
// (ownership would silently disagree between ingest and serving).
const hashName = "fnv1a-cell-coords/v1"

// MaxShards bounds the shard count to something a single coordinator can
// reasonably fan out to.
const MaxShards = 1024

// Manifest is the sharded store's persistent top-level metadata. The
// global dataset facts (bounds, columns, row count) are recorded here so
// the coordinator rebuilds the exact grid the flat layout would use,
// independent of any one shard's local value range.
type Manifest struct {
	FormatVersion int `json:"format_version"`
	// Shards is S, the number of shard subdirectories.
	Shards int `json:"shards"`
	// SegmentsPerDim fixes the grid the cell→shard hash was computed
	// over; opening with a different grid would scramble ownership.
	SegmentsPerDim int `json:"segments_per_dim"`
	// Hash names the cell→shard assignment function (hashName).
	Hash string `json:"hash"`
	// Columns are the attribute names, in dimension order.
	Columns []string `json:"columns"`
	// RowCount is the number of tuples across all shards.
	RowCount int `json:"row_count"`
	// MinValues/MaxValues bound each dimension over the whole dataset —
	// identical to what a flat build of the same dataset records.
	MinValues []float64 `json:"min_values"`
	MaxValues []float64 `json:"max_values"`
	// TargetChunkBytes is the per-shard chunk size target used at build.
	TargetChunkBytes int `json:"target_chunk_bytes"`
	// ShardRowCounts[i] is shard i's row count (consistency check at open).
	ShardRowCounts []int `json:"shard_row_counts"`
}

// NewManifest assembles and validates a manifest from the store facts.
// Live (stream) snapshots use it to synthesize the commit point a
// build-time layout would have written as shards.json, so the same
// coordinator serves both.
func NewManifest(shards, segmentsPerDim int, columns []string, minValues, maxValues []float64, targetChunkBytes int, shardRowCounts []int) (*Manifest, error) {
	total := 0
	for _, n := range shardRowCounts {
		total += n
	}
	m := &Manifest{
		FormatVersion:    manifestFormatVersion,
		Shards:           shards,
		SegmentsPerDim:   segmentsPerDim,
		Hash:             hashName,
		Columns:          append([]string(nil), columns...),
		RowCount:         total,
		MinValues:        append([]float64(nil), minValues...),
		MaxValues:        append([]float64(nil), maxValues...),
		TargetChunkBytes: targetChunkBytes,
		ShardRowCounts:   append([]int(nil), shardRowCounts...),
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ShardDirName returns the subdirectory name of shard i.
func ShardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// IsShardedDir reports whether dir carries a sharded store layout
// (shards.json present).
func IsShardedDir(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, ManifestFile))
	return err == nil
}

func (m *Manifest) validate() error {
	if m.FormatVersion != manifestFormatVersion {
		return fmt.Errorf("shard: manifest format %d, want %d", m.FormatVersion, manifestFormatVersion)
	}
	if m.Shards < 2 || m.Shards > MaxShards {
		return fmt.Errorf("shard: manifest has %d shards, want 2..%d", m.Shards, MaxShards)
	}
	if m.Hash != hashName {
		return fmt.Errorf("shard: manifest uses assignment %q, this build understands %q", m.Hash, hashName)
	}
	if m.SegmentsPerDim < 1 {
		return fmt.Errorf("shard: manifest has %d segments per dimension", m.SegmentsPerDim)
	}
	dims := len(m.Columns)
	if dims == 0 {
		return fmt.Errorf("shard: manifest has no columns")
	}
	if len(m.MinValues) != dims || len(m.MaxValues) != dims {
		return fmt.Errorf("shard: manifest bounds disagree with %d columns", dims)
	}
	if len(m.ShardRowCounts) != m.Shards {
		return fmt.Errorf("shard: %d shard row counts for %d shards", len(m.ShardRowCounts), m.Shards)
	}
	total := 0
	for i, n := range m.ShardRowCounts {
		if n < 0 {
			return fmt.Errorf("shard: shard %d has negative row count", i)
		}
		total += n
	}
	if total != m.RowCount {
		return fmt.Errorf("shard: shard row counts sum to %d, manifest says %d", total, m.RowCount)
	}
	return nil
}

// saveManifest writes the top-level manifest atomically. It is written
// last during Build, so its presence marks a complete sharded store.
func saveManifest(dir string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: marshal manifest: %w", err)
	}
	tmp := filepath.Join(dir, ManifestFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("shard: write manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestFile)); err != nil {
		return fmt.Errorf("shard: commit manifest: %w", err)
	}
	return nil
}

// LoadManifest reads and validates the top-level shard manifest. A
// directory holding a flat store instead fails with
// chunkstore.ErrLayoutMismatch.
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			if _, serr := os.Stat(filepath.Join(dir, "manifest.json")); serr == nil {
				return nil, fmt.Errorf("shard: %s holds a flat store (manifest.json present): %w", dir, chunkstore.ErrLayoutMismatch)
			}
		}
		return nil, fmt.Errorf("shard: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: parse manifest: %w", err)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
