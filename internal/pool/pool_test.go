package pool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"github.com/uei-db/uei/internal/obs"
)

// TestDoCoversRange checks every index is visited exactly once, at several
// worker counts, including n smaller than the worker count.
func TestDoCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, n := range []int{0, 1, 3, 7, 100, 1000} {
			p := New(workers)
			visits := make([]int32, n)
			err := p.Do(context.Background(), n, func(lo, hi int) error {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
			p.Close()
		}
	}
}

// TestDoFirstErrorWins checks the lowest-shard error is returned.
func TestDoFirstErrorWins(t *testing.T) {
	p := New(4)
	defer p.Close()
	errA := errors.New("a")
	errB := errors.New("b")
	err := p.Do(context.Background(), 100, func(lo, hi int) error {
		if lo == 0 {
			return errA
		}
		return errB
	})
	if !errors.Is(err, errA) {
		t.Fatalf("got %v, want %v", err, errA)
	}
}

// TestDoCanceledContext checks a pre-canceled context short-circuits.
func TestDoCanceledContext(t *testing.T) {
	p := New(4)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := p.Do(ctx, 10, func(lo, hi int) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("shard ran despite canceled context")
	}
}

// TestCloseIdempotent checks Close can be called repeatedly.
func TestCloseIdempotent(t *testing.T) {
	p := New(4)
	p.Close()
	p.Close()
}

// TestDefaultWorkers checks zero selects GOMAXPROCS.
func TestDefaultWorkers(t *testing.T) {
	p := New(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("Workers = %d", p.Workers())
	}
}

// TestInstrument checks the pool publishes its metrics.
func TestInstrument(t *testing.T) {
	reg := obs.NewRegistry()
	p := New(2)
	defer p.Close()
	p.Instrument(reg)
	if err := p.Do(context.Background(), 10, func(lo, hi int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("uei_pool_runs_total").Value(); v != 1 {
		t.Fatalf("runs counter = %d", v)
	}
	if v := reg.Counter("uei_pool_shards_total").Value(); v != 2 {
		t.Fatalf("shards counter = %d", v)
	}
	if v := reg.Gauge("uei_pool_workers").Value(); v != 2 {
		t.Fatalf("workers gauge = %g", v)
	}
}
