// Package pool provides the reusable worker pool behind UEI's parallel
// per-iteration hot path. A Pool owns a fixed set of long-lived goroutines
// (started once, at index open) and shards embarrassingly parallel loops —
// symbolic-point scoring, posterior batches — across them without per-call
// goroutine churn. Work is always split into contiguous shards so results
// land in caller-owned slices with no synchronization beyond the final
// barrier, keeping parallel output byte-identical to the serial path.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/uei-db/uei/internal/obs"
)

// Pool is a fixed-size worker pool. The zero value is not usable; call New.
// A Pool with one worker runs everything inline on the caller's goroutine,
// so serial configurations pay no synchronization cost at all.
type Pool struct {
	workers int
	tasks   chan func()
	once    sync.Once

	// Observability instruments (nil until Instrument; nil-safe no-ops).
	gWorkers *obs.Gauge
	mRuns    *obs.Counter
	mShards  *obs.Counter
	hUtil    *obs.Histogram
}

// New creates a pool with the given number of workers. Zero (or negative)
// selects runtime.GOMAXPROCS(0). With more than one worker the goroutines
// start immediately and idle on a task channel until Close.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.tasks = make(chan func())
		for i := 0; i < workers; i++ {
			go p.worker()
		}
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Instrument registers the pool's metrics: the uei_pool_workers gauge, the
// uei_pool_runs_total / uei_pool_shards_total counters, and the
// uei_pool_utilization ratio histogram (per-run busy time divided by
// workers × wall time; 1.0 means every worker was busy the whole run).
func (p *Pool) Instrument(reg *obs.Registry) {
	p.gWorkers = reg.Gauge("uei_pool_workers")
	p.mRuns = reg.Counter("uei_pool_runs_total")
	p.mShards = reg.Counter("uei_pool_shards_total")
	p.hUtil = reg.Histogram("uei_pool_utilization", []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1})
	p.gWorkers.SetInt(int64(p.workers))
}

func (p *Pool) worker() {
	for fn := range p.tasks {
		fn()
	}
}

// Close shuts the worker goroutines down. It is idempotent; a closed pool
// must not be used again.
func (p *Pool) Close() {
	p.once.Do(func() {
		if p.tasks != nil {
			close(p.tasks)
		}
	})
}

// Do splits [0, n) into up to Workers contiguous shards and runs fn on each
// concurrently, blocking until all shards finish. Shards never overlap, so
// fn may write to disjoint ranges of shared slices without locking. The
// first error (lowest shard index) wins; a canceled ctx short-circuits
// dispatch and is returned as ctx.Err(). With one worker (or n small) fn
// runs inline, making the serial path identical to a plain loop.
func (p *Pool) Do(ctx context.Context, n int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	shards := p.workers
	if shards > n {
		shards = n
	}
	if shards <= 1 || p.tasks == nil {
		err := fn(0, n)
		p.observe(1, 0, 0)
		return err
	}

	errs := make([]error, shards)
	var busyNanos atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < shards; s++ {
		lo := s * n / shards
		hi := (s + 1) * n / shards
		s := s
		wg.Add(1)
		p.tasks <- func() {
			defer wg.Done()
			t0 := time.Now()
			errs[s] = fn(lo, hi)
			busyNanos.Add(int64(time.Since(t0)))
		}
	}
	wg.Wait()
	wall := time.Since(start)
	p.observe(shards, busyNanos.Load(), wall.Nanoseconds())
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// DoCapped is Do with an additional ceiling on the shard count — the seam
// for small work items (incremental dirty-cell rescoring) where fanning a
// few thousand floats across every worker costs more in handoff than it
// saves in compute. maxShards <= 1 runs fn inline. Sharding math is
// identical to Do's (contiguous disjoint ranges, first error by shard
// order), so results are byte-identical at any cap.
func (p *Pool) DoCapped(ctx context.Context, n, maxShards int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if maxShards <= 1 || p.tasks == nil {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := fn(0, n)
		p.observe(1, 0, 0)
		return err
	}
	if maxShards >= p.workers {
		return p.Do(ctx, n, fn)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	shards := maxShards
	if shards > n {
		shards = n
	}
	errs := make([]error, shards)
	var busyNanos atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < shards; s++ {
		lo := s * n / shards
		hi := (s + 1) * n / shards
		s := s
		wg.Add(1)
		p.tasks <- func() {
			defer wg.Done()
			t0 := time.Now()
			errs[s] = fn(lo, hi)
			busyNanos.Add(int64(time.Since(t0)))
		}
	}
	wg.Wait()
	wall := time.Since(start)
	p.observe(shards, busyNanos.Load(), wall.Nanoseconds())
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// observe records one Do call against the pool's instruments.
func (p *Pool) observe(shards int, busyNanos, wallNanos int64) {
	p.mRuns.Inc()
	p.mShards.Add(int64(shards))
	if wallNanos > 0 && p.workers > 0 {
		p.hUtil.Observe(float64(busyNanos) / (float64(wallNanos) * float64(p.workers)))
	}
}

// String describes the pool for diagnostics.
func (p *Pool) String() string { return fmt.Sprintf("pool(%d workers)", p.workers) }
