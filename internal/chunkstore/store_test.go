package chunkstore

import (
	"context"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/vec"
)

// buildTestStore builds a store over a small sky dataset with tiny chunks
// so multi-chunk code paths are exercised.
func buildTestStore(t *testing.T, n int, seed int64) (*Store, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Build(t.TempDir(), ds, BuildOptions{TargetChunkBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	return st, ds
}

func TestBuildValidation(t *testing.T) {
	empty := dataset.New(dataset.MustSchema("x"), 0)
	if _, err := Build(t.TempDir(), empty, BuildOptions{}); err == nil {
		t.Error("empty dataset should fail")
	}
	ds, _ := dataset.GenerateSky(dataset.SkyConfig{N: 10, Seed: 1})
	if _, err := Build(t.TempDir(), ds, BuildOptions{TargetChunkBytes: 16}); err == nil {
		t.Error("tiny chunk target should fail")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "junk"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(dir, ds, BuildOptions{}); err == nil {
		t.Error("non-empty directory should fail")
	}
}

func TestBuildAndOpen(t *testing.T) {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 1000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := Build(dir, ds, BuildOptions{TargetChunkBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if st.RowCount() != 1000 || st.Dims() != 5 {
		t.Fatalf("RowCount=%d Dims=%d", st.RowCount(), st.Dims())
	}
	wantBounds, _ := ds.Bounds()
	if !vec.Equal(st.Bounds().Min, wantBounds.Min) || !vec.Equal(st.Bounds().Max, wantBounds.Max) {
		t.Error("store bounds disagree with dataset bounds")
	}
	if st.TotalBytes() <= 0 {
		t.Error("TotalBytes should be positive")
	}

	reopened, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.RowCount() != 1000 {
		t.Errorf("reopened RowCount = %d", reopened.RowCount())
	}
	// Every dimension's chunks must tile the value space in ascending,
	// non-overlapping order, and chunk files must exist.
	m := reopened.Manifest()
	for d, chunks := range m.Chunks {
		if len(chunks) < 2 {
			t.Errorf("dimension %d has %d chunks; want multiple at 4 KiB target", d, len(chunks))
		}
		for i, c := range chunks {
			if i > 0 && chunks[i-1].MaxValue >= c.MinValue {
				t.Errorf("dimension %d chunks %d/%d overlap", d, i-1, i)
			}
			if _, err := os.Stat(filepath.Join(dir, c.File)); err != nil {
				t.Errorf("chunk file missing: %v", err)
			}
		}
	}
}

func TestOpenMissingManifest(t *testing.T) {
	if _, err := Open(t.TempDir(), nil); err == nil {
		t.Error("missing manifest should fail")
	}
}

func TestOpenCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestFile), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil); err == nil {
		t.Error("corrupt manifest should fail")
	}
}

func TestChunksOverlapping(t *testing.T) {
	st, _ := buildTestStore(t, 800, 3)
	all := st.Manifest().Chunks[0]
	full, err := st.ChunksOverlapping(0, math.Inf(-1), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(all) {
		t.Errorf("full range returned %d chunks, want %d", len(full), len(all))
	}
	// A range strictly inside one chunk returns exactly that chunk.
	mid := all[len(all)/2]
	span := mid.MaxValue - mid.MinValue
	if span > 0 {
		lo := mid.MinValue + span*0.25
		hi := mid.MinValue + span*0.5
		got, err := st.ChunksOverlapping(0, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0].File != mid.File {
			t.Errorf("interior range returned %d chunks", len(got))
		}
	}
	// Out-of-range queries return nothing.
	if got, _ := st.ChunksOverlapping(0, all[len(all)-1].MaxValue+1, all[len(all)-1].MaxValue+2); len(got) != 0 {
		t.Errorf("beyond-max range returned %d chunks", len(got))
	}
	if _, err := st.ChunksOverlapping(9, 0, 1); err == nil {
		t.Error("bad dimension should fail")
	}
	if _, err := st.ChunksOverlapping(0, 2, 1); err == nil {
		t.Error("inverted range should fail")
	}
}

func TestReadChunkAndIOStats(t *testing.T) {
	st, _ := buildTestStore(t, 500, 4)
	meta := st.Manifest().Chunks[1][0]
	entries, err := st.ReadChunk(context.Background(), meta)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != meta.Entries {
		t.Errorf("decoded %d entries, manifest says %d", len(entries), meta.Entries)
	}
	bytes, chunks := st.IOStats()
	if bytes != meta.Bytes || chunks != 1 {
		t.Errorf("IOStats = (%d, %d), want (%d, 1)", bytes, chunks, meta.Bytes)
	}
	st.ResetIOStats()
	if b, c := st.IOStats(); b != 0 || c != 0 {
		t.Error("ResetIOStats failed")
	}
}

func TestReadChunkDetectsCorruption(t *testing.T) {
	ds, _ := dataset.GenerateSky(dataset.SkyConfig{N: 300, Seed: 5})
	dir := t.TempDir()
	st, err := Build(dir, ds, BuildOptions{TargetChunkBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	meta := st.Manifest().Chunks[0][0]
	path := filepath.Join(dir, meta.File)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ReadChunk(context.Background(), meta); err == nil {
		t.Error("corrupted chunk read should fail")
	}
}

func TestReadChunkMissingFile(t *testing.T) {
	st, _ := buildTestStore(t, 100, 6)
	meta := st.Manifest().Chunks[0][0]
	meta.File = "no_such_file.chk"
	if _, err := st.ReadChunk(context.Background(), meta); err == nil {
		t.Error("missing chunk file should fail")
	}
}

func TestMergeRegionMatchesBruteForce(t *testing.T) {
	st, ds := buildTestStore(t, 2000, 7)
	bounds, _ := ds.Bounds()
	widths := bounds.Widths()
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		center := ds.Row(dataset.RowID(rng.Intn(ds.Len())))
		min := make([]float64, 5)
		max := make([]float64, 5)
		for j := 0; j < 5; j++ {
			half := widths[j] * (0.05 + rng.Float64()*0.2)
			min[j] = center[j] - half
			max[j] = center[j] + half
		}
		box := vec.NewBox(min, max)

		rows, visited, err := st.MergeRegion(context.Background(), box)
		if err != nil {
			t.Fatal(err)
		}
		want := ds.Select(box)
		if len(rows) != len(want) {
			t.Fatalf("trial %d: merge found %d rows, brute force %d", trial, len(rows), len(want))
		}
		for i, r := range rows {
			if r.ID != uint32(want[i]) {
				t.Fatalf("trial %d: row %d id %d, want %d", trial, i, r.ID, want[i])
			}
			if !vec.Equal(r.Vals, ds.Row(want[i])) {
				t.Fatalf("trial %d: row %d values %v, want %v", trial, i, r.Vals, ds.Row(want[i]))
			}
		}
		if visited <= 0 {
			t.Errorf("trial %d: no entries visited", trial)
		}
	}
}

func TestMergeRegionEmptyResult(t *testing.T) {
	st, _ := buildTestStore(t, 300, 9)
	// A box beyond the data domain matches nothing.
	min := []float64{3000, 3000, 400, 95, 1100}
	box := vec.NewBox(min, []float64{3001, 3001, 401, 96, 1101})
	rows, _, err := st.MergeRegion(context.Background(), box)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("expected empty result, got %d rows", len(rows))
	}
}

func TestMergeRegionDimsMismatch(t *testing.T) {
	st, _ := buildTestStore(t, 100, 10)
	box := vec.NewBox([]float64{0}, []float64{1})
	if _, _, err := st.MergeRegion(context.Background(), box); err == nil {
		t.Error("dims mismatch should fail")
	}
}

func TestFetchRows(t *testing.T) {
	st, ds := buildTestStore(t, 600, 11)
	ids := []uint32{0, 17, 599, 300}
	rows, err := st.FetchRows(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ids) {
		t.Fatalf("fetched %d rows, want %d", len(rows), len(ids))
	}
	// Returned sorted by id.
	wantOrder := []uint32{0, 17, 300, 599}
	for i, r := range rows {
		if r.ID != wantOrder[i] {
			t.Fatalf("row %d id %d, want %d", i, r.ID, wantOrder[i])
		}
		if !vec.Equal(r.Vals, ds.Row(dataset.RowID(r.ID))) {
			t.Fatalf("row %d values differ", r.ID)
		}
	}
	if rows, err := st.FetchRows(context.Background(), nil); err != nil || rows != nil {
		t.Error("empty fetch should be a no-op")
	}
	if _, err := st.FetchRows(context.Background(), []uint32{10000}); err == nil {
		t.Error("out-of-range id should fail")
	}
}

func TestChunkSizesRoughlyEqual(t *testing.T) {
	st, _ := buildTestStore(t, 3000, 12)
	const target = 2048
	for d, chunks := range st.Manifest().Chunks {
		for i, c := range chunks {
			// Every chunk except a dimension's last must have reached the
			// target (the writer cuts at >= target); headers add slack.
			if i < len(chunks)-1 && c.Bytes < target {
				t.Errorf("dim %d chunk %d is %d bytes, below target %d", d, i, c.Bytes, target)
			}
			if c.Bytes > 3*target {
				t.Errorf("dim %d chunk %d is %d bytes, way above target %d", d, i, c.Bytes, target)
			}
		}
	}
}

func TestQuickMergeEquivalence(t *testing.T) {
	// Property: MergeRegion over random boxes on a shared store always
	// equals the brute-force filter.
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 700, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Build(t.TempDir(), ds, BuildOptions{TargetChunkBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	bounds, _ := ds.Bounds()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		min := make([]float64, 5)
		max := make([]float64, 5)
		for j := 0; j < 5; j++ {
			a := bounds.Min[j] + rng.Float64()*(bounds.Max[j]-bounds.Min[j])
			b := bounds.Min[j] + rng.Float64()*(bounds.Max[j]-bounds.Min[j])
			min[j], max[j] = math.Min(a, b), math.Max(a, b)
		}
		box := vec.NewBox(min, max)
		rows, _, err := st.MergeRegion(context.Background(), box)
		if err != nil {
			return false
		}
		want := ds.Select(box)
		if len(rows) != len(want) {
			return false
		}
		for i := range rows {
			if rows[i].ID != uint32(want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
