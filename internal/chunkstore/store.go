package chunkstore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"github.com/uei-db/uei/internal/blockcache"
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/iothrottle"
	"github.com/uei-db/uei/internal/memcache"
	"github.com/uei-db/uei/internal/obs"
	"github.com/uei-db/uei/internal/vec"
)

// ShardManifestFile is the top-level manifest a sharded store directory
// carries instead of a flat manifest.json. It is defined here (not in
// internal/shard) so layout detection has no import cycle.
const ShardManifestFile = "shards.json"

// ErrLayoutMismatch reports that a store directory holds the other layout
// than the one the caller asked to open — a sharded directory opened flat,
// or a flat directory opened sharded (including a shard-count mismatch).
// Match with errors.Is.
var ErrLayoutMismatch = errors.New("store layout does not match requested mode")

// DefaultTargetChunkBytes is the paper's Table 1 setting ("Size of
// Individual Data Chunk: 470KB"), which the full-scale reproduction
// targets (experiment.FullConfig). The quick-mode experiment harness
// deliberately overrides it down to 16KB (experiment.DefaultConfig) so
// that multi-chunk read paths are exercised at small N — see EXPERIMENTS.md
// "Table 1" and ablation A1 for the measured size trade-off.
const DefaultTargetChunkBytes = 470 * 1024

// BuildOptions configures Build.
type BuildOptions struct {
	// TargetChunkBytes is the equal-size chunk target; chunks are cut as
	// soon as their encoded payload reaches it. Zero selects
	// DefaultTargetChunkBytes.
	TargetChunkBytes int
	// Limiter, when non-nil, meters chunk reads (not writes: Build is the
	// once-per-dataset initialization phase). It is retained by the
	// returned Store.
	Limiter *iothrottle.Limiter
}

// BlockCache is the store's shared decoded-chunk cache type: decoded
// entry slices keyed by chunk file name, SIEVE-evicted under a byte
// budget, with single-flight miss deduplication.
type BlockCache = blockcache.Cache[[]Entry]

// NewBlockCache builds a decoded-chunk cache over a byte-budget ledger.
// Install it with SetBlockCache; one cache may back many stores as long as
// their chunk file names cannot collide (stores over distinct directories
// should use distinct caches).
func NewBlockCache(budget *memcache.Budget) (*BlockCache, error) {
	return blockcache.New[[]Entry](budget)
}

// Store is an opened chunk store. Reads are safe for concurrent use; the
// store itself holds no mutable state beyond I/O counters and the
// optional shared block cache installed before first use.
type Store struct {
	dir      string
	manifest *Manifest
	limiter  *iothrottle.Limiter
	// cache, when non-nil, holds decoded chunks so every consumer —
	// session views, the ordered read pipeline, the prefetcher — shares
	// one read+decode per hot chunk. Set at open time, before reads.
	cache *BlockCache
	// workers bounds the concurrent chunk reads of the ordered read
	// pipeline (ReadChunksOrdered); <= 1 means fully sequential.
	workers int
	// cachePrefix namespaces this store's block-cache keys. Shard stores
	// reuse the same chunk file names (d00_c00000.chk, ...), so sharing one
	// cache across shards requires a distinct prefix per store.
	cachePrefix string

	bytesRead  atomic.Int64
	chunksRead atomic.Int64

	// Observability instruments (nil until Instrument; nil-safe no-ops).
	mBytes  *obs.Counter
	mChunks *obs.Counter
	hRead   *obs.Histogram
}

// Build creates a chunk store in dir (which must be empty or absent) from
// the dataset, implementing Algorithm 2 lines 2-6: vertical decomposition,
// per-dimension sort, split into equal-size chunk files, plus the manifest
// the mapping method m is derived from.
func Build(dir string, ds *dataset.Dataset, opts BuildOptions) (*Store, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("chunkstore: refusing to build from an empty dataset")
	}
	target := opts.TargetChunkBytes
	if target == 0 {
		target = DefaultTargetChunkBytes
	}
	if target < 64 {
		return nil, fmt.Errorf("chunkstore: target chunk size %d below 64-byte minimum", target)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("chunkstore: create %s: %w", dir, err)
	}
	if entries, err := os.ReadDir(dir); err != nil {
		return nil, fmt.Errorf("chunkstore: inspect %s: %w", dir, err)
	} else if len(entries) > 0 {
		return nil, fmt.Errorf("chunkstore: directory %s is not empty", dir)
	}

	dims := ds.Dims()
	bounds, err := ds.Bounds()
	if err != nil {
		return nil, err
	}
	m := &Manifest{
		FormatVersion:    manifestFormatVersion,
		Columns:          ds.Schema().Names(),
		RowCount:         ds.Len(),
		TargetChunkBytes: target,
		Chunks:           make([][]ChunkMeta, dims),
		MinValues:        bounds.Min,
		MaxValues:        bounds.Max,
	}

	for d := 0; d < dims; d++ {
		entries := decompose(ds, d)
		chunks, err := writeDimensionChunks(dir, d, entries, target)
		if err != nil {
			return nil, err
		}
		m.Chunks[d] = chunks
	}
	if err := saveManifest(dir, m); err != nil {
		return nil, err
	}
	return &Store{dir: dir, manifest: m, limiter: opts.Limiter}, nil
}

// writeDimensionChunks splits one dimension's sorted entries into
// equal-size chunk files and returns their metadata.
func writeDimensionChunks(dir string, dim int, entries []Entry, target int) ([]ChunkMeta, error) {
	var metas []ChunkMeta
	var pending []Entry
	pendingBytes := 0
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		meta, err := writeChunkFile(dir, dim, len(metas), pending)
		if err != nil {
			return err
		}
		metas = append(metas, meta)
		pending = pending[:0]
		pendingBytes = 0
		return nil
	}
	for _, e := range entries {
		pending = append(pending, e)
		pendingBytes += entryEncodedSize(e)
		if pendingBytes >= target {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return metas, nil
}

// writeChunkFile encodes and persists one chunk, returning its metadata.
// It is shared by the in-memory and external build paths.
func writeChunkFile(dir string, dim, seq int, entries []Entry) (ChunkMeta, error) {
	name := fmt.Sprintf("d%02d_c%05d.chk", dim, seq)
	data, err := encodeChunk(dim, entries)
	if err != nil {
		return ChunkMeta{}, err
	}
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		return ChunkMeta{}, fmt.Errorf("chunkstore: write chunk %s: %w", name, err)
	}
	refs := 0
	for _, e := range entries {
		refs += len(e.Rows)
	}
	return ChunkMeta{
		File:     name,
		Dim:      dim,
		Seq:      seq,
		Entries:  len(entries),
		RowRefs:  refs,
		MinValue: entries[0].Value,
		MaxValue: entries[len(entries)-1].Value,
		Bytes:    int64(len(data)),
	}, nil
}

// Open loads an existing store's manifest. limiter may be nil for
// unthrottled reads. Opening a sharded store directory this way fails with
// ErrLayoutMismatch — each shard subdirectory is a flat store, the top
// level is not.
func Open(dir string, limiter *iothrottle.Limiter) (*Store, error) {
	m, err := loadManifest(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			if _, serr := os.Stat(filepath.Join(dir, ShardManifestFile)); serr == nil {
				return nil, fmt.Errorf("chunkstore: %s holds a sharded store (%s present): %w", dir, ShardManifestFile, ErrLayoutMismatch)
			}
		}
		return nil, err
	}
	return &Store{dir: dir, manifest: m, limiter: limiter}, nil
}

// BuildEmpty writes a valid zero-row store into dir: a manifest carrying
// the schema and (externally supplied) bounds, and no chunk files. Sharded
// builds use it for shards that own no rows, so every shard directory
// opens uniformly; Build keeps refusing empty datasets for user-facing
// stores.
func BuildEmpty(dir string, columns []string, bounds vec.Box, targetChunkBytes int) (*Store, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("chunkstore: empty store needs at least one column")
	}
	if targetChunkBytes == 0 {
		targetChunkBytes = DefaultTargetChunkBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("chunkstore: create %s: %w", dir, err)
	}
	m := &Manifest{
		FormatVersion:    manifestFormatVersion,
		Columns:          append([]string(nil), columns...),
		RowCount:         0,
		TargetChunkBytes: targetChunkBytes,
		Chunks:           make([][]ChunkMeta, len(columns)),
		MinValues:        append([]float64(nil), bounds.Min...),
		MaxValues:        append([]float64(nil), bounds.Max...),
	}
	if err := saveManifest(dir, m); err != nil {
		return nil, err
	}
	return &Store{dir: dir, manifest: m}, nil
}

// Manifest returns the store's metadata. Callers must treat it as
// read-only.
func (s *Store) Manifest() *Manifest { return s.manifest }

// Dims returns the number of dimensions.
func (s *Store) Dims() int { return len(s.manifest.Columns) }

// Columns returns the attribute names in dimension order. Callers must
// treat the slice as read-only.
func (s *Store) Columns() []string { return s.manifest.Columns }

// RowCount returns the number of tuples in the store.
func (s *Store) RowCount() int { return s.manifest.RowCount }

// Bounds returns the per-dimension value bounds recorded at build time.
func (s *Store) Bounds() vec.Box {
	return vec.NewBox(s.manifest.MinValues, s.manifest.MaxValues)
}

// TotalBytes returns the on-disk payload size of all chunks, the
// denominator of "memory budget as a fraction of data size".
func (s *Store) TotalBytes() int64 {
	var n int64
	for _, dim := range s.manifest.Chunks {
		for _, c := range dim {
			n += c.Bytes
		}
	}
	return n
}

// ChunksOverlapping returns the metadata of dimension dim's chunks whose
// value range intersects [lo, hi], in sequence order. Because chunk ranges
// are disjoint and ascending, this is the contiguous run the mapping method
// m records for a subspace.
func (s *Store) ChunksOverlapping(dim int, lo, hi float64) ([]ChunkMeta, error) {
	if dim < 0 || dim >= s.Dims() {
		return nil, fmt.Errorf("chunkstore: dimension %d out of range [0,%d)", dim, s.Dims())
	}
	if lo > hi {
		return nil, fmt.Errorf("chunkstore: inverted range [%g,%g]", lo, hi)
	}
	var out []ChunkMeta
	for _, c := range s.manifest.Chunks[dim] {
		if c.MaxValue < lo {
			continue
		}
		if c.MinValue > hi {
			break
		}
		out = append(out, c)
	}
	return out, nil
}

// Instrument registers the store's I/O metrics with a registry:
// chunkstore_read_bytes_total, chunkstore_chunk_opens_total, and the
// per-chunk read latency histogram chunkstore_chunk_read_seconds
// (throttled reads included, so the histogram reflects the I/O the
// exploration loop actually waits on).
func (s *Store) Instrument(reg *obs.Registry) {
	s.mBytes = reg.Counter("chunkstore_read_bytes_total")
	s.mChunks = reg.Counter("chunkstore_chunk_opens_total")
	s.hRead = reg.Histogram("chunkstore_chunk_read_seconds", nil)
}

// SetWorkers bounds the fan-out of concurrent chunk reads during cell
// reconstruction. Values <= 1 keep every read path fully sequential.
func (s *Store) SetWorkers(n int) { s.workers = n }

// SetBlockCache installs a shared decoded-chunk cache on every read path
// of this store. It must be called before reads begin (it is not
// synchronized against them). With a cache installed, the entry slices
// ReadChunk and ReadChunksOrdered return are shared between all callers
// and must be treated as immutable — every existing consumer already only
// reads them.
func (s *Store) SetBlockCache(c *BlockCache) { s.cache = c }

// BlockCache returns the installed decoded-chunk cache, or nil.
func (s *Store) BlockCache() *BlockCache { return s.cache }

// SetCacheKeyPrefix namespaces this store's entries in a shared block
// cache. Stores over distinct directories produce identical chunk file
// names, so a cache shared between them (the sharded layout) must be
// installed with a unique prefix per store. Like SetBlockCache it must be
// called before reads begin.
func (s *Store) SetCacheKeyPrefix(prefix string) { s.cachePrefix = prefix }

// ReadChunk loads and decodes one chunk, verifying its CRC and accounting
// the read against the limiter and the store's I/O counters. A canceled ctx
// aborts before the read is issued. With a block cache installed, a hit
// costs no I/O at all and concurrent misses for the same chunk coalesce
// into a single disk read; the returned entries are then shared and must
// not be mutated.
func (s *Store) ReadChunk(ctx context.Context, meta ChunkMeta) ([]Entry, error) {
	if s.cache == nil {
		return s.readChunkDisk(ctx, meta)
	}
	return s.cache.GetOrLoad(ctx, s.cachePrefix+meta.File, func(ctx context.Context) ([]Entry, int64, error) {
		entries, err := s.readChunkDisk(ctx, meta)
		if err != nil {
			return nil, 0, err
		}
		return entries, DecodedEntriesBytes(entries), nil
	})
}

// readChunkDisk wraps the raw disk read in a "chunk_read" span when the
// context is traced (the guard is one context lookup, so the untraced
// hot path stays free).
func (s *Store) readChunkDisk(ctx context.Context, meta ChunkMeta) ([]Entry, error) {
	if obs.SpanFromContext(ctx) == nil {
		return s.readChunkDiskRaw(ctx, meta)
	}
	_, span := obs.StartSpan(ctx, "chunk_read")
	entries, err := s.readChunkDiskRaw(ctx, meta)
	attrs := map[string]float64{"dim": float64(meta.Dim), "seq": float64(meta.Seq)}
	if err != nil {
		span.SetOutcome("error")
	} else {
		attrs["bytes"] = float64(DecodedEntriesBytes(entries))
	}
	span.End(attrs)
	return entries, err
}

// readChunkDiskRaw is the uncached read path: pooled file read, CRC check,
// decode, I/O accounting. The raw file buffer is recycled as soon as the
// decode (which copies everything out) finishes.
func (s *Store) readChunkDiskRaw(ctx context.Context, meta ChunkMeta) ([]Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	bp, err := readFilePooled(filepath.Join(s.dir, meta.File))
	if err != nil {
		return nil, fmt.Errorf("chunkstore: read chunk %s: %w", meta.File, err)
	}
	defer putFileBuf(bp)
	data := *bp
	s.limiter.Acquire(int64(len(data)))
	s.bytesRead.Add(int64(len(data)))
	s.chunksRead.Add(1)
	s.mBytes.Add(int64(len(data)))
	s.mChunks.Inc()
	s.hRead.ObserveDuration(time.Since(start))
	dim, entries, err := decodeChunk(data)
	if err != nil {
		return nil, fmt.Errorf("chunkstore: chunk %s: %w", meta.File, err)
	}
	if dim != meta.Dim {
		return nil, fmt.Errorf("chunkstore: chunk %s belongs to dimension %d, manifest says %d", meta.File, dim, meta.Dim)
	}
	return entries, nil
}

// DecodedEntriesBytes estimates the resident footprint of a decoded chunk:
// per entry the value, the Rows slice header, and four bytes per row id,
// plus the outer slice header. It is the byte size the block cache
// reserves against its budget per resident chunk.
func DecodedEntriesBytes(entries []Entry) int64 {
	n := int64(24) // outer slice header
	for i := range entries {
		n += 32 + int64(len(entries[i].Rows))*4
	}
	return n
}

// ReadChunksOrdered reads and decodes the given chunks — concurrently, with
// fan-out bounded by SetWorkers — and delivers them to visit strictly in
// slice order, one at a time. It overlaps chunk I/O and CRC/decode with the
// caller's merge CPU while preserving the sequential merge semantics, so
// results are identical to a ReadChunk loop. At most `workers` decoded
// chunks are in memory at once (the §3.1 one-chunk discipline relaxed to
// the configured fan-out). With workers <= 1 it degrades to the plain loop.
func (s *Store) ReadChunksOrdered(ctx context.Context, metas []ChunkMeta, visit func(meta ChunkMeta, entries []Entry) error) error {
	w := s.workers
	if w > len(metas) {
		w = len(metas)
	}
	if w <= 1 {
		for _, m := range metas {
			entries, err := s.ReadChunk(ctx, m)
			if err != nil {
				return err
			}
			if err := visit(m, entries); err != nil {
				return err
			}
		}
		return nil
	}

	type res struct {
		entries []Entry
		err     error
	}
	results := make([]chan res, len(metas))
	for i := range results {
		results[i] = make(chan res, 1)
	}
	// done releases the dispatcher and any in-flight readers when the
	// consumer returns early (error or cancellation), so no goroutine leaks.
	done := make(chan struct{})
	defer close(done)
	// sem holds one token per dispatched-but-not-consumed chunk, bounding
	// both concurrent reads and buffered decoded chunks to w.
	sem := make(chan struct{}, w)
	go func() {
		for i, m := range metas {
			select {
			case sem <- struct{}{}:
			case <-done:
				return
			}
			go func(i int, m ChunkMeta) {
				entries, err := s.ReadChunk(ctx, m)
				select {
				case results[i] <- res{entries, err}:
				case <-done:
				}
			}(i, m)
		}
	}()
	for i, m := range metas {
		r := <-results[i]
		if r.err != nil {
			return r.err
		}
		<-sem
		if err := visit(m, r.entries); err != nil {
			return err
		}
	}
	return nil
}

// IOStats returns cumulative bytes and chunk files read through this store
// handle.
func (s *Store) IOStats() (bytes int64, chunks int64) {
	return s.bytesRead.Load(), s.chunksRead.Load()
}

// ResetIOStats zeroes the I/O counters (between experiment phases).
func (s *Store) ResetIOStats() {
	s.bytesRead.Store(0)
	s.chunksRead.Store(0)
}
