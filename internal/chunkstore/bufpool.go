package chunkstore

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// fileBufPool recycles the raw file buffers chunk reads decode from. A
// chunk file lives only from read to decode — decodeChunk copies every
// value and row id out — so the buffer can go straight back to the pool,
// cutting one len(chunk) allocation per read on the hot path. Buffers are
// sized for the default chunk target; larger chunks grow their pooled
// buffer in place and keep the larger capacity for reuse.
var fileBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, DefaultTargetChunkBytes+4096)
		return &b
	},
}

// readFilePooled reads path into a pooled buffer. The caller must hand the
// buffer back with putFileBuf when done with its contents.
func readFilePooled(path string) (*[]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := int(st.Size())
	bp := fileBufPool.Get().(*[]byte)
	b := *bp
	if cap(b) < size {
		b = make([]byte, size)
	} else {
		b = b[:size]
	}
	if _, err := io.ReadFull(f, b); err != nil {
		fileBufPool.Put(bp)
		return nil, fmt.Errorf("read %d bytes: %w", size, err)
	}
	*bp = b
	return bp, nil
}

// putFileBuf returns a pooled read buffer. The buffer's contents must not
// be referenced afterwards.
func putFileBuf(bp *[]byte) { fileBufPool.Put(bp) }
