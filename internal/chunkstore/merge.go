package chunkstore

import (
	"context"
	"fmt"
	"math"
	"sort"

	"github.com/uei-db/uei/internal/vec"
)

// MergedRow is one reconstructed tuple.
type MergedRow struct {
	ID   uint32
	Vals []float64
}

// partial accumulates a tuple during the hash merge. hits counts how many
// dimensions have landed a value; a row is complete only when hits equals
// the dimensionality (i.e. the row's value lies inside the box on every
// dimension).
type partial struct {
	vals []float64
	hits int
}

// MergeRegion reconstructs every tuple whose coordinates all fall inside
// box, by streaming the overlapping chunks of each dimension through a
// row-id hash table exactly as §3.1 describes: one chunk in memory at a
// time, entries visited sequentially, the chunk buffer released before the
// next chunk is loaded. Rows that match some but not all dimensions are
// discarded at the end.
//
// The returned rows are sorted by id for determinism. MergeRegion also
// reports how many posting entries were visited (the paper's e term) so
// callers can verify the O(k·e) claim.
func (s *Store) MergeRegion(ctx context.Context, box vec.Box) (rows []MergedRow, entriesVisited int, err error) {
	dims := s.Dims()
	if box.Dims() != dims {
		return nil, 0, fmt.Errorf("chunkstore: box has %d dims, store has %d", box.Dims(), dims)
	}
	var chunks []ChunkMeta
	for d := 0; d < dims; d++ {
		overlap, err := s.ChunksOverlapping(d, box.Min[d], box.Max[d])
		if err != nil {
			return nil, 0, err
		}
		chunks = append(chunks, overlap...)
	}
	return s.MergeChunks(ctx, box, chunks)
}

// MergeChunks is MergeRegion with an explicit chunk list, letting UEI's
// precomputed mapping method m supply the chunks instead of re-deriving
// them from the manifest. The chunk list must cover (possibly with slack)
// every chunk whose value range intersects the box on its own dimension;
// extra chunks cost I/O but not correctness.
//
// Chunk reads fan out concurrently (bounded by SetWorkers) through the
// ordered read pipeline, overlapping I/O and decode with the hash-table
// merge; entries are still applied strictly in chunk order, so the merged
// rows are identical to the sequential path.
func (s *Store) MergeChunks(ctx context.Context, box vec.Box, chunks []ChunkMeta) (rows []MergedRow, entriesVisited int, err error) {
	dims := s.Dims()
	if box.Dims() != dims {
		return nil, 0, fmt.Errorf("chunkstore: box has %d dims, store has %d", box.Dims(), dims)
	}
	byDim := make([][]ChunkMeta, dims)
	for _, c := range chunks {
		if c.Dim < 0 || c.Dim >= dims {
			return nil, 0, fmt.Errorf("chunkstore: chunk %s has dimension %d out of range", c.File, c.Dim)
		}
		byDim[c.Dim] = append(byDim[c.Dim], c)
	}

	table := make(map[uint32]*partial)
	for d := 0; d < dims; d++ {
		lo, hi := box.Min[d], box.Max[d]
		dd := d
		err := s.ReadChunksOrdered(ctx, byDim[d], func(_ ChunkMeta, entries []Entry) error {
			for _, e := range entries {
				entriesVisited++
				if e.Value < lo {
					continue
				}
				if e.Value > hi {
					break // entries are sorted; nothing further matches
				}
				for _, id := range e.Rows {
					p := table[id]
					if p == nil {
						if dd > 0 {
							// The row already failed an earlier dimension;
							// creating it now could only produce a false
							// positive with NaN holes, so skip it.
							continue
						}
						p = &partial{vals: newNaNRow(dims)}
						table[id] = p
					}
					if p.hits != dd {
						// Missed at least one earlier dimension.
						continue
					}
					p.vals[dd] = e.Value
					p.hits++
				}
			}
			// entries goes out of scope here: the decoded chunk buffer is
			// released (or, with a block cache installed, stays resident
			// for other readers) and its pipeline slot reused.
			return nil
		})
		if err != nil {
			return nil, 0, err
		}
		// Drop rows that did not land a value in this dimension; they can
		// never complete, and pruning keeps the table within the region's
		// working set rather than the first dimension's slab.
		for id, p := range table {
			if p.hits != d+1 {
				delete(table, id)
			}
		}
	}

	rows = make([]MergedRow, 0, len(table))
	for id, p := range table {
		if p.hits == dims {
			rows = append(rows, MergedRow{ID: id, Vals: p.vals})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	return rows, entriesVisited, nil
}

// FetchRows reconstructs the tuples with the given ids by streaming every
// chunk once (a single full pass over the store). It backs the
// initialization-time uniform sample of Algorithm 2 line 12; per-iteration
// code never calls it.
func (s *Store) FetchRows(ctx context.Context, ids []uint32) ([]MergedRow, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	dims := s.Dims()
	want := make(map[uint32]*partial, len(ids))
	for _, id := range ids {
		if int(id) >= s.RowCount() {
			return nil, fmt.Errorf("chunkstore: row %d out of range [0,%d)", id, s.RowCount())
		}
		want[id] = &partial{vals: newNaNRow(dims)}
	}
	for d := 0; d < dims; d++ {
		dd := d
		err := s.ReadChunksOrdered(ctx, s.manifest.Chunks[d], func(_ ChunkMeta, entries []Entry) error {
			for _, e := range entries {
				for _, id := range e.Rows {
					if p, ok := want[id]; ok {
						p.vals[dd] = e.Value
						p.hits++
					}
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	out := make([]MergedRow, 0, len(want))
	for id, p := range want {
		if p.hits != dims {
			return nil, fmt.Errorf("chunkstore: row %d incomplete after full pass (%d/%d dims); store is inconsistent", id, p.hits, dims)
		}
		out = append(out, MergedRow{ID: id, Vals: p.vals})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

func newNaNRow(dims int) []float64 {
	vals := make([]float64, dims)
	for i := range vals {
		vals[i] = math.NaN()
	}
	return vals
}
