package chunkstore

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"github.com/uei-db/uei/internal/memcache"
	"github.com/uei-db/uei/internal/vec"
)

// withBlockCache installs a fresh cache of the given capacity on the
// store and returns it.
func withBlockCache(t *testing.T, s *Store, capacity int64) *BlockCache {
	t.Helper()
	b, err := memcache.NewBudget(capacity)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewBlockCache(b)
	if err != nil {
		t.Fatal(err)
	}
	s.SetBlockCache(c)
	return c
}

// TestBlockCacheSingleFlightOneDiskRead is the single-flight stress
// contract: 64 goroutines all missing on the same cold chunk must produce
// exactly one disk read (asserted via the store's chunksRead counter),
// and every one of them must see the same decoded entries.
func TestBlockCacheSingleFlightOneDiskRead(t *testing.T) {
	st, _ := buildTestStore(t, 2000, 7)
	withBlockCache(t, st, 64<<20)
	meta := st.Manifest().Chunks[0][0]
	want, err := st.readChunkDisk(context.Background(), meta)
	if err != nil {
		t.Fatal(err)
	}
	st.ResetIOStats()

	const goroutines = 64
	start := make(chan struct{})
	var wg sync.WaitGroup
	results := make([][]Entry, goroutines)
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = st.ReadChunk(context.Background(), meta)
		}(i)
	}
	close(start)
	wg.Wait()

	if _, chunks := st.IOStats(); chunks != 1 {
		t.Fatalf("chunksRead = %d, want exactly 1 for %d concurrent misses", chunks, goroutines)
	}
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], want) {
			t.Fatalf("goroutine %d decoded entries differ from uncached read", i)
		}
	}
	s := st.BlockCache().Stats()
	if s.Misses != 1 {
		t.Fatalf("cache misses = %d, want 1", s.Misses)
	}
}

// TestBlockCacheWarmHitNoDiskRead verifies the warm path costs no I/O:
// after the first read, re-reading the same chunk moves neither the byte
// nor the chunk counter.
func TestBlockCacheWarmHitNoDiskRead(t *testing.T) {
	st, _ := buildTestStore(t, 2000, 11)
	withBlockCache(t, st, 64<<20)
	ctx := context.Background()
	meta := st.Manifest().Chunks[1][0]
	first, err := st.ReadChunk(ctx, meta)
	if err != nil {
		t.Fatal(err)
	}
	st.ResetIOStats()
	second, err := st.ReadChunk(ctx, meta)
	if err != nil {
		t.Fatal(err)
	}
	if bytes, chunks := st.IOStats(); bytes != 0 || chunks != 0 {
		t.Fatalf("warm hit cost %d bytes / %d chunk reads, want 0/0", bytes, chunks)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("warm hit returned different entries")
	}
}

// TestBlockCacheMergeParity proves results are byte-identical to the
// uncached path: MergeRegion over several boxes, at read fan-outs 1/4/8,
// cold and warm, must equal the uncached merge exactly.
func TestBlockCacheMergeParity(t *testing.T) {
	ctx := context.Background()
	boxes := []struct{ lo, hi float64 }{
		{0.1, 0.4},
		{0.3, 0.7},
		{0.0, 1.0},
	}
	for _, workers := range []int{1, 4, 8} {
		plain, _ := buildTestStore(t, 3000, 13)
		plain.SetWorkers(workers)
		cached, _ := buildTestStore(t, 3000, 13)
		cached.SetWorkers(workers)
		withBlockCache(t, cached, 64<<20)

		for round := 0; round < 2; round++ { // round 1 hits the warm cache
			for bi, bx := range boxes {
				lo := make([]float64, plain.Dims())
				hi := make([]float64, plain.Dims())
				b := plain.Bounds()
				for d := range lo {
					w := b.Max[d] - b.Min[d]
					lo[d] = b.Min[d] + bx.lo*w
					hi[d] = b.Min[d] + bx.hi*w
				}
				box := vec.NewBox(lo, hi)
				wantRows, wantVisited, err := plain.MergeRegion(ctx, box)
				if err != nil {
					t.Fatal(err)
				}
				gotRows, gotVisited, err := cached.MergeRegion(ctx, box)
				if err != nil {
					t.Fatal(err)
				}
				if wantVisited != gotVisited {
					t.Fatalf("workers=%d round=%d box=%d: visited %d != %d", workers, round, bi, gotVisited, wantVisited)
				}
				if !reflect.DeepEqual(wantRows, gotRows) {
					t.Fatalf("workers=%d round=%d box=%d: merged rows differ with cache", workers, round, bi)
				}
			}
		}
		if s := cached.BlockCache().Stats(); s.Hits == 0 {
			t.Fatalf("workers=%d: expected warm-round cache hits, got stats %+v", workers, s)
		}
	}
}

// TestBlockCacheEvictionUnderPressure keeps a tiny budget and checks the
// store still answers correctly while the cache continuously evicts.
func TestBlockCacheEvictionUnderPressure(t *testing.T) {
	st, _ := buildTestStore(t, 3000, 17)
	c := withBlockCache(t, st, 8<<10) // far smaller than the decoded working set
	ctx := context.Background()
	for round := 0; round < 3; round++ {
		for d := 0; d < st.Dims(); d++ {
			for _, meta := range st.Manifest().Chunks[d] {
				entries, err := st.ReadChunk(ctx, meta)
				if err != nil {
					t.Fatal(err)
				}
				if len(entries) != meta.Entries {
					t.Fatalf("chunk %s: %d entries, manifest says %d", meta.File, len(entries), meta.Entries)
				}
			}
		}
	}
	s := c.Stats()
	if s.Evictions == 0 {
		t.Fatalf("no evictions under a %d-byte budget: %+v", 8<<10, s)
	}
	if s.ResidentBytes > c.Capacity() {
		t.Fatalf("resident %d exceeds capacity %d", s.ResidentBytes, c.Capacity())
	}
}
