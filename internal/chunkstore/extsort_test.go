package chunkstore

import (
	"context"
	"fmt"
	"testing"

	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/vec"
)

func TestBuildExternalMatchesInMemoryBuild(t *testing.T) {
	ds, err := dataset.GenerateSky(dataset.SkyConfig{N: 3000, Seed: 201})
	if err != nil {
		t.Fatal(err)
	}
	memDir := t.TempDir()
	memStore, err := Build(memDir, ds, BuildOptions{TargetChunkBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	extDir := t.TempDir()
	// Tiny spill buffer so many runs and the k-way merge are exercised.
	extStore, err := BuildExternal(extDir, ds.Schema().Names(), DatasetIterator(ds), ExternalBuildOptions{
		TargetChunkBytes: 2048,
		MaxPairsInMemory: 257,
		TempDir:          t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Manifests must agree exactly: same chunk boundaries, counts, ranges.
	mm, em := memStore.Manifest(), extStore.Manifest()
	if mm.RowCount != em.RowCount {
		t.Fatalf("row counts %d vs %d", mm.RowCount, em.RowCount)
	}
	if !vec.Equal(mm.MinValues, em.MinValues) || !vec.Equal(mm.MaxValues, em.MaxValues) {
		t.Fatal("bounds differ")
	}
	for d := range mm.Chunks {
		if len(mm.Chunks[d]) != len(em.Chunks[d]) {
			t.Fatalf("dim %d: %d vs %d chunks", d, len(mm.Chunks[d]), len(em.Chunks[d]))
		}
		for i := range mm.Chunks[d] {
			a, b := mm.Chunks[d][i], em.Chunks[d][i]
			if a.Entries != b.Entries || a.RowRefs != b.RowRefs ||
				a.MinValue != b.MinValue || a.MaxValue != b.MaxValue || a.Bytes != b.Bytes {
				t.Fatalf("dim %d chunk %d differs: %+v vs %+v", d, i, a, b)
			}
		}
	}

	// And the reconstructed data must agree on random regions.
	bounds, _ := ds.Bounds()
	widths := bounds.Widths()
	center := ds.Row(42)
	min := make([]float64, 5)
	max := make([]float64, 5)
	for j := 0; j < 5; j++ {
		min[j] = center[j] - widths[j]*0.15
		max[j] = center[j] + widths[j]*0.15
	}
	box := vec.NewBox(min, max)
	a, _, err := memStore.MergeRegion(context.Background(), box)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := extStore.MergeRegion(context.Background(), box)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("merge results differ: %d vs %d rows", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || !vec.Equal(a[i].Vals, b[i].Vals) {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestBuildExternalReopen(t *testing.T) {
	ds, _ := dataset.GenerateSky(dataset.SkyConfig{N: 500, Seed: 202})
	dir := t.TempDir()
	if _, err := BuildExternal(dir, ds.Schema().Names(), DatasetIterator(ds), ExternalBuildOptions{
		TargetChunkBytes: 1024,
		MaxPairsInMemory: 100,
	}); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.RowCount() != 500 {
		t.Errorf("RowCount = %d", st.RowCount())
	}
	rows, err := st.FetchRows(context.Background(), []uint32{0, 499})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !vec.Equal(r.Vals, ds.Row(dataset.RowID(r.ID))) {
			t.Errorf("row %d differs after external build", r.ID)
		}
	}
}

func TestBuildExternalValidation(t *testing.T) {
	ds, _ := dataset.GenerateSky(dataset.SkyConfig{N: 10, Seed: 1})
	iter := DatasetIterator(ds)
	if _, err := BuildExternal(t.TempDir(), nil, iter, ExternalBuildOptions{}); err == nil {
		t.Error("no columns should fail")
	}
	if _, err := BuildExternal(t.TempDir(), ds.Schema().Names(), nil, ExternalBuildOptions{}); err == nil {
		t.Error("nil iterator should fail")
	}
	if _, err := BuildExternal(t.TempDir(), ds.Schema().Names(), iter, ExternalBuildOptions{TargetChunkBytes: 8}); err == nil {
		t.Error("tiny chunk target should fail")
	}
	empty := func() ([]float64, bool, error) { return nil, false, nil }
	if _, err := BuildExternal(t.TempDir(), ds.Schema().Names(), empty, ExternalBuildOptions{}); err == nil {
		t.Error("empty stream should fail")
	}
	ragged := func() func() ([]float64, bool, error) {
		i := 0
		return func() ([]float64, bool, error) {
			i++
			if i == 1 {
				return []float64{1, 2, 3, 4, 5}, true, nil
			}
			return []float64{1}, true, nil
		}
	}()
	if _, err := BuildExternal(t.TempDir(), ds.Schema().Names(), ragged, ExternalBuildOptions{}); err == nil {
		t.Error("ragged rows should fail")
	}
	failing := func() ([]float64, bool, error) { return nil, false, fmt.Errorf("source broke") }
	if _, err := BuildExternal(t.TempDir(), ds.Schema().Names(), failing, ExternalBuildOptions{}); err == nil {
		t.Error("iterator error should propagate")
	}
	if _, err := BuildExternal(t.TempDir(), ds.Schema().Names(), iter, ExternalBuildOptions{MaxPairsInMemory: -1}); err == nil {
		t.Error("negative buffer should fail")
	}
}

func TestBuildExternalNoSpill(t *testing.T) {
	// Buffer larger than the dataset: the residual-only merge path.
	ds, _ := dataset.GenerateSky(dataset.SkyConfig{N: 200, Seed: 203})
	dir := t.TempDir()
	st, err := BuildExternal(dir, ds.Schema().Names(), DatasetIterator(ds), ExternalBuildOptions{
		TargetChunkBytes: 1024,
		MaxPairsInMemory: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.RowCount() != 200 {
		t.Errorf("RowCount = %d", st.RowCount())
	}
}
