package chunkstore

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"github.com/uei-db/uei/internal/dataset"
)

// The external build path constructs the same chunk store as Build without
// ever materializing the dataset in memory: one streaming pass over the
// input appends (value, rowID) pairs to bounded in-memory buffers that
// spill to sorted run files; a k-way merge per dimension then streams the
// globally sorted postings straight into chunk files. This is the build
// path a deployment actually uses for the paper's scenario, where the
// dataset is 100x the available memory before it is ever indexed.

// pairSize is the on-disk size of one spill pair (float64 value + uint32
// row id).
const pairSize = 12

// pair is one (value, rowID) posting element.
type pair struct {
	value float64
	id    uint32
}

// ExternalBuildOptions configures BuildExternal.
type ExternalBuildOptions struct {
	// TargetChunkBytes is the equal-size chunk target (Table 1);
	// zero selects DefaultTargetChunkBytes.
	TargetChunkBytes int
	// MaxPairsInMemory bounds the per-dimension spill buffer; the build's
	// peak memory is roughly dims x MaxPairsInMemory x 16 bytes. Zero
	// selects 1<<20 pairs (~16 MiB per dimension).
	MaxPairsInMemory int
	// TempDir hosts the spill run files; empty uses the OS temp dir. The
	// directory's transient usage is about the size of the final store.
	TempDir string
}

// RowIterator yields rows in ascending id order; it returns ok=false at
// the end of the stream. Implementations need not be resettable: the build
// makes exactly one pass.
type RowIterator func() (row []float64, ok bool, err error)

// DatasetIterator adapts an in-memory dataset to a RowIterator (used by
// tests to compare the two build paths).
func DatasetIterator(ds *dataset.Dataset) RowIterator {
	i := 0
	return func() ([]float64, bool, error) {
		if i >= ds.Len() {
			return nil, false, nil
		}
		row := ds.Row(dataset.RowID(i))
		i++
		return row, true, nil
	}
}

// BuildExternal creates a chunk store in dir from a single streaming pass
// over rows, using external sorting so memory stays bounded regardless of
// input size. The resulting store is byte-for-byte equivalent in content
// to Build over the same data (chunk boundaries and manifest included).
func BuildExternal(dir string, columns []string, rows RowIterator, opts ExternalBuildOptions) (*Store, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("chunkstore: external build needs at least one column")
	}
	if rows == nil {
		return nil, fmt.Errorf("chunkstore: nil row iterator")
	}
	target := opts.TargetChunkBytes
	if target == 0 {
		target = DefaultTargetChunkBytes
	}
	if target < 64 {
		return nil, fmt.Errorf("chunkstore: target chunk size %d below 64-byte minimum", target)
	}
	maxPairs := opts.MaxPairsInMemory
	if maxPairs == 0 {
		maxPairs = 1 << 20
	}
	if maxPairs < 1 {
		return nil, fmt.Errorf("chunkstore: MaxPairsInMemory %d must be positive", maxPairs)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("chunkstore: create %s: %w", dir, err)
	}
	if entries, err := os.ReadDir(dir); err != nil {
		return nil, fmt.Errorf("chunkstore: inspect %s: %w", dir, err)
	} else if len(entries) > 0 {
		return nil, fmt.Errorf("chunkstore: directory %s is not empty", dir)
	}
	tempDir, err := os.MkdirTemp(opts.TempDir, "uei-extsort-")
	if err != nil {
		return nil, fmt.Errorf("chunkstore: temp dir: %w", err)
	}
	defer os.RemoveAll(tempDir)

	dims := len(columns)
	spillers := make([]*spiller, dims)
	for d := range spillers {
		spillers[d] = newSpiller(tempDir, d, maxPairs)
	}
	minVals := make([]float64, dims)
	maxVals := make([]float64, dims)
	rowCount := 0
	for {
		row, ok, err := rows()
		if err != nil {
			return nil, fmt.Errorf("chunkstore: reading row %d: %w", rowCount, err)
		}
		if !ok {
			break
		}
		if len(row) != dims {
			return nil, fmt.Errorf("chunkstore: row %d has %d values, want %d", rowCount, len(row), dims)
		}
		if rowCount > math.MaxUint32 {
			return nil, fmt.Errorf("chunkstore: row count exceeds uint32 id space")
		}
		for d, v := range row {
			if rowCount == 0 || v < minVals[d] {
				minVals[d] = v
			}
			if rowCount == 0 || v > maxVals[d] {
				maxVals[d] = v
			}
			if err := spillers[d].add(pair{value: v, id: uint32(rowCount)}); err != nil {
				return nil, err
			}
		}
		rowCount++
	}
	if rowCount == 0 {
		return nil, fmt.Errorf("chunkstore: refusing to build from an empty stream")
	}

	m := &Manifest{
		FormatVersion:    manifestFormatVersion,
		Columns:          append([]string(nil), columns...),
		RowCount:         rowCount,
		TargetChunkBytes: target,
		Chunks:           make([][]ChunkMeta, dims),
		MinValues:        minVals,
		MaxValues:        maxVals,
	}
	for d := 0; d < dims; d++ {
		merged, cleanup, err := spillers[d].mergedStream()
		if err != nil {
			return nil, err
		}
		metas, err := writeChunksFromPairs(dir, d, target, merged)
		cleanup()
		if err != nil {
			return nil, err
		}
		m.Chunks[d] = metas
	}
	if err := saveManifest(dir, m); err != nil {
		return nil, err
	}
	return &Store{dir: dir, manifest: m}, nil
}

// writeChunksFromPairs groups a (value,id)-sorted pair stream into entries
// and cuts equal-size chunks, mirroring writeDimensionChunks.
func writeChunksFromPairs(dir string, dim, target int, next func() (pair, bool, error)) ([]ChunkMeta, error) {
	var metas []ChunkMeta
	var pending []Entry
	pendingBytes := 0
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		meta, err := writeChunkFile(dir, dim, len(metas), pending)
		if err != nil {
			return err
		}
		metas = append(metas, meta)
		pending = pending[:0]
		pendingBytes = 0
		return nil
	}
	var cur Entry
	haveCur := false
	emit := func(e Entry) error {
		pending = append(pending, e)
		pendingBytes += entryEncodedSize(e)
		if pendingBytes >= target {
			return flush()
		}
		return nil
	}
	for {
		p, ok, err := next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		switch {
		case !haveCur:
			cur = Entry{Value: p.value, Rows: []uint32{p.id}}
			haveCur = true
		case p.value == cur.Value:
			cur.Rows = append(cur.Rows, p.id)
		default:
			if p.value < cur.Value {
				return nil, fmt.Errorf("chunkstore: merge produced unsorted values (%g after %g)", p.value, cur.Value)
			}
			if err := emit(cur); err != nil {
				return nil, err
			}
			cur = Entry{Value: p.value, Rows: []uint32{p.id}}
		}
	}
	if haveCur {
		if err := emit(cur); err != nil {
			return nil, err
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return metas, nil
}

// spiller accumulates pairs for one dimension, spilling sorted runs.
type spiller struct {
	dir      string
	dim      int
	maxPairs int
	buf      []pair
	runs     []string
}

func newSpiller(dir string, dim, maxPairs int) *spiller {
	return &spiller{dir: dir, dim: dim, maxPairs: maxPairs}
}

func (s *spiller) add(p pair) error {
	s.buf = append(s.buf, p)
	if len(s.buf) >= s.maxPairs {
		return s.spill()
	}
	return nil
}

// spill sorts the buffer and writes it as one run file.
func (s *spiller) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	sortPairs(s.buf)
	name := filepath.Join(s.dir, fmt.Sprintf("d%02d_run%05d.spill", s.dim, len(s.runs)))
	f, err := os.Create(name)
	if err != nil {
		return fmt.Errorf("chunkstore: create run file: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	var rec [pairSize]byte
	for _, p := range s.buf {
		binary.LittleEndian.PutUint64(rec[0:8], math.Float64bits(p.value))
		binary.LittleEndian.PutUint32(rec[8:12], p.id)
		if _, err := w.Write(rec[:]); err != nil {
			f.Close()
			return fmt.Errorf("chunkstore: write run file: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("chunkstore: flush run file: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("chunkstore: close run file: %w", err)
	}
	s.runs = append(s.runs, name)
	s.buf = s.buf[:0]
	return nil
}

// sortPairs orders by (value, id) so merged streams group duplicates with
// ascending posting lists.
func sortPairs(v []pair) {
	sort.Slice(v, func(i, j int) bool {
		if v[i].value != v[j].value {
			return v[i].value < v[j].value
		}
		return v[i].id < v[j].id
	})
}

// mergedStream returns a pull iterator over the k-way merge of all runs
// plus the residual buffer, and a cleanup func closing the run readers.
func (s *spiller) mergedStream() (func() (pair, bool, error), func(), error) {
	// The residual (unspilled) buffer becomes an in-memory "run".
	sortPairs(s.buf)
	residual := s.buf
	ri := 0

	readers := make([]*runReader, 0, len(s.runs))
	cleanup := func() {
		for _, r := range readers {
			r.close()
		}
	}
	h := &mergeHeap{}
	for _, name := range s.runs {
		r, err := openRunReader(name)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		readers = append(readers, r)
		p, ok, err := r.next()
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		if ok {
			heap.Push(h, mergeItem{pair: p, src: r})
		}
	}
	next := func() (pair, bool, error) {
		// Choose between the heap's head and the residual cursor.
		if h.Len() == 0 {
			if ri >= len(residual) {
				return pair{}, false, nil
			}
			p := residual[ri]
			ri++
			return p, true, nil
		}
		top := (*h)[0]
		if ri < len(residual) && pairLess(residual[ri], top.pair) {
			p := residual[ri]
			ri++
			return p, true, nil
		}
		item := heap.Pop(h).(mergeItem)
		if p, ok, err := item.src.next(); err != nil {
			return pair{}, false, err
		} else if ok {
			heap.Push(h, mergeItem{pair: p, src: item.src})
		}
		return item.pair, true, nil
	}
	return next, cleanup, nil
}

func pairLess(a, b pair) bool {
	if a.value != b.value {
		return a.value < b.value
	}
	return a.id < b.id
}

// runReader streams one spilled run file.
type runReader struct {
	f *os.File
	r *bufio.Reader
}

func openRunReader(name string) (*runReader, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, fmt.Errorf("chunkstore: open run file: %w", err)
	}
	return &runReader{f: f, r: bufio.NewReaderSize(f, 1<<16)}, nil
}

func (r *runReader) next() (pair, bool, error) {
	var rec [pairSize]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		if err == io.EOF {
			return pair{}, false, nil
		}
		return pair{}, false, fmt.Errorf("chunkstore: read run file: %w", err)
	}
	return pair{
		value: math.Float64frombits(binary.LittleEndian.Uint64(rec[0:8])),
		id:    binary.LittleEndian.Uint32(rec[8:12]),
	}, true, nil
}

func (r *runReader) close() { r.f.Close() }

// mergeHeap is a min-heap of run heads ordered by (value, id).
type mergeItem struct {
	pair pair
	src  *runReader
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return pairLess(h[i].pair, h[j].pair) }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
