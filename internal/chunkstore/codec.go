package chunkstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Chunk file layout (little endian):
//
//	magic   [4]byte  "UEIC"
//	version uint16   (currently 1)
//	dim     uint16   dimension index the chunk belongs to
//	entries uint32   number of postings
//	min     float64  smallest value in the chunk
//	max     float64  largest value in the chunk
//	payload entries × { value float64, rowCount uvarint, row-id deltas uvarint… }
//	crc32   uint32   IEEE CRC of everything before it
//
// Posting lists are delta-encoded ascending row ids. Values are strictly
// increasing within a chunk (they are distinct by construction).
const (
	chunkMagic   = "UEIC"
	chunkVersion = 1
	headerSize   = 4 + 2 + 2 + 4 + 8 + 8
)

// encodeChunk serializes entries for dimension dim. Entries must be sorted
// ascending by value and non-empty.
func encodeChunk(dim int, entries []Entry) ([]byte, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("chunkstore: refusing to encode an empty chunk")
	}
	if dim < 0 || dim > math.MaxUint16 {
		return nil, fmt.Errorf("chunkstore: dimension %d out of uint16 range", dim)
	}
	var buf bytes.Buffer
	buf.WriteString(chunkMagic)
	writeU16(&buf, chunkVersion)
	writeU16(&buf, uint16(dim))
	writeU32(&buf, uint32(len(entries)))
	writeF64(&buf, entries[0].Value)
	writeF64(&buf, entries[len(entries)-1].Value)

	var tmp [binary.MaxVarintLen64]byte
	prevValue := math.Inf(-1)
	for i, e := range entries {
		if len(e.Rows) == 0 {
			return nil, fmt.Errorf("chunkstore: entry %d has an empty posting list", i)
		}
		if e.Value <= prevValue {
			return nil, fmt.Errorf("chunkstore: entry %d value %g not strictly increasing after %g", i, e.Value, prevValue)
		}
		prevValue = e.Value
		writeF64(&buf, e.Value)
		n := binary.PutUvarint(tmp[:], uint64(len(e.Rows)))
		buf.Write(tmp[:n])
		prev := uint32(0)
		for j, r := range e.Rows {
			if j > 0 && r <= prev {
				return nil, fmt.Errorf("chunkstore: entry %d posting list not strictly increasing at %d", i, j)
			}
			d := r
			if j > 0 {
				d = r - prev
			}
			n := binary.PutUvarint(tmp[:], uint64(d))
			buf.Write(tmp[:n])
			prev = r
		}
	}
	crc := crc32.ChecksumIEEE(buf.Bytes())
	writeU32(&buf, crc)
	return buf.Bytes(), nil
}

// decodeChunk parses a chunk file and verifies its CRC. It returns the
// dimension the chunk belongs to and its entries.
func decodeChunk(data []byte) (dim int, entries []Entry, err error) {
	if len(data) < headerSize+4 {
		return 0, nil, fmt.Errorf("chunkstore: chunk truncated: %d bytes", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	wantCRC := binary.LittleEndian.Uint32(tail)
	if got := crc32.ChecksumIEEE(body); got != wantCRC {
		return 0, nil, fmt.Errorf("chunkstore: chunk corrupted: crc %#x, want %#x", got, wantCRC)
	}
	if string(body[:4]) != chunkMagic {
		return 0, nil, fmt.Errorf("chunkstore: bad magic %q", body[:4])
	}
	version := binary.LittleEndian.Uint16(body[4:6])
	if version != chunkVersion {
		return 0, nil, fmt.Errorf("chunkstore: unsupported chunk version %d", version)
	}
	dim = int(binary.LittleEndian.Uint16(body[6:8]))
	count := binary.LittleEndian.Uint32(body[8:12])
	// min/max at body[12:28] are redundant with the entries; the manifest
	// uses them without reading the payload, and decode re-derives them.
	payload := body[headerSize:]

	entries = make([]Entry, 0, count)
	off := 0
	for i := uint32(0); i < count; i++ {
		if off+8 > len(payload) {
			return 0, nil, fmt.Errorf("chunkstore: payload truncated at entry %d", i)
		}
		value := math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
		rowCount, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return 0, nil, fmt.Errorf("chunkstore: bad posting count at entry %d", i)
		}
		off += n
		if rowCount == 0 {
			return 0, nil, fmt.Errorf("chunkstore: empty posting list at entry %d", i)
		}
		rows := make([]uint32, rowCount)
		prev := uint64(0)
		for j := range rows {
			d, n := binary.Uvarint(payload[off:])
			if n <= 0 {
				return 0, nil, fmt.Errorf("chunkstore: bad row delta at entry %d posting %d", i, j)
			}
			off += n
			if j == 0 {
				prev = d
			} else {
				prev += d
			}
			if prev > math.MaxUint32 {
				return 0, nil, fmt.Errorf("chunkstore: row id overflow at entry %d", i)
			}
			rows[j] = uint32(prev)
		}
		entries = append(entries, Entry{Value: value, Rows: rows})
	}
	if off != len(payload) {
		return 0, nil, fmt.Errorf("chunkstore: %d trailing payload bytes", len(payload)-off)
	}
	return dim, entries, nil
}

func writeU16(buf *bytes.Buffer, v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	buf.Write(b[:])
}

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func writeF64(buf *bytes.Buffer, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	buf.Write(b[:])
}
