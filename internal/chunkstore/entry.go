// Package chunkstore implements UEI's secondary-storage layout (§3.1,
// Figure 2): the dataset is vertically decomposed; each dimension is sorted
// ascending and stored as an inverted index of <value, {row ids}> postings;
// the postings of each dimension are split into equal-size chunks, each a
// separate file on disk, with values in strictly increasing order across a
// dimension's chunk sequence. A JSON manifest records, per chunk, its file,
// entry count, and value range, which is what the grid's mapping method m
// consults to find the chunks that rebuild a subspace.
package chunkstore

import (
	"sort"

	"github.com/uei-db/uei/internal/dataset"
)

// Entry is one inverted-index posting: a distinct attribute value and the
// ascending ids of the rows holding it.
type Entry struct {
	Value float64
	Rows  []uint32
}

// decompose performs the vertical decomposition of Algorithm 2 (lines 2-4)
// for a single dimension: it groups row ids by value and returns the
// entries sorted ascending by value, each posting list sorted ascending.
func decompose(ds *dataset.Dataset, dim int) []Entry {
	byValue := make(map[float64][]uint32)
	ds.Scan(func(id dataset.RowID, row []float64) bool {
		v := row[dim]
		byValue[v] = append(byValue[v], uint32(id))
		return true
	})
	entries := make([]Entry, 0, len(byValue))
	for v, rows := range byValue {
		// Scan visits ids in ascending order, so posting lists arrive
		// sorted; keep that invariant explicit for the codec's delta
		// encoding.
		entries = append(entries, Entry{Value: v, Rows: rows})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Value < entries[j].Value })
	return entries
}

// entryEncodedSize returns the exact byte size the codec will use for the
// entry, so the writer can cut equal-size chunks without encoding twice.
func entryEncodedSize(e Entry) int {
	n := 8 + uvarintLen(uint64(len(e.Rows)))
	prev := uint32(0)
	for i, r := range e.Rows {
		d := r
		if i > 0 {
			d = r - prev
		}
		n += uvarintLen(uint64(d))
		prev = r
	}
	return n
}

// uvarintLen returns the encoded length of v in unsigned varint form.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
