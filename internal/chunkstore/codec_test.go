package chunkstore

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleEntries() []Entry {
	return []Entry{
		{Value: -3.5, Rows: []uint32{0, 7, 900000}},
		{Value: 0, Rows: []uint32{3}},
		{Value: 12.25, Rows: []uint32{1, 2, 3, 4}},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	in := sampleEntries()
	data, err := encodeChunk(2, in)
	if err != nil {
		t.Fatal(err)
	}
	dim, out, err := decodeChunk(data)
	if err != nil {
		t.Fatal(err)
	}
	if dim != 2 {
		t.Errorf("dim = %d", dim)
	}
	assertEntriesEqual(t, in, out)
}

func assertEntriesEqual(t *testing.T, want, got []Entry) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("entry count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Value != got[i].Value {
			t.Fatalf("entry %d value %g, want %g", i, got[i].Value, want[i].Value)
		}
		if len(want[i].Rows) != len(got[i].Rows) {
			t.Fatalf("entry %d posting count %d, want %d", i, len(got[i].Rows), len(want[i].Rows))
		}
		for j := range want[i].Rows {
			if want[i].Rows[j] != got[i].Rows[j] {
				t.Fatalf("entry %d posting %d = %d, want %d", i, j, got[i].Rows[j], want[i].Rows[j])
			}
		}
	}
}

func TestEncodeRejectsBadInput(t *testing.T) {
	if _, err := encodeChunk(0, nil); err == nil {
		t.Error("empty chunk should fail")
	}
	if _, err := encodeChunk(0, []Entry{{Value: 1, Rows: nil}}); err == nil {
		t.Error("empty posting list should fail")
	}
	if _, err := encodeChunk(0, []Entry{{Value: 1, Rows: []uint32{1}}, {Value: 1, Rows: []uint32{2}}}); err == nil {
		t.Error("duplicate value should fail")
	}
	if _, err := encodeChunk(0, []Entry{{Value: 2, Rows: []uint32{1}}, {Value: 1, Rows: []uint32{2}}}); err == nil {
		t.Error("descending values should fail")
	}
	if _, err := encodeChunk(0, []Entry{{Value: 1, Rows: []uint32{5, 5}}}); err == nil {
		t.Error("non-increasing posting list should fail")
	}
	if _, err := encodeChunk(-1, sampleEntries()); err == nil {
		t.Error("negative dim should fail")
	}
	if _, err := encodeChunk(1<<17, sampleEntries()); err == nil {
		t.Error("oversized dim should fail")
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	data, err := encodeChunk(0, sampleEntries())
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte: CRC must catch it.
	for _, pos := range []int{0, 5, headerSize + 1, len(data) - 5} {
		corrupt := append([]byte(nil), data...)
		corrupt[pos] ^= 0xff
		if _, _, err := decodeChunk(corrupt); err == nil {
			t.Errorf("corruption at byte %d went undetected", pos)
		}
	}
	// Truncation.
	if _, _, err := decodeChunk(data[:10]); err == nil {
		t.Error("truncated chunk should fail")
	}
	if _, _, err := decodeChunk(nil); err == nil {
		t.Error("empty buffer should fail")
	}
}

func TestDecodeRejectsWrongMagicAndVersion(t *testing.T) {
	data, _ := encodeChunk(0, sampleEntries())
	bad := append([]byte(nil), data...)
	copy(bad, "NOPE")
	// Recompute nothing: CRC check fires first, which is fine — corrupting
	// the magic is corruption. To test the magic branch specifically we
	// would need a valid CRC over a bad magic, so rebuild it by hand.
	if _, _, err := decodeChunk(bad); err == nil {
		t.Error("bad magic should fail")
	}
}

func TestEntryEncodedSizeMatchesCodec(t *testing.T) {
	entries := sampleEntries()
	var want int
	for _, e := range entries {
		want += entryEncodedSize(e)
	}
	data, err := encodeChunk(0, entries)
	if err != nil {
		t.Fatal(err)
	}
	got := len(data) - headerSize - 4 // strip header and CRC
	if got != want {
		t.Errorf("payload %d bytes, entryEncodedSize sums to %d", got, want)
	}
}

func TestUvarintLen(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{{0, 1}, {127, 1}, {128, 2}, {16383, 2}, {16384, 3}, {math.MaxUint64, 10}}
	for _, c := range cases {
		if got := uvarintLen(c.v); got != c.want {
			t.Errorf("uvarintLen(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// randomEntries builds a valid random entry slice for property tests.
func randomEntries(rng *rand.Rand) []Entry {
	n := 1 + rng.Intn(40)
	entries := make([]Entry, 0, n)
	v := rng.NormFloat64() * 100
	for i := 0; i < n; i++ {
		v += 0.001 + rng.Float64()*10
		rows := make([]uint32, 0, 1+rng.Intn(8))
		id := uint32(rng.Intn(1000))
		for j := 0; j < cap(rows); j++ {
			rows = append(rows, id)
			id += 1 + uint32(rng.Intn(100000))
		}
		entries = append(entries, Entry{Value: v, Rows: rows})
	}
	return entries
}

func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomEntries(rng)
		dim := rng.Intn(64)
		data, err := encodeChunk(dim, in)
		if err != nil {
			return false
		}
		gotDim, out, err := decodeChunk(data)
		if err != nil || gotDim != dim || len(out) != len(in) {
			return false
		}
		for i := range in {
			if in[i].Value != out[i].Value || len(in[i].Rows) != len(out[i].Rows) {
				return false
			}
			for j := range in[i].Rows {
				if in[i].Rows[j] != out[i].Rows[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickCorruptionAlwaysDetected(t *testing.T) {
	f := func(seed int64, flipByte uint16, flipBit uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		data, err := encodeChunk(0, randomEntries(rng))
		if err != nil {
			return false
		}
		pos := int(flipByte) % len(data)
		corrupt := append([]byte(nil), data...)
		corrupt[pos] ^= 1 << (flipBit % 8)
		_, _, err = decodeChunk(corrupt)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
