package chunkstore

import (
	"bytes"
	"math"
	"testing"
)

// FuzzCodecRoundTrip exercises the chunk codec from both ends. The raw
// fuzz input is fed straight into decodeChunk, which must never panic and
// must reject anything that does not re-encode to the same entries; the
// same input is also interpreted as a construction recipe for a valid
// chunk, which must survive encode→decode byte-exactly.
func FuzzCodecRoundTrip(f *testing.F) {
	// Seed corpus: one real encoded chunk, a truncated header, and junk.
	seed, err := encodeChunk(3, []Entry{
		{Value: -1.5, Rows: []uint32{0, 7, 9}},
		{Value: 0, Rows: []uint32{2}},
		{Value: 42.25, Rows: []uint32{1, 2, 3, math.MaxUint32}},
	})
	if err != nil {
		f.Fatalf("seed encode: %v", err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte("UEIC"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Property 1: decode is total — it may error, never panic — and
		// any chunk it accepts round-trips through encode.
		if dim, entries, err := decodeChunk(data); err == nil {
			reenc, err := encodeChunk(dim, entries)
			if err != nil {
				// decode is laxer than encode (it does not require
				// strictly increasing values), so some accepted inputs
				// are not re-encodable; that is fine.
				t.Skipf("decoded chunk not re-encodable: %v", err)
			}
			dim2, entries2, err := decodeChunk(reenc)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if dim2 != dim || !entriesEqual(entries, entries2) {
				t.Fatalf("decode(encode(decode(x))) != decode(x)")
			}
		}

		// Property 2: interpret the input as a recipe for a valid chunk;
		// encode→decode must reproduce it exactly.
		dim, entries := chunkFromRecipe(data)
		if len(entries) == 0 {
			return
		}
		enc, err := encodeChunk(dim, entries)
		if err != nil {
			t.Fatalf("encode of valid chunk failed: %v", err)
		}
		gotDim, got, err := decodeChunk(enc)
		if err != nil {
			t.Fatalf("decode of freshly encoded chunk failed: %v", err)
		}
		if gotDim != dim {
			t.Fatalf("dim round-trip: got %d, want %d", gotDim, dim)
		}
		if !entriesEqual(entries, got) {
			t.Fatalf("entries did not round-trip")
		}
	})
}

// chunkFromRecipe deterministically derives a codec-valid chunk (strictly
// increasing finite values, non-empty strictly increasing posting lists)
// from arbitrary bytes.
func chunkFromRecipe(data []byte) (dim int, entries []Entry) {
	if len(data) == 0 {
		return 0, nil
	}
	next := func() byte {
		if len(data) == 0 {
			return 1
		}
		b := data[0]
		data = data[1:]
		return b
	}
	dim = int(next()) % 64
	n := 1 + int(next())%16
	value := -float64(next())
	for i := 0; i < n; i++ {
		value += 1 + float64(next())/16
		rows := make([]uint32, 0, 4)
		id := uint32(next())
		k := 1 + int(next())%4
		for j := 0; j < k; j++ {
			rows = append(rows, id)
			id += 1 + uint32(next())*uint32(next())
		}
		entries = append(entries, Entry{Value: value, Rows: rows})
	}
	return dim, entries
}

// entriesEqual compares decoded entries, distinguishing float bit patterns
// (so ±0 and NaN payloads must survive the trip).
func entriesEqual(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i].Value) != math.Float64bits(b[i].Value) {
			return false
		}
		if len(a[i].Rows) != len(b[i].Rows) {
			return false
		}
		for j := range a[i].Rows {
			if a[i].Rows[j] != b[i].Rows[j] {
				return false
			}
		}
	}
	return true
}

// TestCodecFuzzSeedsRoundTrip keeps the fuzz harness exercised in plain
// `go test` runs (the CI fuzz smoke runs FuzzCodecRoundTrip with a time
// budget; this guards the harness itself).
func TestCodecFuzzSeedsRoundTrip(t *testing.T) {
	recipes := [][]byte{
		{},
		{0},
		{9, 4, 200, 17, 3, 2, 1, 0, 255, 254, 253},
		bytes.Repeat([]byte{0xff}, 64),
	}
	for _, r := range recipes {
		dim, entries := chunkFromRecipe(r)
		if len(entries) == 0 {
			continue
		}
		enc, err := encodeChunk(dim, entries)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		gotDim, got, err := decodeChunk(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if gotDim != dim || !entriesEqual(entries, got) {
			t.Fatalf("round trip failed for recipe %v", r)
		}
	}
}
