package chunkstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// manifestFile is the name of the store's metadata file inside its
// directory.
const manifestFile = "manifest.json"

// ChunkMeta describes one chunk file without reading it. The grid mapping m
// works entirely on ChunkMeta value ranges.
type ChunkMeta struct {
	// File is the chunk file name relative to the store directory.
	File string `json:"file"`
	// Dim is the dimension the chunk belongs to.
	Dim int `json:"dim"`
	// Seq is the chunk's position in its dimension's ordered sequence.
	Seq int `json:"seq"`
	// Entries is the number of postings in the chunk.
	Entries int `json:"entries"`
	// RowRefs is the total number of row ids across the chunk's postings;
	// it measures e, the per-iteration work term of the paper's O(k·e)
	// complexity bound.
	RowRefs int `json:"row_refs"`
	// MinValue and MaxValue bound the values stored in the chunk
	// (inclusive).
	MinValue float64 `json:"min_value"`
	MaxValue float64 `json:"max_value"`
	// Bytes is the on-disk file size.
	Bytes int64 `json:"bytes"`
}

// Manifest is the store's persistent metadata.
type Manifest struct {
	// FormatVersion guards against reading manifests from other versions.
	FormatVersion int `json:"format_version"`
	// Columns are the attribute names, in dimension order.
	Columns []string `json:"columns"`
	// RowCount is the number of tuples in the store.
	RowCount int `json:"row_count"`
	// TargetChunkBytes is the equal-size chunk target used at build time.
	TargetChunkBytes int `json:"target_chunk_bytes"`
	// Chunks lists every chunk of every dimension; Chunks[d] is ordered by
	// ascending value range (Seq).
	Chunks [][]ChunkMeta `json:"chunks"`
	// MinValues/MaxValues bound each dimension over the whole dataset.
	MinValues []float64 `json:"min_values"`
	MaxValues []float64 `json:"max_values"`
}

// manifestFormatVersion is bumped on incompatible layout changes.
const manifestFormatVersion = 1

// validate checks internal consistency after load.
func (m *Manifest) validate() error {
	if m.FormatVersion != manifestFormatVersion {
		return fmt.Errorf("chunkstore: manifest format %d, want %d", m.FormatVersion, manifestFormatVersion)
	}
	dims := len(m.Columns)
	if dims == 0 {
		return fmt.Errorf("chunkstore: manifest has no columns")
	}
	if len(m.Chunks) != dims || len(m.MinValues) != dims || len(m.MaxValues) != dims {
		return fmt.Errorf("chunkstore: manifest arrays disagree with %d columns", dims)
	}
	if m.RowCount < 0 {
		return fmt.Errorf("chunkstore: negative row count %d", m.RowCount)
	}
	for d, chunks := range m.Chunks {
		if m.RowCount > 0 && len(chunks) == 0 {
			return fmt.Errorf("chunkstore: dimension %d has no chunks", d)
		}
		for i, c := range chunks {
			if c.Dim != d || c.Seq != i {
				return fmt.Errorf("chunkstore: chunk %s misfiled (dim %d seq %d at [%d][%d])", c.File, c.Dim, c.Seq, d, i)
			}
			if c.MinValue > c.MaxValue {
				return fmt.Errorf("chunkstore: chunk %s has inverted range", c.File)
			}
			if i > 0 && chunks[i-1].MaxValue >= c.MinValue {
				return fmt.Errorf("chunkstore: dimension %d chunks %d and %d overlap in value", d, i-1, i)
			}
		}
	}
	return nil
}

// saveManifest writes the manifest atomically (write temp + rename) so a
// crash mid-save never leaves a half-written manifest behind.
func saveManifest(dir string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("chunkstore: marshal manifest: %w", err)
	}
	tmp := filepath.Join(dir, manifestFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("chunkstore: write manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestFile)); err != nil {
		return fmt.Errorf("chunkstore: commit manifest: %w", err)
	}
	return nil
}

// loadManifest reads and validates the manifest in dir.
func loadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, fmt.Errorf("chunkstore: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("chunkstore: parse manifest: %w", err)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
