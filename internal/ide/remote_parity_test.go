package ide

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/uei-db/uei/internal/al"
	"github.com/uei-db/uei/internal/core"
	"github.com/uei-db/uei/internal/shard"
	"github.com/uei-db/uei/internal/shard/remote"
)

// remoteCluster is a worker fleet over one sharded store: every endpoint
// serves the full store (as uei-shardd does), placement picks who answers
// for which shard.
type remoteCluster struct {
	servers []*httptest.Server
	urls    []string
}

// startRemoteCluster builds a sharded store, opens it once as the backing
// data plane, and exposes it through n independent HTTP endpoints.
func (f *fixture) startRemoteCluster(t *testing.T, shards, n int) *remoteCluster {
	t.Helper()
	dir := t.TempDir()
	if err := core.Build(dir, f.ds, core.BuildOptions{TargetChunkBytes: 2048, Shards: shards}); err != nil {
		t.Fatal(err)
	}
	backing, err := core.Open(context.Background(), dir, core.Options{
		MemoryBudgetBytes: 1 << 20, Shards: shards, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(backing.Close)
	man, err := shard.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	handler := remote.NewServer(backing.ShardCoordinator(), man, func(string, ...any) {})
	cl := &remoteCluster{}
	for i := 0; i < n; i++ {
		srv := httptest.NewServer(handler)
		t.Cleanup(srv.Close)
		cl.servers = append(cl.servers, srv)
		cl.urls = append(cl.urls, srv.URL)
	}
	return cl
}

// ueiRemoteProvider opens the index over the cluster's wire protocol —
// no local store directory at all.
func (f *fixture) ueiRemoteProvider(t *testing.T, sample, replication int, cl *remoteCluster, hedge time.Duration) *UEIProvider {
	t.Helper()
	idx, err := core.Open(context.Background(), "", core.Options{
		MemoryBudgetBytes: 1 << 20, SampleSize: sample, Seed: 3, Workers: 2,
		ShardEndpoints: cl.urls,
		Replication:    replication,
		HedgeDelay:     hedge,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(idx.Close)
	p, err := NewUEIProvider(idx)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runRemoteTracedSession mirrors runTracedSession over the remote
// transport. onIteration, when non-nil, sees each iteration as it lands
// (for mid-session fault injection).
func runRemoteTracedSession(t *testing.T, shards, replication, endpoints int, onIteration func(n int, cl *remoteCluster)) sessionTrace {
	t.Helper()
	f := newFixture(t, 1500, 0.02)
	cl := f.startRemoteCluster(t, shards, endpoints)
	p := f.ueiRemoteProvider(t, 200, replication, cl, 0)
	var tr sessionTrace
	cfg := Config{
		MaxLabels:        25,
		EstimatorFactory: f.estimatorFactory(t),
		Strategy:         al.LeastConfidence{},
		Seed:             7,
		SeedWithPositive: true,
		OnIteration: func(it IterationInfo) {
			tr.picks = append(tr.picks, it.SelectedID)
			tr.degraded = append(tr.degraded, it.Degraded)
			if onIteration != nil {
				onIteration(len(tr.picks), cl)
			}
		},
	}
	sess, err := NewSession(cfg, p, OracleLabeler{O: f.orc})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tr.positive = res.Positive
	tr.labels = res.LabelsUsed
	return tr
}

func requireTraceEqual(t *testing.T, got, want sessionTrace) {
	t.Helper()
	if got.labels != want.labels {
		t.Errorf("labels used: %d, local used %d", got.labels, want.labels)
	}
	if len(got.picks) != len(want.picks) {
		t.Fatalf("%d iterations, local ran %d", len(got.picks), len(want.picks))
	}
	for i := range got.picks {
		if got.picks[i] != want.picks[i] {
			t.Fatalf("iteration %d labeled row %d, local labeled %d", i, got.picks[i], want.picks[i])
		}
	}
	if len(got.positive) != len(want.positive) {
		t.Fatalf("retrieved %d rows, local retrieved %d", len(got.positive), len(want.positive))
	}
	for i := range got.positive {
		if got.positive[i] != want.positive[i] {
			t.Fatalf("retrieved[%d] = %d, local has %d", i, got.positive[i], want.positive[i])
		}
	}
}

// TestRemoteSessionParity runs complete exploration sessions over the wire
// protocol at S∈{2,4} × R∈{1,2} and requires byte-identical decisions to
// the local flat run: the network transport, like the sharded layout, is a
// deployment choice, not a semantic one.
func TestRemoteSessionParity(t *testing.T) {
	want := runTracedSession(t, 1)
	if len(want.picks) == 0 || len(want.positive) == 0 {
		t.Fatalf("local session degenerate: %d picks, %d positives", len(want.picks), len(want.positive))
	}
	for _, shards := range []int{2, 4} {
		for _, repl := range []int{1, 2} {
			t.Run(fmt.Sprintf("S=%d/R=%d", shards, repl), func(t *testing.T) {
				got := runRemoteTracedSession(t, shards, repl, 2, nil)
				for i, d := range got.degraded {
					if d {
						t.Errorf("iteration %d flagged degraded on a healthy fleet", i)
					}
				}
				requireTraceEqual(t, got, want)
			})
		}
	}
}

// TestRemoteSessionSurvivesWorkerKill kills one of two workers mid-session
// with R=2: every shard still has a live replica, so the session must
// finish with zero degraded iterations and the same results as a healthy
// run.
func TestRemoteSessionSurvivesWorkerKill(t *testing.T) {
	want := runTracedSession(t, 1)
	killed := false
	got := runRemoteTracedSession(t, 2, 2, 2, func(n int, cl *remoteCluster) {
		if n == 5 && !killed {
			killed = true
			cl.servers[0].CloseClientConnections()
			cl.servers[0].Close()
		}
	})
	if !killed {
		t.Fatal("session too short to kill a worker mid-flight")
	}
	for i, d := range got.degraded {
		if d {
			t.Errorf("iteration %d degraded despite a surviving replica", i)
		}
	}
	requireTraceEqual(t, got, want)
}

// TestRemoteSessionHedgedParity runs the S=2 R=2 session with an
// aggressive hedge delay: duplicated attempts must not change a single
// decision.
func TestRemoteSessionHedgedParity(t *testing.T) {
	want := runTracedSession(t, 1)
	f := newFixture(t, 1500, 0.02)
	cl := f.startRemoteCluster(t, 2, 2)
	p := f.ueiRemoteProvider(t, 200, 2, cl, time.Millisecond)
	var tr sessionTrace
	cfg := Config{
		MaxLabels:        25,
		EstimatorFactory: f.estimatorFactory(t),
		Strategy:         al.LeastConfidence{},
		Seed:             7,
		SeedWithPositive: true,
		OnIteration: func(it IterationInfo) {
			tr.picks = append(tr.picks, it.SelectedID)
			tr.degraded = append(tr.degraded, it.Degraded)
		},
	}
	sess, err := NewSession(cfg, p, OracleLabeler{O: f.orc})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tr.positive = res.Positive
	tr.labels = res.LabelsUsed
	for i, d := range tr.degraded {
		if d {
			t.Errorf("iteration %d degraded under hedging on a healthy fleet", i)
		}
	}
	requireTraceEqual(t, tr, want)
}
