package ide

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/uei-db/uei/internal/al"
)

// TestSessionRunCanceled cancels the context from inside the iteration hook;
// Run must return context.Canceled after at most one more iteration instead
// of spending the remaining label budget.
func TestSessionRunCanceled(t *testing.T) {
	f := newFixture(t, 2000, 0.02)
	p := f.ueiProvider(t, 200)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const cancelAfter = 3
	iterations := 0
	cfg := Config{
		MaxLabels:        200,
		EstimatorFactory: f.estimatorFactory(t),
		Strategy:         al.LeastConfidence{},
		Seed:             7,
		SeedWithPositive: true,
		OnIteration: func(it IterationInfo) {
			iterations++
			if iterations == cancelAfter {
				cancel()
			}
		},
	}
	sess, err := NewSession(cfg, p, OracleLabeler{O: f.orc})
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	_, err = sess.Run(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The cancellation is observed at the top of the next iteration: the
	// hook that cancels fires after iteration 3 completes, so at most one
	// further iteration may slip through.
	if iterations > cancelAfter+1 {
		t.Errorf("ran %d iterations after cancel at %d", iterations, cancelAfter)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}

// TestSessionRunPreCanceled: a context canceled before Run starts must stop
// the session before it consumes any labels.
func TestSessionRunPreCanceled(t *testing.T) {
	f := newFixture(t, 500, 0.02)
	p := f.dbmsProvider(t, 4)
	cfg := Config{
		MaxLabels:        20,
		EstimatorFactory: f.estimatorFactory(t),
		Strategy:         al.LeastConfidence{},
		Seed:             7,
	}
	sess, err := NewSession(cfg, p, OracleLabeler{O: f.orc})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := sess.LabeledCount(); n != 0 {
		t.Errorf("pre-canceled run consumed %d labels", n)
	}
}

// TestBatchSelectionParity: a session with Workers > 1 (batch candidate
// scoring) must label the same tuples in the same order as the serial
// streaming path.
func TestBatchSelectionParity(t *testing.T) {
	run := func(workers int) []uint32 {
		// A fresh fixture per run: the oracle counts solicited labels, so
		// sharing it would start the second session with a spent budget.
		f := newFixture(t, 4000, 0.01)
		p := f.ueiProvider(t, 400)
		var picked []uint32
		cfg := Config{
			MaxLabels:        60,
			BatchSize:        1,
			EstimatorFactory: f.estimatorFactory(t),
			Strategy:         al.LeastConfidence{},
			Seed:             2,
			SeedWithPositive: true,
			Workers:          workers,
			OnIteration:      func(it IterationInfo) { picked = append(picked, it.SelectedID) },
		}
		sess, err := NewSession(cfg, p, OracleLabeler{O: f.orc})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return picked
	}

	serial := run(0)
	batch := run(8)
	if len(serial) != len(batch) {
		t.Fatalf("iteration counts differ: serial %d, batch %d", len(serial), len(batch))
	}
	for i := range serial {
		if serial[i] != batch[i] {
			t.Fatalf("iteration %d: serial labeled #%d, batch labeled #%d", i, serial[i], batch[i])
		}
	}
}
