package ide

import (
	"context"
	"testing"

	"github.com/uei-db/uei/internal/al"
	"github.com/uei-db/uei/internal/learn"
	"github.com/uei-db/uei/internal/oracle"
)

// TestRetrievalConsistencyAcrossProviders is the cross-module invariant at
// the heart of the system: given the SAME trained model, exact UEI
// retrieval (cutoff 0, grid-merged from chunk files) and DBMS retrieval
// (full heap scan) must return exactly the same id set — two storage
// engines, one answer.
func TestRetrievalConsistencyAcrossProviders(t *testing.T) {
	f := newFixture(t, 3000, 0.01)
	uei := f.ueiProvider(t, 200)
	dbmsP := f.dbmsProvider(t, 8)
	uei.RetrievalCutoff = 0 // exact

	// Train a model via a short DBMS session.
	cfg := Config{
		MaxLabels:        40,
		EstimatorFactory: f.estimatorFactory(t),
		Strategy:         al.LeastConfidence{},
		Seed:             9,
		SeedWithPositive: true,
	}
	sess, err := NewSession(cfg, dbmsP, OracleLabeler{O: f.orc})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	model := res.Model

	fromDBMS, err := dbmsP.Retrieve(context.Background(), model)
	if err != nil {
		t.Fatal(err)
	}
	fromUEI, err := uei.Retrieve(context.Background(), model)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromDBMS) == 0 {
		t.Fatal("model retrieves nothing; fixture broken")
	}
	if len(fromUEI) != len(fromDBMS) {
		t.Fatalf("UEI retrieved %d ids, DBMS %d", len(fromUEI), len(fromDBMS))
	}
	for i := range fromUEI {
		if fromUEI[i] != fromDBMS[i] {
			t.Fatalf("id %d differs: %d vs %d", i, fromUEI[i], fromDBMS[i])
		}
	}
}

// TestPrunedRetrievalIsSubset checks that grid pruning only removes ids,
// never invents them.
func TestPrunedRetrievalIsSubset(t *testing.T) {
	f := newFixture(t, 2000, 0.02)
	uei := f.ueiProvider(t, 150)

	cfg := Config{
		MaxLabels:        30,
		EstimatorFactory: f.estimatorFactory(t),
		Strategy:         al.LeastConfidence{},
		Seed:             10,
		SeedWithPositive: true,
	}
	sess, err := NewSession(cfg, uei, OracleLabeler{O: f.orc})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	uei.RetrievalCutoff = 0
	exact, err := uei.Retrieve(context.Background(), res.Model)
	if err != nil {
		t.Fatal(err)
	}
	exactSet := make(map[uint32]bool, len(exact))
	for _, id := range exact {
		exactSet[id] = true
	}
	uei.RetrievalCutoff = 0.1
	pruned, err := uei.Retrieve(context.Background(), res.Model)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range pruned {
		if !exactSet[id] {
			t.Fatalf("pruned retrieval invented id %d", id)
		}
	}
}

// TestOracleLabeler verifies the Labeler adapter contract.
func TestOracleLabeler(t *testing.T) {
	f := newFixture(t, 500, 0.05)
	l := OracleLabeler{O: f.orc}
	var seed uint32
	var row []float64
	var ok bool
	if seed, row, ok = l.SeedPositive(); !ok {
		t.Fatal("no seed positive in a 5% region")
	}
	if !l.IsRelevant(seed) {
		t.Error("seed positive not relevant")
	}
	if len(row) != f.ds.Dims() {
		t.Errorf("seed row has %d dims", len(row))
	}
	if l.Count() != 0 {
		t.Error("IsRelevant/SeedPositive must not count as labels")
	}
	if got := l.Label(seed, row); got != oracle.Positive {
		t.Errorf("Label(seed) = %v", got)
	}
	if l.Count() != 1 {
		t.Errorf("Count = %d", l.Count())
	}
}

// TestSeedWithPositiveRequiresSeeder checks the interface guard.
func TestSeedWithPositiveRequiresSeeder(t *testing.T) {
	f := newFixture(t, 300, 0.05)
	p := f.dbmsProvider(t, 4)
	plain := plainLabeler{o: f.orc}
	cfg := Config{
		MaxLabels:        5,
		EstimatorFactory: f.estimatorFactory(t),
		Strategy:         al.LeastConfidence{},
		SeedWithPositive: true,
	}
	if _, err := NewSession(cfg, p, plain); err == nil {
		t.Error("SeedWithPositive with a non-seeding labeler should fail")
	}
	cfg.SeedWithPositive = false
	if _, err := NewSession(cfg, p, plain); err != nil {
		t.Errorf("plain labeler without seeding should work: %v", err)
	}
}

// plainLabeler implements Labeler but not PositiveSeeder.
type plainLabeler struct {
	o *oracle.Oracle
	n int
}

func (p plainLabeler) Label(id uint32, row []float64) oracle.Label {
	if p.o.Region().Contains(row) {
		return oracle.Positive
	}
	return oracle.Negative
}

func (p plainLabeler) Count() int { return p.n }

var _ learn.Classifier = (*learn.DWKNN)(nil) // compile-time interface checks
var _ Labeler = OracleLabeler{}
var _ PositiveSeeder = OracleLabeler{}
