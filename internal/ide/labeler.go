package ide

import (
	"github.com/uei-db/uei/internal/dataset"
	"github.com/uei-db/uei/internal/oracle"
)

// Labeler answers label solicitations — the "user" of Algorithm 1. The
// experiments use OracleLabeler (the §4.1 simulation); cmd/uei-explore
// implements it with a human at a terminal.
type Labeler interface {
	// Label answers one solicitation for the tuple (id, row).
	Label(id uint32, row []float64) oracle.Label
	// Count returns how many labels have been solicited so far.
	Count() int
}

// PositiveSeeder is implemented by labelers that can bootstrap the session
// with one relevant example (Config.SeedWithPositive).
type PositiveSeeder interface {
	// IsRelevant answers ground-truth membership without counting as a
	// solicited label; the engine uses it to find an in-pool seed.
	IsRelevant(id uint32) bool
	// SeedPositive returns one relevant example (id and owned row copy)
	// when no in-pool candidate is relevant, modeling "the user brings an
	// example". ok is false when no relevant tuple exists at all.
	SeedPositive() (id uint32, row []float64, ok bool)
}

// MultiPositiveSeeder is implemented by labelers that can provide several
// relevant examples — one per component of a disjunctive (multi-region)
// interest — for Config.SeedCount > 1.
type MultiPositiveSeeder interface {
	PositiveSeeder
	// SeedPositives returns up to n distinct relevant examples, spread
	// across the target's components where possible.
	SeedPositives(n int) (ids []uint32, rows [][]float64)
}

// ExternalLabeler adapts labels that arrive from outside the process — an
// HTTP client, a UI — to the Labeler interface. The engine never blocks on
// it: Session.Feed stages the answer and resolves the outstanding proposal
// within the same call, so a session driven this way is fully passive
// between requests.
type ExternalLabeler struct {
	n      int
	staged oracle.Label
	armed  bool
}

// Label implements Labeler by returning the answer staged by Session.Feed.
// Calling it without a staged answer (e.g. driving Session.Resolve or Run
// directly over an ExternalLabeler) is a programming error.
func (l *ExternalLabeler) Label(uint32, []float64) oracle.Label {
	if !l.armed {
		panic("ide: ExternalLabeler.Label without a staged answer; drive the session with Feed")
	}
	l.armed = false
	l.n++
	return l.staged
}

// Count implements Labeler.
func (l *ExternalLabeler) Count() int { return l.n }

// stage arms the labeler with the next answer; only Session.Feed calls it.
func (l *ExternalLabeler) stage(label oracle.Label) {
	l.staged = label
	l.armed = true
}

// DriftingOracleLabeler adapts the drifting-interest user simulation: the
// target region moves as labels are given (oracle.DriftingOracle), so the
// same tuple can be judged differently early and late in a session.
// Seeding uses the initial region — the example the user showed when the
// session began.
type DriftingOracleLabeler struct {
	O *oracle.DriftingOracle
}

// Label implements Labeler against the region at the current label count.
func (l DriftingOracleLabeler) Label(id uint32, _ []float64) oracle.Label {
	return l.O.LabelID(dataset.RowID(id))
}

// Count implements Labeler.
func (l DriftingOracleLabeler) Count() int { return l.O.LabelsGiven() }

// IsRelevant implements PositiveSeeder against the initial region.
func (l DriftingOracleLabeler) IsRelevant(id uint32) bool {
	return l.O.Relevant(dataset.RowID(id))
}

// SeedPositive implements PositiveSeeder.
func (l DriftingOracleLabeler) SeedPositive() (uint32, []float64, bool) {
	id, row, ok := l.O.SeedRelevant()
	return uint32(id), row, ok
}

// OracleLabeler adapts the §4.1 user simulation to the Labeler interface.
type OracleLabeler struct {
	O *oracle.Oracle
}

// Label implements Labeler by ground-truth membership of the tuple id.
func (l OracleLabeler) Label(id uint32, _ []float64) oracle.Label {
	return l.O.LabelID(dataset.RowID(id))
}

// Count implements Labeler.
func (l OracleLabeler) Count() int { return l.O.LabelsGiven() }

// IsRelevant implements PositiveSeeder.
func (l OracleLabeler) IsRelevant(id uint32) bool { return l.O.Relevant(dataset.RowID(id)) }

// SeedPositive implements PositiveSeeder.
func (l OracleLabeler) SeedPositive() (uint32, []float64, bool) {
	id, row, ok := l.O.SeedRelevant()
	return uint32(id), row, ok
}

// SeedPositives implements MultiPositiveSeeder: one seed per target
// region, round-robin, until n seeds are collected or the regions are
// exhausted.
func (l OracleLabeler) SeedPositives(n int) ([]uint32, [][]float64) {
	var ids []uint32
	var rows [][]float64
	seen := make(map[uint32]bool)
	regions := l.O.Targets().Regions
	for len(ids) < n && len(regions) > 0 {
		progressed := false
		for _, r := range regions {
			if len(ids) >= n {
				break
			}
			id, row, ok := l.O.SeedRelevantIn(r)
			if !ok || seen[uint32(id)] {
				continue
			}
			seen[uint32(id)] = true
			ids = append(ids, uint32(id))
			rows = append(rows, row)
			progressed = true
		}
		if !progressed {
			break // every region's lowest-id seed is already taken
		}
		// A second pass would re-yield the same lowest-id tuples; one seed
		// per region is the useful spread, so stop after one sweep.
		break
	}
	return ids, rows
}
